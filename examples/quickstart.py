#!/usr/bin/env python
"""Quickstart: the four primitives on a simulated 256-processor hypercube.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Session

def main() -> None:
    # A simulated Connection-Machine-style hypercube: 2^8 = 256 processors,
    # CM-2-flavoured cost model (start-up-dominated communication).
    s = Session(n_dims=8, cost_model="cm2")

    rng = np.random.default_rng(42)
    A_host = rng.standard_normal((96, 64))

    # Embed the matrix: an aspect-matched Gray-coded processor grid with a
    # load-balanced block partition (at most ceil(R/Pr) x ceil(C/Pc) local).
    A = s.matrix(A_host)
    print(f"embedded {A.shape} matrix: {A.embedding!r}")

    # --- primitive 4: reduce --------------------------------------------
    row_sums = A.reduce(axis=1, op="sum")      # length-96 vector
    col_maxes = A.reduce(axis=0, op="max")     # length-64 vector
    assert np.allclose(row_sums.to_numpy(), A_host.sum(axis=1))
    assert np.allclose(col_maxes.to_numpy(), A_host.max(axis=0))

    # --- primitive 1: extract -------------------------------------------
    row7 = A.extract(axis=0, index=7)
    assert np.allclose(row7.to_numpy(), A_host[7])

    # --- primitive 3: distribute ----------------------------------------
    tiled = row7.distribute(A, axis=0)         # every row = row 7
    assert np.allclose(tiled.to_numpy(), np.tile(A_host[7], (96, 1)))

    # --- primitive 2: insert --------------------------------------------
    B = A.insert(axis=0, index=0, vector=row7)
    assert np.allclose(B.to_numpy()[0], A_host[7])

    # --- composition: a matrix-vector product is three primitives --------
    x = s.row_vector(rng.standard_normal(64), like=A)
    y = A.matvec(x)                            # distribute, multiply, reduce
    assert np.allclose(y.to_numpy(), A_host @ x.to_numpy())

    # Every operation above was charged simulated machine time:
    print()
    print(s.report())


if __name__ == "__main__":
    main()
