#!/usr/bin/env python
"""Application 1 in a loop: power iteration built from the vector-matrix
multiply primitive recipe.

Estimates the dominant eigenvalue/eigenvector of a symmetric matrix with
nothing but distribute / multiply / reduce, showing how vectors flow
between embeddings across iterations (the reduce's column-aligned output
is remapped back to the row-aligned input of the next multiply).

Run:  python examples/power_iteration.py
"""

import numpy as np

from repro import Session
from repro.embeddings import RowAlignedEmbedding


def main(n: int = 64, iters: int = 80) -> None:
    rng = np.random.default_rng(11)
    # symmetric matrix with a planted dominant eigenpair
    Q, _ = np.linalg.qr(rng.standard_normal((n, n)))
    eigenvalues = np.concatenate([[8.0], rng.uniform(0.2, 1.5, n - 1)])
    A_host = Q @ np.diag(eigenvalues) @ Q.T

    s = Session(n_dims=10, cost_model="cm2")
    A = s.matrix(A_host)
    row_emb = RowAlignedEmbedding(A.embedding, None)
    x = s.row_vector(np.ones(n) / np.sqrt(n), like=A)

    print(f"machine: p = {s.machine.p}; matrix {n}x{n}")
    print("iter   lambda estimate     residual")
    estimate = None
    for it in range(1, iters + 1):
        y = A.matvec(x)                      # distribute + multiply + reduce
        norm = float(np.sqrt(y.dot(y)))      # elementwise + reduce
        x = (y * (1.0 / norm)).as_embedding(row_emb)
        if it % 10 == 0 or it == 1:
            estimate = norm                  # ||A x|| for unit x
            resid = np.linalg.norm(A_host @ x.to_numpy() - estimate * x.to_numpy())
            print(f"{it:4d}   {estimate:15.10f}   {resid:.3e}")

    v = x.to_numpy()
    print(f"\ntrue lambda_max      : {eigenvalues[0]:.10f}")
    print(f"estimated lambda_max : {estimate:.10f}")
    print(f"eigenvector overlap  : {abs(v @ Q[:, 0]):.10f}")
    print(f"\nsimulated machine time: {s.time:,.0f} ticks "
          f"({s.time / iters:,.0f} per iteration)")

    assert abs(estimate - eigenvalues[0]) < 1e-6
    assert abs(abs(v @ Q[:, 0]) - 1.0) < 1e-6


if __name__ == "__main__":
    main()
