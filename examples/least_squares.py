#!/usr/bin/env python
"""Least squares two ways: normal equations vs Householder QR.

Fits a polynomial to noisy samples entirely on the simulated machine.
Path 1 composes the extension operations — ``A^T A`` via the same-grid
transpose + the outer-product matmul, ``A^T y`` via vecmat, then
distributed Gaussian elimination.  Path 2 is the numerically robust
Householder QR solve.  Both are checked against ``numpy.linalg.lstsq``.

Run:  python examples/least_squares.py
"""

import numpy as np

from repro import Session
from repro.algorithms import gaussian, qr


def main(samples: int = 96, degree: int = 5) -> None:
    rng = np.random.default_rng(23)
    # noisy samples of a known polynomial on [-1, 1]
    true_coeffs = rng.standard_normal(degree + 1)
    t = np.linspace(-1.0, 1.0, samples)
    y = np.polyval(true_coeffs, t) + 0.01 * rng.standard_normal(samples)
    # Vandermonde design matrix (tall: samples x (degree+1))
    A_host = np.vander(t, degree + 1)

    s = Session(n_dims=8, cost_model="cm2")
    print(f"machine: p = {s.machine.p}; design matrix {A_host.shape}\n")

    A = s.matrix(A_host)
    At = A.transpose(same_grid=True)          # communicating transpose
    AtA = At @ A                               # outer-product matmul
    Aty = A.vecmat(s.col_vector(y, like=A))    # A^T y as a vector-matrix product

    result = gaussian.solve(
        s.matrix(AtA.to_numpy()), Aty.to_numpy(), pivoting="implicit"
    )
    coeffs = result.x

    ref = np.linalg.lstsq(A_host, y, rcond=None)[0]
    print("coefficient  fitted        numpy lstsq   true")
    for k, (c, r, tr) in enumerate(zip(coeffs, ref, true_coeffs)):
        print(f"  t^{degree-k}        {c:+.6f}    {r:+.6f}    {tr:+.6f}")

    resid = np.linalg.norm(A_host @ coeffs - y)
    print(f"\nresidual ||Ax - y||: {resid:.4e}")
    print(f"matches numpy lstsq: {np.allclose(coeffs, ref, atol=1e-6)}")

    # path 2: Householder QR — no condition-number squaring
    t_before_qr = s.time
    coeffs_qr = qr.qr_solve(A, y)
    print(f"\nQR path matches    : {np.allclose(coeffs_qr, ref, atol=1e-6)} "
          f"({s.time - t_before_qr:,.0f} ticks)")

    print(f"\nsimulated machine time: {s.time:,.0f} ticks")
    print("phase breakdown (top 4):")
    for name, ticks in s.machine.counters.phase_breakdown()[:4]:
        print(f"  {name:<18s} {ticks:>14,.0f}")

    assert np.allclose(coeffs, ref, atol=1e-6)
    assert np.allclose(coeffs_qr, ref, atol=1e-6)


if __name__ == "__main__":
    main()
