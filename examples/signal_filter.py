#!/usr/bin/env python
"""Spectral low-pass filtering with the distributed FFT.

Cleans a noisy two-tone signal on the simulated machine: forward FFT
(lg L local + lg p exchange butterfly stages), zero the high-frequency
bins, inverse FFT — the kind of signal-processing kernel the Connection
Machine FFT reports targeted.

Run:  python examples/signal_filter.py
"""

import numpy as np

from repro import Session
from repro.algorithms import fft as F


def main(N: int = 1024, keep_below: int = 40) -> None:
    rng = np.random.default_rng(31)
    t = np.arange(N) / N
    clean = np.sin(2 * np.pi * 5 * t) + 0.5 * np.sin(2 * np.pi * 17 * t)
    noisy = clean + 0.8 * rng.standard_normal(N)

    s = Session(n_dims=8, cost_model="cm2")
    machine = s.machine
    print(f"machine: p = {machine.p}; signal length {N}\n")

    spectrum = F.fft(machine, noisy)
    # low-pass: keep only the lowest `keep_below` (and mirrored) bins —
    # a host-side mask applied to the spectrum before the inverse pass
    mask = np.zeros(N)
    mask[:keep_below] = 1.0
    mask[-keep_below + 1:] = 1.0
    machine.charge_flops(N / machine.p)  # the pointwise mask multiply
    filtered = F.ifft(machine, spectrum.values * mask)
    recovered = np.real(filtered.values)

    noise_before = np.sqrt(np.mean((noisy - clean) ** 2))
    noise_after = np.sqrt(np.mean((recovered - clean) ** 2))
    print(f"RMS error vs clean signal: before {noise_before:.3f}, "
          f"after {noise_after:.3f} "
          f"({noise_before / noise_after:.1f}x reduction)")

    print(f"forward FFT : {spectrum.cost.time:>10,.0f} ticks")
    print(f"inverse FFT : {filtered.cost.time:>10,.0f} ticks")
    print(f"total       : {s.time:>10,.0f} ticks")

    # the dominant tones survive the round trip
    peak_bins = np.argsort(np.abs(np.fft.fft(recovered))[: N // 2])[-2:]
    assert set(peak_bins) == {5, 17}, peak_bins
    assert noise_after < noise_before / 2


if __name__ == "__main__":
    main()
