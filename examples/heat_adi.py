#!/usr/bin/env python
"""2-D heat diffusion by the Alternating Direction Implicit method.

The capstone composition: the Peaceman-Rachford ADI scheme — the workload
the TMC tridiagonal/ADI papers were written for — built on the batched
tridiagonal solver.  Each half-step solves one implicit tridiagonal system
per grid line; since there are as many independent systems as lines, the
machine runs them embarrassingly parallel (the published optimum
partitioning), with zero communication in the solves.

    (I - mu Lx) u*      = (I + mu Ly) u^n      (x-implicit half step)
    (I - mu Ly) u^{n+1} = (I + mu Lx) u*       (y-implicit half step)

Run:  python examples/heat_adi.py
"""

import numpy as np

from repro import Session
from repro.algorithms import tridiagonal as T


def laplacian_1d(n: int) -> np.ndarray:
    L = -2.0 * np.eye(n) + np.diag(np.ones(n - 1), 1) + np.diag(np.ones(n - 1), -1)
    return L


def adi_bands(n: int, mu: float):
    """Coefficient bands of (I - mu Lx) for every grid line at once."""
    a = np.full(n, -mu)
    b = np.full(n, 1.0 + 2.0 * mu)
    c = np.full(n, -mu)
    a[0] = 0.0
    c[-1] = 0.0
    return a, b, c


def main(n: int = 32, steps: int = 20, mu: float = 0.25) -> None:
    # one processor per grid line: the embarrassingly parallel optimum
    s = Session(n_dims=5, cost_model="cm2")
    machine = s.machine
    print(f"machine: p = {machine.p}; grid {n}x{n}, {steps} ADI steps\n")

    # a hot square in a cold plate (Dirichlet zero boundaries)
    u = np.zeros((n, n))
    u[n // 4: n // 2, n // 4: n // 2] = 1.0
    initial_heat = u.sum()

    Lx = laplacian_1d(n)
    a, b, c = adi_bands(n, mu)
    bands = lambda: (np.tile(a, (n, 1)), np.tile(b, (n, 1)),
                     np.tile(c, (n, 1)))

    # dense reference operators for the correctness check
    I = np.eye(n)
    Ax_imp = I - mu * Lx
    Ax_exp = I + mu * Lx
    u_ref = u.copy()

    for step in range(steps):
        # x-implicit half step: rhs = (I + mu Ly) u, solve along rows
        rhs = u + mu * (Lx @ u)          # Ly acts along axis 0
        machine.charge_flops(3 * n * n / machine.p)
        aa, bb, cc = bands()
        u = T.solve_many(machine, aa, bb, cc, rhs.T).x.T  # rows of u.T = x-lines

        # y-implicit half step: rhs = (I + mu Lx) u, solve along columns
        rhs = u + mu * (u @ Lx.T)        # Lx acts along axis 1
        machine.charge_flops(3 * n * n / machine.p)
        aa, bb, cc = bands()
        u = T.solve_many(machine, aa, bb, cc, rhs).x

        # dense reference (host-side numpy, for validation only)
        r = u_ref + mu * (Lx @ u_ref)
        u_star = np.linalg.solve(Ax_imp, r)
        r2 = u_star + mu * (u_star @ Lx.T)
        u_ref = np.linalg.solve(Ax_imp, r2.T).T

        if step % 5 == 0 or step == steps - 1:
            print(f"step {step:3d}: peak {u.max():.4f}, "
                  f"total heat {u.sum():.4f}, "
                  f"max |ADI - dense ref| {np.abs(u - u_ref).max():.2e}")

    assert np.abs(u - u_ref).max() < 1e-10, "ADI must match the dense factored solve"
    assert u.max() < 1.0, "diffusion must flatten the peak"
    assert u.min() > -1e-12, "maximum principle: no undershoot below zero"
    assert u.sum() < initial_heat, "Dirichlet boundaries drain heat"

    print(f"\nsimulated machine time: {s.time:,.0f} ticks "
          f"({s.time / steps:,.0f} per ADI step)")
    print("(the line solves run embarrassingly parallel: "
          f"{machine.counters.comm_rounds} total comm rounds)")


if __name__ == "__main__":
    main()
