#!/usr/bin/env python
"""Application 3: a production-planning LP solved with the distributed
two-phase simplex method.

A factory chooses how much of each product to make.  Each product consumes
machine-hours, labour and raw material; capacities bound the totals, a
contractual floor forces a minimum batch of product 0 (a negative-RHS row,
so the solver must run phase I), and the objective maximises profit.

Run:  python examples/lp_production.py
"""

import numpy as np

from repro import Session
from repro.algorithms import simplex


def main() -> None:
    products = ["widgets", "gadgets", "gizmos", "doodads"]
    profit = np.array([12.0, 9.0, 15.0, 7.0])          # $ per unit

    # resource consumption per unit (rows: machine-hours, labour, material)
    use = np.array([
        [2.0, 1.0, 3.0, 1.0],    # machine-hours
        [1.0, 2.0, 2.0, 1.0],    # labour-hours
        [4.0, 3.0, 6.0, 2.0],    # raw material (kg)
    ])
    capacity = np.array([240.0, 200.0, 500.0])

    # contractual floor: at least 20 widgets  ->  -x_widgets <= -20
    floor = np.zeros((1, 4))
    floor[0, 0] = -1.0
    A = np.vstack([use, floor])
    b = np.concatenate([capacity, [-20.0]])

    s = Session(n_dims=8, cost_model="cm2")
    print(f"machine: p = {s.machine.p}\n")

    result = simplex.solve(s.machine, A, b, profit)
    assert result.status == "optimal", result.status

    print(f"status     : {result.status}")
    print(f"profit     : ${result.objective:,.2f}")
    print(f"iterations : {result.iterations} "
          f"(phase I: {result.phase1_iterations})")
    print(f"simulated time: {result.cost.time:,.0f} ticks\n")
    print("production plan:")
    for name, qty in zip(products, result.x):
        print(f"  {name:<8s} {qty:8.2f} units")

    slack = b[:3] - use @ result.x
    print("\nresource slack:")
    for name, s_ in zip(["machine-hours", "labour", "material"], slack):
        print(f"  {name:<14s} {s_:8.2f}")

    # sanity: the floor is honoured and resources are not exceeded
    assert result.x[0] >= 20.0 - 1e-7
    assert np.all(use @ result.x <= capacity + 1e-7)

    # cross-check against scipy if available
    try:
        from scipy.optimize import linprog
    except ImportError:
        print("\n(scipy unavailable; skipping cross-check)")
        return
    ref = linprog(-profit, A_ub=A, b_ub=b, bounds=(0, None), method="highs")
    print(f"\nscipy cross-check: objective {-ref.fun:,.2f} "
          f"(match: {np.isclose(-ref.fun, result.objective, atol=1e-6)})")


if __name__ == "__main__":
    main()
