#!/usr/bin/env python
"""Application 2: solve a dense linear system with the distributed
Gaussian-elimination routine, and compare against the naive baseline.

This is the circuit-simulation / structural-analysis workload class the
paper's era motivated: a dense, moderately sized system solved on a
machine with many more processors than a workstation has words of cache.

Run:  python examples/linear_solver.py [n]
"""

import sys

import numpy as np

from repro import Session
from repro import workloads as W
from repro.algorithms import gaussian, serial
from repro.algorithms.naive import NaiveMatrix
from repro.analysis import format_table, pt_ratio


def main(n: int = 64) -> None:
    s = Session(n_dims=10, cost_model="cm2")  # 1024 simulated processors
    print(f"machine: p = {s.machine.p}, cost model = {s.machine.cost_model}\n")

    A_host, b, x_true = W.random_system(n, seed=7)

    # primitive-based solve
    A = s.matrix(A_host)
    result = gaussian.solve(A, b)
    err = np.abs(result.x - x_true).max()
    print(f"primitive solve:  max|x - x_true| = {err:.2e}, "
          f"simulated time = {result.cost.time:,.0f} ticks")

    # the identical algorithm on naive (serialised) communication
    naive_A = NaiveMatrix.from_numpy(s.machine, A_host)
    naive_result = gaussian.solve(naive_A, b)
    print(f"naive solve:      same answer = "
          f"{np.allclose(naive_result.x, result.x)}, "
          f"simulated time = {naive_result.cost.time:,.0f} ticks")
    print(f"primitive speedup over naive: "
          f"{naive_result.cost.time / result.cost.time:.1f}x\n")

    # the optimality audit the paper's analysis promises
    ops = serial.gaussian_solve(A_host, b).ops
    ratio = pt_ratio(result.cost, s.machine.p, ops, s.machine.cost_model)
    p = s.machine.p
    threshold = p * np.log2(p)
    print(format_table(
        ["m", "p lg p", "serial ops", "PT / serial"],
        [[n * n, threshold, ops, ratio]],
        caption="processor-time product vs best serial algorithm:",
    ))
    print(
        "(Gaussian elimination runs n sequential pivot steps, so its PT\n"
        " ratio converges to the constant only once n^2 >> p lg p * tau;\n"
        " benchmarks/bench_optimality.py sweeps the full curve.)"
    )

    print("\nwhere the simulated time went:")
    for name, t in s.machine.counters.phase_breakdown():
        if name in ("pivot-search", "row-swap", "update", "back-substitution"):
            print(f"  {name:<18s} {t:>14,.0f} ticks")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 128)
