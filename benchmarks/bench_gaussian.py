"""R-T3: Gaussian elimination timings (application 2).

Regenerates the elimination table: serial vs primitive vs naive simulated
times with the processor-time-over-serial column the optimality claim is
judged on.
"""

import numpy as np

from harness import run_gaussian
from repro import workloads as W
from repro.algorithms import gaussian
from repro.algorithms.naive import NaiveMatrix
from repro.core import DistributedMatrix
from repro.machine import CostModel, Hypercube


def test_bench_gaussian_primitives(benchmark):
    A_h, b, x_true = W.diagonally_dominant_system(48, seed=1)

    def run():
        machine = Hypercube(6, CostModel.cm2())
        return gaussian.solve(DistributedMatrix.from_numpy(machine, A_h), b)

    res = benchmark(run)
    assert np.allclose(res.x, x_true, atol=1e-7)


def test_bench_gaussian_naive(benchmark):
    A_h, b, x_true = W.diagonally_dominant_system(48, seed=1)

    def run():
        machine = Hypercube(6, CostModel.cm2())
        return gaussian.solve(NaiveMatrix.from_numpy(machine, A_h), b)

    res = benchmark(run)
    assert np.allclose(res.x, x_true, atol=1e-7)


def test_bench_gaussian_pivoting_overhead(benchmark):
    """Partial pivoting vs none on a diagonally dominant system."""
    A_h, b, x_true = W.diagonally_dominant_system(48, seed=2)

    def run():
        machine = Hypercube(6, CostModel.cm2())
        A = DistributedMatrix.from_numpy(machine, A_h)
        return gaussian.solve(A, b, pivoting="none")

    res = benchmark(run)
    assert np.allclose(res.x, x_true, atol=1e-7)


def test_bench_table_r_t3(benchmark, write_result):
    result = benchmark.pedantic(
        lambda: write_result(run_gaussian), rounds=1, iterations=1
    )
    speedups = [v for k, v in result.metrics.items() if k.startswith("speedup")]
    assert all(s > 1.5 for s in speedups)
    # PT/serial must fall as the system grows (converging constant factor)
    ratios = [v for k, v in sorted(result.metrics.items())
              if k.startswith("pt_ratio")]
    assert ratios == sorted(ratios, reverse=True) or min(ratios) < ratios[0]
