"""R-F3: embedding-change costs ("the primitives may indicate a change
from one embedding to another").

Regenerates the remap cost table: relabelling transpose (nearly free),
same-grid transpose (a real dimension permutation), vector-order to
row-order conversion, and residence (band) changes, against a reduce of
the same matrix for scale.
"""

import numpy as np

from harness import run_remap
from repro import workloads as W
from repro.core import DistributedMatrix, DistributedVector
from repro.embeddings import (
    ColAlignedEmbedding,
    RowAlignedEmbedding,
    VectorOrderEmbedding,
)
from repro.machine import CostModel, Hypercube


def test_bench_transpose_relabel(benchmark):
    machine = Hypercube(8, CostModel.cm2())
    A = DistributedMatrix.from_numpy(machine, W.dense_matrix(64, 64, seed=1))
    T = benchmark(lambda: A.transpose())
    assert np.allclose(T.to_numpy(), A.to_numpy().T)


def test_bench_transpose_same_grid(benchmark):
    machine = Hypercube(8, CostModel.cm2())
    A = DistributedMatrix.from_numpy(machine, W.dense_matrix(64, 64, seed=1))
    T = benchmark(lambda: A.transpose(same_grid=True))
    assert np.allclose(T.to_numpy(), A.to_numpy().T)


def test_bench_vector_order_to_aligned(benchmark):
    machine = Hypercube(8, CostModel.cm2())
    A = DistributedMatrix.from_numpy(machine, W.dense_matrix(64, 64, seed=1))
    v = DistributedVector.from_numpy(machine, W.dense_vector(64, seed=2))
    target = RowAlignedEmbedding(A.embedding, None)
    out = benchmark(lambda: v.as_embedding(target))
    assert np.allclose(out.to_numpy(), v.to_numpy())


def test_bench_residence_change(benchmark):
    machine = Hypercube(8, CostModel.cm2())
    A = DistributedMatrix.from_numpy(machine, W.dense_matrix(64, 64, seed=1))
    src = ColAlignedEmbedding(A.embedding, 0)
    dst = ColAlignedEmbedding(A.embedding, 1)
    v = DistributedVector(src.scatter(W.dense_vector(64, seed=3)), src)
    out = benchmark(lambda: v.as_embedding(dst))
    assert np.allclose(out.to_numpy(), v.to_numpy())


def test_bench_table_r_f3(benchmark, write_result):
    result = benchmark.pedantic(
        lambda: write_result(run_remap), rounds=1, iterations=1
    )
    for key, value in result.metrics.items():
        if key.startswith("transpose_relabel"):
            side = key.rsplit("_", 1)[1]
            # relabelling costs orders of magnitude less than the real
            # dimension permutation — the embedding flexibility pays off
            assert value < result.metrics[f"transpose_same_grid_{side}"] / 10
