"""Benchmark-suite configuration.

Each ``bench_*.py`` regenerates one reconstructed table/figure (DESIGN.md
R-T1 … R-A1).  pytest-benchmark times the harness (wall-clock of the
simulation); the *simulated* machine times — the paper-facing numbers —
are written to ``benchmarks/results/*.txt`` and asserted on inside each
bench.  Set ``REPRO_BENCH_SCALE=paper`` for the full-size sweeps used in
EXPERIMENTS.md.
"""

import pytest


@pytest.fixture(scope="session")
def write_result():
    """Run an experiment once, persist its table, return it."""
    cache = {}

    def runner(fn):
        key = fn.__name__
        if key not in cache:
            result = fn()
            result.write()
            cache[key] = result
        return cache[key]

    return runner
