"""Shared experiment runners for the benchmark suite.

One function per reconstructed table/figure from DESIGN.md (R-T1 … R-A1).
Each returns an :class:`ExperimentResult`: the paper-style formatted table
plus the key metrics the bench asserts on (who wins, by what factor, where
the crossover falls).  The pytest-benchmark wrappers in ``bench_*.py`` time
the runners and write the tables to ``benchmarks/results/``; running a
bench module directly (``python benchmarks/bench_primitives.py``) prints
its table(s) at full scale.

All reported times are *simulated* ticks under the CM-2-flavoured cost
model; see EXPERIMENTS.md for the units discussion.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro import workloads as W
from repro.algorithms import gaussian, serial, simplex
from repro.algorithms.naive import NaiveMatrix, NaiveVector
from repro.analysis import PrimitiveCosts, format_speedup, format_table, pt_ratio
from repro.core import DistributedMatrix, DistributedVector
from repro.embeddings import (
    ColAlignedEmbedding,
    MatrixEmbedding,
    RowAlignedEmbedding,
    VectorOrderEmbedding,
    remap_vector,
    transpose,
)
from repro.machine import CostModel, CostSnapshot, Hypercube

# Shared wall-clock measurement loops.  Every bench script that times host
# seconds (bench_wallclock, bench_batch) goes through these — one warm-up,
# best-of-reps, configurations interleaved rep by rep — so the methodology
# can't drift between scripts.  They live in the library so the experiment
# warehouse (``python -m repro bench``) uses the identical estimator.
from repro.metrics.timing import TimedRun, best_of, interleaved  # noqa: F401

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: benchmark scale: "small" keeps the pytest run fast; "paper" is the full
#: sweep used to fill EXPERIMENTS.md.  Select with REPRO_BENCH_SCALE.
SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")


@dataclass
class ExperimentResult:
    """One regenerated table plus machine-checkable headline metrics."""

    experiment: str
    caption: str
    table: str
    metrics: Dict[str, float] = field(default_factory=dict)

    def write(self) -> str:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        path = os.path.join(RESULTS_DIR, f"{self.experiment}.txt")
        with open(path, "w") as fh:
            fh.write(self.caption + "\n\n" + self.table + "\n")
        return path

    def show(self) -> None:  # pragma: no cover - CLI convenience
        print(f"== {self.experiment}: {self.caption}")
        print(self.table)
        print()


def _machine(n: int) -> Hypercube:
    return Hypercube(n, CostModel.cm2())


def _elapsed(machine: Hypercube, fn: Callable[[], None]) -> CostSnapshot:
    start = machine.snapshot()
    fn()
    return machine.elapsed_since(start)


# ---------------------------------------------------------------------------
# R-T1: timings of the four primitives
# ---------------------------------------------------------------------------

def run_primitives(n_dims: Optional[int] = None,
                   sides: Optional[Sequence[int]] = None) -> ExperimentResult:
    """Simulated time of each primitive vs matrix size at fixed p."""
    n_dims = n_dims if n_dims is not None else (8 if SCALE == "small" else 12)
    if sides is None:
        base = 2 ** max((n_dims // 2), 2)
        sides = [base, base * 2, base * 4, base * 8]
    rows = []
    metrics: Dict[str, float] = {}
    for side in sides:
        machine = _machine(n_dims)
        emb = MatrixEmbedding.default(machine, side, side)
        A = W.dense_matrix(side, side, seed=side)
        M = DistributedMatrix(emb.scatter(A), emb)
        times = {}
        times["extract"] = _elapsed(machine, lambda: M.extract(0, side // 2)).time
        vec = M.extract(0, side // 2)
        times["insert"] = _elapsed(machine, lambda: M.insert(0, 0, vec)).time
        times["distribute"] = _elapsed(
            machine, lambda: vec.distribute(M, axis=0)
        ).time
        times["reduce"] = _elapsed(machine, lambda: M.reduce(1, "sum")).time
        times["reduce_loc"] = _elapsed(machine, lambda: M.argreduce(1, "max")).time
        model = PrimitiveCosts.for_embedding(emb)
        rows.append([
            f"{side}x{side}",
            side * side // machine.p,
            times["extract"],
            times["insert"],
            times["distribute"],
            times["reduce"],
            times["reduce_loc"],
            model.reduce(1),
        ])
        metrics[f"reduce_{side}"] = times["reduce"]
        metrics[f"model_reduce_{side}"] = model.reduce(1)
    table = format_table(
        ["matrix", "m/p", "extract", "insert", "distribute", "reduce",
         "arg-reduce", "reduce (model)"],
        rows,
        caption=None,
    )
    return ExperimentResult(
        "R-T1_primitives",
        f"Primitive timings (simulated ticks), p = 2^{n_dims}, CM-2 cost model",
        table,
        metrics,
    )


# ---------------------------------------------------------------------------
# R-T2: vector-matrix multiply
# ---------------------------------------------------------------------------

def run_matvec(n_dims: Optional[int] = None,
               sides: Optional[Sequence[int]] = None) -> ExperimentResult:
    n_dims = n_dims if n_dims is not None else (8 if SCALE == "small" else 12)
    if sides is None:
        base = 2 ** max((n_dims // 2), 2)
        sides = [base, base * 2, base * 4, base * 8]
    rows = []
    metrics: Dict[str, float] = {}
    for side in sides:
        A_h = W.dense_matrix(side, side, seed=side)
        x_h = W.dense_vector(side, seed=side + 1)

        mp = _machine(n_dims)
        A = DistributedMatrix.from_numpy(mp, A_h)
        x = DistributedVector(
            RowAlignedEmbedding(A.embedding, None).scatter(x_h),
            RowAlignedEmbedding(A.embedding, None),
        )
        prim = _elapsed(mp, lambda: A.matvec(x)).time

        mn = _machine(n_dims)
        NA = NaiveMatrix.from_numpy(mn, A_h)
        nx = NaiveVector(
            RowAlignedEmbedding(NA.embedding, None).scatter(x_h),
            RowAlignedEmbedding(NA.embedding, None),
        )
        naive = _elapsed(mn, lambda: NA.matvec(nx)).time

        ops = serial.matvec(A_h, x_h).ops
        serial_t = ops * mp.cost_model.t_a
        rows.append([
            f"{side}x{side}", serial_t, prim, naive, naive / prim,
            serial_t / prim,
        ])
        metrics[f"speedup_{side}"] = naive / prim
    table = format_table(
        ["matrix", "serial", "primitives", "naive", "naive/prim",
         "serial/prim"],
        rows,
    )
    return ExperimentResult(
        "R-T2_matvec",
        f"Matrix-vector multiply timings (simulated ticks), p = 2^{n_dims}",
        table,
        metrics,
    )


# ---------------------------------------------------------------------------
# R-T3: Gaussian elimination
# ---------------------------------------------------------------------------

def run_gaussian(n_dims: Optional[int] = None,
                 orders: Optional[Sequence[int]] = None) -> ExperimentResult:
    n_dims = n_dims if n_dims is not None else (6 if SCALE == "small" else 10)
    # Orders of the form 2^k - 1 keep the (n, n+1) tableau's aspect-matched
    # grid split square at every size; otherwise the *naive* baseline's
    # serialised cost jumps around with the band count and the table is
    # hard to read (the primitives barely care).
    orders = orders or ([31, 63, 95] if SCALE == "small" else [63, 127, 255, 383])
    rows = []
    metrics: Dict[str, float] = {}
    for n_sys in orders:
        A_h, b, x_true = W.diagonally_dominant_system(n_sys, seed=n_sys)

        mp = _machine(n_dims)
        res_p = gaussian.solve(DistributedMatrix.from_numpy(mp, A_h), b)
        assert np.allclose(res_p.x, x_true, atol=1e-6)

        mn = _machine(n_dims)
        res_n = gaussian.solve(NaiveMatrix.from_numpy(mn, A_h), b)
        assert np.allclose(res_n.x, x_true, atol=1e-6)

        ops = serial.gaussian_solve(A_h, b).ops
        serial_t = ops * mp.cost_model.t_a
        rows.append([
            n_sys, serial_t, res_p.cost.time, res_n.cost.time,
            res_n.cost.time / res_p.cost.time,
            pt_ratio(res_p.cost, mp.p, ops, mp.cost_model),
        ])
        metrics[f"speedup_{n_sys}"] = res_n.cost.time / res_p.cost.time
        metrics[f"pt_ratio_{n_sys}"] = pt_ratio(
            res_p.cost, mp.p, ops, mp.cost_model
        )
    table = format_table(
        ["n", "serial", "primitives", "naive", "naive/prim", "PT/serial"],
        rows,
    )
    return ExperimentResult(
        "R-T3_gaussian",
        f"Gaussian elimination timings (simulated ticks), p = 2^{n_dims}",
        table,
        metrics,
    )


# ---------------------------------------------------------------------------
# R-T4: simplex
# ---------------------------------------------------------------------------

def run_simplex(n_dims: Optional[int] = None,
                shapes: Optional[Sequence] = None) -> ExperimentResult:
    n_dims = n_dims if n_dims is not None else (6 if SCALE == "small" else 10)
    shapes = shapes or (
        [(8, 6), (16, 12), (24, 18)]
        if SCALE == "small"
        else [(16, 12), (32, 24), (64, 48), (96, 64)]
    )
    rows = []
    metrics: Dict[str, float] = {}
    for mi, ni in shapes:
        lp = W.feasible_lp(mi, ni, seed=mi * 31 + ni)

        mp = _machine(n_dims)
        res_p = simplex.solve(mp, lp.A, lp.b, lp.c)
        assert res_p.status == "optimal"

        mn = _machine(n_dims)
        res_n = simplex.solve(mn, lp.A, lp.b, lp.c, matrix_cls=NaiveMatrix)
        assert res_n.status == "optimal"
        assert res_n.iterations == res_p.iterations

        st, obj, _, its, ops = serial.simplex_solve(lp.A, lp.b, lp.c)
        assert np.isclose(obj, res_p.objective, atol=1e-6)
        per_iter_p = res_p.cost.time / max(res_p.iterations, 1)
        per_iter_n = res_n.cost.time / max(res_n.iterations, 1)
        rows.append([
            f"{mi}x{ni}", res_p.iterations, per_iter_p, per_iter_n,
            res_p.cost.time, res_n.cost.time,
            res_n.cost.time / res_p.cost.time,
        ])
        metrics[f"speedup_{mi}x{ni}"] = res_n.cost.time / res_p.cost.time
    table = format_table(
        ["LP (m x n)", "iters", "prim/iter", "naive/iter", "prim total",
         "naive total", "naive/prim"],
        rows,
    )
    return ExperimentResult(
        "R-T4_simplex",
        f"Simplex timings (simulated ticks), p = 2^{n_dims}, Dantzig rule",
        table,
        metrics,
    )


# ---------------------------------------------------------------------------
# R-F1: processor-time-product optimality vs m/p
# ---------------------------------------------------------------------------

def run_optimality(n_dims: Optional[int] = None) -> ExperimentResult:
    n_dims = n_dims if n_dims is not None else (8 if SCALE == "small" else 10)
    machine_p = 2 ** n_dims
    threshold = machine_p * math.log2(machine_p)
    rows = []
    metrics: Dict[str, float] = {}
    side = int(2 ** math.ceil(n_dims / 2)) // 4
    sides = [max(side, 2)]
    while sides[-1] ** 2 < machine_p * 1024:
        sides.append(sides[-1] * 2)
    for side in sides:
        cost = CostModel.cm2()
        machine = Hypercube(n_dims, cost)
        A_h = np.ones((side, side))
        A = DistributedMatrix.from_numpy(machine, A_h)
        emb = RowAlignedEmbedding(A.embedding, None)
        x = DistributedVector(emb.scatter(np.ones(side)), emb)
        t = _elapsed(machine, lambda: A.matvec(x)).time
        ops = 2 * side * side
        ratio = pt_ratio(CostSnapshot(time=t), machine_p, ops, cost)
        m_elems = side * side
        rows.append([
            m_elems, m_elems / machine_p,
            "yes" if m_elems > threshold else "no",
            t, ratio,
        ])
        metrics[f"ratio_at_{m_elems}"] = ratio
    metrics["threshold"] = threshold
    table = format_table(
        ["m", "m/p", "m > p lg p", "parallel time", "PT / serial"],
        rows,
    )
    return ExperimentResult(
        "R-F1_optimality",
        f"Processor-time product vs problem size (matvec), p = 2^{n_dims}; "
        f"threshold m = p lg p = {threshold:.0f}",
        table,
        metrics,
    )


# ---------------------------------------------------------------------------
# R-F2: speedup over naive vs machine size
# ---------------------------------------------------------------------------

def run_speedup(n_list: Optional[Sequence[int]] = None) -> ExperimentResult:
    n_list = n_list or ([4, 6, 8, 10] if SCALE == "small" else [4, 6, 8, 10, 12, 14])
    side = 128 if SCALE == "small" else 256
    A_h = W.dense_matrix(side, side, seed=1)
    x_h = W.dense_vector(side, seed=2)
    xs, naive_t, prim_t = [], [], []
    metrics: Dict[str, float] = {}
    for n in n_list:
        mp = _machine(n)
        A = DistributedMatrix.from_numpy(mp, A_h)
        emb = RowAlignedEmbedding(A.embedding, None)
        x = DistributedVector(emb.scatter(x_h), emb)

        def prim_mix():
            A.matvec(x)
            A.reduce(1, "max")
            A.extract(1, 3)

        tp = _elapsed(mp, prim_mix).time

        mn = _machine(n)
        NA = NaiveMatrix.from_numpy(mn, A_h)
        nemb = RowAlignedEmbedding(NA.embedding, None)
        nx = NaiveVector(nemb.scatter(x_h), nemb)

        def naive_mix():
            NA.matvec(nx)
            NA.reduce(1, "max")
            NA.extract(1, 3)

        tn = _elapsed(mn, naive_mix).time
        xs.append(2 ** n)
        naive_t.append(tn)
        prim_t.append(tp)
        metrics[f"speedup_p{2**n}"] = tn / tp
    table = format_speedup(
        xs, naive_t, prim_t, x_label="p",
    )
    return ExperimentResult(
        "R-F2_speedup",
        f"Primitive vs naive (matvec + reduce + extract mix), "
        f"{side}x{side} matrix — the 'almost an order of magnitude' claim",
        table,
        metrics,
    )


# ---------------------------------------------------------------------------
# R-F3: embedding-change costs
# ---------------------------------------------------------------------------

def run_remap(n_dims: Optional[int] = None,
              sides: Optional[Sequence[int]] = None) -> ExperimentResult:
    n_dims = n_dims if n_dims is not None else (8 if SCALE == "small" else 10)
    if sides is None:
        base = 2 ** max((n_dims // 2), 2)
        sides = [base, base * 2, base * 4]
    rows = []
    metrics: Dict[str, float] = {}
    for side in sides:
        machine = _machine(n_dims)
        emb = MatrixEmbedding.default(machine, side, side)
        A = W.dense_matrix(side, side, seed=side)
        M = emb.scatter(A)

        t_transpose = _elapsed(machine, lambda: transpose(M, emb)).time
        t_transpose_sg = _elapsed(
            machine, lambda: transpose(M, emb, same_grid=True)
        ).time

        vo = VectorOrderEmbedding(machine, side)
        v_h = W.dense_vector(side, seed=side)
        pv = vo.scatter(v_h)
        row_emb = RowAlignedEmbedding(emb, None)
        t_vec2row = _elapsed(machine, lambda: remap_vector(pv, vo, row_emb)).time

        col_res = ColAlignedEmbedding(emb, 0)
        pc = col_res.scatter(v_h)
        col_res2 = ColAlignedEmbedding(emb, 1)
        t_band = _elapsed(
            machine, lambda: remap_vector(pc, col_res, col_res2)
        ).time

        # for reference: a reduce of the same matrix
        MD = DistributedMatrix(M, emb)
        t_reduce = _elapsed(machine, lambda: MD.reduce(1, "sum")).time

        rows.append([
            f"{side}x{side}", t_transpose, t_transpose_sg, t_vec2row, t_band,
            t_reduce,
        ])
        metrics[f"transpose_relabel_{side}"] = t_transpose
        metrics[f"transpose_same_grid_{side}"] = t_transpose_sg
    table = format_table(
        ["matrix", "transpose (relabel)", "transpose (same grid)",
         "vec->row order", "band change", "reduce (ref)"],
        rows,
    )
    return ExperimentResult(
        "R-F3_remap",
        f"Embedding-change costs (simulated ticks), p = 2^{n_dims}",
        table,
        metrics,
    )


# ---------------------------------------------------------------------------
# R-F4: scaling with machine size
# ---------------------------------------------------------------------------

def run_scaling(n_list: Optional[Sequence[int]] = None) -> ExperimentResult:
    n_list = n_list or ([2, 4, 6, 8, 10] if SCALE == "small" else [4, 6, 8, 10, 12, 14])
    fixed_side = 128 if SCALE == "small" else 512
    rows = []
    metrics: Dict[str, float] = {}
    for n in n_list:
        # fixed problem: strong scaling
        mf = _machine(n)
        A = DistributedMatrix.from_numpy(
            mf, W.dense_matrix(fixed_side, fixed_side, seed=3)
        )
        emb = RowAlignedEmbedding(A.embedding, None)
        x = DistributedVector(emb.scatter(np.ones(fixed_side)), emb)
        t_fixed = _elapsed(mf, lambda: A.matvec(x)).time

        # scaled problem: 64 elements per processor at every size
        side = int(math.sqrt(64 * 2 ** n))
        ms = _machine(n)
        B = DistributedMatrix.from_numpy(ms, W.dense_matrix(side, side, seed=4))
        emb2 = RowAlignedEmbedding(B.embedding, None)
        y = DistributedVector(emb2.scatter(np.ones(side)), emb2)
        t_scaled = _elapsed(ms, lambda: B.matvec(y)).time

        rows.append([2 ** n, t_fixed, t_scaled])
        metrics[f"fixed_p{2**n}"] = t_fixed
        metrics[f"scaled_p{2**n}"] = t_scaled
    table = format_table(
        ["p", f"fixed {fixed_side}x{fixed_side}", "scaled (64 elems/proc)"],
        rows,
    )
    return ExperimentResult(
        "R-F4_scaling",
        "Matvec time vs machine size: strong scaling (fixed problem) and "
        "virtual-processor scaling (fixed m/p)",
        table,
        metrics,
    )


# ---------------------------------------------------------------------------
# R-A1: ablations
# ---------------------------------------------------------------------------

def run_ablation(n_dims: Optional[int] = None) -> ExperimentResult:
    n_dims = n_dims if n_dims is not None else (8 if SCALE == "small" else 10)
    side = 2 ** max(n_dims // 2, 2) * 4
    rows = []
    metrics: Dict[str, float] = {}

    # (a) tree collectives vs serialised (the primitives' core advantage)
    mp = _machine(n_dims)
    A = DistributedMatrix.from_numpy(mp, W.dense_matrix(side, side, seed=5))
    t_tree = _elapsed(mp, lambda: A.reduce(1, "sum")).time
    mn = _machine(n_dims)
    NA = NaiveMatrix.from_numpy(mn, W.dense_matrix(side, side, seed=5))
    t_serial = _elapsed(mn, lambda: NA.reduce(1, "sum")).time
    rows.append(["reduce: tree vs serialised", t_tree, t_serial,
                 t_serial / t_tree])
    metrics["tree_factor"] = t_serial / t_tree

    # (b) Gray vs binary coding: band-walk remap cost
    for label_key, coding in (("gray", "gray"), ("binary", "binary")):
        machine = _machine(n_dims)
        emb = MatrixEmbedding.default(machine, side, side, coding=coding)
        cur = ColAlignedEmbedding(emb, 0)
        pv = cur.scatter(np.ones(side))
        t0 = machine.snapshot()
        for band in range(1, min(emb.Pc, 8)):
            nxt = ColAlignedEmbedding(emb, band)
            pv = remap_vector(pv, cur, nxt)
            cur = nxt
        metrics[f"bandwalk_{label_key}"] = machine.elapsed_since(t0).time
    rows.append([
        "band walk: gray vs binary coding",
        metrics["bandwalk_gray"], metrics["bandwalk_binary"],
        metrics["bandwalk_binary"] / metrics["bandwalk_gray"],
    ])

    # (b') implicit vs explicit pivoting in Gaussian elimination
    A_h, b, _ = W.random_system(48 if SCALE == "small" else 96, seed=11)
    for mode in ("implicit", "partial"):
        machine = _machine(n_dims)
        res = gaussian.solve(
            DistributedMatrix.from_numpy(machine, A_h), b, pivoting=mode
        )
        metrics[f"pivot_{mode}"] = res.cost.time
    rows.append([
        "gaussian: implicit vs explicit pivoting",
        metrics["pivot_implicit"], metrics["pivot_partial"],
        metrics["pivot_partial"] / metrics["pivot_implicit"],
    ])

    # (c) aspect-matched grid split vs forced square split (skewed matrix)
    R, C = 16 * 2 ** n_dims // 4, 4
    m_match = _machine(n_dims)
    emb_match = MatrixEmbedding.default(m_match, R, C)
    Mm = DistributedMatrix(emb_match.scatter(np.ones((R, C))), emb_match)
    t_match = _elapsed(m_match, lambda: Mm.reduce(1, "sum")).time
    m_sq = _machine(n_dims)
    half = n_dims // 2
    emb_sq = MatrixEmbedding(
        m_sq, R, C, row_dims=m_sq.dims[:half], col_dims=m_sq.dims[half:]
    )
    Ms = DistributedMatrix(emb_sq.scatter(np.ones((R, C))), emb_sq)
    t_sq = _elapsed(m_sq, lambda: Ms.reduce(1, "sum")).time
    rows.append([
        f"grid split for {R}x{C}: matched vs square", t_match, t_sq,
        t_sq / t_match,
    ])
    metrics["aspect_factor"] = t_sq / t_match

    table = format_table(
        ["ablation", "with design choice", "without", "factor"],
        rows,
    )
    return ExperimentResult(
        "R-A1_ablation",
        f"Design-choice ablations (simulated ticks), p = 2^{n_dims}",
        table,
        metrics,
    )


# ---------------------------------------------------------------------------
# R-E1: extension operations (scan, segmented scan, matmul)
# ---------------------------------------------------------------------------

def run_extensions(n_dims: Optional[int] = None) -> ExperimentResult:
    """Timings of the extension operations beyond the paper's four.

    Scans share reduce's cost shape (one extra local pass); matmul is K
    accumulated rank-1 updates.  Not part of the paper's evaluation —
    reported for the library's own documentation.
    """
    n_dims = n_dims if n_dims is not None else (8 if SCALE == "small" else 10)
    base = 2 ** max((n_dims // 2), 2)
    sides = [base, base * 2, base * 4]
    rows = []
    metrics: Dict[str, float] = {}
    for side in sides:
        machine = _machine(n_dims)
        A_h = W.dense_matrix(side, side, seed=side)
        A = DistributedMatrix.from_numpy(machine, A_h)
        t_scan = _elapsed(machine, lambda: A.scan(1, "sum")).time
        t_reduce = _elapsed(machine, lambda: A.reduce(1, "sum")).time

        v = DistributedVector.from_numpy(machine, W.dense_vector(side, seed=1))
        flags = DistributedVector(
            v.embedding.scatter(
                np.random.default_rng(side).random(side) < 0.2
            ),
            v.embedding,
        )
        t_segscan = _elapsed(machine, lambda: v.segmented_scan(flags)).time

        K = max(side // 16, 2)
        B = DistributedMatrix.from_numpy(
            machine, W.dense_matrix(side, K, seed=2)
        )
        Ck = DistributedMatrix.from_numpy(
            machine, W.dense_matrix(K, side, seed=3)
        )
        t_matmul = _elapsed(machine, lambda: B @ Ck).time

        rows.append([
            f"{side}x{side}", t_scan, t_reduce, t_segscan,
            f"K={K}", t_matmul,
        ])
        metrics[f"scan_over_reduce_{side}"] = t_scan / t_reduce
        metrics[f"matmul_{side}"] = t_matmul
    table = format_table(
        ["matrix", "scan", "reduce (ref)", "seg-scan (vec)", "inner dim",
         "matmul"],
        rows,
    )
    return ExperimentResult(
        "R-E1_extensions",
        f"Extension-operation timings (simulated ticks), p = 2^{n_dims}",
        table,
        metrics,
    )


# ---------------------------------------------------------------------------
# R-E3: message-size crossover between plain and pipelined collectives
# ---------------------------------------------------------------------------

def run_pipelining(n_dims: Optional[int] = None) -> ExperimentResult:
    """Plain vs pipelined broadcast across message sizes.

    The classic Boolean-cube figure (Johnsson & Ho): the binomial broadcast
    wins for small blocks (fewer start-ups), the pipelined schedule for
    large blocks (k/2 x less volume); the measured crossover must match the
    closed-form break-even volume.
    """
    from repro import comm
    n_dims = n_dims if n_dims is not None else (8 if SCALE == "small" else 10)
    cost = CostModel.cm2()
    k = n_dims
    L_star = comm.broadcast_crossover(cost, k)
    rows = []
    metrics: Dict[str, float] = {"crossover_model": L_star}
    L = 4
    while L <= max(4 * L_star, 64):
        mp = Hypercube(n_dims, cost)
        pv = mp.pvar(np.zeros((mp.p, L)))
        t0 = mp.counters.time
        comm.broadcast(mp, pv)
        plain = mp.counters.time - t0
        t0 = mp.counters.time
        comm.broadcast_pipelined(mp, pv)
        pipe = mp.counters.time - t0
        rows.append([L, plain, pipe, plain / pipe,
                     "pipelined" if pipe < plain else "plain"])
        metrics[f"ratio_L{L}"] = plain / pipe
        L *= 4
    table = format_table(
        ["block L", "plain bcast", "pipelined", "plain/pipe", "winner"],
        rows,
    )
    return ExperimentResult(
        "R-E3_pipelining",
        f"Broadcast: plain vs pipelined vs message size, p = 2^{n_dims}; "
        f"model crossover L* = {L_star:.0f}",
        table,
        metrics,
    )


# ---------------------------------------------------------------------------
# R-E4: the data-parallel kernels (FFT, sort, histogram)
# ---------------------------------------------------------------------------

def run_dataparallel(n_dims: Optional[int] = None) -> ExperimentResult:
    """FFT / bitonic sort / histogram timings across problem sizes.

    The companion kernels from the same TMC report series (Johnsson's cube
    FFTs and sorts, the Gerogiannis-Johnsson histogram), all running on
    this library's machine and embeddings.
    """
    from repro.algorithms import fft as Ffft
    from repro.algorithms import histogram as Fhist
    from repro.algorithms.sort import bitonic_sort, sample_sort
    n_dims = n_dims if n_dims is not None else (6 if SCALE == "small" else 10)
    rows = []
    metrics: Dict[str, float] = {}
    base = 4 * 2 ** n_dims
    for N in (base, base * 4, base * 16):
        rng_x = W.dense_vector(N, seed=N)

        mf = _machine(n_dims)
        t_fft = Ffft.fft(mf, rng_x).cost.time

        ms = _machine(n_dims)
        v = DistributedVector.from_numpy(ms, rng_x)
        t_sort = bitonic_sort(v).cost.time

        ms2 = _machine(n_dims)
        v2 = DistributedVector.from_numpy(ms2, rng_x)
        t_ssort = sample_sort(v2).cost.time

        mh = _machine(n_dims)
        vh = DistributedVector.from_numpy(mh, rng_x)
        t_hist = Fhist.histogram(vh, bins=256, value_range=(-4, 4)).cost.time
        mh2 = _machine(n_dims)
        vh2 = DistributedVector.from_numpy(mh2, rng_x)
        t_hist_sp = Fhist.histogram_sparse(
            vh2, bins=256, value_range=(-4, 4)
        ).cost.time

        rows.append([N, N // 2 ** n_dims, t_fft, t_sort, t_ssort,
                     t_hist, t_hist_sp])
        metrics[f"hist_ratio_{N}"] = t_hist / t_hist_sp
        metrics[f"sort_ratio_{N}"] = t_sort / t_ssort
        metrics[f"fft_{N}"] = t_fft
    table = format_table(
        ["N", "N/p", "FFT", "bitonic sort", "sample sort",
         "histogram (dense)", "histogram (sparse)"],
        rows,
    )
    return ExperimentResult(
        "R-E4_dataparallel",
        f"Data-parallel kernels (simulated ticks), p = 2^{n_dims}, 256 bins",
        table,
        metrics,
    )


# ---------------------------------------------------------------------------
# R-A2: cost-model sensitivity of the headline comparison
# ---------------------------------------------------------------------------

def run_sensitivity(n_dims: Optional[int] = None) -> ExperimentResult:
    """The primitive-vs-naive speedup under different network regimes.

    The paper's conclusion should not hinge on one parameter choice: the
    tree-vs-serialised gap is a *round-count* effect, so it must survive
    any tau/t_c mix (growing with latency dominance, shrinking — but not
    inverting — when bandwidth dominates).
    """
    n_dims = n_dims if n_dims is not None else (8 if SCALE == "small" else 10)
    side = 2 ** max(n_dims // 2, 2) * 4
    A_h = W.dense_matrix(side, side, seed=21)
    rows = []
    metrics: Dict[str, float] = {}
    presets = [
        ("cm2", CostModel.cm2()),
        ("unit", CostModel.unit()),
        ("latency_bound", CostModel.latency_bound()),
        ("bandwidth_bound", CostModel.bandwidth_bound()),
    ]
    for name, cost in presets:
        mp = Hypercube(n_dims, cost)
        P = DistributedMatrix.from_numpy(mp, A_h)
        t0 = mp.counters.time
        P.reduce(1, "sum")
        P.extract(0, 1)
        prim = mp.counters.time - t0
        mn = Hypercube(n_dims, cost)
        N = NaiveMatrix.from_numpy(mn, A_h)
        t0 = mn.counters.time
        N.reduce(1, "sum")
        N.extract(0, 1)
        naive = mn.counters.time - t0
        rows.append([name, cost.tau, cost.t_c, prim, naive, naive / prim])
        metrics[f"speedup_{name}"] = naive / prim
    table = format_table(
        ["cost model", "tau", "t_c", "primitives", "naive", "naive/prim"],
        rows,
    )
    return ExperimentResult(
        "R-A2_sensitivity",
        f"Primitive-vs-naive gap across network regimes, p = 2^{n_dims}, "
        f"{side}x{side} matrix",
        table,
        metrics,
    )


ALL_EXPERIMENTS: Dict[str, Callable[[], ExperimentResult]] = {
    "R-T1": run_primitives,
    "R-T2": run_matvec,
    "R-T3": run_gaussian,
    "R-T4": run_simplex,
    "R-F1": run_optimality,
    "R-F2": run_speedup,
    "R-F3": run_remap,
    "R-F4": run_scaling,
    "R-A1": run_ablation,
    "R-A2": run_sensitivity,
    "R-E1": run_extensions,
    "R-E3": run_pipelining,
    "R-E4": run_dataparallel,
}


def run_all() -> List[ExperimentResult]:  # pragma: no cover - CLI entry
    results = []
    for name, fn in ALL_EXPERIMENTS.items():
        res = fn()
        res.write()
        res.show()
        results.append(res)
    return results


if __name__ == "__main__":  # pragma: no cover
    run_all()
