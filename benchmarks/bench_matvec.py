"""R-T2: vector-matrix multiply timings (application 1).

Regenerates the matvec table: serial vs primitive vs naive simulated times
across matrix sizes, with the naive/primitive speedup column.
"""

import numpy as np

from harness import run_matvec
from repro import workloads as W
from repro.algorithms.naive import NaiveMatrix, NaiveVector
from repro.core import DistributedMatrix, DistributedVector
from repro.embeddings import RowAlignedEmbedding
from repro.machine import CostModel, Hypercube


def _prim(side=128, n=8):
    machine = Hypercube(n, CostModel.cm2())
    A = DistributedMatrix.from_numpy(machine, W.dense_matrix(side, side, seed=1))
    emb = RowAlignedEmbedding(A.embedding, None)
    x = DistributedVector(emb.scatter(W.dense_vector(side, seed=2)), emb)
    return A, x


def test_bench_matvec_primitives(benchmark):
    A, x = _prim()
    y = benchmark(lambda: A.matvec(x))
    assert np.allclose(y.to_numpy(), A.to_numpy() @ x.to_numpy())


def test_bench_matvec_naive(benchmark):
    machine = Hypercube(8, CostModel.cm2())
    A = NaiveMatrix.from_numpy(machine, W.dense_matrix(128, 128, seed=1))
    emb = RowAlignedEmbedding(A.embedding, None)
    x = NaiveVector(emb.scatter(W.dense_vector(128, seed=2)), emb)
    y = benchmark(lambda: A.matvec(x))
    assert np.allclose(y.to_numpy(), A.to_numpy() @ x.to_numpy())


def test_bench_vecmat(benchmark):
    machine = Hypercube(8, CostModel.cm2())
    A = DistributedMatrix.from_numpy(machine, W.dense_matrix(96, 160, seed=3))
    x = DistributedVector.from_numpy(machine, W.dense_vector(96, seed=4))
    y = benchmark(lambda: A.vecmat(x))
    assert np.allclose(y.to_numpy(), x.to_numpy() @ A.to_numpy())


def test_bench_table_r_t2(benchmark, write_result):
    result = benchmark.pedantic(
        lambda: write_result(run_matvec), rounds=1, iterations=1
    )
    # primitives beat naive at every size
    for key, speedup in result.metrics.items():
        assert speedup > 1.0, key
