"""R-F1: the asymptotic-optimality figure.

Regenerates the processor-time-product sweep: PT/serial vs m/p at fixed
machine size, with the ``m = p lg p`` threshold marked — the abstract's
central analytical claim.
"""

import math

from harness import run_optimality


def test_bench_figure_r_f1(benchmark, write_result):
    result = benchmark.pedantic(
        lambda: write_result(run_optimality), rounds=1, iterations=1
    )
    threshold = result.metrics["threshold"]
    beyond = {
        int(k.split("_at_")[1]): v
        for k, v in result.metrics.items()
        if k.startswith("ratio_at_")
    }
    above = sorted(m for m in beyond if m > threshold)
    below = sorted(m for m in beyond if m <= threshold)
    assert above and below, "sweep must straddle the threshold"
    # beyond the threshold: bounded and decreasing toward a small constant
    ratios_above = [beyond[m] for m in above]
    assert ratios_above == sorted(ratios_above, reverse=True)
    assert ratios_above[-1] < 5.0
    # below the threshold: the latency term dominates; ratio blows up
    assert beyond[below[0]] > 20 * ratios_above[-1]


def test_bench_optimality_scaling_in_p(benchmark):
    """The threshold moves with p: the same m that is optimal on a small
    machine is latency-bound on a big one."""
    from repro.analysis import pt_ratio
    from repro.core import DistributedMatrix, DistributedVector
    from repro.embeddings import RowAlignedEmbedding
    from repro.machine import CostModel, CostSnapshot, Hypercube
    import numpy as np

    def run():
        cost = CostModel.cm2()
        ratios = {}
        side = 64  # m = 4096
        for n in (4, 10):
            machine = Hypercube(n, cost)
            A = DistributedMatrix.from_numpy(machine, np.ones((side, side)))
            emb = RowAlignedEmbedding(A.embedding, None)
            x = DistributedVector(emb.scatter(np.ones(side)), emb)
            start = machine.snapshot()
            A.matvec(x)
            t = machine.elapsed_since(start).time
            ratios[n] = pt_ratio(
                CostSnapshot(time=t), machine.p, 2 * side * side, cost
            )
        return ratios

    ratios = benchmark(run)
    # m/p = 256 at p=16 (beyond threshold), m/p = 4 at p=1024 (below)
    assert ratios[4] < 4.0
    assert ratios[10] > 10 * ratios[4]
