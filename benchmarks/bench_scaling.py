"""R-F4: scaling with machine size.

Regenerates the scaling figure: matvec time vs p for a fixed problem
(strong scaling: improves, then latency-bound) and for a fixed
per-processor load (the CM's virtual-processor scaling: grows only with
the lg p communication term).
"""

from harness import run_scaling


def test_bench_figure_r_f4(benchmark, write_result):
    result = benchmark.pedantic(
        lambda: write_result(run_scaling), rounds=1, iterations=1
    )
    fixed = {
        int(k.split("_p")[1]): v
        for k, v in result.metrics.items()
        if k.startswith("fixed_p")
    }
    scaled = {
        int(k.split("_p")[1]): v
        for k, v in result.metrics.items()
        if k.startswith("scaled_p")
    }
    ps = sorted(fixed)
    # strong scaling initially improves substantially
    assert fixed[ps[1]] < fixed[ps[0]]
    # but the lg(p)·tau latency floor stops it: the largest machine is not
    # the fastest by much (or at all)
    assert fixed[ps[-1]] > 0.5 * fixed[ps[-2]]
    # scaled problem: time grows slowly (the lg p term), far below linear
    growth = scaled[ps[-1]] / scaled[ps[0]]
    assert growth < ps[-1] / ps[0] / 8


def test_bench_efficiency_at_fixed_load(benchmark):
    """At fixed m/p, per-element work is constant; only lg p rounds grow —
    the 'performance scales in proportion to the number of processors'
    regime the CM reports lived in."""
    import math
    import numpy as np
    from repro import workloads as W
    from repro.core import DistributedMatrix, DistributedVector
    from repro.embeddings import RowAlignedEmbedding
    from repro.machine import CostModel, Hypercube

    def run():
        times = {}
        for n in (4, 8):
            machine = Hypercube(n, CostModel.cm2())
            side = int(math.sqrt(256 * machine.p))
            A = DistributedMatrix.from_numpy(
                machine, np.ones((side, side))
            )
            emb = RowAlignedEmbedding(A.embedding, None)
            x = DistributedVector(emb.scatter(np.ones(side)), emb)
            start = machine.snapshot()
            A.matvec(x)
            times[n] = machine.elapsed_since(start).time
        return times

    times = benchmark(run)
    # 16x the processors, 16x the elements: time grows by < 2x
    assert times[8] < 2 * times[4]
