"""Wall-clock benchmark for the batched simulation hypervisor.

Measures the amortized per-run host cost of executing ``N`` independent
simulations as lanes of one :class:`repro.batch.BatchSession` versus the
same ``N`` runs on scalar :class:`repro.Session`\\ s, for
``N in {1, 4, 16, 64}`` across the three tier-1 workloads (Gaussian
elimination, simplex, matvec).  Batching never changes what is simulated
— every lane is bit-identical to its scalar run (results, simulated
ticks *and* cost counters), which this script re-asserts on sampled
lanes at every curve point — so the speedup is pure host-side
vectorization: one stacked NumPy pass amortizes the interpreter and
kernel-dispatch overhead that dominates small per-processor blocks.

Results merge into the repo-root ``BENCH_wallclock.json`` under the
``batch_speedup`` section (atomic merge-by-experiment, see
``bench_wallclock.merge_report``), alongside the plan-cache numbers.

Run directly::

    python benchmarks/bench_batch.py            # full curve (n=10 cubes)
    python benchmarks/bench_batch.py --smoke    # tiny CI smoke run (N<=8)
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, List

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src"))
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from bench_wallclock import OUT_PATH, merge_report  # noqa: E402
from repro.batch import sweep as batch_sweep  # noqa: E402
from repro.batch.sweep import _run_scalar, make_problem  # noqa: E402
from repro.metrics.timing import best_of  # noqa: E402

WORKLOAD_SIZES = {  # problem order per workload at full scale
    "gaussian": {"n": 24},
    "simplex": {"n": 18, "m": 12},
    "matvec": {"n": 32},
}


def _grid(workload: str, n_dims: int, n_runs: int, sizes: Dict) -> List[Dict]:
    base = dict(sizes[workload])
    base["n_dims"] = n_dims
    return [dict(base, seed=seed) for seed in range(n_runs)]


def _lane_identical(workload: str, got: Dict, want: Dict) -> bool:
    """One batched lane vs its scalar run: results, ticks and counters."""
    key = "y" if workload == "matvec" else "x"
    if not np.array_equal(got[key], want[key]):
        return False
    if got["time"] != want["time"]:
        return False
    if got["cost"].as_dict() != want["cost"].as_dict():
        return False
    if workload == "simplex" and (
        got["status"] != want["status"]
        or got["iterations"] != want["iterations"]
    ):
        return False
    return True


def bench_point(
    workload: str,
    n_dims: int,
    n_runs: int,
    reps: int,
    sizes: Dict,
    check_lanes: int = 4,
) -> Dict[str, object]:
    """One curve point: batch N lanes, compare against scalar runs."""
    grid = _grid(workload, n_dims, n_runs, sizes)

    timed_batch = best_of(lambda: batch_sweep(workload, grid), reps)
    best_batch, outs = timed_batch.best, timed_batch.result
    assert all(o["batched"] for o in outs), "compatible lanes were not stacked"

    # Scalar baseline: the same entries through the scalar fallback path
    # (fresh Session per run, exactly what sweep does for incompatible
    # configs).  Sample a few lanes — scalar cost is trivially linear in N.
    sample = range(min(n_runs, check_lanes))
    best_scalar = []
    for lane in sample:
        entry = {"params": grid[lane], "data": make_problem(workload, grid[lane])}
        best_scalar.append(
            best_of(lambda: _run_scalar(workload, entry), reps).best
        )
        assert _lane_identical(workload, outs[lane], entry["out"]), (
            f"{workload} lane {lane} (N={n_runs}) diverged from its scalar run"
        )

    scalar_per_run = float(np.mean(best_scalar))
    batch_per_run = best_batch / n_runs
    return {
        "workload": workload,
        "experiment": "batch-hypervisor",
        "params": dict(sizes[workload], n_dims=n_dims, n_runs=n_runs),
        "reps": reps,
        "batch_s": best_batch,
        "batch_per_run_s": batch_per_run,
        "scalar_per_run_s": scalar_per_run,
        "amortized_speedup": scalar_per_run / batch_per_run,
        "lanes_checked": len(best_scalar),
        "bit_identical": True,
    }


def main(argv: List[str] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="tiny problems on a small cube with N<=8 "
                         "(CI check: lane bit-identity + >=2x at the top N)")
    ap.add_argument("--reps", type=int, default=None,
                    help="timed repetitions per configuration (default 3, "
                         "smoke 2)")
    ap.add_argument("--out", default=OUT_PATH,
                    help=f"output JSON path (default {OUT_PATH})")
    args = ap.parse_args(argv)
    reps = args.reps if args.reps is not None else (2 if args.smoke else 3)
    if reps < 1:
        ap.error(f"--reps must be >= 1, got {reps}")

    if args.smoke:
        n_dims, curve_n, target = 6, (1, 8), 2.0
        sizes = {
            "gaussian": {"n": 12},
            "simplex": {"n": 9, "m": 6},
            "matvec": {"n": 16},
        }
    else:
        n_dims, curve_n, target = 10, (1, 4, 16, 64), 4.0
        sizes = WORKLOAD_SIZES

    curve = []
    for workload in ("gaussian", "simplex", "matvec"):
        for n_runs in curve_n:
            point = bench_point(workload, n_dims, n_runs, reps, sizes)
            curve.append(point)
            print(f"{workload:<9s} N={n_runs:<3d} "
                  f"batch {point['batch_per_run_s']*1e3:8.2f} ms/run  "
                  f"scalar {point['scalar_per_run_s']*1e3:8.2f} ms/run  "
                  f"amortized {point['amortized_speedup']:6.2f}x  "
                  f"bit-identical x{point['lanes_checked']}")

    top_n = curve_n[-1]
    gauss_top = next(
        p["amortized_speedup"] for p in curve
        if p["workload"] == "gaussian" and p["params"]["n_runs"] == top_n
    )
    section = {
        "experiment": "batch-hypervisor",
        "scale": "smoke" if args.smoke else "full",
        "units": "host seconds per run (best of reps); lanes bit-identical "
                 "to scalar runs (results, ticks, counters)",
        "curve": curve,
        "gaussian_top_speedup": gauss_top,
        "top_n_runs": top_n,
        "target": target,
        "target_met": bool(gauss_top >= target),
        "all_bit_identical": all(p["bit_identical"] for p in curve),
    }
    merge_report(args.out, {"batch_speedup": section})
    print(f"wrote {args.out}  (gaussian N={top_n}: {gauss_top:.2f}x, "
          f"target {target:.0f}x {'met' if section['target_met'] else 'MISSED'})")
    if not section["target_met"]:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
