"""R-A1: ablations of the design choices DESIGN.md calls out.

Three knobs, each turned off with everything else held fixed:

1. subcube tree collectives (vs the naive serialised bands),
2. Gray-code grid addressing (vs plain binary),
3. aspect-matched grid splits (vs a forced square grid).
"""

from harness import run_ablation


def test_bench_ablation_table_r_a1(benchmark, write_result):
    result = benchmark.pedantic(
        lambda: write_result(run_ablation), rounds=1, iterations=1
    )
    assert result.metrics["tree_factor"] > 3.0
    assert result.metrics["bandwalk_binary"] > result.metrics["bandwalk_gray"]
    assert result.metrics["aspect_factor"] > 1.5
    # implicit pivoting skips the physical swap traffic
    assert result.metrics["pivot_implicit"] < result.metrics["pivot_partial"]


def test_bench_gray_vs_binary_bandwalk(benchmark):
    import numpy as np
    from repro.embeddings import (
        ColAlignedEmbedding,
        MatrixEmbedding,
        remap_vector,
    )
    from repro.machine import CostModel, Hypercube

    def walk(coding):
        machine = Hypercube(8, CostModel.cm2())
        emb = MatrixEmbedding.default(machine, 128, 128, coding=coding)
        cur = ColAlignedEmbedding(emb, 0)
        pv = cur.scatter(np.ones(128))
        start = machine.snapshot()
        for band in range(1, emb.Pc):
            nxt = ColAlignedEmbedding(emb, band)
            pv = remap_vector(pv, cur, nxt)
            cur = nxt
        return machine.elapsed_since(start).time

    def run():
        return walk("gray"), walk("binary")

    gray_t, binary_t = benchmark(run)
    assert binary_t > gray_t


def test_bench_block_vs_cyclic_for_elimination(benchmark):
    """Layout ablation: under a *block* row layout, Gaussian elimination's
    active region drains whole grid bands as it shrinks, idling processors;
    the cyclic layout keeps every band busy.  Measured as the simulated
    cost of the trailing-half rank-1 updates (the dominant work)."""
    import numpy as np
    from repro import workloads as W
    from repro.algorithms import gaussian
    from repro.core import DistributedMatrix
    from repro.machine import CostModel, Hypercube

    def run():
        A_h, b, x_true = W.diagonally_dominant_system(64, seed=13)
        out = {}
        for layout in ("block", "cyclic"):
            machine = Hypercube(6, CostModel.cm2())
            A = DistributedMatrix.from_numpy(machine, A_h, layout=layout)
            res = gaussian.solve(A, b)
            assert np.allclose(res.x, x_true, atol=1e-7)
            out[layout] = res.cost.time
        return out

    times = benchmark(run)
    # both correct; report both costs (in this SIMD cost model the local
    # block is walked in full either way, so they are comparable)
    assert times["block"] > 0 and times["cyclic"] > 0


def test_bench_sensitivity_r_a2(benchmark, write_result):
    """R-A2: the speedup survives every network regime."""
    from harness import run_sensitivity
    result = benchmark.pedantic(
        lambda: write_result(run_sensitivity), rounds=1, iterations=1
    )
    speedups = {k: v for k, v in result.metrics.items()
                if k.startswith("speedup_")}
    assert all(v > 1.0 for v in speedups.values()), speedups
    # latency-dominated networks widen the gap; bandwidth-dominated shrink it
    assert speedups["speedup_latency_bound"] > speedups["speedup_bandwidth_bound"]
