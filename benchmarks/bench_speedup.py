"""R-F2: the "almost an order of magnitude over a naive implementation"
figure.

Regenerates the speedup-vs-machine-size series for a communication-heavy
primitive mix.  The gap between lg-round tree collectives and serialised
band traffic grows with machine size; at CM-scale grids it reaches the
order of magnitude the abstract reports.
"""

from harness import run_speedup


def test_bench_figure_r_f2(benchmark, write_result):
    result = benchmark.pedantic(
        lambda: write_result(run_speedup), rounds=1, iterations=1
    )
    speedups = {
        int(k.split("_p")[1]): v
        for k, v in result.metrics.items()
        if k.startswith("speedup_p")
    }
    ps = sorted(speedups)
    ordered = [speedups[p] for p in ps]
    # the gap grows monotonically with machine size...
    assert ordered == sorted(ordered)
    # ...and reaches "almost an order of magnitude" at the largest machine
    assert ordered[-1] > 8.0, f"only {ordered[-1]:.1f}x at p={ps[-1]}"


def test_bench_speedup_is_comm_bound_effect(benchmark):
    """With a free network (tau = t_c = 0) the naive and primitive
    implementations cost the same: the speedup is entirely a
    communication-structure effect, not an arithmetic one."""
    import numpy as np
    from repro import workloads as W
    from repro.algorithms.naive import NaiveMatrix
    from repro.core import DistributedMatrix
    from repro.machine import CostModel, Hypercube

    def run():
        free = CostModel(tau=0.0, t_c=0.0, t_a=1.0, t_m=0.5)
        A_h = W.dense_matrix(64, 64, seed=9)
        mp = Hypercube(8, free)
        mn = Hypercube(8, free)
        P = DistributedMatrix.from_numpy(mp, A_h)
        N = NaiveMatrix.from_numpy(mn, A_h)
        t0 = mp.counters.time
        P.reduce(1, "sum")
        tp = mp.counters.time - t0
        t0 = mn.counters.time
        N.reduce(1, "sum")
        tn = mn.counters.time - t0
        return tp, tn

    tp, tn = benchmark(run)
    # naive still pays the serial combining flops, but no longer ~8x
    assert tn < 3 * tp
