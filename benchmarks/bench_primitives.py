"""R-T1: timings of the four primitives (paper: "We give Connection
Machine timings for the primitives").

Regenerates the primitive-timing table: simulated ticks per primitive as
the matrix grows at fixed machine size, with the analytic-model column the
paper would call its timing formula.  The pytest-benchmark numbers measure
the *simulator's* wall-clock per primitive (how fast this reproduction
runs), which is reported separately from the simulated machine times.
"""

import numpy as np

from harness import run_primitives
from repro import workloads as W
from repro.core import DistributedMatrix
from repro.machine import CostModel, Hypercube


def _setup(side=128, n=8):
    machine = Hypercube(n, CostModel.cm2())
    A = DistributedMatrix.from_numpy(
        machine, W.dense_matrix(side, side, seed=1)
    )
    return machine, A


def test_bench_extract(benchmark):
    machine, A = _setup()
    result = benchmark(lambda: A.extract(0, 64))
    assert np.allclose(result.to_numpy(), A.to_numpy()[64])


def test_bench_insert(benchmark):
    machine, A = _setup()
    vec = A.extract(0, 64)
    out = benchmark(lambda: A.insert(0, 0, vec))
    assert out.shape == A.shape


def test_bench_distribute(benchmark):
    machine, A = _setup()
    vec = A.extract(0, 64)
    out = benchmark(lambda: vec.distribute(A, axis=0))
    assert out.shape == A.shape


def test_bench_reduce(benchmark):
    machine, A = _setup()
    out = benchmark(lambda: A.reduce(1, "sum"))
    assert np.allclose(out.to_numpy(), A.to_numpy().sum(1))


def test_bench_argreduce(benchmark):
    machine, A = _setup()
    vals, idxs = benchmark(lambda: A.argreduce(1, "max"))
    assert np.array_equal(idxs.to_numpy(), A.to_numpy().argmax(1))


def test_bench_table_r_t1(benchmark, write_result):
    """Regenerate the full R-T1 table and check its headline shapes."""
    result = benchmark.pedantic(
        lambda: write_result(run_primitives), rounds=1, iterations=1
    )
    # The analytic model must agree with the simulator on reduce exactly.
    for key, value in result.metrics.items():
        if key.startswith("reduce_"):
            side = key.split("_")[1]
            assert value == result.metrics[f"model_reduce_{side}"]
