"""Wall-clock benchmark for the communication plan cache.

Times the two iterative-solver workloads (R-T3 Gaussian elimination,
R-T4 simplex) with the plan cache enabled vs disabled and writes the
machine-readable ``BENCH_wallclock.json`` at the repo root.

Unlike the other ``bench_*`` modules, which report *simulated* ticks,
this one measures real host seconds: the plan cache never changes what
is simulated (ticks and counters are bit-identical either way — the
script asserts this), it only removes redundant host-side work when the
same remap/route/collective plans recur across solver iterations.

Methodology: one :class:`Session` per cache setting, one uncounted
warm-up solve, then ``reps`` timed solves taking the minimum — the
standard noise-resistant estimator.  Reusing the session across solves
matches the intended use (plans memoised across iterative solver
loops); a fresh machine per solve would only re-measure first-touch
plan construction.

Run directly::

    python benchmarks/bench_wallclock.py            # full scale (n=10 cubes)
    python benchmarks/bench_wallclock.py --smoke    # tiny CI smoke run
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Callable, Dict, List, Tuple

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src"))

from repro import Session, workloads as W  # noqa: E402
from repro.algorithms import gaussian, simplex  # noqa: E402
from repro.metrics.timing import interleaved  # noqa: E402

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
OUT_PATH = os.path.join(REPO_ROOT, "BENCH_wallclock.json")


def _experiment_key(entry: object) -> object:
    """Identity of one result entry: experiment + workload + params."""
    if not isinstance(entry, dict):
        return json.dumps(entry, sort_keys=True)
    return (
        entry.get("experiment"),
        entry.get("workload"),
        json.dumps(entry.get("params"), sort_keys=True),
    )


def _merge_entries(old: List[object], new: List[object]) -> List[object]:
    """Replace old entries re-measured by ``new`` (same experiment key),
    keep the rest, append genuinely new experiments — never plain append."""
    fresh = {_experiment_key(e): e for e in new}
    merged = [fresh.pop(_experiment_key(e), e) for e in old]
    merged.extend(e for e in new if _experiment_key(e) in fresh)
    return merged


def merge_report(path: str, updates: Dict[str, object]) -> Dict[str, object]:
    """Merge ``updates`` into the JSON report at ``path``, atomically.

    Top-level sections written by other benchmarks (e.g. the batch
    speedup curve from ``bench_batch.py``) survive; list-valued sections
    present on both sides merge entry-wise by experiment key.  The file
    is written via a temp file + ``os.replace`` so a crashed or
    concurrent run can never leave a torn JSON behind.
    """
    try:
        with open(path) as fh:
            report = json.load(fh)
        if not isinstance(report, dict):
            report = {}
    except (FileNotFoundError, ValueError):
        report = {}
    for key, value in updates.items():
        if isinstance(value, list) and isinstance(report.get(key), list):
            report[key] = _merge_entries(report[key], value)
        else:
            report[key] = value
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    os.replace(tmp, path)
    return report


def _time_pair(
    n_dims: int, reps: int, run: Callable[[Session], object]
) -> Tuple[float, float, Dict[str, float], Dict[str, float], object, object]:
    """Best-of-``reps`` seconds for cache-on and cache-off, interleaved.

    Shared methodology from :func:`harness.interleaved`: one untimed
    warm-up per configuration (first-touch plan construction is not what
    we measure), then the on/off timings alternate rep by rep so host
    load drift hits both configurations equally instead of biasing
    whichever ran second.
    """
    s_on = Session(n_dims, plan_cache=True)
    s_off = Session(n_dims, plan_cache=False)
    timed_on, timed_off = interleaved(
        [lambda: run(s_on), lambda: run(s_off)],
        reps,
        setups=[s_on.reset_counters, s_off.reset_counters],
    )
    return (
        timed_on.best,
        timed_off.best,
        s_on.snapshot().as_dict(),
        s_off.snapshot().as_dict(),
        timed_on.result,
        timed_off.result,
    )


def bench_gaussian(n_dims: int, order: int, reps: int) -> Dict[str, object]:
    A, b, x_true = W.diagonally_dominant_system(order, seed=order)

    def run(s: Session):
        return gaussian.solve(s.matrix(A), b)

    t_on, t_off, snap_on, snap_off, res_on, res_off = _time_pair(n_dims, reps, run)
    assert snap_on == snap_off, "plan cache changed the simulated cost!"
    assert np.array_equal(res_on.x, res_off.x), "plan cache changed the result!"
    assert np.allclose(res_on.x, x_true, atol=1e-6)
    return {
        "workload": "gaussian",
        "experiment": "R-T3",
        "params": {"n_dims": n_dims, "order": order},
        "reps": reps,
        "cache_on_s": t_on,
        "cache_off_s": t_off,
        "speedup": t_off / t_on,
        "bit_identical": True,
        "snapshot": snap_on,
    }


def bench_simplex(n_dims: int, m: int, n: int, reps: int) -> Dict[str, object]:
    lp = W.feasible_lp(m, n, seed=m * 31 + n)

    def run(s: Session):
        return simplex.solve(s.machine, lp.A, lp.b, lp.c)

    t_on, t_off, snap_on, snap_off, res_on, res_off = _time_pair(n_dims, reps, run)
    assert snap_on == snap_off, "plan cache changed the simulated cost!"
    assert np.array_equal(res_on.x, res_off.x), "plan cache changed the result!"
    assert res_on.status == "optimal" and res_on.iterations == res_off.iterations
    return {
        "workload": "simplex",
        "experiment": "R-T4",
        "params": {"n_dims": n_dims, "m": m, "n": n},
        "reps": reps,
        "cache_on_s": t_on,
        "cache_off_s": t_off,
        "speedup": t_off / t_on,
        "bit_identical": True,
        "snapshot": snap_on,
    }


def bench_sanitizer_overhead(
    n_dims: int, order: int, reps: int
) -> Dict[str, object]:
    """Wall-clock cost of the machine sanitizer on the R-T3 solver loop.

    Same interleaved best-of-``reps`` methodology as the cache pair, but
    the knob is ``sanitize`` — the sanitizer audits every charged round,
    so its overhead is the honest price of conformance checking.  The
    simulated counters must be bit-identical either way (the sanitizer
    only reads).
    """
    A, b, x_true = W.diagonally_dominant_system(order, seed=order)

    def run(s: Session):
        return gaussian.solve(s.matrix(A), b)

    s_on = Session(n_dims, sanitize=True)
    s_off = Session(n_dims, sanitize=False)
    timed_on, timed_off = interleaved(
        [lambda: run(s_on), lambda: run(s_off)],
        reps,
        setups=[s_on.reset_counters, s_off.reset_counters],
    )
    best_on, best_off = timed_on.best, timed_off.best
    res_on, res_off = timed_on.result, timed_off.result
    snap_on = s_on.snapshot().as_dict()
    snap_off = s_off.snapshot().as_dict()
    assert snap_on == snap_off, "sanitizer changed the simulated cost!"
    assert np.array_equal(res_on.x, res_off.x), "sanitizer changed the result!"
    assert np.allclose(res_on.x, x_true, atol=1e-6)
    return {
        "workload": "gaussian",
        "experiment": "sanitizer-overhead",
        "params": {"n_dims": n_dims, "order": order},
        "reps": reps,
        "sanitize_on_s": best_on,
        "sanitize_off_s": best_off,
        "overhead": best_on / best_off,
        "checks": s_on.sanitizer.stats.total,
        "bit_identical": True,
        "snapshot": snap_on,
    }


def bench_abft_overhead(
    n_dims: int, order: int, reps: int
) -> Dict[str, object]:
    """Wall-clock and simulated cost of the ABFT checksum layer.

    Unlike the cache/sanitizer knobs, ABFT *does* change the simulated
    cost — maintaining and verifying checksum panels is charged on the
    machine clock — so this pair reports both the host-seconds ratio and
    the simulated-tick ratio instead of asserting bit-identical
    counters.  With no faults injected, the numeric results must still
    match exactly (integer-valued data keeps every reduction exact).
    """
    rng = np.random.default_rng(order)
    A = rng.integers(-5, 6, size=(order, order)).astype(np.float64)
    A += np.eye(order) * order * 8
    b = rng.integers(-5, 6, size=order).astype(np.float64)
    M = rng.integers(-3, 4, size=(order, order)).astype(np.float64)
    x = rng.integers(-3, 4, size=order).astype(np.float64)

    def run_gauss(s: Session):
        return gaussian.solve(s.matrix(A), b)

    def run_matvec(s: Session):
        dA = s.matrix(M)
        y = x
        for _ in range(3):
            y = dA.matvec(s.row_vector(y, dA)).to_numpy()
        return y

    out: Dict[str, object] = {
        "experiment": "abft-overhead",
        "params": {"n_dims": n_dims, "order": order},
        "reps": reps,
    }
    for name, run, result_of in (
        ("gaussian", run_gauss, lambda r: r.x),
        ("matvec", run_matvec, lambda r: r),
    ):
        s_on = Session(n_dims, abft=True)
        s_off = Session(n_dims)

        def reset_on(s=s_on):
            s.reset_counters()
            s.abft.reset()

        timed_on, timed_off = interleaved(
            [lambda s=s_on: run(s), lambda s=s_off: run(s)],
            reps,
            setups=[reset_on, s_off.reset_counters],
        )
        best_on, best_off = timed_on.best, timed_off.best
        res_on, res_off = timed_on.result, timed_off.result
        assert np.array_equal(result_of(res_on), result_of(res_off)), \
            "fault-free ABFT changed the result!"
        out[name] = {
            "abft_on_s": best_on,
            "abft_off_s": best_off,
            "wall_overhead": best_on / best_off,
            "simulated_on": s_on.time,
            "simulated_off": s_off.time,
            "simulated_overhead": s_on.time / s_off.time,
            "blocks_protected": s_on.abft.stats.protected,
            "verifies": s_on.abft.stats.verifies,
        }
    return out


def main(argv: List[str] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="tiny problems on a small cube (CI correctness check; "
                         "no speedup requirement)")
    ap.add_argument("--reps", type=int, default=None,
                    help="timed repetitions per configuration (default 5, "
                         "smoke 2)")
    ap.add_argument("--out", default=OUT_PATH,
                    help=f"output JSON path (default {OUT_PATH})")
    args = ap.parse_args(argv)
    reps = args.reps if args.reps is not None else (2 if args.smoke else 5)
    if reps < 1:
        ap.error(f"--reps must be >= 1, got {reps}")

    if args.smoke:
        results = [
            bench_gaussian(6, 31, reps),
            bench_simplex(6, 16, 12, reps),
        ]
        scaling = []
        sanitizer = bench_sanitizer_overhead(6, 31, reps)
        abft = bench_abft_overhead(6, 31, reps)
    else:
        # Primary configurations: the R-T3/R-T4 solver loops at n=10 with a
        # moderate m/p, where per-iteration plan construction is a large
        # share of the host work the cache can remove.
        results = [
            bench_gaussian(10, 127, reps),
            bench_simplex(10, 64, 48, reps),
        ]
        # Larger problems for the trajectory: the cached savings are a
        # per-iteration constant, so the ratio decays as the O(m/p) numpy
        # data term (paid identically by both configurations) grows.
        scaling = [
            bench_gaussian(10, 255, reps),
            bench_simplex(10, 96, 64, reps),
        ]
        sanitizer = bench_sanitizer_overhead(10, 127, reps)
        abft = bench_abft_overhead(10, 127, reps)

    for r in results + scaling:
        label = f"{r['workload']} {r['params']}"
        print(f"{label}: cache-on {r['cache_on_s']:.3f}s  "
              f"cache-off {r['cache_off_s']:.3f}s  "
              f"speedup {r['speedup']:.2f}x  bit-identical")

    print(f"sanitizer overhead {sanitizer['params']}: "
          f"on {sanitizer['sanitize_on_s']:.3f}s  "
          f"off {sanitizer['sanitize_off_s']:.3f}s  "
          f"{sanitizer['overhead']:.2f}x "
          f"({sanitizer['checks']} checks)  bit-identical")

    for name in ("gaussian", "matvec"):
        a = abft[name]
        print(f"abft overhead ({name}): wall {a['wall_overhead']:.2f}x  "
              f"simulated {a['simulated_overhead']:.2f}x  "
              f"({a['blocks_protected']} blocks, {a['verifies']} verifies)")

    gauss = max(r["speedup"] for r in results if r["workload"] == "gaussian")
    splex = max(r["speedup"] for r in results if r["workload"] == "simplex")
    report = {
        "benchmark": "plan-cache wall-clock",
        "scale": "smoke" if args.smoke else "full",
        "units": "host seconds (best of interleaved reps); simulated ticks "
                 "are bit-identical cache-on vs cache-off",
        "results": results,
        "scaling": scaling,
        "sanitizer_overhead": sanitizer,
        "abft_overhead": abft,
        "gaussian_speedup": gauss,
        "simplex_speedup": splex,
        "target": None if args.smoke else 3.0,
        "target_met": None if args.smoke else bool(gauss >= 3.0 and splex >= 3.0),
        "all_bit_identical": all(r["bit_identical"] for r in results + scaling),
    }
    merge_report(args.out, report)
    print(f"wrote {args.out}  (gaussian {gauss:.2f}x, simplex {splex:.2f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
