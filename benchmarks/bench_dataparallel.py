"""R-E4: the companion data-parallel kernels (FFT, bitonic sort, histogram).

All three come from the same TMC technical-report series as the paper and
run here on the identical machine, embedding and cost machinery — a check
that the substrate generalises beyond the four primitives.
"""

import numpy as np

from harness import run_dataparallel
from repro import workloads as W
from repro.algorithms import fft as F
from repro.algorithms import histogram as H
from repro.algorithms.sort import bitonic_sort
from repro.core import DistributedVector
from repro.machine import CostModel, Hypercube


def test_bench_fft(benchmark):
    x = W.dense_vector(4096, seed=1)

    def run():
        machine = Hypercube(8, CostModel.cm2())
        return F.fft(machine, x)

    res = benchmark(run)
    assert np.allclose(res.values, np.fft.fft(x), atol=1e-8)


def test_bench_bitonic_sort(benchmark):
    x = W.dense_vector(4096, seed=2)

    def run():
        machine = Hypercube(8, CostModel.cm2())
        return bitonic_sort(DistributedVector.from_numpy(machine, x))

    res = benchmark(run)
    assert np.allclose(res.values.to_numpy(), np.sort(x))


def test_bench_histogram(benchmark):
    x = W.dense_vector(8192, seed=3)

    def run():
        machine = Hypercube(8, CostModel.cm2())
        v = DistributedVector.from_numpy(machine, x)
        return H.histogram(v, bins=256, value_range=(-4, 4))

    res = benchmark(run)
    assert res.counts.sum() == 8192


def test_bench_table_r_e4(benchmark, write_result):
    result = benchmark.pedantic(
        lambda: write_result(run_dataparallel), rounds=1, iterations=1
    )
    # the sparse histogram's advantage shrinks as occupancy grows
    ratios = [v for k, v in sorted(
        result.metrics.items(), key=lambda kv: int(kv[0].split("_")[-1])
    ) if k.startswith("hist_ratio")]
    assert ratios[0] >= ratios[-1]


def test_bench_tridiagonal(benchmark):
    """Substructured PCR tridiagonal solve (the ADI papers' substrate)."""
    from repro.algorithms import tridiagonal as T
    rng = np.random.default_rng(7)
    n = 4096
    a = rng.standard_normal(n)
    c = rng.standard_normal(n)
    b = np.abs(a) + np.abs(c) + rng.uniform(1, 2, n)
    a[0] = 0.0
    c[-1] = 0.0
    d = rng.standard_normal(n)

    def run():
        machine = Hypercube(8, CostModel.cm2())
        return T.solve(machine, a, b, c, d)

    res = benchmark(run)
    assert np.allclose(res.x, T.thomas(a, b, c, d), atol=1e-8)
