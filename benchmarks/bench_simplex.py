"""R-T4: simplex timings (application 3).

Regenerates the simplex table: per-iteration and total simulated times,
primitive vs naive, at matching iteration counts (identical pivot
sequences guarantee an apples-to-apples comparison).
"""

import numpy as np

from harness import run_simplex
from repro import workloads as W
from repro.algorithms import simplex
from repro.algorithms.naive import NaiveMatrix
from repro.machine import CostModel, Hypercube


def test_bench_simplex_primitives(benchmark):
    lp = W.feasible_lp(16, 12, seed=5)

    def run():
        machine = Hypercube(6, CostModel.cm2())
        return simplex.solve(machine, lp.A, lp.b, lp.c)

    res = benchmark(run)
    assert res.status == "optimal"


def test_bench_simplex_naive(benchmark):
    lp = W.feasible_lp(16, 12, seed=5)

    def run():
        machine = Hypercube(6, CostModel.cm2())
        return simplex.solve(machine, lp.A, lp.b, lp.c, matrix_cls=NaiveMatrix)

    res = benchmark(run)
    assert res.status == "optimal"


def test_bench_simplex_two_phase(benchmark):
    lp = W.two_phase_lp(12, 8, seed=6)

    def run():
        machine = Hypercube(6, CostModel.cm2())
        return simplex.solve(machine, lp.A, lp.b, lp.c)

    res = benchmark(run)
    assert res.status == "optimal"
    assert res.phase1_iterations > 0


def test_bench_simplex_bland(benchmark):
    lp = W.feasible_lp(16, 12, seed=7)

    def run():
        machine = Hypercube(6, CostModel.cm2())
        return simplex.solve(machine, lp.A, lp.b, lp.c, rule="bland")

    res = benchmark(run)
    assert res.status == "optimal"


def test_bench_table_r_t4(benchmark, write_result):
    result = benchmark.pedantic(
        lambda: write_result(run_simplex), rounds=1, iterations=1
    )
    for key, speedup in result.metrics.items():
        assert speedup > 1.0, key
