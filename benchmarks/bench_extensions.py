"""R-E1: timings of the extension operations (beyond the paper's four).

Scans (matrix prefix, vector segmented scan) and the outer-product
matrix-matrix multiply — operations the paper's APL-like primitive family
implies and this library adds, with the same embedding/cost machinery.
"""

import numpy as np

from harness import run_extensions
from repro import workloads as W
from repro.core import DistributedMatrix, DistributedVector
from repro.machine import CostModel, Hypercube


def test_bench_matrix_scan(benchmark):
    machine = Hypercube(8, CostModel.cm2())
    A = DistributedMatrix.from_numpy(machine, W.dense_matrix(128, 128, seed=1))
    out = benchmark(lambda: A.scan(1, "sum", inclusive=True))
    assert np.allclose(out.to_numpy(), np.cumsum(A.to_numpy(), axis=1))


def test_bench_segmented_scan(benchmark):
    machine = Hypercube(8, CostModel.cm2())
    v_h = W.dense_vector(4096, seed=2)
    f_h = np.random.default_rng(0).random(4096) < 0.1
    v = DistributedVector.from_numpy(machine, v_h)
    f = DistributedVector(v.embedding.scatter(f_h), v.embedding)
    out = benchmark(lambda: v.segmented_scan(f))
    assert len(out) == 4096


def test_bench_matmul(benchmark):
    machine = Hypercube(8, CostModel.cm2())
    A = DistributedMatrix.from_numpy(machine, W.dense_matrix(64, 16, seed=3))
    B = DistributedMatrix.from_numpy(machine, W.dense_matrix(16, 64, seed=4))
    C = benchmark(lambda: A @ B)
    assert np.allclose(C.to_numpy(), A.to_numpy() @ B.to_numpy())


def test_bench_solve_multi(benchmark):
    from repro.algorithms import gaussian
    A_h, _, _ = W.random_system(32, seed=5)
    B_h = np.random.default_rng(1).standard_normal((32, 4))

    def run():
        machine = Hypercube(6, CostModel.cm2())
        return gaussian.solve_multi(
            DistributedMatrix.from_numpy(machine, A_h), B_h
        )

    res = benchmark(run)
    assert np.allclose(res.x, np.linalg.solve(A_h, B_h), atol=1e-7)


def test_bench_table_r_e1(benchmark, write_result):
    result = benchmark.pedantic(
        lambda: write_result(run_extensions), rounds=1, iterations=1
    )
    # scan costs within a small factor of reduce (same round structure)
    for key, value in result.metrics.items():
        if key.startswith("scan_over_reduce"):
            assert 0.9 < value < 2.0, (key, value)


def test_bench_pipelining_crossover_r_e3(benchmark, write_result):
    """R-E3: the plain/pipelined broadcast crossover matches the model."""
    from harness import run_pipelining
    result = benchmark.pedantic(
        lambda: write_result(run_pipelining), rounds=1, iterations=1
    )
    L_star = result.metrics["crossover_model"]
    for key, ratio in result.metrics.items():
        if not key.startswith("ratio_L"):
            continue
        L = int(key.split("ratio_L")[1])
        if L < L_star / 2:
            assert ratio < 1.0, (L, ratio)
        if L > L_star * 2:
            assert ratio > 1.0, (L, ratio)


def test_bench_qr_solve(benchmark):
    from repro.algorithms import qr
    A_h, b, x_true = W.random_system(32, seed=6)

    def run():
        machine = Hypercube(6, CostModel.cm2())
        return qr.qr_solve(DistributedMatrix.from_numpy(machine, A_h), b)

    x = benchmark(run)
    assert np.allclose(x, x_true, atol=1e-6)
