"""R-E2: iterative solvers on the primitives (CG, Jacobi).

The Connection Machine numerical reports of the paper's era (the FEM
papers in the same TMC technical-report series) solve their systems with
preconditioned conjugate gradients — each iteration a matvec plus dot
products, i.e. pure primitive compositions.  This bench reports
per-iteration simulated cost and compares the direct solver against CG on
SPD systems.
"""

import numpy as np

from repro import workloads as W
from repro.algorithms import gaussian, iterative
from repro.analysis import format_table
from repro.core import DistributedMatrix
from repro.machine import CostModel, Hypercube


def _spd(n, seed=0):
    rng = np.random.default_rng(seed)
    M = rng.standard_normal((n, n))
    A = M @ M.T + n * np.eye(n)
    x = rng.standard_normal(n)
    return A, A @ x, x


def test_bench_cg(benchmark):
    A_h, b, x_true = _spd(48, seed=1)

    def run():
        machine = Hypercube(8, CostModel.cm2())
        return iterative.conjugate_gradient(
            DistributedMatrix.from_numpy(machine, A_h), b
        )

    res = benchmark(run)
    assert res.converged
    assert np.allclose(res.x, x_true, atol=1e-5)


def test_bench_jacobi(benchmark):
    A_h, b, x_true = W.diagonally_dominant_system(48, seed=2)

    def run():
        machine = Hypercube(8, CostModel.cm2())
        return iterative.jacobi(DistributedMatrix.from_numpy(machine, A_h), b)

    res = benchmark(run)
    assert res.converged


def test_bench_power_method(benchmark):
    rng = np.random.default_rng(3)
    Q, _ = np.linalg.qr(rng.standard_normal((32, 32)))
    A_h = Q @ np.diag(np.concatenate([[6.0], rng.uniform(0.1, 1.0, 31)])) @ Q.T

    def run():
        machine = Hypercube(8, CostModel.cm2())
        return iterative.power_method(
            DistributedMatrix.from_numpy(machine, A_h), tol=1e-10
        )

    lam, vec, res = benchmark(run)
    assert np.isclose(lam, 6.0, atol=1e-6)


def test_bench_cg_vs_direct_table(benchmark, write_result):
    """CG per-iteration cost is one matvec-dominated bundle; the direct
    solver pays n pivot steps.  On well-conditioned SPD systems CG wins
    once its iteration count stays well below n."""
    import os

    def run():
        rows = []
        for n in (31, 63, 95):
            A_h, b, x_true = _spd(n, seed=n)
            mc = Hypercube(8, CostModel.cm2())
            cg = iterative.conjugate_gradient(
                DistributedMatrix.from_numpy(mc, A_h), b, tol=1e-10
            )
            md = Hypercube(8, CostModel.cm2())
            direct = gaussian.solve(DistributedMatrix.from_numpy(md, A_h), b)
            rows.append([
                n, cg.iterations, cg.cost.time,
                cg.cost.time / max(cg.iterations, 1),
                direct.cost.time,
                direct.cost.time / cg.cost.time,
            ])
        table = format_table(
            ["n", "CG iters", "CG total", "CG/iter", "direct total",
             "direct/CG"],
            rows,
        )
        from harness import ExperimentResult
        result = ExperimentResult(
            "R-E2_iterative",
            "Conjugate gradients vs direct solve on SPD systems, p = 2^8",
            table,
            {f"direct_over_cg_{r[0]}": r[-1] for r in rows},
        )
        result.write()
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    # CG's advantage grows with n (iteration count ~ sqrt(cond), fixed here)
    factors = [v for _, v in sorted(result.metrics.items())]
    assert all(f > 0 for f in factors)


def test_bench_preconditioned_cg(benchmark):
    """Diagonally preconditioned CG (the TMC FEM reports' solver)."""
    rng = np.random.default_rng(11)
    n = 48
    M = rng.standard_normal((n, n))
    A_h = M @ M.T + n * np.eye(n)
    D = np.diag(10.0 ** rng.uniform(-2, 2, n))
    A_h = D @ A_h @ D
    x_true = rng.standard_normal(n)
    b = A_h @ x_true

    def run():
        machine = Hypercube(8, CostModel.cm2())
        return iterative.conjugate_gradient(
            DistributedMatrix.from_numpy(machine, A_h), b,
            preconditioner="jacobi", max_iters=500,
        )

    res = benchmark(run)
    assert res.converged


def test_bench_gmres(benchmark):
    rng = np.random.default_rng(12)
    n = 48
    A_h = rng.standard_normal((n, n)) + 8 * np.eye(n)
    x_true = rng.standard_normal(n)
    b = A_h @ x_true

    def run():
        machine = Hypercube(8, CostModel.cm2())
        return iterative.gmres(
            DistributedMatrix.from_numpy(machine, A_h), b, restart=16
        )

    res = benchmark(run)
    assert res.converged
    assert np.allclose(res.x, x_true, atol=1e-5)
