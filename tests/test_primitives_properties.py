"""Hypothesis property tests: the primitives against their NumPy oracles.

Every primitive, on random machine sizes, matrix shapes, layouts and grid
splits, must agree exactly (to float tolerance) with the obvious NumPy
operation on the gathered host matrix, and a full extract/insert sweep
must reconstruct the matrix.  These are the core correctness invariants of
the reproduction.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import primitives as P
from repro.embeddings import MatrixEmbedding
from repro.machine import CostModel, Hypercube


@st.composite
def embedded_matrices(draw):
    n = draw(st.integers(min_value=0, max_value=5))
    R = draw(st.integers(min_value=1, max_value=24))
    C = draw(st.integers(min_value=1, max_value=24))
    nr = draw(st.integers(min_value=0, max_value=n))
    layouts = ["block", "cyclic", "block_cyclic:2", "block_cyclic:3"]
    row_layout = draw(st.sampled_from(layouts))
    col_layout = draw(st.sampled_from(layouts))
    coding = draw(st.sampled_from(["gray", "binary"]))
    machine = Hypercube(n, CostModel.unit())
    dims = machine.dims
    emb = MatrixEmbedding(
        machine, R, C,
        row_dims=dims[:nr], col_dims=dims[nr:],
        row_layout_kind=row_layout, col_layout_kind=col_layout,
        coding=coding,
    )
    seed = draw(st.integers(min_value=0, max_value=2**31))
    A = np.random.default_rng(seed).standard_normal((R, C))
    return emb, A


@settings(max_examples=60, deadline=None)
@given(embedded_matrices())
def test_scatter_gather_identity(case):
    emb, A = case
    assert np.array_equal(emb.gather(emb.scatter(A)), A)


@settings(max_examples=60, deadline=None)
@given(embedded_matrices(), st.sampled_from(["sum", "max", "min"]))
def test_reduce_matches_numpy(case, opname):
    emb, A = case
    M = emb.scatter(A)
    np_fn = {"sum": np.sum, "max": np.max, "min": np.min}[opname]
    for axis in (0, 1):
        v, ve = P.reduce(M, emb, axis=axis, op=opname)
        assert np.allclose(ve.gather(v), np_fn(A, axis=axis))


@settings(max_examples=60, deadline=None)
@given(embedded_matrices(), st.sampled_from(["max", "min"]))
def test_reduce_loc_matches_numpy(case, mode):
    emb, A = case
    M = emb.scatter(A)
    for axis in (0, 1):
        val, idx, ve = P.reduce_loc(M, emb, axis=axis, mode=mode)
        np_val = A.max(axis=axis) if mode == "max" else A.min(axis=axis)
        np_idx = A.argmax(axis=axis) if mode == "max" else A.argmin(axis=axis)
        assert np.allclose(ve.gather(val), np_val)
        assert np.array_equal(ve.gather(idx), np_idx)


@settings(max_examples=40, deadline=None)
@given(embedded_matrices(), st.data())
def test_extract_matches_slicing(case, data):
    emb, A = case
    M = emb.scatter(A)
    i = data.draw(st.integers(min_value=0, max_value=emb.R - 1))
    j = data.draw(st.integers(min_value=0, max_value=emb.C - 1))
    v, ve = P.extract(M, emb, axis=0, index=i)
    assert np.allclose(ve.gather(v), A[i, :])
    w, we = P.extract(M, emb, axis=1, index=j)
    assert np.allclose(we.gather(w), A[:, j])


@settings(max_examples=40, deadline=None)
@given(embedded_matrices(), st.data())
def test_insert_then_extract_round_trips(case, data):
    emb, A = case
    M = emb.scatter(A)
    axis = data.draw(st.sampled_from([0, 1]))
    length = emb.C if axis == 0 else emb.R
    hi = (emb.R if axis == 0 else emb.C) - 1
    index = data.draw(st.integers(min_value=0, max_value=hi))
    seed = data.draw(st.integers(min_value=0, max_value=2**31))
    w = np.random.default_rng(seed).standard_normal(length)
    _, ve = P.extract(M, emb, axis=axis, index=index)
    M2 = P.insert(M, emb, axis=axis, index=index, vec=ve.scatter(w), vec_emb=ve)
    v2, ve2 = P.extract(M2, emb, axis=axis, index=index)
    assert np.allclose(ve2.gather(v2), w)
    # the rest of the matrix is untouched
    got = emb.gather(M2)
    expect = A.copy()
    if axis == 0:
        expect[index, :] = w
    else:
        expect[:, index] = w
    assert np.allclose(got, expect)


@settings(max_examples=40, deadline=None)
@given(embedded_matrices())
def test_distribute_of_reduce_tiles_totals(case):
    emb, A = case
    M = emb.scatter(A)
    v, ve = P.reduce(M, emb, axis=1, op="sum")
    out = P.distribute(v, ve, emb, axis=1)
    expect = np.tile(A.sum(axis=1)[:, None], (1, emb.C))
    assert np.allclose(emb.gather(out), expect)


@settings(max_examples=40, deadline=None)
@given(embedded_matrices())
def test_reduce_distribute_reduce_scales_by_width(case):
    """reduce(distribute(v)) over the tiled axis multiplies by the extent —
    an algebraic identity linking the two primitives."""
    emb, A = case
    M = emb.scatter(A)
    v, ve = P.reduce(M, emb, axis=0, op="sum")
    D = P.distribute(v, ve, emb, axis=0)
    v2, ve2 = P.reduce(D, emb, axis=0, op="sum")
    assert np.allclose(ve2.gather(v2), emb.R * A.sum(axis=0))


@settings(max_examples=30, deadline=None)
@given(embedded_matrices())
def test_full_extract_sweep_reconstructs_matrix(case):
    emb, A = case
    M = emb.scatter(A)
    rows = [P.extract(M, emb, axis=0, index=i) for i in range(emb.R)]
    got = np.stack([ve.gather(v) for v, ve in rows])
    assert np.allclose(got, A)


@settings(max_examples=30, deadline=None)
@given(embedded_matrices())
def test_time_is_monotone_nondecreasing(case):
    """Simulated time never decreases, whatever mix of primitives runs."""
    emb, A = case
    machine = emb.machine
    M = emb.scatter(A)
    last = machine.counters.time
    for action in range(4):
        if action == 0:
            P.reduce(M, emb, axis=1, op="sum")
        elif action == 1:
            P.extract(M, emb, axis=0, index=0)
        elif action == 2:
            v, ve = P.extract(M, emb, axis=1, index=0)
            P.distribute(v, ve, emb, axis=1)
        else:
            P.reduce_loc(M, emb, axis=0, mode="min")
        assert machine.counters.time >= last
        last = machine.counters.time
