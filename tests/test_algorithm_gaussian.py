"""Tests for application 2: Gaussian elimination (S12)."""

import numpy as np
import pytest

from repro import Session
from repro import workloads as W
from repro.algorithms import gaussian, serial
from repro.algorithms.gaussian import SingularMatrixError


@pytest.fixture
def s():
    return Session(4, "unit")


class TestSolve:
    @pytest.mark.parametrize("n", [1, 2, 5, 12, 24])
    def test_solves_random_systems(self, s, n):
        A_h, b, x_true = W.random_system(n, seed=n)
        res = gaussian.solve(s.matrix(A_h), b)
        assert np.allclose(res.x, x_true, atol=1e-7)

    def test_diagonally_dominant(self, s):
        A_h, b, x_true = W.diagonally_dominant_system(16, seed=2)
        res = gaussian.solve(s.matrix(A_h), b)
        assert np.allclose(res.x, x_true, atol=1e-9)

    def test_identity_system(self, s):
        n = 8
        b = np.arange(1.0, 9.0)
        res = gaussian.solve(s.matrix(np.eye(n)), b)
        assert np.allclose(res.x, b)

    def test_permutation_matrix_forces_pivoting(self, s):
        """A permutation matrix has zero diagonal almost everywhere —
        solvable only through pivoting."""
        n = 8
        perm = np.random.default_rng(3).permutation(n)
        P = np.eye(n)[perm]
        b = np.arange(1.0, 9.0)
        res = gaussian.solve(s.matrix(P), b)
        assert np.allclose(P @ res.x, b)

    def test_pivot_order_matches_serial(self, s):
        """Partial pivoting must pick the same pivots as the serial
        reference (same arg-max tie-break), so the factorisations match."""
        A_h, b, _ = W.random_system(10, seed=11)
        res = gaussian.solve(s.matrix(A_h), b)
        ser = serial.gaussian_solve(A_h, b)
        assert np.allclose(res.x, ser.value, atol=1e-9)

    def test_singular_matrix_raises(self, s):
        A_h = np.ones((4, 4))
        with pytest.raises(SingularMatrixError):
            gaussian.solve(s.matrix(A_h), np.ones(4))

    def test_zero_matrix_raises(self, s):
        with pytest.raises(SingularMatrixError):
            gaussian.solve(s.matrix(np.zeros((3, 3))), np.ones(3))

    def test_no_pivoting_on_dominant_system(self, s):
        A_h, b, x_true = W.diagonally_dominant_system(8, seed=5)
        res = gaussian.solve(s.matrix(A_h), b, pivoting="none")
        assert np.allclose(res.x, x_true, atol=1e-8)
        assert res.pivots == list(range(8))

    def test_no_pivoting_fails_on_zero_diagonal(self, s):
        A_h = np.array([[0.0, 1.0], [1.0, 0.0]])
        with pytest.raises(SingularMatrixError, match="zero diagonal"):
            gaussian.solve(s.matrix(A_h), np.ones(2), pivoting="none")

    def test_bad_pivoting_name(self, s):
        with pytest.raises(ValueError, match="pivoting"):
            gaussian.solve(s.matrix(np.eye(2)), np.ones(2), pivoting="total")

    def test_non_square_rejected(self, s, rng):
        with pytest.raises(ValueError, match="square"):
            gaussian.solve(s.matrix(rng.standard_normal((3, 4))), np.ones(3))

    def test_b_shape_checked(self, s):
        with pytest.raises(ValueError, match="b must have shape"):
            gaussian.solve(s.matrix(np.eye(3)), np.ones(4))


class TestEliminate:
    def test_upper_triangular_result(self, s):
        A_h, b, _ = W.random_system(10, seed=7)
        res = gaussian.solve(s.matrix(A_h), b, keep_tableau=True)
        T = res.tableau.to_numpy()
        lower = np.tril(T[:, :10], k=-1)
        assert np.allclose(lower, 0.0, atol=1e-10)

    def test_pivots_recorded(self, s):
        A_h, b, _ = W.random_system(6, seed=8)
        res = gaussian.solve(s.matrix(A_h), b)
        assert len(res.pivots) == 6
        assert all(k <= piv < 6 for k, piv in enumerate(res.pivots))

    def test_tableau_width_check(self, s, rng):
        M = s.matrix(rng.standard_normal((5, 3)))
        with pytest.raises(ValueError, match="columns"):
            gaussian.eliminate(M)


class TestBackSubstitute:
    def test_rejects_missing_rhs(self, s, rng):
        M = s.matrix(rng.standard_normal((4, 4)))  # no RHS column at all
        with pytest.raises(ValueError, match="rhs_col"):
            gaussian.back_substitute(M)

    def test_rejects_out_of_range_rhs_col(self, s, rng):
        M = s.matrix(rng.standard_normal((4, 6)))
        with pytest.raises(ValueError, match="rhs_col"):
            gaussian.back_substitute(M, rhs_col=3)  # inside A, not a RHS
        with pytest.raises(ValueError, match="rhs_col"):
            gaussian.back_substitute(M, rhs_col=6)

    def test_solves_triangular_tableau(self, s, rng):
        n = 6
        U = np.triu(rng.standard_normal((n, n))) + 3 * np.eye(n)
        x_true = rng.standard_normal(n)
        T_h = np.hstack([U, (U @ x_true)[:, None]])
        x = gaussian.back_substitute(s.matrix(T_h))
        assert np.allclose(x, x_true, atol=1e-9)

    def test_zero_diagonal_raises(self, s):
        T_h = np.zeros((3, 4))
        T_h[0, 0] = T_h[1, 1] = 1.0  # T[2,2] stays zero
        with pytest.raises(SingularMatrixError):
            gaussian.back_substitute(s.matrix(T_h))


class TestCostStructure:
    def test_cost_recorded_with_phases(self, s):
        A_h, b, _ = W.random_system(12, seed=9)
        res = gaussian.solve(s.matrix(A_h), b)
        assert res.cost.time > 0
        phases = s.machine.counters.phase_times
        for name in ("gaussian", "pivot-search", "update", "back-substitution"):
            assert name in phases, name
        assert phases["gaussian"] >= phases["update"]

    def test_update_dominates_for_large_blocks(self):
        """With many elements per processor the rank-1 updates (O(m/p) work)
        must dominate the lg-p pivot searches."""
        s = Session(2, "unit")
        A_h, b, _ = W.random_system(24, seed=10)
        gaussian.solve(s.matrix(A_h), b)
        phases = s.machine.counters.phase_times
        assert phases["update"] > phases["pivot-search"]

    def test_serial_reference_op_count_scales_cubically(self):
        ops = []
        for n in (8, 16, 32):
            A_h, b, _ = W.diagonally_dominant_system(n, seed=1)
            ops.append(serial.gaussian_solve(A_h, b).ops)
        # doubling n multiplies ops by ~8 (within loose bounds)
        assert 5 < ops[1] / ops[0] < 11
        assert 5 < ops[2] / ops[1] < 11

    def test_serial_singular_detection(self):
        with pytest.raises(np.linalg.LinAlgError):
            serial.gaussian_solve(np.ones((3, 3)), np.ones(3))
