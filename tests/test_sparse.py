"""Unit and property tests for the sparse subsystem.

Three layers, all NumPy-only (no scipy — the differential oracle owns the
external references):

* semiring algebra — the registry contract plus Hypothesis checks of the
  axioms (associativity, identity, annihilator, distributivity) on random
  operands, per-semiring dtypes chosen so every check is *exact*;
* embedding / container structure — partition validation, nnz balance,
  COO canonicalization, and error taxonomy (ShapeError for bad extents,
  EmbeddingError for partition disagreements, ConfigError for semantic
  misuse like a fill that is not the semiring zero);
* round-trip conservation — ``from_dense → to_dense`` bit-identity and
  nnz conservation across ``repartition`` / ``rebalance`` under the
  sanitizer.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import Session
from repro.errors import ConfigError, EmbeddingError, ShapeError
from repro.machine import CostModel, Hypercube
from repro.sparse import (
    MIN_PLUS,
    OR_AND,
    PLUS_TIMES,
    SparseEmbedding,
    SparseMatrix,
    SparseVector,
    get_semiring,
    semiring_names,
    spgemm,
    spmv,
)

INT_INF = np.iinfo(np.int64).max


# -- semiring registry -------------------------------------------------------


def test_registry_resolves_names_and_objects():
    assert semiring_names() == ("plus_times", "min_plus", "or_and")
    assert get_semiring("min_plus") is MIN_PLUS
    assert get_semiring(PLUS_TIMES) is PLUS_TIMES
    with pytest.raises(ConfigError, match="unknown semiring"):
        get_semiring("max_plus")


def test_identities_per_dtype():
    assert PLUS_TIMES.zero(np.int64) == 0
    assert PLUS_TIMES.one(np.int64) == 1
    # min_plus's zero is +inf for floats and the saturating max for ints.
    assert MIN_PLUS.zero(np.float64) == np.inf
    assert MIN_PLUS.zero(np.int64) == INT_INF
    assert MIN_PLUS.one(np.float64) == 0.0
    assert OR_AND.zero(np.bool_) == False  # noqa: E712
    assert OR_AND.one(np.bool_) == True  # noqa: E712


# -- semiring axioms (Hypothesis) --------------------------------------------
#
# Dtypes are chosen so equality is exact: small int64 for plus_times (no
# rounding, no overflow), non-negative float64 + inf for min_plus (min is
# exact, and a + min(b, c) rounds identically to min(a + b, a + c)), bool
# for or_and.  min_plus uses the float +inf zero here because int64's
# saturating INT_INF is *not* an arithmetic annihilator — the primitives
# apply it by masking, which test_spmv_masks_absent_entries pins below.

_OPERANDS = {
    "plus_times": st.integers(min_value=-999, max_value=999).map(np.int64),
    "min_plus": st.one_of(
        st.just(np.float64(np.inf)),
        st.integers(min_value=0, max_value=999).map(np.float64),
    ),
    "or_and": st.booleans().map(np.bool_),
}


@st.composite
def semiring_triples(draw):
    name = draw(st.sampled_from(sorted(_OPERANDS)))
    operand = _OPERANDS[name]
    triple = draw(st.tuples(operand, operand, operand))
    return get_semiring(name), triple


@settings(max_examples=200, deadline=None)
@given(semiring_triples())
def test_semiring_axioms(case):
    sr, (a, b, c) = case
    add, mul = sr.add.ufunc, sr.mul
    zero, one = sr.zero(a.dtype), sr.one(a.dtype)
    # additive commutative monoid
    assert add(add(a, b), c) == add(a, add(b, c))
    assert add(a, b) == add(b, a)
    assert add(a, zero) == a
    # multiplicative monoid
    assert mul(mul(a, b), c) == mul(a, mul(b, c))
    assert mul(a, one) == a
    assert mul(one, a) == a
    # the additive identity annihilates
    assert mul(a, zero) == zero
    assert mul(zero, a) == zero
    # ⊗ distributes over ⊕
    assert mul(a, add(b, c)) == add(mul(a, b), mul(a, c))
    assert mul(add(b, c), a) == add(mul(b, a), mul(c, a))


# -- embeddings --------------------------------------------------------------


def test_partition_validation(unit_machine):
    p = unit_machine.p
    with pytest.raises(ShapeError, match="extent"):
        SparseEmbedding.balanced(unit_machine, 0)
    with pytest.raises(EmbeddingError, match="boundaries"):
        SparseEmbedding(unit_machine, 10, np.zeros(p, dtype=np.int64))
    with pytest.raises(EmbeddingError, match="span"):
        SparseEmbedding(unit_machine, 10, [0] * p + [9])
    with pytest.raises(EmbeddingError, match="non-decreasing"):
        SparseEmbedding(unit_machine, 10, [0, 5, 3, 7, 8, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 10])


def test_nnz_balance_bound(unit_machine, rng):
    """No rank exceeds the ideal nnz share by more than one row's nonzeros."""
    row_nnz = rng.integers(0, 12, size=100)
    emb = SparseEmbedding.nnz_balanced(unit_machine, row_nnz)
    per_rank = [
        int(row_nnz[lo:hi].sum())
        for lo, hi in (emb.rank_range(r) for r in range(unit_machine.p))
    ]
    ideal = row_nnz.sum() / unit_machine.p
    assert max(per_rank) <= ideal + row_nnz.max()
    assert sum(per_rank) == row_nnz.sum()


def test_address_maps_are_consistent(unit_machine, rng):
    row_nnz = rng.integers(0, 9, size=57)
    emb = SparseEmbedding.nnz_balanced(unit_machine, row_nnz)
    idx = np.arange(emb.N)
    ranks = emb.rank_of(idx)
    for g, r in zip(idx, ranks):
        lo, hi = emb.rank_range(int(r))
        assert lo <= g < hi or (lo == hi and g >= lo)
    assert np.array_equal(emb.owner_table(), emb.pid_of_rank(emb.rank_table()))
    assert np.array_equal(emb.rank_of_pid(emb.pid_of_rank(ranks)), ranks)


# -- containers --------------------------------------------------------------


def test_from_coo_sums_duplicates(unit_machine):
    A = SparseMatrix.from_coo(
        unit_machine,
        rows=[2, 0, 2, 2],
        cols=[1, 0, 1, 3],
        data=[5.0, 1.0, 7.0, 2.0],
        shape=(4, 4),
    )
    want = np.zeros((4, 4))
    want[0, 0], want[2, 1], want[2, 3] = 1.0, 12.0, 2.0
    assert A.nnz == 3  # duplicates merged
    assert np.array_equal(A.to_dense(), want)


def test_from_coo_rejects_out_of_range(unit_machine):
    with pytest.raises(ShapeError, match="row index"):
        SparseMatrix.from_coo(unit_machine, [4], [0], [1.0], shape=(4, 4))
    with pytest.raises(ShapeError, match="column index"):
        SparseMatrix.from_coo(unit_machine, [0], [-1], [1.0], shape=(4, 4))
    with pytest.raises(ConfigError, match="layout"):
        SparseMatrix.from_coo(
            unit_machine, [0], [0], [1.0], shape=(4, 4), layout="diag"
        )


def test_empty_matrix_round_trips(unit_machine):
    A = SparseMatrix.from_dense(unit_machine, np.zeros((6, 5)))
    assert A.nnz == 0
    assert np.array_equal(A.to_dense(), np.zeros((6, 5)))
    x = SparseVector.from_numpy(unit_machine, np.arange(5.0))
    y = spmv(A, x)
    assert y.nnz == 0
    B = SparseMatrix.from_dense(unit_machine, np.zeros((5, 6)))
    C = spgemm(A, B)
    assert C.nnz == 0 and C.shape == (6, 6)


def test_spmv_masks_absent_entries(unit_machine):
    """Integer min-plus: absences annihilate by masking, never arithmetic."""
    D = np.array([[1, 4], [2, 0]], dtype=np.int64)
    A = SparseMatrix.from_dense(unit_machine, D)
    x = SparseVector.from_numpy(
        unit_machine, np.array([3, INT_INF], dtype=np.int64), fill=INT_INF
    )
    y = spmv(A, x, "min_plus")
    # column 1 is absent: row 0 sees only 1 + 3, row 1 only 2 + 3 — no
    # INT_INF ever enters an addition (which would wrap negative).
    assert np.array_equal(y.to_numpy(), [4, 5])


def test_error_taxonomy(unit_machine):
    other = Hypercube(2, CostModel.unit())
    A = SparseMatrix.from_dense(unit_machine, np.eye(4))
    x_short = SparseVector.from_numpy(unit_machine, np.ones(3))
    with pytest.raises(ShapeError, match="4 columns"):
        spmv(A, x_short)
    x_far = SparseVector.from_numpy(other, np.ones(4))
    with pytest.raises(ConfigError, match="different machines"):
        spmv(A, x_far)
    # fill must equal the semiring zero or absences would not annihilate
    x_bad_fill = SparseVector.from_numpy(unit_machine, np.ones(4), fill=0.0)
    with pytest.raises(ConfigError, match="not the min_plus zero"):
        spmv(A, x_bad_fill, "min_plus")
    B_far = SparseMatrix.from_dense(other, np.eye(4))
    with pytest.raises(ConfigError, match="different machines"):
        spgemm(A, B_far)
    B_mis = SparseMatrix.from_dense(unit_machine, np.eye(3))
    with pytest.raises(ShapeError):
        spgemm(A, B_mis)
    a = SparseVector.from_numpy(unit_machine, np.ones(8))
    b = SparseVector.from_numpy(
        unit_machine,
        np.ones(8),
        embedding=SparseEmbedding(
            unit_machine, 8, [0] * unit_machine.p + [8]
        ),
    )
    with pytest.raises(EmbeddingError, match="share the sparse partition"):
        a.elementwise(b, np.add, 0.0)


@pytest.mark.parametrize("name", ["plus_times", "min_plus", "or_and"])
def test_spmv_matches_dense_reference(unit_machine, rng, name):
    """In-process differential check against a brute-force dense fold."""
    sr = get_semiring(name)
    dtype = {"plus_times": np.int64, "min_plus": np.float64,
             "or_and": np.bool_}[name]
    D = (rng.random((9, 7)) < 0.4) * rng.integers(1, 6, size=(9, 7))
    D = D.astype(dtype)
    xv = ((rng.random(7) < 0.6) * rng.integers(1, 6, size=7)).astype(dtype)
    zero = sr.zero(dtype)
    xv[xv == dtype(0)] = zero  # absences carry the semiring zero
    A = SparseMatrix.from_dense(unit_machine, np.where(D, D, 0).astype(dtype))
    x = SparseVector.from_numpy(unit_machine, xv, fill=zero)
    got = spmv(A, x, sr).to_numpy()
    want = np.full(9, zero, dtype=got.dtype)
    for i in range(9):
        for j in range(7):
            if D[i, j] != dtype(0) and xv[j] != zero:
                want[i] = sr.add.ufunc(want[i], sr.mul(D[i, j], xv[j]))
    assert np.array_equal(got, want)


# -- round-trip conservation (Hypothesis, under the sanitizer) ---------------


@st.composite
def sparse_instances(draw):
    n = draw(st.integers(min_value=0, max_value=4))
    N = draw(st.integers(min_value=1, max_value=24))
    M = draw(st.integers(min_value=1, max_value=24))
    density = draw(st.floats(min_value=0.0, max_value=0.7))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    layout = draw(st.sampled_from(["nnz", "block"]))
    return n, N, M, density, seed, layout


@settings(max_examples=60, deadline=None)
@given(sparse_instances())
def test_round_trip_and_remap_conserve_nnz(case):
    n, N, M, density, seed, layout = case
    rng = np.random.default_rng(seed)
    dense = (rng.random((N, M)) < density) * rng.integers(
        1, 100, size=(N, M)
    )
    dense = dense.astype(np.int64)
    session = Session(n, sanitize=True)
    A = SparseMatrix.from_dense(session.machine, dense, layout=layout)
    # embed → extract is bit-identical, and nnz matches the host count
    assert np.array_equal(A.to_dense(), dense)
    assert A.nnz == int(np.count_nonzero(dense))
    assert int(A.rank_nnz().sum()) == A.nnz
    # remaps move every nonzero exactly once: nnz and values conserved
    B = A.repartition(SparseEmbedding.balanced(session.machine, N))
    assert B.nnz == A.nnz
    assert np.array_equal(B.to_dense(), dense)
    C = B.rebalance()
    assert C.nnz == A.nnz
    assert np.array_equal(C.to_dense(), dense)
    r, c, d = C.to_coo()
    assert d.size == A.nnz


@settings(max_examples=40, deadline=None)
@given(sparse_instances())
def test_vector_round_trip_under_sanitizer(case):
    n, N, _, density, seed, _ = case
    rng = np.random.default_rng(seed)
    values = ((rng.random(N) < density) * rng.integers(1, 50, size=N)).astype(
        np.int64
    )
    session = Session(n, sanitize=True)
    x = session.sparse_vector(values)
    assert np.array_equal(x.to_numpy(), values)
    assert x.nnz == int(np.count_nonzero(values))
    y = x.copy()
    y.blocks[0] = y.blocks[0].copy()
    assert np.array_equal(y.to_numpy(), values)
