"""Tests for the Gray-vs-binary coding ablation (R-A1 support).

Gray coding is what makes grid-adjacent bands cube-adjacent.  With plain
binary coding the primitives still compute the right answers (subcube
collectives do not care about coordinate order), but *sequential* band
traffic — residence changes, the naive baseline's band-at-a-time sends —
pays longer routes.
"""

import numpy as np
import pytest

from repro.core import primitives as P
from repro.embeddings import (
    MatrixEmbedding,
    RowAlignedEmbedding,
    VectorOrderEmbedding,
    hamming_distance,
    remap_vector,
)
from repro.machine import CostModel, Hypercube


@pytest.fixture
def m():
    return Hypercube(4, CostModel.unit())


class TestBinaryCodingCorrectness:
    """Everything still works under binary coding."""

    def test_matrix_round_trip(self, m, rng):
        emb = MatrixEmbedding.default(m, 9, 13, coding="binary")
        A = rng.standard_normal((9, 13))
        assert np.allclose(emb.gather(emb.scatter(A)), A)

    def test_primitives_agree_with_gray(self, m, rng):
        A = rng.standard_normal((9, 13))
        for coding in ("gray", "binary"):
            emb = MatrixEmbedding.default(m, 9, 13, coding=coding)
            M = emb.scatter(A)
            v, ve = P.reduce(M, emb, 1, "sum")
            assert np.allclose(ve.gather(v), A.sum(1)), coding
            w, we = P.extract(M, emb, 0, 4)
            assert np.allclose(we.gather(w), A[4]), coding
            val, idx, ie = P.reduce_loc(M, emb, 0, "max")
            assert np.array_equal(ie.gather(idx), A.argmax(0)), coding

    def test_vector_order_round_trip(self, m, rng):
        emb = VectorOrderEmbedding(m, 23, coding="binary")
        v = rng.standard_normal(23)
        assert np.allclose(emb.gather(emb.scatter(v)), v)

    def test_invalid_coding_rejected(self, m):
        with pytest.raises(ValueError, match="coding"):
            MatrixEmbedding.default(m, 4, 4, coding="hilbert")
        with pytest.raises(ValueError, match="coding"):
            VectorOrderEmbedding(m, 4, coding="hilbert")

    def test_codings_are_incompatible_embeddings(self, m):
        a = VectorOrderEmbedding(m, 8, coding="gray")
        b = VectorOrderEmbedding(m, 8, coding="binary")
        assert not a.compatible(b)
        ma = MatrixEmbedding.default(m, 4, 4, coding="gray")
        mb = MatrixEmbedding.default(m, 4, 4, coding="binary")
        assert ma != mb


class TestGrayAdvantage:
    def test_gray_adjacent_bands_are_neighbors_binary_not(self, m):
        g = MatrixEmbedding(m, 16, 16, (0, 1), (2, 3), coding="gray")
        b = MatrixEmbedding(m, 16, 16, (0, 1), (2, 3), coding="binary")
        # grid rows 1 -> 2: gray neighbours, binary two-bit flip
        assert hamming_distance(g.pid_for_grid(1, 0), g.pid_for_grid(2, 0)) == 1
        assert hamming_distance(b.pid_for_grid(1, 0), b.pid_for_grid(2, 0)) == 2

    def test_vector_order_sequential_adjacency(self, m):
        g = VectorOrderEmbedding(m, 16, coding="gray")
        b = VectorOrderEmbedding(m, 16, coding="binary")
        def max_gap(emb):
            owners = [int(np.asarray(emb.owner_slot(i)[0])) for i in range(16)]
            return max(
                hamming_distance(a, c) for a, c in zip(owners, owners[1:])
            )
        assert max_gap(g) == 1
        assert max_gap(b) == 4  # 7 -> 8 flips every bit

    def test_band_walk_cheaper_under_gray(self):
        """Sweeping a resident vector across consecutive bands (the access
        pattern of a column sweep) transfers fewer element-hops with Gray
        coding."""
        costs = {}
        for coding in ("gray", "binary"):
            m = Hypercube(4, CostModel(tau=0, t_c=1, t_a=0, t_m=0))
            emb = MatrixEmbedding(m, 16, 16, (0, 1), (2, 3), coding=coding)
            v = np.ones(16)
            cur = RowAlignedEmbedding(emb, 0)
            pv = cur.scatter(v)
            e0 = m.counters.elements_transferred
            for band in range(1, emb.Pr):
                nxt = RowAlignedEmbedding(emb, band)
                pv = remap_vector(pv, cur, nxt)
                cur = nxt
            costs[coding] = m.counters.elements_transferred - e0
        assert costs["gray"] < costs["binary"]
