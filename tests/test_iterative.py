"""Tests for the iterative solvers (CG, Jacobi, power method)."""

import numpy as np
import pytest

from repro import Session
from repro import workloads as W
from repro.algorithms import iterative
from repro.algorithms.naive import NaiveMatrix


def spd_system(n, seed=0):
    rng = np.random.default_rng(seed)
    M = rng.standard_normal((n, n))
    A = M @ M.T + n * np.eye(n)
    x = rng.standard_normal(n)
    return A, A @ x, x


@pytest.fixture
def s():
    return Session(4, "unit")


class TestConjugateGradient:
    @pytest.mark.parametrize("n", [1, 4, 16, 32])
    def test_solves_spd_systems(self, s, n):
        A_h, b, x_true = spd_system(n, seed=n)
        res = iterative.conjugate_gradient(s.matrix(A_h), b)
        assert res.converged
        assert np.allclose(res.x, x_true, atol=1e-6)

    def test_converges_within_n_iterations(self, s):
        """Exact-arithmetic CG terminates in n steps; float64 on a
        well-conditioned system stays close to that."""
        A_h, b, _ = spd_system(24, seed=5)
        res = iterative.conjugate_gradient(s.matrix(A_h), b)
        assert res.iterations <= 24 + 5

    def test_residuals_decrease_overall(self, s):
        A_h, b, _ = spd_system(20, seed=6)
        res = iterative.conjugate_gradient(s.matrix(A_h), b)
        assert res.residuals[-1] < res.residuals[0] * 1e-6

    def test_warm_start(self, s):
        A_h, b, x_true = spd_system(16, seed=7)
        cold = iterative.conjugate_gradient(s.matrix(A_h), b)
        warm = iterative.conjugate_gradient(
            s.matrix(A_h), b, x0=x_true + 1e-8
        )
        assert warm.iterations < cold.iterations

    def test_identity_converges_in_one(self, s):
        b = np.arange(1.0, 9.0)
        res = iterative.conjugate_gradient(s.matrix(np.eye(8)), b)
        assert res.iterations <= 1
        assert np.allclose(res.x, b)

    def test_indefinite_matrix_detected(self, s):
        A_h = -np.eye(6)
        with pytest.raises(np.linalg.LinAlgError, match="positive definite"):
            iterative.conjugate_gradient(s.matrix(A_h), np.ones(6))

    def test_iteration_limit(self, s):
        A_h, b, _ = spd_system(16, seed=8)
        res = iterative.conjugate_gradient(s.matrix(A_h), b, max_iters=2)
        assert not res.converged
        assert res.iterations == 2

    def test_naive_matrix_runs_same_algorithm(self, s):
        A_h, b, x_true = spd_system(12, seed=9)
        res = iterative.conjugate_gradient(
            NaiveMatrix.from_numpy(s.machine, A_h), b
        )
        assert res.converged
        assert np.allclose(res.x, x_true, atol=1e-6)

    def test_cost_and_phase_recorded(self, s):
        A_h, b, _ = spd_system(12, seed=10)
        res = iterative.conjugate_gradient(s.matrix(A_h), b)
        assert res.cost.time > 0
        assert "conjugate-gradient" in s.machine.counters.phase_times

    def test_shape_validation(self, s, rng):
        with pytest.raises(ValueError, match="square"):
            iterative.conjugate_gradient(
                s.matrix(rng.standard_normal((3, 4))), np.ones(3)
            )
        with pytest.raises(ValueError, match="shape"):
            iterative.conjugate_gradient(s.matrix(np.eye(3)), np.ones(4))


class TestJacobi:
    @pytest.mark.parametrize("n", [2, 8, 20])
    def test_solves_dominant_systems(self, s, n):
        A_h, b, x_true = W.diagonally_dominant_system(n, seed=n)
        res = iterative.jacobi(s.matrix(A_h), b)
        assert res.converged
        assert np.allclose(res.x, x_true, atol=1e-7)

    def test_diagonal_system_converges_immediately(self, s):
        D = np.diag(np.arange(1.0, 9.0))
        b = np.ones(8)
        res = iterative.jacobi(s.matrix(D), b)
        assert res.converged
        assert res.iterations <= 1
        assert np.allclose(res.x, 1.0 / np.arange(1.0, 9.0))

    def test_zero_diagonal_rejected(self, s):
        A_h = np.array([[0.0, 1.0], [1.0, 1.0]])
        with pytest.raises(np.linalg.LinAlgError, match="diagonal"):
            iterative.jacobi(s.matrix(A_h), np.ones(2))

    def test_non_convergent_hits_limit(self, s):
        """A non-dominant system can diverge; the limit must stop it."""
        rng = np.random.default_rng(11)
        A_h = rng.standard_normal((8, 8)) + 0.1 * np.eye(8)
        res = iterative.jacobi(s.matrix(A_h), np.ones(8), max_iters=20)
        assert res.iterations <= 20

    def test_residual_history_recorded(self, s):
        A_h, b, _ = W.diagonally_dominant_system(10, seed=12)
        res = iterative.jacobi(s.matrix(A_h), b)
        assert len(res.residuals) == res.iterations + 1
        assert res.residuals[-1] <= 1e-10


class TestPowerMethod:
    def test_finds_dominant_eigenpair(self, s, rng):
        Q, _ = np.linalg.qr(rng.standard_normal((12, 12)))
        lams = np.concatenate([[5.0], rng.uniform(0.1, 1.0, 11)])
        A_h = Q @ np.diag(lams) @ Q.T
        lam, vec, res = iterative.power_method(s.matrix(A_h), tol=1e-13)
        assert res.converged
        assert np.isclose(lam, 5.0, atol=1e-8)
        assert np.isclose(abs(vec @ Q[:, 0]), 1.0, atol=1e-6)

    def test_negative_dominant_eigenvalue(self, s, rng):
        A_h = np.diag([-4.0, 1.0, 0.5, 0.1])
        lam, vec, res = iterative.power_method(s.matrix(A_h), tol=1e-13)
        assert np.isclose(lam, -4.0, atol=1e-8)

    def test_rayleigh_estimate_at_limit(self, s):
        A_h = np.diag([2.0, 1.9, 1.0, 0.5])  # slow separation
        lam, _, res = iterative.power_method(
            s.matrix(A_h), tol=1e-16, max_iters=5
        )
        assert not res.converged
        assert 1.8 < lam <= 2.01

    def test_cost_recorded(self, s):
        lam, vec, res = iterative.power_method(s.matrix(np.diag([3.0, 1.0])))
        assert res.cost.time > 0


class TestPreconditionedCG:
    def test_matches_plain_on_well_conditioned(self, s):
        A_h, b, x_true = spd_system(16, seed=30)
        plain = iterative.conjugate_gradient(s.matrix(A_h), b)
        pre = iterative.conjugate_gradient(
            s.matrix(A_h), b, preconditioner="jacobi"
        )
        assert pre.converged
        assert np.allclose(pre.x, plain.x, atol=1e-7)

    def test_cuts_iterations_on_badly_scaled_systems(self, s, rng):
        """The FEM reports' configuration: diagonal preconditioning tames
        badly scaled SPD systems."""
        n = 24
        M = rng.standard_normal((n, n))
        A_h = M @ M.T + n * np.eye(n)
        D = np.diag(10.0 ** rng.uniform(-3, 3, n))
        A2 = D @ A_h @ D
        x_true = rng.standard_normal(n)
        b2 = A2 @ x_true
        plain = iterative.conjugate_gradient(s.matrix(A2), b2, max_iters=500)
        pre = iterative.conjugate_gradient(
            s.matrix(A2), b2, max_iters=500, preconditioner="jacobi"
        )
        assert pre.converged
        assert pre.iterations < plain.iterations
        resid = np.linalg.norm(A2 @ pre.x - b2) / np.linalg.norm(b2)
        assert resid < 1e-8

    def test_zero_diagonal_rejected(self, s):
        A_h = np.eye(4)
        A_h[2, 2] = 0.0
        with pytest.raises(np.linalg.LinAlgError, match="diagonal"):
            iterative.conjugate_gradient(
                s.matrix(A_h), np.ones(4), preconditioner="jacobi"
            )

    def test_unknown_preconditioner_rejected(self, s):
        with pytest.raises(ValueError, match="preconditioner"):
            iterative.conjugate_gradient(
                s.matrix(np.eye(3)), np.ones(3), preconditioner="ilu"
            )

    def test_costs_one_extra_pass_per_iteration(self):
        """Jacobi PCG adds only the z = D^-1 r elementwise multiply."""
        A_h, b, _ = spd_system(16, seed=31)
        s1 = Session(4, "cm2")
        s2 = Session(4, "cm2")
        plain = iterative.conjugate_gradient(s1.matrix(A_h), b)
        pre = iterative.conjugate_gradient(
            s2.matrix(A_h), b, preconditioner="jacobi"
        )
        per_plain = plain.cost.time / max(plain.iterations, 1)
        per_pre = pre.cost.time / max(pre.iterations, 1)
        assert per_pre < per_plain * 1.3


class TestGMRES:
    @pytest.mark.parametrize("n", [1, 8, 20, 32])
    def test_solves_nonsymmetric_systems(self, s, n):
        r = np.random.default_rng(n + 50)
        A_h = r.standard_normal((n, n)) + 3 * np.eye(n)
        x_true = r.standard_normal(n)
        res = iterative.gmres(s.matrix(A_h), A_h @ x_true, tol=1e-11)
        assert res.converged
        assert np.allclose(res.x, x_true, atol=1e-6)

    def test_handles_systems_cg_cannot(self, s, rng):
        """A nonsymmetric (even non-positive-definite-symmetric-part)
        system: CG's premise fails, GMRES still solves it."""
        A_h = np.array([[0.0, 1.0], [-1.0, 0.5]]) + 2 * np.eye(2)
        x_true = np.array([1.0, -2.0])
        res = iterative.gmres(s.matrix(A_h), A_h @ x_true)
        assert res.converged
        assert np.allclose(res.x, x_true, atol=1e-8)

    def test_full_gmres_converges_within_n(self, s, rng):
        n = 16
        A_h = rng.standard_normal((n, n)) + 4 * np.eye(n)
        x_true = rng.standard_normal(n)
        res = iterative.gmres(s.matrix(A_h), A_h @ x_true, restart=n)
        assert res.converged
        assert res.iterations <= n + 1

    def test_restarted_converges(self, s, rng):
        n = 40
        A_h = rng.standard_normal((n, n)) + 10 * np.eye(n)
        x_true = rng.standard_normal(n)
        res = iterative.gmres(s.matrix(A_h), A_h @ x_true, restart=10)
        assert res.converged
        assert np.allclose(res.x, x_true, atol=1e-5)

    def test_identity_converges_immediately(self, s):
        b = np.arange(1.0, 9.0)
        res = iterative.gmres(s.matrix(np.eye(8)), b)
        assert res.converged
        assert res.iterations <= 1
        assert np.allclose(res.x, b)

    def test_zero_rhs(self, s):
        res = iterative.gmres(s.matrix(np.eye(4) * 3), np.zeros(4))
        assert res.converged
        assert np.allclose(res.x, 0.0)

    def test_iteration_limit(self, s, rng):
        A_h = rng.standard_normal((12, 12)) + 4 * np.eye(12)
        res = iterative.gmres(s.matrix(A_h), np.ones(12), max_iters=3)
        assert res.iterations <= 3

    def test_validation(self, s, rng):
        with pytest.raises(ValueError, match="square"):
            iterative.gmres(s.matrix(rng.standard_normal((3, 4))), np.ones(3))
        with pytest.raises(ValueError, match="restart"):
            iterative.gmres(s.matrix(np.eye(3)), np.ones(3), restart=0)

    def test_cost_and_phase_recorded(self, s, rng):
        A_h = rng.standard_normal((10, 10)) + 4 * np.eye(10)
        res = iterative.gmres(s.matrix(A_h), np.ones(10))
        assert res.cost.time > 0
        assert "gmres" in s.machine.counters.phase_times
