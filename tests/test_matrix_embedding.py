"""Unit tests for matrix embeddings (S7)."""

import numpy as np
import pytest

from repro.embeddings import MatrixEmbedding, hamming_distance, split_dims
from repro.machine import CostModel, Hypercube


@pytest.fixture
def m():
    return Hypercube(4, CostModel.unit())


class TestSplitDims:
    def test_covers_all_dims(self):
        for n in range(7):
            nr, nc = split_dims(n, 100, 100)
            assert nr + nc == n

    def test_square_matrix_square_grid(self):
        nr, nc = split_dims(6, 512, 512)
        assert abs(nr - nc) <= 1

    def test_tall_matrix_gets_row_dims(self):
        nr, nc = split_dims(6, 4096, 4)
        assert nr > nc

    def test_wide_matrix_gets_col_dims(self):
        nr, nc = split_dims(6, 4, 4096)
        assert nc > nr

    def test_extreme_aspect_fully_one_sided(self):
        assert split_dims(4, 1000, 1) == (4, 0)
        assert split_dims(4, 1, 1000) == (0, 4)

    def test_split_minimises_local_load(self):
        n, R, C = 5, 24, 100
        nr, nc = split_dims(n, R, C)
        best = -(-R // (1 << nr)) * -(-C // (1 << nc))
        for anr in range(n + 1):
            anc = n - anr
            load = -(-R // (1 << anr)) * -(-C // (1 << anc))
            assert best <= load

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            split_dims(-1, 2, 2)
        with pytest.raises(ValueError):
            split_dims(2, 0, 2)


class TestConstruction:
    def test_dims_must_partition_cube(self, m):
        with pytest.raises(ValueError, match="cover all"):
            MatrixEmbedding(m, 4, 4, row_dims=(0,), col_dims=(1,))
        with pytest.raises(ValueError, match="overlap"):
            MatrixEmbedding(m, 4, 4, row_dims=(0, 1), col_dims=(1, 2))

    def test_grid_shape(self, m):
        emb = MatrixEmbedding(m, 8, 8, row_dims=(0, 1, 2), col_dims=(3,))
        assert (emb.Pr, emb.Pc) == (8, 2)

    def test_local_shape_is_ceil(self, m):
        emb = MatrixEmbedding(m, 10, 9, row_dims=(0, 1), col_dims=(2, 3))
        assert emb.local_shape == (3, 3)

    def test_invalid_extent(self, m):
        with pytest.raises(ValueError):
            MatrixEmbedding(m, 0, 4, row_dims=(0, 1), col_dims=(2, 3))

    def test_default_factory_aspect(self, m):
        emb = MatrixEmbedding.default(m, 100, 2)
        assert emb.Pr >= emb.Pc

    def test_equality(self, m):
        a = MatrixEmbedding.default(m, 8, 8)
        b = MatrixEmbedding.default(m, 8, 8)
        c = MatrixEmbedding.default(m, 8, 9)
        assert a == b and a != c

    def test_repr_mentions_grid(self, m):
        emb = MatrixEmbedding.default(m, 8, 8)
        assert "grid" in repr(emb)


class TestAddressing:
    def test_pid_grid_round_trip(self, m):
        emb = MatrixEmbedding(m, 16, 16, row_dims=(0, 1), col_dims=(2, 3))
        for gr in range(emb.Pr):
            for gc in range(emb.Pc):
                pid = emb.pid_for_grid(gr, gc)
                assert emb.grid_for_pid(pid) == (gr, gc)

    def test_every_pid_has_unique_grid_cell(self, m):
        emb = MatrixEmbedding(m, 16, 16, row_dims=(0, 2), col_dims=(1, 3))
        cells = {emb.grid_for_pid(pid) for pid in range(m.p)}
        assert len(cells) == m.p

    def test_adjacent_grid_cells_are_cube_neighbors(self, m):
        """The Gray-code property that motivates the embedding."""
        emb = MatrixEmbedding(m, 16, 16, row_dims=(0, 1), col_dims=(2, 3))
        for gr in range(emb.Pr - 1):
            for gc in range(emb.Pc):
                a = emb.pid_for_grid(gr, gc)
                b = emb.pid_for_grid(gr + 1, gc)
                assert hamming_distance(a, b) == 1
        for gr in range(emb.Pr):
            for gc in range(emb.Pc - 1):
                a = emb.pid_for_grid(gr, gc)
                b = emb.pid_for_grid(gr, gc + 1)
                assert hamming_distance(a, b) == 1

    def test_owner_slot_locates_elements(self, m, rng):
        emb = MatrixEmbedding.default(m, 11, 7)
        A = rng.standard_normal((11, 7))
        pv = emb.scatter(A)
        for i in range(11):
            for j in range(7):
                pid, sr, sc = emb.owner_slot(i, j)
                assert pv.data[int(pid), int(sr), int(sc)] == A[i, j]

    def test_owner_vectorised(self, m):
        emb = MatrixEmbedding.default(m, 11, 7)
        ii, jj = np.meshgrid(np.arange(11), np.arange(7), indexing="ij")
        pids = emb.owner(ii.ravel(), jj.ravel())
        assert pids.shape == (77,)
        assert pids.min() >= 0 and pids.max() < m.p


class TestLoadBalance:
    @pytest.mark.parametrize("R,C", [(16, 16), (17, 3), (1, 100), (33, 31)])
    @pytest.mark.parametrize("layout", ["block", "cyclic"])
    def test_no_processor_over_capacity(self, m, R, C, layout):
        emb = MatrixEmbedding.default(m, R, C, layout=layout)
        counts = emb.valid_mask().sum(axis=(1, 2))
        lr, lc = emb.local_shape
        assert counts.max() <= lr * lc
        assert counts.sum() == R * C

    def test_balanced_within_one_row_and_col(self, m):
        emb = MatrixEmbedding.default(m, 30, 22, layout="cyclic")
        counts = emb.valid_mask().sum(axis=(1, 2))
        # each axis balanced within 1 => products within a small factor
        assert counts.max() - counts.min() <= emb.local_shape[0] + emb.local_shape[1]


class TestHostTransfer:
    @pytest.mark.parametrize("R,C", [(1, 1), (16, 16), (5, 13), (31, 2)])
    @pytest.mark.parametrize("layout", ["block", "cyclic"])
    def test_scatter_gather_round_trip(self, m, rng, R, C, layout):
        emb = MatrixEmbedding.default(m, R, C, layout=layout)
        A = rng.standard_normal((R, C))
        assert np.allclose(emb.gather(emb.scatter(A)), A)

    def test_scatter_zeroes_padding(self, m):
        emb = MatrixEmbedding.default(m, 5, 5)
        pv = emb.scatter(np.ones((5, 5)))
        assert np.all(pv.data[~emb.valid_mask()] == 0.0)

    def test_scatter_shape_check(self, m):
        emb = MatrixEmbedding.default(m, 5, 5)
        with pytest.raises(ValueError, match="host matrix"):
            emb.scatter(np.ones((5, 6)))

    def test_gather_shape_check(self, m):
        emb = MatrixEmbedding.default(m, 5, 5)
        other = MatrixEmbedding.default(m, 8, 8)
        pv = other.scatter(np.ones((8, 8)))
        with pytest.raises(ValueError, match="local shape"):
            emb.gather(pv)

    def test_scatter_untimed(self, m):
        emb = MatrixEmbedding.default(m, 6, 6)
        t0 = m.counters.time
        emb.scatter(np.ones((6, 6)))
        assert m.counters.time == t0


class TestTransposedEmbedding:
    def test_swaps_axes(self, m):
        emb = MatrixEmbedding(m, 10, 6, row_dims=(0, 1, 2), col_dims=(3,))
        t = emb.transposed()
        assert (t.R, t.C) == (6, 10)
        assert t.row_dims == (3,) and t.col_dims == (0, 1, 2)

    def test_double_transpose_is_identity(self, m):
        emb = MatrixEmbedding.default(m, 10, 6, layout="cyclic")
        assert emb.transposed().transposed() == emb

    def test_same_grid(self, m):
        a = MatrixEmbedding.default(m, 10, 6)
        b = MatrixEmbedding(m, 12, 8, a.row_dims, a.col_dims)
        assert a.same_grid(b)
        assert a != b
