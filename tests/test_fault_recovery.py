"""Property tests for degraded-mode recovery (``repro.faults.recovery``).

The pinned property: for a seeded random fault plan under which recovery
succeeds, the recovered numerical result is *identical* to the fault-free
run — Gaussian elimination and simplex are exact elementwise/argreduce
pipelines, and the matvec workload uses integer data so even its
sum-reductions are exact across machine sizes.
"""

import numpy as np
import pytest

from repro import Session
from repro.faults import (
    CheckpointStore,
    FaultPlan,
    LinkKill,
    NodeKill,
    gaussian_workload,
    matvec_workload,
    run_resilient,
    simplex_workload,
)
from repro.workloads import feasible_lp

N_DIMS = 4
SIZE = 16


def _gaussian_inputs(seed=0):
    rng = np.random.default_rng(seed)
    A = rng.integers(-4, 5, size=(SIZE, SIZE)).astype(np.float64)
    A += SIZE * np.eye(SIZE)  # diagonally dominant: stable pivoting
    b = rng.integers(-4, 5, size=SIZE).astype(np.float64)
    return A, b


def _matvec_inputs(seed=0):
    rng = np.random.default_rng(seed)
    A = rng.integers(-3, 4, size=(SIZE, SIZE)).astype(np.float64)
    x = rng.integers(-3, 4, size=SIZE).astype(np.float64)
    return A, x


def _baseline(make_workload):
    """Fault-free result and runtime for a workload factory."""
    s = Session(N_DIMS, "unit")
    result = make_workload()(s, CheckpointStore(s))
    return np.asarray(result), s.time


def _resilient(make_workload, plan):
    s = Session(N_DIMS, "unit", faults=plan)
    report = run_resilient(s, make_workload())
    return report, s


class TestGaussianRecovery:
    @pytest.mark.parametrize("fault_seed", [0, 1, 2, 3, 4])
    def test_recovered_result_matches_fault_free(self, fault_seed):
        A, b = _gaussian_inputs()
        make = lambda: gaussian_workload(A, b)
        baseline, t0 = _baseline(make)
        plan = FaultPlan.random(
            N_DIMS, seed=fault_seed, horizon=0.6 * t0,
            node_kills=1, link_kills=1, drops=2,
        )
        report, s = _resilient(make, plan)
        assert report.recovered, report.error
        assert report.recoveries >= 1
        assert s.machine.p < 2 ** N_DIMS  # really did degrade
        np.testing.assert_array_equal(np.asarray(report.result), baseline)

    def test_same_seed_same_trajectory(self):
        """Kills, detours, retries and recovery ticks are reproducible."""
        A, b = _gaussian_inputs()
        make = lambda: gaussian_workload(A, b)
        _, t0 = _baseline(make)
        plan = FaultPlan.random(N_DIMS, seed=1, horizon=0.6 * t0,
                                node_kills=1, link_kills=1, drops=2)
        r1, s1 = _resilient(make, plan)
        r2, s2 = _resilient(make, plan)
        assert r1.stats.as_dict() == r2.stats.as_dict()
        assert s1.time == s2.time
        assert s1.machine.counters.comm_rounds == s2.machine.counters.comm_rounds
        np.testing.assert_array_equal(
            np.asarray(r1.result), np.asarray(r2.result)
        )

    def test_resume_from_checkpoint_not_restart(self):
        """A late kill resumes from a mid-solve checkpoint: the injector
        stats record remapped arrays and nonzero recovery ticks."""
        A, b = _gaussian_inputs()
        make = lambda: gaussian_workload(A, b, checkpoint_every=2)
        baseline, t0 = _baseline(make)
        # kill a node late enough that checkpoints exist
        plan = FaultPlan([NodeKill(0.8 * t0, pid=3)])
        report, _ = _resilient(make, plan)
        assert report.recovered
        assert report.stats.remapped_arrays >= 1
        assert report.stats.recovery_ticks > 0
        np.testing.assert_array_equal(np.asarray(report.result), baseline)

    def test_unrecoverable_reports_not_raises(self):
        A, b = _gaussian_inputs()
        make = lambda: gaussian_workload(A, b)
        _, t0 = _baseline(make)
        plan = FaultPlan([NodeKill(0.2 * t0, pid=1)])
        s = Session(N_DIMS, "unit", faults=plan)
        report = run_resilient(s, make(), max_recoveries=0)
        assert not report.recovered
        assert report.result is None
        assert report.error is not None


class TestSimplexRecovery:
    @pytest.mark.parametrize("fault_seed", [0, 1, 2])
    def test_recovered_result_matches_fault_free(self, fault_seed):
        lp = feasible_lp(8, 8, seed=5)
        make = lambda: simplex_workload(lp.A, lp.b, lp.c)
        baseline, t0 = _baseline(make)
        plan = FaultPlan.random(
            N_DIMS, seed=fault_seed, horizon=0.6 * t0,
            node_kills=1, link_kills=0, drops=1,
        )
        report, _ = _resilient(make, plan)
        assert report.recovered, report.error
        np.testing.assert_array_equal(np.asarray(report.result), baseline)


class TestMatvecRecovery:
    @pytest.mark.parametrize("fault_seed", [0, 1, 2])
    def test_recovered_result_matches_fault_free(self, fault_seed):
        A, x = _matvec_inputs()
        make = lambda: matvec_workload(A, x)
        baseline, t0 = _baseline(make)
        plan = FaultPlan.random(
            N_DIMS, seed=fault_seed, horizon=0.6 * t0,
            node_kills=1, link_kills=1, drops=2,
        )
        report, _ = _resilient(make, plan)
        assert report.recovered, report.error
        np.testing.assert_array_equal(np.asarray(report.result), baseline)

    def test_link_kill_only_needs_no_recovery(self):
        """Dead links detour; the workload completes without degrading."""
        A, x = _matvec_inputs()
        make = lambda: matvec_workload(A, x)
        baseline, t0 = _baseline(make)
        # dim 2 is a column dim of the 4x4 grid embedding: the reduce
        # inside every matvec rep keeps crossing it after the kill
        plan = FaultPlan([LinkKill(0.3 * t0, dim=2, pid=0)])
        report, s = _resilient(make, plan)
        assert report.recovered
        assert report.recoveries == 0
        assert s.machine.p == 2 ** N_DIMS  # still the full machine
        assert report.stats.detour_rounds > 0
        assert s.time > t0  # detours are not free
        np.testing.assert_array_equal(np.asarray(report.result), baseline)


class TestDegradeMechanics:
    def test_clock_is_shared_across_degrade(self):
        """The subcube machine keeps charging the parent's counters."""
        s = Session(3, "unit")
        s.matrix(np.arange(64, dtype=float).reshape(8, 8)).reduce(
            axis=1, op="sum"
        )
        t_before = s.time
        assert t_before > 0
        s.machine.kill_node(5)
        s.degrade()
        assert s.machine.p == 4
        assert s.time >= t_before
        s.matrix(np.zeros((8, 8))).reduce(axis=1, op="sum")
        assert s.time > t_before  # subcube still charges the shared clock

    def test_double_fault_double_recovery(self):
        """Two staged node kills force two successive degrades."""
        A, x = _matvec_inputs()
        make = lambda: matvec_workload(A, x, reps=6)
        baseline, t0 = _baseline(make)
        # pid 7 is odd, so the first degrade keeps the even-pid subcube;
        # pid 2 survives that translation and triggers a second degrade
        plan = FaultPlan([
            NodeKill(0.2 * t0, pid=7),
            NodeKill(0.5 * t0, pid=2),
        ])
        report, s = _resilient(make, plan)
        assert report.recovered, report.error
        assert report.recoveries == 2
        assert s.machine.p <= 2 ** (N_DIMS - 2)
        np.testing.assert_array_equal(np.asarray(report.result), baseline)
