"""Tests for application 1: vector-matrix multiply (S12)."""

import numpy as np
import pytest

from repro import Session
from repro.algorithms import matvec, serial
from repro.core import DistributedVector


@pytest.fixture
def s():
    return Session(4, "unit")


class TestCorrectness:
    @pytest.mark.parametrize("R,C", [(8, 8), (13, 5), (1, 16), (20, 3)])
    def test_matvec_matches_numpy(self, s, rng, R, C):
        A_h = rng.standard_normal((R, C))
        x_h = rng.standard_normal(C)
        A = s.matrix(A_h)
        x = s.row_vector(x_h, like=A)
        res = matvec.matvec(A, x)
        assert np.allclose(res.y.to_numpy(), A_h @ x_h)

    @pytest.mark.parametrize("R,C", [(8, 8), (5, 13)])
    def test_vecmat_matches_numpy(self, s, rng, R, C):
        A_h = rng.standard_normal((R, C))
        x_h = rng.standard_normal(R)
        A = s.matrix(A_h)
        x = s.col_vector(x_h, like=A)
        res = matvec.vecmat(x, A)
        assert np.allclose(res.y.to_numpy(), x_h @ A_h)

    def test_vector_order_input_works(self, s, rng):
        A_h = rng.standard_normal((10, 7))
        x_h = rng.standard_normal(7)
        res = matvec.matvec(s.matrix(A_h), s.vector(x_h))
        assert np.allclose(res.y.to_numpy(), A_h @ x_h)

    def test_result_embedding_chains(self, s, rng):
        """y = A @ x is column-aligned; x2 = y @ A needs no remap."""
        A_h = rng.standard_normal((10, 10))
        A = s.matrix(A_h)
        x = s.row_vector(rng.standard_normal(10), like=A)
        y = A.matvec(x)
        z = A.vecmat(y)  # consumes the col-aligned y directly
        assert np.allclose(z.to_numpy(), (A_h @ x.to_numpy()) @ A_h)


class TestCost:
    def test_cost_snapshot_isolated(self, s, rng):
        A = s.matrix(rng.standard_normal((8, 8)))
        x = s.row_vector(rng.standard_normal(8), like=A)
        res = matvec.matvec(A, x)
        assert res.cost.time > 0
        assert res.cost.flops > 0

    def test_aligned_matvec_communicates_only_in_reduce(self, s, rng):
        A = s.matrix(rng.standard_normal((16, 16)))
        x = s.row_vector(rng.standard_normal(16), like=A)
        r0 = s.machine.counters.comm_rounds
        matvec.matvec(A, x)
        rounds = s.machine.counters.comm_rounds - r0
        assert rounds == len(A.embedding.col_dims)

    def test_phase_recorded(self, s, rng):
        A = s.matrix(rng.standard_normal((8, 8)))
        x = s.row_vector(rng.standard_normal(8), like=A)
        matvec.matvec(A, x)
        assert "matvec" in s.machine.counters.phase_times


class TestSerialReference:
    def test_serial_matvec(self, rng):
        A = rng.standard_normal((6, 4))
        x = rng.standard_normal(4)
        res = serial.matvec(A, x)
        assert np.allclose(res.value, A @ x)
        assert res.ops == 2 * 6 * 4

    def test_serial_vecmat(self, rng):
        A = rng.standard_normal((6, 4))
        x = rng.standard_normal(6)
        res = serial.vecmat(x, A)
        assert np.allclose(res.value, x @ A)
        assert res.ops == 48

    def test_serial_shape_checks(self):
        with pytest.raises(ValueError):
            serial.matvec(np.zeros((3, 3)), np.zeros(4))
        with pytest.raises(ValueError):
            serial.vecmat(np.zeros(4), np.zeros((3, 3)))
