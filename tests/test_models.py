"""Tests for the analytic cost models (S15): simulator == closed form.

The reproduction's analogue of the paper's "timing model verified by
experiment": every primitive's simulated charge must equal the closed-form
prediction exactly, across machine sizes, shapes, layouts and cost models.
"""

import numpy as np
import pytest

from repro.analysis import PrimitiveCosts
from repro.core import primitives as P
from repro.embeddings import MatrixEmbedding, RowAlignedEmbedding
from repro.machine import CostModel, Hypercube

CASES = [
    (4, 16, 16, "block"),
    (4, 9, 13, "block"),
    (4, 9, 13, "cyclic"),
    (6, 64, 64, "block"),
    (6, 100, 3, "block"),
    (0, 5, 7, "block"),
    (3, 33, 2, "cyclic"),
]
MODELS = [CostModel.unit(), CostModel.cm2(), CostModel.latency_bound()]


def setup_case(n, R, C, layout, model):
    m = Hypercube(n, model)
    emb = MatrixEmbedding.default(m, R, C, layout=layout)
    A = np.random.default_rng(1).standard_normal((R, C))
    return m, emb, emb.scatter(A), PrimitiveCosts.for_embedding(emb)


def elapsed(m, fn):
    t0 = m.counters.time
    fn()
    return m.counters.time - t0


@pytest.mark.parametrize("n,R,C,layout", CASES)
@pytest.mark.parametrize("model", MODELS, ids=["unit", "cm2", "latency"])
class TestExactAgreement:
    def test_reduce(self, n, R, C, layout, model):
        m, emb, M, pc = setup_case(n, R, C, layout, model)
        for axis in (0, 1):
            got = elapsed(m, lambda: P.reduce(M, emb, axis, "sum"))
            assert got == pytest.approx(pc.reduce(axis), abs=1e-9)

    def test_reduce_loc(self, n, R, C, layout, model):
        m, emb, M, pc = setup_case(n, R, C, layout, model)
        for axis in (0, 1):
            got = elapsed(m, lambda: P.reduce_loc(M, emb, axis, "max"))
            assert got == pytest.approx(pc.reduce_loc(axis), abs=1e-9)

    def test_reduce_loc_with_valid(self, n, R, C, layout, model):
        from repro.machine import PVar
        m, emb, M, pc = setup_case(n, R, C, layout, model)
        valid = PVar(m, M.data > 0)
        m.counters.reset()
        got = elapsed(m, lambda: P.reduce_loc(M, emb, 1, "max", valid=valid))
        assert got == pytest.approx(pc.reduce_loc(1, with_valid=True), abs=1e-9)

    def test_extract(self, n, R, C, layout, model):
        m, emb, M, pc = setup_case(n, R, C, layout, model)
        for axis, replicate in ((0, True), (1, True), (0, False), (1, False)):
            got = elapsed(
                m, lambda: P.extract(M, emb, axis, 0, replicate=replicate)
            )
            assert got == pytest.approx(pc.extract(axis, replicate), abs=1e-9)

    def test_distribute(self, n, R, C, layout, model):
        m, emb, M, pc = setup_case(n, R, C, layout, model)
        for axis in (0, 1):
            v, ve = P.extract(M, emb, axis, 0)
            got = elapsed(m, lambda: P.distribute(v, ve, emb, axis))
            assert got == pytest.approx(pc.distribute(axis), abs=1e-9)
            vr, vre = P.extract(M, emb, axis, 0, replicate=False)
            got = elapsed(m, lambda: P.distribute(vr, vre, emb, axis))
            assert got == pytest.approx(
                pc.distribute(axis, resident=True), abs=1e-9
            )

    def test_insert(self, n, R, C, layout, model):
        m, emb, M, pc = setup_case(n, R, C, layout, model)
        for axis in (0, 1):
            v, ve = P.extract(M, emb, axis, 0)
            got = elapsed(m, lambda: P.insert(M, emb, axis, 0, v, ve))
            assert got == pytest.approx(pc.insert_aligned(axis), abs=1e-9)

    def test_rank1(self, n, R, C, layout, model):
        m, emb, M, pc = setup_case(n, R, C, layout, model)
        col, cole = P.extract(M, emb, 1, 0)
        row, rowe = P.extract(M, emb, 0, 0)
        got = elapsed(m, lambda: P.rank1_update(M, emb, col, cole, row, rowe))
        assert got == pytest.approx(pc.rank1_update(), abs=1e-9)

    def test_matvec_aligned(self, n, R, C, layout, model):
        m, emb, M, pc = setup_case(n, R, C, layout, model)
        from repro.machine import PVar
        ve = RowAlignedEmbedding(emb, None)
        v = ve.scatter(np.ones(C))

        def run():
            X = P.distribute(v, ve, emb, axis=0)
            prod = PVar(m, M.data * X.data)
            m.charge_flops(M.local_size)
            P.reduce(prod, emb, 1, "sum")

        got = elapsed(m, run)
        assert got == pytest.approx(pc.matvec(), abs=1e-9)


@pytest.mark.parametrize("n,R,C,layout", CASES)
class TestNaiveModels:
    def test_naive_reduce(self, n, R, C, layout):
        from repro.algorithms.naive import NaiveMatrix
        m = Hypercube(n, CostModel.cm2())
        emb = MatrixEmbedding.default(m, R, C, layout=layout)
        A = np.random.default_rng(2).standard_normal((R, C))
        NA = NaiveMatrix(emb.scatter(A), emb)
        pc = PrimitiveCosts.for_embedding(emb)
        for axis in (0, 1):
            t0 = m.counters.time
            NA.reduce(axis, "sum")
            got = m.counters.time - t0
            assert got == pytest.approx(pc.naive_reduce(axis), abs=1e-9)

    def test_naive_extract(self, n, R, C, layout):
        from repro.algorithms.naive import NaiveMatrix
        m = Hypercube(n, CostModel.cm2())
        emb = MatrixEmbedding.default(m, R, C, layout=layout)
        A = np.random.default_rng(2).standard_normal((R, C))
        NA = NaiveMatrix(emb.scatter(A), emb)
        pc = PrimitiveCosts.for_embedding(emb)
        for axis in (0, 1):
            t0 = m.counters.time
            NA.extract(axis, 0)
            got = m.counters.time - t0
            assert got == pytest.approx(pc.naive_extract(axis), abs=1e-9)


class TestModelStructure:
    """The asymptotic shape the paper's argument relies on."""

    def test_local_term_scales_with_m_over_p(self):
        pcs = []
        for scale in (1, 2, 4):
            m = Hypercube(4, CostModel.unit())
            emb = MatrixEmbedding.default(m, 16 * scale, 16 * scale)
            pcs.append(PrimitiveCosts.for_embedding(emb).rank1_update())
        assert pcs[1] / pcs[0] == pytest.approx(4.0)
        assert pcs[2] / pcs[1] == pytest.approx(4.0)

    def test_comm_term_scales_with_lg_p(self):
        """Reduce's round count grows like lg p at fixed local block."""
        rounds = []
        for n in (2, 4, 6):
            m = Hypercube(n, CostModel(tau=1e9, t_c=0, t_a=0, t_m=0))
            # keep local block ~fixed: m elements = 16 * p
            side = int(np.sqrt(16 * m.p))
            emb = MatrixEmbedding.default(m, side, side)
            pc = PrimitiveCosts.for_embedding(emb)
            rounds.append(pc.reduce(1) / 1e9)
        assert rounds == [1.0, 2.0, 3.0]

    def test_naive_reduce_rounds_scale_with_p(self):
        costs = []
        for n in (2, 4, 6):
            m = Hypercube(n, CostModel(tau=1e9, t_c=0, t_a=0, t_m=0))
            side = int(np.sqrt(16 * m.p))
            emb = MatrixEmbedding.default(m, side, side)
            pc = PrimitiveCosts.for_embedding(emb)
            costs.append(round(pc.naive_reduce(1) / 1e9))
        # 2*(Pc-1) with Pc = 2, 4, 8
        assert costs == [2, 6, 14]


@pytest.mark.parametrize("n,R,C,layout", [c for c in CASES if c[3] == "block"])
@pytest.mark.parametrize("model", MODELS, ids=["unit", "cm2", "latency"])
class TestExtensionModels:
    def test_scan(self, n, R, C, layout, model):
        m, emb, M, pc = setup_case(n, R, C, layout, model)
        for axis in (0, 1):
            got = elapsed(m, lambda: P.scan(M, emb, axis, "sum"))
            assert got == pytest.approx(pc.scan(axis), abs=1e-9)


@pytest.mark.parametrize("model", MODELS, ids=["unit", "cm2", "latency"])
class TestCollectiveModels:
    def test_alltoall(self, model):
        from repro import comm
        m = Hypercube(4, model)
        pc = PrimitiveCosts(R=1, C=1, Pr=1, Pc=1, lr=1, lc=1, nr=0, nc=0,
                            cost=model)
        for dims, block in [((0, 1), 3), ((0, 1, 2, 3), 2), ((2,), 5)]:
            nblocks = 1 << len(dims)
            pv = m.pvar(np.zeros((16, nblocks, block)))
            t0 = m.counters.time
            comm.alltoall(m, pv, dims=dims)
            got = m.counters.time - t0
            assert got == pytest.approx(
                pc.alltoall(len(dims), block), abs=1e-9
            )

    def test_broadcast_pipelined(self, model):
        from repro import comm
        m = Hypercube(4, model)
        pc = PrimitiveCosts(R=1, C=1, Pr=1, Pc=1, lr=1, lc=1, nr=0, nc=0,
                            cost=model)
        for dims, L in [((0, 1, 2), 40), ((0, 1, 2, 3), 7)]:
            pv = m.pvar(np.zeros((16, L)))
            t0 = m.counters.time
            comm.broadcast_pipelined(m, pv, dims=dims)
            got = m.counters.time - t0
            assert got == pytest.approx(
                pc.broadcast_pipelined(len(dims), L), abs=1e-9
            )

    def test_reduce_all_pipelined(self, model):
        from repro import comm
        m = Hypercube(4, model)
        pc = PrimitiveCosts(R=1, C=1, Pr=1, Pc=1, lr=1, lc=1, nr=0, nc=0,
                            cost=model)
        for dims, L in [((0, 1, 2), 40), ((1, 3), 9)]:
            pv = m.pvar(np.zeros((16, L)))
            t0 = m.counters.time
            comm.reduce_all_pipelined(m, pv, "sum", dims=dims)
            got = m.counters.time - t0
            assert got == pytest.approx(
                pc.reduce_all_pipelined(len(dims), L), abs=1e-9
            )
