"""Unit tests for the report formatting helpers (S17)."""

import pytest

from repro.analysis import Series, format_series, format_speedup, format_table


class TestFormatTable:
    def test_basic_alignment(self):
        out = format_table(["a", "bb"], [[1, 2], [30, 40]])
        lines = out.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert lines[0].strip().startswith("a")
        # columns align right
        assert lines[2].endswith("2")
        assert lines[3].endswith("40")

    def test_caption(self):
        out = format_table(["x"], [[1]], caption="R-T1: demo")
        assert out.splitlines()[0] == "R-T1: demo"

    def test_float_formatting(self):
        out = format_table(["v"], [[1234.5678]])
        assert "1,234.57" in out

    def test_scientific_for_extremes(self):
        out = format_table(["v"], [[1.5e9], [2.5e-7]])
        assert "e+09" in out and "e-07" in out

    def test_nan_renders_dash(self):
        out = format_table(["v"], [[float("nan")]])
        assert out.splitlines()[-1].strip() == "-"

    def test_arity_checked(self):
        with pytest.raises(ValueError, match="arity"):
            format_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        out = format_table(["a"], [])
        assert "a" in out


class TestSeries:
    def test_add_points(self):
        s = Series("t")
        s.add(1, 2.0)
        s.add(2, 4.0)
        assert s.xs == [1.0, 2.0]
        assert s.ys == [2.0, 4.0]

    def test_format_series_merges_on_x(self):
        a = Series("prim")
        b = Series("naive")
        for x in (1, 2):
            a.add(x, x * 10)
            b.add(x, x * 100)
        out = format_series([a, b], x_label="n")
        assert "prim" in out and "naive" in out
        assert "100" in out

    def test_format_series_rejects_mismatched_grids(self):
        a = Series("a"); a.add(1, 1)
        b = Series("b"); b.add(2, 2)
        with pytest.raises(ValueError, match="x grid"):
            format_series([a, b], x_label="n")

    def test_format_series_needs_one(self):
        with pytest.raises(ValueError):
            format_series([], x_label="n")


class TestSpeedup:
    def test_ratio_column(self):
        out = format_speedup([10], [100.0], [10.0], x_label="n")
        assert "10.00" in out  # the speedup 100/10
        assert "speedup" in out

    def test_length_check(self):
        with pytest.raises(ValueError):
            format_speedup([1, 2], [1.0], [1.0], x_label="n")

    def test_zero_improved_gives_nan(self):
        out = format_speedup([1], [5.0], [0.0], x_label="n")
        assert "-" in out.splitlines()[-1]
