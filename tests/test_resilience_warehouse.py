"""The ``resilience`` warehouse run table (strategy x workload).

Each spec replays one seeded fault plan under one checkpoint strategy and
records the save/restore/recovery tick split; validation compares the
recovered result bit-for-bit against the fault-free baseline.  The
n_dims=10 rows of the built-in table back the CI recovery gate (diskless
and incremental must save >= 3x cheaper than host gather); here a smaller
cube pins the same ordering cheaply.
"""

import json
import os

import numpy as np
import pytest

from repro.metrics import warehouse as wh

SMALL = {"n_dims": 4, "size": 8, "workload": "gaussian", "every": 2}


def _small_spec(strategy, **extra):
    params = dict(SMALL, strategy=strategy, **extra)
    return wh.RunSpec("resilience", params, reps=1)


class TestTable:
    def test_builtin_table_loads(self):
        specs = wh.load_table("resilience")
        assert len(specs) >= 6
        assert all(s.workload == "resilience" for s in specs)
        strategies = {s.params["strategy"] for s in specs}
        assert strategies == {"host", "diskless", "incremental"}
        # The CI gate needs all three strategies at the recorded scale.
        big = [s for s in specs if s.params["n_dims"] == 10]
        assert {s.params["strategy"] for s in big} == {
            "host", "diskless", "incremental"
        }

    def test_committed_baselines_cover_the_table(self):
        path = os.path.join("benchmarks", "warehouse",
                            "baselines_resilience.json")
        with open(path) as fh:
            doc = json.load(fh)
        entries = doc["entries"]
        assert len(entries) == len(wh.load_table("resilience"))
        for key in entries:
            assert json.loads(key)["workload"] == "resilience"


class TestRunSpec:
    def test_record_validates_and_round_trips(self, tmp_path):
        record = wh.run_spec(_small_spec("diskless"), validate=True)
        assert record["kind"] == "run"
        assert record["validated"] is True, record["validate_detail"]
        wh.validate_record(record)
        for key in (
            "resilience.saves", "resilience.restores",
            "resilience.save_ticks", "resilience.restore_ticks",
            "resilience.recovery_ticks", "resilience.recoveries",
            "resilience.promotions", "resilience.expansions",
            "resilience.final_p", "resilience.fault_free_ticks",
        ):
            assert key in record["metrics"], key
        assert record["metrics"]["resilience.recoveries"] >= 1
        path = str(tmp_path / "runs.jsonl")
        assert wh.append_records([record], path) == 1
        [loaded] = wh.load_records(path)
        assert loaded["params"]["strategy"] == "diskless"

    def test_strategy_cost_ordering(self):
        """Same problem, same faults — only the checkpoint cost model
        varies, and the in-cube strategies save much cheaper."""
        ticks = {}
        results = {}
        for strategy in ("host", "diskless", "incremental"):
            record = wh.run_spec(
                _small_spec(strategy, n_dims=5, size=12), validate=True
            )
            assert record["validated"] is True, record["validate_detail"]
            ticks[strategy] = record["metrics"]["resilience.save_ticks"]
            results[strategy] = record["metrics"]["resilience.final_p"]
        assert len(set(results.values())) == 1  # identical fault trajectory
        # The gap grows with the cube; the CI gate pins >= 3x at n=10.
        assert ticks["host"] / ticks["diskless"] >= 2.5
        assert ticks["host"] / ticks["incremental"] >= 2.5

    def test_pin_and_compare_gate(self, tmp_path):
        record = wh.run_spec(_small_spec("host"), validate=True)
        base_path = str(tmp_path / "baselines.json")
        baselines = wh.pin_baselines([record], base_path)
        assert len(baselines["entries"]) == 1
        outcome = wh.compare([record], json.load(open(base_path)))
        assert outcome["passed"], outcome
        assert outcome["compared"] == 1
        assert outcome["regressions"] == []
