"""Unit tests for the three vector embeddings (S6)."""

import numpy as np
import pytest

from repro.embeddings import (
    ColAlignedEmbedding,
    MatrixEmbedding,
    RowAlignedEmbedding,
    VectorOrderEmbedding,
    gray,
)
from repro.machine import CostModel, Hypercube


@pytest.fixture
def m():
    return Hypercube(4, CostModel.unit())


@pytest.fixture
def matrix_emb(m):
    return MatrixEmbedding(m, 10, 12, row_dims=(0, 1), col_dims=(2, 3))


class TestVectorOrder:
    def test_round_trip(self, m, rng):
        for L in (1, 3, 16, 40):
            for layout in ("block", "cyclic"):
                emb = VectorOrderEmbedding(m, L, layout)
                v = rng.standard_normal(L)
                assert np.allclose(emb.gather(emb.scatter(v)), v)

    def test_local_capacity(self, m):
        assert VectorOrderEmbedding(m, 40).local_shape == (3,)
        assert VectorOrderEmbedding(m, 16).local_shape == (1,)

    def test_not_replicated(self, m):
        assert not VectorOrderEmbedding(m, 8).replicated

    def test_gray_order_adjacency(self, m):
        """Consecutive blocks live on cube-neighbouring processors."""
        emb = VectorOrderEmbedding(m, 16)  # one element per rank
        owners = [int(np.asarray(emb.owner_slot(g)[0])) for g in range(16)]
        for a, b in zip(owners, owners[1:]):
            assert bin(a ^ b).count("1") == 1

    def test_owner_is_gray_of_rank(self, m):
        emb = VectorOrderEmbedding(m, 16)
        pid, slot = emb.owner_slot(5)
        assert int(np.asarray(pid)) == gray(5)
        assert int(np.asarray(slot)) == 0

    def test_compatibility(self, m):
        a = VectorOrderEmbedding(m, 8, "block")
        assert a.compatible(VectorOrderEmbedding(m, 8, "block"))
        assert not a.compatible(VectorOrderEmbedding(m, 8, "cyclic"))
        assert not a.compatible(VectorOrderEmbedding(m, 9, "block"))

    def test_invalid_length(self, m):
        with pytest.raises(ValueError):
            VectorOrderEmbedding(m, 0)

    def test_valid_mask_counts(self, m):
        emb = VectorOrderEmbedding(m, 10)
        assert emb.valid_mask().sum() == 10


class TestAlignedEmbeddings:
    def test_row_aligned_length_is_C(self, matrix_emb):
        assert RowAlignedEmbedding(matrix_emb).L == 12

    def test_col_aligned_length_is_R(self, matrix_emb):
        assert ColAlignedEmbedding(matrix_emb).L == 10

    def test_replicated_flag(self, matrix_emb):
        assert RowAlignedEmbedding(matrix_emb, None).replicated
        assert not RowAlignedEmbedding(matrix_emb, 1).replicated

    def test_resident_range_checked(self, matrix_emb):
        with pytest.raises(ValueError, match="resident"):
            RowAlignedEmbedding(matrix_emb, 4)  # Pr == 4 grid rows
        with pytest.raises(ValueError):
            ColAlignedEmbedding(matrix_emb, 7)

    @pytest.mark.parametrize("cls,L", [(RowAlignedEmbedding, 12),
                                       (ColAlignedEmbedding, 10)])
    @pytest.mark.parametrize("resident", [None, 0, 2])
    def test_round_trip(self, matrix_emb, rng, cls, L, resident):
        emb = cls(matrix_emb, resident)
        v = rng.standard_normal(L)
        assert np.allclose(emb.gather(emb.scatter(v)), v)

    def test_replicated_scatter_fills_every_band(self, matrix_emb, rng):
        emb = RowAlignedEmbedding(matrix_emb, None)
        v = rng.standard_normal(12)
        pv = emb.scatter(v)
        idx = emb.global_indices()
        mask = emb.valid_mask()
        for pid in range(matrix_emb.machine.p):
            for s in range(emb.local_shape[0]):
                if mask[pid, s]:
                    assert pv.data[pid, s] == v[idx[pid, s]]

    def test_resident_scatter_only_fills_that_band(self, matrix_emb, rng):
        emb = ColAlignedEmbedding(matrix_emb, 1)
        v = rng.standard_normal(10)
        pv = emb.scatter(v)
        _, grid_c = matrix_emb.grid_coords()
        outside = grid_c != 1
        assert np.all(pv.data[outside] == 0.0)

    def test_alignment_matches_matrix_slices(self, matrix_emb, rng):
        """The defining property: a row-aligned vector's element j lives on
        the same grid column, same local slot, as matrix column j."""
        emb = RowAlignedEmbedding(matrix_emb, None)
        for j in range(12):
            _, slot = emb.owner_slot(j)
            assert int(np.asarray(slot)) == int(matrix_emb.col_layout.slot(j))

    def test_along_across_dims(self, matrix_emb):
        row = RowAlignedEmbedding(matrix_emb)
        assert row.along_dims == matrix_emb.col_dims
        assert row.across_dims == matrix_emb.row_dims
        col = ColAlignedEmbedding(matrix_emb)
        assert col.along_dims == matrix_emb.row_dims
        assert col.across_dims == matrix_emb.col_dims

    def test_compatibility(self, matrix_emb, m):
        a = RowAlignedEmbedding(matrix_emb, None)
        assert a.compatible(RowAlignedEmbedding(matrix_emb, None))
        assert not a.compatible(RowAlignedEmbedding(matrix_emb, 0))
        assert not a.compatible(ColAlignedEmbedding(matrix_emb, None))
        other_grid = MatrixEmbedding(m, 10, 12, row_dims=(2, 3), col_dims=(0, 1))
        assert not a.compatible(RowAlignedEmbedding(other_grid, None))

    def test_with_resident(self, matrix_emb):
        a = RowAlignedEmbedding(matrix_emb, 2)
        b = a.with_resident(None)
        assert b.replicated and b.L == a.L
        c = b.with_resident(1)
        assert c.resident == 1

    def test_repr_shows_state(self, matrix_emb):
        assert "replicated" in repr(RowAlignedEmbedding(matrix_emb))
        assert "resident@2" in repr(RowAlignedEmbedding(matrix_emb, 2))

    def test_gather_shape_check(self, matrix_emb, m):
        emb = RowAlignedEmbedding(matrix_emb)
        with pytest.raises(ValueError):
            emb.gather(m.zeros((99,)))

    def test_scatter_shape_check(self, matrix_emb):
        emb = RowAlignedEmbedding(matrix_emb)
        with pytest.raises(ValueError, match="host vector"):
            emb.scatter(np.zeros(5))
