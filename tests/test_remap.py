"""Unit tests for embedding changes (S8): remap, redistribute, transpose."""

import itertools

import numpy as np
import pytest

from repro.embeddings import (
    ColAlignedEmbedding,
    MatrixEmbedding,
    RowAlignedEmbedding,
    VectorOrderEmbedding,
    redistribute_matrix,
    remap_vector,
    transpose,
)
from repro.machine import CostModel, Hypercube


@pytest.fixture
def m():
    return Hypercube(4, CostModel.unit())


@pytest.fixture
def matrix_emb(m):
    return MatrixEmbedding(m, 9, 14, row_dims=(0, 1), col_dims=(2, 3))


def all_vector_embeddings(m, matrix_emb, L):
    """Every embedding of a length-L vector this library supports."""
    out = [
        VectorOrderEmbedding(m, L, "block"),
        VectorOrderEmbedding(m, L, "cyclic"),
        VectorOrderEmbedding(m, L, "block_cyclic:2"),
        VectorOrderEmbedding(m, L, "block", coding="binary"),
    ]
    if L == matrix_emb.C:
        out += [RowAlignedEmbedding(matrix_emb, r) for r in (None, 0, 1)]
    if L == matrix_emb.R:
        out += [ColAlignedEmbedding(matrix_emb, r) for r in (None, 0, 3)]
    return out


class TestRemapVector:
    @pytest.mark.parametrize("L", [14, 9])
    def test_all_pairs_preserve_values(self, m, matrix_emb, rng, L):
        v = rng.standard_normal(L)
        embs = all_vector_embeddings(m, matrix_emb, L)
        for src, dst in itertools.product(embs, embs):
            pv = src.scatter(v)
            out = remap_vector(pv, src, dst)
            assert np.allclose(dst.gather(out), v), (src, dst)

    def test_replication_fills_all_bands(self, m, matrix_emb, rng):
        v = rng.standard_normal(14)
        src = VectorOrderEmbedding(m, 14)
        dst = RowAlignedEmbedding(matrix_emb, None)
        out = remap_vector(src.scatter(v), src, dst)
        mask = dst.valid_mask()
        idx = dst.global_indices()
        assert np.all(out.data[mask] == v[idx[mask]])

    def test_noop_when_compatible(self, m, rng):
        emb = VectorOrderEmbedding(m, 10)
        pv = emb.scatter(rng.standard_normal(10))
        t0 = m.counters.time
        out = remap_vector(pv, emb, VectorOrderEmbedding(m, 10))
        assert out is pv
        assert m.counters.time == t0

    def test_remap_charges_time(self, m, matrix_emb, rng):
        src = VectorOrderEmbedding(m, 14)
        dst = RowAlignedEmbedding(matrix_emb, 0)
        pv = src.scatter(rng.standard_normal(14))
        t0 = m.counters.time
        remap_vector(pv, src, dst)
        assert m.counters.time > t0

    def test_length_mismatch(self, m, matrix_emb):
        src = VectorOrderEmbedding(m, 14)
        dst = VectorOrderEmbedding(m, 15)
        with pytest.raises(ValueError, match="length"):
            remap_vector(src.scatter(np.zeros(14)), src, dst)

    def test_cross_machine_rejected(self, m, rng):
        other = Hypercube(4, CostModel.unit())
        src = VectorOrderEmbedding(m, 8)
        dst = VectorOrderEmbedding(other, 8)
        with pytest.raises(ValueError, match="different machines"):
            remap_vector(src.scatter(np.zeros(8)), src, dst)

    def test_residence_change_moves_only_between_two_bands(self, m, matrix_emb, rng):
        """Moving between bands transfers exactly one copy of the vector
        (each element makes one hop per differing Gray bit)."""
        v = rng.standard_normal(14)
        a = RowAlignedEmbedding(matrix_emb, 0)
        b = RowAlignedEmbedding(matrix_emb, 1)  # Gray-adjacent bands
        pv = a.scatter(v)
        e0 = m.counters.elements_transferred
        remap_vector(pv, a, b)
        assert m.counters.elements_transferred - e0 == 14


class TestRedistributeMatrix:
    def test_layout_change(self, m, rng):
        A = rng.standard_normal((9, 14))
        src = MatrixEmbedding.default(m, 9, 14, layout="block")
        dst = MatrixEmbedding.default(m, 9, 14, layout="cyclic")
        out = redistribute_matrix(src.scatter(A), src, dst)
        assert np.allclose(dst.gather(out), A)

    def test_grid_reshape(self, m, rng):
        A = rng.standard_normal((9, 14))
        src = MatrixEmbedding(m, 9, 14, row_dims=(0, 1), col_dims=(2, 3))
        dst = MatrixEmbedding(m, 9, 14, row_dims=(0, 1, 2), col_dims=(3,))
        out = redistribute_matrix(src.scatter(A), src, dst)
        assert np.allclose(dst.gather(out), A)

    def test_noop_same_embedding(self, m, rng):
        A = rng.standard_normal((4, 4))
        emb = MatrixEmbedding.default(m, 4, 4)
        pv = emb.scatter(A)
        t0 = m.counters.time
        assert redistribute_matrix(pv, emb, emb) is pv
        assert m.counters.time == t0

    def test_shape_mismatch(self, m):
        a = MatrixEmbedding.default(m, 4, 4)
        b = MatrixEmbedding.default(m, 4, 5)
        with pytest.raises(ValueError, match="shape mismatch"):
            redistribute_matrix(a.scatter(np.zeros((4, 4))), a, b)


class TestTranspose:
    @pytest.mark.parametrize("R,C", [(8, 8), (9, 14), (1, 16), (13, 2)])
    @pytest.mark.parametrize("layout", ["block", "cyclic"])
    def test_values(self, m, rng, R, C, layout):
        A = rng.standard_normal((R, C))
        emb = MatrixEmbedding.default(m, R, C, layout=layout)
        pv, dst = transpose(emb.scatter(A), emb)
        assert (dst.R, dst.C) == (C, R)
        assert np.allclose(dst.gather(pv), A.T)

    def test_double_transpose_round_trip(self, m, rng):
        A = rng.standard_normal((6, 10))
        emb = MatrixEmbedding.default(m, 6, 10)
        pv1, e1 = transpose(emb.scatter(A), emb)
        pv2, e2 = transpose(pv1, e1)
        assert e2 == emb
        assert np.allclose(e2.gather(pv2), A)

    def test_square_grid_transpose_congestion_is_low(self):
        """On a square grid the transpose is a stable dimension permutation:
        the router must not see many-to-one congestion."""
        m = Hypercube(4, CostModel(tau=0, t_c=1, t_a=0, t_m=0))
        emb = MatrixEmbedding(m, 16, 16, row_dims=(0, 1), col_dims=(2, 3))
        A = np.arange(256.0).reshape(16, 16)
        t0 = m.counters.time
        transpose(emb.scatter(A), emb)
        moved = m.counters.time - t0
        # each off-diagonal block (local 4x4 = 16 elements) crosses <= 4 dims;
        # congestion-free would be ~16*4 per processor pair worst case
        assert moved <= 16 * 4 * 2

    def test_transpose_charges(self, m, rng):
        emb = MatrixEmbedding.default(m, 8, 8)
        pv = emb.scatter(rng.standard_normal((8, 8)))
        t0 = m.counters.time
        transpose(pv, emb)
        assert m.counters.time > t0
