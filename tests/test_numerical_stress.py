"""Classic numerical stress cases from the optimization/linear-algebra
folklore, run on the distributed implementations."""

import numpy as np
import pytest

from repro import Session
from repro.algorithms import gaussian, qr, simplex, triangular


@pytest.fixture
def s():
    return Session(4, "unit")


class TestBealeCycling:
    """Beale's example makes naive Dantzig simplex cycle under certain
    tie-breaks; Bland's rule must terminate at the optimum regardless."""

    A = np.array([
        [0.25, -8.0, -1.0, 9.0],
        [0.5, -12.0, -0.5, 3.0],
        [0.0, 0.0, 1.0, 0.0],
    ])
    b = np.array([0.0, 0.0, 1.0])
    c = np.array([0.75, -150.0, 0.02, -6.0])

    def test_bland_terminates_at_optimum(self, s):
        res = simplex.solve(s.machine, self.A, self.b, self.c, rule="bland")
        assert res.status == "optimal"
        assert np.isclose(res.objective, 0.77, atol=1e-9)

    def test_dantzig_with_smallest_index_ties_terminates(self, s):
        """Our deterministic smallest-index tie-breaks happen to escape the
        classic cycle too; either way the solver must not loop forever."""
        res = simplex.solve(
            s.machine, self.A, self.b, self.c, rule="dantzig", max_iters=100
        )
        assert res.status in ("optimal", "iteration_limit")
        if res.status == "optimal":
            assert np.isclose(res.objective, 0.77, atol=1e-9)

    def test_scipy_agrees(self, s):
        scipy = pytest.importorskip("scipy")
        from scipy.optimize import linprog
        ref = linprog(-self.c, A_ub=self.A, b_ub=self.b, bounds=(0, None),
                      method="highs")
        res = simplex.solve(s.machine, self.A, self.b, self.c, rule="bland")
        assert np.isclose(res.objective, -ref.fun, atol=1e-9)


class TestHilbert:
    """The Hilbert matrix: notoriously ill-conditioned; solvers must keep
    the *residual* small even when the error cannot be."""

    @staticmethod
    def hilbert(n):
        i, j = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
        return 1.0 / (i + j + 1.0)

    @pytest.mark.parametrize("n", [4, 8])
    def test_gaussian_residual(self, s, n):
        H = self.hilbert(n)
        b = H @ np.ones(n)
        res = gaussian.solve(s.matrix(H), b)
        assert np.linalg.norm(H @ res.x - b) < 1e-8

    @pytest.mark.parametrize("n", [4, 8])
    def test_qr_residual(self, s, n):
        H = self.hilbert(n)
        b = H @ np.ones(n)
        x = qr.qr_solve(s.matrix(H), b)
        assert np.linalg.norm(H @ x - b) < 1e-8

    def test_matches_numpy_to_residual_level(self, s):
        H = self.hilbert(8)
        b = H @ np.ones(8)
        ours = gaussian.solve(s.matrix(H), b).x
        theirs = np.linalg.solve(H, b)
        assert np.linalg.norm(H @ ours - b) <= 10 * (
            np.linalg.norm(H @ theirs - b) + 1e-12
        )


class TestGrowthAndScaling:
    def test_wilkinson_growth_matrix(self, s):
        """The classic worst case for partial-pivoting element growth; the
        solve must still return the exact answer at this size."""
        n = 12
        W = -np.tril(np.ones((n, n)), -1) + np.eye(n)
        W[:, -1] = 1.0
        x_true = np.ones(n)
        b = W @ x_true
        res = gaussian.solve(s.matrix(W), b)
        assert np.allclose(res.x, x_true, atol=1e-8)

    def test_badly_row_scaled_system(self, s, rng):
        A = rng.standard_normal((10, 10)) + 3 * np.eye(10)
        scales = 10.0 ** rng.integers(-8, 8, 10)
        A_scaled = A * scales[:, None]
        x_true = rng.standard_normal(10)
        b = A_scaled @ x_true
        res = gaussian.solve(s.matrix(A_scaled), b)
        assert np.allclose(res.x, x_true, atol=1e-5)

    def test_lu_on_nearly_singular(self, s):
        eps = 1e-10
        A = np.array([[1.0, 1.0], [1.0, 1.0 + eps]])
        fact = triangular.lu_factor(s.matrix(A))
        b = A @ np.array([1.0, 2.0])
        x = triangular.lu_solve(fact, b)
        assert np.linalg.norm(A @ x - b) < 1e-8
