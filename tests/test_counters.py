"""Unit tests for cycle accounting (S1)."""

import pytest

from repro.machine import Counters, CostSnapshot


class TestCharging:
    def test_charge_time_accumulates(self):
        c = Counters()
        c.charge_time(5.0)
        c.charge_time(2.5)
        assert c.time == 7.5

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            Counters().charge_time(-1.0)

    def test_charge_flops_tracks_count_and_time(self):
        c = Counters()
        c.charge_flops(100, 10.0)
        assert c.flops == 100
        assert c.time == 10.0

    def test_charge_transfer_tracks_all_three(self):
        c = Counters()
        c.charge_transfer(64, 2, 20.0)
        assert c.elements_transferred == 64
        assert c.comm_rounds == 2
        assert c.time == 20.0

    def test_charge_local(self):
        c = Counters()
        c.charge_local(16, 4.0)
        assert c.local_moves == 16
        assert c.time == 4.0

    def test_reset_clears_everything(self):
        c = Counters()
        c.charge_flops(5, 1.0)
        c.charge_transfer(3, 1, 2.0)
        with c.phase("x"):
            c.charge_time(1.0)
        c.reset()
        assert c.time == 0 and c.flops == 0 and c.comm_rounds == 0
        assert c.phase_times == {}

    def test_reset_clears_plan_cache_stats(self):
        c = Counters()
        c.plan_hits = 3
        c.plan_misses = 7
        c.plan_evictions = 1
        c.reset()
        assert (c.plan_hits, c.plan_misses, c.plan_evictions) == (0, 0, 0)


class TestNegativeGuards:
    def test_negative_flop_count_rejected(self):
        with pytest.raises(ValueError):
            Counters().charge_flops(-1, 1.0)

    def test_negative_transfer_elements_rejected(self):
        with pytest.raises(ValueError):
            Counters().charge_transfer(-4, 1, 1.0)

    def test_negative_transfer_rounds_rejected(self):
        with pytest.raises(ValueError):
            Counters().charge_transfer(4, -1, 1.0)

    def test_negative_local_moves_rejected(self):
        with pytest.raises(ValueError):
            Counters().charge_local(-2, 1.0)

    def test_rejected_charge_leaves_counters_untouched(self):
        c = Counters()
        c.charge_flops(10, 5.0)
        with pytest.raises(ValueError):
            c.charge_flops(-1, 1.0)
        assert c.flops == 10
        assert c.time == 5.0

    def test_zero_counts_still_allowed(self):
        c = Counters()
        c.charge_flops(0, 0.0)
        c.charge_transfer(0, 0, 0.0)
        c.charge_local(0, 0.0)
        assert c.time == 0.0


class TestPhases:
    def test_phase_attribution(self):
        c = Counters()
        with c.phase("reduce"):
            c.charge_time(3.0)
        c.charge_time(1.0)
        assert c.phase_times["reduce"] == 3.0
        assert c.time == 4.0

    def test_nested_phases_charge_both(self):
        c = Counters()
        with c.phase("outer"):
            c.charge_time(1.0)
            with c.phase("inner"):
                c.charge_time(2.0)
        assert c.phase_times["outer"] == 3.0
        assert c.phase_times["inner"] == 2.0

    def test_reentrant_same_phase_not_double_counted(self):
        c = Counters()
        with c.phase("p"):
            with c.phase("p"):
                c.charge_time(2.0)
        assert c.phase_times["p"] == 2.0

    def test_phase_breakdown_sorted_descending(self):
        c = Counters()
        with c.phase("small"):
            c.charge_time(1.0)
        with c.phase("big"):
            c.charge_time(9.0)
        names = [name for name, _ in c.phase_breakdown()]
        assert names == ["big", "small"]

    def test_phase_exits_cleanly_on_exception(self):
        c = Counters()
        with pytest.raises(RuntimeError):
            with c.phase("x"):
                raise RuntimeError("boom")
        # subsequent charges must not leak into the closed phase
        c.charge_time(5.0)
        assert c.phase_times.get("x", 0.0) == 0.0

    def test_exception_unwinds_nested_stack(self):
        c = Counters()
        with pytest.raises(RuntimeError):
            with c.phase("outer"):
                c.charge_time(1.0)
                with c.phase("inner"):
                    c.charge_time(2.0)
                    raise RuntimeError("boom")
        # both frames popped: later charges attribute to neither phase
        c.charge_time(10.0)
        assert c.phase_times["outer"] == 3.0
        assert c.phase_times["inner"] == 2.0
        # and the stack is reusable
        with c.phase("after"):
            c.charge_time(4.0)
        assert c.phase_times["after"] == 4.0

    def test_reentrant_phase_under_different_parent(self):
        c = Counters()
        with c.phase("a"):
            with c.phase("b"):
                with c.phase("a"):  # re-entry of "a" deeper in the stack
                    c.charge_time(2.0)
        assert c.phase_times["a"] == 2.0
        assert c.phase_times["b"] == 2.0

    def test_phase_breakdown_stable_for_ties(self):
        c = Counters()
        with c.phase("zeta"):
            c.charge_time(1.0)
        with c.phase("alpha"):
            c.charge_time(1.0)
        # equal times: breakdown must still list every phase exactly once
        names = sorted(name for name, _ in c.phase_breakdown())
        assert names == ["alpha", "zeta"]


class TestSnapshots:
    def test_snapshot_is_immutable_copy(self):
        c = Counters()
        c.charge_flops(10, 2.0)
        snap = c.snapshot()
        c.charge_flops(10, 2.0)
        assert snap.flops == 10
        assert c.flops == 20

    def test_snapshot_difference(self):
        c = Counters()
        c.charge_transfer(10, 1, 5.0)
        before = c.snapshot()
        c.charge_transfer(20, 2, 7.0)
        delta = c.snapshot() - before
        assert delta.elements_transferred == 20
        assert delta.comm_rounds == 2
        assert delta.time == 7.0

    def test_as_dict_round_trip(self):
        snap = CostSnapshot(time=1.0, flops=2.0, elements_transferred=3.0,
                            comm_rounds=4, local_moves=5.0)
        d = snap.as_dict()
        assert d["time"] == 1.0
        assert d["comm_rounds"] == 4.0
        assert set(d) == {
            "time", "flops", "elements_transferred", "comm_rounds", "local_moves"
        }
