"""Tests for matrix-matrix multiply and slice permutation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import Session
from repro.core import DistributedMatrix
from repro.embeddings import MatrixEmbedding
from repro.machine import CostModel, Hypercube


@pytest.fixture
def s():
    return Session(4, "unit")


class TestMatmul:
    @pytest.mark.parametrize("R,K,C", [(8, 8, 8), (12, 7, 9), (1, 5, 3),
                                       (4, 16, 2)])
    def test_matches_numpy(self, s, rng, R, K, C):
        A_h = rng.standard_normal((R, K))
        B_h = rng.standard_normal((K, C))
        C_d = s.matrix(A_h) @ s.matrix(B_h)
        assert np.allclose(C_d.to_numpy(), A_h @ B_h)

    def test_operator_and_method_agree(self, s, rng):
        A = s.matrix(rng.standard_normal((6, 6)))
        B = s.matrix(rng.standard_normal((6, 6)))
        assert np.allclose((A @ B).to_numpy(), A.matmul(B).to_numpy())

    def test_identity(self, s, rng):
        A_h = rng.standard_normal((9, 9))
        A = s.matrix(A_h)
        I = s.matrix(np.eye(9))
        assert np.allclose((A @ I).to_numpy(), A_h)
        assert np.allclose((I @ A).to_numpy(), A_h)

    def test_chain_associativity(self, s, rng):
        A_h = rng.standard_normal((5, 6))
        B_h = rng.standard_normal((6, 4))
        C_h = rng.standard_normal((4, 7))
        A, B, C = s.matrix(A_h), s.matrix(B_h), s.matrix(C_h)
        left = ((A @ B) @ C).to_numpy()
        right = (A @ (B @ C)).to_numpy()
        assert np.allclose(left, right)
        assert np.allclose(left, A_h @ B_h @ C_h)

    def test_dimension_mismatch(self, s, rng):
        A = s.matrix(rng.standard_normal((4, 5)))
        B = s.matrix(rng.standard_normal((4, 5)))
        with pytest.raises(ValueError, match="matmul"):
            A @ B

    def test_mixed_grids_redistributes(self, s, rng):
        A_h = rng.standard_normal((8, 6))
        B_h = rng.standard_normal((6, 8))
        A = s.matrix(A_h)
        emb = MatrixEmbedding(
            s.machine, 6, 8, row_dims=(3,), col_dims=(0, 1, 2)
        )
        B = DistributedMatrix.from_numpy(s.machine, B_h, embedding=emb)
        assert np.allclose((A @ B).to_numpy(), A_h @ B_h)

    def test_cost_scales_with_inner_dimension(self, rng):
        """K rank-1 steps: simulated time ~ linear in K at fixed output."""
        times = []
        for K in (4, 8, 16):
            m = Hypercube(4, CostModel.cm2())
            A = DistributedMatrix.from_numpy(m, np.ones((16, K)))
            B = DistributedMatrix.from_numpy(m, np.ones((K, 16)))
            t0 = m.counters.time
            A @ B
            times.append(m.counters.time - t0)
        assert times[1] / times[0] == pytest.approx(2.0, rel=0.3)
        assert times[2] / times[1] == pytest.approx(2.0, rel=0.3)

    def test_normal_equations(self, s, rng):
        """A^T A via transpose + matmul — the least-squares building block."""
        A_h = rng.standard_normal((10, 4))
        A = s.matrix(A_h)
        AtA = A.transpose(same_grid=True) @ A
        assert np.allclose(AtA.to_numpy(), A_h.T @ A_h)

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=0, max_value=2**31),
    )
    def test_property_matches_numpy(self, R, K, C, n, seed):
        rng = np.random.default_rng(seed)
        m = Hypercube(n, CostModel.unit())
        A_h = rng.standard_normal((R, K))
        B_h = rng.standard_normal((K, C))
        got = (
            DistributedMatrix.from_numpy(m, A_h)
            @ DistributedMatrix.from_numpy(m, B_h)
        ).to_numpy()
        assert np.allclose(got, A_h @ B_h)


class TestPermuteSlices:
    def test_row_permutation(self, s, rng):
        A_h = rng.standard_normal((9, 13))
        perm = rng.permutation(9)
        got = s.matrix(A_h).permute(0, perm).to_numpy()
        expect = np.empty_like(A_h)
        expect[perm] = A_h
        assert np.allclose(got, expect)

    def test_col_permutation(self, s, rng):
        A_h = rng.standard_normal((9, 13))
        perm = rng.permutation(13)
        got = s.matrix(A_h).permute(1, perm).to_numpy()
        expect = np.empty_like(A_h)
        expect[:, perm] = A_h
        assert np.allclose(got, expect)

    def test_identity_permutation_no_comm(self, rng):
        m = Hypercube(4, CostModel.unit())
        A = DistributedMatrix.from_numpy(m, rng.standard_normal((8, 8)))
        e0 = m.counters.elements_transferred
        out = A.permute(0, np.arange(8))
        assert np.allclose(out.to_numpy(), A.to_numpy())
        assert m.counters.elements_transferred == e0

    def test_reversal(self, s, rng):
        A_h = rng.standard_normal((10, 6))
        got = s.matrix(A_h).permute(0, np.arange(10)[::-1].copy()).to_numpy()
        assert np.allclose(got, A_h[::-1])

    def test_inverse_round_trip(self, s, rng):
        A_h = rng.standard_normal((11, 7))
        perm = rng.permutation(11)
        inv = np.argsort(perm)
        A = s.matrix(A_h)
        back = A.permute(0, perm).permute(0, inv).to_numpy()
        assert np.allclose(back, A_h)

    def test_bad_permutation_rejected(self, s, rng):
        A = s.matrix(rng.standard_normal((5, 5)))
        with pytest.raises(ValueError, match="permutation"):
            A.permute(0, np.zeros(5, dtype=int))
        with pytest.raises(ValueError, match="permutation"):
            A.permute(0, np.arange(4))

    def test_within_band_permutation_is_local(self, rng):
        """Permuting slices that stay in their grid band moves no data
        between processors."""
        m = Hypercube(2, CostModel.unit())
        # 8 rows over 2 grid rows: rows 0-3 band 0, rows 4-7 band 1
        from repro.embeddings import MatrixEmbedding
        emb = MatrixEmbedding(m, 8, 4, row_dims=(0,), col_dims=(1,))
        A_h = rng.standard_normal((8, 4))
        A = DistributedMatrix(emb.scatter(A_h), emb)
        perm = np.array([3, 2, 1, 0, 7, 6, 5, 4])  # within-band reversal
        e0 = m.counters.elements_transferred
        out = A.permute(0, perm)
        expect = np.empty_like(A_h)
        expect[perm] = A_h
        assert np.allclose(out.to_numpy(), expect)
        assert m.counters.elements_transferred == e0
