"""Tests for the SIMD activity context (the CM's context flags)."""

import numpy as np
import pytest

from repro.machine import CostModel, Hypercube


@pytest.fixture
def m():
    return Hypercube(3, CostModel.unit())


class TestAssignWithoutContext:
    def test_plain_overwrite(self, m):
        a = m.pvar(np.zeros(8))
        a.assign(m.pvar(np.arange(8.0)))
        assert np.array_equal(a.data, np.arange(8.0))

    def test_scalar_assign(self, m):
        a = m.pvar(np.zeros(8))
        a.assign(7.0)
        assert np.all(a.data == 7.0)

    def test_returns_self(self, m):
        a = m.pvar(np.zeros(8))
        assert a.assign(1.0) is a

    def test_charges_one_pass(self, m):
        a = m.zeros((5,))
        t0 = m.counters.time
        a.assign(1.0)
        assert m.counters.time - t0 == 5.0  # unit t_m


class TestWhereContext:
    def test_masked_store(self, m):
        mask = m.pvar(np.arange(8) % 2 == 0)
        a = m.pvar(np.zeros(8))
        with m.where(mask):
            a.assign(1.0)
        assert np.array_equal(a.data, np.where(np.arange(8) % 2 == 0, 1.0, 0.0))

    def test_inactive_processors_keep_values(self, m):
        mask = m.pvar(np.arange(8) < 4)
        a = m.pvar(np.arange(8.0) * 10)
        with m.where(mask):
            a.assign(a + 1)
        expect = np.where(np.arange(8) < 4, np.arange(8.0) * 10 + 1,
                          np.arange(8.0) * 10)
        assert np.array_equal(a.data, expect)

    def test_nested_contexts_and_together(self, m):
        a = m.pvar(np.zeros(8))
        with m.where(m.pvar(np.arange(8) < 6)):
            with m.where(m.pvar(np.arange(8) % 2 == 0)):
                a.assign(1.0)
        assert np.array_equal(a.data, [1, 0, 1, 0, 1, 0, 0, 0])

    def test_context_restored_on_exit(self, m):
        with m.where(m.pvar(np.zeros(8, bool))):
            assert m.active_mask is not None
        assert m.active_mask is None
        a = m.pvar(np.zeros(8))
        a.assign(2.0)  # unrestricted again
        assert np.all(a.data == 2.0)

    def test_context_restored_on_exception(self, m):
        with pytest.raises(RuntimeError):
            with m.where(m.pvar(np.zeros(8, bool))):
                raise RuntimeError("boom")
        assert m.active_mask is None

    def test_block_target(self, m):
        mask = m.pvar(np.arange(8) < 4)
        a = m.pvar(np.zeros((8, 3)))
        with m.where(mask):
            a.assign(5.0)
        assert np.all(a.data[:4] == 5.0)
        assert np.all(a.data[4:] == 0.0)

    def test_elementwise_mask_on_block(self, m):
        mask = m.pvar(np.arange(24).reshape(8, 3) % 2 == 0)
        a = m.pvar(np.zeros((8, 3)))
        with m.where(mask):
            a.assign(1.0)
        assert np.array_equal(a.data, (np.arange(24).reshape(8, 3) % 2 == 0) * 1.0)

    def test_non_boolean_mask_rejected(self, m):
        with pytest.raises(TypeError, match="boolean"):
            with m.where(m.pvar(np.arange(8))):
                pass

    def test_incompatible_mask_shape_rejected(self, m):
        mask = m.pvar(np.ones((8, 3), dtype=bool))
        a = m.pvar(np.zeros((8, 2)))
        with m.where(mask):
            with pytest.raises(ValueError, match="incompatible"):
                a.assign(1.0)

    def test_simd_cost_is_unconditional(self, m):
        """SIMD executes everywhere: a masked store costs the same pass."""
        a = m.zeros((4,))
        with m.where(m.pvar(np.zeros(8, bool))):
            t0 = m.counters.time
            a.assign(1.0)
            assert m.counters.time - t0 == 4.0

    def test_conditional_accumulate_idiom(self, m):
        """The classic CM pattern: accumulate only on active processors."""
        values = m.pvar(np.arange(8.0))
        acc = m.pvar(np.zeros(8))
        for threshold in (2, 4, 6):
            with m.where(values < threshold):
                acc.assign(acc + 1)
        # element i was counted once per threshold it is below
        expect = np.array([3, 3, 2, 2, 1, 1, 0, 0], dtype=float)
        assert np.array_equal(acc.data, expect)
