"""Tests for the all-to-all personalized collective (total exchange)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import comm
from repro.machine import CostModel, Hypercube


@pytest.fixture
def m():
    return Hypercube(4, CostModel.unit())


def brute_alltoall(machine, payload, dims):
    """Oracle: out[q][j] = payload[member with rank j][rank(q)]."""
    rank = comm.subcube_rank(machine, dims)
    mask = sum(1 << d for d in dims)
    out = np.empty_like(payload)
    for q in range(machine.p):
        for j in range(payload.shape[1]):
            sender = next(
                c for c in range(machine.p)
                if (c & ~mask) == (q & ~mask) and rank[c] == j
            )
            out[q, j] = payload[sender, rank[q]]
    return out


class TestSemantics:
    def test_full_cube_is_block_transpose(self, m):
        blocks = np.arange(256.0).reshape(16, 16)
        out = comm.alltoall(m, m.pvar(blocks))
        assert np.array_equal(out.data, blocks.T)

    @pytest.mark.parametrize("dims", [(0,), (0, 1), (1, 3), (0, 2, 3)])
    def test_subcube_matches_oracle(self, m, rng, dims):
        nblocks = 1 << len(dims)
        payload = rng.standard_normal((16, nblocks))
        out = comm.alltoall(m, m.pvar(payload), dims=dims)
        assert np.allclose(out.data, brute_alltoall(m, payload, dims))

    def test_block_payload(self, m, rng):
        payload = rng.standard_normal((16, 4, 5))
        out = comm.alltoall(m, m.pvar(payload), dims=(0, 1))
        oracle = brute_alltoall(m, payload, (0, 1))
        assert np.allclose(out.data, oracle)

    def test_involution(self, m, rng):
        payload = rng.standard_normal((16, 8))
        once = comm.alltoall(m, m.pvar(payload), dims=(0, 1, 2))
        twice = comm.alltoall(m, once, dims=(0, 1, 2))
        assert np.allclose(twice.data, payload)

    def test_empty_dims_identity(self, m, rng):
        payload = rng.standard_normal((16, 1))
        out = comm.alltoall(m, m.pvar(payload), dims=())
        assert np.allclose(out.data, payload)

    def test_shape_validation(self, m):
        with pytest.raises(ValueError, match="leading local axis"):
            comm.alltoall(m, m.zeros((3,)), dims=(0, 1))


class TestCost:
    def test_optimal_round_structure(self):
        """k rounds, each moving half the blocks: the single-port optimum."""
        m = Hypercube(4, CostModel(tau=100, t_c=2, t_a=0, t_m=0))
        blocks = np.zeros((16, 16, 3))  # 16 blocks of 3 elements
        r0 = m.counters.comm_rounds
        t0 = m.counters.time
        comm.alltoall(m, m.pvar(blocks))
        assert m.counters.comm_rounds - r0 == 4
        assert m.counters.time - t0 == 4 * (100 + 2 * 8 * 3)

    def test_volume_beats_naive_by_k(self):
        """Total exchange moves k·2^(k-1) blocks/processor vs the (2^k - 1)
        full-buffer rounds a naive schedule would pay."""
        m = Hypercube(6, CostModel(tau=0, t_c=1, t_a=0, t_m=0))
        blocks = np.zeros((64, 64))
        t0 = m.counters.time
        comm.alltoall(m, m.pvar(blocks))
        total_exchange = m.counters.time - t0
        naive = (64 - 1) * 64  # 63 serial rounds of the full 64-block buffer
        assert total_exchange == 6 * 32
        assert naive / total_exchange > 20


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=0, max_value=4),
    st.integers(min_value=0, max_value=2**31),
)
def test_property_involution_any_size(k, seed):
    machine = Hypercube(max(k, 1) + 1, CostModel.unit())
    dims = tuple(range(k))
    payload = np.random.default_rng(seed).standard_normal(
        (machine.p, 1 << k)
    )
    pv = machine.pvar(payload)
    once = comm.alltoall(machine, pv, dims=dims)
    twice = comm.alltoall(machine, once, dims=dims)
    assert np.allclose(twice.data, payload)
