"""Tests for the naive baseline (S13): same answers, serialised cost."""

import numpy as np
import pytest

from repro import Session
from repro import workloads as W
from repro.algorithms import gaussian, matvec, simplex
from repro.algorithms.naive import NaiveMatrix, NaiveVector
from repro.core import DistributedMatrix, DistributedVector
from repro.embeddings import RowAlignedEmbedding, VectorOrderEmbedding
from repro.machine import CostModel, Hypercube


@pytest.fixture
def m():
    return Hypercube(4, CostModel.unit())


@pytest.fixture
def A_host(rng):
    return rng.standard_normal((11, 9))


@pytest.fixture
def NA(m, A_host):
    return NaiveMatrix.from_numpy(m, A_host)


class TestSameSemantics:
    """Every overridden operation must agree with the primitive version."""

    def test_extract(self, NA, A_host):
        for i in (0, 5, 10):
            assert np.allclose(NA.extract(0, i).to_numpy(), A_host[i])
        for j in (0, 8):
            assert np.allclose(NA.extract(1, j).to_numpy(), A_host[:, j])

    def test_extract_replicates_everywhere(self, NA, A_host):
        v = NA.extract(0, 3)
        assert isinstance(v, NaiveVector)
        assert v.embedding.replicated
        mask = v.embedding.valid_mask()
        idx = v.embedding.global_indices()
        assert np.allclose(v.pvar.data[mask], A_host[3][idx[mask]])

    def test_reduce(self, NA, A_host):
        assert np.allclose(NA.reduce(1, "sum").to_numpy(), A_host.sum(1))
        assert np.allclose(NA.reduce(0, "max").to_numpy(), A_host.max(0))
        assert np.allclose(NA.reduce(1, "min").to_numpy(), A_host.min(1))

    def test_reduce_result_replicated(self, NA, A_host):
        v = NA.reduce(1, "sum")
        mask = v.embedding.valid_mask()
        idx = v.embedding.global_indices()
        assert np.allclose(v.pvar.data[mask], A_host.sum(1)[idx[mask]])

    def test_argreduce(self, NA, A_host):
        vals, idxs = NA.argreduce(1, "max")
        assert np.array_equal(idxs.to_numpy(), A_host.argmax(1))
        vals, idxs = NA.argreduce(0, "min")
        assert np.array_equal(idxs.to_numpy(), A_host.argmin(0))

    def test_argreduce_with_valid(self, m, NA, A_host):
        valid = NA > 0
        _, idxs = NA.argreduce(1, "min", valid=valid)
        got = idxs.to_numpy()
        for i in range(11):
            cands = np.nonzero(A_host[i] > 0)[0]
            expect = cands[A_host[i][cands].argmin()] if len(cands) else -1
            assert got[i] == expect

    def test_vector_reduce_and_argreduce(self, m, rng):
        v_h = rng.standard_normal(18)
        v = NaiveVector.from_numpy(m, v_h)
        assert np.isclose(v.sum(), v_h.sum())
        val, idx = v.argmax()
        assert idx == v_h.argmax()
        val, idx = v.argreduce("min", valid=v > 0)
        cands = np.nonzero(v_h > 0)[0]
        assert idx == cands[v_h[cands].argmin()]

    def test_distribute_from_resident(self, m, NA, rng):
        w = rng.standard_normal(9)
        emb = RowAlignedEmbedding(NA.embedding, 1)
        v = NaiveVector(emb.scatter(w), emb)
        out = v.distribute(NA, axis=0)
        assert np.allclose(out.to_numpy(), np.tile(w, (11, 1)))
        assert isinstance(out, NaiveMatrix)

    def test_distribute_from_vector_order(self, m, NA, rng):
        w = rng.standard_normal(9)
        emb = VectorOrderEmbedding(m, 9)
        v = NaiveVector(emb.scatter(w), emb)
        out = v.distribute(NA, axis=0)
        assert np.allclose(out.to_numpy(), np.tile(w, (11, 1)))

    def test_subclass_flows_through_ops(self, NA):
        assert isinstance(NA + 1, NaiveMatrix)
        assert isinstance(NA.extract(0, 0), NaiveVector)
        assert isinstance(NA.extract(0, 0) * 2, NaiveVector)
        vals, idxs = NA.argreduce(1)
        assert isinstance(vals, NaiveVector)


class TestSameAlgorithms:
    def test_gaussian_identical_answers(self, m):
        A_h, b, x_true = W.random_system(12, seed=21)
        res = gaussian.solve(NaiveMatrix.from_numpy(m, A_h), b)
        assert np.allclose(res.x, x_true, atol=1e-7)

    def test_matvec_identical_answers(self, m, rng):
        A_h = rng.standard_normal((12, 8))
        x_h = rng.standard_normal(8)
        NA = NaiveMatrix.from_numpy(m, A_h)
        emb = RowAlignedEmbedding(NA.embedding, None)
        x = NaiveVector(emb.scatter(x_h), emb)
        res = matvec.matvec(NA, x)
        assert np.allclose(res.y.to_numpy(), A_h @ x_h)

    def test_simplex_identical_answers(self, m):
        lp = W.feasible_lp(7, 5, seed=22)
        prim = simplex.solve(m, lp.A, lp.b, lp.c)
        nav = simplex.solve(m, lp.A, lp.b, lp.c, matrix_cls=NaiveMatrix)
        assert nav.status == prim.status == "optimal"
        assert np.isclose(nav.objective, prim.objective, atol=1e-9)
        assert nav.iterations == prim.iterations
        assert nav.pivots == prim.pivots


class TestSerialisedCost:
    def test_reduce_rounds_linear_not_log(self, A_host):
        """The whole point: 2(Pc-1) serial rounds vs lg(Pc) tree rounds."""
        m1 = Hypercube(4, CostModel.unit())
        m2 = Hypercube(4, CostModel.unit())
        prim = DistributedMatrix.from_numpy(m1, A_host)
        nav = NaiveMatrix.from_numpy(m2, A_host)
        r1 = m1.counters.comm_rounds
        prim.reduce(1, "sum")
        prim_rounds = m1.counters.comm_rounds - r1
        r2 = m2.counters.comm_rounds
        nav.reduce(1, "sum")
        naive_rounds = m2.counters.comm_rounds - r2
        k = len(prim.embedding.col_dims)
        assert prim_rounds == k
        assert naive_rounds == 2 * ((1 << k) - 1)

    def test_naive_slower_under_cm2(self, A_host):
        m1 = Hypercube(6, CostModel.cm2())
        m2 = Hypercube(6, CostModel.cm2())
        prim = DistributedMatrix.from_numpy(m1, A_host)
        nav = NaiveMatrix.from_numpy(m2, A_host)
        t1 = m1.counters.time
        prim.reduce(1, "sum")
        prim_t = m1.counters.time - t1
        t2 = m2.counters.time
        nav.reduce(1, "sum")
        naive_t = m2.counters.time - t2
        assert naive_t > prim_t

    def test_gap_grows_with_machine_size(self):
        """The paper's order-of-magnitude claim is a large-p effect."""
        A_h, b, _ = W.random_system(16, seed=23)
        ratios = []
        for n in (2, 6):
            mp = Hypercube(n, CostModel.cm2())
            mn = Hypercube(n, CostModel.cm2())
            rp = gaussian.solve(DistributedMatrix.from_numpy(mp, A_h), b)
            rn = gaussian.solve(NaiveMatrix.from_numpy(mn, A_h), b)
            ratios.append(rn.cost.time / rp.cost.time)
        assert ratios[1] > ratios[0]

    def test_insert_inherits_primitive_cost(self, m, NA, rng):
        """insert is a local masked write in both implementations."""
        w = rng.standard_normal(9)
        emb = RowAlignedEmbedding(NA.embedding, None)
        v = NaiveVector(emb.scatter(w), emb)
        e0 = m.counters.elements_transferred
        NA.insert(0, 2, v)
        assert m.counters.elements_transferred == e0
