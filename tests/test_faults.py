"""Unit tests for the fault-injection subsystem (``repro.faults``).

Covers the plan/injector mechanics, fault-aware detour routing, retry
charging, the topology-epoch plan-cache regression, the error taxonomy,
and the no-fault bit-identity guarantee (a healthy run must be
indistinguishable — tick for tick — from a build that never imports
``repro.faults``).
"""

import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import (
    CheckpointError,
    EmbeddingError,
    FaultError,
    NodeKilledError,
    ReproError,
    Session,
    ShapeError,
    UnroutableError,
)
from repro.faults import (
    CheckpointStore,
    FaultInjector,
    FaultPlan,
    LinkDrop,
    LinkKill,
    NodeKill,
    RetryPolicy,
    largest_healthy_subcube,
    subcube_members,
)
from repro.machine import CostModel, Hypercube


# ---------------------------------------------------------------------------
# error taxonomy
# ---------------------------------------------------------------------------


class TestErrorTaxonomy:
    def test_hierarchy(self):
        assert issubclass(ShapeError, ReproError)
        assert issubclass(ShapeError, ValueError)
        assert issubclass(EmbeddingError, ValueError)
        assert issubclass(NodeKilledError, FaultError)
        assert issubclass(UnroutableError, FaultError)
        assert issubclass(FaultError, RuntimeError)
        assert issubclass(CheckpointError, ReproError)

    def test_shape_error_names_the_shape(self):
        s = Session(2)
        A = s.matrix(np.zeros((8, 8)))
        with pytest.raises(ShapeError, match=r"\(8,\), got \(5,\)"):
            A.matvec(s.row_vector(np.zeros(5), A))

    def test_embedding_error_names_the_embedding(self):
        s = Session(2)
        A = s.matrix(np.zeros((8, 8)))
        v = s.vector(np.zeros(8))
        w = s.row_vector(np.zeros(8), A)  # different embedding than v
        with pytest.raises(EmbeddingError, match="embedding"):
            v + w

    def test_old_catch_alls_still_work(self):
        """ShapeError/EmbeddingError stay catchable as ValueError."""
        s = Session(2)
        with pytest.raises(ValueError):
            s.matrix(np.zeros(8))  # 1-D where a matrix is expected


# ---------------------------------------------------------------------------
# fault plans
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_events_time_sorted(self):
        plan = FaultPlan([LinkDrop(5.0), NodeKill(1.0, pid=3), LinkKill(3.0)])
        assert [ev.time for ev in plan] == [1.0, 3.0, 5.0]

    def test_random_is_deterministic(self):
        a = FaultPlan.random(4, seed=9, horizon=1e4, link_kills=2,
                             node_kills=2, drops=3)
        b = FaultPlan.random(4, seed=9, horizon=1e4, link_kills=2,
                             node_kills=2, drops=3)
        assert a.events == b.events
        c = FaultPlan.random(4, seed=10, horizon=1e4, link_kills=2,
                             node_kills=2, drops=3)
        assert a.events != c.events

    def test_random_targets_distinct_links_and_nodes(self):
        plan = FaultPlan.random(3, seed=0, horizon=100.0, link_kills=4,
                                node_kills=4, drops=0)
        links = [(ev.dim, ev.pid) for ev in plan if isinstance(ev, LinkKill)]
        nodes = [ev.pid for ev in plan if isinstance(ev, NodeKill)]
        assert len(set(links)) == len(links)
        assert len(set(nodes)) == len(nodes)

    def test_random_times_inside_window(self):
        plan = FaultPlan.random(3, seed=1, horizon=1000.0, window=(0.2, 0.5))
        for ev in plan:
            assert 200.0 <= ev.time <= 500.0

    def test_rejects_non_events(self):
        with pytest.raises(TypeError):
            FaultPlan(["not an event"])

    def test_as_dict_round_trips_to_json(self):
        plan = FaultPlan.random(3, seed=2, horizon=50.0, node_kills=1)
        json.dumps(plan.as_dict())  # must be serialisable


# ---------------------------------------------------------------------------
# machine health state
# ---------------------------------------------------------------------------


class TestHealthState:
    def test_kill_node_bumps_epoch_and_is_idempotent(self):
        m = Hypercube(3, CostModel.unit())
        assert not m.faulty and m.epoch == 0
        assert m.kill_node(5) is True
        assert m.faulty and m.epoch == 1
        assert not m.node_alive(5) and m.node_alive(4)
        assert m.kill_node(5) is False  # already dead
        assert m.epoch == 1

    def test_kill_link_marks_both_endpoints(self):
        m = Hypercube(3, CostModel.unit())
        m.kill_link(1, 6)  # link between 6 and 4 across dim 1
        assert not m.link_alive(1, 6) and not m.link_alive(1, 4)
        assert m.link_alive(1, 0) and m.link_alive(0, 6)

    def test_dead_node_fails_structured_exchange(self):
        m = Hypercube(2, CostModel.unit())
        m.kill_node(2)
        with pytest.raises(NodeKilledError):
            m.charge_comm_round(4.0, dim=0)

    def test_dead_link_charges_detour_rounds(self):
        healthy = Hypercube(3, CostModel.unit())
        healthy.charge_comm_round(8.0, rounds=1, dim=2)
        base_rounds = healthy.counters.comm_rounds

        m = Hypercube(3, CostModel.unit())
        m.kill_link(2, 0)
        m.charge_comm_round(8.0, rounds=1, dim=2)
        # one planned round + two extra detour rounds of the same volume
        assert m.counters.comm_rounds == base_rounds + 2
        assert m.counters.time > healthy.counters.time

    def test_fully_dead_dim_is_unroutable(self):
        m = Hypercube(1, CostModel.unit())  # p=2: dim 0 has one link
        m.kill_link(0, 0)
        with pytest.raises(UnroutableError):
            m.charge_comm_round(1.0, dim=0)


# ---------------------------------------------------------------------------
# injector: scheduled fire, drops and retries
# ---------------------------------------------------------------------------


class TestInjector:
    def test_events_fire_at_their_simulated_time(self):
        m = Hypercube(3, CostModel.unit())
        inj = FaultInjector(FaultPlan([LinkKill(50.0, dim=0, pid=0)]))
        m.attach_faults(inj)
        while m.counters.time < 49.0:
            m.charge_comm_round(1.0, dim=1)
        assert m.link_alive(0, 0)  # not yet
        while m.counters.time < 60.0:
            m.charge_comm_round(1.0, dim=1)
        assert not m.link_alive(0, 0)
        assert inj.stats.link_kills == 1
        assert inj.exhausted

    def test_drop_charges_retries_and_backoff(self):
        retry = RetryPolicy(max_retries=4, base=2.0, factor=2.0, cap=64.0)
        m = Hypercube(2, CostModel.unit())
        inj = FaultInjector(
            FaultPlan([LinkDrop(0.0, dim=0, count=2)]), retry=retry
        )
        m.attach_faults(inj)

        clean = Hypercube(2, CostModel.unit())
        clean.charge_comm_round(4.0, dim=0)
        one_round = clean.counters.time

        m.charge_comm_round(4.0, dim=0)
        assert inj.stats.drops == 2
        assert inj.stats.retries == 2
        # 1 planned + 2 retry rounds, plus tau-scaled backoff waits
        assert m.counters.comm_rounds == 3
        expected_backoff = m.cost_model.tau * (
            retry.backoff(0) + retry.backoff(1)
        )
        assert m.counters.time == pytest.approx(3 * one_round + expected_backoff)
        assert inj.stats.backoff_time == pytest.approx(expected_backoff)

    def test_backoff_is_capped(self):
        retry = RetryPolicy(max_retries=8, base=1.0, factor=10.0, cap=5.0)
        assert retry.backoff(0) == 1.0
        assert retry.backoff(1) == 5.0
        assert retry.backoff(7) == 5.0

    def test_same_seed_same_fault_trajectory(self):
        def run(seed):
            plan = FaultPlan.random(3, seed=seed, horizon=300.0,
                                    link_kills=1, drops=2)
            m = Hypercube(3, CostModel.unit())
            inj = FaultInjector(plan)
            m.attach_faults(inj)
            for _ in range(40):
                m.charge_comm_round(4.0, dim=1)
                m.charge_comm_round(4.0, dim=2)
            return inj.stats.as_dict(), m.counters.time

        assert run(7) == run(7)
        assert run(7) != run(8)


# ---------------------------------------------------------------------------
# plan-cache staleness regression (topology epoch)
# ---------------------------------------------------------------------------


class TestPlanCacheEpoch:
    def test_epoch_invalidates_cached_plans(self):
        """A cached remap plan must not survive a topology change."""
        s = Session(3, "unit")
        if not s.machine.plans.enabled:
            pytest.skip("plan cache disabled (REPRO_PLAN_CACHE=0)")
        A = s.matrix(np.arange(64, dtype=float).reshape(8, 8))
        v = s.vector(np.arange(8, dtype=float))

        aligned = s.row_aligned(A)
        v.as_embedding(aligned)          # miss: plan built and cached
        misses0 = s.machine.plans.misses
        v.as_embedding(aligned)          # hit: same topology
        assert s.machine.plans.hits >= 1

        s.machine.kill_link(0, 0)        # topology epoch bump
        hits_before = s.machine.plans.hits
        v.as_embedding(aligned)          # stale plan must NOT be replayed
        assert s.machine.plans.hits == hits_before
        assert s.machine.plans.misses > misses0

    def test_epoch_bump_clears_entries(self):
        s = Session(3, "unit")
        if not s.machine.plans.enabled:
            pytest.skip("plan cache disabled (REPRO_PLAN_CACHE=0)")
        A = s.matrix(np.zeros((8, 8)))
        s.vector(np.zeros(8)).as_embedding(s.row_aligned(A))
        assert len(s.machine.plans) > 0
        s.machine.bump_epoch()
        assert len(s.machine.plans) == 0


# ---------------------------------------------------------------------------
# subcube search / checkpoint store
# ---------------------------------------------------------------------------


class TestSubcubeSearch:
    def test_healthy_machine_keeps_every_dim(self):
        m = Hypercube(3, CostModel.unit())
        free, base = largest_healthy_subcube(m)
        assert free == (0, 1, 2) and base == 0

    def test_one_dead_node_halves_the_machine(self):
        m = Hypercube(3, CostModel.unit())
        m.kill_node(5)  # 0b101
        free, base = largest_healthy_subcube(m)
        assert len(free) == 2
        members = subcube_members(free, base)
        assert 5 not in members
        assert len(members) == 4

    def test_deterministic_tie_break(self):
        runs = []
        for _ in range(2):
            m = Hypercube(3, CostModel.unit())
            m.kill_node(7)
            runs.append(largest_healthy_subcube(m))
        assert runs[0] == runs[1]

    def test_no_survivors_raises(self):
        m = Hypercube(1, CostModel.unit())
        m.kill_node(0)
        m.kill_node(1)
        with pytest.raises(FaultError):
            largest_healthy_subcube(m)


class TestCheckpointStore:
    def test_save_restore_charges_time(self):
        s = Session(2, "unit")
        store = CheckpointStore(s)
        A = s.matrix(np.arange(16, dtype=float).reshape(4, 4))
        t0 = s.time
        store.save("work", {"A": A}, state={"step": 3}, step=3)
        t1 = s.time
        assert t1 > t0, "checkpoint collection must cost simulated time"
        ck = store.restore()
        assert s.time > t1, "restore scatter must cost simulated time"
        assert ck.state["step"] == 3
        np.testing.assert_array_equal(ck.array("A"), A.to_numpy())

    def test_restore_without_checkpoint(self):
        s = Session(2, "unit")
        store = CheckpointStore(s)
        assert store.restore() is None
        with pytest.raises(CheckpointError):
            store.restore(required=True)

    def test_unknown_array_name(self):
        s = Session(2, "unit")
        store = CheckpointStore(s)
        store.save("work", {"A": np.zeros(4)})
        ck = store.restore()
        with pytest.raises(CheckpointError, match="A"):
            ck.array("B")


# ---------------------------------------------------------------------------
# no-fault bit-identity
# ---------------------------------------------------------------------------

_BASELINE_SNIPPET = """
import json
import numpy as np
import sys

from repro import Session

s = Session(4, "cm2")
rng = np.random.default_rng(12345)
A = s.matrix(rng.standard_normal((24, 16)))
v = s.col_vector(rng.standard_normal(24), A)
row = A.extract(axis=0, index=3)
A2 = A.insert(axis=0, index=20, vector=row)
sums = A2.reduce(axis=1, op="sum")
y = A.vecmat(v)
c = s.machine.counters
print(json.dumps({
    "time": c.time,
    "flops": c.flops,
    "elements": c.elements_transferred,
    "rounds": c.comm_rounds,
    "local": c.local_moves,
    "faults_imported": "repro.faults" in sys.modules,
}))
"""


class TestNoFaultBitIdentity:
    def test_healthy_session_never_imports_faults_module(self):
        """Without faults, a run is identical to one that cannot even see
        ``repro.faults`` — same ticks, same counters, module not loaded."""
        src = str(Path(__file__).resolve().parent.parent / "src")
        out = subprocess.run(
            [sys.executable, "-c", _BASELINE_SNIPPET],
            capture_output=True, text=True, check=True,
            env={"PYTHONPATH": src, "PATH": "/usr/bin:/bin"},
        )
        sub = json.loads(out.stdout)
        assert sub["faults_imported"] is False

        # same workload in-process (repro.faults IS imported by this test
        # module) — counters must match the fault-free subprocess exactly
        s = Session(4, "cm2")
        rng = np.random.default_rng(12345)
        A = s.matrix(rng.standard_normal((24, 16)))
        v = s.col_vector(rng.standard_normal(24), A)
        row = A.extract(axis=0, index=3)
        A2 = A.insert(axis=0, index=20, vector=row)
        A2.reduce(axis=1, op="sum")
        A.vecmat(v)
        c = s.machine.counters
        assert c.time == sub["time"]
        assert c.flops == sub["flops"]
        assert c.elements_transferred == sub["elements"]
        assert c.comm_rounds == sub["rounds"]
        assert c.local_moves == sub["local"]

    def test_empty_plan_changes_nothing(self):
        """Attaching an injector with zero events must not change costs."""
        def run(faults):
            s = Session(3, "unit", faults=faults)
            A = s.matrix(np.arange(48, dtype=float).reshape(8, 6))
            A.reduce(axis=1, op="sum")
            A.extract(axis=0, index=2)
            return s.machine.counters

        plain = run(None)
        with_injector = run(FaultPlan([]))
        assert with_injector.time == plain.time
        assert with_injector.comm_rounds == plain.comm_rounds
        assert with_injector.elements_transferred == plain.elements_transferred
