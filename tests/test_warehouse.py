"""Tests for the experiment warehouse (``repro.metrics.warehouse``).

Covers the full ``bench`` lifecycle the CI gate relies on: declarative
run tables, schema-validated JSONL append, baseline pinning, and the
regression gate (``repro bench report`` must exit nonzero when simulated
ticks grow — pinned here by tampering a record and re-running the gate).
"""

import json
import os
from pathlib import Path

import pytest

from repro.__main__ import main
from repro.errors import ConfigError
from repro.metrics import best_of, interleaved
from repro.metrics import warehouse as wh


@pytest.fixture()
def tiny_table(tmp_path):
    """A two-spec run table small enough for a subsecond test run."""
    table = {
        "runs": [
            {"workload": "gaussian", "params": {"n_dims": 3, "order": 8},
             "reps": 1},
            {"workload": "matvec",
             "params": {"n_dims": 3, "n": 8, "iters": 2}, "reps": 1},
        ]
    }
    path = tmp_path / "table.json"
    path.write_text(json.dumps(table))
    return str(path)


def _runs_path(out_dir):
    return os.path.join(out_dir, wh.RUNS_FILE)


# -- run tables ---------------------------------------------------------------


class TestRunTables:
    def test_builtin_tables_resolve(self):
        for name in ("smoke", "full"):
            table = wh.load_table(name)
            assert len(table) >= 8
            for spec in table:
                spec.resolved_flags()  # never raises

    def test_unknown_table_fails(self):
        with pytest.raises(ConfigError):
            wh.load_table("no-such-table")

    def test_table_file_round_trip(self, tiny_table):
        table = wh.load_table(tiny_table)
        assert [s.workload for s in table] == ["gaussian", "matvec"]
        assert table[0].params["order"] == 8

    def test_bad_specs_rejected(self):
        with pytest.raises(ConfigError):
            wh.RunSpec("fft", {"n_dims": 3})
        with pytest.raises(ConfigError):
            wh.RunSpec("gaussian", {"n_dims": 3}, reps=0)
        with pytest.raises(ConfigError):
            wh.RunSpec("gaussian", {"n_dims": 3}, {"turbo": True})

    def test_record_key_separates_legacy_from_fresh(self):
        fresh = wh.record_key("gaussian", {"order": 8},
                              wh.RunSpec("gaussian", {}).resolved_flags())
        legacy = wh.record_key("gaussian", {"order": 8},
                               {"legacy": "cache-sweep", "plan_cache": True})
        assert fresh != legacy


# -- running and validation ---------------------------------------------------


class TestRunAndValidate:
    def test_run_spec_validates_and_fills_schema(self):
        spec = wh.RunSpec("gaussian", {"n_dims": 3, "order": 8}, reps=1)
        record = wh.run_spec(spec, validate=True)
        wh.validate_record(record)  # must not raise
        assert record["schema"] == wh.SCHEMA
        assert record["kind"] == "run"
        assert record["validated"] is True
        assert record["sim"]["time"] > 0
        assert record["wall_s"]["best"] > 0
        assert record["metrics"]["machine.ticks"] == record["sim"]["time"]
        assert record["profile"]["coverage"] >= 0.0

    def test_batch_workload_runs(self):
        spec = wh.RunSpec(
            "batch_gaussian", {"n_dims": 3, "n": 8, "n_runs": 2}, reps=1
        )
        record = wh.run_spec(spec, validate=True)
        assert record["validated"] is True
        assert record["metrics"]["batch.lanes"] == 2

    def test_validate_record_rejects_garbage(self):
        with pytest.raises(ConfigError):
            wh.validate_record({"schema": "bogus"})
        with pytest.raises(ConfigError):
            wh.validate_record([])
        good = wh.run_spec(
            wh.RunSpec("matvec", {"n_dims": 3, "n": 8, "iters": 1}, reps=1)
        )
        bad = dict(good, sim={"flops": 1.0})  # kind "run" needs sim.time
        with pytest.raises(ConfigError):
            wh.validate_record(bad)


# -- the CLI lifecycle: run -> pin -> report ----------------------------------


class TestBenchCli:
    def test_run_pin_report_pass(self, tiny_table, tmp_path, capsys):
        out = str(tmp_path / "wh")
        assert main(["bench", "run", "--table", tiny_table,
                     "--out", out, "--validate"]) == 0
        assert main(["bench", "pin", "--out", out]) == 0
        assert main(["bench", "report", "--out", out]) == 0
        text = capsys.readouterr().out
        assert "PASS" in text

        records = wh.load_records(_runs_path(out))
        assert len(records) == 2
        for record in records:
            assert record["validated"] is True
        baselines = wh.load_baselines(
            os.path.join(out, wh.BASELINES_FILE)
        )
        assert baselines["schema"] == wh.BASELINE_SCHEMA
        assert len(baselines["entries"]) == 2

    def test_report_fails_on_sim_regression(self, tiny_table, tmp_path,
                                            capsys):
        out = str(tmp_path / "wh")
        main(["bench", "run", "--table", tiny_table, "--out", out])
        main(["bench", "pin", "--out", out])
        # Tamper: re-append the gaussian record with 1.5x simulated ticks,
        # as a genuine algorithmic regression would.
        records = wh.load_records(_runs_path(out))
        slow = json.loads(json.dumps(records[0]))
        slow["sim"]["time"] *= 1.5
        wh.append_records([slow], _runs_path(out))

        assert main(["bench", "report", "--out", out]) == 1
        text = capsys.readouterr().out
        assert "REGRESSION [sim]" in text
        assert "FAIL" in text

    def test_report_wall_gate_is_opt_in(self, tiny_table, tmp_path, capsys):
        out = str(tmp_path / "wh")
        main(["bench", "run", "--table", tiny_table, "--out", out])
        main(["bench", "pin", "--out", out])
        records = wh.load_records(_runs_path(out))
        slow = json.loads(json.dumps(records[-1]))
        slow["wall_s"]["best"] *= 100.0
        wh.append_records([slow], _runs_path(out))

        # Simulated ticks unchanged: default report still passes...
        assert main(["bench", "report", "--out", out]) == 0
        # ...but the opt-in wall gate trips.
        assert main(["bench", "report", "--out", out,
                     "--wall-tolerance", "0.5"]) == 1
        text = capsys.readouterr().out
        assert "REGRESSION [wall]" in text

    def test_latest_record_wins(self, tiny_table, tmp_path, capsys):
        """A regression that was since fixed must not gate."""
        out = str(tmp_path / "wh")
        main(["bench", "run", "--table", tiny_table, "--out", out])
        main(["bench", "pin", "--out", out])
        records = wh.load_records(_runs_path(out))
        slow = json.loads(json.dumps(records[0]))
        slow["sim"]["time"] *= 1.5
        fixed = json.loads(json.dumps(records[0]))
        wh.append_records([slow, fixed], _runs_path(out))
        assert main(["bench", "report", "--out", out]) == 0

    def test_report_without_baselines_errors(self, tiny_table, tmp_path,
                                             capsys):
        out = str(tmp_path / "wh")
        main(["bench", "run", "--table", tiny_table, "--out", out])
        assert main(["bench", "report", "--out", out]) == 2
        assert "bench report" in capsys.readouterr().err

    def test_run_unknown_table_errors(self, tmp_path, capsys):
        assert main(["bench", "run", "--table", "nope",
                     "--out", str(tmp_path / "wh")]) == 2
        assert "bench run" in capsys.readouterr().err

    def test_json_output(self, tiny_table, tmp_path, capsys):
        out = str(tmp_path / "wh")
        assert main(["bench", "run", "--table", tiny_table, "--out", out,
                     "--validate", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["runs"] == 2
        assert data["failures"] == []


# -- legacy migration ---------------------------------------------------------


class TestLegacyImport:
    def test_import_repo_history(self, tmp_path, capsys):
        legacy = Path(__file__).resolve().parent.parent / "BENCH_wallclock.json"
        if not legacy.exists():
            pytest.skip("no legacy benchmark history in checkout")
        out = str(tmp_path / "wh")
        assert main(["bench", "import", "--legacy", str(legacy),
                     "--out", out]) == 0
        records = wh.load_records(_runs_path(out))
        assert len(records) >= 2
        for record in records:
            assert record["kind"] == "legacy-import"
            assert "legacy" in record["flags"]

    def test_legacy_records_never_gate_fresh_runs(self, tmp_path):
        doc = {
            "results": [
                {
                    "workload": "gaussian",
                    "experiment": "cache-sweep",
                    "params": {"n_dims": 3, "order": 8},
                    "reps": 2,
                    "cache_on_s": 0.5,
                    "cache_off_s": 0.9,
                    "snapshot": {"time": 1234.0},
                }
            ]
        }
        path = tmp_path / "BENCH_wallclock.json"
        path.write_text(json.dumps(doc))
        records = wh.import_legacy(str(path))
        assert len(records) == 2
        spec = wh.RunSpec("gaussian", {"n_dims": 3, "order": 8})
        fresh_key = wh.record_key("gaussian", spec.params,
                                  spec.resolved_flags())
        legacy_keys = {
            wh.record_key(r["workload"], r["params"], r["flags"])
            for r in records
        }
        assert fresh_key not in legacy_keys

    def test_import_missing_file_errors(self, tmp_path, capsys):
        assert main(["bench", "import",
                     "--legacy", str(tmp_path / "nope.json"),
                     "--out", str(tmp_path / "wh")]) == 2


# -- shared timing helpers ----------------------------------------------------


class TickClock:
    """Deterministic perf_counter: advances by ``step`` per call."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        self.now += self.step
        return self.now


class TestTimingHelpers:
    def test_best_of_returns_result_and_best(self):
        clock = TickClock()
        timed = best_of(lambda: "payload", reps=3, clock=clock)
        assert timed.result == "payload"
        assert timed.best == pytest.approx(1.0)
        assert timed.mean == pytest.approx(1.0)

    def test_best_of_runs_setup_each_rep(self):
        calls = []
        best_of(lambda: calls.append("run"), reps=2,
                setup=lambda: calls.append("setup"), clock=TickClock())
        assert calls == ["setup", "run", "setup", "run"]

    def test_best_of_rejects_bad_reps(self):
        with pytest.raises(ConfigError):
            best_of(lambda: None, reps=0)

    def test_interleaved_alternates_runs(self):
        order = []
        runs = [lambda: order.append("a"), lambda: order.append("b")]
        timed = interleaved(runs, reps=2, warmup=False, clock=TickClock())
        assert order == ["a", "b", "a", "b"]
        assert len(timed) == 2
        assert all(t.best == pytest.approx(1.0) for t in timed)

    def test_interleaved_setups_pair_with_runs(self):
        order = []
        runs = [lambda: order.append("run-a"), lambda: order.append("run-b")]
        setups = [lambda: order.append("set-a"), lambda: order.append("set-b")]
        interleaved(runs, reps=1, setups=setups, warmup=False,
                    clock=TickClock())
        assert order == ["set-a", "run-a", "set-b", "run-b"]

    def test_interleaved_rejects_mismatched_setups(self):
        with pytest.raises(ConfigError):
            interleaved([lambda: None], reps=1, setups=[])
