"""Run every example end-to-end (each asserts its own correctness).

Protects the documentation from rot: an API change that breaks an example
breaks the suite.
"""

import importlib.util
import os
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")


def load_example(name):
    path = os.path.join(EXAMPLES_DIR, f"{name}.py")
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(autouse=True)
def quiet_stdout(capsys):
    yield
    capsys.readouterr()


def test_quickstart():
    load_example("quickstart").main()


def test_linear_solver_small():
    load_example("linear_solver").main(48)


def test_lp_production():
    load_example("lp_production").main()


def test_power_iteration_small():
    load_example("power_iteration").main(n=24, iters=50)


def test_least_squares_small():
    load_example("least_squares").main(samples=48, degree=4)


def test_signal_filter_small():
    load_example("signal_filter").main(N=256, keep_below=30)


def test_heat_adi_small():
    load_example("heat_adi").main(n=16, steps=6)


def test_every_example_has_a_test():
    examples = {
        f[:-3] for f in os.listdir(EXAMPLES_DIR)
        if f.endswith(".py") and not f.startswith("_")
    }
    tested = {
        name[len("test_"):].rsplit("_small", 1)[0]
        for name in globals()
        if name.startswith("test_") and name != "test_every_example_has_a_test"
    }
    assert examples <= tested, f"untested examples: {examples - tested}"
