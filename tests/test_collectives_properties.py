"""Hypothesis property tests for the subcube collectives.

Each collective is checked against a brute-force oracle over random cube
sizes, dimension subsets, payload shapes and operators — the invariants the
primitives' correctness rests on.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import comm
from repro.machine import CostModel, Hypercube


@st.composite
def cube_and_dims(draw, max_n=5):
    n = draw(st.integers(min_value=0, max_value=max_n))
    machine = Hypercube(n, CostModel.unit())
    k = draw(st.integers(min_value=0, max_value=n))
    dims = tuple(draw(st.permutations(range(n)))[:k])
    seed = draw(st.integers(min_value=0, max_value=2**31))
    return machine, dims, seed


def members(machine, pid, dims):
    mask = sum(1 << d for d in dims)
    return [q for q in range(machine.p) if (q & ~mask) == (pid & ~mask)]


@settings(max_examples=60, deadline=None)
@given(cube_and_dims(), st.sampled_from(["sum", "max", "min", "prod"]))
def test_reduce_all_oracle(case, opname):
    machine, dims, seed = case
    vals = np.random.default_rng(seed).standard_normal(machine.p)
    out = comm.reduce_all(machine, machine.pvar(vals), opname, dims=dims)
    op = comm.get_op(opname)
    for pid in range(machine.p):
        expect = vals[members(machine, pid, dims)]
        acc = expect[0]
        for v in expect[1:]:
            acc = op.ufunc(acc, v)
        assert np.isclose(out.data[pid], acc)


@settings(max_examples=60, deadline=None)
@given(cube_and_dims(), st.integers(min_value=0, max_value=31))
def test_broadcast_oracle(case, root_pick):
    machine, dims, seed = case
    root = root_pick % (1 << len(dims))
    vals = np.random.default_rng(seed).standard_normal(machine.p)
    out = comm.broadcast(machine, machine.pvar(vals), dims=dims,
                         root_rank=root)
    rank = comm.subcube_rank(machine, dims)
    for pid in range(machine.p):
        src = next(q for q in members(machine, pid, dims) if rank[q] == root)
        assert out.data[pid] == vals[src]


@settings(max_examples=60, deadline=None)
@given(cube_and_dims())
def test_scan_oracle(case):
    machine, dims, seed = case
    vals = np.random.default_rng(seed).standard_normal(machine.p)
    out = comm.scan(machine, machine.pvar(vals), "sum", dims=dims)
    rank = comm.subcube_rank(machine, dims)
    for pid in range(machine.p):
        lower = [q for q in members(machine, pid, dims) if rank[q] < rank[pid]]
        assert np.isclose(out.data[pid], vals[lower].sum() if lower else 0.0)


@settings(max_examples=40, deadline=None)
@given(cube_and_dims())
def test_scan_reduce_consistency(case):
    """inclusive scan at the top rank == all-reduce: the defining relation."""
    machine, dims, seed = case
    vals = np.random.default_rng(seed).standard_normal(machine.p)
    scanned = comm.scan(machine, machine.pvar(vals), "sum", dims=dims,
                        inclusive=True)
    reduced = comm.reduce_all(machine, machine.pvar(vals), "sum", dims=dims)
    rank = comm.subcube_rank(machine, dims)
    top = (1 << len(dims)) - 1
    for pid in range(machine.p):
        if rank[pid] == top:
            assert np.isclose(scanned.data[pid], reduced.data[pid])


@settings(max_examples=40, deadline=None)
@given(cube_and_dims())
def test_gather_scatter_round_trip(case):
    machine, dims, seed = case
    vals = np.random.default_rng(seed).standard_normal((machine.p, 2))
    gathered = comm.allgather(machine, machine.pvar(vals), dims=dims)
    back = comm.scatter(machine, gathered, dims=dims)
    assert np.allclose(back.data, vals)


@settings(max_examples=40, deadline=None)
@given(cube_and_dims(), st.sampled_from(["max", "min"]))
def test_reduce_all_loc_oracle(case, mode):
    machine, dims, seed = case
    rng = np.random.default_rng(seed)
    vals = rng.integers(0, 4, machine.p).astype(float)  # force ties
    idx = np.arange(machine.p)
    v, i = comm.reduce_all_loc(
        machine, machine.pvar(vals), machine.pvar(idx), dims=dims, mode=mode
    )
    for pid in range(machine.p):
        group = members(machine, pid, dims)
        gvals = vals[group]
        best = gvals.max() if mode == "max" else gvals.min()
        winner = min(q for q in group if vals[q] == best)
        assert v.data[pid] == best
        assert i.data[pid] == winner


@settings(max_examples=40, deadline=None)
@given(cube_and_dims())
def test_collectives_charge_monotone_time(case):
    machine, dims, seed = case
    vals = np.random.default_rng(seed).standard_normal(machine.p)
    pv = machine.pvar(vals)
    last = machine.counters.time
    for fn in (
        lambda: comm.reduce_all(machine, pv, "sum", dims=dims),
        lambda: comm.broadcast(machine, pv, dims=dims),
        lambda: comm.scan(machine, pv, "sum", dims=dims),
        lambda: comm.allgather(machine, pv, dims=dims),
    ):
        fn()
        assert machine.counters.time >= last
        last = machine.counters.time


@settings(max_examples=40, deadline=None)
@given(cube_and_dims())
def test_round_counts_equal_dim_count(case):
    """Every one-shot collective uses exactly |dims| exchange rounds."""
    machine, dims, seed = case
    pv = machine.pvar(np.zeros(machine.p))
    for fn in (
        lambda: comm.reduce_all(machine, pv, "sum", dims=dims),
        lambda: comm.broadcast(machine, pv, dims=dims),
        lambda: comm.scan(machine, pv, "sum", dims=dims),
    ):
        r0 = machine.counters.comm_rounds
        fn()
        assert machine.counters.comm_rounds - r0 == len(dims)
