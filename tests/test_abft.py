"""Unit tests for the ABFT checksum layer (``repro.abft``).

Covers the checksum-panel math (property-tested across dtypes), the
manager protocol (protect/guard/correct/escalate/scrub/evict, all charged
on the simulated clock), session wiring and reporting, wire retransmits,
and the ABFT-off bit-identity guarantee (a run without the checksum layer
must be indistinguishable — tick for tick — from a build that never
imports ``repro.abft``).
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import CorruptionError, Session
from repro.abft import (
    ABFTManager,
    ABFTMatrix,
    ABFTVector,
    byte_view,
    checksum_panels,
    correct_single,
    locate,
)
from repro.errors import ConfigError
from repro.faults import FaultPlan
from repro.faults.plan import LinkCorrupt
from repro.machine import CostModel, Hypercube, PVar


# ---------------------------------------------------------------------------
# checksum panel math
# ---------------------------------------------------------------------------

_DTYPES = (np.float64, np.int64, np.complex128)


@st.composite
def _blocks(draw):
    p = draw(st.sampled_from([2, 4, 8]))
    k = draw(st.integers(1, 6))
    dtype = draw(st.sampled_from(_DTYPES))
    values = draw(
        st.lists(
            st.integers(-100, 100), min_size=p * k, max_size=p * k
        )
    )
    return np.array(values, dtype=dtype).reshape(p, k)


class TestPanels:
    @given(_blocks())
    @settings(max_examples=60, deadline=None)
    def test_clean_block_locates_clean(self, data):
        col, row = checksum_panels(data)
        assert col.shape == (data.shape[0],)
        assert row.shape == (byte_view(data).shape[1],)
        assert locate(data, col, row) == ("clean", None)

    @given(_blocks(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_single_byte_corruption_is_located_and_corrected(self, data, dd):
        col, row = checksum_panels(data)
        u8 = byte_view(data)
        pid = dd.draw(st.integers(0, u8.shape[0] - 1))
        slot = dd.draw(st.integers(0, u8.shape[1] - 1))
        mask = dd.draw(st.integers(1, 255))
        corrupted = np.array(data)
        cu8 = byte_view(corrupted)
        cu8[pid, slot] ^= np.uint8(mask)

        status, info = locate(corrupted, col, row)
        assert status == "single"
        assert info[0] == pid and info[1] == slot
        fixed = correct_single(corrupted, *info)
        assert fixed.dtype == data.dtype
        assert np.array_equal(
            fixed.view(np.uint8), np.asarray(data).view(np.uint8)
        )

    @given(_blocks(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_two_byte_corruption_escalates_to_multi(self, data, dd):
        u8 = byte_view(data)
        if u8.shape[1] < 2 and u8.shape[0] < 2:
            return  # cannot place two distinct corrupt bytes
        col, row = checksum_panels(data)
        corrupted = np.array(data)
        cu8 = byte_view(corrupted)
        pid_a = dd.draw(st.integers(0, u8.shape[0] - 1))
        slot_a = dd.draw(st.integers(0, u8.shape[1] - 1))
        # Second corruption at a different (pid, slot).
        if u8.shape[1] >= 2:
            pid_b, slot_b = pid_a, (slot_a + 1) % u8.shape[1]
        else:
            pid_b, slot_b = (pid_a + 1) % u8.shape[0], slot_a
        cu8[pid_a, slot_a] ^= np.uint8(0x40)
        cu8[pid_b, slot_b] ^= np.uint8(0x08)
        status, _ = locate(corrupted, col, row)
        assert status == "multi"

    def test_panels_cover_every_dtype_byte_for_byte(self):
        for dtype in (np.float64, np.float32, np.int32, np.complex128):
            data = np.arange(16, dtype=dtype).reshape(4, 4)
            col, row = checksum_panels(data)
            assert locate(data, col, row) == ("clean", None)


# ---------------------------------------------------------------------------
# manager protocol
# ---------------------------------------------------------------------------


def _flip_byte(pv, pid=0, slot=0, mask=0x20):
    """Corrupt one stored byte copy-on-corrupt style (like the injector)."""
    data = np.array(pv.data)
    u8 = data.reshape(pv.data.shape[0], -1).view(np.uint8)
    u8[pid, slot % u8.shape[1]] ^= np.uint8(mask)
    pv.data = data


class TestManager:
    def test_rejects_bad_config(self):
        with pytest.raises(ConfigError):
            ABFTManager(keep=0)
        with pytest.raises(ConfigError):
            ABFTManager(scrub_interval=-1)

    def test_protect_and_guard_charge_simulated_time(self):
        plain = Session(3, "unit")
        t_plain = (plain.vector(np.ones(8)) + plain.vector(np.ones(8))).machine
        plain_time = plain.time

        s = Session(3, "unit", abft=True)
        v = s.vector(np.ones(8))
        t0 = s.time
        assert t0 > 0.0, "protection must cost simulated time"
        (v + v)
        assert s.time > t0, "guards must cost simulated time"
        assert s.time > plain_time
        assert s.abft.stats.protected >= 2
        assert s.abft.stats.verifies >= 1
        del t_plain

    def test_single_corruption_is_corrected_through_a_guard(self):
        s = Session(2, "unit", abft=True)
        v = s.vector(np.arange(8, dtype=np.float64))
        _flip_byte(v.pvar, pid=1, slot=2, mask=0x80)
        got = (v + 0.0).to_numpy()
        np.testing.assert_array_equal(got, np.arange(8, dtype=np.float64))
        assert s.machine.counters.abft_detected == 1
        assert s.machine.counters.abft_corrected == 1
        assert s.abft.stats.corrected == 1

    def test_multi_corruption_raises_corruption_error(self):
        s = Session(2, "unit", abft=True)
        v = s.vector(np.arange(8, dtype=np.float64))
        _flip_byte(v.pvar, pid=1, slot=2, mask=0x80)
        _flip_byte(v.pvar, pid=3, slot=5, mask=0x01)
        with pytest.raises(CorruptionError, match="multiple corrupted"):
            v + 0.0
        assert s.abft.stats.uncorrectable == 1
        assert s.machine.counters.abft_detected == 1
        assert s.machine.counters.abft_corrected == 0

    def test_scrub_sweeps_idle_blocks(self):
        s = Session(2, "unit", abft=True)
        v = s.vector(np.arange(8, dtype=np.float64))
        _flip_byte(v.pvar, pid=0, slot=1)
        t0 = s.time
        swept = s.abft.scrub()
        assert swept >= 1
        assert s.time > t0, "scrubbing must cost simulated time"
        assert s.abft.stats.scrubs == 1
        assert s.machine.counters.abft_corrected == 1
        # the block was repaired in place
        np.testing.assert_array_equal(
            v.to_numpy(), np.arange(8, dtype=np.float64)
        )

    def test_eviction_guards_the_retiree(self):
        s = Session(2, "unit", abft=ABFTManager(keep=2))
        vs = [s.vector(np.full(4, float(i))) for i in range(4)]
        assert s.abft.stats.evictions >= 2
        # an evicted block is no longer guarded...
        assert len(s.abft.protected_pvars()) == 2
        # ...but was verified clean on the way out (no false detections)
        assert s.machine.counters.abft_detected == 0
        del vs

    def test_corrupt_evictee_is_still_caught(self):
        s = Session(2, "unit", abft=ABFTManager(keep=2))
        v0 = s.vector(np.zeros(4))
        _flip_byte(v0.pvar, pid=1, slot=0)
        s.vector(np.zeros(4))
        s.vector(np.zeros(4))  # evicts v0 -> guard-on-evict corrects it
        assert s.machine.counters.abft_corrected == 1

    def test_reset_forgets_the_registry(self):
        s = Session(2, "unit", abft=True)
        s.vector(np.zeros(4))
        assert s.abft.protected_pvars()
        s.abft.reset()
        assert not s.abft.protected_pvars()

    def test_wire_corruption_is_retransmitted_not_delivered(self):
        plan = FaultPlan([LinkCorrupt(0.0, dim=1, pid=0, slot=0, bit=5)])
        s = Session(2, "unit", faults=plan, abft=True)
        m = s.machine
        pv = PVar(m, np.arange(2 * m.p, dtype=np.float64).reshape(m.p, 2))
        out = m.exchange(pv, dim=1)
        # delivered block is the clean neighbour image
        np.testing.assert_array_equal(out.data, pv.data[[2, 3, 0, 1]])
        assert s.abft.stats.wire_retransmits == 1
        assert s.faults.stats.link_corruptions == 1
        assert m.counters.abft_detected == 1

    def test_wire_checksum_word_is_charged(self):
        def exchange_volume(abft):
            s = Session(2, "unit", abft=abft)
            m = s.machine
            pv = PVar(m, np.zeros((m.p, 4)))
            before = m.counters.elements_transferred
            m.exchange(pv, dim=0)
            return m.counters.elements_transferred - before

        # one extra checksum word per processor's block (p = 4)
        assert exchange_volume(True) == exchange_volume(False) + 4


# ---------------------------------------------------------------------------
# session wiring / reporting
# ---------------------------------------------------------------------------


class TestSessionWiring:
    def test_abft_true_builds_a_manager(self):
        s = Session(2, abft=True)
        assert isinstance(s.abft, ABFTManager)
        assert s.machine.abft is s.abft

    def test_abft_instance_is_used_verbatim(self):
        mgr = ABFTManager(keep=7, scrub_interval=3)
        s = Session(2, abft=mgr)
        assert s.abft is mgr

    def test_arrays_are_checksum_embedded(self):
        from repro.core.arrays import iota

        s = Session(2, abft=True)
        A = s.matrix(np.zeros((4, 4)))
        v = s.vector(np.zeros(4))
        assert isinstance(A, ABFTMatrix)
        assert isinstance(v, ABFTVector)
        assert isinstance(A.extract(axis=0, index=0), ABFTVector)
        assert isinstance(iota(v.embedding), ABFTVector)

    def test_simplex_resolves_the_checksummed_matrix(self):
        from repro.algorithms import simplex
        from repro import workloads as W

        lp = W.feasible_lp(4, 6, seed=0)
        s = Session(3, abft=True)
        res = simplex.solve(s.machine, lp.A, lp.b, lp.c)
        assert res.status == "optimal"
        assert s.abft.stats.protected > 0

    def test_report_includes_abft_line(self):
        s = Session(2, abft=True)
        s.vector(np.zeros(4))
        text = s.report()
        assert "abft" in text
        data = s.report_data()
        assert data["abft"]["protected"] >= 1
        for key in ("detected", "corrected", "recomputed", "scrubs"):
            assert key in data["abft"]

    def test_no_abft_means_no_report_section(self):
        s = Session(2)
        assert "abft" not in s.report_data()
        assert s.abft is None


# ---------------------------------------------------------------------------
# ABFT-off bit-identity
# ---------------------------------------------------------------------------

_BASELINE_SNIPPET = """
import json
import numpy as np
import sys

from repro import Session

s = Session(4, "cm2")
rng = np.random.default_rng(2024)
A = s.matrix(rng.standard_normal((24, 16)))
v = s.col_vector(rng.standard_normal(24), A)
row = A.extract(axis=0, index=3)
A2 = A.insert(axis=0, index=20, vector=row)
sums = A2.reduce(axis=1, op="sum")
y = A.vecmat(v)
c = s.machine.counters
print(json.dumps({
    "time": c.time,
    "flops": c.flops,
    "elements": c.elements_transferred,
    "rounds": c.comm_rounds,
    "local": c.local_moves,
    "abft_imported": "repro.abft" in sys.modules,
}))
"""


class TestAbftOffBitIdentity:
    def test_abft_off_never_imports_the_module_and_costs_match(self):
        """Without ``abft=``, a run is identical to one that cannot even
        see ``repro.abft`` — same ticks, same counters, module not loaded."""
        src = str(Path(__file__).resolve().parent.parent / "src")
        out = subprocess.run(
            [sys.executable, "-c", _BASELINE_SNIPPET],
            capture_output=True, text=True, check=True,
            env={"PYTHONPATH": src, "PATH": "/usr/bin:/bin"},
        )
        sub = json.loads(out.stdout)
        assert sub["abft_imported"] is False

        # same workload in-process (repro.abft IS imported by this test
        # module) — counters must match the abft-less subprocess exactly
        s = Session(4, "cm2")
        rng = np.random.default_rng(2024)
        A = s.matrix(rng.standard_normal((24, 16)))
        v = s.col_vector(rng.standard_normal(24), A)
        row = A.extract(axis=0, index=3)
        A2 = A.insert(axis=0, index=20, vector=row)
        A2.reduce(axis=1, op="sum")
        A.vecmat(v)
        c = s.machine.counters
        assert c.time == sub["time"]
        assert c.flops == sub["flops"]
        assert c.elements_transferred == sub["elements"]
        assert c.comm_rounds == sub["rounds"]
        assert c.local_moves == sub["local"]

    def test_abft_counters_stay_out_of_cost_snapshots(self):
        """Observability counters must not leak into the cost record."""
        from repro.machine.counters import CostSnapshot
        from dataclasses import fields

        names = {f.name for f in fields(CostSnapshot)}
        assert not any(n.startswith("abft_") for n in names)

    def test_degrade_rebinds_and_clears_the_registry(self):
        s = Session(3, "unit", abft=True)
        s.vector(np.zeros(8))
        assert s.abft.protected_pvars()
        s.machine.kill_node(1)
        new_machine = s.degrade()
        assert s.machine is new_machine
        assert new_machine.abft is s.abft
        assert not s.abft.protected_pvars(), "old-machine panels are stale"
