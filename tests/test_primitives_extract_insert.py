"""Unit tests for the extract and insert primitives (S10)."""

import numpy as np
import pytest

from repro.core import primitives as P
from repro.embeddings import (
    ColAlignedEmbedding,
    MatrixEmbedding,
    RowAlignedEmbedding,
    VectorOrderEmbedding,
)
from repro.machine import CostModel, Hypercube


@pytest.fixture
def m():
    return Hypercube(4, CostModel.unit())


@pytest.fixture
def emb(m):
    return MatrixEmbedding(m, 9, 13, row_dims=(0, 1), col_dims=(2, 3))


@pytest.fixture
def A(rng):
    return rng.standard_normal((9, 13))


@pytest.fixture
def M(emb, A):
    return emb.scatter(A)


class TestExtract:
    @pytest.mark.parametrize("i", [0, 4, 8])
    def test_row(self, M, emb, A, i):
        v, ve = P.extract(M, emb, axis=0, index=i)
        assert isinstance(ve, RowAlignedEmbedding)
        assert ve.replicated
        assert np.allclose(ve.gather(v), A[i, :])

    @pytest.mark.parametrize("j", [0, 7, 12])
    def test_column(self, M, emb, A, j):
        v, ve = P.extract(M, emb, axis=1, index=j)
        assert isinstance(ve, ColAlignedEmbedding)
        assert np.allclose(ve.gather(v), A[:, j])

    def test_no_replicate_stays_resident(self, M, emb, A):
        v, ve = P.extract(M, emb, axis=0, index=5, replicate=False)
        assert not ve.replicated
        assert ve.resident == int(emb.row_layout.owner(5))
        assert np.allclose(ve.gather(v), A[5, :])

    def test_replicated_copy_on_every_band(self, M, emb, A):
        v, ve = P.extract(M, emb, axis=1, index=3)
        mask = ve.valid_mask()
        idx = ve.global_indices()
        assert np.allclose(v.data[mask], A[:, 3][idx[mask]])

    def test_out_of_range(self, M, emb):
        with pytest.raises(IndexError):
            P.extract(M, emb, axis=0, index=9)
        with pytest.raises(IndexError):
            P.extract(M, emb, axis=1, index=-1)

    def test_bad_axis(self, M, emb):
        with pytest.raises(ValueError, match="axis"):
            P.extract(M, emb, axis=2, index=0)

    def test_cost_no_replicate_is_one_local_pass(self, m, M, emb):
        t0 = m.counters.time
        P.extract(M, emb, axis=0, index=0, replicate=False)
        lc = emb.local_shape[1]
        assert m.counters.time - t0 == lc  # unit t_m

    def test_cost_replicate_adds_lg_rounds(self, M, emb):
        m2 = Hypercube(4, CostModel(tau=100, t_c=2, t_a=1, t_m=1))
        emb2 = MatrixEmbedding(m2, 9, 13, row_dims=(0, 1), col_dims=(2, 3))
        M2 = emb2.scatter(np.zeros((9, 13)))
        t0 = m2.counters.time
        P.extract(M2, emb2, axis=0, index=0)
        lc = emb2.local_shape[1]
        assert m2.counters.time - t0 == lc + 2 * (100 + 2 * lc)

    def test_extract_is_communication_free_along_slice(self, m, M, emb):
        """Replication crosses only the orthogonal dims, never the slice."""
        r0 = m.counters.comm_rounds
        P.extract(M, emb, axis=0, index=2)
        assert m.counters.comm_rounds - r0 == len(emb.row_dims)


class TestInsert:
    def test_row_with_replicated_vector(self, M, emb, A, rng):
        w = rng.standard_normal(13)
        we = RowAlignedEmbedding(emb, None)
        out = P.insert(M, emb, axis=0, index=2, vec=we.scatter(w), vec_emb=we)
        expect = A.copy()
        expect[2, :] = w
        assert np.allclose(emb.gather(out), expect)

    def test_column_with_replicated_vector(self, M, emb, A, rng):
        u = rng.standard_normal(9)
        ue = ColAlignedEmbedding(emb, None)
        out = P.insert(M, emb, axis=1, index=11, vec=ue.scatter(u), vec_emb=ue)
        expect = A.copy()
        expect[:, 11] = u
        assert np.allclose(emb.gather(out), expect)

    def test_functional_not_in_place(self, M, emb, A, rng):
        we = RowAlignedEmbedding(emb, None)
        P.insert(M, emb, 0, 0, we.scatter(rng.standard_normal(13)), we)
        assert np.allclose(emb.gather(M), A)  # original untouched

    def test_vector_order_source_triggers_embedding_change(self, m, M, emb, A, rng):
        w = rng.standard_normal(13)
        we = VectorOrderEmbedding(m, 13)
        t0 = m.counters.elements_transferred
        out = P.insert(M, emb, axis=0, index=7, vec=we.scatter(w), vec_emb=we)
        expect = A.copy()
        expect[7, :] = w
        assert np.allclose(emb.gather(out), expect)
        assert m.counters.elements_transferred > t0  # a remap happened

    def test_resident_in_wrong_band_remaps(self, M, emb, A, rng):
        w = rng.standard_normal(13)
        owner = int(emb.row_layout.owner(0))
        wrong = (owner + 1) % emb.Pr
        we = RowAlignedEmbedding(emb, wrong)
        out = P.insert(M, emb, axis=0, index=0, vec=we.scatter(w), vec_emb=we)
        expect = A.copy()
        expect[0, :] = w
        assert np.allclose(emb.gather(out), expect)

    def test_resident_in_right_band_no_motion(self, m, M, emb, A, rng):
        w = rng.standard_normal(13)
        owner = int(emb.row_layout.owner(4))
        we = RowAlignedEmbedding(emb, owner)
        e0 = m.counters.elements_transferred
        out = P.insert(M, emb, axis=0, index=4, vec=we.scatter(w), vec_emb=we)
        assert m.counters.elements_transferred == e0
        expect = A.copy()
        expect[4, :] = w
        assert np.allclose(emb.gather(out), expect)

    def test_length_mismatch(self, m, M, emb):
        we = VectorOrderEmbedding(m, 9)  # wrong length for a row
        with pytest.raises(ValueError, match="length"):
            P.insert(M, emb, axis=0, index=0, vec=we.scatter(np.zeros(9)), vec_emb=we)

    def test_extract_insert_round_trip(self, M, emb, A):
        v, ve = P.extract(M, emb, axis=1, index=5)
        out = P.insert(M, emb, axis=1, index=5, vec=v, vec_emb=ve)
        assert np.allclose(emb.gather(out), A)
