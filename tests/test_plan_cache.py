"""Golden equivalence of the communication plan cache.

The cache accelerates wall-clock simulation only: with the cache enabled,
simulated ticks, every :class:`CostSnapshot` field and every functional
result must be *bit-identical* to the cache-disabled run.  These tests pin
that invariant on the iterative solvers and on a remap-heavy loop, and
cover the cache's lifecycle: per-machine invalidation, the environment
kill-switch, LRU eviction and the observability counters.
"""

import numpy as np
import pytest

from repro import Session, workloads as W
from repro.algorithms import gaussian, simplex
from repro.core import DistributedMatrix, DistributedVector
from repro.embeddings import (
    ColAlignedEmbedding,
    MatrixEmbedding,
    RowAlignedEmbedding,
    VectorOrderEmbedding,
    remap_vector,
    transpose,
)
from repro.embeddings.remap import redistribute_matrix
from repro.machine import CostModel, Hypercube
from repro.machine.plans import MISSING, PlanCache


SNAPSHOT_FIELDS = ("time", "flops", "elements_transferred", "comm_rounds",
                   "local_moves")


def assert_snapshots_identical(snap_on, snap_off):
    for field in SNAPSHOT_FIELDS:
        on, off = getattr(snap_on, field), getattr(snap_off, field)
        assert on == off, f"CostSnapshot.{field}: cache-on {on} != cache-off {off}"


def run_gaussian(plan_cache):
    A, b, _ = W.diagonally_dominant_system(31, seed=7)
    s = Session(6, plan_cache=plan_cache)
    res = gaussian.solve(s.matrix(A), b)
    return s.snapshot(), res.x, s


def run_simplex(plan_cache):
    lp = W.feasible_lp(16, 12, seed=3)
    s = Session(6, plan_cache=plan_cache)
    res = simplex.solve(s.machine, lp.A, lp.b, lp.c)
    return s.snapshot(), res.x, s


def run_remap_loop(plan_cache):
    """A remap-heavy loop: band walk + order changes + transpose/redistribute."""
    machine = Hypercube(6, CostModel.cm2(), plan_cache=plan_cache)
    emb = MatrixEmbedding.default(machine, 24, 24)
    A = W.dense_matrix(24, 24, seed=5)
    M = emb.scatter(A)
    v_h = W.dense_vector(24, seed=6)
    outputs = []
    for _ in range(3):
        # vector order -> row aligned -> column bands
        vo = VectorOrderEmbedding(machine, 24)
        pv = vo.scatter(v_h)
        row = RowAlignedEmbedding(emb, None)
        pv = remap_vector(pv, vo, row)
        cur = ColAlignedEmbedding(emb, 0)
        pc = cur.scatter(v_h)
        for band in range(1, emb.Pc):
            nxt = ColAlignedEmbedding(emb, band)
            pc = remap_vector(pc, cur, nxt)
            cur = nxt
        # embedding changes of the matrix itself
        Mt, emb_t = transpose(M, emb)
        M2 = redistribute_matrix(Mt, emb_t, emb_t)
        alt = MatrixEmbedding(
            machine, 24, 24,
            row_dims=emb.col_dims, col_dims=emb.row_dims,
        )
        M3 = redistribute_matrix(M2, emb_t, alt)
        outputs.append((pv.data.copy(), pc.data.copy(), M3.data.copy()))
    return machine.snapshot(), outputs, machine


@pytest.mark.parametrize("runner", [run_gaussian, run_simplex],
                         ids=["gaussian", "simplex"])
def test_solvers_bit_identical(runner):
    snap_on, x_on, s_on = runner(plan_cache=True)
    snap_off, x_off, s_off = runner(plan_cache=False)
    assert_snapshots_identical(snap_on, snap_off)
    assert np.array_equal(x_on, x_off)
    # the enabled run actually exercised the cache; the disabled one didn't
    assert s_on.machine.plans.hits > 0
    assert s_off.machine.plans.hits == 0 and s_off.machine.plans.misses == 0
    assert len(s_off.machine.plans) == 0


def test_remap_loop_bit_identical():
    snap_on, out_on, m_on = run_remap_loop(plan_cache=True)
    snap_off, out_off, m_off = run_remap_loop(plan_cache=False)
    assert_snapshots_identical(snap_on, snap_off)
    for (a_on, b_on, c_on), (a_off, b_off, c_off) in zip(out_on, out_off):
        assert np.array_equal(a_on, a_off)
        assert np.array_equal(b_on, b_off)
        assert np.array_equal(c_on, c_off)
    # iterations 2 and 3 replay iteration 1's plans
    assert m_on.plans.hits > m_on.plans.misses


def test_repeated_solves_hit_cache():
    A, b, _ = W.diagonally_dominant_system(31, seed=9)
    s = Session(6, plan_cache=True)
    gaussian.solve(s.matrix(A), b)
    first = (s.machine.plans.hits, s.machine.plans.misses)
    gaussian.solve(s.matrix(A), b)
    second_misses = s.machine.plans.misses - first[1]
    # a second identical solve constructs no new plans
    assert second_misses == 0
    assert s.machine.plans.hits > first[0]


def test_fresh_machine_fresh_cache():
    """Plans never leak across machines or cost models."""
    m1 = Hypercube(4, CostModel.cm2(), plan_cache=True)
    emb = MatrixEmbedding.default(m1, 8, 8)
    M = emb.scatter(W.dense_matrix(8, 8, seed=1))
    transpose(M, emb)
    assert len(m1.plans) > 0

    m2 = Hypercube(4, CostModel.cm2(), plan_cache=True)
    assert len(m2.plans) == 0
    assert m2.plans.hits == 0 and m2.plans.misses == 0
    assert m2.plans is not m1.plans

    # a machine with a different cost model starts cold too, and replaying
    # the same workload charges per its own model, untouched by m1's cache
    m3 = Hypercube(4, CostModel.unit(), plan_cache=True)
    assert len(m3.plans) == 0
    emb3 = MatrixEmbedding.default(m3, 8, 8)
    M3 = emb3.scatter(W.dense_matrix(8, 8, seed=1))
    transpose(M3, emb3)
    m4 = Hypercube(4, CostModel.unit(), plan_cache=False)
    emb4 = MatrixEmbedding.default(m4, 8, 8)
    M4 = emb4.scatter(W.dense_matrix(8, 8, seed=1))
    transpose(M4, emb4)
    assert_snapshots_identical(m3.snapshot(), m4.snapshot())


def test_env_var_disables_cache(monkeypatch):
    monkeypatch.setenv("REPRO_PLAN_CACHE", "0")
    s = Session(4)
    assert not s.machine.plans.enabled
    # explicit opt-in overrides the environment
    s2 = Session(4, plan_cache=True)
    assert s2.machine.plans.enabled
    monkeypatch.setenv("REPRO_PLAN_CACHE", "off")
    assert not Hypercube(4).plans.enabled
    monkeypatch.delenv("REPRO_PLAN_CACHE")
    assert Hypercube(4).plans.enabled


def test_disabled_cache_stores_nothing():
    cache = PlanCache(Hypercube(2, plan_cache=False), enabled=False)
    assert cache.lookup("k") is MISSING
    calls = []
    assert cache.memo("k", lambda: calls.append(1) or 42) == 42
    assert cache.memo("k", lambda: calls.append(1) or 42) == 42
    assert len(calls) == 2  # recomputed every call
    assert len(cache) == 0


def test_lru_eviction():
    machine = Hypercube(2, plan_cache=True)
    cache = PlanCache(machine, maxsize=2, enabled=True)
    cache.store("a", 1)
    cache.store("b", 2)
    cache.lookup("a")  # refresh "a"
    cache.store("c", 3)  # evicts "b", the least recently used
    assert cache.lookup("b") is MISSING
    assert cache.lookup("a") == 1
    assert cache.lookup("c") == 3
    assert cache.evictions == 1


def test_report_mentions_plan_cache():
    s = Session(4, plan_cache=True)
    A, b, _ = W.diagonally_dominant_system(7, seed=2)
    gaussian.solve(s.matrix(A), b)
    assert "plan cache" in s.report()
    s_off = Session(4, plan_cache=False)
    assert "plan cache        : disabled" in s_off.report()


def test_plan_stats_on_counters():
    s = Session(4, plan_cache=True)
    A, b, _ = W.diagonally_dominant_system(7, seed=2)
    gaussian.solve(s.matrix(A), b)
    stats = s.machine.counters.plan_stats()
    assert stats["hits"] == s.machine.plans.hits > 0
    assert stats["misses"] == s.machine.plans.misses > 0
    # observability resets with the counters, like every other statistic
    s.reset_counters()
    assert s.machine.plans.hits == 0
