"""Unit + property tests for the balanced 1-D layouts (S5)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.embeddings import BlockLayout, CyclicLayout, make_layout

layout_cases = st.tuples(
    st.integers(min_value=0, max_value=200),   # n
    st.integers(min_value=1, max_value=32),    # parts
    st.sampled_from(["block", "cyclic"]),
)


class TestConstruction:
    def test_factory(self):
        assert isinstance(make_layout("block", 10, 4), BlockLayout)
        assert isinstance(make_layout("cyclic", 10, 4), CyclicLayout)

    def test_factory_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown layout kind"):
            make_layout("striped", 10, 4)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            BlockLayout(-1, 4)
        with pytest.raises(ValueError):
            CyclicLayout(10, 0)

    def test_capacity_is_ceil(self):
        assert BlockLayout(10, 4).capacity == 3
        assert CyclicLayout(10, 4).capacity == 3
        assert BlockLayout(8, 4).capacity == 2
        assert BlockLayout(0, 4).capacity == 0

    def test_equality_and_hash(self):
        assert BlockLayout(10, 4) == BlockLayout(10, 4)
        assert BlockLayout(10, 4) != CyclicLayout(10, 4)
        assert BlockLayout(10, 4) != BlockLayout(11, 4)
        assert hash(BlockLayout(10, 4)) == hash(BlockLayout(10, 4))


class TestBlockSemantics:
    def test_consecutive_runs(self):
        lay = BlockLayout(10, 4)  # sizes 3,3,2,2
        assert [int(lay.owner(g)) for g in range(10)] == [0, 0, 0, 1, 1, 1, 2, 2, 3, 3]

    def test_slots_are_offsets_within_run(self):
        lay = BlockLayout(10, 4)
        assert [int(lay.slot(g)) for g in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_counts(self):
        lay = BlockLayout(10, 4)
        assert [int(lay.count(q)) for q in range(4)] == [3, 3, 2, 2]

    def test_offsets(self):
        lay = BlockLayout(10, 4)
        assert [int(lay.offset(q)) for q in range(4)] == [0, 3, 6, 8]

    def test_out_of_range_global(self):
        lay = BlockLayout(10, 4)
        with pytest.raises(IndexError):
            lay.owner(10)
        with pytest.raises(IndexError):
            lay.slot(np.array([0, -1]))


class TestCyclicSemantics:
    def test_round_robin(self):
        lay = CyclicLayout(10, 4)
        assert [int(lay.owner(g)) for g in range(10)] == [0, 1, 2, 3, 0, 1, 2, 3, 0, 1]

    def test_slots_count_cycles(self):
        lay = CyclicLayout(10, 4)
        assert [int(lay.slot(g)) for g in range(10)] == [0, 0, 0, 0, 1, 1, 1, 1, 2, 2]

    def test_counts(self):
        lay = CyclicLayout(10, 4)
        assert [int(lay.count(q)) for q in range(4)] == [3, 3, 2, 2]

    def test_out_of_range(self):
        with pytest.raises(IndexError):
            CyclicLayout(5, 2).owner(5)


class TestSharedInvariants:
    @given(layout_cases)
    def test_round_trip_owner_slot_global(self, case):
        n, parts, kind = case
        lay = make_layout(kind, n, parts)
        for g in range(n):
            part, slot = lay.owner_slot(g)
            assert 0 <= part < parts
            assert 0 <= slot < lay.capacity
            assert lay.global_index(part, slot) == g

    @given(layout_cases)
    def test_load_balance(self, case):
        n, parts, kind = case
        lay = make_layout(kind, n, parts)
        counts = np.asarray(lay.count(np.arange(parts)))
        assert counts.sum() == n
        assert lay.is_balanced()
        if n:
            assert counts.max() - counts.min() <= 1

    @given(layout_cases)
    def test_valid_masks_match_counts(self, case):
        n, parts, kind = case
        lay = make_layout(kind, n, parts)
        masks = lay.all_valid_masks()
        assert masks.shape == (parts, lay.capacity)
        assert np.array_equal(
            masks.sum(axis=1), np.asarray(lay.count(np.arange(parts)))
        )

    @given(layout_cases)
    def test_all_global_indices_consistent(self, case):
        n, parts, kind = case
        lay = make_layout(kind, n, parts)
        table = lay.all_global_indices()
        masks = lay.all_valid_masks()
        seen = set()
        for part in range(parts):
            for slot in range(lay.capacity):
                g = table[part, slot]
                if masks[part, slot]:
                    assert lay.owner(g) == part and lay.slot(g) == slot
                    seen.add(int(g))
                else:
                    assert 0 <= g < max(n, 1)  # clamped padding stays in range
        assert seen == set(range(n))

    @given(layout_cases)
    def test_vectorised_matches_scalar(self, case):
        n, parts, kind = case
        if n == 0:
            return
        lay = make_layout(kind, n, parts)
        gs = np.arange(n)
        owners = np.asarray(lay.owner(gs))
        slots = np.asarray(lay.slot(gs))
        for g in range(n):
            assert owners[g] == lay.owner(g)
            assert slots[g] == lay.slot(g)


class TestBlockCyclic:
    def test_factory_with_block_size(self):
        from repro.embeddings import BlockCyclicLayout
        lay = make_layout("block_cyclic:3", 20, 4)
        assert isinstance(lay, BlockCyclicLayout)
        assert lay.block == 3
        assert make_layout("block_cyclic", 20, 4).block == 2

    def test_bad_block_size(self):
        with pytest.raises(ValueError, match="block size"):
            make_layout("block_cyclic:x", 10, 2)
        from repro.embeddings import BlockCyclicLayout
        with pytest.raises(ValueError, match="block size"):
            BlockCyclicLayout(10, 2, block=0)

    def test_deal_pattern(self):
        lay = make_layout("block_cyclic:2", 12, 3)
        # blocks [0,1][2,3][4,5][6,7][8,9][10,11] dealt to parts 0,1,2,0,1,2
        assert [int(lay.owner(g)) for g in range(12)] == [
            0, 0, 1, 1, 2, 2, 0, 0, 1, 1, 2, 2
        ]

    def test_slots_pack_contiguously(self):
        lay = make_layout("block_cyclic:2", 12, 3)
        assert [int(lay.slot(g)) for g in (0, 1, 6, 7)] == [0, 1, 2, 3]

    def test_block_one_equals_cyclic(self):
        a = make_layout("block_cyclic:1", 17, 4)
        b = make_layout("cyclic", 17, 4)
        for g in range(17):
            assert a.owner(g) == b.owner(g)
            assert a.slot(g) == b.slot(g)

    def test_huge_block_equals_block_ownership(self):
        a = make_layout("block_cyclic:100", 17, 4)
        for g in range(17):
            assert a.owner(g) == 0  # everything in the first (only) block

    @given(st.tuples(
        st.integers(min_value=0, max_value=120),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=7),
    ))
    def test_invariants(self, case):
        n, parts, block = case
        lay = make_layout(f"block_cyclic:{block}", n, parts)
        counts = np.asarray(lay.count(np.arange(parts)))
        assert counts.sum() == n
        assert counts.max(initial=0) <= lay.capacity
        seen = set()
        for g in range(n):
            part, slot = lay.owner_slot(g)
            assert 0 <= slot < lay.capacity
            assert slot < lay.count(part)
            assert lay.global_index(part, slot) == g
            seen.add((int(part), int(slot)))
        assert len(seen) == n

    def test_matrix_embedding_round_trip(self):
        from repro.embeddings import MatrixEmbedding
        from repro.machine import CostModel, Hypercube
        m = Hypercube(4, CostModel.unit())
        emb = MatrixEmbedding(
            m, 13, 9, row_dims=(0, 1), col_dims=(2, 3),
            row_layout_kind="block_cyclic:2",
            col_layout_kind="block_cyclic:3",
        )
        A = np.random.default_rng(3).standard_normal((13, 9))
        assert np.allclose(emb.gather(emb.scatter(A)), A)

    def test_primitives_on_block_cyclic(self):
        from repro.core import primitives as P
        from repro.embeddings import MatrixEmbedding
        from repro.machine import CostModel, Hypercube
        m = Hypercube(4, CostModel.unit())
        emb = MatrixEmbedding(
            m, 11, 10, row_dims=(0, 1), col_dims=(2, 3),
            row_layout_kind="block_cyclic:2",
            col_layout_kind="block_cyclic:2",
        )
        A = np.random.default_rng(4).standard_normal((11, 10))
        M = emb.scatter(A)
        v, ve = P.reduce(M, emb, 1, "sum")
        assert np.allclose(ve.gather(v), A.sum(1))
        w, we = P.extract(M, emb, 0, 5)
        assert np.allclose(we.gather(w), A[5])
        val, idx, ie = P.reduce_loc(M, emb, 0, "max")
        assert np.array_equal(ie.gather(idx), A.argmax(0))

    def test_scan_rejects_block_cyclic(self):
        from repro.core import primitives as P
        from repro.embeddings import MatrixEmbedding
        from repro.machine import CostModel, Hypercube
        m = Hypercube(2, CostModel.unit())
        emb = MatrixEmbedding(
            m, 8, 8, row_dims=(0,), col_dims=(1,),
            row_layout_kind="block", col_layout_kind="block_cyclic:2",
        )
        with pytest.raises(ValueError, match="block layout"):
            P.scan(emb.scatter(np.ones((8, 8))), emb, 1, "sum")
