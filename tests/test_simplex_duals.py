"""Tests for the simplex dual values and reduced costs."""

import numpy as np
import pytest

from repro import Session
from repro import workloads as W
from repro.algorithms import simplex

scipy = pytest.importorskip("scipy")
from scipy.optimize import linprog  # noqa: E402


@pytest.fixture
def m():
    return Session(4, "unit").machine


class TestDuals:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_strong_duality(self, m, seed):
        lp = W.feasible_lp(7, 5, seed=seed)
        res = simplex.solve(m, lp.A, lp.b, lp.c)
        assert res.status == "optimal"
        assert np.isclose(res.duals @ lp.b, res.objective, atol=1e-7)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_dual_feasibility(self, m, seed):
        lp = W.feasible_lp(6, 8, seed=seed)
        res = simplex.solve(m, lp.A, lp.b, lp.c)
        assert np.all(res.duals >= -1e-9)
        assert np.all(lp.A.T @ res.duals >= lp.c - 1e-7)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_scipy_marginals(self, m, seed):
        lp = W.feasible_lp(7, 5, seed=seed + 10)
        res = simplex.solve(m, lp.A, lp.b, lp.c)
        ref = linprog(-lp.c, A_ub=lp.A, b_ub=lp.b, bounds=(0, None),
                      method="highs")
        assert np.allclose(res.duals, -ref.ineqlin.marginals, atol=1e-6)

    def test_two_phase_duals(self, m):
        lp = W.two_phase_lp(6, 4, seed=1)
        res = simplex.solve(m, lp.A, lp.b, lp.c)
        ref = linprog(-lp.c, A_ub=lp.A, b_ub=lp.b, bounds=(0, None),
                      method="highs")
        assert np.allclose(res.duals, -ref.ineqlin.marginals, atol=1e-6)
        assert np.isclose(res.duals @ lp.b, res.objective, atol=1e-6)

    def test_complementary_slackness(self, m):
        lp = W.feasible_lp(8, 6, seed=20)
        res = simplex.solve(m, lp.A, lp.b, lp.c)
        slack = lp.b - lp.A @ res.x
        # y_i * slack_i == 0 for every constraint
        assert np.allclose(res.duals * slack, 0.0, atol=1e-7)

    def test_binding_constraints_have_positive_duals(self, m):
        """A non-degenerate resource at capacity carries a shadow price."""
        A = np.array([[1.0, 1.0], [1.0, 0.0]])
        b = np.array([2.0, 1.5])
        c = np.array([3.0, 2.0])
        res = simplex.solve(m, A, b, c)
        slack = b - A @ res.x
        for i in range(2):
            if slack[i] < 1e-9:
                assert res.duals[i] > 1e-9


class TestReducedCosts:
    def test_nonnegative_at_optimum(self, m):
        lp = W.feasible_lp(6, 5, seed=30)
        res = simplex.solve(m, lp.A, lp.b, lp.c)
        assert np.all(res.reduced_costs >= -1e-9)

    def test_basic_variables_have_zero_reduced_cost(self, m):
        lp = W.feasible_lp(6, 5, seed=31)
        res = simplex.solve(m, lp.A, lp.b, lp.c)
        for r, col in enumerate(res.basis):
            if col < 5:
                assert abs(res.reduced_costs[col]) < 1e-9

    def test_reduced_cost_identity(self, m):
        """reduced_cost_j == (A^T y - c)_j at the optimum."""
        lp = W.feasible_lp(7, 4, seed=32)
        res = simplex.solve(m, lp.A, lp.b, lp.c)
        expect = lp.A.T @ res.duals - lp.c
        assert np.allclose(res.reduced_costs, expect, atol=1e-7)

    def test_unbounded_has_no_duals(self, m):
        lp = W.unbounded_lp()
        res = simplex.solve(m, lp.A, lp.b, lp.c)
        assert res.duals is None
