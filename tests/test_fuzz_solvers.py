"""Randomised cross-validation of the solvers against NumPy/SciPy.

Hypothesis generates random machine sizes and problem instances; every
solver must agree with the reference implementation.  This is the broad
artillery behind the targeted unit tests.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms import gaussian, simplex, triangular
from repro.core import DistributedMatrix
from repro.machine import CostModel, Hypercube

scipy = pytest.importorskip("scipy")
from scipy.optimize import linprog  # noqa: E402


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=1, max_value=20),
    st.integers(min_value=0, max_value=5),
    st.integers(min_value=0, max_value=2**31),
    st.sampled_from(["partial", "implicit"]),
)
def test_gaussian_fuzz(n, cube, seed, pivoting):
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((n, n)) + 2 * np.eye(n)
    x_true = rng.standard_normal(n)
    b = A @ x_true
    machine = Hypercube(cube, CostModel.unit())
    res = gaussian.solve(
        DistributedMatrix.from_numpy(machine, A), b, pivoting=pivoting
    )
    assert np.allclose(res.x, np.linalg.solve(A, b), atol=1e-6)


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=1, max_value=12),
    st.integers(min_value=0, max_value=4),
    st.integers(min_value=0, max_value=2**31),
)
def test_lu_fuzz(n, cube, seed):
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((n, n)) + 2 * np.eye(n)
    b = rng.standard_normal(n)
    machine = Hypercube(cube, CostModel.unit())
    fact = triangular.lu_factor(DistributedMatrix.from_numpy(machine, A))
    x = triangular.lu_solve(fact, b)
    assert np.allclose(A @ x, b, atol=1e-6)


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=1, max_value=8),   # constraints
    st.integers(min_value=1, max_value=6),   # variables
    st.integers(min_value=0, max_value=4),   # cube dims
    st.integers(min_value=0, max_value=2**31),
)
def test_simplex_fuzz_feasible(m_rows, n_vars, cube, seed):
    """Random feasible bounded LPs: objective must match scipy/highs."""
    rng = np.random.default_rng(seed)
    A = rng.uniform(0.05, 1.0, size=(m_rows, n_vars))
    b = rng.uniform(0.5, 2.0, size=m_rows)
    c = rng.uniform(0.0, 1.0, size=n_vars)
    machine = Hypercube(cube, CostModel.unit())
    res = simplex.solve(machine, A, b, c)
    ref = linprog(-c, A_ub=A, b_ub=b, bounds=(0, None), method="highs")
    assert res.status == "optimal"
    assert ref.status == 0
    assert np.isclose(res.objective, -ref.fun, atol=1e-6)
    # and the certificate holds
    assert np.all(A @ res.x <= b + 1e-7)
    assert np.all(res.x >= -1e-9)


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=0, max_value=2**31),
)
def test_simplex_fuzz_general_rhs(m_rows, n_vars, cube, seed):
    """Mixed-sign RHS (phase I territory): status and objective must agree
    with scipy on every instance, feasible or not."""
    rng = np.random.default_rng(seed)
    A = rng.uniform(-1.0, 1.0, size=(m_rows, n_vars))
    b = rng.uniform(-1.0, 2.0, size=m_rows)
    c = rng.uniform(0.0, 1.0, size=n_vars)
    # a box row keeps the problem bounded whenever it is feasible
    A = np.vstack([A, np.ones((1, n_vars))])
    b = np.append(b, 10.0)
    machine = Hypercube(cube, CostModel.unit())
    res = simplex.solve(machine, A, b, c)
    ref = linprog(-c, A_ub=A, b_ub=b, bounds=(0, None), method="highs")
    if ref.status == 0:
        assert res.status == "optimal", (res.status, ref.status)
        assert np.isclose(res.objective, -ref.fun, atol=1e-6)
    elif ref.status == 2:
        assert res.status == "infeasible"
