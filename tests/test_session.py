"""Unit tests for the Session facade (S11)."""

import numpy as np
import pytest

from repro import Session
from repro.machine import CostModel


class TestConstruction:
    def test_default_cost_model_is_cm2(self):
        s = Session(3)
        assert s.machine.cost_model == CostModel.cm2()

    def test_preset_by_name(self):
        assert Session(3, "unit").machine.cost_model == CostModel.unit()
        assert Session(3, "cm2").machine.cost_model == CostModel.cm2()
        assert Session(2, "latency_bound").machine.cost_model.tau == 5000.0

    def test_unknown_preset(self):
        with pytest.raises(ValueError, match="unknown cost model"):
            Session(3, "warp-speed")

    def test_explicit_model(self):
        cm = CostModel(tau=7, t_c=1, t_a=1, t_m=1)
        assert Session(3, cm).machine.cost_model.tau == 7


class TestFactories:
    def test_matrix_vector_round_trip(self, rng):
        s = Session(4, "unit")
        A_h = rng.standard_normal((10, 6))
        v_h = rng.standard_normal(30)
        assert np.allclose(s.matrix(A_h).to_numpy(), A_h)
        assert np.allclose(s.vector(v_h).to_numpy(), v_h)

    def test_aligned_factories(self, rng):
        s = Session(4, "unit")
        A = s.matrix(rng.standard_normal((10, 6)))
        rv = s.row_vector(rng.standard_normal(6), like=A)
        cv = s.col_vector(rng.standard_normal(10), like=A)
        assert rv.embedding.replicated and cv.embedding.replicated
        # immediately usable in a matvec without remap
        y = A.matvec(rv)
        assert len(y) == 10

    def test_embedding_helpers(self, rng):
        s = Session(4, "unit")
        A = s.matrix(rng.standard_normal((8, 8)))
        assert s.row_aligned(A).L == 8
        assert s.col_aligned(A, resident=0).resident == 0
        assert s.vector_order(12).L == 12


class TestAccounting:
    def test_time_property_tracks_machine(self, rng):
        s = Session(3, "unit")
        t0 = s.time
        A = s.matrix(rng.standard_normal((6, 6)))
        A.reduce(1, "sum")
        assert s.time > t0

    def test_reset(self, rng):
        s = Session(3, "unit")
        s.matrix(rng.standard_normal((6, 6))).reduce(1, "sum")
        s.reset_counters()
        assert s.time == 0.0

    def test_report_mentions_key_fields(self, rng):
        s = Session(3, "unit")
        A = s.matrix(rng.standard_normal((6, 6)))
        with s.machine.phase("demo"):
            A.reduce(1, "sum")
        rep = s.report()
        assert "p=8" in rep
        assert "simulated time" in rep
        assert "demo" in rep

    def test_snapshot_elapsed(self, rng):
        s = Session(3, "unit")
        A = s.matrix(rng.standard_normal((6, 6)))
        snap = s.snapshot()
        A.reduce(0, "sum")
        assert s.machine.elapsed_since(snap).time > 0

    def test_report_shows_plan_cache_stats(self, rng):
        s = Session(3, "unit", plan_cache=True)
        A = s.matrix(rng.standard_normal((6, 6)))
        A.extract(axis=0, index=0)
        A.extract(axis=0, index=0)
        rep = s.report()
        assert "plan cache" in rep
        assert f"{s.machine.plans.hits} hits" in rep
        assert f"{s.machine.plans.misses} misses" in rep
        data = s.report_data()
        assert data["plan_cache"]["enabled"] is True
        assert data["plan_cache"]["hits"] == s.machine.plans.hits

    def test_report_shows_plan_cache_disabled(self, rng):
        s = Session(3, "unit", plan_cache=False)
        assert "plan cache        : disabled" in s.report()
        assert s.report_data()["plan_cache"] == {"enabled": False}
