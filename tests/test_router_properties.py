"""Hypothesis property tests for the e-cube router."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.embeddings import hamming_distance
from repro.machine import CostModel, Hypercube, Router


@st.composite
def message_sets(draw):
    n = draw(st.integers(min_value=1, max_value=5))
    machine = Hypercube(n, CostModel(tau=10.0, t_c=1.0, t_a=1.0, t_m=1.0))
    count = draw(st.integers(min_value=0, max_value=24))
    src = draw(st.lists(
        st.integers(min_value=0, max_value=machine.p - 1),
        min_size=count, max_size=count,
    ))
    dst = draw(st.lists(
        st.integers(min_value=0, max_value=machine.p - 1),
        min_size=count, max_size=count,
    ))
    sizes = draw(st.lists(
        st.integers(min_value=1, max_value=8),
        min_size=count, max_size=count,
    ))
    return machine, np.array(src, dtype=np.int64), \
        np.array(dst, dtype=np.int64), np.array(sizes, dtype=np.float64)


@settings(max_examples=60, deadline=None)
@given(message_sets())
def test_element_hops_equal_size_weighted_hamming(case):
    """E-cube routes are shortest paths: total element-hops == sum over
    messages of size * hamming(src, dst)."""
    machine, src, dst, sizes = case
    stats = Router(machine).simulate(src, dst, sizes, charge=False)
    expect = float(sum(
        s * hamming_distance(int(a), int(b))
        for a, b, s in zip(src, dst, sizes)
    ))
    assert stats.element_hops == expect


@settings(max_examples=60, deadline=None)
@given(message_sets())
def test_rounds_bounded_by_dimension_count(case):
    machine, src, dst, sizes = case
    stats = Router(machine).simulate(src, dst, sizes, charge=False)
    assert 0 <= stats.rounds <= machine.n


@settings(max_examples=60, deadline=None)
@given(message_sets())
def test_congestion_lower_bounds(case):
    """Max congestion is at least the largest single message and at least
    the average per-round load implied by the volume."""
    machine, src, dst, sizes = case
    stats = Router(machine).simulate(src, dst, sizes, charge=False)
    moving = sizes[src != dst]
    if len(moving) == 0:
        assert stats.max_congestion == 0
        return
    assert stats.max_congestion >= moving.max()


@settings(max_examples=60, deadline=None)
@given(message_sets())
def test_time_decomposes_into_rounds(case):
    """time == rounds*tau + t_c * (sum of per-round max congestion);
    in particular time >= rounds*tau + t_c*max_congestion."""
    machine, src, dst, sizes = case
    cm = machine.cost_model
    stats = Router(machine).simulate(src, dst, sizes, charge=False)
    assert stats.time >= stats.rounds * cm.tau - 1e-9
    if stats.rounds:
        assert stats.time >= stats.rounds * cm.tau + cm.t_c * stats.max_congestion - 1e-9
        # and never more than every round paying the worst congestion
        assert stats.time <= stats.rounds * (cm.tau + cm.t_c * stats.max_congestion) + 1e-9


@settings(max_examples=40, deadline=None)
@given(message_sets())
def test_charge_matches_stats(case):
    machine, src, dst, sizes = case
    t0 = machine.counters.time
    r0 = machine.counters.comm_rounds
    e0 = machine.counters.elements_transferred
    stats = Router(machine).simulate(src, dst, sizes)
    assert machine.counters.time - t0 == pytest.approx(stats.time)
    assert machine.counters.comm_rounds - r0 == stats.rounds
    assert machine.counters.elements_transferred - e0 == pytest.approx(
        stats.element_hops
    )


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=0, max_value=2**31),
)
def test_random_permutation_round_trip(n, seed):
    """permute followed by its inverse restores the data."""
    machine = Hypercube(n, CostModel.unit())
    rng = np.random.default_rng(seed)
    perm = rng.permutation(machine.p)
    inv = np.argsort(perm)
    r = Router(machine)
    pv = machine.pvar(np.arange(machine.p, dtype=np.float64))
    out = r.permute(pv, machine.pvar(perm))
    back = r.permute(out, machine.pvar(inv))
    assert np.array_equal(back.data, pv.data)
