"""Gap-filling tests for lesser-exercised public API paths."""

import numpy as np
import pytest

from repro import Session
from repro.core import DistributedMatrix, DistributedVector
from repro.machine import CostModel, Hypercube


@pytest.fixture
def s():
    return Session(4, "unit")


class TestMatrixLogicalOps:
    def test_eq_ne(self, s, rng):
        A_h = rng.integers(0, 3, (8, 6)).astype(float)
        A = s.matrix(A_h)
        assert np.array_equal(A.eq(1.0).to_numpy(), A_h == 1.0)
        assert np.array_equal(A.ne(1.0).to_numpy(), A_h != 1.0)

    def test_le_ge(self, s, rng):
        A_h = rng.standard_normal((8, 6))
        A = s.matrix(A_h)
        assert np.array_equal((A <= 0).to_numpy(), A_h <= 0)
        assert np.array_equal((A >= 0).to_numpy(), A_h >= 0)

    def test_and_or_invert(self, s, rng):
        A_h = rng.standard_normal((8, 6))
        A = s.matrix(A_h)
        a = A > 0
        b = A < 0.5
        assert np.array_equal((a & b).to_numpy(), (A_h > 0) & (A_h < 0.5))
        assert np.array_equal((a | b).to_numpy(), (A_h > 0) | (A_h < 0.5))
        assert np.array_equal((~a).to_numpy(), ~(A_h > 0))

    def test_where_requires_same_embedding(self, s, rng):
        A = s.matrix(rng.standard_normal((8, 6)))
        B = s.matrix(rng.standard_normal((8, 6)), layout="cyclic")
        with pytest.raises(ValueError, match="embedding"):
            (A > 0).where(B, 0.0)

    def test_truediv_matrix(self, s, rng):
        A_h = np.abs(rng.standard_normal((8, 6))) + 1
        B_h = np.abs(rng.standard_normal((8, 6))) + 1
        emb = s.matrix(A_h).embedding
        A = DistributedMatrix.from_numpy(s.machine, A_h, embedding=emb)
        B = DistributedMatrix.from_numpy(s.machine, B_h, embedding=emb)
        assert np.allclose((A / B).to_numpy(), A_h / B_h)


class TestVectorMisc:
    def test_ne(self, s):
        v = s.vector(np.array([1.0, 2, 1, 3]))
        assert np.array_equal(v.ne(1.0).to_numpy(), [False, True, False, True])

    def test_xor(self, s):
        a = s.vector(np.array([1.0, 0, 1, 0])) > 0.5
        b = s.vector(np.array([1.0, 1, 0, 0])) > 0.5
        assert np.array_equal((a ^ b).to_numpy(), [False, True, True, False])

    def test_abs_method(self, s):
        v = s.vector(np.array([-1.0, 2.0, -3.0]))
        assert np.array_equal(v.abs().to_numpy(), [1, 2, 3])

    def test_rtruediv(self, s):
        v = s.vector(np.array([1.0, 2.0, 4.0]))
        assert np.allclose((8.0 / v).to_numpy(), [8, 4, 2])


class TestLargeMachineSmoke:
    def test_p_64k_reduce(self):
        """A full-scale CM-2 (65,536 processors) is simulable."""
        m = Hypercube(16, CostModel.cm2())
        A = DistributedMatrix.from_numpy(m, np.ones((512, 512)))
        sums = A.reduce(1, "sum")
        assert np.allclose(sums.to_numpy(), 512.0)
        assert m.counters.comm_rounds == len(A.embedding.col_dims)

    def test_p_64k_matvec(self):
        m = Hypercube(16, CostModel.cm2())
        A = DistributedMatrix.from_numpy(m, np.eye(256))
        x = DistributedVector.from_numpy(m, np.arange(256.0))
        y = A.matvec(x)
        assert np.allclose(y.to_numpy(), np.arange(256.0))


class TestSessionReportEdge:
    def test_report_with_zero_time(self):
        s = Session(2, "unit")
        rep = s.report()
        assert "0.0 ticks" in rep

    def test_repr(self, s):
        assert "Session" in repr(s)
        assert "p=16" in repr(s)


class TestPVarDtypePaths:
    def test_integer_pvar_arithmetic(self, s):
        m = s.machine
        a = m.pvar(np.arange(16))
        assert (a + 1).dtype.kind == "i"
        assert np.array_equal((a * 2).data, np.arange(16) * 2)

    def test_complex_pvar(self, s):
        m = s.machine
        z = m.pvar(np.arange(16) * (1 + 1j))
        assert np.allclose((z * 1j).data, np.arange(16) * (1j - 1))

    def test_astype(self, s):
        m = s.machine
        a = m.pvar(np.arange(16))
        assert a.astype(np.float32).dtype == np.float32


class TestNormsDiagTrace:
    def test_diagonal_square(self, s, rng):
        A_h = rng.standard_normal((9, 9))
        assert np.allclose(s.matrix(A_h).diagonal().to_numpy(), np.diag(A_h))

    def test_diagonal_rectangular(self, s, rng):
        B_h = rng.standard_normal((6, 10))
        d = s.matrix(B_h).diagonal().to_numpy()
        assert np.allclose(d[:6], np.diag(B_h))
        assert np.allclose(d[6:], 0.0)

    def test_trace(self, s, rng):
        A_h = rng.standard_normal((7, 7))
        assert np.isclose(s.matrix(A_h).trace(), np.trace(A_h))

    def test_matrix_norms(self, s, rng):
        A_h = rng.standard_normal((8, 5))
        A = s.matrix(A_h)
        assert np.isclose(A.norm("fro"), np.linalg.norm(A_h, "fro"))
        assert np.isclose(A.norm(1), np.linalg.norm(A_h, 1))
        assert np.isclose(A.norm("inf"), np.linalg.norm(A_h, np.inf))
        with pytest.raises(ValueError, match="norm"):
            A.norm(3)

    def test_vector_norms(self, s, rng):
        v_h = rng.standard_normal(13)
        v = s.vector(v_h)
        assert np.isclose(v.norm(), np.linalg.norm(v_h))
        assert np.isclose(v.norm(1), np.linalg.norm(v_h, 1))
        assert np.isclose(v.norm("inf"), np.linalg.norm(v_h, np.inf))
        with pytest.raises(ValueError, match="norm"):
            v.norm(0)

    def test_norms_charge_time(self, s, rng):
        A = s.matrix(rng.standard_normal((8, 8)))
        t0 = s.time
        A.norm("fro")
        assert s.time > t0
