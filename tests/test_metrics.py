"""Tests for the metrics registry and phase profiler (``repro.metrics``).

The two load-bearing guarantees, mirroring the tracer's contract:

* **bit-identical costs** — simulated ticks and every cost counter are
  exactly the same with metrics/profiling on, off, or absent, pinned in a
  fresh subprocess so no interpreter state can leak between the arms;
* **attribution fidelity** — the profiler's exclusive per-label host
  times sum (with the unattributed root) to the profiled wall interval,
  and on a real sanitize-on run at least 90% of host time lands on a
  named phase or section.
"""

import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import Session
from repro import workloads as W
from repro.algorithms import gaussian
from repro.check import MachineSanitizer
from repro.errors import ConfigError
from repro.faults import FaultPlan
from repro.machine.hypercube import Hypercube
from repro.metrics import MetricsRegistry, PhaseProfiler
from repro.metrics.profiler import ROOT, _ProfiledProxy
from repro.metrics.registry import MAX_SNAPSHOTS, SCHEMA
from repro.obs import validate_chrome_trace

SRC = str(Path(__file__).resolve().parent.parent / "src")
SUBPROCESS_ENV = {"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"}


def run_gaussian(session, size=12, seed=0):
    A_host, b, _ = W.random_system(size, seed=seed)
    return gaussian.solve(session.matrix(A_host), b)


class FakeClock:
    """Deterministic clock: each tick() advances by a scripted delta."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


# -- null-by-default contract -------------------------------------------------


class TestNullDefault:
    def test_machine_has_no_metrics_or_profiler_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_METRICS", raising=False)
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        s = Session(3)
        assert s.machine.metrics is None
        assert s.machine.profiler is None
        assert Hypercube(3).metrics is None
        assert Hypercube(3).profiler is None

    def test_env_flags_attach(self, monkeypatch):
        monkeypatch.setenv("REPRO_METRICS", "1")
        monkeypatch.setenv("REPRO_PROFILE", "1")
        s = Session(3)
        assert isinstance(s.metrics, MetricsRegistry)
        assert isinstance(s.profiler, PhaseProfiler)

    def test_registry_rejects_second_machine(self):
        r = MetricsRegistry()
        Hypercube(2).attach_metrics(r)
        with pytest.raises(ConfigError):
            Hypercube(3).attach_metrics(r)

    def test_profiler_rejects_second_machine(self):
        p = PhaseProfiler()
        Hypercube(2).attach_profiler(p)
        with pytest.raises(ConfigError):
            Hypercube(3).attach_profiler(p)


# -- registry: names, kinds, publication --------------------------------------


class TestRegistry:
    def test_rejects_bad_names(self):
        r = MetricsRegistry()
        for bad in ("nodots", "Upper.case", "plan cache.hits", ".leading",
                    "trailing.", "1starts.with_digit"):
            with pytest.raises(ConfigError):
                r.register(bad)

    def test_rejects_bad_kind(self):
        with pytest.raises(ConfigError):
            MetricsRegistry().register("a.b", kind="histogram")

    def test_register_idempotent_but_conflicts_fail(self):
        r = MetricsRegistry()
        m1 = r.register("plan_cache.hits", unit="count")
        assert r.register("plan_cache.hits", unit="count") is m1
        with pytest.raises(ConfigError):
            r.register("plan_cache.hits", kind="gauge", unit="count")
        with pytest.raises(ConfigError):
            r.register("plan_cache.hits", unit="ticks")

    def test_publish_outside_collection_only_registers(self):
        r = MetricsRegistry()
        r.publish("machine.ticks", 42.0, unit="ticks")
        assert "machine.ticks" in r.metrics
        assert r.snapshots == []

    def test_nested_collection_fails(self):
        r = MetricsRegistry()

        class Evil:
            def publish_metrics(self, registry):
                registry.collect_from(self)

        with pytest.raises(ConfigError):
            r.collect_from(Evil())

    def test_collect_matches_counters(self):
        s = Session(4, metrics=True)
        run_gaussian(s, size=12)
        values = s.metrics.collect()
        snap = s.machine.counters.snapshot()
        assert values["machine.ticks"] == snap.time
        assert values["machine.flops"] == snap.flops
        assert values["machine.comm_rounds"] == snap.comm_rounds
        assert values["plan_cache.hits"] == s.machine.counters.plan_hits
        assert values["plan_cache.enabled"] == 1.0

    def test_collect_includes_sanitizer_and_detours(self):
        plan = FaultPlan.random(4, seed=3, horizon=5e3, link_kills=2, drops=0)
        s = Session(
            4, faults=plan, sanitize=MachineSanitizer(), metrics=True
        )
        run_gaussian(s, size=10)
        values = s.metrics.collect()
        assert values["sanitizer.checks"] > 0
        assert values["sanitizer.sample_every"] == 1.0
        # detour_rounds is published under the router namespace
        assert "router.detours" in values
        assert values["router.detours"] == s.faults.stats.detour_rounds

    def test_abft_metrics_published(self):
        s = Session(4, abft=True, metrics=True)
        run_gaussian(s, size=10)
        values = s.metrics.collect()
        assert values["abft.protected"] > 0
        assert "abft.scrub_rounds" in values


# -- snapshots and export -----------------------------------------------------


class TestSnapshots:
    def test_phase_exit_autosnapshots(self):
        s = Session(3, metrics=True)
        run_gaussian(s, size=8)
        labels = [snap["label"] for snap in s.metrics.snapshots]
        assert labels, "gaussian run produced no phase-exit snapshots"
        assert all(l.startswith("phase:") for l in labels)
        times = [snap["sim_time"] for snap in s.metrics.snapshots]
        assert times == sorted(times)

    def test_snapshot_cap(self):
        r = MetricsRegistry(max_snapshots=3)
        r.bind(Hypercube(2))
        for i in range(10):
            r.on_phase_exit(f"p{i}")
        assert len(r.snapshots) == 3
        with pytest.raises(ConfigError):
            MetricsRegistry(max_snapshots=0)
        assert MAX_SNAPSHOTS >= 1024  # default generous enough for real runs

    def test_to_jsonl_schema(self, tmp_path):
        s = Session(3, metrics=True)
        run_gaussian(s, size=8)
        out = tmp_path / "metrics.jsonl"
        lines = s.metrics.to_jsonl(str(out))
        raw = out.read_text().splitlines()
        assert lines == len(raw) == len(s.metrics.snapshots) + 1
        meta = json.loads(raw[0])
        assert meta["type"] == "meta"
        assert meta["schema"] == SCHEMA
        assert meta["p"] == 8
        for line in raw[1:]:
            rec = json.loads(line)
            assert set(rec) == {"type", "label", "sim_time", "values"}
            assert rec["type"] == "snapshot"
            assert rec["values"]["machine.ticks"] <= s.machine.counters.time

    def test_counter_track_validates_as_chrome_trace(self):
        s = Session(3, metrics=True)
        run_gaussian(s, size=8)
        events = s.metrics.counter_track_events()
        names = {e["name"] for e in events if e["ph"] == "C"}
        # dot-prefix grouping: one track per subsystem
        assert "machine" in names and "plan_cache" in names
        stats = validate_chrome_trace(events)
        assert stats["counters"] > 0
        assert stats["spans"] == 0

    def test_counter_track_empty_without_snapshots(self):
        assert MetricsRegistry().counter_track_events() == []


# -- profiler: deterministic attribution --------------------------------------


class TestProfiler:
    def test_exclusive_attribution_with_fake_clock(self):
        clock = FakeClock()
        p = PhaseProfiler(clock=clock)
        p.start()
        clock.advance(1.0)           # -> ROOT
        p.push("outer")
        clock.advance(2.0)           # -> outer
        p.push("inner")
        clock.advance(4.0)           # -> inner (exclusive!)
        p.pop()
        clock.advance(8.0)           # -> outer again
        p.pop()
        clock.advance(0.5)           # -> ROOT
        total = p.stop()
        assert total == pytest.approx(15.5)
        assert p.times["outer"] == pytest.approx(10.0)
        assert p.times["inner"] == pytest.approx(4.0)
        assert p.times[ROOT] == pytest.approx(1.5)
        assert p.attributed == pytest.approx(14.0)
        assert p.coverage == pytest.approx(14.0 / 15.5)
        assert p.counts == {"outer": 1, "inner": 1}

    def test_start_stop_misuse(self):
        p = PhaseProfiler(clock=FakeClock())
        with pytest.raises(ConfigError):
            p.stop()
        p.start()
        with pytest.raises(ConfigError):
            p.start()
        p.stop()

    def test_push_pop_noops_when_not_running(self):
        p = PhaseProfiler(clock=FakeClock())
        p.push("x")
        p.pop()
        assert p.times == {} and p.counts == {}

    def test_table_and_format(self):
        clock = FakeClock()
        p = PhaseProfiler(clock=clock)
        p.start()
        p.push("slow")
        clock.advance(3.0)
        p.pop()
        p.push("fast")
        clock.advance(1.0)
        p.pop()
        p.stop()
        table = p.table(top_n=1)
        assert table[0]["label"] == "slow"
        assert table[0]["seconds"] == pytest.approx(3.0)
        assert table[0]["share"] == pytest.approx(0.75)
        text = p.format_table()
        assert "slow" in text and "fast" in text

    def test_sanitizer_proxy_attribution(self):
        s = Session(3, sanitize=True, profile=True)
        assert isinstance(s.machine.sanitizer, _ProfiledProxy)
        with s.profiler.profiled():
            run_gaussian(s, size=8)
        assert s.profiler.times.get("sanitizer-checks", 0.0) > 0.0
        assert s.profiler.categories["sanitizer-checks"] == "check"

    def test_proxy_forwards_attributes(self):
        s = Session(3, sanitize=True, profile=True)
        proxy = s.machine.sanitizer
        assert proxy.sample_every == 1
        proxy.foo = 7  # setattr lands on the wrapped sanitizer
        assert proxy._target.foo == 7

    def test_coverage_on_sanitized_gaussian(self):
        """Acceptance: >= 90% of host time attributed on a sanitize-on run."""
        s = Session(5, sanitize=True, profile=True)
        A_host, b, _ = W.random_system(24, seed=0)
        A = s.matrix(A_host)
        with s.profiler.profiled():
            gaussian.solve(A, b)
        assert s.profiler.coverage >= 0.9
        assert s.profiler.times.get("sanitizer-checks", 0.0) > 0.0
        breakdown = s.profiler.category_breakdown()
        assert breakdown.get("check", 0.0) > 0.0

    def test_counter_track_validates(self):
        s = Session(3, profile=True)
        with s.profiler.profiled():
            run_gaussian(s, size=8)
        events = s.profiler.counter_track_events()
        stats = validate_chrome_trace(events)
        assert stats["counters"] > 0

    def test_as_dict_round_trips_to_json(self):
        s = Session(3, profile=True)
        with s.profiler.profiled():
            run_gaussian(s, size=8)
        data = json.loads(json.dumps(s.profiler.as_dict()))
        assert data["total_s"] > 0
        assert 0.0 <= data["coverage"] <= 1.0
        assert data["categories"]


# -- degrade carries the attachments ------------------------------------------


class TestDegrade:
    def test_degrade_carries_metrics_and_profiler(self):
        s = Session(3, metrics=True, profile=True)
        registry, profiler = s.metrics, s.profiler
        s.machine.kill_node(5)
        s.degrade()
        assert s.machine.metrics is registry
        assert registry.machine is s.machine
        assert s.machine.profiler is profiler
        assert profiler.machine is s.machine
        run_gaussian(s, size=6)
        assert registry.collect()["machine.ticks"] > 0


# -- bit-identity pin (subprocess) --------------------------------------------

_PIN_SCRIPT = r"""
import json, sys
import numpy as np
from repro import Session
from repro import workloads as W
from repro.algorithms import gaussian

mode = sys.argv[1]
kwargs = {}
if mode == "on":
    kwargs = dict(metrics=True, profile=True)
s = Session(4, sanitize=True, **kwargs)
if mode == "on":
    s.profiler.start()
A_host, b, _ = W.random_system(12, seed=0)
x = gaussian.solve(s.matrix(A_host), b)
if mode == "on":
    s.profiler.stop()
snap = s.machine.counters.snapshot().as_dict()
out = {
    "snap": {k: repr(v) for k, v in snap.items()},
    "x": [repr(float(v)) for v in np.asarray(x.x)],
    "plan": [s.machine.counters.plan_hits, s.machine.counters.plan_misses],
    "checks": s.machine.sanitizer.stats.total
    if mode != "on" else s.machine.sanitizer._target.stats.total,
    "metrics_imported": "repro.metrics" in sys.modules,
}
print(json.dumps(out))
"""


def _run_pin(mode):
    proc = subprocess.run(
        [sys.executable, "-c", _PIN_SCRIPT, mode],
        capture_output=True,
        text=True,
        env=SUBPROCESS_ENV,
        check=True,
    )
    return json.loads(proc.stdout)


class TestBitIdentityPin:
    def test_metrics_and_profile_do_not_perturb_costs(self):
        on = _run_pin("on")
        off = _run_pin("off")
        assert on["snap"] == off["snap"]
        assert on["x"] == off["x"]
        assert on["plan"] == off["plan"]
        assert on["checks"] == off["checks"]

    def test_feature_off_never_imports_module(self):
        off = _run_pin("off")
        assert off["metrics_imported"] is False
        on = _run_pin("on")
        assert on["metrics_imported"] is True
