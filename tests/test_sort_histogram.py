"""Tests for bitonic sort and the histogram algorithms."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms import histogram as H
from repro.algorithms.sort import bitonic_sort, is_sorted
from repro.core import DistributedVector
from repro.machine import CostModel, Hypercube


@pytest.fixture
def m():
    return Hypercube(4, CostModel.unit())


class TestBitonicSort:
    @pytest.mark.parametrize("N", [1, 5, 16, 23, 64, 100])
    def test_sorts(self, m, rng, N):
        x = rng.standard_normal(N)
        res = bitonic_sort(DistributedVector.from_numpy(m, x))
        assert np.allclose(res.values.to_numpy(), np.sort(x))

    @pytest.mark.parametrize("N", [7, 32])
    def test_descending(self, m, rng, N):
        x = rng.standard_normal(N)
        res = bitonic_sort(
            DistributedVector.from_numpy(m, x), descending=True
        )
        assert np.allclose(res.values.to_numpy(), np.sort(x)[::-1])
        assert is_sorted(res.values, descending=True)

    def test_duplicates(self, m, rng):
        x = rng.integers(0, 4, 48).astype(float)
        res = bitonic_sort(DistributedVector.from_numpy(m, x))
        assert np.allclose(res.values.to_numpy(), np.sort(x))

    def test_already_sorted(self, m):
        x = np.arange(32.0)
        res = bitonic_sort(DistributedVector.from_numpy(m, x))
        assert np.allclose(res.values.to_numpy(), x)

    def test_reverse_sorted(self, m):
        x = np.arange(32.0)[::-1].copy()
        res = bitonic_sort(DistributedVector.from_numpy(m, x))
        assert np.allclose(res.values.to_numpy(), np.sort(x))

    def test_output_embedding_reusable(self, m, rng):
        """The sorted vector is a first-class DistributedVector."""
        x = rng.standard_normal(40)
        res = bitonic_sort(DistributedVector.from_numpy(m, x))
        assert np.isclose(res.values.sum(), x.sum())
        val, idx = res.values.argmax()
        assert idx == 39  # the max sits at the last position after sorting

    def test_cyclic_layout_rejected(self, m, rng):
        v = DistributedVector.from_numpy(m, rng.standard_normal(16),
                                         layout="cyclic")
        with pytest.raises(ValueError, match="block layout"):
            bitonic_sort(v)

    def test_aligned_embedding_rejected(self, m, rng):
        from repro.core import DistributedMatrix
        A = DistributedMatrix.from_numpy(m, rng.standard_normal((8, 8)))
        v = A.reduce(1, "sum")
        with pytest.raises(ValueError, match="vector-order"):
            bitonic_sort(v)

    def test_exchange_round_count(self):
        """lg p (lg p + 1) / 2 merge-split exchanges plus cleanup routing."""
        m = Hypercube(4, CostModel.unit())
        x = np.random.default_rng(0).standard_normal(64)
        r0 = m.counters.comm_rounds
        bitonic_sort(DistributedVector.from_numpy(m, x))
        rounds = m.counters.comm_rounds - r0
        assert rounds >= 4 * 5 // 2
        assert rounds <= 4 * 5 // 2 + m.n  # + final remap routing

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=1, max_value=120),
        st.integers(min_value=0, max_value=2**31),
    )
    def test_property_sorts_any_size(self, n, N, seed):
        machine = Hypercube(n, CostModel.unit())
        x = np.random.default_rng(seed).standard_normal(N)
        res = bitonic_sort(DistributedVector.from_numpy(machine, x))
        assert np.allclose(res.values.to_numpy(), np.sort(x))


class TestHistogram:
    def test_matches_numpy(self, m, rng):
        x = rng.standard_normal(300)
        res = H.histogram(DistributedVector.from_numpy(m, x), bins=12,
                          value_range=(-4, 4))
        expect, edges = np.histogram(x, bins=12, range=(-4, 4))
        assert np.array_equal(res.counts, expect)
        assert np.allclose(res.edges, edges)

    def test_sparse_agrees_with_dense(self, m, rng):
        x = rng.standard_normal(200)
        v1 = DistributedVector.from_numpy(m, x)
        a = H.histogram(v1, bins=32, value_range=(-5, 5))
        b = H.histogram_sparse(v1, bins=32, value_range=(-5, 5))
        assert np.array_equal(a.counts, b.counts)

    def test_total_count_preserved(self, m, rng):
        x = rng.standard_normal(137)
        res = H.histogram(DistributedVector.from_numpy(m, x), bins=7)
        assert res.counts.sum() == 137

    def test_out_of_range_values_clipped(self, m):
        x = np.array([-100.0, 0.0, 100.0] + [0.0] * 13)
        res = H.histogram(DistributedVector.from_numpy(m, x), bins=4,
                          value_range=(-1, 1))
        assert res.counts.sum() == 16
        assert res.counts[0] >= 1 and res.counts[-1] >= 1

    def test_auto_range(self, m, rng):
        x = rng.uniform(3.0, 7.0, 100)
        res = H.histogram(DistributedVector.from_numpy(m, x), bins=8)
        assert res.counts.sum() == 100
        assert res.edges[0] <= x.min() and res.edges[-1] >= x.max()

    def test_constant_data(self, m):
        x = np.full(20, 2.5)
        res = H.histogram(DistributedVector.from_numpy(m, x), bins=4)
        assert res.counts.sum() == 20

    def test_validation(self, m, rng):
        v = DistributedVector.from_numpy(m, rng.standard_normal(16))
        with pytest.raises(ValueError, match="bins"):
            H.histogram(v, bins=0)
        with pytest.raises(ValueError, match="hi > lo"):
            H.histogram(v, bins=4, value_range=(1.0, 1.0))

    def test_sparse_wins_at_low_occupancy(self):
        """The TMC histogram paper's regime: few elements per processor,
        many bins — shipping only non-empty bins wins."""
        rng = np.random.default_rng(15)
        x = rng.standard_normal(256)
        m1 = Hypercube(8, CostModel.cm2())
        m2 = Hypercube(8, CostModel.cm2())
        t0 = m1.counters.time
        H.histogram(DistributedVector.from_numpy(m1, x), bins=4096,
                    value_range=(-4, 4))
        dense = m1.counters.time - t0
        t0 = m2.counters.time
        H.histogram_sparse(DistributedVector.from_numpy(m2, x), bins=4096,
                           value_range=(-4, 4))
        sparse = m2.counters.time - t0
        assert sparse < dense / 2

    def test_dense_wins_at_high_occupancy(self):
        """Once every processor touches most bins, the dense algorithm's
        simpler rounds win back."""
        rng = np.random.default_rng(16)
        x = rng.standard_normal(4096)
        m1 = Hypercube(2, CostModel.cm2())
        m2 = Hypercube(2, CostModel.cm2())
        t0 = m1.counters.time
        H.histogram(DistributedVector.from_numpy(m1, x), bins=8,
                    value_range=(-4, 4))
        dense = m1.counters.time - t0
        t0 = m2.counters.time
        H.histogram_sparse(DistributedVector.from_numpy(m2, x), bins=8,
                           value_range=(-4, 4))
        sparse = m2.counters.time - t0
        assert dense <= sparse


class TestSampleSort:
    from repro.algorithms.sort import sample_sort as _ss

    @pytest.mark.parametrize("N", [1, 7, 16, 64, 300])
    def test_sorts(self, m, rng, N):
        from repro.algorithms.sort import sample_sort
        x = rng.standard_normal(N)
        res = sample_sort(DistributedVector.from_numpy(m, x))
        assert np.allclose(res.values.to_numpy(), np.sort(x))

    def test_duplicates_and_skewed_data(self, m, rng):
        from repro.algorithms.sort import sample_sort
        x = np.concatenate([np.zeros(30), rng.standard_normal(34)])
        res = sample_sort(DistributedVector.from_numpy(m, x))
        assert np.allclose(res.values.to_numpy(), np.sort(x))

    def test_agrees_with_bitonic(self, m, rng):
        from repro.algorithms.sort import bitonic_sort, sample_sort
        x = rng.standard_normal(120)
        a = bitonic_sort(DistributedVector.from_numpy(m, x))
        b = sample_sort(DistributedVector.from_numpy(m, x))
        assert np.allclose(a.values.to_numpy(), b.values.to_numpy())

    def test_validation(self, m, rng):
        from repro.algorithms.sort import sample_sort
        v = DistributedVector.from_numpy(m, rng.standard_normal(16),
                                         layout="cyclic")
        with pytest.raises(ValueError, match="block layout"):
            sample_sort(v)
        v2 = DistributedVector.from_numpy(m, rng.standard_normal(16))
        with pytest.raises(ValueError, match="oversample"):
            sample_sort(v2, oversample=0)

    def test_wins_at_large_blocks(self):
        """The booklet's bucket-sort regime: many elements per processor."""
        from repro.algorithms.sort import bitonic_sort, sample_sort
        rng = np.random.default_rng(21)
        x = rng.standard_normal(64 * 256)
        m1 = Hypercube(6, CostModel.cm2())
        m2 = Hypercube(6, CostModel.cm2())
        t_b = bitonic_sort(DistributedVector.from_numpy(m1, x)).cost.time
        t_s = sample_sort(DistributedVector.from_numpy(m2, x)).cost.time
        assert t_s < t_b

    def test_loses_on_big_machines_small_blocks(self):
        """The replicated splitter sort dominates at large p, tiny L."""
        from repro.algorithms.sort import bitonic_sort, sample_sort
        rng = np.random.default_rng(22)
        x = rng.standard_normal((1 << 10) * 2)
        m1 = Hypercube(10, CostModel.cm2())
        m2 = Hypercube(10, CostModel.cm2())
        t_b = bitonic_sort(DistributedVector.from_numpy(m1, x)).cost.time
        t_s = sample_sort(DistributedVector.from_numpy(m2, x)).cost.time
        assert t_b < t_s

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=1, max_value=150),
        st.integers(min_value=0, max_value=2**31),
    )
    def test_property_sorts_any_size(self, n, N, seed):
        from repro.algorithms.sort import sample_sort
        machine = Hypercube(n, CostModel.unit())
        x = np.random.default_rng(seed).standard_normal(N)
        res = sample_sort(DistributedVector.from_numpy(machine, x))
        assert np.allclose(res.values.to_numpy(), np.sort(x))
