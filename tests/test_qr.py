"""Tests for the Householder QR factorisation and least squares."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import Session
from repro import workloads as W
from repro.algorithms import qr
from repro.algorithms.gaussian import SingularMatrixError
from repro.core import DistributedMatrix
from repro.machine import CostModel, Hypercube


@pytest.fixture
def s():
    return Session(4, "unit")


class TestFactor:
    def test_r_is_upper_triangular(self, s, rng):
        A_h = rng.standard_normal((10, 10))
        fact = qr.qr_factor(s.matrix(A_h))
        assert np.allclose(np.tril(fact.r(), -1), 0.0)

    def test_r_magnitudes_match_numpy(self, s, rng):
        A_h = rng.standard_normal((12, 8))
        fact = qr.qr_factor(s.matrix(A_h))
        _, R_np = np.linalg.qr(A_h)
        assert np.allclose(
            np.abs(np.diag(fact.r())), np.abs(np.diag(R_np)), atol=1e-8
        )

    def test_qt_is_orthogonal(self, s, rng):
        A_h = rng.standard_normal((9, 9))
        fact = qr.qr_factor(s.matrix(A_h))
        for seed in range(3):
            b = np.random.default_rng(seed).standard_normal(9)
            assert np.isclose(
                np.linalg.norm(fact.apply_qt(b)), np.linalg.norm(b)
            )

    def test_qt_a_equals_r(self, s, rng):
        A_h = rng.standard_normal((8, 5))
        fact = qr.qr_factor(s.matrix(A_h))
        QtA = np.column_stack(
            [fact.apply_qt(A_h[:, j]) for j in range(5)]
        )
        assert np.allclose(QtA[:5], fact.r(), atol=1e-8)
        assert np.allclose(QtA[5:], 0.0, atol=1e-8)  # below R: annihilated

    def test_wide_matrix_rejected(self, s, rng):
        with pytest.raises(ValueError, match="m >= n"):
            qr.qr_factor(s.matrix(rng.standard_normal((3, 5))))

    def test_cost_and_phase(self, s, rng):
        fact = qr.qr_factor(s.matrix(rng.standard_normal((8, 6))))
        assert fact.cost.time > 0
        assert "qr-factor" in s.machine.counters.phase_times

    def test_apply_qt_shape_check(self, s, rng):
        fact = qr.qr_factor(s.matrix(rng.standard_normal((6, 4))))
        with pytest.raises(ValueError, match="shape"):
            fact.apply_qt(np.ones(5))


class TestSolve:
    @pytest.mark.parametrize("n", [1, 5, 12, 20])
    def test_square_systems(self, s, n):
        A_h, b, x_true = W.random_system(n, seed=n + 80)
        x = qr.qr_solve(s.matrix(A_h), b)
        assert np.allclose(x, x_true, atol=1e-7)

    def test_agrees_with_gaussian(self, s):
        from repro.algorithms import gaussian
        A_h, b, _ = W.random_system(10, seed=81)
        x_qr = qr.qr_solve(s.matrix(A_h), b)
        x_ge = gaussian.solve(s.matrix(A_h), b).x
        assert np.allclose(x_qr, x_ge, atol=1e-8)

    @pytest.mark.parametrize("m_rows,n_cols", [(10, 4), (20, 6), (8, 8)])
    def test_least_squares_matches_lstsq(self, s, rng, m_rows, n_cols):
        A_h = rng.standard_normal((m_rows, n_cols))
        b = rng.standard_normal(m_rows)
        x = qr.qr_solve(s.matrix(A_h), b)
        ref = np.linalg.lstsq(A_h, b, rcond=None)[0]
        assert np.allclose(x, ref, atol=1e-8)

    def test_better_than_normal_equations_when_ill_conditioned(self, s):
        """QR's raison d'être: the normal equations square the condition
        number; Householder does not."""
        eps = 1e-7
        A_h = np.array([[1.0, 1.0], [eps, 0.0], [0.0, eps]])
        b = np.array([2.0, eps, eps])
        x = qr.qr_solve(s.matrix(A_h), b)
        ref = np.linalg.lstsq(A_h, b, rcond=None)[0]
        assert np.allclose(x, ref, atol=1e-6)

    def test_singular_detected(self, s):
        with pytest.raises(SingularMatrixError):
            qr.qr_solve(s.matrix(np.ones((4, 4))), np.ones(4))


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=1, max_value=10),
    st.integers(min_value=0, max_value=4),
    st.integers(min_value=0, max_value=2**31),
)
def test_qr_fuzz_square(n, cube, seed):
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((n, n)) + 2 * np.eye(n)
    b = rng.standard_normal(n)
    machine = Hypercube(cube, CostModel.unit())
    x = qr.qr_solve(DistributedMatrix.from_numpy(machine, A), b)
    assert np.allclose(A @ x, b, atol=1e-6)


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=2, max_value=12),
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=0, max_value=2**31),
)
def test_qr_fuzz_least_squares(m_rows, n_cols, seed):
    if m_rows < n_cols:
        m_rows, n_cols = n_cols, m_rows
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((m_rows, n_cols))
    b = rng.standard_normal(m_rows)
    machine = Hypercube(3, CostModel.unit())
    x = qr.qr_solve(DistributedMatrix.from_numpy(machine, A), b)
    ref = np.linalg.lstsq(A, b, rcond=None)[0]
    assert np.allclose(x, ref, atol=1e-6)
