"""Tests for triangular solvers and the reusable LU factorisation."""

import numpy as np
import pytest

from repro import Session
from repro import workloads as W
from repro.algorithms import triangular
from repro.algorithms.gaussian import SingularMatrixError


@pytest.fixture
def s():
    return Session(4, "unit")


class TestSolveLower:
    @pytest.mark.parametrize("n", [1, 4, 14, 24])
    def test_forward_substitution(self, s, rng, n):
        L = np.tril(rng.standard_normal((n, n))) + 3 * np.eye(n)
        b = rng.standard_normal(n)
        x = triangular.solve_lower(s.matrix(L), b)
        assert np.allclose(L @ x, b, atol=1e-9)

    def test_unit_diagonal(self, s, rng):
        n = 10
        L = np.tril(rng.standard_normal((n, n)), -1) + np.eye(n)
        b = rng.standard_normal(n)
        x = triangular.solve_lower(s.matrix(L), b, unit_diagonal=True)
        assert np.allclose(L @ x, b, atol=1e-9)

    def test_unit_diagonal_ignores_stored_diagonal(self, s, rng):
        """With unit_diagonal=True the actual diagonal entries are never
        read — exactly what the packed LU format requires."""
        n = 8
        L = np.tril(rng.standard_normal((n, n)), -1) + np.eye(n)
        garbage = L + np.diag(rng.standard_normal(n) * 100)
        b = rng.standard_normal(n)
        x = triangular.solve_lower(s.matrix(garbage), b, unit_diagonal=True)
        assert np.allclose(L @ x, b, atol=1e-9)

    def test_upper_triangle_ignored(self, s, rng):
        n = 9
        L = np.tril(rng.standard_normal((n, n))) + 3 * np.eye(n)
        M = L + np.triu(rng.standard_normal((n, n)), 1)
        b = rng.standard_normal(n)
        x = triangular.solve_lower(s.matrix(M), b)
        assert np.allclose(L @ x, b, atol=1e-9)

    def test_zero_diagonal_raises(self, s):
        L = np.tril(np.ones((3, 3)))
        L[1, 1] = 0.0
        with pytest.raises(SingularMatrixError):
            triangular.solve_lower(s.matrix(L), np.ones(3))

    def test_shape_checks(self, s, rng):
        with pytest.raises(ValueError, match="square"):
            triangular.solve_lower(s.matrix(rng.standard_normal((3, 4))),
                                   np.ones(3))
        with pytest.raises(ValueError, match="shape"):
            triangular.solve_lower(s.matrix(np.eye(3)), np.ones(4))


class TestSolveUpper:
    @pytest.mark.parametrize("n", [1, 4, 14])
    def test_backward_substitution(self, s, rng, n):
        U = np.triu(rng.standard_normal((n, n))) + 3 * np.eye(n)
        b = rng.standard_normal(n)
        x = triangular.solve_upper(s.matrix(U), b)
        assert np.allclose(U @ x, b, atol=1e-9)

    def test_lower_triangle_ignored(self, s, rng):
        n = 9
        U = np.triu(rng.standard_normal((n, n))) + 3 * np.eye(n)
        M = U + np.tril(rng.standard_normal((n, n)), -1)
        b = rng.standard_normal(n)
        x = triangular.solve_upper(s.matrix(M), b)
        assert np.allclose(U @ x, b, atol=1e-9)

    def test_zero_diagonal_raises(self, s):
        U = np.triu(np.ones((3, 3)))
        U[2, 2] = 0.0
        with pytest.raises(SingularMatrixError):
            triangular.solve_upper(s.matrix(U), np.ones(3))


class TestLUFactor:
    @pytest.mark.parametrize("n", [1, 5, 16, 24])
    def test_reconstruction(self, s, n):
        A_h, _, _ = W.random_system(n, seed=n + 40)
        fact = triangular.lu_factor(s.matrix(A_h))
        PA = A_h.copy()
        for k, piv in enumerate(fact.swaps):
            if piv != k:
                PA[[k, piv]] = PA[[piv, k]]
        assert np.allclose(fact.lower() @ fact.upper(), PA, atol=1e-8)

    def test_unit_lower(self, s):
        A_h, _, _ = W.random_system(10, seed=41)
        fact = triangular.lu_factor(s.matrix(A_h))
        L = fact.lower()
        assert np.allclose(np.diag(L), 1.0)
        assert np.allclose(np.triu(L, 1), 0.0)

    def test_no_pivoting_on_dominant(self, s):
        A_h, _, _ = W.diagonally_dominant_system(8, seed=42)
        fact = triangular.lu_factor(s.matrix(A_h), pivoting="none")
        assert fact.swaps == list(range(8))
        assert np.allclose(fact.lower() @ fact.upper(), A_h, atol=1e-9)

    def test_singular_raises(self, s):
        with pytest.raises(SingularMatrixError):
            triangular.lu_factor(s.matrix(np.ones((4, 4))))

    def test_bad_pivoting_mode(self, s):
        with pytest.raises(ValueError, match="pivoting"):
            triangular.lu_factor(s.matrix(np.eye(2)), pivoting="rook")

    def test_cost_recorded(self, s):
        A_h, _, _ = W.random_system(8, seed=43)
        fact = triangular.lu_factor(s.matrix(A_h))
        assert fact.cost.time > 0
        assert "lu-factor" in s.machine.counters.phase_times


class TestLUSolve:
    def test_solves(self, s):
        A_h, b, x_true = W.random_system(16, seed=44)
        fact = triangular.lu_factor(s.matrix(A_h))
        assert np.allclose(triangular.lu_solve(fact, b), x_true, atol=1e-7)

    def test_reuse_across_rhs(self, s, rng):
        A_h, _, _ = W.random_system(12, seed=45)
        fact = triangular.lu_factor(s.matrix(A_h))
        for seed in range(4):
            b = np.random.default_rng(seed).standard_normal(12)
            x = triangular.lu_solve(fact, b)
            assert np.allclose(A_h @ x, b, atol=1e-7)

    def test_reuse_is_cheaper_than_refactor(self):
        """Replaying the factors costs O(n^2/p) per RHS vs O(n^3/p)."""
        from repro.algorithms import gaussian
        s = Session(4, "cm2")
        A_h, b, _ = W.random_system(24, seed=46)
        fact = triangular.lu_factor(s.matrix(A_h))
        t0 = s.machine.counters.time
        triangular.lu_solve(fact, b)
        replay = s.machine.counters.time - t0
        t0 = s.machine.counters.time
        gaussian.solve(s.matrix(A_h), b)
        fresh = s.machine.counters.time - t0
        assert replay < fresh / 2

    def test_matches_direct_solver(self, s):
        from repro.algorithms import gaussian
        A_h, b, _ = W.random_system(10, seed=47)
        via_lu = triangular.lu_solve(triangular.lu_factor(s.matrix(A_h)), b)
        direct = gaussian.solve(s.matrix(A_h), b)
        assert np.allclose(via_lu, direct.x, atol=1e-9)

    def test_rhs_shape_check(self, s):
        fact = triangular.lu_factor(s.matrix(np.eye(4)))
        with pytest.raises(ValueError, match="shape"):
            triangular.lu_solve(fact, np.ones(5))
