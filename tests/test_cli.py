"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestInfo:
    def test_prints_machine_summary(self, capsys):
        assert main(["info", "-n", "4"]) == 0
        out = capsys.readouterr().out
        assert "processors : 16" in out
        assert "cost model" in out

    def test_cost_model_choice(self, capsys):
        assert main(["info", "-n", "2", "--cost-model", "unit"]) == 0
        assert "tau=1.0" in capsys.readouterr().out

    def test_bad_cost_model_rejected(self):
        with pytest.raises(SystemExit):
            main(["info", "--cost-model", "quantum"])


class TestDemo:
    def test_runs_and_reports(self, capsys):
        assert main(["demo", "-n", "4", "--rows", "12", "--cols", "8"]) == 0
        out = capsys.readouterr().out
        assert "embedded" in out
        assert "simulated time" in out
        assert "demo" in out


class TestSolve:
    def test_solves_and_reports(self, capsys):
        assert main(["solve", "-n", "4", "--size", "16"]) == 0
        out = capsys.readouterr().out
        assert "max error" in out
        assert "PT / serial" in out

    def test_implicit_pivoting_flag(self, capsys):
        assert main([
            "solve", "-n", "4", "--size", "12", "--pivoting", "implicit"
        ]) == 0
        out = capsys.readouterr().out
        assert "implicit pivoting" in out
        assert "row-swap" not in out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
