"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import main
from repro.obs import validate_chrome_trace_file


class TestInfo:
    def test_prints_machine_summary(self, capsys):
        assert main(["info", "-n", "4"]) == 0
        out = capsys.readouterr().out
        assert "processors : 16" in out
        assert "cost model" in out

    def test_cost_model_choice(self, capsys):
        assert main(["info", "-n", "2", "--cost-model", "unit"]) == 0
        assert "tau=1.0" in capsys.readouterr().out

    def test_bad_cost_model_rejected(self):
        with pytest.raises(SystemExit):
            main(["info", "--cost-model", "quantum"])


class TestDemo:
    def test_runs_and_reports(self, capsys):
        assert main(["demo", "-n", "4", "--rows", "12", "--cols", "8"]) == 0
        out = capsys.readouterr().out
        assert "embedded" in out
        assert "simulated time" in out
        assert "demo" in out


class TestSolve:
    def test_solves_and_reports(self, capsys):
        assert main(["solve", "-n", "4", "--size", "16"]) == 0
        out = capsys.readouterr().out
        assert "max error" in out
        assert "PT / serial" in out

    def test_implicit_pivoting_flag(self, capsys):
        assert main([
            "solve", "-n", "4", "--size", "12", "--pivoting", "implicit"
        ]) == 0
        out = capsys.readouterr().out
        assert "implicit pivoting" in out
        assert "row-swap" not in out


class TestJsonOutput:
    def test_info_json(self, capsys):
        assert main(["info", "-n", "4", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["p"] == 16
        assert data["n"] == 4
        assert set(data["cost_model"]) == {"tau", "t_c", "t_a", "t_m"}

    def test_demo_json(self, capsys):
        assert main(["demo", "-n", "4", "--rows", "12", "--cols", "8",
                     "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["time"] > 0
        assert "embedding" in data
        assert any(
            entry["phase"] == "demo" for entry in data["phase_breakdown"]
        )

    def test_solve_json(self, capsys):
        assert main(["solve", "-n", "4", "--size", "12", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["max_error"] < 1e-8
        assert data["time"] > 0
        assert data["pt_ratio"] > 0


class TestTrace:
    def test_writes_valid_chrome_trace(self, capsys, tmp_path):
        out = str(tmp_path / "trace.json")
        assert main(["trace", "-n", "4", "--rows", "12", "--cols", "8",
                     "--out", out]) == 0
        counts = validate_chrome_trace_file(out)
        assert counts["spans"] > 0
        text = capsys.readouterr().out
        assert "chrome trace" in text
        assert "primitive breakdown" in text

    def test_solve_workload_with_jsonl(self, capsys, tmp_path):
        out = str(tmp_path / "trace.json")
        jsonl = str(tmp_path / "trace.jsonl")
        assert main(["trace", "-n", "4", "--workload", "solve",
                     "--size", "12", "--out", out, "--jsonl", jsonl,
                     "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["workload"] == "solve"
        assert data["spans"] > 0
        assert data["report"]["primitive_breakdown"]
        lines = [json.loads(l) for l in open(jsonl)]
        assert len(lines) == data["jsonl_lines"]
        assert lines[0]["type"] == "meta"
        validate_chrome_trace_file(out)


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0


class TestFaultsSubcommand:
    def test_gaussian_recovers_and_matches(self, capsys):
        assert main(["faults", "-n", "4", "--size", "12",
                     "--fault-seed", "0", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["recovered"] is True
        assert data["matches_baseline"] is True
        assert data["stats"]["node_kills"] == 1
        assert data["final_p"] < data["p"]
        assert data["plan"]["events"]

    def test_text_report(self, capsys):
        assert main(["faults", "-n", "4", "--size", "12",
                     "--fault-seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "recovered" in out
        assert "matches baseline : True" in out
        assert "recovery ticks" in out

    def test_matvec_workload(self, capsys):
        assert main(["faults", "-n", "4", "--workload", "matvec",
                     "--size", "16", "--fault-seed", "0", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["recovered"] and data["matches_baseline"]

    def test_trace_artifact(self, capsys, tmp_path):
        out = str(tmp_path / "faults.json")
        assert main(["faults", "-n", "4", "--size", "12",
                     "--fault-seed", "1", "--trace-out", out,
                     "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["trace_out"] == out
        counts = validate_chrome_trace_file(out)
        assert counts["instants"] > 0  # kill/degrade/restore markers

    def test_unrecoverable_exits_nonzero(self, capsys):
        # max-recoveries 0 with a node kill cannot recover
        assert main(["faults", "-n", "4", "--size", "12",
                     "--fault-seed", "0", "--max-recoveries", "0",
                     "--json"]) == 1
        data = json.loads(capsys.readouterr().out)
        assert data["recovered"] is False
        assert "error" in data


class TestFaultInjectionFlags:
    def test_demo_with_fault_seed(self, capsys):
        assert main(["demo", "-n", "4", "--rows", "16", "--cols", "8",
                     "--fault-seed", "3", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert "faults" in data
        st = data["faults"]
        assert st["drops"] >= 1 or st["link_kills"] >= 1

    def test_solve_with_fault_seed_still_accurate(self, capsys):
        assert main(["solve", "-n", "4", "--size", "16",
                     "--fault-seed", "1", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["max_error"] < 1e-8
        assert "faults" in data

    def test_fault_runs_are_reproducible(self, capsys):
        def run():
            assert main(["solve", "-n", "4", "--size", "12",
                         "--fault-seed", "2", "--json"]) == 0
            return json.loads(capsys.readouterr().out)

        a, b = run(), run()
        assert a["faults"] == b["faults"]
        assert a["time"] == b["time"]

    def test_no_fault_seed_means_no_faults_key(self, capsys):
        assert main(["solve", "-n", "4", "--size", "12", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert "faults" not in data


class TestCheck:
    def test_quick_check_passes_and_writes_report(self, capsys, tmp_path):
        out = tmp_path / "report.json"
        assert main(["check", "-n", "3", "--quick",
                     "--out", str(out)]) == 0
        text = capsys.readouterr().out
        assert "overall            : PASS" in text
        report = json.loads(out.read_text())
        assert report["passed"]
        assert report["sanitizer_selftest"]["passed"]
        assert report["differential"]["passed"]
        assert report["golden"]["passed"]

    def test_json_flag_emits_report(self, capsys):
        assert main(["check", "-n", "3", "--quick",
                     "--skip-golden", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["passed"]
        assert "golden" not in report

    def test_selftest_only_is_fast(self, capsys):
        assert main(["check", "--skip-differential",
                     "--skip-golden"]) == 0
        assert "sanitizer selftest : PASS" in capsys.readouterr().out

    def test_missing_golden_file_fails(self, capsys, tmp_path, monkeypatch):
        from repro.check import golden

        monkeypatch.setattr(
            golden, "GOLDEN_PATH", tmp_path / "nope.json"
        )
        assert main(["check", "--skip-differential"]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_update_golden_roundtrip(self, capsys, tmp_path, monkeypatch):
        from repro.check import golden

        monkeypatch.setattr(
            golden, "GOLDEN_PATH", tmp_path / "golden.json"
        )
        assert main(["check", "--update-golden"]) == 0
        assert (tmp_path / "golden.json").exists()
        capsys.readouterr()
        assert main(["check", "--skip-differential"]) == 0


class TestAbftSubcommand:
    def test_gaussian_corrects_and_matches(self, capsys):
        assert main(["abft", "-n", "4", "--size", "12",
                     "--fault-seed", "0", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["recovered"] is True
        assert data["matches_baseline"] is True
        assert data["stats"]["bit_flips"] + data["stats"]["link_corruptions"] > 0
        assert data["abft"]["detected"] >= 1
        assert data["overhead"] > 1.0

    def test_text_report(self, capsys):
        assert main(["abft", "-n", "4", "--size", "12",
                     "--fault-seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "matches baseline : True" in out
        assert "abft" in out
        assert "overhead" in out

    def test_matvec_workload_with_trace(self, capsys, tmp_path):
        trace = str(tmp_path / "abft.json")
        assert main(["abft", "-n", "4", "--workload", "matvec",
                     "--size", "16", "--fault-seed", "0",
                     "--trace-out", trace, "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["recovered"] and data["matches_baseline"]
        assert data["trace_out"] == trace
        counts = validate_chrome_trace_file(trace)
        assert counts["instants"] > 0  # abft:detect / abft:correct markers

    def test_multi_flip_escalates_but_recovers(self, capsys):
        assert main(["abft", "-n", "4", "--size", "12",
                     "--fault-seed", "0", "--bit-flips", "4",
                     "--link-corruptions", "0", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["recovered"] and data["matches_baseline"]


class TestFaultPlanFile:
    def test_abft_replays_recorded_plan(self, capsys, tmp_path):
        from repro.faults import FaultPlan
        from repro.faults.plan import BitFlip

        path = str(tmp_path / "plan.json")
        FaultPlan([BitFlip(2000.0, pid=1, slot=3, bit=2)]).to_json(path)
        assert main(["abft", "-n", "4", "--size", "12",
                     "--fault-plan", path, "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["stats"]["bit_flips"] == 1
        assert data["matches_baseline"] is True
        assert data["plan"]["events"][0]["kind"] == "BitFlip"

    def test_faults_subcommand_accepts_plan_file(self, capsys, tmp_path):
        from repro.faults import FaultPlan
        from repro.faults.plan import LinkDrop

        path = str(tmp_path / "plan.json")
        FaultPlan([LinkDrop(1500.0, dim=1, count=1)]).to_json(path)
        assert main(["faults", "-n", "4", "--size", "12",
                     "--fault-plan", path, "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["stats"]["drops"] == 1
        assert data["matches_baseline"] is True

    def test_plan_runs_are_reproducible(self, capsys, tmp_path):
        from repro.faults import FaultPlan
        from repro.faults.plan import BitFlip, LinkCorrupt

        path = str(tmp_path / "plan.json")
        FaultPlan([
            BitFlip(1800.0, pid=2, slot=5, bit=1),
            LinkCorrupt(2600.0, dim=1, pid=0, slot=2, bit=3),
        ]).to_json(path)

        def run():
            assert main(["abft", "-n", "4", "--size", "12",
                         "--fault-plan", path, "--json"]) == 0
            return json.loads(capsys.readouterr().out)

        a, b = run(), run()
        assert a == b
