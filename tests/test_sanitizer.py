"""The machine sanitizer: null by default, catches cooked books, free when off.

The acceptance contract for :mod:`repro.check.sanitizer`:

* an unsanitized session carries ``sanitizer = None`` and pays nothing;
* a machine double that mis-charges a communication round is caught;
* attaching the sanitizer perturbs **no** counter — tier-1 workload costs
  are bit-identical with it on and off;
* it follows a session through degraded-mode recovery.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Session
from repro.check import MachineSanitizer, env_enabled
from repro.check.runner import sanitizer_selftest
from repro.errors import SanitizerError
from repro.machine import CostModel, Hypercube
from repro import workloads


def test_sanitizer_is_null_by_default():
    session = Session(4)
    assert session.sanitizer is None
    assert session.machine.sanitizer is None


def test_session_sanitize_flag_attaches():
    session = Session(4, sanitize=True)
    assert isinstance(session.sanitizer, MachineSanitizer)
    assert session.machine.sanitizer is session.sanitizer


def test_env_flag_enables(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    assert env_enabled()
    session = Session(3)
    assert session.sanitizer is not None
    monkeypatch.setenv("REPRO_SANITIZE", "0")
    assert not env_enabled()
    assert Session(3).sanitizer is None


def test_prebuilt_sanitizer_shared():
    sanitizer = MachineSanitizer()
    session = Session(3, sanitize=sanitizer)
    assert session.sanitizer is sanitizer


def test_mischarged_round_time_is_caught():
    class DropsStartup(Hypercube):
        def _charge_comm_round_plain(self, volume, rounds=1, dim=None):
            self.counters.charge_transfer(volume * self.p * rounds, rounds, 0.0)

    machine = DropsStartup(3)
    machine.attach_sanitizer(MachineSanitizer())
    with pytest.raises(SanitizerError, match=r"round-time"):
        machine.charge_comm_round(4.0, dim=1)


def test_lost_elements_are_caught():
    class LosesElements(Hypercube):
        def _charge_comm_round_plain(self, volume, rounds=1, dim=None):
            time = self.cost_model.comm_round(volume)
            self.counters.charge_transfer(
                volume * self.p * rounds - 1.0, rounds, rounds * time
            )

    machine = LosesElements(3)
    machine.attach_sanitizer(MachineSanitizer())
    with pytest.raises(SanitizerError, match=r"round-conservation"):
        machine.charge_comm_round(4.0, dim=1)


def test_honest_machine_passes_selftest():
    report = sanitizer_selftest()
    assert report["passed"]
    assert report["outcomes"]["undercharged_time"]["caught"]
    assert report["outcomes"]["lost_elements"]["caught"]
    assert not report["outcomes"]["honest_machine"]["caught"]


def _gaussian_counters(sanitize: bool) -> dict:
    from repro.algorithms import gaussian

    session = Session(5, cost_model="cm2", sanitize=sanitize)
    A, b, _ = workloads.diagonally_dominant_system(18, 7)
    gaussian.solve(session.matrix(A), b)
    c = session.machine.counters
    return {
        "time": c.time,
        "flops": c.flops,
        "elements_transferred": c.elements_transferred,
        "comm_rounds": c.comm_rounds,
        "local_moves": c.local_moves,
    }


def test_sanitizer_does_not_perturb_costs():
    off = _gaussian_counters(sanitize=False)
    on = _gaussian_counters(sanitize=True)
    assert off == on  # exact float equality, field by field


def test_sanitizer_runs_checks_and_reports():
    from repro.algorithms import matvec

    session = Session(4, sanitize=True)
    rng = np.random.default_rng(2)
    A = session.matrix(rng.standard_normal((12, 9)))
    matvec.matvec(A, session.row_vector(rng.standard_normal(9), A))
    assert session.sanitizer.stats.total > 0
    assert "sanitizer" in session.report()
    assert session.report_data()["sanitizer"]["total"] > 0


def test_cannot_rebind_to_second_machine():
    sanitizer = MachineSanitizer()
    Hypercube(3).attach_sanitizer(sanitizer)
    with pytest.raises(SanitizerError):
        Hypercube(3).attach_sanitizer(sanitizer)


def test_sanitizer_survives_degrade():
    from repro.faults import (
        CheckpointStore,
        FaultPlan,
        NodeKill,
        gaussian_workload,
        run_resilient,
    )

    A, b, _ = workloads.diagonally_dominant_system(12, 3)
    clean = Session(4, cost_model="cm2")
    baseline = gaussian_workload(A, b)(clean, CheckpointStore(clean))

    plan = FaultPlan([NodeKill(time=0.4 * clean.time, pid=1)])
    session = Session(4, cost_model="cm2", faults=plan, sanitize=True)
    sanitizer = session.sanitizer
    report = run_resilient(session, gaussian_workload(A, b))
    assert report.recovered
    assert np.array_equal(np.asarray(report.result), np.asarray(baseline))
    # same sanitizer object, now bound to the survivor subcube
    assert session.sanitizer is sanitizer
    assert session.machine.p < 16
    assert sanitizer.stats.total > 0


class TestSampledChecking:
    """``--sample-every K``: check 1-in-K audit sites, observe everything.

    The contract: sampling changes *how often* invariants are audited,
    never what the machine does — results and every cost counter are
    bit-identical across K, and K=1 is exactly the always-on sanitizer.
    """

    @staticmethod
    def _run(sample_every):
        A, b, _ = workloads.diagonally_dominant_system(14, 5)
        s = Session(4, sanitize=MachineSanitizer(sample_every=sample_every))
        from repro.algorithms import gaussian

        res = gaussian.solve(s.matrix(A), b)
        return s, np.asarray(res.x)

    def test_k1_is_the_default_full_check(self):
        assert MachineSanitizer().sample_every == 1
        s, _ = self._run(1)
        assert s.sanitizer.stats.total > 0

    def test_sampling_reduces_checks_not_costs(self):
        s1, x1 = self._run(1)
        s4, x4 = self._run(4)
        assert s4.sanitizer.stats.total < s1.sanitizer.stats.total
        # results and the entire cost vector are bit-identical
        assert np.array_equal(x1, x4)
        snap1 = s1.machine.counters.snapshot().as_dict()
        snap4 = s4.machine.counters.snapshot().as_dict()
        assert snap1 == snap4

    def test_sampling_skips_snapshots_entirely(self, monkeypatch):
        """Non-sampled observes are lazy: no CostSnapshot is even built.

        ``sample_every=K`` must skip the snapshot itself (the per-round
        hot path), not just the comparisons — so the snapshot count
        shrinks roughly by K while results stay bit-identical.
        """
        from repro.machine.counters import Counters

        real = Counters.snapshot
        taken = {}

        def run_counting(k):
            taken[k] = 0

            def counting(counters):
                taken[k] += 1
                return real(counters)

            monkeypatch.setattr(Counters, "snapshot", counting)
            try:
                return self._run(k)
            finally:
                monkeypatch.setattr(Counters, "snapshot", real)

        _, x1 = run_counting(1)
        _, x8 = run_counting(8)
        assert np.array_equal(x1, x8)
        assert taken[8] < taken[1] / 2

    def test_unsampled_observe_is_a_noop(self):
        sanitizer = MachineSanitizer()
        m = Hypercube(3)
        m.attach_sanitizer(sanitizer)
        before = sanitizer._last
        assert sanitizer.observe(m, sampled=False) is None
        assert sanitizer._last is before

    def test_k1_matches_repeated_run_exactly(self):
        a_stats = self._run(1)[0].sanitizer.stats
        b_stats = self._run(1)[0].sanitizer.stats
        assert a_stats.total == b_stats.total
        assert a_stats.checks == b_stats.checks

    def test_sampled_sanitizer_still_catches_violations(self):
        """Structural hooks (plan replay, epoch) stay unsampled."""
        sanitizer = MachineSanitizer(sample_every=1000)
        m = Hypercube(3)
        m.attach_sanitizer(sanitizer)
        with pytest.raises(SanitizerError):
            sanitizer.on_epoch_bump(m, m.epoch + 5)

    def test_invalid_sample_every_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            MachineSanitizer(sample_every=0)
        with pytest.raises(ConfigError):
            MachineSanitizer(sample_every=-3)

    def test_env_var_controls_session_default(self, monkeypatch):
        from repro.check import env_sample_every

        monkeypatch.setenv("REPRO_SANITIZE_SAMPLE", "6")
        assert env_sample_every() == 6
        s = Session(3, sanitize=True)
        assert s.sanitizer.sample_every == 6
        monkeypatch.setenv("REPRO_SANITIZE_SAMPLE", "zero")
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            env_sample_every()
        monkeypatch.delenv("REPRO_SANITIZE_SAMPLE")
        assert env_sample_every() == 1
