"""The machine sanitizer: null by default, catches cooked books, free when off.

The acceptance contract for :mod:`repro.check.sanitizer`:

* an unsanitized session carries ``sanitizer = None`` and pays nothing;
* a machine double that mis-charges a communication round is caught;
* attaching the sanitizer perturbs **no** counter — tier-1 workload costs
  are bit-identical with it on and off;
* it follows a session through degraded-mode recovery.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Session
from repro.check import MachineSanitizer, env_enabled
from repro.check.runner import sanitizer_selftest
from repro.errors import SanitizerError
from repro.machine import CostModel, Hypercube
from repro import workloads


def test_sanitizer_is_null_by_default():
    session = Session(4)
    assert session.sanitizer is None
    assert session.machine.sanitizer is None


def test_session_sanitize_flag_attaches():
    session = Session(4, sanitize=True)
    assert isinstance(session.sanitizer, MachineSanitizer)
    assert session.machine.sanitizer is session.sanitizer


def test_env_flag_enables(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    assert env_enabled()
    session = Session(3)
    assert session.sanitizer is not None
    monkeypatch.setenv("REPRO_SANITIZE", "0")
    assert not env_enabled()
    assert Session(3).sanitizer is None


def test_prebuilt_sanitizer_shared():
    sanitizer = MachineSanitizer()
    session = Session(3, sanitize=sanitizer)
    assert session.sanitizer is sanitizer


def test_mischarged_round_time_is_caught():
    class DropsStartup(Hypercube):
        def _charge_comm_round_plain(self, volume, rounds=1, dim=None):
            self.counters.charge_transfer(volume * self.p * rounds, rounds, 0.0)

    machine = DropsStartup(3)
    machine.attach_sanitizer(MachineSanitizer())
    with pytest.raises(SanitizerError, match=r"round-time"):
        machine.charge_comm_round(4.0, dim=1)


def test_lost_elements_are_caught():
    class LosesElements(Hypercube):
        def _charge_comm_round_plain(self, volume, rounds=1, dim=None):
            time = self.cost_model.comm_round(volume)
            self.counters.charge_transfer(
                volume * self.p * rounds - 1.0, rounds, rounds * time
            )

    machine = LosesElements(3)
    machine.attach_sanitizer(MachineSanitizer())
    with pytest.raises(SanitizerError, match=r"round-conservation"):
        machine.charge_comm_round(4.0, dim=1)


def test_honest_machine_passes_selftest():
    report = sanitizer_selftest()
    assert report["passed"]
    assert report["outcomes"]["undercharged_time"]["caught"]
    assert report["outcomes"]["lost_elements"]["caught"]
    assert not report["outcomes"]["honest_machine"]["caught"]


def _gaussian_counters(sanitize: bool) -> dict:
    from repro.algorithms import gaussian

    session = Session(5, cost_model="cm2", sanitize=sanitize)
    A, b, _ = workloads.diagonally_dominant_system(18, 7)
    gaussian.solve(session.matrix(A), b)
    c = session.machine.counters
    return {
        "time": c.time,
        "flops": c.flops,
        "elements_transferred": c.elements_transferred,
        "comm_rounds": c.comm_rounds,
        "local_moves": c.local_moves,
    }


def test_sanitizer_does_not_perturb_costs():
    off = _gaussian_counters(sanitize=False)
    on = _gaussian_counters(sanitize=True)
    assert off == on  # exact float equality, field by field


def test_sanitizer_runs_checks_and_reports():
    from repro.algorithms import matvec

    session = Session(4, sanitize=True)
    rng = np.random.default_rng(2)
    A = session.matrix(rng.standard_normal((12, 9)))
    matvec.matvec(A, session.row_vector(rng.standard_normal(9), A))
    assert session.sanitizer.stats.total > 0
    assert "sanitizer" in session.report()
    assert session.report_data()["sanitizer"]["total"] > 0


def test_cannot_rebind_to_second_machine():
    sanitizer = MachineSanitizer()
    Hypercube(3).attach_sanitizer(sanitizer)
    with pytest.raises(SanitizerError):
        Hypercube(3).attach_sanitizer(sanitizer)


def test_sanitizer_survives_degrade():
    from repro.faults import (
        CheckpointStore,
        FaultPlan,
        NodeKill,
        gaussian_workload,
        run_resilient,
    )

    A, b, _ = workloads.diagonally_dominant_system(12, 3)
    clean = Session(4, cost_model="cm2")
    baseline = gaussian_workload(A, b)(clean, CheckpointStore(clean))

    plan = FaultPlan([NodeKill(time=0.4 * clean.time, pid=1)])
    session = Session(4, cost_model="cm2", faults=plan, sanitize=True)
    sanitizer = session.sanitizer
    report = run_resilient(session, gaussian_workload(A, b))
    assert report.recovered
    assert np.array_equal(np.asarray(report.result), np.asarray(baseline))
    # same sanitizer object, now bound to the survivor subcube
    assert session.sanitizer is sanitizer
    assert session.machine.p < 16
    assert sanitizer.stats.total > 0
