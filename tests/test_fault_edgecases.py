"""Fault-machinery edge cases: subcube search corners and double degrades.

Covers the corners the mainline recovery tests never hit: a machine with
every node dead, exactly one survivor, or no faults at all; restoring a
checkpoint after degrading twice; and charging a route on a machine with
dead links (a regression — the faulty charge path used to read an
unbound local).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Session
from repro.errors import FaultError
from repro.faults import CheckpointStore
from repro.faults.recovery import largest_healthy_subcube, subcube_members
from repro.machine import Hypercube
from repro.machine.router import Router


class TestLargestHealthySubcube:
    def test_already_healthy_machine_keeps_the_full_cube(self):
        machine = Hypercube(4)
        free_dims, base = largest_healthy_subcube(machine)
        assert free_dims == (0, 1, 2, 3)
        assert base == 0

    def test_all_nodes_dead_raises_fault_error(self):
        machine = Hypercube(3)
        for pid in range(machine.p):
            machine.kill_node(pid)
        with pytest.raises(FaultError, match="no healthy subcube"):
            largest_healthy_subcube(machine)

    def test_single_survivor_is_a_zero_dimensional_subcube(self):
        machine = Hypercube(3)
        survivor = 5
        for pid in range(machine.p):
            if pid != survivor:
                machine.kill_node(pid)
        free_dims, base = largest_healthy_subcube(machine)
        assert free_dims == ()
        assert base == survivor
        assert subcube_members(free_dims, base).tolist() == [survivor]

    def test_one_dead_node_halves_the_cube(self):
        machine = Hypercube(3)
        machine.kill_node(0)
        free_dims, base = largest_healthy_subcube(machine)
        assert len(free_dims) == 2
        members = subcube_members(free_dims, base)
        assert 0 not in members
        assert machine.node_ok[members].all()

    def test_dead_internal_link_excludes_the_subcube(self):
        machine = Hypercube(3)
        # kill the dim-0 link at pid 0: any subcube containing {0, 1} with
        # dim 0 free is now unusable
        machine.kill_link(0, 0)
        free_dims, base = largest_healthy_subcube(machine)
        members = subcube_members(free_dims, base)
        assert len(free_dims) == 2
        assert not (0 in members and 1 in members and 0 in free_dims)


class TestDoubleDegrade:
    def test_restore_after_two_degrades(self):
        session = Session(4)
        store = CheckpointStore(session)
        payload = np.arange(24, dtype=np.float64).reshape(4, 6)
        store.save("tableau", {"T": session.matrix(payload)}, step=7)

        session.machine.kill_node(3)
        session.degrade()
        assert session.machine.p == 8

        session.machine.kill_node(2)
        session.degrade()
        assert session.machine.p == 4

        ck = store.restore(required=True)
        assert ck.step == 7
        assert np.array_equal(ck.array("T"), payload)
        # the restore charged its re-scatter on the 4-processor survivor
        assert store.restores == 1

    def test_restore_charges_on_the_current_machine(self):
        session = Session(3)
        store = CheckpointStore(session)
        store.save("x", {"x": session.vector(np.arange(8.0))})
        session.machine.kill_node(1)
        session.degrade()
        before = session.time
        store.restore(required=True)
        assert session.time > before

    def test_counters_survive_the_swap(self):
        session = Session(3)
        t0 = session.time
        session.matrix(np.arange(24.0).reshape(4, 6)).reduce(
            axis=1, op="sum"
        )
        t1 = session.time
        assert t1 > t0
        session.machine.kill_node(0)
        session.degrade()
        # the survivor shares the parent's counters: the clock keeps running
        assert session.time == t1
        session.matrix(np.arange(24.0).reshape(4, 6)).reduce(
            axis=1, op="sum"
        )
        assert session.time > t1


def test_router_charges_route_on_faulty_machine():
    # Regression: the faulty-path charge used to reference a variable only
    # assigned on the healthy path (UnboundLocalError).
    machine = Hypercube(3)
    machine.kill_link(0, 0)
    stats = Router(machine).simulate(
        np.array([0]), np.array([7]), np.array([4.0])
    )
    assert stats.element_hops >= 3 * 4.0  # detours only add hops
    assert machine.counters.time > 0
