"""Unit tests for the e-cube router (S3)."""

import numpy as np
import pytest

from repro.machine import CostModel, Hypercube, Router


@pytest.fixture
def m():
    return Hypercube(3, CostModel(tau=100.0, t_c=2.0, t_a=1.0, t_m=1.0))


@pytest.fixture
def router(m):
    return Router(m)


class TestSimulate:
    def test_single_message_pays_per_differing_bit(self, m, router):
        # 0 -> 7 differs in 3 bits: 3 rounds, congestion 1 each
        stats = router.simulate(np.array([0]), np.array([7]), np.array([4.0]))
        assert stats.rounds == 3
        assert stats.element_hops == 12.0
        assert stats.time == 3 * (100 + 2 * 4)

    def test_self_message_is_free(self, m, router):
        t0 = m.counters.time
        stats = router.simulate(np.array([3]), np.array([3]), np.array([10.0]))
        assert stats.rounds == 0
        assert stats.time == 0.0
        assert m.counters.time == t0

    def test_congestion_serialises(self, router):
        # two messages from the same source along the same first link
        src = np.array([0, 0])
        dst = np.array([1, 1])
        stats = router.simulate(src, dst, np.array([5.0, 5.0]))
        assert stats.rounds == 1
        assert stats.max_congestion == 10.0
        assert stats.time == 100 + 2 * 10

    def test_disjoint_messages_share_a_round(self, router):
        # 0->1 and 2->3 both use dimension 0 but different links
        stats = router.simulate(
            np.array([0, 2]), np.array([1, 3]), np.array([5.0, 5.0])
        )
        assert stats.rounds == 1
        assert stats.max_congestion == 5.0

    def test_dimension_order_is_lowest_first(self, router):
        # message 0->6 (bits 1,2) and 1->3 (bit 1): both traverse dim 1
        # from different nodes -> no shared link, one round for dim 1.
        stats = router.simulate(
            np.array([0, 1]), np.array([6, 3]), np.array([1.0, 1.0])
        )
        assert stats.rounds == 2  # dims 1 and 2 (dim 2 only for the first)

    def test_charge_flag(self, m, router):
        t0 = m.counters.time
        router.simulate(np.array([0]), np.array([7]), np.array([1.0]), charge=False)
        assert m.counters.time == t0
        router.simulate(np.array([0]), np.array([7]), np.array([1.0]))
        assert m.counters.time > t0

    def test_out_of_range_rejected(self, router):
        with pytest.raises(ValueError):
            router.simulate(np.array([8]), np.array([0]), np.array([1.0]))
        with pytest.raises(ValueError):
            router.simulate(np.array([0]), np.array([-1]), np.array([1.0]))

    def test_shape_mismatch_rejected(self, router):
        with pytest.raises(ValueError, match="identical shapes"):
            router.simulate(np.array([0, 1]), np.array([1]), np.array([1.0]))


class TestPermute:
    def test_permutation_moves_blocks(self, m, router):
        pv = m.pvar(np.arange(8.0))
        dest = m.pvar((np.arange(8) + 1) % 8)  # cyclic shift
        out = router.permute(pv, dest)
        expect = np.empty(8)
        expect[(np.arange(8) + 1) % 8] = np.arange(8.0)
        assert np.array_equal(out.data, expect)

    def test_identity_permutation_free_rounds(self, m, router):
        pv = m.pvar(np.arange(8.0))
        t0 = m.counters.time
        out = router.permute(pv, m.pvar(np.arange(8)))
        assert np.array_equal(out.data, pv.data)
        assert m.counters.time == t0

    def test_bit_reversal_permutation(self, m, router):
        rev = np.array([int(f"{i:03b}"[::-1], 2) for i in range(8)])
        pv = m.pvar(np.arange(8.0))
        out = router.permute(pv, m.pvar(rev))
        assert np.array_equal(out.data[rev], np.arange(8.0))

    def test_non_permutation_rejected(self, m, router):
        pv = m.pvar(np.arange(8.0))
        with pytest.raises(ValueError, match="not a permutation"):
            router.permute(pv, m.pvar(np.zeros(8, dtype=int)))

    def test_non_scalar_dest_rejected(self, m, router):
        pv = m.pvar(np.arange(8.0))
        with pytest.raises(ValueError, match="scalar PVar"):
            router.permute(pv, m.zeros((2,)))

    def test_block_payload(self, m, router):
        pv = m.pvar(np.arange(16.0).reshape(8, 2))
        dest = m.pvar(np.arange(8)[::-1].copy())
        out = router.permute(pv, dest)
        assert np.array_equal(out.data[7], pv.data[0])


class TestPointToPoint:
    def test_delivers_block(self, m, router):
        pv = m.pvar(np.arange(8.0))
        out, stats = router.point_to_point(pv, src=0, dst=5)
        assert out.data[5] == 0.0
        assert out.data[3] == 3.0  # untouched elsewhere
        assert stats.rounds == 2  # 0 -> 5 differs in bits 0 and 2

    def test_explicit_element_count(self, m, router):
        pv = m.pvar(np.arange(8.0))
        _, stats = router.point_to_point(pv, 0, 1, elements=10)
        assert stats.time == 100 + 2 * 10


class TestCongestionStructure:
    def test_all_to_one_congests_near_root(self):
        """Many-to-one traffic must cost ~p at the root links, not lg p."""
        m = Hypercube(4, CostModel(tau=0.0, t_c=1.0, t_a=1, t_m=1))
        r = Router(m)
        src = np.arange(16)
        dst = np.zeros(16, dtype=int)
        stats = r.simulate(src, dst, np.ones(16))
        # Half the machine funnels through the last dimension's root link.
        assert stats.max_congestion >= 8

    def test_shuffle_permutation_is_congestion_free(self):
        m = Hypercube(4, CostModel.unit())
        r = Router(m)
        src = np.arange(16)
        dst = ((src << 1) | (src >> 3)) & 15  # rotate address bits
        stats = r.simulate(src, dst, np.ones(16))
        assert stats.max_congestion <= 2.0
