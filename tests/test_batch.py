"""Batched simulation hypervisor: lane bit-identity and isolation.

The contract under test is absolute: every lane of a
:class:`repro.batch.BatchSession` is bit-identical — results, simulated
ticks, *all* cost counters — to the same problem run on a scalar
:class:`repro.Session`.  Batching is a host-side wall-clock optimisation
only.  The strongest pins run the scalar side in a fresh subprocess
(no batch module imported, no shared interpreter state), mirroring the
golden-cost methodology; faster in-process checks cover the property
across seeds and workloads.

Also pinned here: the batch-off guarantee (a scalar run never imports
``repro.batch``) and lane isolation (a faulted configuration in a sweep
runs scalar and cannot perturb the batched lanes).
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import Session
from repro.algorithms import gaussian, matvec as mv, simplex
from repro.batch import BatchSession, sweep
from repro.batch import algorithms as batch_algorithms
from repro.batch.sweep import make_problem
from repro.errors import ConfigError
from repro.faults import FaultPlan
from repro.faults.plan import NodeKill

SRC = str(Path(__file__).resolve().parent.parent / "src")
SUBPROCESS_ENV = {"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"}


def _snap_dict(snapshot):
    return {k: float(v) for k, v in snapshot.as_dict().items()}


# -- lane bit-identity (in-process, across seeds) -----------------------------


@pytest.mark.parametrize("seed", [0, 1, 7])
def test_gaussian_lanes_match_scalar_runs(seed):
    n_runs, n_dims = 5, 4
    grid = [{"n_dims": n_dims, "n": 9, "seed": seed + k} for k in range(n_runs)]
    datas = [make_problem("gaussian", g) for g in grid]

    session = BatchSession(n_dims, n_runs=n_runs)
    res = batch_algorithms.gaussian_solve(
        session,
        np.stack([d["A"] for d in datas]),
        np.stack([d["b"] for d in datas]),
    )
    for lane, data in enumerate(datas):
        scalar = Session(n_dims)
        want = gaussian.solve(scalar.matrix(data["A"]), data["b"])
        assert np.array_equal(res.x[lane], want.x)
        assert np.array_equal(res.pivots[lane], want.pivots)
        assert float(res.cost.time[lane]) == want.cost.time
        assert _snap_dict(res.lane(lane).cost) == _snap_dict(want.cost)
        assert _snap_dict(session.lane_snapshot(lane)) == _snap_dict(
            scalar.snapshot()
        )


@pytest.mark.parametrize("seed", [0, 3])
def test_simplex_lanes_match_scalar_runs(seed):
    n_runs, n_dims = 4, 4
    grid = [
        {"n_dims": n_dims, "n": 8, "m": 5, "seed": seed + k}
        for k in range(n_runs)
    ]
    datas = [make_problem("simplex", g) for g in grid]

    session = BatchSession(n_dims, n_runs=n_runs)
    res = batch_algorithms.simplex_solve(
        session,
        np.stack([d["A"] for d in datas]),
        np.stack([d["b"] for d in datas]),
        np.stack([d["c"] for d in datas]),
    )
    for lane, data in enumerate(datas):
        scalar = Session(n_dims)
        want = simplex.solve(scalar.machine, data["A"], data["b"], data["c"])
        got = res.lane(lane)
        assert got.status == want.status
        assert got.iterations == want.iterations
        assert got.objective == want.objective  # bitwise, not allclose
        assert np.array_equal(got.x, want.x)
        assert np.array_equal(res.basis[lane], want.basis)
        assert _snap_dict(got.cost) == _snap_dict(want.cost)


def test_matvec_lanes_match_scalar_runs():
    n_runs, n_dims = 6, 4
    grid = [{"n_dims": n_dims, "n": 12, "seed": k} for k in range(n_runs)]
    datas = [make_problem("matvec", g) for g in grid]

    session = BatchSession(n_dims, n_runs=n_runs)
    res = batch_algorithms.matvec(
        session,
        np.stack([d["A"] for d in datas]),
        np.stack([d["x"] for d in datas]),
    )
    for lane, data in enumerate(datas):
        scalar = Session(n_dims)
        M = scalar.matrix(data["A"])
        want = mv.matvec(M, scalar.row_vector(data["x"], like=M))
        assert np.array_equal(res.y[lane], want.y.to_numpy())
        assert float(res.cost.time[lane]) == want.cost.time
        assert _snap_dict(res.lane_cost(lane)) == _snap_dict(want.cost)


def test_lane_width_does_not_change_lanes():
    """A lane's outcome must not depend on who shares the batch."""
    n_dims = 4
    grid6 = [{"n_dims": n_dims, "n": 10, "seed": k} for k in range(6)]
    wide = sweep("gaussian", grid6)
    solo = sweep("gaussian", [grid6[3]])
    assert wide[3]["batched"] and solo[0]["batched"]
    assert np.array_equal(wide[3]["x"], solo[0]["x"])
    assert wide[3]["time"] == solo[0]["time"]
    assert wide[3]["pivots"] == solo[0]["pivots"]


# -- lane bit-identity (subprocess pins) --------------------------------------


_SUBPROCESS_SCRIPT = """\
import json
import numpy as np
from repro import Session
from repro.algorithms import gaussian
from repro.batch.sweep import make_problem

params = json.loads(%r)
data = make_problem("gaussian", params)
s = Session(params["n_dims"])
res = gaussian.solve(s.matrix(data["A"]), data["b"])
print(json.dumps({
    "x": res.x.tolist(),
    "pivots": [int(v) for v in res.pivots],
    "time": res.cost.time,
    "snapshot": {k: float(v) for k, v in s.snapshot().as_dict().items()},
}))
"""


def test_gaussian_lane_matches_fresh_interpreter():
    """The hardest pin: scalar side computed in a clean subprocess."""
    n_runs, n_dims, lane = 4, 4, 2
    grid = [{"n_dims": n_dims, "n": 9, "seed": k} for k in range(n_runs)]
    datas = [make_problem("gaussian", g) for g in grid]
    session = BatchSession(n_dims, n_runs=n_runs)
    res = batch_algorithms.gaussian_solve(
        session,
        np.stack([d["A"] for d in datas]),
        np.stack([d["b"] for d in datas]),
    )

    out = subprocess.run(
        [sys.executable, "-c", _SUBPROCESS_SCRIPT % json.dumps(grid[lane])],
        capture_output=True,
        text=True,
        env=SUBPROCESS_ENV,
        check=True,
    )
    want = json.loads(out.stdout)
    assert res.x[lane].tolist() == want["x"]  # exact: same float bits
    assert [int(v) for v in res.pivots[lane]] == want["pivots"]
    assert float(res.cost.time[lane]) == want["time"]
    assert _snap_dict(session.lane_snapshot(lane)) == want["snapshot"]


def test_scalar_run_never_imports_batch_module():
    """Batch-off guarantee: the hypervisor stays cold on scalar paths."""
    script = (
        "import sys\n"
        "import numpy as np\n"
        "from repro import Session, workloads\n"
        "from repro.algorithms import gaussian\n"
        "A, b, _ = workloads.diagonally_dominant_system(9, seed=0)\n"
        "s = Session(4, sanitize=True)\n"
        "res = gaussian.solve(s.matrix(A), b)\n"
        "assert res.x.shape == (9,)\n"
        "assert 'repro.batch' not in sys.modules, 'batch module leaked'\n"
        "print('OK')\n"
    )
    out = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        env=SUBPROCESS_ENV,
        check=True,
    )
    assert out.stdout.strip() == "OK"


# -- lane isolation -----------------------------------------------------------


def test_faulted_config_cannot_perturb_batched_lanes():
    """A fault plan in the sweep runs scalar; healthy lanes are untouched."""
    n_dims = 4
    healthy = [{"n_dims": n_dims, "n": 10, "seed": k} for k in range(4)]
    faulted = dict(
        healthy[1], faults=FaultPlan([NodeKill(time=50.0, pid=3)])
    )
    mixed = sweep("gaussian", healthy[:2] + [faulted] + healthy[2:])
    clean = sweep("gaussian", healthy)

    assert not mixed[2]["batched"]
    assert mixed[2]["resilience"]["recovered"]
    for got, want in zip(mixed[:2] + mixed[3:], clean):
        assert got["batched"]
        assert np.array_equal(got["x"], want["x"])
        assert got["time"] == want["time"]


def test_sdc_config_cannot_perturb_batched_lanes():
    from repro.faults.plan import BitFlip

    n_dims = 4
    healthy = [{"n_dims": n_dims, "n": 10, "seed": k} for k in range(3)]
    flipped = dict(
        healthy[0],
        faults=FaultPlan([BitFlip(time=50.0, pid=1, bit=3)]),
        abft=True,
    )
    mixed = sweep("gaussian", healthy + [flipped])
    clean = sweep("gaussian", healthy)
    assert not mixed[3]["batched"]
    for got, want in zip(mixed[:3], clean):
        assert got["batched"]
        assert np.array_equal(got["x"], want["x"])
        assert got["time"] == want["time"]


def test_run_resilient_smoke_under_sweep():
    """Degraded-subcube recovery still works when routed through sweep."""
    n_dims = 4
    grid = [
        {"n_dims": n_dims, "n": 8, "seed": 0},
        {
            "n_dims": n_dims,
            "n": 8,
            "seed": 1,
            "faults": FaultPlan([NodeKill(time=40.0, pid=1)]),
        },
    ]
    results = sweep("gaussian", grid)
    assert results[0]["batched"] and not results[1]["batched"]
    report = results[1]["resilience"]
    assert report["recovered"]
    data = make_problem("gaussian", grid[1])
    assert np.allclose(
        results[1]["x"], np.linalg.solve(data["A"], data["b"]), atol=1e-8
    )


# -- configuration guard rails ------------------------------------------------


def test_batch_session_rejects_per_machine_subsystems():
    for kwargs in (
        {"sanitize": True},
        {"abft": True},
        {"faults": FaultPlan([NodeKill(time=1.0, pid=0)])},
        {"trace": True},
    ):
        with pytest.raises(ConfigError):
            BatchSession(4, n_runs=2, **kwargs)


def test_sweep_rejects_unknown_workload():
    with pytest.raises(ConfigError):
        sweep("cholesky", [{"n_dims": 4, "n": 8, "seed": 0}])
