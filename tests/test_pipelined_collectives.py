"""Tests for the pipelined (large-message) collectives and their crossover."""

import numpy as np
import pytest

from repro import comm
from repro.machine import CostModel, Hypercube


def fresh(n=4, tau=100.0, t_c=2.0):
    return Hypercube(n, CostModel(tau=tau, t_c=t_c, t_a=1.0, t_m=1.0))


class TestBroadcastPipelined:
    def test_functional_equality(self, rng):
        m = fresh()
        data = rng.standard_normal((16, 24))
        pv = m.pvar(data)
        for dims, root in [((0, 1, 2), 3), ((1, 3), 0), (None, 5)]:
            a = comm.broadcast(m, pv, dims=dims, root_rank=root)
            b = comm.broadcast_pipelined(m, pv, dims=dims, root_rank=root)
            assert np.allclose(a.data, b.data), (dims, root)

    def test_degenerate_one_dim_falls_back(self, rng):
        m = fresh()
        pv = m.pvar(rng.standard_normal(16))
        r0 = m.counters.comm_rounds
        comm.broadcast_pipelined(m, pv, dims=(2,))
        assert m.counters.comm_rounds - r0 == 1

    def test_round_and_volume_schedule(self):
        m = fresh(tau=100, t_c=2)
        pv = m.pvar(np.zeros((16, 40)))
        t0 = m.counters.time
        r0 = m.counters.comm_rounds
        comm.broadcast_pipelined(m, pv)
        assert m.counters.comm_rounds - r0 == 2 * 4 - 1
        assert m.counters.time - t0 == 7 * (100 + 2 * 10)

    def test_wins_for_large_blocks_only(self):
        def cost(fn, L):
            m = fresh(tau=100, t_c=2)
            pv = m.pvar(np.zeros((16, L)))
            t0 = m.counters.time
            fn(m, pv)
            return m.counters.time - t0

        small_plain = cost(lambda m, p: comm.broadcast(m, p), 4)
        small_pipe = cost(lambda m, p: comm.broadcast_pipelined(m, p), 4)
        big_plain = cost(lambda m, p: comm.broadcast(m, p), 2000)
        big_pipe = cost(lambda m, p: comm.broadcast_pipelined(m, p), 2000)
        assert small_plain < small_pipe
        assert big_pipe < big_plain
        # asymptotic gain approaches k/2 = 2
        assert big_plain / big_pipe > 1.8

    def test_crossover_formula(self):
        c = CostModel(tau=100, t_c=2)
        k = 4
        L_star = comm.broadcast_crossover(c, k)
        for L in (int(L_star * 0.5), int(L_star * 2)):
            plain = k * (100 + 2 * L)
            pipe = (2 * k - 1) * (100 + 2 * (-(-L // k)))
            assert (pipe < plain) == (L > L_star), (L, L_star)

    def test_crossover_degenerate_cases(self):
        assert comm.broadcast_crossover(CostModel(tau=1, t_c=0), 4) == np.inf
        assert comm.broadcast_crossover(CostModel.cm2(), 1) == np.inf


class TestReduceAllPipelined:
    def test_functional_equality(self, rng):
        m = fresh()
        data = rng.standard_normal((16, 24))
        pv = m.pvar(data)
        for opname in ("sum", "max", "min"):
            a = comm.reduce_all(m, pv, opname)
            b = comm.reduce_all_pipelined(m, pv, opname)
            assert np.allclose(a.data, b.data), opname

    def test_subcube(self, rng):
        m = fresh()
        pv = m.pvar(rng.standard_normal((16, 8)))
        a = comm.reduce_all(m, pv, "sum", dims=(0, 2))
        b = comm.reduce_all_pipelined(m, pv, "sum", dims=(0, 2))
        assert np.allclose(a.data, b.data)

    def test_bandwidth_optimal_volume(self):
        """Reduce-scatter + all-gather moves ~2L per processor vs k·L."""
        m_plain = fresh(tau=0, t_c=1)
        m_pipe = fresh(tau=0, t_c=1)
        L = 4096
        comm.reduce_all(m_plain, m_plain.pvar(np.zeros((16, L))), "sum")
        comm.reduce_all_pipelined(m_pipe, m_pipe.pvar(np.zeros((16, L))), "sum")
        plain_vol = m_plain.counters.elements_transferred
        pipe_vol = m_pipe.counters.elements_transferred
        assert plain_vol == pytest.approx(4 * L * 16)
        assert pipe_vol < 2.1 * L * 16

    def test_latency_bound_prefers_plain(self):
        m_plain = fresh(tau=10000, t_c=1)
        m_pipe = fresh(tau=10000, t_c=1)
        comm.reduce_all(m_plain, m_plain.pvar(np.zeros((16, 4))), "sum")
        comm.reduce_all_pipelined(m_pipe, m_pipe.pvar(np.zeros((16, 4))), "sum")
        assert m_plain.counters.time < m_pipe.counters.time
