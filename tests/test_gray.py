"""Unit + property tests for binary-reflected Gray codes (S4)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.embeddings import (
    deposit_bits,
    extract_bits,
    gray,
    gray_neighbors_differ_by_one_bit,
    gray_rank,
    hamming_distance,
)


class TestGray:
    def test_first_codes(self):
        assert [gray(i) for i in range(8)] == [0, 1, 3, 2, 6, 7, 5, 4]

    def test_vectorised(self):
        out = gray(np.arange(16))
        assert out[2] == 3 and out[15] == 8

    def test_scalar_returns_int(self):
        assert isinstance(gray(5), int)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gray(-1)
        with pytest.raises(ValueError):
            gray_rank(-2)

    @pytest.mark.parametrize("k", [0, 1, 2, 5, 8])
    def test_neighbor_property_all_sizes(self, k):
        assert gray_neighbors_differ_by_one_bit(k)

    def test_gray_is_a_bijection(self):
        codes = gray(np.arange(256))
        assert len(set(codes.tolist())) == 256

    @given(st.integers(min_value=0, max_value=2**40))
    def test_rank_inverts_gray(self, i):
        assert gray_rank(gray(i)) == i

    @given(st.integers(min_value=0, max_value=2**40))
    def test_gray_inverts_rank(self, c):
        assert gray(gray_rank(c)) == c

    @given(st.integers(min_value=0, max_value=2**30))
    def test_consecutive_ranks_are_cube_neighbors(self, i):
        assert hamming_distance(gray(i), gray(i + 1)) == 1


class TestHamming:
    def test_basic(self):
        assert hamming_distance(0, 0) == 0
        assert hamming_distance(0b101, 0b010) == 3
        assert hamming_distance(7, 5) == 1

    def test_vectorised(self):
        out = hamming_distance(np.array([0, 1, 3]), np.array([7, 1, 0]))
        assert np.array_equal(out, [3, 0, 2])

    @given(st.integers(0, 2**30), st.integers(0, 2**30))
    def test_symmetry(self, a, b):
        assert hamming_distance(a, b) == hamming_distance(b, a)

    @given(st.integers(0, 2**20), st.integers(0, 2**20), st.integers(0, 2**20))
    def test_triangle_inequality(self, a, b, c):
        assert hamming_distance(a, c) <= (
            hamming_distance(a, b) + hamming_distance(b, c)
        )


class TestBitScatterGather:
    def test_deposit_places_bits(self):
        assert deposit_bits(0b11, (1, 3)) == 0b1010
        assert deposit_bits(0b01, (1, 3)) == 0b0010
        assert deposit_bits(0b10, (0, 2)) == 0b100

    def test_extract_gathers_bits(self):
        assert extract_bits(0b1010, (1, 3)) == 0b11
        assert extract_bits(0b1010, (0, 2)) == 0b00

    def test_round_trip(self):
        dims = (0, 2, 5)
        for v in range(8):
            assert extract_bits(deposit_bits(v, dims), dims) == v

    def test_vectorised(self):
        vals = np.arange(4)
        out = deposit_bits(vals, (2, 4))
        assert np.array_equal(out, [0, 4, 16, 20])
        assert np.array_equal(extract_bits(out, (2, 4)), vals)

    @given(
        st.integers(0, 255),
        st.permutations(range(8)).map(lambda p: tuple(p[:4])),
    )
    def test_round_trip_property(self, v, dims):
        v &= (1 << len(dims)) - 1
        assert extract_bits(deposit_bits(v, dims), dims) == v

    def test_disjoint_deposits_commute(self):
        a = deposit_bits(0b11, (0, 1))
        b = deposit_bits(0b10, (2, 3))
        assert a | b == 0b1011
