"""The differential oracle: every algorithm vs its serial reference.

These tests exercise the registry machinery itself (a deliberately broken
case must be reported as a divergence with its offending configuration)
plus a quick slice of the real sweep; ``python -m repro check`` runs the
full matrix.
"""

from __future__ import annotations

import numpy as np

from repro.check.oracle import (
    CASES,
    FULL_MATRIX,
    OracleCase,
    QUICK_MATRIX,
    run_case,
    run_differential,
    run_recovery_case,
    _recovery_workloads,
)


def test_case_registry_covers_the_algorithms():
    names = {case.name for case in CASES}
    assert {
        "matvec", "vecmat", "gaussian", "simplex", "fft", "bitonic_sort",
        "histogram", "qr_solve", "tridiagonal", "lu_solve",
        "conjugate_gradient",
    } <= names


def test_full_matrix_shape():
    # cost models x plan-cache on/off x trace on/off
    assert len(FULL_MATRIX) == 8
    assert len(set(FULL_MATRIX)) == 8
    assert set(QUICK_MATRIX) <= set(FULL_MATRIX)


def test_quick_differential_passes():
    report = run_differential(seed=0, n_dims=3, quick=True)
    assert report["passed"], report["failures"]
    assert report["failures"] == []
    # every case ran in every quick cell, plus the recovery axis (3 node
    # kills), the SDC axis (3 single flips + 1 multi-flip escalation) and
    # the batched-execution axis (gaussian + matvec in quick mode)
    assert len(report["cells"]) == len(CASES) * len(QUICK_MATRIX) + 7 + 2


def test_divergent_case_is_reported_with_config():
    def broken(session, seed):
        rng = np.random.default_rng(seed)
        got = rng.standard_normal(5)
        return got, got + 1.0  # always off by one

    case = OracleCase(name="broken", run=broken, tol=1e-8)
    result = run_case(
        case, cost_model="unit", plan_cache=False, trace=False, seed=0,
        n_dims=3,
    )
    assert not result.passed
    assert result.case == "broken"
    assert result.config["cost_model"] == "unit"
    assert result.max_error is not None and result.max_error > 0.5


def test_crashing_case_is_a_divergence_not_an_error():
    def crashes(session, seed):
        raise RuntimeError("kaboom")

    case = OracleCase(name="crashes", run=crashes)
    result = run_case(
        case, cost_model="cm2", plan_cache=True, trace=False, seed=0,
        n_dims=3,
    )
    assert not result.passed
    assert "kaboom" in result.detail


def test_recovery_case_matches_fault_free_baseline():
    name, make_workload, reference = _recovery_workloads(seed=0)[0]
    result = run_recovery_case(
        name, make_workload, reference, seed=0, n_dims=4
    )
    assert result.passed, result.detail
    assert result.config["axis"] == "fault-recovered"
    assert result.config["recovered"]
    assert result.config["final_p"] < 16
