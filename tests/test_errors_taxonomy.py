"""The error taxonomy: typed exceptions everywhere, no bare ValueError.

Two layers of pinning:

* a source scan — no ``raise ValueError`` may reappear anywhere in
  ``src/`` (the taxonomy classes double-inherit ``ValueError``, so
  pre-taxonomy ``except ValueError`` callers keep working);
* behavioural checks — representative public entry points raise the
  *taxonomy* class, and the old ``except ValueError`` idiom still
  catches them.
"""

from __future__ import annotations

import re
from pathlib import Path

import numpy as np
import pytest

from repro import Session
from repro import errors

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


def test_no_bare_value_error_raised_in_src():
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        for i, line in enumerate(path.read_text().splitlines(), 1):
            if re.search(r"\braise ValueError\b", line):
                offenders.append(f"{path.relative_to(SRC)}:{i}")
    assert offenders == [], (
        "bare ValueError raised (use the repro.errors taxonomy): "
        + ", ".join(offenders)
    )


def test_taxonomy_hierarchy():
    for cls in (errors.ShapeError, errors.EmbeddingError, errors.ConfigError):
        assert issubclass(cls, ValueError)
        assert issubclass(cls, errors.ReproError)
    assert issubclass(errors.SanitizerError, RuntimeError)
    assert issubclass(errors.FaultError, errors.ReproError)
    assert not issubclass(errors.ShapeError, RuntimeError)


def test_public_api_raises_taxonomy_classes():
    from repro.algorithms import gaussian, simplex, sort

    session = Session(3)

    with pytest.raises(errors.ShapeError):
        gaussian.solve(session.matrix(np.ones((3, 4))), np.ones(3))
    with pytest.raises(errors.ConfigError):
        simplex.solve(
            session.machine, np.eye(2), np.ones(2), np.ones(2),
            rule="steepest",
        )
    with pytest.raises(errors.ConfigError):
        Session(3, cost_model="warp-drive")
    with pytest.raises(errors.ConfigError):
        session.machine.exchange(
            session.vector(np.arange(8.0)).pvar, dim=99
        )
    with pytest.raises(errors.EmbeddingError):
        # row-aligned (replicated) vectors are not in vector order
        A = session.matrix(np.ones((4, 4)))
        sort.bitonic_sort(session.row_vector(np.ones(4), A))


def test_legacy_except_value_error_still_catches():
    from repro.algorithms import gaussian

    session = Session(3)
    try:
        gaussian.solve(session.matrix(np.ones((3, 4))), np.ones(3))
    except ValueError as exc:
        assert isinstance(exc, errors.ShapeError)
    else:
        pytest.fail("expected a ShapeError")
