"""Unit tests for the cost model (S1)."""

import pytest

from repro.machine import CostModel


class TestPresets:
    def test_unit_preset_is_all_ones(self):
        c = CostModel.unit()
        assert (c.tau, c.t_c, c.t_a, c.t_m) == (1.0, 1.0, 1.0, 1.0)

    def test_cm2_startup_dominates_transfer(self):
        c = CostModel.cm2()
        assert c.tau > 10 * c.t_c, "CM-2 router start-up must dominate"

    def test_cm2_transfer_dominates_arithmetic(self):
        c = CostModel.cm2()
        assert c.t_c > c.t_a

    def test_latency_bound_has_huge_startup(self):
        assert CostModel.latency_bound().tau > CostModel.cm2().tau

    def test_bandwidth_bound_has_huge_transfer(self):
        c = CostModel.bandwidth_bound()
        assert c.t_c > c.tau / 10

    def test_negative_parameter_rejected(self):
        with pytest.raises(ValueError, match="must be >= 0"):
            CostModel(tau=-1.0)
        with pytest.raises(ValueError):
            CostModel(t_c=-0.5)
        with pytest.raises(ValueError):
            CostModel(t_a=-2)
        with pytest.raises(ValueError):
            CostModel(t_m=-0.1)

    def test_frozen(self):
        c = CostModel.unit()
        with pytest.raises(Exception):
            c.tau = 5.0


class TestCharging:
    def test_comm_round_is_startup_plus_volume(self):
        c = CostModel(tau=100.0, t_c=2.0)
        assert c.comm_round(10) == 100.0 + 20.0

    def test_comm_round_multiple_hops(self):
        c = CostModel(tau=100.0, t_c=2.0)
        assert c.comm_round(10, hops=3) == 3 * (100.0 + 20.0)

    def test_comm_round_zero_hops_is_free(self):
        assert CostModel.cm2().comm_round(10, hops=0) == 0.0

    def test_comm_round_negative_hops_rejected(self):
        with pytest.raises(ValueError):
            CostModel.unit().comm_round(10, hops=-1)

    def test_arithmetic_scales_with_elements(self):
        c = CostModel(t_a=3.0)
        assert c.arithmetic(7) == 21.0

    def test_memory_scales_with_elements(self):
        c = CostModel(t_m=0.5)
        assert c.memory(8) == 4.0

    def test_zero_volume_round_still_pays_startup(self):
        c = CostModel(tau=50.0, t_c=1.0)
        assert c.comm_round(0) == 50.0
