"""Tests for the distributed radix-2 FFT."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms import fft as F
from repro.machine import CostModel, Hypercube


@pytest.fixture
def m():
    return Hypercube(4, CostModel.unit())


class TestForward:
    @pytest.mark.parametrize("N", [1, 2, 16, 64, 256])
    def test_matches_numpy(self, m, rng, N):
        if N < m.p:
            pytest.skip("fewer points than processors")
        x = rng.standard_normal(N) + 1j * rng.standard_normal(N)
        res = F.fft(m, x)
        assert np.allclose(res.values, np.fft.fft(x), atol=1e-9)

    def test_real_input(self, m, rng):
        x = rng.standard_normal(64)
        res = F.fft(m, x)
        assert np.allclose(res.values, np.fft.fft(x), atol=1e-9)

    def test_impulse_gives_flat_spectrum(self, m):
        x = np.zeros(32)
        x[0] = 1.0
        res = F.fft(m, x)
        assert np.allclose(res.values, 1.0)

    def test_constant_gives_dc_only(self, m):
        res = F.fft(m, np.ones(32))
        assert np.isclose(res.values[0], 32.0)
        assert np.allclose(res.values[1:], 0.0, atol=1e-10)

    def test_single_processor(self, rng):
        m1 = Hypercube(0, CostModel.unit())
        x = rng.standard_normal(16)
        assert np.allclose(F.fft(m1, x).values, np.fft.fft(x), atol=1e-10)

    def test_one_point_per_processor(self, m, rng):
        x = rng.standard_normal(16)
        assert np.allclose(F.fft(m, x).values, np.fft.fft(x), atol=1e-10)

    def test_non_power_of_two_rejected(self, m):
        with pytest.raises(ValueError, match="power of two"):
            F.fft(m, np.zeros(12))

    def test_too_few_points_rejected(self, m):
        with pytest.raises(ValueError, match="more processors"):
            F.fft(m, np.zeros(8))

    def test_2d_rejected(self, m):
        with pytest.raises(ValueError, match="1-D"):
            F.fft(m, np.zeros((4, 4)))


class TestInverse:
    def test_round_trip(self, m, rng):
        x = rng.standard_normal(128) + 1j * rng.standard_normal(128)
        back = F.ifft(m, F.fft(m, x).values)
        assert np.allclose(back.values, x, atol=1e-9)

    def test_matches_numpy_ifft(self, m, rng):
        x = rng.standard_normal(64) + 1j * rng.standard_normal(64)
        assert np.allclose(F.ifft(m, x).values, np.fft.ifft(x), atol=1e-10)


class TestConvolve:
    def test_circular_convolution(self, m, rng):
        a = rng.standard_normal(64)
        b = rng.standard_normal(64)
        res = F.convolve(m, a, b)
        expect = np.real(np.fft.ifft(np.fft.fft(a) * np.fft.fft(b)))
        assert np.allclose(np.real(res.values), expect, atol=1e-9)

    def test_identity_kernel(self, m, rng):
        a = rng.standard_normal(32)
        delta = np.zeros(32)
        delta[0] = 1.0
        res = F.convolve(m, a, delta)
        assert np.allclose(np.real(res.values), a, atol=1e-10)

    def test_shape_mismatch(self, m):
        with pytest.raises(ValueError):
            F.convolve(m, np.zeros(8), np.zeros(16))


class TestCost:
    def test_cube_stage_count(self):
        """lg p cross-processor stages, each one exchange round (plus the
        bit-reversal routing)."""
        m = Hypercube(3, CostModel.unit())
        x = np.ones(64)  # L = 8: 3 local + 3 cube stages
        r0 = m.counters.comm_rounds
        F.fft(m, x)
        rounds = m.counters.comm_rounds - r0
        assert rounds >= 3  # the three cube-stage exchanges
        assert rounds <= 3 + 3  # + at most n rounds of bit-reversal routing

    def test_flop_count_tracks_n_log_n(self):
        times = []
        for N in (64, 128, 256):
            m = Hypercube(2, CostModel(tau=0, t_c=0, t_a=1, t_m=0))
            f0 = m.counters.flops
            F.fft(m, np.ones(N))
            times.append(m.counters.flops - f0)
        # flops ~ 10 N lg N / p per processor-step; ratio ~ 2.3x per doubling
        assert 1.8 < times[1] / times[0] < 2.6
        assert 1.8 < times[2] / times[1] < 2.6

    def test_parseval_energy_preserved(self, m, rng):
        x = rng.standard_normal(64)
        X = F.fft(m, x).values
        assert np.isclose((np.abs(X) ** 2).sum() / 64, (x ** 2).sum())


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=0, max_value=4),
    st.integers(min_value=2, max_value=8),
    st.integers(min_value=0, max_value=2**31),
)
def test_property_matches_numpy(n, t, seed):
    if (1 << t) < (1 << n):
        return
    machine = Hypercube(n, CostModel.unit())
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(1 << t) + 1j * rng.standard_normal(1 << t)
    res = F.fft(machine, x)
    assert np.allclose(res.values, np.fft.fft(x), atol=1e-8)
