"""Unit tests for the subcube collectives (S9): semantics and cost structure."""

import numpy as np
import pytest

from repro import comm
from repro.machine import CostModel, Hypercube


@pytest.fixture
def m():
    return Hypercube(4, CostModel.unit())


def brute_subcube_members(p, pid, dims):
    """All pids in pid's subcube spanned by dims, by brute force."""
    mask = sum(1 << d for d in dims)
    return [q for q in range(p) if (q & ~mask) == (pid & ~mask)]


def brute_rank(pid, dims):
    return sum(((pid >> d) & 1) << k for k, d in enumerate(dims))


class TestSubcubeAddressing:
    @pytest.mark.parametrize("dims", [(0,), (1, 3), (0, 1, 2), (2,)])
    def test_subcube_rank(self, m, dims):
        ranks = comm.subcube_rank(m, dims)
        for pid in range(m.p):
            assert ranks[pid] == brute_rank(pid, dims)

    @pytest.mark.parametrize("dims", [(0,), (1, 3), (0, 2)])
    def test_subcube_base_is_rank_zero_member(self, m, dims):
        base = comm.subcube_base(m, dims)
        ranks = comm.subcube_rank(m, dims)
        for pid in range(m.p):
            assert ranks[base[pid]] == 0
            assert base[pid] in brute_subcube_members(m.p, pid, dims)


class TestBroadcast:
    @pytest.mark.parametrize("dims", [(0,), (0, 1), (1, 3), (0, 1, 2, 3)])
    @pytest.mark.parametrize("root", [0, 1])
    def test_every_member_gets_root_value(self, m, dims, root):
        if root >= (1 << len(dims)):
            pytest.skip("root outside subcube")
        pv = m.pvar(np.arange(16.0) * 10)
        out = comm.broadcast(m, pv, dims=dims, root_rank=root)
        ranks = comm.subcube_rank(m, dims)
        for pid in range(m.p):
            members = brute_subcube_members(m.p, pid, dims)
            src = [q for q in members if ranks[q] == root][0]
            assert out.data[pid] == pv.data[src]

    def test_empty_dims_is_identity(self, m):
        pv = m.pvar(np.arange(16.0))
        t0 = m.counters.time
        out = comm.broadcast(m, pv, dims=())
        assert out is pv
        assert m.counters.time == t0

    def test_cost_is_k_rounds_of_full_volume(self):
        m = Hypercube(4, CostModel(tau=100, t_c=2, t_a=1, t_m=1))
        pv = m.zeros((6,))
        t0 = m.counters.time
        comm.broadcast(m, pv, dims=(0, 2, 3))
        assert m.counters.time - t0 == 3 * (100 + 2 * 6)

    def test_block_payload(self, m):
        pv = m.pvar(np.arange(32.0).reshape(16, 2))
        out = comm.broadcast(m, pv, dims=(0, 1))
        assert np.array_equal(out.data[3], pv.data[0])

    def test_bad_root_rejected(self, m):
        with pytest.raises(ValueError, match="root_rank"):
            comm.broadcast(m, m.zeros(), dims=(0,), root_rank=2)


class TestReduce:
    @pytest.mark.parametrize("dims", [(0,), (2, 3), (0, 1, 2, 3)])
    @pytest.mark.parametrize("opname", ["sum", "max", "min", "prod"])
    def test_all_reduce_matches_brute_force(self, m, dims, opname):
        rng = np.random.default_rng(5)
        vals = rng.standard_normal(16)
        pv = m.pvar(vals)
        out = comm.reduce_all(m, pv, opname, dims=dims)
        op = comm.get_op(opname)
        for pid in range(m.p):
            members = brute_subcube_members(m.p, pid, dims)
            expect = vals[members[0]]
            for q in members[1:]:
                expect = op.ufunc(expect, vals[q])
            assert np.isclose(out.data[pid], expect)

    def test_reduce_defaults_to_whole_cube(self, m):
        pv = m.pvar(np.ones(16))
        out = comm.reduce_all(m, pv, "sum")
        assert np.all(out.data == 16)

    def test_reduce_to_root_same_result(self, m):
        pv = m.pvar(np.arange(16.0))
        out = comm.reduce(m, pv, "sum", dims=(0, 1))
        assert out.data[0] == 0 + 1 + 2 + 3

    def test_cost_structure(self):
        m = Hypercube(3, CostModel(tau=10, t_c=1, t_a=1, t_m=0))
        pv = m.zeros((4,))
        t0 = m.counters.time
        comm.reduce_all(m, pv, "sum")
        # 3 rounds x (exchange 10+4 + combine 4)
        assert m.counters.time - t0 == 3 * (10 + 4 + 4)

    def test_boolean_any_all(self, m):
        flags = np.zeros(16, dtype=bool)
        flags[5] = True
        out = comm.reduce_all(m, m.pvar(flags), "any")
        assert np.all(out.data)
        out2 = comm.reduce_all(m, m.pvar(flags), "all")
        assert not np.any(out2.data)


class TestReduceLoc:
    def test_argmax_global_winner(self, m):
        vals = np.arange(16.0)
        v, i = comm.reduce_all_loc(m, m.pvar(vals), m.pvar(np.arange(16)))
        assert np.all(v.data == 15) and np.all(i.data == 15)

    def test_argmin_mode(self, m):
        vals = np.arange(16.0)[::-1].copy()
        v, i = comm.reduce_all_loc(
            m, m.pvar(vals), m.pvar(np.arange(16)), mode="min"
        )
        assert np.all(v.data == 0) and np.all(i.data == 15)

    def test_tie_breaks_to_smallest_index(self, m):
        vals = np.zeros(16)
        v, i = comm.reduce_all_loc(m, m.pvar(vals), m.pvar(np.arange(16)))
        assert np.all(i.data == 0)

    def test_subcube_scoped(self, m):
        vals = np.arange(16.0)
        v, i = comm.reduce_all_loc(
            m, m.pvar(vals), m.pvar(np.arange(16)), dims=(0, 1)
        )
        # each group of 4 consecutive pids: winner is the largest pid
        for pid in range(16):
            assert i.data[pid] == (pid | 3)

    def test_bad_mode(self, m):
        with pytest.raises(ValueError, match="mode"):
            comm.reduce_all_loc(m, m.zeros(), m.zeros(), mode="median")

    def test_mismatched_shapes(self, m):
        with pytest.raises(ValueError, match="identical local shapes"):
            comm.reduce_all_loc(m, m.zeros((2,)), m.zeros((3,)))


class TestScan:
    def test_exclusive_scan_whole_cube(self, m):
        pv = m.pvar(np.arange(16.0))
        out = comm.scan(m, pv, "sum")
        expect = np.concatenate([[0.0], np.cumsum(np.arange(15.0))])
        assert np.allclose(out.data, expect)

    def test_inclusive_scan(self, m):
        pv = m.pvar(np.ones(16))
        out = comm.scan(m, pv, "sum", inclusive=True)
        assert np.allclose(out.data, np.arange(1, 17))

    def test_max_scan(self, m):
        rng = np.random.default_rng(7)
        vals = rng.standard_normal(16)
        out = comm.scan(m, m.pvar(vals), "max", inclusive=True)
        assert np.allclose(out.data, np.maximum.accumulate(vals))

    @pytest.mark.parametrize("dims", [(0, 1), (1, 3), (2,)])
    def test_subcube_scan_matches_brute_force(self, m, dims):
        rng = np.random.default_rng(8)
        vals = rng.standard_normal(16)
        out = comm.scan(m, m.pvar(vals), "sum", dims=dims)
        for pid in range(16):
            members = brute_subcube_members(m.p, pid, dims)
            members = sorted(members, key=lambda q: brute_rank(q, dims))
            myrank = brute_rank(pid, dims)
            assert np.isclose(out.data[pid], sum(vals[q] for q in members[:myrank]))

    def test_scan_identity_for_rank0(self, m):
        out = comm.scan(m, m.pvar(np.ones(16)), "sum", dims=(1, 2))
        ranks = comm.subcube_rank(m, (1, 2))
        assert np.all(out.data[ranks == 0] == 0.0)


class TestGatherScatter:
    def test_allgather_orders_by_rank(self, m):
        pv = m.pvar(np.arange(16.0))
        out = comm.allgather(m, pv, dims=(0, 1))
        for pid in range(16):
            base = pid & ~3
            assert np.array_equal(out.data[pid].ravel(), np.arange(base, base + 4))

    def test_allgather_volume_doubles_per_round(self):
        m = Hypercube(3, CostModel(tau=0, t_c=1, t_a=0, t_m=0))
        pv = m.zeros((2,))
        t0 = m.counters.time
        comm.allgather(m, pv)
        # rounds move 2, 4, 8 elements
        assert m.counters.time - t0 == 2 + 4 + 8

    def test_gather_alias(self, m):
        pv = m.pvar(np.arange(16.0))
        out = comm.gather(m, pv, dims=(2, 3))
        assert out.local_shape == (4, 1)

    def test_scatter_inverts_gather(self, m):
        rng = np.random.default_rng(9)
        blocks = rng.standard_normal((16, 4, 3))
        pv = m.pvar(blocks)
        out = comm.scatter(m, pv, dims=(0, 1))
        ranks = comm.subcube_rank(m, (0, 1))
        base = comm.subcube_base(m, (0, 1))
        for pid in range(16):
            assert np.array_equal(out.data[pid], blocks[base[pid], ranks[pid]])

    def test_scatter_root_rank(self, m):
        blocks = np.arange(16 * 4.0).reshape(16, 4)
        out = comm.scatter(m, m.pvar(blocks), dims=(0, 1), root_rank=3)
        # root of pid 0's subcube at rank 3 is pid 3
        assert out.data[0] == blocks[3, 0]

    def test_scatter_halving_cost(self):
        m = Hypercube(3, CostModel(tau=10, t_c=1, t_a=0, t_m=0))
        pv = m.zeros((8, 2))  # 8 blocks of 2
        t0 = m.counters.time
        comm.scatter(m, pv)
        # rounds move 8, 4, 2 elements (4,2,1 blocks of 2)
        assert m.counters.time - t0 == (10 + 8) + (10 + 4) + (10 + 2)

    def test_scatter_shape_validation(self, m):
        with pytest.raises(ValueError, match="leading local axis"):
            comm.scatter(m, m.zeros((3, 2)), dims=(0, 1))


class TestTreeVsSerialRounds:
    """The structural fact behind the paper's speedups: tree collectives
    use lg(p) rounds where serialised communication uses p-1."""

    def test_reduce_round_count_is_logarithmic(self):
        for n in (2, 4, 6):
            m = Hypercube(n, CostModel.unit())
            comm.reduce_all(m, m.zeros(), "sum")
            assert m.counters.comm_rounds == n

    def test_broadcast_round_count_is_logarithmic(self):
        for n in (2, 4, 6):
            m = Hypercube(n, CostModel.unit())
            comm.broadcast(m, m.zeros())
            assert m.counters.comm_rounds == n
