"""Adversarial checkpoint-window schedules (mid-save / mid-restore kills).

``generate_checkpoint_schedules`` measures the simulated-time windows of
every checkpoint save on a fault-free probe and drops node kills *inside*
them, so the campaign exercises the ugliest interleavings: a node dying
during the checkpoint collection itself, a second node dying during the
post-degrade restore scatter, and heals that promote the survivor back up
— all replayable through ``repro faults --fault-plan``.
"""

import json

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.faults import NodeHeal, NodeKill
from repro.faults import chaos
from repro.__main__ import main


class TestWindows:
    def test_windows_are_ordered_spans(self):
        windows = chaos.checkpoint_windows(
            "gaussian", 8, 0, 4, strategy="host", checkpoint_every=2
        )
        assert len(windows) >= 2
        for t0, t1 in windows:
            assert t1 > t0  # every save charges simulated time
        starts = [t0 for t0, _ in windows]
        assert starts == sorted(starts)

    def test_diskless_windows_are_narrower(self):
        """The in-cube save's window is a fraction of the host gather's —
        the same gap the warehouse table measures, seen from the clock."""
        span = lambda ws: sum(t1 - t0 for t0, t1 in ws)
        host = chaos.checkpoint_windows("gaussian", 8, 0, 4, "host", 2)
        diskless = chaos.checkpoint_windows("gaussian", 8, 0, 4, "diskless", 2)
        assert span(diskless) < span(host) / 2.0


class TestGeneration:
    def test_deterministic(self):
        a = chaos.generate_checkpoint_schedules(6, master_seed=3)
        b = chaos.generate_checkpoint_schedules(6, master_seed=3)
        assert [s.as_dict() for s in a] == [s.as_dict() for s in b]

    def test_independent_child_seeds(self):
        short = chaos.generate_checkpoint_schedules(2, master_seed=5)
        long = chaos.generate_checkpoint_schedules(5, master_seed=5)
        assert [s.as_dict() for s in short] == [
            s.as_dict() for s in long[:2]
        ]

    def test_construction_invariants(self):
        schedules = chaos.generate_checkpoint_schedules(6, master_seed=0)
        for s in schedules:
            assert s.workload == "gaussian"  # the only mid-run checkpointer
            assert s.strategy in chaos.STRATEGIES
            kills = [e for e in s.plan.events if isinstance(e, NodeKill)]
            heals = [e for e in s.plan.events if isinstance(e, NodeHeal)]
            assert kills[0].pid % 2 == 1  # odd victim pins the survivor
            assert len(kills) == (2 if s.index % 2 == 1 else 1)
            assert len(heals) == (1 if s.index % 3 == 2 else 0)
            times = [e.time for e in s.plan.events]
            assert times == sorted(times)

    def test_bad_strategy_rejected(self):
        with pytest.raises(ConfigError, match="strategy"):
            chaos.generate_checkpoint_schedules(2, strategies=("tape",))
        with pytest.raises(ConfigError, match="count"):
            chaos.generate_checkpoint_schedules(0)


class TestExecution:
    def test_mid_save_kill_recovers_bit_identically(self):
        """Index 0: one kill at a save-window midpoint — the interrupted
        save never commits and recovery resumes from the previous one."""
        baselines = chaos.BaselineCache()
        schedules = chaos.generate_checkpoint_schedules(3, master_seed=0)
        outcome = chaos.run_schedule(schedules[0], baselines)
        assert outcome["ok"], outcome["error"]
        assert outcome["recoveries"] >= 1

    def test_mid_restore_kill_forces_second_recovery(self):
        """Odd index: the trailing kill is still pending when the degraded
        session replays, and fires inside the restore scatter."""
        baselines = chaos.BaselineCache()
        schedules = chaos.generate_checkpoint_schedules(2, master_seed=0)
        outcome = chaos.run_schedule(schedules[1], baselines)
        assert outcome["ok"], outcome["error"]
        assert outcome["recoveries"] == 2

    def test_heal_schedule_promotes(self):
        """Index 2 mod 3: the healed victim re-expands the survivor."""
        baselines = chaos.BaselineCache()
        schedules = chaos.generate_checkpoint_schedules(3, master_seed=0)
        outcome = chaos.run_schedule(schedules[2], baselines)
        assert outcome["ok"], outcome["error"]
        assert outcome["promotions"] >= 1

    def test_campaign_appends_checkpoint_block(self):
        report = chaos.run_campaign(
            2, master_seed=0, n_dims=4, sizes=(8,),
            checkpoint_schedules=3,
        )
        assert report["schedules"] == 5
        assert report["failed"] == 0
        assert sum(report["strategies"].values()) == 5
        assert report["recoveries"] >= 3  # every checkpoint schedule kills


class TestReplay:
    def test_schedule_plan_replays_through_faults_cli(self, tmp_path, capsys):
        """Satellite: a checkpoint-window plan round-trips through
        ``repro faults --fault-plan`` with the matching problem knobs and
        recovers bit-identically there too."""
        [schedule] = chaos.generate_checkpoint_schedules(1, master_seed=0)
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(schedule.plan.as_dict()))
        code = main([
            "faults", "-n", str(schedule.n_dims),
            "--workload", "gaussian",
            "--size", str(schedule.size),
            "--seed", str(schedule.prob_seed),
            "--fault-plan", str(path),
            "--checkpoint-strategy", schedule.strategy,
            "--checkpoint-every", str(schedule.checkpoint_every),
            "--json",
        ])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["recovered"]
        assert data["matches_baseline"]
        assert data["recoveries"] >= 1
        assert data["checkpoint"]["strategy"] == schedule.strategy


class TestChaosCLI:
    def test_checkpoint_flags(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = main([
            "chaos", "-n", "4", "--schedules", "2", "--seed", "0",
            "--sizes", "8", "--checkpoint-schedules", "2",
            "--checkpoint-strategy", "diskless,host",
            "--checkpoint-every", "2",
            "--artifact-dir", str(tmp_path / "a"),
            "--out", str(out), "--no-warehouse",
        ])
        assert code == 0
        report = json.loads(out.read_text())
        assert report["schedules"] == 4
        assert report["failed"] == 0
        assert set(report["strategies"]) <= {"diskless", "host"}
        assert "checkpointing" in capsys.readouterr().out

    def test_bad_strategy_is_a_clean_config_error(self, tmp_path, capsys):
        code = main([
            "chaos", "--schedules", "1", "--sizes", "8",
            "--checkpoint-strategy", "tape",
            "--artifact-dir", str(tmp_path / "a"), "--no-warehouse",
        ])
        assert code == 2
        assert "strategy" in capsys.readouterr().err
