"""Golden cost snapshots: the pinned tier-1 counters must replay exactly.

The snapshot file is the seed-counter pin: it was captured sanitizer-off,
and any accounting change must show up as an explicit diff of
``golden_costs.json``, never as silent drift.  The subprocess test
replays a workload in a clean interpreter (no fixtures, no sanitizer, no
test-session state) and demands bit-identical counters — the strongest
form of "the sanitizer and the test harness perturb nothing".
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

from repro.check import golden


def test_snapshot_file_is_pinned_in_repo():
    assert golden.GOLDEN_PATH.exists()
    data = golden.load_golden()
    assert set(data["workloads"]) == set(golden.WORKLOADS)
    assert data["n_dims"] == golden.N_DIMS
    for fields in data["workloads"].values():
        assert set(fields) == set(golden.FIELDS)
        assert fields["time"] > 0


def test_golden_replays_exactly():
    passed, mismatches = golden.compare_golden()
    assert passed, mismatches


def test_collect_matches_pin_with_sanitizer_on():
    got = golden.collect_golden(sanitize=True)
    want = golden.load_golden()
    assert got["workloads"] == want["workloads"]


def test_seed_counters_bit_identical_in_clean_interpreter():
    """Replay one golden workload in a fresh subprocess, sanitizer off."""
    script = (
        "import json\n"
        "from repro.check import golden\n"
        "print(json.dumps(golden._run_one('gaussian', sanitize=False)))\n"
    )
    src = str(Path(__file__).resolve().parent.parent / "src")
    out = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": src, "PATH": "/usr/bin:/bin"},
        check=True,
    )
    got = json.loads(out.stdout)
    want = golden.load_golden()["workloads"]["gaussian"]
    assert got == want  # exact float equality, field by field


def test_update_golden_roundtrips(tmp_path):
    path = tmp_path / "golden.json"
    written = golden.update_golden(path)
    assert golden.load_golden(path) == json.loads(json.dumps(written))
    passed, mismatches = golden.compare_golden(path)
    assert passed, mismatches
