"""Unit tests for combining operators (S9)."""

import numpy as np
import pytest

from repro.comm import ALL, ANY, MAX, MIN, PROD, SUM, CombineOp, get_op


class TestIdentities:
    def test_sum_identity(self):
        assert SUM.identity(np.float64) == 0.0
        assert SUM.identity(np.int32) == 0

    def test_prod_identity(self):
        assert PROD.identity(np.float64) == 1.0

    def test_max_identity_float_is_neg_inf(self):
        assert MAX.identity(np.float64) == -np.inf

    def test_max_identity_int_is_min(self):
        assert MAX.identity(np.int64) == np.iinfo(np.int64).min

    def test_min_identity_float_is_inf(self):
        assert MIN.identity(np.float64) == np.inf

    def test_min_identity_int_is_max(self):
        assert MIN.identity(np.int32) == np.iinfo(np.int32).max

    def test_bool_identities(self):
        assert ANY.identity(np.bool_) is False
        assert ALL.identity(np.bool_) is True
        assert MAX.identity(np.bool_) is False
        assert MIN.identity(np.bool_) is True

    def test_identity_is_actually_neutral(self):
        x = np.array([3.5, -2.0, 0.0])
        for op in (SUM, PROD, MAX, MIN):
            ident = op.identity(x.dtype)
            assert np.array_equal(op(x, np.full_like(x, ident)), x), op.name

    def test_max_identity_unsupported_dtype(self):
        with pytest.raises(TypeError):
            MAX.identity(np.complex128)


class TestRegistry:
    def test_lookup_by_name(self):
        assert get_op("sum") is SUM
        assert get_op("max") is MAX

    def test_lookup_passthrough(self):
        assert get_op(MIN) is MIN

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown combine op"):
            get_op("median")

    def test_call_applies_ufunc(self):
        a = np.array([1.0, 5.0])
        b = np.array([4.0, 2.0])
        assert np.array_equal(MAX(a, b), [4.0, 5.0])
        assert np.array_equal(SUM(a, b), [5.0, 7.0])

    def test_repr(self):
        assert "sum" in repr(SUM)
