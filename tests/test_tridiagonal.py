"""Tests for the substructured parallel cyclic reduction tridiagonal solver."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms import tridiagonal as T
from repro.machine import CostModel, Hypercube


def dominant_system(n, seed=0):
    r = np.random.default_rng(seed)
    a = r.standard_normal(n)
    c = r.standard_normal(n)
    b = np.abs(a) + np.abs(c) + r.uniform(1.0, 2.0, n)
    a[0] = 0.0
    c[-1] = 0.0
    d = r.standard_normal(n)
    return a, b, c, d


class TestThomasOracle:
    def test_matches_dense_solve(self):
        a, b, c, d = dominant_system(12, seed=1)
        A = np.diag(b) + np.diag(a[1:], -1) + np.diag(c[:-1], 1)
        assert np.allclose(T.thomas(a, b, c, d), np.linalg.solve(A, d))

    def test_single_equation(self):
        x = T.thomas(np.array([0.0]), np.array([2.0]), np.array([0.0]),
                     np.array([6.0]))
        assert np.allclose(x, [3.0])


class TestSolve:
    @pytest.mark.parametrize("n", [1, 2, 5, 16, 37, 100])
    @pytest.mark.parametrize("cube", [0, 2, 4])
    def test_matches_thomas(self, n, cube):
        machine = Hypercube(cube, CostModel.unit())
        a, b, c, d = dominant_system(n, seed=n * 13 + cube)
        res = T.solve(machine, a, b, c, d)
        assert np.allclose(res.x, T.thomas(a, b, c, d), atol=1e-9)

    def test_one_row_per_processor(self):
        machine = Hypercube(4, CostModel.unit())
        a, b, c, d = dominant_system(16, seed=5)
        res = T.solve(machine, a, b, c, d)
        assert np.allclose(res.x, T.thomas(a, b, c, d), atol=1e-9)

    def test_fewer_rows_than_processors(self):
        machine = Hypercube(5, CostModel.unit())
        a, b, c, d = dominant_system(7, seed=6)
        res = T.solve(machine, a, b, c, d)
        assert np.allclose(res.x, T.thomas(a, b, c, d), atol=1e-9)

    def test_constant_coefficient_laplacian(self):
        """The -1, 2, -1 Poisson stencil — the ADI papers' workload."""
        n = 63
        machine = Hypercube(4, CostModel.cm2())
        a = -np.ones(n); c = -np.ones(n); b = 2.0 * np.ones(n)
        a[0] = 0.0; c[-1] = 0.0
        x_true = np.sin(np.linspace(0, np.pi, n))
        A = np.diag(b) + np.diag(a[1:], -1) + np.diag(c[:-1], 1)
        d = A @ x_true
        res = T.solve(machine, a, b, c, d)
        assert np.allclose(res.x, x_true, atol=1e-8)

    def test_validation(self):
        machine = Hypercube(2, CostModel.unit())
        with pytest.raises(ValueError, match="equal lengths"):
            T.solve(machine, np.zeros(3), np.ones(4), np.zeros(4), np.ones(4))
        with pytest.raises(ValueError, match="empty"):
            T.solve(machine, np.zeros(0), np.zeros(0), np.zeros(0),
                    np.zeros(0))

    def test_cost_recorded_with_phase(self):
        machine = Hypercube(4, CostModel.cm2())
        a, b, c, d = dominant_system(64, seed=7)
        res = T.solve(machine, a, b, c, d)
        assert res.cost.time > 0
        assert "tridiagonal" in machine.counters.phase_times

    def test_log_depth_communication(self):
        """Rounds grow ~lg p (PCR), not linearly in p or n."""
        rounds = {}
        for cube in (4, 8):
            machine = Hypercube(cube, CostModel.cm2())
            a, b, c, d = dominant_system(1024, seed=8)
            r0 = machine.counters.comm_rounds
            T.solve(machine, a, b, c, d)
            rounds[cube] = machine.counters.comm_rounds - r0
        # 16x the processors must cost far less than 16x the rounds
        assert rounds[8] < 8 * rounds[4]

    def test_substructuring_beats_serial_time_at_scale(self):
        """Parallel time << serial Thomas time once n >> p lg p · tau:
        the local sweeps are O(n/p) while the PCR interface solve is a
        fixed lg p · tau latency term that must amortise."""
        machine = Hypercube(6, CostModel.cm2())
        n = 1 << 16
        a, b, c, d = dominant_system(n, seed=9)
        res = T.solve(machine, a, b, c, d)
        serial_time = 8 * n * machine.cost_model.t_a  # ~8 flops per row
        assert res.cost.time < serial_time / 8


@settings(max_examples=50, deadline=None)
@given(
    st.integers(min_value=1, max_value=200),
    st.integers(min_value=0, max_value=6),
    st.integers(min_value=0, max_value=2**31),
)
def test_property_matches_thomas(n, cube, seed):
    machine = Hypercube(cube, CostModel.unit())
    a, b, c, d = dominant_system(n, seed=seed)
    res = T.solve(machine, a, b, c, d)
    assert np.allclose(res.x, T.thomas(a, b, c, d), atol=1e-8)


def batch_system(k, n, seed=0):
    r = np.random.default_rng(seed)
    a = r.standard_normal((k, n))
    c = r.standard_normal((k, n))
    b = np.abs(a) + np.abs(c) + r.uniform(1.0, 2.0, (k, n))
    a[:, 0] = 0.0
    c[:, -1] = 0.0
    d = r.standard_normal((k, n))
    return a, b, c, d


class TestSolveMany:
    @pytest.mark.parametrize("k,n,cube", [
        (16, 20, 3), (5, 12, 4), (64, 32, 4), (1, 16, 3), (3, 50, 0),
    ])
    def test_matches_thomas_per_system(self, k, n, cube):
        machine = Hypercube(cube, CostModel.unit())
        a, b, c, d = batch_system(k, n, seed=k * 11 + n)
        res = T.solve_many(machine, a, b, c, d)
        assert res.x.shape == (k, n)
        for j in range(k):
            assert np.allclose(
                res.x[j], T.thomas(a[j], b[j], c[j], d[j]), atol=1e-8
            )

    def test_embarrassingly_parallel_case_has_zero_comm(self):
        """k >= p: the published optimum partitioning — no communication."""
        machine = Hypercube(4, CostModel.cm2())
        a, b, c, d = batch_system(32, 24, seed=1)
        r0 = machine.counters.comm_rounds
        T.solve_many(machine, a, b, c, d)
        assert machine.counters.comm_rounds == r0

    def test_fewer_systems_than_processors_uses_groups(self):
        """k < p: subcube groups run the PCR solver; comm happens."""
        machine = Hypercube(6, CostModel.cm2())
        a, b, c, d = batch_system(4, 64, seed=2)
        r0 = machine.counters.comm_rounds
        res = T.solve_many(machine, a, b, c, d)
        assert machine.counters.comm_rounds > r0
        for j in range(4):
            assert np.allclose(
                res.x[j], T.thomas(a[j], b[j], c[j], d[j]), atol=1e-8
            )

    def test_batch_time_scales_with_k_over_p(self):
        """Doubling the batch on the same machine ~doubles the time."""
        times = []
        for k in (32, 64):
            machine = Hypercube(4, CostModel.cm2())
            a, b, c, d = batch_system(k, 32, seed=3)
            times.append(T.solve_many(machine, a, b, c, d).cost.time)
        assert 1.5 < times[1] / times[0] < 2.5

    def test_shape_validation(self):
        machine = Hypercube(2, CostModel.unit())
        with pytest.raises(ValueError, match="shape"):
            T.solve_many(machine, np.zeros((2, 3)), np.ones((2, 4)),
                         np.zeros((2, 4)), np.ones((2, 4)))

    def test_phase_recorded(self):
        machine = Hypercube(3, CostModel.cm2())
        a, b, c, d = batch_system(8, 16, seed=4)
        T.solve_many(machine, a, b, c, d)
        assert "tridiagonal-batch" in machine.counters.phase_times
