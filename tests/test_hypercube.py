"""Unit tests for the hypercube machine (S2)."""

import numpy as np
import pytest

from repro.machine import CostModel, Hypercube


class TestConstruction:
    def test_processor_count(self):
        assert Hypercube(0).p == 1
        assert Hypercube(5).p == 32

    def test_negative_dimension_rejected(self):
        with pytest.raises(ValueError):
            Hypercube(-1)

    def test_oversized_cube_rejected(self):
        with pytest.raises(ValueError, match="too large"):
            Hypercube(25)

    def test_default_cost_model_is_cm2(self):
        assert Hypercube(2).cost_model == CostModel.cm2()

    def test_dims_property(self):
        assert Hypercube(3).dims == (0, 1, 2)

    def test_pids(self):
        assert np.array_equal(Hypercube(2).pids(), [0, 1, 2, 3])

    def test_self_address(self):
        m = Hypercube(3)
        assert np.array_equal(m.self_address().data, np.arange(8))


class TestExchange:
    def test_exchange_swaps_neighbors(self):
        m = Hypercube(3, CostModel.unit())
        pv = m.pvar(np.arange(8))
        for d in range(3):
            out = m.exchange(pv, d)
            assert np.array_equal(out.data, np.arange(8) ^ (1 << d))

    def test_exchange_is_involution(self):
        m = Hypercube(4, CostModel.unit())
        pv = m.pvar(np.arange(16.0))
        back = m.exchange(m.exchange(pv, 2), 2)
        assert np.array_equal(back.data, pv.data)

    def test_exchange_block_data(self):
        m = Hypercube(2, CostModel.unit())
        pv = m.pvar(np.arange(12.0).reshape(4, 3))
        out = m.exchange(pv, 1)
        assert np.array_equal(out.data[0], pv.data[2])

    def test_exchange_cost(self):
        m = Hypercube(3, CostModel(tau=100, t_c=2, t_a=1, t_m=1))
        pv = m.zeros((5,))
        t0 = m.counters.time
        m.exchange(pv, 0)
        assert m.counters.time - t0 == 100 + 2 * 5
        assert m.counters.comm_rounds == 1
        assert m.counters.elements_transferred == 5 * 8

    def test_exchange_free_charges_nothing(self):
        m = Hypercube(3, CostModel.unit())
        pv = m.zeros((5,))
        t0 = m.counters.time
        m.exchange_free(pv, 1)
        assert m.counters.time == t0

    def test_bad_dimension_rejected(self):
        m = Hypercube(2)
        with pytest.raises(ValueError, match="out of range"):
            m.exchange(m.zeros(), 2)
        with pytest.raises(ValueError):
            m.exchange(m.zeros(), -1)


class TestHostAccess:
    def test_to_host_is_free_copy(self):
        m = Hypercube(2, CostModel.unit())
        pv = m.pvar(np.arange(4.0))
        t0 = m.counters.time
        host = m.to_host(pv)
        assert m.counters.time == t0
        host[0] = 99
        assert pv.data[0] == 0.0

    def test_read_scalar_value(self):
        m = Hypercube(2, CostModel.unit())
        pv = m.pvar(np.array([10.0, 11, 12, 13]))
        assert m.read_scalar(pv, pid=2) == 12.0

    def test_read_scalar_charges_a_round(self):
        m = Hypercube(2, CostModel(tau=50, t_c=3, t_a=1, t_m=1))
        pv = m.zeros()
        t0 = m.counters.time
        m.read_scalar(pv, 0)
        assert m.counters.time - t0 == 53.0

    def test_read_scalar_bad_pid(self):
        m = Hypercube(2)
        with pytest.raises(ValueError, match="out of range"):
            m.read_scalar(m.zeros(), pid=4)

    def test_read_scalar_block(self):
        m = Hypercube(1, CostModel.unit())
        pv = m.pvar(np.arange(6.0).reshape(2, 3))
        out = m.read_scalar(pv, pid=1)
        assert np.array_equal(out, [3.0, 4.0, 5.0])


class TestChargingHelpers:
    def test_charge_comm_round_multiple_rounds(self):
        m = Hypercube(3, CostModel(tau=10, t_c=1, t_a=1, t_m=1))
        m.charge_comm_round(4, rounds=3)
        assert m.counters.time == 3 * (10 + 4)
        assert m.counters.comm_rounds == 3
        assert m.counters.elements_transferred == 4 * 8 * 3

    def test_phase_context(self):
        m = Hypercube(2, CostModel.unit())
        with m.phase("work"):
            m.charge_flops(3)
        assert m.counters.phase_times["work"] == 3.0

    def test_elapsed_since(self):
        m = Hypercube(2, CostModel.unit())
        s = m.snapshot()
        m.charge_flops(5)
        assert m.elapsed_since(s).time == 5.0

    def test_check_dims_rejects_duplicates(self):
        m = Hypercube(3)
        with pytest.raises(ValueError, match="duplicate"):
            m.check_dims((0, 0))

    def test_check_dims_passes_valid(self):
        assert Hypercube(4).check_dims([2, 0]) == (2, 0)
