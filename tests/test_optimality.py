"""Tests for the optimality audit (S16): the paper's m > p lg p claim.

These are the reproduction's central quantitative checks: beyond the threshold
the processor-time product of the primitives stays within a constant
factor of the serial algorithm, and below it the latency term makes the
ratio blow up.
"""

import math

import numpy as np
import pytest

from repro.analysis import (
    OptimalityAudit,
    parallel_time_lower_bound,
    pt_ratio,
    serial_time,
    time_ratio,
)
from repro.analysis.models import PrimitiveCosts
from repro.algorithms import serial
from repro.core import DistributedMatrix, DistributedVector
from repro.embeddings import MatrixEmbedding, RowAlignedEmbedding
from repro.machine import CostModel, CostSnapshot, Hypercube


class TestRatioPrimitives:
    def test_serial_time(self):
        assert serial_time(100, CostModel(t_a=2.0)) == 200.0

    def test_pt_ratio(self):
        snap = CostSnapshot(time=10.0)
        assert pt_ratio(snap, p=4, serial_ops=20, cost=CostModel.unit()) == 2.0

    def test_pt_ratio_needs_positive_serial(self):
        with pytest.raises(ValueError):
            pt_ratio(CostSnapshot(time=1.0), 2, 0, CostModel.unit())

    def test_lower_bound_work_limited(self):
        # serial work 1000 on 4 procs dominates one tau=10 round
        assert parallel_time_lower_bound(1000, 4, CostModel(tau=10.0)) == 250.0

    def test_lower_bound_latency_limited(self):
        assert parallel_time_lower_bound(4, 4, CostModel(tau=10.0), rounds=3) == 30.0

    def test_time_ratio(self):
        snap = CostSnapshot(time=500.0)
        assert time_ratio(snap, 1000, 4, CostModel.unit()) == 2.0


class TestAuditBookkeeping:
    def test_threshold_predicate(self):
        from repro.analysis import AuditPoint
        pt = AuditPoint(m=1024, p=16, parallel_time=1, serial_ops=1,
                        pt_over_serial=1.0)
        assert pt.above_threshold  # 1024 > 16*4
        pt2 = AuditPoint(m=32, p=16, parallel_time=1, serial_ops=1,
                         pt_over_serial=1.0)
        assert not pt2.above_threshold

    def test_from_runs_validates_lengths(self):
        with pytest.raises(ValueError):
            OptimalityAudit.from_runs([1], 2, [1.0, 2.0], [1.0], CostModel.unit())

    def test_no_points_beyond_threshold_raises(self):
        audit = OptimalityAudit.from_runs(
            [4], 16, [1.0], [8.0], CostModel.unit()
        )
        with pytest.raises(ValueError, match="threshold"):
            audit.constant_factor_beyond_threshold()

    def test_ratio_series_shape(self):
        audit = OptimalityAudit.from_runs(
            [64, 128], 4, [10.0, 18.0], [128.0, 256.0], CostModel.unit()
        )
        series = audit.ratio_series()
        assert series[0][0] == 16.0
        assert len(series) == 2


def _matvec_run(n_dims, side, cost=None):
    """One primitive-based matvec; returns (m, time, serial_ops, machine)."""
    cost = cost or CostModel.cm2()
    machine = Hypercube(n_dims, cost)
    A_h = np.ones((side, side))
    A = DistributedMatrix.from_numpy(machine, A_h)
    emb = RowAlignedEmbedding(A.embedding, None)
    x = DistributedVector(emb.scatter(np.ones(side)), emb)
    start = machine.snapshot()
    A.matvec(x)
    elapsed = machine.elapsed_since(start)
    return side * side, elapsed.time, 2 * side * side, machine


class TestMatvecOptimality:
    """The claim, measured on the simulator (R-F1's test-suite version)."""

    def test_pt_product_bounded_beyond_threshold(self):
        cost = CostModel.cm2()
        p = 2 ** 6
        ratios = {}
        for side in (32, 64, 128, 256):
            m_elems, t, ops, machine = _matvec_run(6, side, cost)
            ratios[m_elems] = pt_ratio(
                CostSnapshot(time=t), p, ops, cost
            )
        # beyond m = p lg p = 384: ratio bounded and converging to a small
        # constant (the tau term amortises as 1/(m/p))
        beyond = [r for m_e, r in ratios.items() if m_e > p * math.log2(p)]
        assert max(beyond) < 50.0
        ms = sorted(ratios)
        ordered = [ratios[m_e] for m_e in ms]
        assert ordered == sorted(ordered, reverse=True)  # monotone decrease
        assert ordered[-1] < 5.0  # near-serial PT product at large m/p

    def test_ratio_blows_up_below_threshold(self):
        """With one element per processor the tau·lg p term dominates and
        the PT product is far from serial."""
        cost = CostModel.cm2()
        m_elems, t, ops, machine = _matvec_run(6, 8, cost)  # 64 elements = p
        small = pt_ratio(CostSnapshot(time=t), 64, ops, cost)
        m_elems, t, ops, machine = _matvec_run(6, 256, cost)
        big = pt_ratio(CostSnapshot(time=t), 64, ops, cost)
        assert small > 10 * big

    def test_parallel_time_within_constant_of_lower_bound(self):
        cost = CostModel.cm2()
        for side in (64, 256):
            m_elems, t, ops, machine = _matvec_run(6, side, cost)
            ratio = time_ratio(
                CostSnapshot(time=t), ops, machine.p, cost,
                rounds=machine.n,
            )
            assert ratio < 30.0

    def test_audit_end_to_end(self):
        cost = CostModel.cm2()
        sides = [16, 32, 64, 128]
        ms, times, ops = [], [], []
        for side in sides:
            m_e, t, o, _ = _matvec_run(4, side, cost)
            ms.append(m_e)
            times.append(t)
            ops.append(o)
        audit = OptimalityAudit.from_runs(ms, 16, times, ops, cost)
        assert audit.constant_factor_beyond_threshold() < 25.0


class TestGaussianOptimality:
    def test_pt_product_constant_factor(self):
        """Gaussian elimination: PT/serial bounded for big-enough blocks."""
        from repro import workloads as W
        from repro.algorithms import gaussian
        cost = CostModel.cm2()
        ratios = []
        for n_sys in (24, 48, 96):
            machine = Hypercube(4, cost)
            A_h, b, _ = W.diagonally_dominant_system(n_sys, seed=1)
            res = gaussian.solve(
                DistributedMatrix.from_numpy(machine, A_h), b
            )
            ops = serial.gaussian_solve(A_h, b).ops
            ratios.append(pt_ratio(res.cost, machine.p, ops, cost))
        assert ratios[2] < ratios[1] < ratios[0]  # converging to the constant
        assert ratios[2] < 30.0


class TestFindCrossover:
    def test_simple_curve(self):
        from repro.analysis import find_crossover
        # ratio(m) = 1000/m + 2
        assert find_crossover(lambda m: 1000 / m + 2, 1, 10000, 3.0) == 1000

    def test_lo_already_below(self):
        from repro.analysis import find_crossover
        assert find_crossover(lambda m: 0.5, 7, 100, 1.0) == 7

    def test_never_reached(self):
        from repro.analysis import find_crossover
        with pytest.raises(ValueError, match="never reaches"):
            find_crossover(lambda m: 100.0, 1, 10, 1.0)

    def test_empty_range(self):
        from repro.analysis import find_crossover
        with pytest.raises(ValueError, match="empty"):
            find_crossover(lambda m: 1.0, 5, 4, 1.0)

    def test_on_simulated_matvec(self):
        """Locate the empirical constant-factor knee of the matvec curve —
        it must be within a small factor of p lg p."""
        from repro.analysis import find_crossover
        import math
        cost = CostModel.cm2()
        p_dims = 6

        def ratio_of(side):
            _, t, ops, machine = _matvec_run(p_dims, int(side), cost)
            return pt_ratio(CostSnapshot(time=t), machine.p, ops, cost)

        # search over sides (m = side^2), ratio decreasing in side
        knee_side = find_crossover(ratio_of, 8, 512, 10.0)
        knee_m = knee_side ** 2
        threshold = 64 * math.log2(64)
        assert threshold / 4 < knee_m < threshold * 40
