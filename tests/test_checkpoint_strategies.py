"""Pluggable checkpoint strategies (``repro.faults.strategies``).

Pins the cost contract of the three strategies: ``host`` (full
gather-to-host, the bit-identical historical default), ``diskless``
(in-cube mirror + parity fold, O(local) rounds) and ``incremental``
(diskless scaled by the dirty-block fraction).  Also covers the policy
coercion/validation surface, the restore-cost asymmetry fix (host-only
arrays charge nothing on restore) and the parity-panel verification.
"""

import numpy as np
import pytest

from repro import Session
from repro.errors import CheckpointError, ConfigError
from repro.faults import (
    STRATEGIES,
    CheckpointPolicy,
    CheckpointStore,
    gaussian_workload,
)
from repro.faults.strategies import make_strategy

N_DIMS = 4
SIZE = 16


def _gaussian_inputs(seed=0):
    rng = np.random.default_rng(seed)
    A = rng.integers(-4, 5, size=(SIZE, SIZE)).astype(np.float64)
    A += SIZE * np.eye(SIZE)
    b = rng.integers(-4, 5, size=SIZE).astype(np.float64)
    return A, b


def _run_gaussian(policy):
    """Fault-free gaussian solve under one checkpoint policy."""
    A, b = _gaussian_inputs()
    s = Session(N_DIMS, "unit")
    store = CheckpointStore(s, policy=policy)
    result = gaussian_workload(A, b, checkpoint_every=2)(s, store)
    return np.asarray(result), store, s


class TestPolicy:
    def test_coerce(self):
        default = CheckpointPolicy.coerce(None)
        assert default.strategy == "host"
        assert CheckpointPolicy.coerce("diskless").strategy == "diskless"
        explicit = CheckpointPolicy(strategy="incremental", every=2)
        assert CheckpointPolicy.coerce(explicit) is explicit
        with pytest.raises(ConfigError, match="policy"):
            CheckpointPolicy.coerce(3)

    def test_validation(self):
        with pytest.raises(ConfigError, match="strategy"):
            CheckpointPolicy(strategy="tape")
        with pytest.raises(ConfigError, match="cadence"):
            CheckpointPolicy(every=0)
        with pytest.raises(ConfigError, match="full-snapshot"):
            CheckpointPolicy(full_every=0)

    def test_every_strategy_instantiates(self):
        for name in STRATEGIES:
            assert make_strategy(CheckpointPolicy(strategy=name)).name == name


class TestCostOrdering:
    def test_in_cube_strategies_beat_host_gather(self):
        """The headline claim: diskless and incremental saves cost a
        fraction of the full gather, with identical numerical results."""
        base, host, _ = _run_gaussian("host")
        for name in ("diskless", "incremental"):
            result, store, _ = _run_gaussian(name)
            np.testing.assert_array_equal(result, base)
            assert store.saves == host.saves
            assert store.save_ticks < host.save_ticks / 2.0
        # On larger cubes the gap widens (the warehouse's n_dims=10 rows
        # gate >= 3x in CI); even at n=4 diskless is well under half.

    def test_default_policy_is_host_bit_identical(self):
        """A store built with no policy charges exactly the historical
        host-gather schedule — existing golden pins depend on this."""
        _, implicit, s1 = _run_gaussian(None)
        _, explicit, s2 = _run_gaussian(CheckpointPolicy(strategy="host"))
        assert implicit.policy.strategy == "host"
        assert implicit.summary() == explicit.summary()
        assert s1.time == s2.time


class TestRestoreAsymmetry:
    def test_host_only_arrays_charge_nothing(self):
        """Restoring a checkpoint of plain host arrays moves no data —
        they were stored uncharged and never left the front end."""
        s = Session(N_DIMS, "unit")
        store = CheckpointStore(s)
        store.save("state", {"pivots": np.arange(8.0)}, step=0)
        t_before = s.time
        ck = store.restore()
        assert ck is not None
        assert ck.distributed == ()
        assert s.time == t_before
        assert store.restore_ticks == 0.0

    def test_mixed_save_restores_only_distributed(self):
        """A host-side payload riding along with a distributed array adds
        nothing to the restore bill."""
        data = np.arange(64, dtype=np.float64).reshape(8, 8)

        def restore_ticks(arrays):
            s = Session(N_DIMS, "unit")
            store = CheckpointStore(s)
            store.save("ck", arrays(s), step=0)
            store.restore()
            return store.restore_ticks

        lean = restore_ticks(lambda s: {"m": s.matrix(data)})
        padded = restore_ticks(
            lambda s: {"m": s.matrix(data), "extra": np.zeros(4096)}
        )
        assert lean > 0
        assert padded == lean


class TestIncremental:
    def _store(self, full_every=100):
        s = Session(N_DIMS, "unit")
        policy = CheckpointPolicy(strategy="incremental", full_every=full_every)
        return s, CheckpointStore(s, policy=policy)

    def test_delta_saves_ship_only_dirty_blocks(self):
        s, store = self._store()
        data = np.arange(64, dtype=np.float64).reshape(8, 8)
        ck0 = store.save("m", {"m": s.matrix(data)}, step=0)
        assert ck0.meta["full"]  # no previous snapshot
        t_full = store.save_ticks

        ck1 = store.save("m", {"m": s.matrix(data)}, step=1)
        assert not ck1.meta["full"]
        assert ck1.meta["dirty"] == 0  # nothing changed: signature-scan only
        t_clean = store.save_ticks - t_full

        touched = data.copy()
        touched[0, 0] += 1.0
        ck2 = store.save("m", {"m": s.matrix(touched)}, step=2)
        assert not ck2.meta["full"]
        assert 1 <= ck2.meta["dirty"] < ck2.meta["blocks"]
        t_delta = store.save_ticks - t_full - t_clean

        assert t_clean < t_delta < t_full
        assert store.full_saves == 1
        assert store.delta_saves == 2
        assert store.total_blocks == 3 * ck2.meta["blocks"]
        assert store.dirty_blocks == ck0.meta["dirty"] + ck2.meta["dirty"]

    def test_shape_change_forces_full(self):
        s, store = self._store()
        store.save("m", {"m": s.matrix(np.ones((8, 8)))}, step=0)
        ck = store.save("m", {"m": s.matrix(np.ones((16, 16)))}, step=1)
        assert ck.meta["full"]
        assert store.full_saves == 2

    def test_periodic_full_fallback(self):
        """Every ``full_every``-th save is full even with zero churn, so a
        corrupted delta chain never outlives one period."""
        s, store = self._store(full_every=2)
        m = s.matrix(np.ones((8, 8)))
        fulls = [store.save("m", {"m": m}, step=i).meta["full"]
                 for i in range(5)]
        assert fulls == [True, False, True, False, True]


class TestPanels:
    def test_diskless_rotates_mirror_and_parity_dims(self):
        s = Session(N_DIMS, "unit")
        store = CheckpointStore(s, policy="diskless")
        m = s.matrix(np.ones((8, 8)))
        meta0 = store.save("m", {"m": m}, step=0).meta
        meta1 = store.save("m", {"m": m}, step=1).meta
        assert (meta0["mirror_dim"], meta0["parity_dim"]) == (0, 1)
        assert (meta1["mirror_dim"], meta1["parity_dim"]) == (1, 2)

    def test_verify_catches_tampered_snapshot(self):
        s = Session(N_DIMS, "unit")
        store = CheckpointStore(s, policy="diskless")
        ck = store.save("m", {"m": s.matrix(np.ones((8, 8)))}, step=0)
        assert "m" in ck.panels
        ck.arrays["m"][3, 3] = 99.0
        with pytest.raises(CheckpointError, match="parity-panel"):
            store.restore()

    def test_verify_off_skips_panels(self):
        s = Session(N_DIMS, "unit")
        policy = CheckpointPolicy(strategy="diskless", verify=False)
        store = CheckpointStore(s, policy=policy)
        ck = store.save("m", {"m": s.matrix(np.ones((8, 8)))}, step=0)
        assert ck.panels == {}
        ck.arrays["m"][3, 3] = 99.0
        assert store.restore() is ck  # no verification, no error
