"""Unit tests for processor variables (S2)."""

import numpy as np
import pytest

from repro.machine import CostModel, Hypercube, PVar


@pytest.fixture
def m():
    return Hypercube(3, CostModel.unit())


class TestConstruction:
    def test_shape_validation(self, m):
        with pytest.raises(ValueError, match="shape"):
            PVar(m, np.zeros(4))  # wrong processor extent

    def test_scalar_local_shape(self, m):
        pv = m.zeros()
        assert pv.local_shape == ()
        assert pv.local_size == 1

    def test_block_local_shape(self, m):
        pv = m.zeros((2, 5))
        assert pv.local_shape == (2, 5)
        assert pv.local_size == 10

    def test_full_and_ones(self, m):
        assert np.all(m.full((2,), 7).data == 7)
        assert np.all(m.ones((3,)).data == 1.0)

    def test_pvar_wraps_host_data(self, m):
        data = np.arange(8.0)
        pv = m.pvar(data)
        assert np.array_equal(pv.data, data)

    def test_pvar_copies_host_data(self, m):
        data = np.arange(8.0)
        pv = m.pvar(data)
        data[0] = 99
        assert pv.data[0] == 0.0

    def test_wrong_machine_rejected(self, m):
        other = Hypercube(3, CostModel.unit())
        pv = other.zeros()
        with pytest.raises(ValueError, match="different machine"):
            m.exchange(pv, 0)


class TestArithmeticSemantics:
    def test_add_sub_mul_div(self, m):
        a = m.pvar(np.arange(8.0))
        b = m.pvar(np.full(8, 2.0))
        assert np.array_equal((a + b).data, np.arange(8.0) + 2)
        assert np.array_equal((a - b).data, np.arange(8.0) - 2)
        assert np.array_equal((a * b).data, np.arange(8.0) * 2)
        assert np.array_equal((a / b).data, np.arange(8.0) / 2)

    def test_scalar_operands(self, m):
        a = m.pvar(np.arange(8.0))
        assert np.array_equal((a + 1).data, np.arange(8.0) + 1)
        assert np.array_equal((1 + a).data, np.arange(8.0) + 1)
        assert np.array_equal((3 - a).data, 3 - np.arange(8.0))
        assert np.array_equal((2 / (a + 1)).data, 2 / (np.arange(8.0) + 1))

    def test_unary(self, m):
        a = m.pvar(np.array([-1.0, 2, -3, 4, -5, 6, -7, 8]))
        assert np.array_equal((-a).data, -a.data)
        assert np.array_equal(abs(a).data, np.abs(a.data))
        assert np.array_equal(a.abs().data, np.abs(a.data))

    def test_pow_mod_floordiv(self, m):
        a = m.pvar(np.arange(8.0))
        assert np.array_equal((a ** 2).data, np.arange(8.0) ** 2)
        assert np.array_equal((a % 3).data, np.arange(8.0) % 3)
        assert np.array_equal((a // 3).data, np.arange(8.0) // 3)

    def test_sqrt_reciprocal(self, m):
        a = m.pvar(np.arange(1.0, 9.0))
        assert np.allclose(a.sqrt().data, np.sqrt(a.data))
        assert np.allclose(a.reciprocal().data, 1.0 / a.data)

    def test_comparisons_produce_bools(self, m):
        a = m.pvar(np.arange(8.0))
        assert (a < 4).data.dtype == np.bool_
        assert np.array_equal((a < 4).data, np.arange(8) < 4)
        assert np.array_equal((a >= 4).data, np.arange(8) >= 4)
        assert np.array_equal(a.eq(3).data, np.arange(8) == 3)
        assert np.array_equal(a.ne(3).data, np.arange(8) != 3)

    def test_logical_ops(self, m):
        a = m.pvar(np.arange(8) % 2 == 0)
        b = m.pvar(np.arange(8) < 4)
        assert np.array_equal((a & b).data, a.data & b.data)
        assert np.array_equal((a | b).data, a.data | b.data)
        assert np.array_equal((a ^ b).data, a.data ^ b.data)
        assert np.array_equal((~a).data, ~a.data)

    def test_minimum_maximum(self, m):
        a = m.pvar(np.arange(8.0))
        b = m.pvar(np.full(8, 3.5))
        assert np.array_equal(a.minimum(b).data, np.minimum(a.data, 3.5))
        assert np.array_equal(a.maximum(3.5).data, np.maximum(a.data, 3.5))

    def test_where_select(self, m):
        cond = m.pvar(np.arange(8) % 2 == 0)
        a = m.pvar(np.full(8, 1.0))
        out = cond.where(a, 0.0)
        assert np.array_equal(out.data, np.where(np.arange(8) % 2 == 0, 1.0, 0.0))

    def test_raw_ndarray_operand_rejected(self, m):
        a = m.pvar(np.arange(8.0))
        with pytest.raises(TypeError, match="wrap"):
            a + np.ones(8)

    def test_cross_machine_operand_rejected(self, m):
        other = Hypercube(3, CostModel.unit())
        with pytest.raises(ValueError, match="different machines"):
            m.zeros() + other.zeros()


class TestLocalReductions:
    def test_local_sum(self, m):
        pv = m.pvar(np.arange(24.0).reshape(8, 3))
        assert np.array_equal(pv.local_sum(0).data, pv.data.sum(axis=1))

    def test_local_reduce_axis_selection(self, m):
        pv = m.pvar(np.arange(48.0).reshape(8, 2, 3))
        assert np.array_equal(pv.local_sum(1).data, pv.data.sum(axis=2))
        assert np.array_equal(pv.local_max(0).data, pv.data.max(axis=1))

    def test_local_min_max_any_all(self, m):
        pv = m.pvar(np.arange(24.0).reshape(8, 3))
        assert np.array_equal(pv.local_min(0).data, pv.data.min(axis=1))
        b = m.pvar((np.arange(24) % 5 == 0).reshape(8, 3))
        assert np.array_equal(b.local_any(0).data, b.data.any(axis=1))
        assert np.array_equal(b.local_all(0).data, b.data.all(axis=1))

    def test_local_argmax_argmin(self, m):
        pv = m.pvar(np.arange(24.0).reshape(8, 3)[:, ::-1].copy())
        assert np.all(pv.local_argmax(0).data == 0)
        assert np.all(pv.local_argmin(0).data == 2)

    def test_scalar_local_reduce_rejected(self, m):
        with pytest.raises(ValueError, match="scalar"):
            m.zeros().local_sum(0)


class TestCostCharging:
    def test_elementwise_charges_local_size(self, m):
        pv = m.zeros((10,))
        t0 = m.counters.time
        _ = pv + pv
        assert m.counters.time - t0 == 10.0  # unit model: t_a * local elements

    def test_flop_count_is_machine_wide(self, m):
        pv = m.zeros((10,))
        f0 = m.counters.flops
        _ = pv * 2
        assert m.counters.flops - f0 == 10 * m.p

    def test_copy_charges_memory_pass(self, m):
        pv = m.zeros((5,))
        t0 = m.counters.time
        pv.copy()
        assert m.counters.time - t0 == 5.0

    def test_local_reduce_charges_combining_steps(self, m):
        pv = m.zeros((4, 3))
        t0 = m.counters.time
        pv.local_sum(0)  # 12 -> 3 per processor: 9 combining steps
        assert m.counters.time - t0 == 9.0

    def test_reshape_local_free(self, m):
        pv = m.zeros((4, 3))
        t0 = m.counters.time
        out = pv.reshape_local(12)
        assert out.local_shape == (12,)
        assert m.counters.time == t0
