"""Unit tests for DistributedVector (S11)."""

import numpy as np
import pytest

from repro.core import DistributedVector, iota
from repro.embeddings import (
    ColAlignedEmbedding,
    MatrixEmbedding,
    RowAlignedEmbedding,
    VectorOrderEmbedding,
)
from repro.machine import CostModel, Hypercube


@pytest.fixture
def m():
    return Hypercube(4, CostModel.unit())


@pytest.fixture
def v_host(rng):
    return rng.standard_normal(21)


@pytest.fixture
def v(m, v_host):
    return DistributedVector.from_numpy(m, v_host)


class TestConstruction:
    def test_round_trip(self, v, v_host):
        assert np.allclose(v.to_numpy(), v_host)

    def test_len_and_dtype(self, v):
        assert len(v) == 21
        assert v.dtype == np.float64

    def test_explicit_embedding(self, m, v_host):
        emb = VectorOrderEmbedding(m, 21, "cyclic")
        v = DistributedVector.from_numpy(m, v_host, embedding=emb)
        assert np.allclose(v.to_numpy(), v_host)

    def test_2d_input_rejected(self, m):
        with pytest.raises(ValueError, match="1-D"):
            DistributedVector.from_numpy(m, np.zeros((3, 3)))

    def test_shape_mismatch_rejected(self, m):
        emb = VectorOrderEmbedding(m, 21)
        with pytest.raises(ValueError, match="local shape"):
            DistributedVector(m.zeros((99,)), emb)


class TestElementwise:
    def test_vector_vector_ops(self, m, rng):
        a_h, b_h = rng.standard_normal((2, 21))
        a = DistributedVector.from_numpy(m, a_h)
        b = DistributedVector.from_numpy(m, b_h)
        assert np.allclose((a + b).to_numpy(), a_h + b_h)
        assert np.allclose((a - b).to_numpy(), a_h - b_h)
        assert np.allclose((a * b).to_numpy(), a_h * b_h)
        assert np.allclose((a / (b * b + 1)).to_numpy(), a_h / (b_h * b_h + 1))

    def test_scalar_ops(self, v, v_host):
        assert np.allclose((v * 2).to_numpy(), v_host * 2)
        assert np.allclose((3 + v).to_numpy(), v_host + 3)
        assert np.allclose((1 - v).to_numpy(), 1 - v_host)
        assert np.allclose((-v).to_numpy(), -v_host)
        assert np.allclose(abs(v).to_numpy(), np.abs(v_host))

    def test_comparisons_and_where(self, v, v_host):
        mask = v > 0
        out = mask.where(v, 0.0)
        assert np.allclose(out.to_numpy(), np.where(v_host > 0, v_host, 0.0))

    def test_logical_ops(self, v, v_host):
        a = v > 0
        b = v < 0.5
        assert np.array_equal((a & b).to_numpy(), (v_host > 0) & (v_host < 0.5))
        assert np.array_equal((a | b).to_numpy(), (v_host > 0) | (v_host < 0.5))
        assert np.array_equal((~a).to_numpy(), ~(v_host > 0))

    def test_incompatible_embeddings_rejected(self, m, v):
        other = DistributedVector.from_numpy(m, np.zeros(21), layout="cyclic")
        with pytest.raises(ValueError, match="incompatible"):
            v + other

    def test_subclass_preserved_through_ops(self, m):
        class MyVec(DistributedVector):
            pass
        a = MyVec.from_numpy(m, np.arange(5.0))
        assert isinstance(a + 1, MyVec)
        assert isinstance(-a, MyVec)
        assert isinstance((a > 2).where(a, 0.0), MyVec)


class TestGlobalReductions:
    def test_sum_min_max(self, v, v_host):
        assert np.isclose(v.sum(), v_host.sum())
        assert np.isclose(v.min(), v_host.min())
        assert np.isclose(v.max(), v_host.max())

    def test_argmax_argmin(self, v, v_host):
        val, idx = v.argmax()
        assert idx == v_host.argmax() and np.isclose(val, v_host.max())
        val, idx = v.argmin()
        assert idx == v_host.argmin() and np.isclose(val, v_host.min())

    def test_argreduce_with_valid(self, v, v_host):
        valid = v > 0
        val, idx = v.argreduce("min", valid=valid)
        cands = np.nonzero(v_host > 0)[0]
        assert idx == cands[np.argmin(v_host[cands])]

    def test_argreduce_no_candidates(self, v):
        valid = v > np.inf
        _, idx = v.argreduce("max", valid=valid)
        assert idx == -1

    def test_dot(self, m, rng):
        a_h, b_h = rng.standard_normal((2, 17))
        a = DistributedVector.from_numpy(m, a_h)
        b = DistributedVector.from_numpy(m, b_h)
        assert np.isclose(a.dot(b), a_h @ b_h)

    def test_get_global(self, v, v_host):
        for g in (0, 7, 20):
            assert v.get_global(g) == v_host[g]
        with pytest.raises(IndexError):
            v.get_global(21)

    def test_reductions_on_aligned_embeddings(self, m, rng):
        memb = MatrixEmbedding.default(m, 10, 12)
        v_h = rng.standard_normal(12)
        emb = RowAlignedEmbedding(memb, None)
        v = DistributedVector(emb.scatter(v_h), emb)
        assert np.isclose(v.sum(), v_h.sum())
        val, idx = v.argmax()
        assert idx == v_h.argmax()

    def test_reduction_on_resident_embedding(self, m, rng):
        memb = MatrixEmbedding.default(m, 10, 12)
        v_h = rng.standard_normal(10)
        emb = ColAlignedEmbedding(memb, 1)
        v = DistributedVector(emb.scatter(v_h), emb)
        # reduce over along-dims only; the resident band holds the data and
        # the result is read from element 0's owner.
        assert np.isclose(v.sum(), v_h.sum())

    def test_reduce_charges_host_read(self, m, v):
        r0 = m.counters.comm_rounds
        v.sum()
        # lg(p) all-reduce rounds + one host read
        assert m.counters.comm_rounds - r0 == m.n + 1


class TestEmbeddingChange:
    def test_as_embedding_round_trip(self, m, rng):
        memb = MatrixEmbedding.default(m, 10, 12)
        v_h = rng.standard_normal(12)
        v = DistributedVector.from_numpy(m, v_h)
        aligned = v.as_embedding(RowAlignedEmbedding(memb, None))
        assert np.allclose(aligned.to_numpy(), v_h)
        back = aligned.as_embedding(VectorOrderEmbedding(m, 12))
        assert np.allclose(back.to_numpy(), v_h)

    def test_as_embedding_noop_when_compatible(self, v):
        assert v.as_embedding(v.embedding) is v


class TestIota:
    def test_vector_order(self, m):
        emb = VectorOrderEmbedding(m, 10)
        assert np.array_equal(iota(emb).to_numpy(), np.arange(10))

    def test_aligned(self, m):
        memb = MatrixEmbedding.default(m, 10, 12)
        emb = ColAlignedEmbedding(memb, None)
        assert np.array_equal(iota(emb).to_numpy(), np.arange(10))

    def test_usable_as_mask_source(self, m, rng):
        v_h = rng.standard_normal(10)
        v = DistributedVector.from_numpy(m, v_h)
        ix = iota(v.embedding)
        below = ix >= 4
        val, idx = v.argreduce("max", valid=below)
        assert idx == 4 + v_h[4:].argmax()
