"""Unit tests for the distribute and reduce primitives (S10)."""

import numpy as np
import pytest

from repro.core import primitives as P
from repro.embeddings import (
    ColAlignedEmbedding,
    MatrixEmbedding,
    RowAlignedEmbedding,
    VectorOrderEmbedding,
)
from repro.machine import CostModel, Hypercube


@pytest.fixture
def m():
    return Hypercube(4, CostModel.unit())


@pytest.fixture
def emb(m):
    return MatrixEmbedding(m, 9, 13, row_dims=(0, 1), col_dims=(2, 3))


@pytest.fixture
def A(rng):
    return rng.standard_normal((9, 13))


@pytest.fixture
def M(emb, A):
    return emb.scatter(A)


class TestDistribute:
    def test_axis0_tiles_rows(self, m, emb, rng):
        w = rng.standard_normal(13)
        we = RowAlignedEmbedding(emb, None)
        out = P.distribute(we.scatter(w), we, emb, axis=0)
        assert np.allclose(emb.gather(out), np.tile(w, (9, 1)))

    def test_axis1_tiles_columns(self, m, emb, rng):
        u = rng.standard_normal(9)
        ue = ColAlignedEmbedding(emb, None)
        out = P.distribute(ue.scatter(u), ue, emb, axis=1)
        assert np.allclose(emb.gather(out), np.tile(u[:, None], (1, 13)))

    def test_replicated_source_is_local_only(self, m, emb, rng):
        we = RowAlignedEmbedding(emb, None)
        pv = we.scatter(rng.standard_normal(13))
        r0 = m.counters.comm_rounds
        P.distribute(pv, we, emb, axis=0)
        assert m.counters.comm_rounds == r0  # zero communication

    def test_resident_source_broadcasts(self, m, emb, rng):
        we = RowAlignedEmbedding(emb, 2)
        pv = we.scatter(rng.standard_normal(13))
        r0 = m.counters.comm_rounds
        out = P.distribute(pv, we, emb, axis=0)
        assert m.counters.comm_rounds - r0 == len(emb.row_dims)
        w = we.gather(pv)
        assert np.allclose(emb.gather(out), np.tile(w, (9, 1)))

    def test_vector_order_source_remaps(self, m, emb, rng):
        w = rng.standard_normal(13)
        we = VectorOrderEmbedding(m, 13)
        out = P.distribute(we.scatter(w), we, emb, axis=0)
        assert np.allclose(emb.gather(out), np.tile(w, (9, 1)))

    def test_length_mismatch(self, m, emb):
        we = VectorOrderEmbedding(m, 5)
        with pytest.raises(ValueError, match="length"):
            P.distribute(we.scatter(np.zeros(5)), we, emb, axis=0)

    def test_cost_replicated_is_one_tile_pass(self, m, emb, rng):
        we = RowAlignedEmbedding(emb, None)
        pv = we.scatter(rng.standard_normal(13))
        t0 = m.counters.time
        P.distribute(pv, we, emb, axis=0)
        lr, lc = emb.local_shape
        assert m.counters.time - t0 == lr * lc


class TestReduce:
    @pytest.mark.parametrize("opname,np_fn", [
        ("sum", np.sum), ("max", np.max), ("min", np.min), ("prod", np.prod),
    ])
    def test_axis1_row_totals(self, M, emb, A, opname, np_fn):
        v, ve = P.reduce(M, emb, axis=1, op=opname)
        assert isinstance(ve, ColAlignedEmbedding)
        assert np.allclose(ve.gather(v), np_fn(A, axis=1))

    @pytest.mark.parametrize("opname,np_fn", [("sum", np.sum), ("max", np.max)])
    def test_axis0_col_totals(self, M, emb, A, opname, np_fn):
        v, ve = P.reduce(M, emb, axis=0, op=opname)
        assert isinstance(ve, RowAlignedEmbedding)
        assert np.allclose(ve.gather(v), np_fn(A, axis=0))

    def test_result_is_replicated(self, M, emb, A):
        v, ve = P.reduce(M, emb, axis=1, op="sum")
        assert ve.replicated
        mask = ve.valid_mask()
        idx = ve.global_indices()
        expect = A.sum(axis=1)
        assert np.allclose(v.data[mask], expect[idx[mask]])

    def test_padding_never_pollutes(self, m):
        """With odd sizes, padded slots must not leak into reductions even
        for ops whose identity is not zero."""
        emb = MatrixEmbedding(m, 5, 5, row_dims=(0, 1), col_dims=(2, 3))
        A = -np.ones((5, 5))
        M = emb.scatter(A)  # padding holds 0.0 > every element
        v, ve = P.reduce(M, emb, axis=1, op="max")
        assert np.allclose(ve.gather(v), -1.0)

    def test_prod_with_padding(self, m):
        emb = MatrixEmbedding(m, 3, 3, row_dims=(0, 1), col_dims=(2, 3))
        A = np.full((3, 3), 2.0)
        v, ve = P.reduce(emb.scatter(A), emb, axis=0, op="prod")
        assert np.allclose(ve.gather(v), 8.0)

    def test_reduce_then_distribute_is_cheap(self, m, M, emb):
        """The reduce result is replicated, so a following distribute does
        no communication — the pattern matvec exploits."""
        v, ve = P.reduce(M, emb, axis=0, op="sum")
        r0 = m.counters.comm_rounds
        P.distribute(v, ve, emb, axis=0)
        assert m.counters.comm_rounds == r0

    def test_exact_size_no_masking_pass(self):
        m = Hypercube(4, CostModel(tau=0, t_c=0, t_a=0, t_m=1))
        emb = MatrixEmbedding(m, 16, 16, row_dims=(0, 1), col_dims=(2, 3))
        M = emb.scatter(np.ones((16, 16)))
        t0 = m.counters.time
        P.reduce(M, emb, axis=1, op="sum")
        assert m.counters.time == t0  # no t_m charged when nothing is padded


class TestReduceLoc:
    def test_argmax_rows(self, M, emb, A):
        val, idx, ve = P.reduce_loc(M, emb, axis=1, mode="max")
        assert np.allclose(ve.gather(val), A.max(axis=1))
        assert np.array_equal(ve.gather(idx), A.argmax(axis=1))

    def test_argmin_cols(self, M, emb, A):
        val, idx, ve = P.reduce_loc(M, emb, axis=0, mode="min")
        assert np.allclose(ve.gather(val), A.min(axis=0))
        assert np.array_equal(ve.gather(idx), A.argmin(axis=0))

    def test_ties_go_to_smallest_global_index(self, m, emb):
        A = np.zeros((9, 13))
        M = emb.scatter(A)
        _, idx, ve = P.reduce_loc(M, emb, axis=1, mode="max")
        assert np.all(ve.gather(idx) == 0)

    def test_ties_under_cyclic_layout(self, m):
        """Cyclic layouts scramble slot order; the tie-break must still be
        by global index."""
        emb = MatrixEmbedding(
            m, 8, 12, row_dims=(0, 1), col_dims=(2, 3),
            row_layout_kind="cyclic", col_layout_kind="cyclic",
        )
        A = np.zeros((8, 12))
        M = emb.scatter(A)
        _, idx, ve = P.reduce_loc(M, emb, axis=1, mode="max")
        assert np.all(ve.gather(idx) == 0)
        _, idx0, ve0 = P.reduce_loc(M, emb, axis=0, mode="min")
        assert np.all(ve0.gather(idx0) == 0)

    def test_valid_mask_restricts_candidates(self, m, emb, A, M):
        from repro.machine import PVar
        pos = PVar(m, M.data > 0.5)
        val, idx, ve = P.reduce_loc(M, emb, axis=1, mode="min", valid=pos)
        got_idx = ve.gather(idx)
        for i in range(9):
            cands = np.nonzero(A[i] > 0.5)[0]
            if len(cands):
                assert got_idx[i] == cands[np.argmin(A[i][cands])]
            else:
                assert got_idx[i] == -1

    def test_empty_candidate_slice_yields_minus_one(self, m, emb, M):
        from repro.machine import PVar
        none = PVar(m, np.zeros_like(M.data, dtype=bool))
        _, idx, ve = P.reduce_loc(M, emb, axis=1, mode="max", valid=none)
        assert np.all(ve.gather(idx) == -1)

    def test_bad_mode(self, M, emb):
        with pytest.raises(ValueError, match="mode"):
            P.reduce_loc(M, emb, axis=1, mode="mean")

    def test_valid_shape_check(self, m, M, emb):
        with pytest.raises(ValueError, match="local shape"):
            P.reduce_loc(M, emb, axis=1, valid=m.zeros((2, 2)))


class TestRank1Update:
    def test_matches_numpy_outer(self, M, emb, A):
        col, cole = P.extract(M, emb, axis=1, index=0)
        row, rowe = P.extract(M, emb, axis=0, index=0)
        out = P.rank1_update(M, emb, col, cole, row, rowe, alpha=-1.0)
        expect = A - np.outer(A[:, 0], A[0, :])
        assert np.allclose(emb.gather(out), expect)

    def test_alpha_scaling(self, M, emb, A):
        col, cole = P.extract(M, emb, axis=1, index=2)
        row, rowe = P.extract(M, emb, axis=0, index=3)
        out = P.rank1_update(M, emb, col, cole, row, rowe, alpha=0.25)
        expect = A + 0.25 * np.outer(A[:, 2], A[3, :])
        assert np.allclose(emb.gather(out), expect)

    def test_zero_communication_with_aligned_inputs(self, m, M, emb):
        col, cole = P.extract(M, emb, axis=1, index=0)
        row, rowe = P.extract(M, emb, axis=0, index=0)
        r0 = m.counters.comm_rounds
        P.rank1_update(M, emb, col, cole, row, rowe)
        assert m.counters.comm_rounds == r0

    def test_vector_order_inputs_are_remapped(self, m, emb, A, M, rng):
        u = rng.standard_normal(9)
        w = rng.standard_normal(13)
        ue = VectorOrderEmbedding(m, 9)
        we = VectorOrderEmbedding(m, 13)
        out = P.rank1_update(
            M, emb, ue.scatter(u), ue, we.scatter(w), we, alpha=-2.0
        )
        assert np.allclose(emb.gather(out), A - 2.0 * np.outer(u, w))

    def test_cost_is_three_passes(self, m, M, emb):
        col, cole = P.extract(M, emb, axis=1, index=0)
        row, rowe = P.extract(M, emb, axis=0, index=0)
        t0 = m.counters.time
        P.rank1_update(M, emb, col, cole, row, rowe)
        lr, lc = emb.local_shape
        assert m.counters.time - t0 == 3 * lr * lc
