"""Shared fixtures for the test suite.

Machines come in three cost flavours:

* ``unit_machine`` — unit cost model, so simulated time equals a raw
  operation count (the right lens for complexity assertions);
* ``cm2_machine`` — CM-2-flavoured ratios (the benchmark configuration);
* parametrised ``any_machine`` — a small sweep of cube sizes for tests
  that must hold at every machine size, including the degenerate p=1.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.machine import CostModel, Hypercube


@pytest.fixture
def rng():
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture
def unit_machine():
    return Hypercube(4, CostModel.unit())


@pytest.fixture
def cm2_machine():
    return Hypercube(6, CostModel.cm2())


@pytest.fixture(params=[0, 1, 3, 4, 6], ids=lambda n: f"n{n}")
def any_machine(request):
    return Hypercube(request.param, CostModel.unit())


def assert_time_increased(machine, before):
    """Every charged operation must advance simulated time."""
    assert machine.counters.time > before, "operation charged no time"
