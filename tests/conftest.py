"""Shared fixtures for the test suite.

Machines come in three cost flavours:

* ``unit_machine`` — unit cost model, so simulated time equals a raw
  operation count (the right lens for complexity assertions);
* ``cm2_machine`` — CM-2-flavoured ratios (the benchmark configuration);
* parametrised ``any_machine`` — a small sweep of cube sizes for tests
  that must hold at every machine size, including the degenerate p=1.

Randomness is centrally seeded: the ``rng`` fixture derives from
``REPRO_TEST_SEED`` (default ``0xC0FFEE``) and the seed is printed in the
pytest header, so any seed-dependent failure is reproducible with
``REPRO_TEST_SEED=<seed> pytest ...``.  Hypothesis runs under the
``fast`` profile by default and the heavier ``ci`` profile when
``REPRO_TEST_PROFILE=ci`` (or ``CI`` is set).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from hypothesis import HealthCheck, settings

from repro.machine import CostModel, Hypercube

TEST_SEED = int(os.environ.get("REPRO_TEST_SEED", str(0xC0FFEE)), 0)

settings.register_profile("fast", max_examples=25, deadline=None)
settings.register_profile(
    "ci",
    max_examples=100,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
_profile = os.environ.get(
    "REPRO_TEST_PROFILE", "ci" if os.environ.get("CI") else "fast"
)
settings.load_profile(_profile)


def pytest_report_header(config):
    return (
        f"repro: REPRO_TEST_SEED={TEST_SEED:#x} "
        f"hypothesis profile={_profile}"
    )


@pytest.fixture
def rng():
    return np.random.default_rng(TEST_SEED)


@pytest.fixture
def unit_machine():
    return Hypercube(4, CostModel.unit())


@pytest.fixture
def cm2_machine():
    return Hypercube(6, CostModel.cm2())


@pytest.fixture(params=[0, 1, 3, 4, 6], ids=lambda n: f"n{n}")
def any_machine(request):
    return Hypercube(request.param, CostModel.unit())


def assert_time_increased(machine, before):
    """Every charged operation must advance simulated time."""
    assert machine.counters.time > before, "operation charged no time"
