"""Gray failures: slow links/nodes, flaky links, health-score routing.

The gray-failure model extends the fail-stop fault plan with components
that *degrade* instead of dying: latency multipliers on links and nodes
(lockstep rounds stretch to the slowest participant, charged as pure
simulated time) and probabilistic per-exchange drops.  Covers:

* JSON round-trip and validation of the three gray event kinds;
* lockstep stretch semantics (time up, element/round counters untouched);
* recovery windows (``duration``) and expiry accounting;
* seeded determinism of flaky drops, jittered backoff and hedging;
* the health tracker's learn/decay behaviour;
* straggler-avoidance detours and their measured tick reduction;
* the import-isolation pin: fault-attached runs never load ``repro.
  faults.chaos``, and gray-free plans leave costs bit-identical.
"""

import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import Session
from repro.errors import ConfigError
from repro.faults import (
    BitFlip,
    FaultInjector,
    FaultPlan,
    HealthTracker,
    LinkCorrupt,
    LinkDrop,
    LinkFlaky,
    LinkKill,
    LinkSlow,
    NodeKill,
    NodeSlow,
    RetryPolicy,
    gaussian_workload,
    run_resilient,
)
from repro.faults.checkpoint import CheckpointStore
from repro.machine import Hypercube


# ---------------------------------------------------------------------------
# plan round-trip + validation
# ---------------------------------------------------------------------------


class TestGrayPlanRoundTrip:
    def test_all_eight_kinds_round_trip(self, tmp_path):
        plan = FaultPlan([
            LinkKill(10.0, dim=1, pid=2),
            NodeKill(20.0, pid=3),
            LinkDrop(30.0, dim=0, count=2),
            BitFlip(40.0, pid=1, slot=5),
            LinkCorrupt(50.0, dim=2),
            LinkSlow(60.0, dim=1, pid=0, factor=4.0, duration=10.0),
            NodeSlow(70.0, pid=5, factor=2.5),
            LinkFlaky(80.0, dim=0, drop_p=0.3, duration=5.0, seed=9),
        ])
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(plan.as_dict()))
        loaded = FaultPlan.from_json(str(path))
        assert loaded.events == plan.events

    def test_unknown_kind_names_the_entry(self):
        with pytest.raises(ConfigError, match=r"events\[1\].*unknown.*kind"):
            FaultPlan.from_dict({"events": [
                {"kind": "LinkKill", "time": 1.0},
                {"kind": "GammaRay", "time": 2.0},
            ]})

    def test_missing_time_names_the_entry(self):
        with pytest.raises(ConfigError, match=r"events\[0\].*time"):
            FaultPlan.from_dict({"events": [{"kind": "LinkSlow"}]})

    def test_unknown_field_names_the_entry(self):
        with pytest.raises(ConfigError, match=r"events\[0\].*unknown field"):
            FaultPlan.from_dict({"events": [
                {"kind": "NodeSlow", "time": 1.0, "speed": 2.0},
            ]})

    def test_malformed_json_names_the_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ConfigError, match=r"broken\.json.*malformed"):
            FaultPlan.from_json(str(path))

    def test_invalid_factor_rejected(self):
        with pytest.raises(ConfigError, match="factor"):
            LinkSlow(0.0, dim=0, pid=0, factor=0.5)
        with pytest.raises(ConfigError, match="factor"):
            NodeSlow(0.0, pid=0, factor=0.0)

    def test_invalid_drop_p_rejected(self):
        with pytest.raises(ConfigError, match="drop_p"):
            LinkFlaky(0.0, dim=0, drop_p=1.5)

    def test_negative_duration_rejected(self):
        with pytest.raises(ConfigError, match="duration"):
            LinkSlow(0.0, dim=0, pid=0, factor=2.0, duration=-1.0)

    def test_random_plan_with_gray_events_round_trips(self):
        plan = FaultPlan.random(
            4, seed=11, horizon=1e4, link_slows=2, node_slows=1,
            flaky_links=1,
        )
        kinds = {type(ev).__name__ for ev in plan.events}
        assert {"LinkSlow", "NodeSlow", "LinkFlaky"} <= kinds
        assert FaultPlan.from_dict(plan.as_dict()).events == plan.events

    def test_gray_free_random_plans_unchanged(self):
        """Pre-gray parameter sets draw byte-identical plans."""
        a = FaultPlan.random(4, seed=5, horizon=1e4, link_kills=1, drops=2)
        b = FaultPlan.random(4, seed=5, horizon=1e4, link_kills=1, drops=2,
                             link_slows=0, node_slows=0, flaky_links=0)
        assert a.as_dict() == b.as_dict()


# ---------------------------------------------------------------------------
# lockstep stretch semantics
# ---------------------------------------------------------------------------


class TestLockstepStretch:
    def test_slow_link_stretches_time_only(self):
        healthy = Hypercube(3)
        healthy.charge_comm_round(4.0, dim=0)
        slowed = Hypercube(3)
        assert slowed.slow_link(0, 0, 3.0)
        slowed.charge_comm_round(4.0, dim=0)
        assert slowed.counters.time == 3.0 * healthy.counters.time
        assert (
            slowed.counters.elements_transferred
            == healthy.counters.elements_transferred
        )
        assert slowed.counters.comm_rounds == healthy.counters.comm_rounds

    def test_slow_link_off_dimension_is_free(self):
        healthy = Hypercube(3)
        healthy.charge_comm_round(4.0, dim=2)
        slowed = Hypercube(3)
        slowed.slow_link(0, 0, 3.0)
        slowed.charge_comm_round(4.0, dim=2)
        assert slowed.counters.time == healthy.counters.time

    def test_slow_node_stretches_every_dimension(self):
        healthy = Hypercube(3)
        healthy.charge_comm_round(4.0, dim=2)
        slowed = Hypercube(3)
        assert slowed.slow_node(5, 2.0)
        slowed.charge_comm_round(4.0, dim=2)
        assert slowed.counters.time == 2.0 * healthy.counters.time

    def test_worst_straggler_wins(self):
        m = Hypercube(3)
        m.slow_link(0, 0, 2.0)
        m.slow_link(0, 2, 5.0)
        m.slow_node(1, 3.0)
        assert m.round_stretch(0) == 5.0
        assert m.round_stretch(1) == 3.0

    def test_restore_clears_gray_state(self):
        m = Hypercube(3)
        m.slow_link(1, 0, 4.0)
        m.slow_node(2, 2.0)
        assert m.gray_active
        m.restore_link_speed(1, 0)
        m.restore_node_speed(2)
        assert not m.gray_active
        assert m.round_stretch(1) == 1.0

    def test_slowing_a_dead_link_or_node_is_refused(self):
        m = Hypercube(3)
        m.kill_link(0, 0)
        assert not m.slow_link(0, 0, 4.0)
        m.kill_node(5)
        assert not m.slow_node(5, 2.0)

    def test_kill_clears_slow_state(self):
        m = Hypercube(3)
        m.slow_node(5, 4.0)
        m.kill_node(5)
        assert m.node_slow_factor(5) == 1.0
        assert m.round_stretch(None) == 1.0

    def test_slow_link_bumps_epoch(self):
        m = Hypercube(3)
        before = m.epoch
        m.slow_link(0, 0, 2.0)
        assert m.epoch > before


# ---------------------------------------------------------------------------
# injected gray events: firing, recovery windows, flaky drops
# ---------------------------------------------------------------------------


class TestGrayInjection:
    def test_link_slow_fires_and_expires(self):
        plan = FaultPlan([LinkSlow(5.0, dim=0, pid=0, factor=4.0,
                                   duration=100.0)])
        inj = FaultInjector(plan)
        m = Hypercube(3)
        m.attach_faults(inj)
        m.charge_comm_round(8.0, dim=1)  # clock advances past t=5
        m.charge_comm_round(8.0, dim=1)  # next poll fires the event
        assert m.gray_active
        assert inj.stats.link_slows == 1
        deadline = inj._gray_expiries[0][0]
        while m.counters.time <= deadline:
            m.charge_comm_round(8.0, dim=1)
        m.charge_comm_round(8.0, dim=1)  # next poll drains the expiry
        assert not m.gray_active
        assert inj.stats.gray_recoveries == 1

    def test_permanent_slow_never_recovers(self):
        plan = FaultPlan([NodeSlow(0.0, pid=1, factor=2.0)])
        inj = FaultInjector(plan)
        m = Hypercube(3)
        m.attach_faults(inj)
        for _ in range(50):
            m.charge_comm_round(8.0, dim=0)
        assert m.gray_active
        assert inj.stats.gray_recoveries == 0
        assert inj.stats.slow_rounds > 0
        assert inj.stats.slow_time > 0.0

    def test_flaky_link_drops_are_seeded_deterministic(self):
        def run():
            plan = FaultPlan([LinkFlaky(0.0, dim=0, drop_p=0.5, seed=42)])
            inj = FaultInjector(plan)
            m = Hypercube(3)
            m.attach_faults(inj)
            for _ in range(40):
                m.charge_comm_round(4.0, dim=0)
            return m.counters.time, inj.stats.flaky_drops, inj.stats.retries

        t1, d1, r1 = run()
        t2, d2, r2 = run()
        assert (t1, d1, r1) == (t2, d2, r2)
        assert d1 > 0
        assert r1 > 0

    def test_flaky_window_expires(self):
        plan = FaultPlan([LinkFlaky(0.0, dim=0, drop_p=1.0, duration=50.0,
                                    seed=1)])
        inj = FaultInjector(plan)
        m = Hypercube(3)
        m.attach_faults(inj)
        while m.counters.time <= 55.0:
            m.charge_comm_round(4.0, dim=0)
        drops_at_expiry = inj.stats.flaky_drops
        m.charge_comm_round(4.0, dim=0)
        m.charge_comm_round(4.0, dim=0)
        assert inj.stats.gray_recoveries == 1
        assert inj.stats.flaky_drops == drops_at_expiry

    def test_hedged_retransmission_trades_volume_for_time(self):
        def run(hedge):
            plan = FaultPlan([LinkFlaky(0.0, dim=0, drop_p=1.0, seed=3)])
            inj = FaultInjector(plan, retry=RetryPolicy(hedge=hedge))
            m = Hypercube(3)
            m.attach_faults(inj)
            for _ in range(10):
                m.charge_comm_round(4.0, dim=0)
            return m.counters, inj.stats

        plain_c, plain_st = run(False)
        hedged_c, hedged_st = run(True)
        assert hedged_st.hedged_retransmits > 0
        assert plain_st.hedged_retransmits == 0
        assert plain_st.backoff_time > 0.0
        assert hedged_st.backoff_time == 0.0
        # hedging doubles retransmit volume but skips every backoff wait
        assert (
            hedged_c.elements_transferred > plain_c.elements_transferred
        )
        assert hedged_c.time < plain_c.time


class TestJitteredBackoff:
    def test_zero_jitter_is_bit_exact(self):
        policy = RetryPolicy()
        for attempt in range(6):
            assert policy.backoff_jittered(attempt, nonce=attempt) == (
                policy.backoff(attempt)
            )

    def test_jitter_is_counter_deterministic(self):
        a = RetryPolicy(jitter=0.25, seed=7)
        b = RetryPolicy(jitter=0.25, seed=7)
        waits_a = [a.backoff_jittered(k, nonce=k) for k in range(8)]
        waits_b = [b.backoff_jittered(k, nonce=k) for k in range(8)]
        assert waits_a == waits_b

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(jitter=0.25, seed=1)
        for k in range(16):
            wait = policy.backoff_jittered(2, nonce=k)
            base = policy.backoff(2)
            assert 0.75 * base <= wait <= 1.25 * base

    def test_different_seeds_differ(self):
        a = RetryPolicy(jitter=0.25, seed=1)
        b = RetryPolicy(jitter=0.25, seed=2)
        assert [a.backoff_jittered(0, n) for n in range(8)] != [
            b.backoff_jittered(0, n) for n in range(8)
        ]

    def test_invalid_jitter_rejected(self):
        with pytest.raises(ConfigError, match="jitter"):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ConfigError, match="jitter"):
            RetryPolicy(jitter=-0.1)


# ---------------------------------------------------------------------------
# health tracker + straggler avoidance
# ---------------------------------------------------------------------------


class TestHealthTracker:
    def test_learns_observed_slowdowns(self):
        h = HealthTracker()
        h.observe_round(0, {0: 4.0}, {})
        assert h.link_factor(0, 0) > 1.0
        assert h.tracked == 1

    def test_decays_for_participating_links(self):
        h = HealthTracker()
        h.observe_round(0, {0: 8.0}, {})
        suspicious = h.link_factor(0, 0)
        for _ in range(40):
            h.observe_round(0, {}, {}, participating={0})
        assert h.link_factor(0, 0) < suspicious
        assert h.tracked == 0  # fully forgiven and dropped

    def test_detoured_links_stay_suspicious(self):
        """No telemetry means no recovery evidence: avoidance is sticky."""
        h = HealthTracker()
        h.observe_round(0, {0: 8.0}, {})
        suspicious = h.link_factor(0, 0)
        for _ in range(30):
            h.observe_round(0, {}, {}, participating={2})
        assert h.link_factor(0, 0) == suspicious

    def test_node_scores_tracked(self):
        h = HealthTracker()
        h.observe_round(1, {}, {3: 4.0})
        assert h.node_factor(3) > 1.0
        h.clear()
        assert h.tracked == 0


class TestStragglerAvoidance:
    @staticmethod
    def _route(avoid, factor=12.0, repeats=16):
        from repro.machine.router import Router

        plan = FaultPlan([LinkSlow(0.0, dim=0, pid=0, factor=factor)])
        inj = FaultInjector(plan, avoid_stragglers=avoid)
        s = Session(4, plan_cache=False, faults=inj)
        router = Router(s.machine)
        src = np.array([0], dtype=np.int64)
        dst = np.array([1], dtype=np.int64)
        sizes = np.array([32.0])
        for _ in range(repeats):
            router.simulate(src, dst, sizes)
        return s, inj

    def test_detour_reduces_simulated_ticks(self):
        s_off, inj_off = self._route(False)
        s_on, inj_on = self._route(True)
        assert inj_off.stats.straggler_detours == 0
        assert inj_on.stats.straggler_detours > 0
        assert s_on.time < s_off.time

    def test_no_detour_below_break_even(self):
        """A 2x-slow link is cheaper to cross than a 3-hop sidestep."""
        _, inj = self._route(True, factor=2.0)
        assert inj.stats.straggler_detours == 0

    def test_avoidance_report_line(self):
        s, _ = self._route(True)
        assert "straggler detours" in s.report()


# ---------------------------------------------------------------------------
# session integration + import isolation
# ---------------------------------------------------------------------------


class TestSessionIntegration:
    def test_retry_requires_fault_plan(self):
        with pytest.raises(ConfigError, match="retry"):
            Session(3, retry=RetryPolicy())
        with pytest.raises(ConfigError, match="retry"):
            Session(3, faults=FaultInjector(FaultPlan([])),
                    retry=RetryPolicy())

    def test_retry_kwarg_reaches_the_injector(self):
        policy = RetryPolicy(jitter=0.25, seed=3, hedge=True)
        s = Session(3, faults=FaultPlan([]), retry=policy)
        assert s.machine.faults.retry is policy

    def test_gray_run_sanitized_end_to_end(self):
        """A sanitized gray-faulted solve holds every accounting invariant."""
        rng = np.random.default_rng(0)
        A = rng.integers(-4, 5, size=(12, 12)).astype(np.float64)
        A += 12 * np.eye(12)
        b = rng.integers(-4, 5, size=12).astype(np.float64)
        baseline_s = Session(4)
        baseline = gaussian_workload(A, b)(
            baseline_s, CheckpointStore(baseline_s)
        )
        plan = FaultPlan([
            LinkSlow(10.0, dim=0, pid=0, factor=6.0, duration=200.0),
            NodeSlow(20.0, pid=3, factor=2.0),
            LinkFlaky(30.0, dim=1, drop_p=0.4, seed=5),
        ])
        s = Session(4, faults=plan,
                    retry=RetryPolicy(jitter=0.25, seed=1), sanitize=True)
        report = run_resilient(s, gaussian_workload(A, b))
        assert report.recovered
        assert np.array_equal(np.asarray(report.result), np.asarray(baseline))
        assert s.time > baseline_s.time  # gray faults cost simulated time

    def test_gray_free_plan_is_bit_identical(self):
        """Fail-stop-only plans charge exactly what they did pre-gray —
        the gray machinery must be exactly free when no gray event fires."""
        def run(plan):
            s = Session(3, faults=plan)
            A = s.matrix(np.arange(48, dtype=float).reshape(8, 6))
            A.reduce(axis=1, op="sum")
            A.extract(axis=0, index=2)
            return s.machine.counters

        drop_plan = FaultPlan([LinkDrop(1.0, dim=0, count=1)])
        a = run(drop_plan)
        b = run(drop_plan)
        assert a.time == b.time
        assert a.elements_transferred == b.elements_transferred


_CHAOS_ISOLATION_SNIPPET = """
import json
import sys

import numpy as np

from repro import Session
from repro.faults import FaultPlan, run_resilient, matvec_workload

rng = np.random.default_rng(7)
A = rng.integers(-3, 4, size=(8, 8)).astype(np.float64)
x = rng.integers(-3, 4, size=8).astype(np.float64)
plan = FaultPlan.random(3, seed=2, horizon=1e4, link_kills=1, drops=1)
s = Session(3, faults=plan)
report = run_resilient(s, matvec_workload(A, x))
print(json.dumps({
    "recovered": report.recovered,
    "chaos_imported": "repro.faults.chaos" in sys.modules,
}))
"""


def test_fault_runs_never_import_chaos_module():
    """The chaos harness is a consumer of the fault model, not a
    dependency: ordinary faulted runs must never load it."""
    src = str(Path(__file__).resolve().parent.parent / "src")
    out = subprocess.run(
        [sys.executable, "-c", _CHAOS_ISOLATION_SNIPPET],
        capture_output=True, text=True, check=True,
        env={"PYTHONPATH": src, "PATH": "/usr/bin:/bin"},
    )
    sub = json.loads(out.stdout)
    assert sub["recovered"] is True
    assert sub["chaos_imported"] is False


# ---------------------------------------------------------------------------
# recovery edge cases (satellite: double-degrade + armed drops)
# ---------------------------------------------------------------------------


class TestRecoveryEdgeCases:
    @staticmethod
    def _problem():
        rng = np.random.default_rng(3)
        A = rng.integers(-4, 5, size=(12, 12)).astype(np.float64)
        A += 12 * np.eye(12)
        b = rng.integers(-4, 5, size=12).astype(np.float64)
        return A, b

    def test_double_degrade_with_armed_drops(self):
        """Two node kills force two checkpoint replays while transient
        drops are still armed; the recovered result stays bit-exact."""
        A, b = self._problem()
        dry = Session(4)
        baseline = gaussian_workload(A, b)(dry, CheckpointStore(dry))
        horizon = dry.time
        plan = FaultPlan([
            NodeKill(0.15 * horizon, pid=5),
            LinkDrop(0.2 * horizon, dim=0, count=2),
            LinkDrop(0.25 * horizon, dim=1, count=1),
            # pid 2 stays inside the even-pid survivor subcube after the
            # first degrade, so this kill survives translation and forces
            # a second checkpoint replay.
            NodeKill(0.4 * horizon, pid=2),
        ])
        s = Session(4, faults=plan)
        report = run_resilient(s, gaussian_workload(A, b), max_recoveries=3)
        assert report.recovered
        assert report.recoveries == 2
        assert report.final_p == 4
        assert np.array_equal(np.asarray(report.result), np.asarray(baseline))

    def test_backoff_determinism_across_identical_seeds(self):
        """Identical seeds give identical jittered recovery runs."""
        A, b = self._problem()

        def run():
            plan = FaultPlan([
                NodeKill(500.0, pid=2),
                LinkDrop(600.0, dim=0, count=3),
            ])
            s = Session(4, faults=plan,
                        retry=RetryPolicy(jitter=0.25, seed=9))
            report = run_resilient(s, gaussian_workload(A, b),
                                   max_recoveries=2)
            return report, s.machine.counters

        rep1, c1 = run()
        rep2, c2 = run()
        assert rep1.recovered and rep2.recovered
        assert c1.time == c2.time
        assert c1.elements_transferred == c2.elements_transferred
        assert c1.comm_rounds == c2.comm_rounds
        assert np.array_equal(
            np.asarray(rep1.result), np.asarray(rep2.result)
        )
