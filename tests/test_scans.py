"""Tests for the scan primitives: matrix scans, vector scans, segmented scans."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import Session
from repro.core import DistributedVector, primitives as P
from repro.embeddings import MatrixEmbedding
from repro.machine import CostModel, Hypercube


@pytest.fixture
def s():
    return Session(4, "unit")


class TestMatrixScan:
    @pytest.mark.parametrize("R,C", [(9, 13), (16, 16), (1, 20), (17, 3)])
    def test_exclusive_row_scan(self, s, rng, R, C):
        A_h = rng.standard_normal((R, C))
        A = s.matrix(A_h)
        got = A.scan(axis=1, op="sum").to_numpy()
        expect = np.concatenate(
            [np.zeros((R, 1)), np.cumsum(A_h, axis=1)[:, :-1]], axis=1
        )
        assert np.allclose(got, expect)

    @pytest.mark.parametrize("R,C", [(9, 13), (8, 8)])
    def test_inclusive_col_scan(self, s, rng, R, C):
        A_h = rng.standard_normal((R, C))
        A = s.matrix(A_h)
        got = A.scan(axis=0, op="sum", inclusive=True).to_numpy()
        assert np.allclose(got, np.cumsum(A_h, axis=0))

    def test_max_scan(self, s, rng):
        A_h = rng.standard_normal((10, 12))
        got = s.matrix(A_h).scan(axis=1, op="max", inclusive=True).to_numpy()
        assert np.allclose(got, np.maximum.accumulate(A_h, axis=1))

    def test_scan_then_last_column_equals_reduce(self, s, rng):
        """inclusive scan's last slice == reduce: the defining relation."""
        A_h = rng.standard_normal((7, 11))
        A = s.matrix(A_h)
        scanned = A.scan(axis=1, op="sum", inclusive=True)
        last = scanned.extract(axis=1, index=10)
        assert np.allclose(last.to_numpy(), A.reduce(1, "sum").to_numpy())

    def test_cyclic_layout_rejected(self, s, rng):
        A = s.matrix(rng.standard_normal((8, 8)), layout="cyclic")
        with pytest.raises(ValueError, match="block layout"):
            A.scan(axis=1)

    def test_cost_structure_matches_reduce_shape(self):
        """scan = local pass + lg rounds + local pass: same asymptotic
        shape as reduce (one extra local pass)."""
        m = Hypercube(6, CostModel(tau=100, t_c=1, t_a=1, t_m=1))
        emb = MatrixEmbedding.default(m, 64, 64)
        A = emb.scatter(np.ones((64, 64)))
        r0 = m.counters.comm_rounds
        P.scan(A, emb, axis=1, op="sum")
        assert m.counters.comm_rounds - r0 == len(emb.col_dims)

    def test_gray_order_correct_at_every_size(self, rng):
        """The scan must follow *grid* order on the Gray-coded grid."""
        for n in (0, 1, 3, 5):
            m = Hypercube(n, CostModel.unit())
            emb = MatrixEmbedding.default(m, 6, 18)
            A_h = rng.standard_normal((6, 18))
            out = P.scan(emb.scatter(A_h), emb, axis=1, op="sum",
                         inclusive=True)
            assert np.allclose(emb.gather(out), np.cumsum(A_h, 1)), n


class TestVectorScan:
    def test_exclusive(self, s, rng):
        v_h = rng.standard_normal(23)
        got = s.vector(v_h).scan("sum").to_numpy()
        assert np.allclose(got, np.concatenate([[0], np.cumsum(v_h)[:-1]]))

    def test_inclusive_max(self, s, rng):
        v_h = rng.standard_normal(23)
        got = s.vector(v_h).scan("max", inclusive=True).to_numpy()
        assert np.allclose(got, np.maximum.accumulate(v_h))

    def test_aligned_vector_scan(self, s, rng):
        A = s.matrix(rng.standard_normal((10, 14)))
        rv = A.reduce(1, "sum")
        got = rv.scan("sum", inclusive=True).to_numpy()
        assert np.allclose(got, np.cumsum(A.to_numpy().sum(1)))

    def test_cyclic_vector_rejected(self, s, rng):
        v = s.vector(rng.standard_normal(10), layout="cyclic")
        with pytest.raises(ValueError, match="block"):
            v.scan("sum")

    def test_single_element(self, s):
        v = s.vector(np.array([5.0]))
        assert v.scan("sum").to_numpy()[0] == 0.0
        assert v.scan("sum", inclusive=True).to_numpy()[0] == 5.0

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=0, max_value=2**31),
    )
    def test_property_matches_cumsum(self, L, n, seed):
        m = Hypercube(n, CostModel.unit())
        v_h = np.random.default_rng(seed).standard_normal(L)
        v = DistributedVector.from_numpy(m, v_h)
        got = v.scan("sum", inclusive=True).to_numpy()
        assert np.allclose(got, np.cumsum(v_h))


def seg_scan_oracle(vals, flags):
    out = np.zeros_like(vals, dtype=float)
    acc = 0.0
    for i, (x, f) in enumerate(zip(vals, flags)):
        if f:
            acc = 0.0
        out[i] = acc
        acc += x
    return out


class TestSegmentedScan:
    def test_basic(self, s):
        v_h = np.array([1.0, 2, 3, 4, 5, 6])
        f_h = np.array([True, False, True, False, False, True])
        v = s.vector(v_h)
        f = DistributedVector(v.embedding.scatter(f_h), v.embedding)
        got = v.segmented_scan(f).to_numpy()
        assert np.allclose(got, [0, 1, 0, 3, 7, 0])

    def test_no_flags_is_plain_scan(self, s, rng):
        v_h = rng.standard_normal(19)
        v = s.vector(v_h)
        f = DistributedVector(
            v.embedding.scatter(np.zeros(19, bool)), v.embedding
        )
        assert np.allclose(
            v.segmented_scan(f).to_numpy(), v.scan("sum").to_numpy()
        )

    def test_all_flags_gives_zero(self, s, rng):
        v_h = rng.standard_normal(12)
        v = s.vector(v_h)
        f = DistributedVector(
            v.embedding.scatter(np.ones(12, bool)), v.embedding
        )
        assert np.allclose(v.segmented_scan(f).to_numpy(), 0.0)

    def test_embedding_mismatch_rejected(self, s, rng):
        v = s.vector(rng.standard_normal(8))
        f = s.vector(np.zeros(8), layout="cyclic")
        with pytest.raises(ValueError):
            v.segmented_scan(f)

    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(min_value=1, max_value=80),
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=0, max_value=2**31),
        st.floats(min_value=0.0, max_value=0.9),
    )
    def test_property_matches_oracle(self, L, n, seed, density):
        rng = np.random.default_rng(seed)
        m = Hypercube(n, CostModel.unit())
        v_h = rng.standard_normal(L)
        f_h = rng.random(L) < density
        v = DistributedVector.from_numpy(m, v_h)
        f = DistributedVector(v.embedding.scatter(f_h), v.embedding)
        got = v.segmented_scan(f).to_numpy()
        assert np.allclose(got, seg_scan_oracle(v_h, f_h))

    def test_segment_sums_via_scan(self, s, rng):
        """Classic idiom: (segmented inclusive scan)'s value before the
        next flag equals the segment sum — check by reconstruction."""
        v_h = np.arange(1.0, 13.0)
        f_h = np.zeros(12, bool)
        f_h[[0, 4, 9]] = True
        v = s.vector(v_h)
        f = DistributedVector(v.embedding.scatter(f_h), v.embedding)
        excl = v.segmented_scan(f).to_numpy()
        incl = excl + v_h
        assert np.isclose(incl[3], v_h[0:4].sum())
        assert np.isclose(incl[8], v_h[4:9].sum())
        assert np.isclose(incl[11], v_h[9:].sum())
