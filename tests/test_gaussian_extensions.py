"""Tests for the Gaussian-elimination extensions: implicit pivoting,
multi-RHS solves, inversion and determinants."""

import numpy as np
import pytest

from repro import Session
from repro import workloads as W
from repro.algorithms import gaussian
from repro.algorithms.gaussian import Elimination, SingularMatrixError


@pytest.fixture
def s():
    return Session(4, "unit")


class TestImplicitPivoting:
    @pytest.mark.parametrize("n", [1, 3, 8, 16, 24])
    def test_solves_random_systems(self, s, n):
        A_h, b, x_true = W.random_system(n, seed=n + 100)
        res = gaussian.solve(s.matrix(A_h), b, pivoting="implicit")
        assert np.allclose(res.x, x_true, atol=1e-7)

    def test_agrees_with_explicit(self, s):
        A_h, b, _ = W.random_system(12, seed=55)
        explicit = gaussian.solve(s.matrix(A_h), b, pivoting="partial")
        implicit = gaussian.solve(s.matrix(A_h), b, pivoting="implicit")
        assert np.allclose(explicit.x, implicit.x, atol=1e-9)

    def test_permutation_matrix(self, s, rng):
        perm = rng.permutation(8)
        P = np.eye(8)[perm]
        b = np.arange(1.0, 9.0)
        res = gaussian.solve(s.matrix(P), b, pivoting="implicit")
        assert np.allclose(P @ res.x, b)
        # the pivot list is exactly the permutation's structure
        assert sorted(res.pivots) == list(range(8))

    def test_no_row_swap_phase(self, rng):
        s = Session(4, "unit")
        A_h, b, _ = W.random_system(16, seed=56)
        gaussian.solve(s.matrix(A_h), b, pivoting="implicit")
        assert "row-swap" not in s.machine.counters.phase_times

    def test_cheaper_than_explicit_when_swaps_abound(self):
        """On systems that pivot every step, skipping the physical swaps
        must save simulated time."""
        times = {}
        for mode in ("partial", "implicit"):
            s = Session(6, "cm2")
            A_h, b, _ = W.random_system(32, seed=57)
            res = gaussian.solve(s.matrix(A_h), b, pivoting=mode)
            times[mode] = res.cost.time
            nswaps = sum(1 for k, p in enumerate(res.pivots) if p != k)
            if mode == "partial":
                assert nswaps > 10  # the workload really does swap
        assert times["implicit"] < times["partial"]

    def test_singular_detected(self, s):
        with pytest.raises(SingularMatrixError):
            gaussian.solve(s.matrix(np.ones((4, 4))), np.ones(4),
                           pivoting="implicit")


class TestSolveMulti:
    def test_multiple_rhs(self, s, rng):
        A_h, _, _ = W.random_system(10, seed=60)
        B_h = rng.standard_normal((10, 4))
        res = gaussian.solve_multi(s.matrix(A_h), B_h)
        assert res.x.shape == (10, 4)
        assert np.allclose(res.x, np.linalg.solve(A_h, B_h), atol=1e-7)

    def test_single_rhs_as_vector(self, s):
        A_h, b, x_true = W.random_system(8, seed=61)
        res = gaussian.solve_multi(s.matrix(A_h), b)
        assert np.allclose(res.x[:, 0], x_true, atol=1e-7)

    def test_implicit_mode(self, s, rng):
        A_h, _, _ = W.random_system(9, seed=62)
        B_h = rng.standard_normal((9, 2))
        res = gaussian.solve_multi(s.matrix(A_h), B_h, pivoting="implicit")
        assert np.allclose(res.x, np.linalg.solve(A_h, B_h), atol=1e-7)

    def test_one_factorisation_beats_k_solves(self):
        """The blocked tableau amortises the elimination."""
        A_h, _, _ = W.random_system(16, seed=63)
        B_h = np.random.default_rng(0).standard_normal((16, 8))
        s1 = Session(4, "cm2")
        multi = gaussian.solve_multi(s1.matrix(A_h), B_h)
        s2 = Session(4, "cm2")
        t0 = s2.machine.counters.time
        for j in range(8):
            gaussian.solve(s2.matrix(A_h), B_h[:, j])
        separate = s2.machine.counters.time - t0
        assert multi.cost.time < separate

    def test_shape_checks(self, s, rng):
        with pytest.raises(ValueError, match="square"):
            gaussian.solve_multi(s.matrix(rng.standard_normal((3, 4))),
                                 np.ones(3))
        with pytest.raises(ValueError, match="rows"):
            gaussian.solve_multi(s.matrix(np.eye(3)), np.ones((4, 2)))


class TestInvert:
    def test_inverse_matches_numpy(self, s):
        A_h, _, _ = W.random_system(10, seed=64)
        res = gaussian.invert(s.matrix(A_h))
        assert np.allclose(res.x, np.linalg.inv(A_h), atol=1e-7)

    def test_inverse_times_matrix_is_identity(self, s):
        A_h, _, _ = W.random_system(8, seed=65)
        inv = gaussian.invert(s.matrix(A_h)).x
        assert np.allclose(inv @ A_h, np.eye(8), atol=1e-7)

    def test_identity_inverse(self, s):
        res = gaussian.invert(s.matrix(np.eye(6)))
        assert np.allclose(res.x, np.eye(6))

    def test_non_square_rejected(self, s, rng):
        with pytest.raises(ValueError, match="square"):
            gaussian.invert(s.matrix(rng.standard_normal((3, 4))))


class TestDeterminant:
    @pytest.mark.parametrize("n", [1, 2, 5, 9])
    def test_matches_numpy(self, s, rng, n):
        A_h = rng.standard_normal((n, n))
        got = gaussian.determinant(s.matrix(A_h))
        assert np.isclose(got, np.linalg.det(A_h), rtol=1e-8)

    def test_singular_gives_zero(self, s):
        assert gaussian.determinant(s.matrix(np.ones((4, 4)))) == 0.0

    def test_permutation_sign(self, s):
        # a single row swap flips the sign of det(I)
        P = np.eye(4)
        P[[0, 1]] = P[[1, 0]]
        assert np.isclose(gaussian.determinant(s.matrix(P)), -1.0)

    def test_scaling_row_scales_det(self, s, rng):
        A_h, _, _ = W.random_system(6, seed=67)
        d1 = gaussian.determinant(s.matrix(A_h))
        A2 = A_h.copy()
        A2[2] *= 3.0
        d2 = gaussian.determinant(s.matrix(A2))
        assert np.isclose(d2, 3.0 * d1, rtol=1e-8)


class TestEliminationRecord:
    def test_pivot_values_product_is_det_magnitude(self, s, rng):
        A_h = rng.standard_normal((7, 7))
        T = s.matrix(A_h)
        elim = gaussian.eliminate(
            type(T).from_numpy(s.machine, A_h), pivoting="partial"
        )
        prod = np.prod(elim.pivot_values)
        assert np.isclose(abs(prod), abs(np.linalg.det(A_h)), rtol=1e-8)

    def test_row_of_step(self):
        e = Elimination(None, [2, 0, 1], [1.0] * 3, "implicit")
        assert [e.row_of_step(k) for k in range(3)] == [2, 0, 1]
        e2 = Elimination(None, [2, 1, 2], [1.0] * 3, "partial")
        assert [e2.row_of_step(k) for k in range(3)] == [0, 1, 2]

    def test_permutation_sign_identity(self):
        e = Elimination(None, [0, 1, 2], [1.0] * 3, "implicit")
        assert e.permutation_sign() == 1.0

    def test_permutation_sign_transposition(self):
        e = Elimination(None, [1, 0, 2], [1.0] * 3, "implicit")
        assert e.permutation_sign() == -1.0

    def test_permutation_sign_three_cycle(self):
        e = Elimination(None, [1, 2, 0], [1.0] * 3, "implicit")
        assert e.permutation_sign() == 1.0


class TestGaussJordan:
    @pytest.mark.parametrize("n", [1, 4, 12, 20])
    def test_solves(self, s, n):
        A_h, b, x_true = W.random_system(n, seed=n + 70)
        res = gaussian.gauss_jordan(s.matrix(A_h), b)
        assert np.allclose(res.x, x_true, atol=1e-7)

    def test_agrees_with_lu_path(self, s):
        A_h, b, _ = W.random_system(10, seed=71)
        gj = gaussian.gauss_jordan(s.matrix(A_h), b)
        lu = gaussian.solve(s.matrix(A_h), b)
        assert np.allclose(gj.x, lu.x, atol=1e-9)

    def test_no_back_substitution_phase(self):
        s = Session(4, "unit")
        A_h, b, _ = W.random_system(10, seed=72)
        gaussian.gauss_jordan(s.matrix(A_h), b)
        assert "back-substitution" not in s.machine.counters.phase_times
        assert "gauss-jordan" in s.machine.counters.phase_times

    def test_singular_detected(self, s):
        with pytest.raises(SingularMatrixError):
            gaussian.gauss_jordan(s.matrix(np.zeros((3, 3))), np.ones(3))

    def test_simd_flop_parity_with_lu(self):
        """On a SIMD machine the masked rank-1 update costs a full local
        pass whether it touches all rows (Gauss-Jordan) or only the
        trailing ones (LU) — so, unlike the serial 1.5x rule, the two
        charge comparable arithmetic here."""
        s1 = Session(4, "unit")
        s2 = Session(4, "unit")
        A_h, b, _ = W.random_system(24, seed=73)
        gaussian.gauss_jordan(s1.matrix(A_h), b)
        gaussian.solve(s2.matrix(A_h), b)
        ratio = s1.machine.counters.flops / s2.machine.counters.flops
        assert 0.7 < ratio < 1.5, ratio
