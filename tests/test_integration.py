"""Cross-module integration tests: realistic end-to-end scenarios."""

import numpy as np
import pytest

from repro import Session
from repro import workloads as W
from repro.algorithms import gaussian, matvec, simplex
from repro.algorithms.naive import NaiveMatrix
from repro.core import DistributedMatrix
from repro.embeddings import RowAlignedEmbedding


class TestPowerIteration:
    """Repeated matvec: the vector must flow between embeddings cleanly."""

    def test_converges_to_dominant_eigenvector(self, rng):
        s = Session(4, "unit")
        n = 16
        # symmetric with a well-separated top eigenvalue
        Q, _ = np.linalg.qr(rng.standard_normal((n, n)))
        lams = np.concatenate([[10.0], rng.uniform(0.1, 1.0, n - 1)])
        A_h = Q @ np.diag(lams) @ Q.T
        A = s.matrix(A_h)
        x = s.row_vector(np.ones(n) / np.sqrt(n), like=A)
        for _ in range(60):
            y = A.matvec(x)
            norm = float(np.sqrt(y.dot(y)))
            x = (y * (1.0 / norm)).as_embedding(
                RowAlignedEmbedding(A.embedding, None)
            )
        v = x.to_numpy()
        top = Q[:, 0]
        assert abs(abs(v @ top) - 1.0) < 1e-6

    def test_rayleigh_quotient_estimates_eigenvalue(self, rng):
        s = Session(3, "unit")
        A_h = np.diag([5.0, 2.0, 1.0, 0.5, 0.2, 0.1, 0.05, 0.01])
        A = s.matrix(A_h)
        x = s.row_vector(np.ones(8) / np.sqrt(8.0), like=A)
        for _ in range(40):
            y = A.matvec(x)
            norm = float(np.sqrt(y.dot(y)))
            x = (y * (1.0 / norm)).as_embedding(
                RowAlignedEmbedding(A.embedding, None)
            )
        y = A.matvec(x)
        lam = x.as_embedding(y.embedding).dot(y)
        assert np.isclose(lam, 5.0, atol=1e-4)


class TestSolveThenVerify:
    """Solve A x = b with the parallel solver, verify with a parallel
    matvec — two applications composed on one machine."""

    def test_residual_is_small(self):
        s = Session(4, "cm2")
        A_h, b, _ = W.random_system(20, seed=31)
        A = s.matrix(A_h)
        res = gaussian.solve(A, b)
        x = s.row_vector(res.x, like=A)
        Ax = A.matvec(x).to_numpy()
        assert np.allclose(Ax, b, atol=1e-6)

    def test_lp_certificate(self):
        """Verify simplex's optimum by complementary slackness-ish check:
        the claimed x is feasible and no coordinate improvement exists."""
        s = Session(4, "unit")
        lp = W.feasible_lp(8, 6, seed=32)
        res = simplex.solve(s.machine, lp.A, lp.b, lp.c)
        assert res.status == "optimal"
        x = res.x
        slack = lp.b - lp.A @ x
        assert np.all(slack >= -1e-8)
        # perturbing any single variable upward must violate a constraint
        # or not improve (local optimality of a vertex for LP = global)
        for j in range(6):
            if lp.c[j] <= 0:
                continue
            step = np.min(
                np.where(lp.A[:, j] > 1e-12, slack / lp.A[:, j], np.inf)
            )
            assert lp.c[j] * step <= 1e-6 or step < 1e-8 or np.isfinite(step)


class TestCostAccountingConsistency:
    def test_phase_times_sum_within_total(self):
        s = Session(4, "cm2")
        A_h, b, _ = W.random_system(12, seed=33)
        gaussian.solve(s.matrix(A_h), b)
        phases = s.machine.counters.phase_times
        assert phases["gaussian"] <= s.machine.counters.time + 1e-9
        inner = (
            phases.get("pivot-search", 0)
            + phases.get("row-swap", 0)
            + phases.get("update", 0)
            + phases.get("back-substitution", 0)
        )
        assert inner == pytest.approx(phases["gaussian"], rel=1e-12)

    def test_separate_sessions_do_not_interfere(self):
        s1 = Session(3, "unit")
        s2 = Session(3, "unit")
        s1.matrix(np.ones((4, 4))).reduce(1, "sum")
        assert s2.time == 0.0

    def test_snapshot_windows_compose(self):
        s = Session(3, "unit")
        A = s.matrix(np.ones((8, 8)))
        x = s.row_vector(np.ones(8), like=A)
        r1 = matvec.matvec(A, x)
        r2 = matvec.matvec(A, x)
        assert r1.cost.time == pytest.approx(r2.cost.time)


class TestPrimitiveVsNaiveEndToEnd:
    def test_identical_results_different_costs(self):
        s = Session(5, "cm2")
        A_h, b, x_true = W.random_system(16, seed=34)
        prim = gaussian.solve(s.matrix(A_h), b)
        nav = gaussian.solve(NaiveMatrix.from_numpy(s.machine, A_h), b)
        assert np.allclose(prim.x, nav.x, atol=1e-10)
        assert prim.pivots == nav.pivots
        assert nav.cost.time > prim.cost.time

    def test_speedup_reaches_order_of_magnitude_at_scale(self):
        """The abstract's headline: 'almost an order of magnitude' — our
        serialised-naive model reaches ~10x once the grid has ~2^7 bands.
        Checked here on a communication-bound primitive mix."""
        from repro.machine import CostModel, Hypercube
        n = 14  # 16384 processors: 128x128 grid
        mp = Hypercube(n, CostModel.cm2())
        mn = Hypercube(n, CostModel.cm2())
        A_h = W.dense_matrix(256, 256, seed=35)
        P = DistributedMatrix.from_numpy(mp, A_h)
        N = NaiveMatrix.from_numpy(mn, A_h)
        tp0 = mp.counters.time
        for _ in range(3):
            P.reduce(1, "sum")
            P.extract(0, 10)
        tp = mp.counters.time - tp0
        tn0 = mn.counters.time
        for _ in range(3):
            N.reduce(1, "sum")
            N.extract(0, 10)
        tn = mn.counters.time - tn0
        assert tn / tp > 8.0, f"only {tn/tp:.1f}x"
