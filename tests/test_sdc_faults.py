"""Silent-data-corruption fault mechanics (``BitFlip`` / ``LinkCorrupt``).

Covers plan serialisation round-trips (including the ``--fault-plan FILE``
path), injector edge cases around SDC events (simultaneous events, t=0
events, flips aimed at dead nodes or empty registries, idempotent kills),
and the bare-machine delivery semantics: without ABFT a corrupted block
crosses the wire silently and a stored flip propagates into results.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import CorruptionError, FaultError, NodeKilledError, Session
from repro.errors import ConfigError
from repro.faults import FaultInjector, FaultPlan
from repro.faults.plan import (
    BitFlip,
    LinkCorrupt,
    LinkDrop,
    LinkKill,
    NodeKill,
)
from repro.machine import CostModel, Hypercube, PVar


# ---------------------------------------------------------------------------
# plan serialisation: dict / JSON round-trips
# ---------------------------------------------------------------------------


class TestPlanRoundTrip:
    def test_dict_round_trip_is_exact(self):
        plan = FaultPlan([
            NodeKill(10.0, pid=3),
            LinkKill(5.0, dim=2, pid=1),
            LinkDrop(7.5, dim=0, count=3),
            BitFlip(2.0, pid=4, slot=17, bit=6, target=2),
            LinkCorrupt(9.0, dim=1, pid=2, slot=5, bit=0),
        ])
        again = FaultPlan.from_dict(plan.as_dict())
        assert again.events == plan.events

    def test_json_file_round_trip(self, tmp_path):
        plan = FaultPlan.random(
            4, seed=3, horizon=500.0, link_kills=1, node_kills=1, drops=2,
            bit_flips=2, link_corruptions=1,
        )
        path = tmp_path / "plan.json"
        plan.to_json(str(path))
        data = json.loads(path.read_text())
        assert {e["kind"] for e in data["events"]} >= {"BitFlip", "LinkCorrupt"}
        again = FaultPlan.from_json(str(path))
        assert again.events == plan.events

    def test_unknown_kind_is_a_config_error(self):
        with pytest.raises(ConfigError, match="unknown fault event kind"):
            FaultPlan.from_dict({"events": [{"kind": "Meteor", "time": 1.0}]})

    def test_bad_fields_are_a_config_error(self):
        with pytest.raises(ConfigError, match=r"events\[0\].*unknown field"):
            FaultPlan.from_dict(
                {"events": [{"kind": "BitFlip", "time": 1.0, "bogus": 7}]}
            )

    @given(
        st.lists(
            st.one_of(
                st.builds(
                    NodeKill,
                    st.floats(0, 1e6, allow_nan=False),
                    pid=st.integers(0, 63),
                ),
                st.builds(
                    LinkKill,
                    st.floats(0, 1e6, allow_nan=False),
                    dim=st.integers(0, 5),
                    pid=st.integers(0, 63),
                ),
                st.builds(
                    LinkDrop,
                    st.floats(0, 1e6, allow_nan=False),
                    dim=st.integers(0, 5),
                    count=st.integers(1, 4),
                ),
                st.builds(
                    BitFlip,
                    st.floats(0, 1e6, allow_nan=False),
                    pid=st.integers(0, 63),
                    slot=st.integers(0, 1 << 16),
                    bit=st.integers(0, 63),
                    target=st.integers(0, 7),
                ),
                st.builds(
                    LinkCorrupt,
                    st.floats(0, 1e6, allow_nan=False),
                    dim=st.integers(0, 5),
                    pid=st.integers(0, 63),
                    slot=st.integers(0, 1 << 16),
                    bit=st.integers(0, 63),
                ),
            ),
            max_size=12,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_any_plan_survives_a_json_round_trip(self, events):
        plan = FaultPlan(events)
        blob = json.dumps(plan.as_dict())
        again = FaultPlan.from_dict(json.loads(blob))
        assert again.events == plan.events


# ---------------------------------------------------------------------------
# injector edge cases
# ---------------------------------------------------------------------------


def _advance(machine, until):
    while machine.counters.time < until:
        machine.charge_local(64)


class TestInjectorEdgeCases:
    def test_two_events_at_the_same_tick_both_fire(self):
        m = Hypercube(3, CostModel.unit())
        inj = FaultInjector(FaultPlan([
            LinkDrop(50.0, dim=1, count=1),
            LinkDrop(50.0, dim=2, count=1),
        ]))
        m.attach_faults(inj)
        _advance(m, 51.0)
        m.charge_comm_round(4.0, dim=1)
        m.charge_comm_round(4.0, dim=2)
        assert inj.stats.drops == 2
        assert inj.stats.retries == 2
        assert inj.exhausted

    def test_time_zero_event_fires_on_first_poll(self):
        m = Hypercube(3, CostModel.unit())
        inj = FaultInjector(FaultPlan([LinkKill(0.0, dim=0, pid=0)]))
        m.attach_faults(inj)
        assert m.link_alive(0, 0)  # nothing has polled yet
        m.charge_comm_round(1.0, dim=1)
        assert not m.link_alive(0, 0)
        assert inj.stats.link_kills == 1

    def test_killing_a_dead_node_counts_once(self):
        m = Hypercube(3, CostModel.unit())
        inj = FaultInjector(FaultPlan([
            NodeKill(10.0, pid=5),
            NodeKill(20.0, pid=5),  # already dead: not double-counted
        ]))
        m.attach_faults(inj)
        _advance(m, 25.0)
        inj.poll(strict=False)
        assert not m.node_alive(5)
        assert inj.stats.node_kills == 1
        assert m.epoch == 1  # second kill must not bump the epoch again

    def test_bit_flip_on_killed_node_is_a_counted_noop(self):
        m = Hypercube(3, CostModel.unit())
        inj = FaultInjector(FaultPlan([
            NodeKill(10.0, pid=2),
            BitFlip(20.0, pid=2, slot=0, bit=0, target=0),
        ]))
        m.attach_faults(inj)
        pv = PVar(m, np.arange(m.p, dtype=np.float64))
        before = pv.data.copy()
        _advance(m, 25.0)
        inj.poll(strict=False)
        assert inj.stats.bit_flips == 0
        assert inj.stats.sdc_skipped == 1
        np.testing.assert_array_equal(pv.data, before)

    def test_bit_flip_with_empty_registry_is_skipped(self):
        m = Hypercube(2, CostModel.unit())
        inj = FaultInjector(FaultPlan([BitFlip(0.0, pid=1)]))
        m.attach_faults(inj)
        inj.poll(strict=False)  # no PVar was ever created on this machine
        assert inj.stats.bit_flips == 0
        assert inj.stats.sdc_skipped == 1

    def test_bit_flip_is_copy_on_corrupt(self):
        """Data captured before the flip stays clean; future reads see it."""
        m = Hypercube(2, CostModel.unit())
        inj = FaultInjector(FaultPlan([
            BitFlip(10.0, pid=1, slot=0, bit=7, target=0)
        ]))
        m.attach_faults(inj)
        pv = PVar(m, np.ones((m.p, 4)))
        captured = pv.data
        _advance(m, 15.0)
        inj.poll(strict=False)
        assert inj.stats.bit_flips == 1
        assert np.array_equal(captured, np.ones((m.p, 4)))  # old readers clean
        assert not np.array_equal(pv.data, captured)        # future reads hit

    def test_bit_flip_targets_most_recent_pvar_first(self):
        m = Hypercube(2, CostModel.unit())
        inj = FaultInjector(FaultPlan([
            BitFlip(10.0, pid=0, slot=0, bit=0, target=0)
        ]))
        m.attach_faults(inj)
        old = PVar(m, np.zeros((m.p, 2)))
        new = PVar(m, np.zeros((m.p, 2)))
        _advance(m, 15.0)
        inj.poll(strict=False)
        assert np.array_equal(old.data, np.zeros((m.p, 2)))
        assert not np.array_equal(new.data, np.zeros((m.p, 2)))

    def test_strict_poll_still_raises_after_sdc_events(self):
        m = Hypercube(2, CostModel.unit())
        inj = FaultInjector(FaultPlan([NodeKill(0.0, pid=1)]))
        m.attach_faults(inj)
        with pytest.raises(NodeKilledError):
            m.charge_comm_round(1.0, dim=0)
        assert issubclass(CorruptionError, FaultError)


# ---------------------------------------------------------------------------
# bare-machine (no ABFT) delivery: corruption is silent
# ---------------------------------------------------------------------------


class TestSilentDelivery:
    def test_link_corrupt_silently_corrupts_an_exchange(self):
        m = Hypercube(2, CostModel.unit())
        inj = FaultInjector(FaultPlan([
            LinkCorrupt(0.0, dim=1, pid=2, slot=0, bit=3)
        ]))
        m.attach_faults(inj)
        pv = PVar(m, np.arange(4 * m.p, dtype=np.float64).reshape(m.p, 4))
        clean = pv.data[m.neighbor_index(1)] if hasattr(m, "neighbor_index") \
            else None
        out = m.exchange(pv, dim=1)
        assert inj.stats.link_corruptions == 1
        # Exactly one byte of the received image differs from a clean swap.
        want = pv.data[[2, 3, 0, 1]]  # dim-1 neighbours on p=4
        diff = (out.data != want).sum()
        assert diff == 1
        del clean

    def test_corruption_stays_armed_until_its_dimension(self):
        m = Hypercube(2, CostModel.unit())
        inj = FaultInjector(FaultPlan([
            LinkCorrupt(0.0, dim=1, pid=0, slot=0, bit=0)
        ]))
        m.attach_faults(inj)
        pv = PVar(m, np.zeros((m.p, 3)))
        out0 = m.exchange(pv, dim=0)  # wrong dimension: untouched
        assert np.array_equal(out0.data, np.zeros((m.p, 3)))
        assert inj.stats.link_corruptions == 0
        out1 = m.exchange(pv, dim=1)
        assert inj.stats.link_corruptions == 1
        assert not np.array_equal(out1.data, np.zeros((m.p, 3)))

    def test_stored_flip_propagates_into_results_without_abft(self):
        """The failure mode ABFT removes: a flipped matrix element changes
        the product and nobody notices."""
        rng = np.random.default_rng(0)
        M = rng.integers(-3, 4, size=(8, 8)).astype(np.float64)
        x = rng.integers(-3, 4, size=8).astype(np.float64)

        def run(plan):
            s = Session(3, "unit", faults=plan)
            from repro.algorithms import matvec

            dM = s.matrix(M)
            # Flip a high mantissa bit of dM's storage before the multiply.
            if plan is not None:
                s.machine.faults.poll(strict=False)
            return matvec.matvec(dM, s.row_vector(x, dM)).y.to_numpy()

        clean = run(None)
        flip = FaultPlan([BitFlip(0.0, pid=0, slot=6, bit=6, target=0)])
        corrupted = run(flip)
        assert not np.array_equal(corrupted, clean)


# ---------------------------------------------------------------------------
# degraded-mode translation of SDC events
# ---------------------------------------------------------------------------


class TestSdcTranslation:
    def test_bit_flip_renames_into_subcube_coordinates(self):
        m = Hypercube(3, CostModel.unit())
        inj = FaultInjector(FaultPlan([
            BitFlip(100.0, pid=6, slot=1, bit=1, target=0),
            BitFlip(100.0, pid=1, slot=1, bit=1, target=0),   # dropped
            LinkCorrupt(100.0, dim=0, pid=6, slot=0, bit=0),  # dim collapsed
            LinkCorrupt(100.0, dim=1, pid=2, slot=0, bit=0),
        ]))
        m.attach_faults(inj)
        # Subcube keeping dims (1, 2) with bit 0 fixed to 0: pids {0,2,4,6}.
        inj.translate(free_dims=[1, 2], base=0)
        kinds = [(type(ev).__name__, getattr(ev, "pid", None),
                  getattr(ev, "dim", None)) for ev in inj._pending]
        assert ("BitFlip", 3, None) in kinds        # pid 6 -> (1,1) -> 3
        assert len([k for k in kinds if k[0] == "BitFlip"]) == 1
        assert ("LinkCorrupt", 1, 0) in kinds       # pid 2 -> 1, dim 1 -> 0
        assert len(kinds) == 2
