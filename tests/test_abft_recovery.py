"""End-to-end SDC recovery: corrupted runs must reproduce fault-free bits.

The acceptance contract of the ABFT layer: for seeded single bit flips the
checksum panels correct in place and the final result is
``np.array_equal`` to the fault-free baseline; simultaneous multi-flips in
one block defeat single-error correction, escalate to
:class:`~repro.errors.CorruptionError` and recover via checkpoint replay
(:func:`repro.faults.run_resilient`) — again bit-identical.  Workloads use
integer-valued data so every reduction is exact.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Session
from repro.check.oracle import _recovery_workloads, run_sdc_case
from repro.faults import CheckpointStore, FaultPlan, run_resilient
from repro.faults.plan import BitFlip, LinkCorrupt


SEEDS = (0, 1, 2, 3, 4)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("which", [0, 1, 2], ids=["gaussian", "simplex",
                                                  "matvec"])
def test_single_flip_corrected_bit_exactly(which, seed):
    name, make_workload, reference = _recovery_workloads(seed)[which]
    result = run_sdc_case(name, make_workload, reference, seed)
    assert result.passed, f"{result.case}: {result.detail} ({result.config})"
    assert result.config["detected"] >= 1
    assert result.config["corrected"] >= 1
    assert result.config["recomputed"] == 0, "a single flip must not replay"


@pytest.mark.parametrize("seed", SEEDS)
def test_multi_flip_escalates_to_checkpoint_replay(seed):
    name, make_workload, reference = _recovery_workloads(seed)[0]
    result = run_sdc_case(name, make_workload, reference, seed, flips=2)
    assert result.passed, f"{result.case}: {result.detail} ({result.config})"
    assert result.config["recovered"] is True
    assert result.config["recoveries"] >= 1
    assert result.config["recomputed"] >= 1


def test_multi_flip_report_shape():
    """The raw run_resilient report for an escalated corruption."""
    A, b = np.eye(10) * 10 + 1, np.arange(10, dtype=np.float64)
    from repro.faults.recovery import gaussian_workload

    clean = Session(4, "cm2")
    baseline = gaussian_workload(A, b)(clean, CheckpointStore(clean))
    t = 0.4 * clean.time
    plan = FaultPlan([
        BitFlip(t, pid=1, slot=3, bit=2, target=0),
        BitFlip(t, pid=1, slot=11, bit=2, target=0),
    ])
    s = Session(4, "cm2", faults=plan, abft=True)
    report = run_resilient(s, gaussian_workload(A, b))
    assert report.error is None
    assert report.recovered and report.recoveries == 1
    assert report.final_p == s.machine.p, "SDC replay keeps the full cube"
    assert s.machine.counters.abft_recomputed == 1
    assert report.stats.recoveries == 1
    np.testing.assert_array_equal(np.asarray(report.result), baseline)


def test_uncorrectable_without_checkpoint_budget_reports_the_error():
    """max_recoveries=0 turns escalation into a clean failure report."""
    A, b = np.eye(8) * 8 + 1, np.arange(8, dtype=np.float64)
    from repro.faults.recovery import gaussian_workload

    clean = Session(3, "cm2")
    gaussian_workload(A, b)(clean, CheckpointStore(clean))
    t = 0.4 * clean.time
    plan = FaultPlan([
        BitFlip(t, pid=1, slot=3, bit=2, target=0),
        BitFlip(t, pid=1, slot=11, bit=2, target=0),
    ])
    s = Session(3, "cm2", faults=plan, abft=True)
    report = run_resilient(s, gaussian_workload(A, b), max_recoveries=0)
    assert not report.recovered
    assert report.error is not None
    assert "corrupted" in report.error


@pytest.mark.parametrize("seed", SEEDS[:3])
def test_wire_corruption_retransmits_and_matches(seed):
    """In-flight flips under ABFT cost a retransmission, never the result."""
    from repro.faults.recovery import matvec_workload

    rng = np.random.default_rng(seed)
    M = rng.integers(-3, 4, size=(12, 12)).astype(np.float64)
    x = rng.integers(-3, 4, size=12).astype(np.float64)
    clean = Session(4, "cm2")
    baseline = matvec_workload(M, x, reps=3)(clean, CheckpointStore(clean))
    plan = FaultPlan([
        LinkCorrupt(0.3 * clean.time, dim=seed % 4, pid=1, slot=2, bit=4),
        LinkCorrupt(0.6 * clean.time, dim=(seed + 1) % 4, pid=3, slot=0,
                    bit=1),
    ])
    s = Session(4, "cm2", faults=plan, abft=True)
    report = run_resilient(s, matvec_workload(M, x, reps=3))
    assert report.error is None
    assert s.faults.stats.link_corruptions == 2
    assert s.abft.stats.wire_retransmits == 2
    np.testing.assert_array_equal(np.asarray(report.result), baseline)


def test_mixed_flip_and_wire_corruption_recovers(seed=7):
    """Stored and in-flight corruption in one run, both survived."""
    name, make_workload, reference = _recovery_workloads(seed)[0]
    clean = Session(4, "cm2")
    baseline = make_workload()(clean, CheckpointStore(clean))
    plan = FaultPlan([
        BitFlip(0.3 * clean.time, pid=2, slot=5, bit=3, target=0),
        LinkCorrupt(0.5 * clean.time, dim=1, pid=0, slot=1, bit=2),
    ])
    s = Session(4, "cm2", faults=plan, abft=True)
    report = run_resilient(s, make_workload())
    assert report.error is None
    assert s.faults.stats.bit_flips == 1
    assert s.faults.stats.link_corruptions == 1
    np.testing.assert_array_equal(np.asarray(report.result), baseline)
