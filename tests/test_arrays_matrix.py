"""Unit tests for DistributedMatrix (S11)."""

import numpy as np
import pytest

from repro.core import DistributedMatrix, DistributedVector
from repro.embeddings import MatrixEmbedding, RowAlignedEmbedding
from repro.machine import CostModel, Hypercube


@pytest.fixture
def m():
    return Hypercube(4, CostModel.unit())


@pytest.fixture
def A_host(rng):
    return rng.standard_normal((11, 9))


@pytest.fixture
def A(m, A_host):
    return DistributedMatrix.from_numpy(m, A_host)


class TestConstruction:
    def test_round_trip(self, A, A_host):
        assert np.allclose(A.to_numpy(), A_host)

    def test_shape(self, A):
        assert A.shape == (11, 9)

    def test_cyclic_layout(self, m, A_host):
        A = DistributedMatrix.from_numpy(m, A_host, layout="cyclic")
        assert np.allclose(A.to_numpy(), A_host)

    def test_1d_rejected(self, m):
        with pytest.raises(ValueError, match="2-D"):
            DistributedMatrix.from_numpy(m, np.zeros(5))

    def test_explicit_embedding(self, m, A_host):
        emb = MatrixEmbedding(m, 11, 9, row_dims=(0, 1, 2), col_dims=(3,))
        A = DistributedMatrix.from_numpy(m, A_host, embedding=emb)
        assert np.allclose(A.to_numpy(), A_host)

    def test_mismatched_pvar_rejected(self, m):
        emb = MatrixEmbedding.default(m, 4, 4)
        with pytest.raises(ValueError, match="local shape"):
            DistributedMatrix(m.zeros((9, 9)), emb)


class TestElementwise:
    def test_matrix_matrix(self, m, rng):
        a_h = rng.standard_normal((7, 5))
        b_h = rng.standard_normal((7, 5))
        emb = MatrixEmbedding.default(m, 7, 5)
        a = DistributedMatrix.from_numpy(m, a_h, embedding=emb)
        b = DistributedMatrix.from_numpy(m, b_h, embedding=emb)
        assert np.allclose((a + b).to_numpy(), a_h + b_h)
        assert np.allclose((a * b).to_numpy(), a_h * b_h)
        assert np.allclose((a - b).to_numpy(), a_h - b_h)

    def test_scalar(self, A, A_host):
        assert np.allclose((A * 3).to_numpy(), A_host * 3)
        assert np.allclose((1 + A).to_numpy(), A_host + 1)
        assert np.allclose((-A).to_numpy(), -A_host)
        assert np.allclose(abs(A).to_numpy(), np.abs(A_host))

    def test_comparison_and_where(self, A, A_host):
        mask = A > 0
        out = mask.where(A, 0.0)
        assert np.allclose(out.to_numpy(), np.where(A_host > 0, A_host, 0))

    def test_division_never_pollutes_valid_slots(self, m, A_host):
        """0/0 in padding must not corrupt later reductions of valid data."""
        A = DistributedMatrix.from_numpy(m, np.abs(A_host) + 1.0)
        with np.errstate(invalid="ignore", divide="ignore"):
            B = A / A
        sums = B.reduce(axis=1, op="sum").to_numpy()
        assert np.allclose(sums, 9.0)

    def test_different_embeddings_rejected(self, m, A_host):
        a = DistributedMatrix.from_numpy(m, A_host, layout="block")
        b = DistributedMatrix.from_numpy(m, A_host, layout="cyclic")
        with pytest.raises(ValueError, match="differently embedded"):
            a + b

    def test_as_embedding_redistributes(self, m, A_host):
        a = DistributedMatrix.from_numpy(m, A_host, layout="block")
        emb2 = MatrixEmbedding.default(m, 11, 9, layout="cyclic")
        b = a.as_embedding(emb2)
        assert np.allclose(b.to_numpy(), A_host)
        a + 0.0  # original still usable


class TestPrimitiveMethods:
    def test_extract(self, A, A_host):
        assert np.allclose(A.extract(0, 4).to_numpy(), A_host[4])
        assert np.allclose(A.extract(1, 2).to_numpy(), A_host[:, 2])

    def test_insert(self, m, A, A_host, rng):
        w = rng.standard_normal(9)
        wv = DistributedVector(
            RowAlignedEmbedding(A.embedding, None).scatter(w),
            RowAlignedEmbedding(A.embedding, None),
        )
        out = A.insert(0, 3, wv)
        expect = A_host.copy()
        expect[3] = w
        assert np.allclose(out.to_numpy(), expect)

    def test_reduce(self, A, A_host):
        assert np.allclose(A.reduce(1, "sum").to_numpy(), A_host.sum(1))
        assert np.allclose(A.reduce(0, "max").to_numpy(), A_host.max(0))

    def test_argreduce(self, A, A_host):
        vals, idxs = A.argreduce(1, "max")
        assert np.array_equal(idxs.to_numpy(), A_host.argmax(1))
        vals, idxs = A.argreduce(0, "min")
        assert np.array_equal(idxs.to_numpy(), A_host.argmin(0))

    def test_argreduce_with_valid(self, A, A_host):
        valid = A > 0
        _, idxs = A.argreduce(1, "min", valid=valid)
        got = idxs.to_numpy()
        for i in range(11):
            cands = np.nonzero(A_host[i] > 0)[0]
            expect = cands[A_host[i][cands].argmin()] if len(cands) else -1
            assert got[i] == expect

    def test_argreduce_valid_embedding_check(self, m, A, A_host):
        other = DistributedMatrix.from_numpy(m, A_host > 0, layout="cyclic")
        with pytest.raises(ValueError, match="embedding"):
            A.argreduce(1, "max", valid=other)

    def test_distribute_static(self, m, A, rng):
        w = rng.standard_normal(9)
        wv = DistributedVector(
            RowAlignedEmbedding(A.embedding, None).scatter(w),
            RowAlignedEmbedding(A.embedding, None),
        )
        out = DistributedMatrix.distribute(wv, A, axis=0)
        assert np.allclose(out.to_numpy(), np.tile(w, (11, 1)))


class TestDerivedOps:
    def test_transpose(self, A, A_host):
        assert np.allclose(A.T.to_numpy(), A_host.T)
        assert A.T.shape == (9, 11)

    def test_matvec(self, m, A, A_host, rng):
        x_h = rng.standard_normal(9)
        x = DistributedVector(
            RowAlignedEmbedding(A.embedding, None).scatter(x_h),
            RowAlignedEmbedding(A.embedding, None),
        )
        assert np.allclose(A.matvec(x).to_numpy(), A_host @ x_h)

    def test_matvec_from_vector_order(self, m, A, A_host, rng):
        x_h = rng.standard_normal(9)
        x = DistributedVector.from_numpy(m, x_h)
        assert np.allclose(A.matvec(x).to_numpy(), A_host @ x_h)

    def test_vecmat(self, m, A, A_host, rng):
        x_h = rng.standard_normal(11)
        x = DistributedVector.from_numpy(m, x_h)
        assert np.allclose(A.vecmat(x).to_numpy(), x_h @ A_host)

    def test_matvec_dimension_check(self, m, A):
        x = DistributedVector.from_numpy(m, np.zeros(11))
        with pytest.raises(ValueError, match="matvec"):
            A.matvec(x)
        y = DistributedVector.from_numpy(m, np.zeros(9))
        with pytest.raises(ValueError, match="vecmat"):
            A.vecmat(y)

    def test_sub_outer(self, A, A_host):
        u = A.extract(1, 0)
        w = A.extract(0, 0)
        out = A.sub_outer(u, w, alpha=2.0)
        assert np.allclose(
            out.to_numpy(), A_host - 2.0 * np.outer(A_host[:, 0], A_host[0])
        )

    def test_get_global(self, A, A_host):
        assert A.get_global(3, 7) == A_host[3, 7]
        with pytest.raises(IndexError):
            A.get_global(11, 0)

    def test_matvec_identity(self, m):
        I_h = np.eye(8)
        I = DistributedMatrix.from_numpy(m, I_h)
        x_h = np.arange(8.0)
        x = DistributedVector.from_numpy(m, x_h)
        assert np.allclose(I.matvec(x).to_numpy(), x_h)

    def test_composition_normal_equations(self, m, rng):
        """y = A^T (A x) via transpose + two matvecs."""
        A_h = rng.standard_normal((12, 6))
        x_h = rng.standard_normal(6)
        A = DistributedMatrix.from_numpy(m, A_h)
        x = DistributedVector.from_numpy(m, x_h)
        Ax = A.matvec(x)
        At = A.T
        y = At.matvec(Ax.as_embedding(RowAlignedEmbedding(At.embedding, None)))
        assert np.allclose(y.to_numpy(), A_h.T @ (A_h @ x_h))
