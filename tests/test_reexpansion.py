"""Heal-driven re-expansion (``Session.promote`` + the expansion ledger).

The contract: after a degrade, healed hardware lets the session grow back
onto a strictly larger healthy cube at the *next committed checkpoint*,
and the re-expanded run still reproduces the fault-free result
bit-for-bit.  Promotion is gated three ways — a heal must actually have
landed (greedy degrades alone never trigger it), the health tracker must
hold no suspects (flapping protection), and the root must offer a
strictly larger healthy subcube.
"""

import numpy as np
import pytest

from repro import Session
from repro.errors import FaultError
from repro.faults import (
    CheckpointPolicy,
    CheckpointStore,
    FaultPlan,
    NodeHeal,
    NodeKill,
    gaussian_workload,
    run_resilient,
)
from repro.faults.plan import BitFlip

N_DIMS = 4
SIZE = 16


def _gaussian_inputs(seed=0):
    rng = np.random.default_rng(seed)
    A = rng.integers(-4, 5, size=(SIZE, SIZE)).astype(np.float64)
    A += SIZE * np.eye(SIZE)
    b = rng.integers(-4, 5, size=SIZE).astype(np.float64)
    return A, b


def _make():
    A, b = _gaussian_inputs()
    return gaussian_workload(A, b, checkpoint_every=2)


def _baseline():
    s = Session(N_DIMS, "unit")
    result = _make()(s, CheckpointStore(s))
    return np.asarray(result), s.time


class TestPromotion:
    @pytest.mark.parametrize("strategy", ["host", "diskless"])
    def test_kill_heal_promote_matches_baseline(self, strategy):
        """Degrade on the kill, re-expand to the full cube on the heal —
        and the final answer is the fault-free one."""
        baseline, t0 = _baseline()
        plan = FaultPlan([
            NodeKill(0.3 * t0, pid=3),
            NodeHeal(0.6 * t0, pid=3),
        ])
        s = Session(N_DIMS, "unit", faults=plan)
        report = run_resilient(s, _make(), policy=strategy)
        assert report.recovered, report.error
        assert report.recoveries == 1
        assert report.promotions == 1
        assert report.final_p == 2 ** N_DIMS  # back on the full cube
        assert report.stats.node_heals == 1
        assert report.stats.expansions == 1
        np.testing.assert_array_equal(np.asarray(report.result), baseline)

    def test_mixed_failure_sequence(self):
        """Satellite: corruption replay, then a node-kill degrade, then a
        heal-driven re-expansion — all in one run, still bit-identical."""
        baseline, t0 = _baseline()
        plan = FaultPlan([
            # Two flips in one block defeat single-error correction and
            # escalate to CorruptionError: a same-machine checkpoint replay.
            BitFlip(0.25 * t0, pid=1, slot=3, bit=2, target=0),
            BitFlip(0.25 * t0, pid=1, slot=11, bit=2, target=0),
            NodeKill(0.5 * t0, pid=3),
            NodeHeal(0.75 * t0, pid=3),
        ])
        s = Session(N_DIMS, "unit", faults=plan, abft=True)
        report = run_resilient(s, _make(), max_recoveries=3)
        assert report.recovered, report.error
        assert report.recoveries == 2  # one replay + one degrade
        assert s.machine.counters.abft_recomputed == 1
        assert report.promotions == 1
        assert report.final_p == 2 ** N_DIMS
        assert report.stats.expansions == 1
        np.testing.assert_array_equal(np.asarray(report.result), baseline)

    def test_no_promotion_without_heal(self):
        """A plain kill degrades and *stays* degraded: re-expansion is
        heal-driven, never a response to greedy subcube choices."""
        baseline, t0 = _baseline()
        plan = FaultPlan([NodeKill(0.3 * t0, pid=3)])
        s = Session(N_DIMS, "unit", faults=plan)
        report = run_resilient(s, _make())
        assert report.recovered, report.error
        assert report.promotions == 0
        assert report.final_p == 2 ** (N_DIMS - 1)
        np.testing.assert_array_equal(np.asarray(report.result), baseline)

    def test_policy_can_disable_promotion(self):
        """``promote=False`` runs the heal plan degrade-only."""
        baseline, t0 = _baseline()
        plan = FaultPlan([
            NodeKill(0.3 * t0, pid=3),
            NodeHeal(0.6 * t0, pid=3),
        ])
        s = Session(N_DIMS, "unit", faults=plan)
        policy = CheckpointPolicy(promote=False)
        report = run_resilient(s, _make(), policy=policy)
        assert report.recovered, report.error
        assert report.promotions == 0
        assert report.final_p == 2 ** (N_DIMS - 1)
        np.testing.assert_array_equal(np.asarray(report.result), baseline)


class TestGates:
    def test_promote_requires_degraded_session(self):
        s = Session(3, "unit")
        assert not s.promotion_ready()
        with pytest.raises(FaultError, match="degraded"):
            s.promote()

    def test_health_tracker_suspects_block_promotion(self):
        """Flapping protection: a component under suspicion pauses
        re-expansion until its health score decays back to clean."""
        s = Session(3, "unit", faults=FaultPlan(()))
        s.machine.kill_node(5)
        s.degrade()
        assert s.machine.p == 4
        assert not s.promotion_ready()  # no heal has landed

        # File a due repair for the dead root node...
        s._expansion.heals.append(("node", 0.0, None, 5))
        # ...but keep one component under suspicion.
        injector = s.faults
        injector.health._node[0] = 2.0
        assert not s.promotion_ready()
        assert s._expansion.heal_applied  # the heal itself did land

        injector.health.clear()
        assert s.promotion_ready()
        s.promote()
        assert s.machine.p == 8
        assert injector.stats.expansions == 1

    def test_promotion_consumes_the_heal(self):
        """Each promote resets the heal flag: growing further requires
        further repairs, not a leftover ready bit."""
        s = Session(3, "unit", faults=FaultPlan(()))
        s.machine.kill_node(5)
        s.degrade()
        s.machine.kill_node(1)  # second failure on the subcube
        s.degrade()
        assert s.machine.p == 2
        s._expansion.heals.append(("node", 0.0, None, 5))
        assert s.promotion_ready()
        s.promote()
        assert not s._expansion.heal_applied
        assert not s.promotion_ready()  # root node 1's twin is still dead
