"""Tests for application 3: the two-phase simplex method (S12)."""

import numpy as np
import pytest

from repro import Session
from repro import workloads as W
from repro.algorithms import serial, simplex

scipy = pytest.importorskip("scipy")
from scipy.optimize import linprog  # noqa: E402


def scipy_optimum(lp):
    res = linprog(-lp.c, A_ub=lp.A, b_ub=lp.b, bounds=(0, None), method="highs")
    return res


@pytest.fixture
def m():
    return Session(4, "unit").machine


class TestPhase2Only:
    @pytest.mark.parametrize("mi,ni,seed", [(4, 3, 0), (8, 6, 1), (6, 10, 2), (12, 4, 3)])
    def test_matches_scipy(self, m, mi, ni, seed):
        lp = W.feasible_lp(mi, ni, seed=seed)
        res = simplex.solve(m, lp.A, lp.b, lp.c)
        ref = scipy_optimum(lp)
        assert res.status == "optimal"
        assert np.isclose(res.objective, -ref.fun, atol=1e-7)

    def test_matches_serial_reference_exactly(self, m):
        """Same pivot rules => identical iterates and iteration count."""
        lp = W.feasible_lp(7, 5, seed=4)
        res = simplex.solve(m, lp.A, lp.b, lp.c)
        st, obj, x, its, _ = serial.simplex_solve(lp.A, lp.b, lp.c)
        assert res.status == st == "optimal"
        assert res.iterations == its
        assert np.allclose(res.x, x, atol=1e-9)

    def test_solution_is_feasible(self, m):
        lp = W.feasible_lp(9, 7, seed=5)
        res = simplex.solve(m, lp.A, lp.b, lp.c)
        assert np.all(res.x >= -1e-9)
        assert np.all(lp.A @ res.x <= lp.b + 1e-7)
        assert np.isclose(lp.c @ res.x, res.objective, atol=1e-7)

    def test_zero_objective_optimal_immediately(self, m):
        lp = W.feasible_lp(4, 3, seed=6)
        res = simplex.solve(m, lp.A, lp.b, np.zeros(3))
        assert res.status == "optimal"
        assert res.iterations == 0
        assert res.objective == 0.0

    def test_bland_rule_reaches_same_optimum(self, m):
        lp = W.feasible_lp(6, 5, seed=7)
        d = simplex.solve(m, lp.A, lp.b, lp.c, rule="dantzig")
        b = simplex.solve(m, lp.A, lp.b, lp.c, rule="bland")
        assert np.isclose(d.objective, b.objective, atol=1e-8)

    def test_degenerate_lp_terminates(self, m):
        """Multiple identical constraints create degenerate vertices."""
        A = np.array([[1.0, 1.0], [1.0, 1.0], [2.0, 1.0]])
        b = np.array([1.0, 1.0, 1.5])
        c = np.array([1.0, 1.0])
        res = simplex.solve(m, A, b, c, rule="bland")
        assert res.status == "optimal"
        assert np.isclose(res.objective, 1.0, atol=1e-8)


class TestPhase1:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_negative_rhs_matches_scipy(self, m, seed):
        lp = W.two_phase_lp(6, 4, seed=seed)
        assert np.any(lp.b < 0), "workload must exercise phase I"
        res = simplex.solve(m, lp.A, lp.b, lp.c)
        ref = scipy_optimum(lp)
        assert res.status == "optimal"
        assert np.isclose(res.objective, -ref.fun, atol=1e-6)
        assert res.phase1_iterations > 0

    def test_phase1_solution_feasible(self, m):
        lp = W.two_phase_lp(8, 5, seed=4)
        res = simplex.solve(m, lp.A, lp.b, lp.c)
        assert np.all(lp.A @ res.x <= lp.b + 1e-7)
        assert np.all(res.x >= -1e-9)

    def test_infeasible_detected(self, m):
        lp = W.infeasible_lp()
        res = simplex.solve(m, lp.A, lp.b, lp.c)
        assert res.status == "infeasible"
        assert np.isnan(res.objective)

    def test_equality_like_rows(self, m):
        """x1 >= 1 (as -x1 <= -1) together with x1 <= 1 pins x1 = 1."""
        A = np.array([[-1.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        b = np.array([-1.0, 1.0, 2.0])
        c = np.array([1.0, 1.0])
        res = simplex.solve(m, A, b, c)
        assert res.status == "optimal"
        assert np.isclose(res.x[0], 1.0, atol=1e-8)
        assert np.isclose(res.objective, 3.0, atol=1e-8)


class TestStatuses:
    def test_unbounded(self, m):
        lp = W.unbounded_lp()
        res = simplex.solve(m, lp.A, lp.b, lp.c)
        assert res.status == "unbounded"
        assert res.objective == np.inf

    def test_iteration_limit(self, m):
        lp = W.feasible_lp(6, 5, seed=8)
        res = simplex.solve(m, lp.A, lp.b, lp.c, max_iters=1)
        assert res.status in ("iteration_limit", "optimal")

    def test_bad_rule(self, m):
        lp = W.feasible_lp(3, 2)
        with pytest.raises(ValueError, match="rule"):
            simplex.solve(m, lp.A, lp.b, lp.c, rule="steepest")

    def test_shape_mismatch(self, m):
        with pytest.raises(ValueError, match="shape"):
            simplex.solve(m, np.zeros((2, 2)), np.zeros(3), np.zeros(2))


class TestCostStructure:
    def test_cost_and_pivots_recorded(self, m):
        lp = W.feasible_lp(6, 5, seed=9)
        res = simplex.solve(m, lp.A, lp.b, lp.c)
        assert res.cost.time > 0
        assert len(res.pivots) == res.iterations
        phases = m.counters.phase_times
        for name in ("simplex", "entering", "ratio-test", "pivot"):
            assert name in phases

    def test_basis_tracks_solution(self, m):
        lp = W.feasible_lp(5, 4, seed=10)
        res = simplex.solve(m, lp.A, lp.b, lp.c)
        assert len(res.basis) == 5
        # basic original variables must carry the x values
        for r, col in enumerate(res.basis):
            if col < 4:
                assert res.x[col] >= -1e-9


class TestSerialReference:
    def test_serial_requires_nonneg_b(self):
        with pytest.raises(ValueError, match="b >= 0"):
            serial.simplex_solve(np.eye(2), np.array([-1.0, 1.0]), np.ones(2))

    def test_serial_unbounded(self):
        lp = W.unbounded_lp()
        st, obj, *_ = serial.simplex_solve(lp.A, lp.b, lp.c)
        assert st == "unbounded" and obj == np.inf

    def test_serial_ops_positive(self):
        lp = W.feasible_lp(5, 4, seed=11)
        *_, ops = serial.simplex_solve(lp.A, lp.b, lp.c)
        assert ops > 0
