"""Unit tests for the workload generators."""

import numpy as np
import pytest

from repro import workloads as W


class TestDense:
    def test_matrix_shape_and_determinism(self):
        A = W.dense_matrix(5, 7, seed=3)
        B = W.dense_matrix(5, 7, seed=3)
        assert A.shape == (5, 7)
        assert np.array_equal(A, B)
        assert not np.array_equal(A, W.dense_matrix(5, 7, seed=4))

    def test_vector(self):
        v = W.dense_vector(9, seed=1, scale=2.0)
        assert v.shape == (9,)
        assert np.array_equal(v, W.dense_vector(9, seed=1, scale=2.0))


class TestLinearSystems:
    def test_diagonally_dominant_is_dominant(self):
        A, b, x = W.diagonally_dominant_system(12, seed=0)
        off = np.abs(A).sum(axis=1) - np.abs(np.diag(A))
        assert np.all(np.abs(np.diag(A)) > off)
        assert np.allclose(A @ x, b)

    def test_random_system_consistent(self):
        A, b, x = W.random_system(8, seed=5)
        assert np.allclose(A @ x, b)
        assert np.allclose(np.linalg.solve(A, b), x)


class TestLPs:
    def test_feasible_lp_is_feasible_at_zero(self):
        lp = W.feasible_lp(6, 4, seed=0)
        assert np.all(lp.b >= 0)
        assert np.all(lp.A >= 0)
        assert np.all(lp.c > 0)

    def test_feasible_lp_bounded(self):
        scipy = pytest.importorskip("scipy")
        from scipy.optimize import linprog
        lp = W.feasible_lp(6, 4, seed=1)
        res = linprog(-lp.c, A_ub=lp.A, b_ub=lp.b, bounds=(0, None),
                      method="highs")
        assert res.status == 0  # optimal, not unbounded

    def test_two_phase_lp_has_negative_rhs_and_is_feasible(self):
        scipy = pytest.importorskip("scipy")
        from scipy.optimize import linprog
        found_negative = False
        for seed in range(6):
            lp = W.two_phase_lp(6, 4, seed=seed)
            res = linprog(-lp.c, A_ub=lp.A, b_ub=lp.b, bounds=(0, None),
                          method="highs")
            assert res.status == 0, f"seed {seed} not solvable"
            found_negative |= bool(np.any(lp.b < 0))
        assert found_negative

    def test_unbounded_lp(self):
        scipy = pytest.importorskip("scipy")
        from scipy.optimize import linprog
        lp = W.unbounded_lp()
        res = linprog(-lp.c, A_ub=lp.A, b_ub=lp.b, bounds=(0, None),
                      method="highs")
        assert res.status == 3  # unbounded

    def test_infeasible_lp(self):
        scipy = pytest.importorskip("scipy")
        from scipy.optimize import linprog
        lp = W.infeasible_lp()
        res = linprog(-lp.c, A_ub=lp.A, b_ub=lp.b, bounds=(0, None),
                      method="highs")
        assert res.status == 2  # infeasible

    def test_instances_are_deterministic(self):
        a = W.feasible_lp(4, 3, seed=7)
        b = W.feasible_lp(4, 3, seed=7)
        assert np.array_equal(a.A, b.A)
        assert np.array_equal(a.b, b.b)
        assert np.array_equal(a.c, b.c)
