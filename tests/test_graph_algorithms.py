"""Graph algorithms on the sparse primitives vs. the serial references.

BFS / SSSP / connected components are iterated ``spmv`` calls over the
``or_and`` and ``min_plus`` semirings; every value here is an exact
integer, so the distributed runs must match the NumPy references
bit-for-bit — across machine sizes, graph shapes (including disconnected
ones), and with the sanitizer shadow-checking every charged operation.
The scipy/NetworkX cross-check lives in the differential oracle
(``repro check``); this module is the NumPy-only tier-1 pin.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Session
from repro.algorithms import graph
from repro.errors import ConfigError
from repro.workloads import random_graph

SEEDS = [0, 1, 2]


@pytest.fixture(params=[0, 2, 4], ids=lambda n: f"n{n}")
def session(request):
    return Session(request.param, sanitize=True)


@pytest.mark.parametrize("seed", SEEDS)
def test_bfs_matches_reference(session, seed):
    g = random_graph(20, 2.5, seed=seed)
    res = graph.bfs(session, g, 0)
    assert np.array_equal(res.values, graph.bfs_reference(g, 0))
    assert res.values.dtype == np.int64
    assert res.iterations >= 1
    assert res.cost.time > 0


@pytest.mark.parametrize("seed", SEEDS)
def test_sssp_matches_reference(session, seed):
    g = random_graph(18, 3.0, seed=seed)
    res = graph.sssp(session, g, 0)
    assert np.array_equal(res.values, graph.sssp_reference(g, 0))


@pytest.mark.parametrize("seed", SEEDS)
def test_cc_matches_reference(session, seed):
    g = random_graph(16, 1.5, seed=seed)  # sparse: several components likely
    res = graph.connected_components(session, g)
    want = graph.cc_reference(g)
    assert np.array_equal(res.values, want)
    # labels are component-minimal vertex ids: every label names itself
    assert np.array_equal(want[want], want)


def test_bfs_levels_are_sound(session):
    """Structural invariants independent of the reference implementation."""
    g = random_graph(24, 2.0, seed=5)
    levels = graph.bfs(session, g, 0).values
    assert levels[0] == 0
    reached = levels >= 0
    # every non-source reached vertex has a neighbour one level shallower
    for v in np.flatnonzero(reached):
        if v == 0:
            continue
        nbrs = g.cols[g.rows == v]
        assert (levels[nbrs] == levels[v] - 1).any()
    # unreachable vertices stay -1 in sssp too, on the same graph
    dist = graph.sssp(session, g, 0).values
    assert np.array_equal(dist >= 0, reached)


def test_sssp_distances_dominated_by_bfs_hops():
    """Hop-optimal paths bound weighted distances: dist <= maxw * hops."""
    session = Session(3, sanitize=True)
    g = random_graph(20, 3.0, seed=9, max_weight=4)
    hops = graph.bfs(session, g, 0).values
    dist = graph.sssp(session, g, 0).values
    sel = hops > 0
    assert (dist[sel] <= 4 * hops[sel]).all()
    assert (dist[sel] >= hops[sel]).all()  # weights are >= 1


def test_source_out_of_range():
    session = Session(2)
    g = random_graph(8, 2.0, seed=0)
    with pytest.raises(ConfigError, match="out of range"):
        graph.bfs(session, g, 8)
    with pytest.raises(ConfigError, match="out of range"):
        graph.sssp(session, g, -1)


def test_results_identical_across_machine_sizes():
    """The simulated p never leaks into the numerics, only the costs."""
    g = random_graph(22, 2.5, seed=3)
    runs = [
        graph.bfs(Session(n), g, 1).values for n in (0, 1, 3, 5)
    ]
    for other in runs[1:]:
        assert np.array_equal(runs[0], other)


def test_bfs_workload_restarts_cleanly():
    """The resilient-runner wrapper recomputes from scratch each call."""
    g = random_graph(12, 2.0, seed=4)
    run = graph.bfs_workload(g, 0)

    class _Store:
        restored = 0

        def restore(self):
            self.restored += 1

    store = _Store()
    session = Session(2)
    first = run(session, store)
    second = run(session, store)
    assert store.restored == 2
    assert np.array_equal(first, second)
    assert np.array_equal(first, graph.bfs_reference(g, 0))
