"""Tests for the tracing/observability layer (``repro.obs``).

The two load-bearing guarantees:

* **bit-identical costs** — simulated ticks and every ``CostSnapshot``
  field are exactly the same with tracing on, off, or absent;
* **phase fidelity** — per-phase span durations sum to the
  ``phase_times`` the counters report.
"""

import json

import numpy as np
import pytest

from repro import Session
from repro import workloads as W
from repro.algorithms import gaussian, simplex
from repro.algorithms.naive import NaiveVector
from repro.machine.hypercube import Hypercube
from repro.obs import (
    Tracer,
    chrome_trace_events,
    env_enabled,
    maybe_span,
    to_chrome_trace,
    to_jsonl,
    validate_chrome_trace,
    validate_chrome_trace_file,
)
from repro.obs.tracer import ENV_FLAG, NULL_CONTEXT


def run_gaussian(session, size=12, seed=0):
    A_host, b, _ = W.random_system(size, seed=seed)
    return gaussian.solve(session.matrix(A_host), b)


def run_simplex(session, m=5, n=4, seed=0):
    lp = W.feasible_lp(m, n, seed=seed)
    return simplex.solve(session.machine, lp.A, lp.b, lp.c)


def run_primitives(session, rows=12, cols=8, seed=0):
    """All four primitives once (the demo workload, compact)."""
    rng = np.random.default_rng(seed)
    A = session.matrix(rng.standard_normal((rows, cols)))
    with session.machine.phase("demo"):
        row = A.extract(axis=0, index=0)
        A2 = A.insert(axis=0, index=rows - 1, vector=row)
        row.distribute(A, axis=0)
        A2.reduce(axis=1, op="sum")
    return A


class TestNullDefault:
    def test_machine_has_no_tracer_by_default(self, monkeypatch):
        monkeypatch.delenv(ENV_FLAG, raising=False)
        assert Session(3).machine.tracer is None
        assert Hypercube(3).tracer is None

    def test_maybe_span_is_shared_noop_without_tracer(self):
        m = Hypercube(2)
        assert maybe_span(m, "x", "primitive") is NULL_CONTEXT
        assert maybe_span(m, "y", "collective") is NULL_CONTEXT

    def test_attach_and_detach(self):
        m = Hypercube(2)
        t = m.attach_tracer(Tracer())
        assert m.tracer is t
        assert t.machine is m
        m.attach_tracer(None)
        assert m.tracer is None

    def test_tracer_rejects_second_machine(self):
        t = Tracer()
        Hypercube(2).attach_tracer(t)
        with pytest.raises(ValueError):
            Hypercube(3).attach_tracer(t)


class TestEnvFlag:
    def test_default_off(self, monkeypatch):
        monkeypatch.delenv(ENV_FLAG, raising=False)
        assert not env_enabled()

    @pytest.mark.parametrize("value", ["1", "on", "true", "YES"])
    def test_truthy_values(self, monkeypatch, value):
        monkeypatch.setenv(ENV_FLAG, value)
        assert env_enabled()
        assert Session(2).tracer is not None

    @pytest.mark.parametrize("value", ["", "0", "off", "no"])
    def test_falsy_values(self, monkeypatch, value):
        monkeypatch.setenv(ENV_FLAG, value)
        assert not env_enabled()
        assert Session(2).tracer is None

    def test_constructor_overrides_env(self, monkeypatch):
        monkeypatch.setenv(ENV_FLAG, "1")
        assert Session(2, trace=False).tracer is None


class TestBitIdenticalCosts:
    """The hard invariant: tracing must never change a single charge."""

    @pytest.mark.parametrize("workload", [run_gaussian, run_simplex,
                                          run_primitives])
    def test_totals_identical_trace_on_and_off(self, workload):
        off = Session(4, trace=False)
        workload(off)
        on = Session(4, trace=True)
        workload(on)
        assert on.snapshot().as_dict() == off.snapshot().as_dict()
        assert on.machine.counters.phase_times == off.machine.counters.phase_times

    def test_gaussian_pinned_totals(self):
        """Regression pin: trace-on totals equal the untraced seed values."""
        off = Session(4, trace=False)
        run_gaussian(off, size=16, seed=3)
        expected = off.snapshot().as_dict()
        on = Session(4, trace=True)
        run_gaussian(on, size=16, seed=3)
        assert on.snapshot().as_dict() == expected


class TestSpanTree:
    def test_primitive_spans_cover_all_four(self):
        s = Session(4, trace=True)
        run_primitives(s)
        names = {sp.name for sp in s.tracer.find(category="primitive")}
        assert {"extract", "insert", "distribute", "reduce"} <= names

    def test_spans_nest_under_phase(self):
        s = Session(4, trace=True)
        run_primitives(s)
        demo = s.tracer.find(name="demo", category="phase")
        assert len(demo) == 1
        child_names = {c.name for c in demo[0].children}
        assert {"extract", "insert", "distribute", "reduce"} <= child_names

    def test_span_cost_is_counter_delta(self):
        s = Session(4, trace=True)
        before = s.snapshot()
        run_primitives(s)
        total = s.snapshot() - before
        demo = s.tracer.find(name="demo", category="phase")[0]
        # the demo phase span is the only root covering those charges
        assert demo.cost.time == pytest.approx(
            s.machine.counters.phase_times["demo"]
        )
        assert demo.cost.time <= total.time

    def test_phase_durations_sum_to_phase_times(self):
        s = Session(4, trace=True)
        run_gaussian(s)
        phase_times = s.machine.counters.phase_times
        assert phase_times  # gaussian charges several phases
        spans = s.tracer.find(category="phase")
        by_name = {}
        for sp in spans:
            by_name[sp.name] = by_name.get(sp.name, 0.0) + sp.duration
        for name, t in phase_times.items():
            assert by_name.get(name, 0.0) == pytest.approx(t), name

    def test_same_name_phase_reentry_opens_one_span(self):
        s = Session(2, trace=True)
        with s.machine.phase("p"):
            with s.machine.phase("p"):
                s.machine.counters.charge_time(2.0)
        spans = s.tracer.find(name="p", category="phase")
        assert len(spans) == 1
        assert spans[0].duration == pytest.approx(2.0)

    def test_span_closes_on_exception(self):
        s = Session(2, trace=True)
        with pytest.raises(RuntimeError):
            with s.tracer.span("boom", "test"):
                s.machine.counters.charge_time(1.0)
                raise RuntimeError("x")
        assert s.tracer.current is None
        span = s.tracer.find(name="boom")[0]
        assert span.closed
        assert span.duration == pytest.approx(1.0)

    def test_plan_cache_traffic_recorded_on_spans(self):
        s = Session(4, trace=True)
        if not s.machine.plans.enabled:
            pytest.skip("plan cache disabled via environment")
        run_gaussian(s)
        spans = list(s.tracer.iter_spans())
        assert any(sp.plan_misses > 0 for sp in spans)
        assert any(sp.plan_hits > 0 for sp in spans)

    def test_route_spans_record_congestion_rounds(self):
        # plan cache off: the live e-cube routing loop runs and is spanned
        s = Session(4, trace=True, plan_cache=False)
        rng = np.random.default_rng(0)
        A = s.matrix(rng.standard_normal((8, 8)))
        from repro.embeddings.remap import transpose
        transpose(A.pvar, A.embedding, same_grid=True)
        routes = s.tracer.find(name="route", category="route")
        assert routes
        assert any(r.rounds for r in routes)
        for r in routes:
            for dim, congestion in r.rounds:
                assert 0 <= dim < s.machine.n
                assert congestion > 0

    def test_cached_plan_replay_keeps_congestion_exact(self):
        """A plan-cache replay must report the same per-dim congestion the
        live routing loop would."""
        from repro.embeddings.remap import transpose

        def rounds_of(session):
            rng = np.random.default_rng(0)
            A = session.matrix(rng.standard_normal((8, 8)))
            span_ctx = session.tracer.span("probe", "test")
            with span_ctx as span:
                transpose(A.pvar, A.embedding, same_grid=True)
                transpose(A.pvar, A.embedding, same_grid=True)
            return span.subtree_rounds()

        live = Session(4, trace=True, plan_cache=False)
        cached = Session(4, trace=True, plan_cache=True)
        assert rounds_of(cached) == rounds_of(live)


class TestReport:
    def test_report_has_primitive_breakdown(self):
        s = Session(4, trace=True)
        run_primitives(s)
        report = s.report()
        assert "primitive breakdown:" in report
        for name in ("extract", "insert", "distribute", "reduce"):
            assert name in report

    def test_report_unchanged_without_tracer(self):
        s = Session(4, trace=False)
        run_primitives(s)
        assert "primitive breakdown" not in s.report()

    def test_report_data_is_json_serialisable(self):
        s = Session(4, trace=True)
        run_primitives(s)
        data = json.loads(json.dumps(s.report_data()))
        assert set(data["primitive_breakdown"]) >= {
            "extract", "insert", "distribute", "reduce"
        }
        row = data["primitive_breakdown"]["reduce"]
        assert row["count"] == 1
        assert row["time"] > 0
        assert "congestion" in data

    def test_primitive_summary_counts_calls(self):
        s = Session(3, trace=True)
        A = s.matrix(np.arange(16.0).reshape(4, 4))
        A.extract(axis=0, index=0)
        A.extract(axis=0, index=1)
        summary = s.tracer.primitive_summary()
        assert summary["extract"]["count"] == 2


class TestCongestion:
    def test_heatmap_shape_and_volume(self):
        s = Session(3, trace=True)
        run_primitives(s, rows=8, cols=8)
        agg = s.tracer.congestion
        hm = agg.heatmap()
        assert hm.shape == (s.machine.n, s.machine.p)
        assert hm.sum() > 0
        assert agg.rounds > 0
        assert agg.max_congestion() > 0

    def test_summary_percentiles_ordered(self):
        s = Session(3, trace=True)
        run_gaussian(s, size=8)
        summary = s.tracer.congestion.summary()
        assert summary["congestion_p50"] <= summary["congestion_p99"]
        assert summary["congestion_p99"] <= summary["max_congestion"]

    def test_many_to_one_congestion_exceeds_permutation(self):
        """The paper's headline contrast: a permutation routes congestion-
        free (every link carries one message) while many-to-one traffic
        serialises on the links near the destination."""
        from repro.machine.router import Router

        n = 4
        perm = Session(n, trace=True, plan_cache=False)
        m = perm.machine
        Router(m).simulate(m.pids(), m.pids() ^ 1, np.ones(m.p))
        assert perm.tracer.congestion.max_congestion() == 1.0

        funnel = Session(n, trace=True, plan_cache=False)
        m = funnel.machine
        Router(m).simulate(
            m.pids(), np.zeros(m.p, dtype=np.int64), np.ones(m.p)
        )
        # e-cube funnelling doubles the load every dimension: the last
        # round squeezes p/2 messages over the destination's link
        assert funnel.tracer.congestion.max_congestion() == m.p / 2
        # ... and the heatmap shows it: the worst link carries far more
        # than the per-link mean of its dimension row
        hm = funnel.tracer.congestion.heatmap()
        worst_dim = hm.max(axis=1).argmax()
        assert hm[worst_dim].max() > 4 * hm[worst_dim].mean()

    def test_naive_serialisation_inflates_rounds_not_uniform_volume(self):
        """The naive baseline pays 2^k - 1 serial rounds where the
        primitives pay k dimension-exchanges — visible as round count and
        total traffic in the aggregator."""
        n, length = 4, 64
        prim = Session(n, trace=True)
        prim.vector(np.arange(length, dtype=float)).reduce(op="sum")
        naive = Session(n, trace=True)
        NaiveVector.from_numpy(
            naive.machine, np.arange(length, dtype=float)
        ).reduce(op="sum")
        assert naive.tracer.congestion.rounds > prim.tracer.congestion.rounds
        assert (
            sum(naive.tracer.congestion.dim_volume.values())
            > sum(prim.tracer.congestion.dim_volume.values())
        )

    def test_histogram_matches_round_count(self):
        s = Session(3, trace=True)
        run_primitives(s, rows=8, cols=8)
        agg = s.tracer.congestion
        counts, _ = agg.histogram(bins=8)
        assert counts.sum() == agg.rounds


class TestExport:
    def test_jsonl_export(self, tmp_path):
        s = Session(3, trace=True)
        run_primitives(s, rows=8, cols=8)
        path = tmp_path / "trace.jsonl"
        lines = to_jsonl(s.tracer, str(path))
        records = [json.loads(l) for l in path.read_text().splitlines()]
        assert len(records) == lines
        assert records[0]["type"] == "meta"
        assert records[0]["schema"] == "repro-trace-v1"
        assert records[0]["p"] == s.machine.p
        spans = [r for r in records if r["type"] == "span"]
        assert {r["name"] for r in spans} >= {"extract", "insert"}
        for r in spans:
            assert r["dur"] >= 0
            assert set(r["cost"]) == {
                "time", "flops", "elements_transferred", "comm_rounds",
                "local_moves",
            }

    def test_chrome_trace_round_trip(self, tmp_path):
        s = Session(3, trace=True)
        run_primitives(s, rows=8, cols=8)
        path = tmp_path / "trace.json"
        doc = to_chrome_trace(s.tracer, str(path))
        counts = validate_chrome_trace_file(str(path))
        closed = sum(1 for sp in s.tracer.iter_spans() if sp.closed)
        assert counts["spans"] == closed
        # B/E pairs plus the two metadata records
        assert counts["events"] == 2 * closed + 2
        assert validate_chrome_trace(doc) == counts

    def test_chrome_events_are_nested_and_monotonic(self):
        s = Session(3, trace=True)
        run_gaussian(s, size=8)
        events = chrome_trace_events(s.tracer)
        validate_chrome_trace(events)
        ts = [e["ts"] for e in events if e["ph"] in ("B", "E")]
        assert ts == sorted(ts)

    def test_validator_rejects_backwards_time(self):
        events = [
            {"ph": "B", "pid": 0, "tid": 0, "name": "a", "ts": 5.0},
            {"ph": "E", "pid": 0, "tid": 0, "name": "a", "ts": 4.0},
        ]
        with pytest.raises(ValueError, match="backwards"):
            validate_chrome_trace(events)

    def test_validator_rejects_unclosed_span(self):
        events = [{"ph": "B", "pid": 0, "tid": 0, "name": "a", "ts": 0.0}]
        with pytest.raises(ValueError, match="unclosed"):
            validate_chrome_trace(events)

    def test_validator_rejects_mismatched_close(self):
        events = [
            {"ph": "B", "pid": 0, "tid": 0, "name": "a", "ts": 0.0},
            {"ph": "E", "pid": 0, "tid": 0, "name": "b", "ts": 1.0},
        ]
        with pytest.raises(ValueError):
            validate_chrome_trace(events)

    def test_validator_rejects_stray_end(self):
        events = [{"ph": "E", "pid": 0, "tid": 0, "name": "a", "ts": 0.0}]
        with pytest.raises(ValueError, match="no open"):
            validate_chrome_trace(events)

    def test_empty_trace_exports(self, tmp_path):
        """A tracer that saw no spans still produces valid documents."""
        s = Session(3, trace=True)
        jsonl_path = tmp_path / "empty.jsonl"
        assert to_jsonl(s.tracer, str(jsonl_path)) == 1  # meta line only
        meta = json.loads(jsonl_path.read_text())
        assert meta["type"] == "meta"
        doc = to_chrome_trace(s.tracer, str(tmp_path / "empty.json"))
        counts = validate_chrome_trace(doc)
        assert counts["spans"] == counts["instants"] == 0
        assert counts["events"] == 2  # the two metadata records

    def test_instant_only_trace(self, tmp_path):
        """Instant events export on their own thread with no span tree."""
        s = Session(3, trace=True)
        s.tracer.instant("marker-a", "test", detail=1)
        s.tracer.instant("marker-b", "test")
        doc = to_chrome_trace(s.tracer, str(tmp_path / "instants.json"))
        counts = validate_chrome_trace(doc)
        assert counts["instants"] == 2
        assert counts["spans"] == 0
        tids = {e["tid"] for e in doc["traceEvents"] if e["ph"] == "i"}
        assert tids == {1}

    def test_validator_accepts_counter_events(self):
        events = [
            {"ph": "C", "pid": 0, "tid": 2, "name": "machine", "ts": 0.0,
             "args": {"ticks": 1.0}},
            {"ph": "C", "pid": 0, "tid": 2, "name": "machine", "ts": 5.0,
             "args": {"ticks": 2.0}},
        ]
        assert validate_chrome_trace(events)["counters"] == 2

    def test_validator_rejects_counter_without_ts(self):
        events = [{"ph": "C", "pid": 0, "tid": 2, "name": "machine"}]
        with pytest.raises(ValueError, match="missing"):
            validate_chrome_trace(events)

    def test_validator_rejects_backwards_counter_track(self):
        events = [
            {"ph": "C", "pid": 0, "tid": 2, "name": "machine", "ts": 5.0},
            {"ph": "C", "pid": 0, "tid": 2, "name": "machine", "ts": 4.0},
        ]
        with pytest.raises(ValueError, match="backwards"):
            validate_chrome_trace(events)

    def test_extra_events_ride_along(self, tmp_path):
        s = Session(3, trace=True)
        run_primitives(s, rows=8, cols=8)
        extra = [
            {"ph": "C", "pid": 0, "tid": 2, "name": "machine", "ts": 0.0,
             "args": {"ticks": 0.0}},
        ]
        doc = to_chrome_trace(
            s.tracer, str(tmp_path / "extra.json"), extra_events=extra
        )
        counts = validate_chrome_trace(doc)
        assert counts["counters"] == 1
        assert doc["traceEvents"][-1]["ph"] == "C"


class TestRouteStatsReplay:
    def test_dim_congestion_identical_through_plan_cache(self):
        """A cached route plan replays the exact per-round ``(dim,
        congestion)`` profile the live routing loop recorded."""

        from repro.machine import Router

        def stats_pair(session):
            m = session.machine
            router = Router(m)
            rng = np.random.default_rng(7)
            src = np.arange(m.p, dtype=np.int64)
            dst = rng.permutation(m.p).astype(np.int64)
            sizes = rng.integers(1, 5, size=m.p).astype(np.float64)
            first = router.simulate(src, dst, sizes)
            second = router.simulate(src, dst, sizes)
            return first, second

        live_first, live_second = stats_pair(Session(4, plan_cache=False))
        cached_session = Session(4, plan_cache=True)
        cached_first, cached_second = stats_pair(cached_session)

        assert cached_session.machine.counters.plan_hits >= 1
        assert live_first.dim_congestion == live_second.dim_congestion
        assert cached_second.dim_congestion == live_first.dim_congestion
        assert len(cached_second.dim_congestion) == cached_second.rounds
        assert cached_second.max_congestion == max(
            c for _, c in cached_second.dim_congestion
        )
        assert cached_second.time == live_second.time
