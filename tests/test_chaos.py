"""The chaos campaign harness (``repro.faults.chaos`` + ``repro chaos``).

Covers seeded schedule generation (deterministic, gray+fail-stop mix),
campaign execution against fault-free baselines, delta-debugging shrink
of failing plans to minimal replayable JSON, warehouse record schema,
the straggler-avoidance experiment, and the CLI wiring (exit codes,
artifacts, report files).
"""

import json
import os

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.faults import FaultPlan, LinkDrop, LinkSlow, NodeKill
from repro.faults import chaos
from repro.__main__ import main


# ---------------------------------------------------------------------------
# schedules
# ---------------------------------------------------------------------------


class TestScheduleGeneration:
    def test_deterministic(self):
        a = chaos.generate_schedules(8, master_seed=3, n_dims=4, sizes=(8,))
        b = chaos.generate_schedules(8, master_seed=3, n_dims=4, sizes=(8,))
        assert [s.as_dict() for s in a] == [s.as_dict() for s in b]

    def test_independent_child_seeds(self):
        """Schedule i is a function of (master_seed, i) alone."""
        short = chaos.generate_schedules(3, master_seed=5, sizes=(8,))
        long = chaos.generate_schedules(6, master_seed=5, sizes=(8,))
        assert [s.as_dict() for s in short] == [
            s.as_dict() for s in long[:3]
        ]

    def test_mixes_fault_families(self):
        schedules = chaos.generate_schedules(
            30, master_seed=0, sizes=(8,)
        )
        kinds = {
            type(ev).__name__
            for s in schedules
            for ev in s.plan.events
        }
        assert {"LinkSlow", "NodeSlow", "LinkFlaky"} & kinds
        assert {"LinkKill", "NodeKill", "LinkDrop"} & kinds

    def test_sdc_only_with_abft(self):
        """Bit flips without the checksum layer corrupt by design — the
        generator must never pair them with abft off."""
        for s in chaos.generate_schedules(40, master_seed=1, sizes=(8,)):
            sdc = [
                ev for ev in s.plan.events
                if type(ev).__name__ in ("BitFlip", "LinkCorrupt")
            ]
            if sdc:
                assert s.flags["abft"]

    def test_bad_arguments_rejected(self):
        with pytest.raises(ConfigError, match="count"):
            chaos.generate_schedules(0)
        with pytest.raises(ConfigError, match="workload"):
            chaos.generate_schedules(2, workloads=("gaussian", "mystery"))
        with pytest.raises(ConfigError, match="workload"):
            chaos.build_workload("mystery", 8, 0)


# ---------------------------------------------------------------------------
# running schedules
# ---------------------------------------------------------------------------


class TestRunSchedule:
    def test_small_campaign_all_ok(self):
        report = chaos.run_campaign(6, master_seed=0, n_dims=4, sizes=(8,))
        assert report["ok"] == 6
        assert report["failed"] == 0
        assert report["failures"] == []
        assert report["total_fault_events"] > 0

    def test_run_schedule_is_deterministic(self):
        baselines = chaos.BaselineCache()
        [schedule] = chaos.generate_schedules(
            1, master_seed=2, sizes=(8,), baselines=baselines
        )
        a = chaos.run_schedule(schedule, baselines)
        b = chaos.run_schedule(schedule, baselines)
        assert a == b


# ---------------------------------------------------------------------------
# shrinking
# ---------------------------------------------------------------------------


class TestShrink:
    def test_shrinks_to_single_culprit(self):
        """ddmin isolates the one event the failure depends on."""
        culprit = NodeKill(50.0, pid=3)
        noise = [
            LinkDrop(float(10 + i), dim=i % 3, count=1) for i in range(7)
        ] + [LinkSlow(30.0, dim=1, pid=0, factor=2.0)]
        plan = FaultPlan(noise + [culprit])

        def failing(candidate):
            return culprit in candidate.events

        minimal, runs = chaos.shrink_plan(plan, failing)
        assert minimal.events == (culprit,)
        assert runs > 0

    def test_shrinks_conjunction(self):
        """Failures needing two events keep exactly those two."""
        a = NodeKill(10.0, pid=1)
        b = NodeKill(20.0, pid=2)
        noise = [LinkDrop(float(i), dim=0, count=1) for i in range(6)]
        plan = FaultPlan(noise + [a, b])

        def failing(candidate):
            return a in candidate.events and b in candidate.events

        minimal, _ = chaos.shrink_plan(plan, failing)
        assert set(minimal.events) == {a, b}

    def test_respects_run_budget(self):
        plan = FaultPlan(
            [LinkDrop(float(i), dim=0, count=1) for i in range(20)]
        )
        calls = []

        def failing(candidate):
            calls.append(len(candidate))
            return True  # everything "fails": worst case for ddmin

        minimal, runs = chaos.shrink_plan(plan, failing, max_runs=10)
        assert runs <= 10
        assert len(calls) <= 10
        assert len(minimal) >= 1


class TestFailurePath:
    def test_failure_is_shrunk_and_archived(self, tmp_path, monkeypatch):
        """A failing schedule produces a minimized replayable plan file."""
        real = chaos.run_schedule
        poison = NodeKill(1.0, pid=7)

        def rigged(schedule, baselines=None):
            out = real(schedule, baselines)
            if poison.pid in [
                getattr(ev, "pid", None) for ev in schedule.plan.events
            ] or schedule.index == 2:
                out = dict(out)
                out["ok"] = False
                out["error"] = "rigged failure for testing"
            return out

        monkeypatch.setattr(chaos, "run_schedule", rigged)
        art = tmp_path / "artifacts"
        report = chaos.run_campaign(
            4, master_seed=0, n_dims=4, sizes=(8,),
            artifact_dir=str(art),
        )
        assert report["failed"] >= 1
        [failure] = [
            f for f in report["failures"]
            if f["schedule"]["index"] == 2
        ]
        assert failure["minimized_events"] <= len(
            failure["schedule"]["plan"]["events"]
        )
        path = failure["minimized_path"]
        assert os.path.exists(path)
        # the artifact is a replayable fault plan
        replayed = FaultPlan.from_json(path)
        assert len(replayed) == failure["minimized_events"]

    def test_artifact_dir_created_even_when_green(self, tmp_path):
        art = tmp_path / "green-artifacts"
        report = chaos.run_campaign(
            2, master_seed=0, n_dims=4, sizes=(8,), artifact_dir=str(art)
        )
        assert report["failed"] == 0
        assert art.is_dir()


# ---------------------------------------------------------------------------
# straggler experiment + warehouse records
# ---------------------------------------------------------------------------


class TestStragglerExperiment:
    def test_avoidance_wins(self):
        result = chaos.straggler_experiment(n_dims=4)
        assert result["straggler_detours"] > 0
        assert result["ticks_avoidance_on"] < result["ticks_avoidance_off"]
        assert result["tick_reduction"] > 0.0


class TestWarehouseRecords:
    def test_records_validate_and_round_trip(self, tmp_path):
        from repro.metrics import warehouse as wh

        report = chaos.run_campaign(2, master_seed=0, n_dims=4, sizes=(8,))
        straggler = chaos.straggler_experiment(n_dims=4)
        records = [
            chaos.campaign_record(report, 1.0),
            chaos.straggler_record(straggler, 0.1),
        ]
        for record in records:
            assert record["kind"] == "chaos"
            wh.validate_record(record)
        path = str(tmp_path / "runs.jsonl")
        assert wh.append_records(records, path) == 2
        loaded = wh.load_records(path)
        assert [r["workload"] for r in loaded] == [
            "chaos_campaign", "chaos_straggler"
        ]
        assert loaded[0]["metrics"]["chaos.failed"] == 0
        assert loaded[1]["metrics"]["chaos.straggler.reduction"] > 0

    def test_chaos_records_do_not_pin_baselines(self, tmp_path):
        """The regression gate keys on run records; chaos history rides
        along without pinning."""
        from repro.metrics import warehouse as wh

        report = chaos.run_campaign(2, master_seed=0, n_dims=4, sizes=(8,))
        record = chaos.campaign_record(report, 1.0)
        baselines = wh.pin_baselines(
            [record], str(tmp_path / "baselines.json")
        )
        assert baselines["entries"] == {}

    def test_unknown_kind_still_rejected(self):
        from repro.metrics import warehouse as wh

        report = chaos.run_campaign(1, master_seed=0, n_dims=4, sizes=(8,))
        record = chaos.campaign_record(report, 1.0)
        record["kind"] = "mystery"
        with pytest.raises(ConfigError, match="kind"):
            wh.validate_record(record)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestChaosCLI:
    def test_smoke_run(self, tmp_path, capsys):
        art = tmp_path / "artifacts"
        out = tmp_path / "report.json"
        code = main([
            "chaos", "-n", "4", "--schedules", "4", "--seed", "0",
            "--sizes", "8", "--artifact-dir", str(art),
            "--out", str(out), "--no-warehouse",
        ])
        assert code == 0
        report = json.loads(out.read_text())
        assert report["ok"] == 4
        assert report["straggler"]["tick_reduction"] > 0
        assert art.is_dir()
        text = capsys.readouterr().out
        assert "chaos campaign" in text

    def test_json_output_and_warehouse(self, tmp_path, capsys):
        from repro.metrics import warehouse as wh

        code = main([
            "chaos", "-n", "4", "--schedules", "2", "--seed", "1",
            "--sizes", "8", "--artifact-dir", str(tmp_path / "a"),
            "--warehouse", str(tmp_path / "wh"), "--json",
        ])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["failed"] == 0
        records = wh.load_records(
            os.path.join(str(tmp_path / "wh"), wh.RUNS_FILE)
        )
        assert [r["workload"] for r in records] == [
            "chaos_campaign", "chaos_straggler"
        ]

    def test_bad_sizes_is_a_clean_config_error(self, tmp_path, capsys):
        code = main([
            "chaos", "--schedules", "1", "--sizes", "eight",
            "--artifact-dir", str(tmp_path / "a"), "--no-warehouse",
        ])
        assert code == 2
        assert "--sizes" in capsys.readouterr().err

    def test_bad_fault_plan_file_is_a_clean_config_error(
        self, tmp_path, capsys
    ):
        """Satellite: --fault-plan validation surfaces as exit 2 with the
        offending entry named, not a traceback."""
        path = tmp_path / "plan.json"
        path.write_text(json.dumps({"events": [
            {"kind": "LinkSlow", "time": 1.0, "warp": 9},
        ]}))
        code = main([
            "faults", "-n", "3", "--fault-plan", str(path),
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "events[0]" in err
        assert "unknown field" in err
