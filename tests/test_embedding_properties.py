"""Hypothesis property tests over the full embedding configuration space.

Random machine sizes × shapes × dimension splits × layout kinds × codings:
the structural invariants every embedding must satisfy, checked against
brute force.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import primitives as P
from repro.embeddings import (
    ColAlignedEmbedding,
    MatrixEmbedding,
    RowAlignedEmbedding,
    VectorOrderEmbedding,
)
from repro.machine import CostModel, Hypercube

LAYOUTS = ["block", "cyclic", "block_cyclic:2", "block_cyclic:3"]


@st.composite
def embeddings(draw):
    n = draw(st.integers(min_value=0, max_value=5))
    machine = Hypercube(n, CostModel.unit())
    R = draw(st.integers(min_value=1, max_value=20))
    C = draw(st.integers(min_value=1, max_value=20))
    dims = list(draw(st.permutations(range(n))))
    nr = draw(st.integers(min_value=0, max_value=n))
    emb = MatrixEmbedding(
        machine, R, C,
        row_dims=tuple(dims[:nr]),
        col_dims=tuple(dims[nr:]),
        row_layout_kind=draw(st.sampled_from(LAYOUTS)),
        col_layout_kind=draw(st.sampled_from(LAYOUTS)),
        coding=draw(st.sampled_from(["gray", "binary"])),
    )
    seed = draw(st.integers(min_value=0, max_value=2**31))
    return emb, seed


@settings(max_examples=80, deadline=None)
@given(embeddings())
def test_every_element_has_exactly_one_home(case):
    emb, seed = case
    mask = emb.valid_mask()
    assert int(mask.sum()) == emb.R * emb.C
    # and owner_slot points into a valid slot holding that element
    A = np.random.default_rng(seed).standard_normal((emb.R, emb.C))
    pv = emb.scatter(A)
    ii, jj = np.meshgrid(np.arange(emb.R), np.arange(emb.C), indexing="ij")
    pid, sr, sc = emb.owner_slot(ii.ravel(), jj.ravel())
    got = pv.data[np.asarray(pid), np.asarray(sr), np.asarray(sc)]
    assert np.array_equal(got, A.ravel())


@settings(max_examples=80, deadline=None)
@given(embeddings())
def test_load_balance_bound(case):
    """The paper's guarantee: no processor holds more than
    ceil(R/Pr) * ceil(C/Pc) elements."""
    emb, _ = case
    counts = emb.valid_mask().sum(axis=(1, 2))
    lr, lc = emb.local_shape
    assert counts.max() <= lr * lc


@settings(max_examples=60, deadline=None)
@given(embeddings())
def test_scatter_gather_identity(case):
    emb, seed = case
    A = np.random.default_rng(seed).standard_normal((emb.R, emb.C))
    assert np.array_equal(emb.gather(emb.scatter(A)), A)


@settings(max_examples=60, deadline=None)
@given(embeddings())
def test_grid_pid_bijection(case):
    emb, _ = case
    seen = set()
    for gr in range(emb.Pr):
        for gc in range(emb.Pc):
            pid = int(np.asarray(emb.pid_for_grid(gr, gc)))
            assert emb.grid_for_pid(pid) == (gr, gc)
            seen.add(pid)
    assert len(seen) == emb.machine.p


@settings(max_examples=40, deadline=None)
@given(embeddings())
def test_reduce_correct_on_any_configuration(case):
    """The reduce primitive's oracle check over the whole config space —
    layouts, codings and splits must all be transparent to semantics."""
    emb, seed = case
    A = np.random.default_rng(seed).standard_normal((emb.R, emb.C))
    M = emb.scatter(A)
    for axis in (0, 1):
        v, ve = P.reduce(M, emb, axis, "sum")
        assert np.allclose(ve.gather(v), A.sum(axis=axis))


@settings(max_examples=40, deadline=None)
@given(embeddings(), st.data())
def test_aligned_vectors_align(case, data):
    """Row/column-aligned vectors share slots with the matrix's slices."""
    emb, seed = case
    A = np.random.default_rng(seed).standard_normal((emb.R, emb.C))
    pv = emb.scatter(A)
    i = data.draw(st.integers(min_value=0, max_value=emb.R - 1))
    row_emb = RowAlignedEmbedding(emb, None)
    w = np.random.default_rng(seed + 1).standard_normal(emb.C)
    wv = row_emb.scatter(w)
    for j in range(emb.C):
        mpid, _, msc = emb.owner_slot(i, j)
        vpid, vs = row_emb.owner_slot(j)
        assert int(np.asarray(msc)) == int(np.asarray(vs))


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=0, max_value=5),
    st.integers(min_value=1, max_value=40),
    st.sampled_from(LAYOUTS),
    st.sampled_from(["gray", "binary"]),
    st.integers(min_value=0, max_value=2**31),
)
def test_vector_order_round_trip(n, L, layout, coding, seed):
    machine = Hypercube(n, CostModel.unit())
    emb = VectorOrderEmbedding(machine, L, layout, coding)
    v = np.random.default_rng(seed).standard_normal(L)
    assert np.array_equal(emb.gather(emb.scatter(v)), v)
    mask = emb.valid_mask()
    assert int(mask.sum()) == L
