"""Import isolation for the sparse subsystem.

The sparse package is strictly additive: a dense run must never load
``repro.sparse`` (it is only imported from the lazy ``Session.sparse_*``
factories and the lazily resolved ``repro.algorithms.graph``), and having
it loaded must not perturb dense accounting by a single bit.  Both pins
run in clean subprocesses so no test-session import state can mask a
regression — the same pattern as the abft/batch/chaos no-import pins.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.check import golden

SRC = str(Path(__file__).resolve().parent.parent / "src")
SUBPROCESS_ENV = {"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"}


def _run_script(script: str) -> str:
    out = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        env=SUBPROCESS_ENV,
    )
    assert out.returncode == 0, out.stderr
    return out.stdout


@pytest.mark.parametrize("workload", ["gaussian", "matvec", "simplex"])
def test_dense_run_never_imports_sparse_module(workload):
    """Dense golden workloads leave repro.sparse (and scipy) unloaded."""
    script = (
        "import sys\n"
        "from repro.check import golden\n"
        f"golden._run_one({workload!r}, sanitize=False)\n"
        "leaked = [m for m in sys.modules\n"
        "          if m == 'repro.sparse' or m.startswith('repro.sparse.')]\n"
        "assert not leaked, f'sparse module leaked: {leaked}'\n"
        "assert 'repro.algorithms.graph' not in sys.modules, 'graph leaked'\n"
        "assert 'scipy' not in sys.modules, 'scipy leaked'\n"
        "assert 'networkx' not in sys.modules, 'networkx leaked'\n"
    )
    _run_script(script)


def test_importing_package_roots_keeps_sparse_unloaded():
    """`import repro` / `repro.algorithms` alone must not pull in sparse."""
    script = (
        "import sys\n"
        "import repro\n"
        "import repro.algorithms\n"
        "assert 'repro.sparse' not in sys.modules, 'sparse module leaked'\n"
        "assert 'repro.algorithms.graph' not in sys.modules, 'graph leaked'\n"
    )
    _run_script(script)


def test_lazy_graph_attribute_defers_sparse_until_an_algorithm_runs():
    """Two gates: the graph module resolves lazily, and even then sparse
    stays unloaded until an algorithm actually builds sparse operands."""
    script = (
        "import sys\n"
        "import repro.algorithms as algorithms\n"
        "assert 'repro.algorithms.graph' not in sys.modules\n"
        "graph = algorithms.graph\n"
        "assert 'repro.algorithms.graph' in sys.modules\n"
        "assert 'repro.sparse' not in sys.modules, 'sparse loaded too early'\n"
        "assert graph is algorithms.graph  # resolved attribute is stable\n"
        "from repro import Session, workloads\n"
        "g = workloads.random_graph(12, 2.0, seed=0)\n"
        "graph.bfs(Session(2), g, 0)\n"
        "assert 'repro.sparse' in sys.modules, 'bfs never touched sparse'\n"
    )
    _run_script(script)


@pytest.mark.parametrize("workload", ["gaussian", "matvec"])
def test_dense_golden_counters_unchanged_with_sparse_imported(workload):
    """Pre-importing repro.sparse must not move any dense golden counter."""
    script = (
        "import json\n"
        "import repro.sparse  # loaded *before* any dense machinery\n"
        "from repro.check import golden\n"
        f"print(json.dumps(golden._run_one({workload!r}, sanitize=False)))\n"
    )
    got = json.loads(_run_script(script))
    want = golden.load_golden()["workloads"][workload]
    assert got == want  # exact float equality, field by field


def test_graph_golden_counters_replay_in_clean_interpreter():
    """The bfs golden entry pins the sparse subsystem's own accounting."""
    script = (
        "import json\n"
        "from repro.check import golden\n"
        "print(json.dumps(golden._run_one('bfs', sanitize=False)))\n"
    )
    got = json.loads(_run_script(script))
    want = golden.load_golden()["workloads"]["bfs"]
    assert got == want
