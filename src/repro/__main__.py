"""Command-line entry point: ``python -m repro``.

Subcommands:

* ``info``  — machine/cost-model summary for a given cube size;
* ``demo``  — run the four primitives on a small matrix and print the
  simulated cost report (the quickstart, headless);
* ``solve`` — solve a random dense system at a chosen size and report the
  paper-style cost breakdown.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from . import Session, __version__


def _cmd_info(args: argparse.Namespace) -> int:
    session = Session(args.n, args.cost_model)
    machine = session.machine
    c = machine.cost_model
    print(f"repro {__version__} — simulated hypercube multiprocessor")
    print(f"processors : {machine.p} (n = {machine.n} cube dimensions)")
    print(f"cost model : tau={c.tau} t_c={c.t_c} t_a={c.t_a} t_m={c.t_m}")
    print(f"m > p lg p threshold: {machine.p * max(machine.n, 1)} elements")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    session = Session(args.n, args.cost_model)
    A_host = rng.standard_normal((args.rows, args.cols))
    A = session.matrix(A_host)
    print(f"embedded: {A.embedding!r}\n")

    with session.machine.phase("demo"):
        row = A.extract(axis=0, index=0)
        A2 = A.insert(axis=0, index=args.rows - 1, vector=row)
        tiled = row.distribute(A, axis=0)
        sums = A2.reduce(axis=1, op="sum")
        del tiled
    assert np.isclose(sums.to_numpy()[0], A_host[0].sum())
    print(session.report())
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    from .algorithms import gaussian, serial
    from .analysis import pt_ratio
    from . import workloads as W

    session = Session(args.n, args.cost_model)
    A_host, b, x_true = W.random_system(args.size, seed=args.seed)
    A = session.matrix(A_host)
    result = gaussian.solve(A, b, pivoting=args.pivoting)
    err = float(np.abs(result.x - x_true).max())
    ops = serial.gaussian_solve(A_host, b).ops
    ratio = pt_ratio(result.cost, session.machine.p, ops,
                     session.machine.cost_model)
    print(f"solved {args.size}x{args.size} on p={session.machine.p} "
          f"({args.pivoting} pivoting)")
    print(f"max error        : {err:.2e}")
    print(f"simulated time   : {result.cost.time:,.0f} ticks")
    print(f"PT / serial      : {ratio:,.1f}")
    for name, t in session.machine.counters.phase_breakdown():
        if name != "gaussian":
            print(f"  {name:<20s} {t:>14,.0f}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Four Vector-Matrix Primitives (SPAA 1989) reproduction",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    def add_machine_args(p):
        p.add_argument("-n", type=int, default=8,
                       help="cube dimensions (p = 2^n; default 8)")
        p.add_argument("--cost-model", default="cm2",
                       choices=["cm2", "unit", "latency_bound",
                                "bandwidth_bound"])
        p.add_argument("--seed", type=int, default=0)

    p_info = sub.add_parser("info", help="machine summary")
    add_machine_args(p_info)
    p_info.set_defaults(fn=_cmd_info)

    p_demo = sub.add_parser("demo", help="run the four primitives")
    add_machine_args(p_demo)
    p_demo.add_argument("--rows", type=int, default=96)
    p_demo.add_argument("--cols", type=int, default=64)
    p_demo.set_defaults(fn=_cmd_demo)

    p_solve = sub.add_parser("solve", help="solve a random dense system")
    add_machine_args(p_solve)
    p_solve.add_argument("--size", type=int, default=64)
    p_solve.add_argument("--pivoting", default="partial",
                         choices=["partial", "implicit", "none"])
    p_solve.set_defaults(fn=_cmd_solve)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
