"""Command-line entry point: ``python -m repro`` (or the ``repro`` script).

Subcommands:

* ``info``  — machine/cost-model summary for a given cube size;
* ``demo``  — run the four primitives on a small matrix and print the
  simulated cost report (the quickstart, headless);
* ``solve`` — solve a random dense system at a chosen size and report the
  paper-style cost breakdown;
* ``trace`` — run a workload with tracing on and write a Chrome
  trace-event file (load it at ``chrome://tracing`` or ui.perfetto.dev);
* ``faults`` — run a workload under a seeded fault plan (node/link kills,
  transient drops), recover onto a healthy subcube, and report
  kills/retries/remaps/recovery ticks; exits non-zero unless recovery
  succeeded *and* the recovered result matches the fault-free baseline;
* ``abft`` — run a workload under seeded *silent data corruption* (bit
  flips at rest and in flight) with the ABFT checksum layer attached;
  exits non-zero unless every corruption was corrected or replayed away
  and the result matches the fault-free baseline bit-for-bit;
* ``check`` — run the conformance suite (sanitizer self-test,
  differential oracle sweep, golden cost snapshots) and emit a JSON
  report; exits non-zero on any violation.  ``--update-golden``
  re-captures the snapshots after an intentional accounting change;
* ``bench`` — the experiment warehouse (``repro.metrics.warehouse``):
  ``bench run`` executes a declarative run table and appends one JSONL
  record per run to ``benchmarks/warehouse/``; ``bench report`` gates
  the latest records against pinned baselines (nonzero exit on any
  simulated-tick regression); ``bench pin`` freezes new baselines;
  ``bench import`` migrates the legacy ``BENCH_wallclock.json``;
* ``chaos`` — randomized seeded fault campaigns: every schedule draws a
  workload, a feature-flag combination and a fault plan mixing
  fail-stop, silent-data-corruption and gray-failure events, and must
  finish with a result equal to the fault-free baseline; any failure is
  delta-debugged down to a minimal replayable JSON plan and the campaign
  summary lands in the bench warehouse.  Exits non-zero on any failure.
  ``--workloads`` narrows the draw pool (e.g. ``--workloads bfs``);
* ``graph`` — run a sparse graph algorithm (BFS / SSSP / connected
  components, via the semiring SpMV primitives) on a seeded random
  graph, self-verify against the serial reference, and report the
  simulated cost; exits non-zero on any divergence.

``demo``/``solve``/``trace`` additionally accept ``--fault-seed`` /
``--fault-rate`` / ``--sdc-rate`` to inject non-fatal faults (link kills
+ transient drops + silent bit flips) under the regular workloads,
``--abft`` to attach the checksum layer, and ``--fault-plan FILE`` to
replay a recorded plan.  ``faults``/``abft`` accept ``--fault-plan`` too.
They also accept ``--sanitize`` (with ``--sample-every K``) to audit
accounting invariants and ``--profile`` to print the host wall-clock
attribution table; ``trace --metrics-jsonl FILE`` attaches the metrics
registry and adds counter tracks to the Chrome trace.

Every subcommand accepts ``--json`` to emit a machine-readable summary on
stdout instead of the human-readable report.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

import numpy as np

from . import Session, __version__
from .errors import ConfigError, CorruptionError


def _emit(args: argparse.Namespace, data: dict, text: str) -> None:
    if getattr(args, "json", False):
        print(json.dumps(data, indent=2, sort_keys=True))
    else:
        print(text)


def _cmd_info(args: argparse.Namespace) -> int:
    session = Session(args.n, args.cost_model)
    machine = session.machine
    c = machine.cost_model
    threshold = machine.p * max(machine.n, 1)
    data = {
        "version": __version__,
        "p": machine.p,
        "n": machine.n,
        "cost_model": {
            "tau": c.tau, "t_c": c.t_c, "t_a": c.t_a, "t_m": c.t_m,
        },
        "large_vector_threshold": threshold,
    }
    text = "\n".join([
        f"repro {__version__} — simulated hypercube multiprocessor",
        f"processors : {machine.p} (n = {machine.n} cube dimensions)",
        f"cost model : tau={c.tau} t_c={c.t_c} t_a={c.t_a} t_m={c.t_m}",
        f"m > p lg p threshold: {threshold} elements",
    ])
    _emit(args, data, text)
    return 0


def _build_fault_plan(args: argparse.Namespace, horizon: float):
    """A non-fatal seeded plan (link kills + drops + SDC) for demo/solve/trace."""
    from .faults import FaultPlan

    rate = max(0.0, args.fault_rate)
    sdc = max(0.0, getattr(args, "sdc_rate", 0.0))
    return FaultPlan.random(
        args.n,
        seed=args.fault_seed,
        horizon=horizon,
        link_kills=max(0, int(round(rate))),
        node_kills=0,
        drops=max(1, int(round(2 * rate))),
        bit_flips=int(round(2 * sdc)),
        link_corruptions=int(round(sdc)),
    )


def _obs_kwargs(args: argparse.Namespace) -> dict:
    """Session kwargs for the opt-in observability flags.

    Only explicit flags appear in the result, so the ``REPRO_SANITIZE`` /
    ``REPRO_METRICS`` / ``REPRO_PROFILE`` environment defaults still apply
    when a flag is absent.
    """
    kwargs: dict = {}
    if getattr(args, "sanitize", False):
        from .check.sanitizer import MachineSanitizer

        kwargs["sanitize"] = MachineSanitizer(
            sample_every=getattr(args, "sample_every", 1) or 1
        )
    if getattr(args, "profile", False):
        from .metrics import PhaseProfiler

        kwargs["profile"] = PhaseProfiler()
    if getattr(args, "metrics_jsonl", None):
        from .metrics import MetricsRegistry

        kwargs["metrics"] = MetricsRegistry()
    return kwargs


def _fault_session(args: argparse.Namespace, run_fault_free, trace=False):
    """Build the session, attaching seeded faults when --fault-seed is set.

    Fault times are fractions of the workload's fault-free runtime, so we
    first run it once on a throwaway session to measure the horizon, then
    schedule a non-fatal plan (link kills + transient drops, plus silent
    bit flips under ``--sdc-rate``) over ~75% of it.  Kills are non-fatal:
    exchanges survive via 3-hop detours, so the regular subcommands need no
    recovery logic (see the ``faults`` subcommand for node kills and
    degraded-mode recovery).  ``--fault-plan FILE`` replays a recorded
    plan verbatim instead (times are absolute, so no dry run is needed);
    ``--abft`` attaches the checksum layer either way.
    """
    abft = bool(getattr(args, "abft", False))
    plan_file = getattr(args, "fault_plan", None)
    if plan_file is not None:
        from .faults import FaultPlan

        plan = FaultPlan.from_json(plan_file)
        return Session(
            args.n, args.cost_model, trace=trace, faults=plan, abft=abft,
            **_obs_kwargs(args),
        )
    if getattr(args, "fault_seed", None) is None:
        return Session(
            args.n, args.cost_model, trace=trace, abft=abft,
            **_obs_kwargs(args),
        )
    dry = Session(args.n, args.cost_model)
    run_fault_free(dry)
    plan = _build_fault_plan(args, 0.75 * max(dry.time, 1.0))
    return Session(
        args.n, args.cost_model, trace=trace, faults=plan, abft=abft,
        **_obs_kwargs(args),
    )


def _profiled_run(session: Session, fn):
    """Run ``fn()`` inside the session's profiler window, if attached."""
    profiler = session.profiler
    if profiler is None:
        return fn()
    with profiler.profiled():
        return fn()


def _run_demo(session: Session, rng, rows: int, cols: int):
    """The quickstart workload: all four primitives on one matrix."""
    A_host = rng.standard_normal((rows, cols))
    A = session.matrix(A_host)
    with session.machine.phase("demo"):
        row = A.extract(axis=0, index=0)
        A2 = A.insert(axis=0, index=rows - 1, vector=row)
        tiled = row.distribute(A, axis=0)
        sums = A2.reduce(axis=1, op="sum")
        del tiled
    assert np.isclose(sums.to_numpy()[0], A_host[0].sum())
    return A


def _cmd_demo(args: argparse.Namespace) -> int:
    session = _fault_session(
        args,
        lambda s: _run_demo(
            s, np.random.default_rng(args.seed), args.rows, args.cols
        ),
    )
    rng = np.random.default_rng(args.seed)
    A = _profiled_run(
        session, lambda: _run_demo(session, rng, args.rows, args.cols)
    )
    data = dict(session.report_data(), embedding=repr(A.embedding))
    text = f"embedded: {A.embedding!r}\n\n{session.report()}"
    if session.profiler is not None:
        text += "\n\n" + session.profiler.format_table()
    _emit(args, data, text)
    return 0


def _run_solve(session: Session, args: argparse.Namespace):
    from .algorithms import gaussian, serial
    from .analysis import pt_ratio
    from . import workloads as W

    A_host, b, x_true = W.random_system(args.size, seed=args.seed)
    A = session.matrix(A_host)
    result = gaussian.solve(A, b, pivoting=args.pivoting)
    err = float(np.abs(result.x - x_true).max())
    ops = serial.gaussian_solve(A_host, b).ops
    ratio = pt_ratio(result.cost, session.machine.p, ops,
                     session.machine.cost_model)
    return result, err, ratio


def _cmd_solve(args: argparse.Namespace) -> int:
    session = _fault_session(args, lambda s: _run_solve(s, args))
    result, err, ratio = _profiled_run(
        session, lambda: _run_solve(session, args)
    )
    phases = [
        (name, t)
        for name, t in session.machine.counters.phase_breakdown()
        if name != "gaussian"
    ]
    data = {
        "size": args.size,
        "p": session.machine.p,
        "pivoting": args.pivoting,
        "max_error": err,
        "time": result.cost.time,
        "pt_ratio": ratio,
        "phase_breakdown": [{"phase": n, "time": t} for n, t in phases],
    }
    lines = [
        f"solved {args.size}x{args.size} on p={session.machine.p} "
        f"({args.pivoting} pivoting)",
        f"max error        : {err:.2e}",
        f"simulated time   : {result.cost.time:,.0f} ticks",
        f"PT / serial      : {ratio:,.1f}",
    ]
    injector = session.machine.faults
    if injector is not None:
        st = injector.stats
        data["faults"] = st.as_dict()
        lines.append(
            f"faults           : {st.link_kills} link kills, "
            f"{st.drops} drops / {st.retries} retries, "
            f"{st.detour_rounds} detour rounds"
        )
    lines += [f"  {name:<20s} {t:>14,.0f}" for name, t in phases]
    if session.profiler is not None:
        lines += ["", session.profiler.format_table()]
    _emit(args, data, "\n".join(lines))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .obs import to_chrome_trace, to_jsonl, validate_chrome_trace_file

    def run(session: Session) -> None:
        rng = np.random.default_rng(args.seed)
        if args.workload == "demo":
            _run_demo(session, rng, args.rows, args.cols)
        else:
            _run_solve(session, args)

    session = _fault_session(args, run, trace=True)
    _profiled_run(session, lambda: run(session))

    tracer = session.tracer
    # Attached metrics and profiler ride along as Chrome counter tracks
    # next to the span tree.
    extra_events = []
    registry = session.metrics
    if registry is not None:
        extra_events += registry.counter_track_events()
    if session.profiler is not None:
        extra_events += session.profiler.counter_track_events()
    to_chrome_trace(tracer, args.out, extra_events=extra_events or None)
    counts = validate_chrome_trace_file(args.out)
    events, spans = counts["events"], counts["spans"]
    jsonl_lines = to_jsonl(tracer, args.jsonl) if args.jsonl else None
    metrics_lines = (
        registry.to_jsonl(args.metrics_jsonl)
        if registry is not None and args.metrics_jsonl
        else None
    )

    data = {
        "workload": args.workload,
        "out": args.out,
        "events": events,
        "spans": spans,
        "jsonl": args.jsonl,
        "jsonl_lines": jsonl_lines,
        "metrics_jsonl": args.metrics_jsonl,
        "metrics_jsonl_lines": metrics_lines,
        "report": session.report_data(),
    }
    lines = [
        f"ran workload '{args.workload}' on p={session.machine.p} "
        f"with tracing on",
        f"chrome trace     : {args.out} ({events} events, {spans} spans)",
    ]
    if args.jsonl:
        lines.append(f"jsonl event log  : {args.jsonl} "
                     f"({jsonl_lines} lines)")
    if metrics_lines is not None:
        lines.append(f"metrics jsonl    : {args.metrics_jsonl} "
                     f"({metrics_lines} lines)")
    lines += ["", session.report()]
    if session.profiler is not None:
        lines += ["", session.profiler.format_table()]
    _emit(args, data, "\n".join(lines))
    return 0


def _fault_workload(args: argparse.Namespace):
    """Build the seeded resilient-workload factory for faults/abft.

    Integer data keeps sum-reductions exact, so the recovered result can
    be compared bit-for-bit against the fault-free baseline even after a
    remap onto a smaller subcube (or an ABFT checkpoint replay).
    """
    from . import workloads as W
    from .faults import gaussian_workload, matvec_workload, simplex_workload

    rng = np.random.default_rng(args.seed)
    size = args.size
    # abft has no --checkpoint-every flag; keep its historical cadence.
    every = int(getattr(args, "checkpoint_every", 4))
    if args.workload == "gaussian":
        A = rng.integers(-4, 5, size=(size, size)).astype(np.float64)
        A += size * np.eye(size)
        b = rng.integers(-4, 5, size=size).astype(np.float64)
        return lambda: gaussian_workload(A, b, checkpoint_every=every)
    if args.workload == "simplex":
        lp = W.feasible_lp(size, size, seed=args.seed)
        return lambda: simplex_workload(lp.A, lp.b, lp.c)
    # matvec
    A = rng.integers(-3, 4, size=(size, size)).astype(np.float64)
    x = rng.integers(-3, 4, size=size).astype(np.float64)
    return lambda: matvec_workload(A, x)


def _cmd_faults(args: argparse.Namespace) -> int:
    from .faults import CheckpointStore, FaultPlan, run_resilient

    make = _fault_workload(args)

    # Fault-free dry run: the baseline result and the fault horizon.
    dry = Session(args.n, args.cost_model)
    baseline = make()(dry, CheckpointStore(dry))
    horizon = args.at * max(dry.time, 1.0)

    if args.fault_plan:
        plan = FaultPlan.from_json(args.fault_plan)
    else:
        plan = FaultPlan.random(
            args.n,
            seed=args.fault_seed,
            horizon=horizon,
            link_kills=args.link_kills,
            node_kills=args.node_kills,
            drops=args.drops,
        )
    from .faults import CheckpointPolicy

    policy = CheckpointPolicy(
        strategy=args.checkpoint_strategy, every=args.checkpoint_every
    )
    session = Session(
        args.n, args.cost_model, faults=plan, trace=bool(args.trace_out)
    )
    report = run_resilient(
        session, make(), max_recoveries=args.max_recoveries, policy=policy
    )
    matches = bool(
        report.recovered
        and report.result is not None
        and np.array_equal(np.asarray(report.result), np.asarray(baseline))
    )
    if args.trace_out:
        from .obs import to_chrome_trace

        to_chrome_trace(session.tracer, args.trace_out)

    st = report.stats
    data = {
        "workload": args.workload,
        "size": args.size,
        "p": 2 ** args.n,
        "final_p": report.final_p,
        "plan": plan.as_dict(),
        "recovered": report.recovered,
        "recoveries": report.recoveries,
        "promotions": report.promotions,
        "matches_baseline": matches,
        "stats": st.as_dict(),
        "checkpoint": report.checkpoint,
        "time": session.time,
        "fault_free_time": dry.time,
    }
    if report.error is not None:
        data["error"] = report.error
    if args.trace_out:
        data["trace_out"] = args.trace_out
    ck = report.checkpoint or {}
    lines = [
        f"workload '{args.workload}' ({args.size}x{args.size}) "
        f"on p={2 ** args.n} under {plan!r}",
        f"recovered        : {report.recovered} "
        f"({report.recoveries} recoveries, final p={report.final_p})",
        f"matches baseline : {matches}",
        f"kills            : {st.node_kills} node / {st.link_kills} link",
        f"drops / retries  : {st.drops} / {st.retries}",
        f"detour rounds    : {st.detour_rounds}",
        f"remapped arrays  : {st.remapped_arrays}",
        f"checkpointing    : {ck.get('strategy', '-')} "
        f"(every {ck.get('every', '-')}; {ck.get('saves', 0)} saves / "
        f"{ck.get('save_ticks', 0.0):,.0f} ticks, "
        f"{ck.get('restores', 0)} restores / "
        f"{ck.get('restore_ticks', 0.0):,.0f} ticks)",
        f"recovery ticks   : {st.recovery_ticks:,.0f}",
        f"simulated time   : {session.time:,.0f} ticks "
        f"(fault-free {dry.time:,.0f})",
    ]
    if report.promotions:
        lines.append(
            f"re-expansion     : {report.promotions} promotions "
            f"({st.node_heals} node / {st.link_heals} link heals)"
        )
    if report.error is not None:
        lines.append(f"last fault error : {report.error}")
    _emit(args, data, "\n".join(lines))
    return 0 if (report.recovered and matches) else 1


def _cmd_abft(args: argparse.Namespace) -> int:
    from .abft import ABFTManager
    from .faults import CheckpointStore, FaultPlan, run_resilient

    make = _fault_workload(args)

    # Fault-free dry run with ABFT *off*: the bit-exact baseline and the
    # corruption horizon.  Recovery must reproduce this result exactly.
    dry = Session(args.n, args.cost_model)
    baseline = make()(dry, CheckpointStore(dry))
    horizon = args.at * max(dry.time, 1.0)

    if args.fault_plan:
        plan = FaultPlan.from_json(args.fault_plan)
    else:
        plan = FaultPlan.random(
            args.n,
            seed=args.fault_seed,
            horizon=horizon,
            link_kills=0,
            node_kills=0,
            drops=0,
            bit_flips=args.bit_flips,
            link_corruptions=args.link_corruptions,
        )
    manager = ABFTManager(scrub_interval=args.scrub_interval)
    session = Session(
        args.n,
        args.cost_model,
        faults=plan,
        abft=manager,
        trace=bool(args.trace_out),
    )
    report = run_resilient(
        session, make(), max_recoveries=args.max_recoveries
    )
    matches = bool(
        report.recovered
        and report.result is not None
        and np.array_equal(np.asarray(report.result), np.asarray(baseline))
    )
    if args.trace_out:
        from .obs import to_chrome_trace

        to_chrome_trace(session.tracer, args.trace_out)

    st = report.stats
    ab = manager.stats
    c = session.machine.counters
    overhead = session.time / dry.time if dry.time else float("nan")
    data = {
        "workload": args.workload,
        "size": args.size,
        "p": 2 ** args.n,
        "plan": plan.as_dict(),
        "recovered": report.recovered,
        "recoveries": report.recoveries,
        "matches_baseline": matches,
        "stats": st.as_dict(),
        "abft": dict(
            ab.as_dict(),
            detected=c.abft_detected,
            corrected=c.abft_corrected,
            recomputed=c.abft_recomputed,
        ),
        "time": session.time,
        "fault_free_time": dry.time,
        "overhead": overhead,
    }
    if report.error is not None:
        data["error"] = report.error
    if args.trace_out:
        data["trace_out"] = args.trace_out
    lines = [
        f"workload '{args.workload}' ({args.size}x{args.size}) "
        f"on p={2 ** args.n} under {plan!r}",
        f"recovered        : {report.recovered} "
        f"({report.recoveries} checkpoint replays)",
        f"matches baseline : {matches}",
        f"bit flips fired  : {st.bit_flips} stored / "
        f"{st.link_corruptions} in flight ({st.sdc_skipped} skipped)",
        f"abft             : {c.abft_detected} detected, "
        f"{c.abft_corrected} corrected, {ab.uncorrectable} escalated, "
        f"{ab.wire_retransmits} wire retransmits",
        f"protection       : {ab.protected} blocks protected, "
        f"{ab.verifies} verified, {ab.scrubs} scrubs",
        f"simulated time   : {session.time:,.0f} ticks "
        f"(fault-free {dry.time:,.0f}, overhead {overhead:.2f}x)",
    ]
    if report.error is not None:
        lines.append(f"last fault error : {report.error}")
    _emit(args, data, "\n".join(lines))
    return 0 if (report.recovered and matches) else 1


def _cmd_graph(args: argparse.Namespace) -> int:
    # Imports repro.sparse (via the graph module) only here: every other
    # subcommand stays sparse-free.
    from . import workloads as W
    from .algorithms import graph as G

    graph = W.random_graph(args.nodes, args.degree, seed=args.seed)
    session = Session(args.n, args.cost_model, **_obs_kwargs(args))

    def run():
        if args.algorithm == "bfs":
            return (
                G.bfs(session, graph, args.source),
                G.bfs_reference(graph, args.source),
            )
        if args.algorithm == "sssp":
            return (
                G.sssp(session, graph, args.source),
                G.sssp_reference(graph, args.source),
            )
        return (
            G.connected_components(session, graph),
            G.cc_reference(graph),
        )

    result, want = _profiled_run(session, run)
    matches = bool(np.array_equal(result.values, want))
    reached = int((result.values >= 0).sum()) if args.algorithm != "cc" else (
        args.nodes
    )
    data = {
        "algorithm": args.algorithm,
        "nodes": args.nodes,
        "edges": graph.n_edges,
        "source": args.source,
        "p": session.machine.p,
        "iterations": result.iterations,
        "reached": reached,
        "matches_reference": matches,
        "time": result.cost.time,
        "cost": result.cost.as_dict(),
    }
    lines = [
        f"{args.algorithm} on {args.nodes} vertices / {graph.n_edges} edges "
        f"(seed {args.seed}, p={session.machine.p})",
        f"iterations       : {result.iterations}",
        f"reached          : {reached}/{args.nodes} vertices"
        if args.algorithm != "cc"
        else f"components       : {len(np.unique(result.values))}",
        f"matches reference: {matches}",
        f"simulated time   : {result.cost.time:,.0f} ticks",
    ]
    if session.profiler is not None:
        lines += ["", session.profiler.format_table()]
    _emit(args, data, "\n".join(lines))
    return 0 if matches else 1


def _cmd_check(args: argparse.Namespace) -> int:
    from .check import golden, runner

    if args.update_golden:
        data = golden.update_golden()
        text_lines = [f"golden snapshots re-captured -> {golden.GOLDEN_PATH}"]
        for name, fields in sorted(data["workloads"].items()):
            text_lines.append(
                f"  {name:<10s} time={fields['time']:,.1f} "
                f"flops={fields['flops']:,.0f} "
                f"rounds={fields['comm_rounds']:.0f}"
            )
        _emit(args, data, "\n".join(text_lines))
        return 0

    report, passed = runner.run_check(
        seed=args.seed,
        n_dims=args.n,
        quick=args.quick,
        skip_differential=args.skip_differential,
        skip_golden=args.skip_golden,
    )
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")

    lines = [f"conformance check on n={args.n} (seed {args.seed})"]
    st = report["sanitizer_selftest"]
    lines.append(
        f"sanitizer selftest : {'PASS' if st['passed'] else 'FAIL'}"
    )
    if "differential" in report:
        diff = report["differential"]
        n_cells = len(diff["cells"])
        n_bad = len(diff["failures"])
        lines.append(
            f"differential sweep : "
            f"{'PASS' if diff['passed'] else 'FAIL'} "
            f"({n_cells - n_bad}/{n_cells} cells)"
        )
        for f in diff["failures"]:
            lines.append(f"  FAIL {f['case']} @ {f['config']}: {f['detail']}")
    if "golden" in report:
        g = report["golden"]
        lines.append(
            f"golden snapshots   : {'PASS' if g['passed'] else 'FAIL'} "
            f"({g['path']})"
        )
        if "error" in g:
            lines.append(f"  {g['error']}")
        for m in g["mismatches"]:
            lines.append(
                f"  {m['workload']}[sanitize={m['sanitize']}].{m['field']}: "
                f"expected {m['expected']!r}, observed {m['observed']!r}"
            )
    lines.append(f"overall            : {'PASS' if passed else 'FAIL'}")
    if args.out:
        lines.append(f"report written to  : {args.out}")
    _emit(args, report, "\n".join(lines))
    return 0 if passed else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    from .metrics import warehouse as wh

    out_dir = args.out or wh.default_warehouse_dir()
    runs_path = os.path.join(out_dir, wh.RUNS_FILE)
    baselines_path = args.baselines or os.path.join(
        out_dir, wh.BASELINES_FILE
    )
    try:
        if args.action == "run":
            table = wh.load_table(args.table)
            progress = None if args.json else print
            records = wh.run_table(
                table, validate=args.validate, reps=args.reps,
                progress=progress,
            )
            wh.append_records(records, runs_path)
            failed = [r for r in records if r["validated"] is False]
            data = {
                "table": args.table,
                "runs": len(records),
                "out": runs_path,
                "validated": args.validate,
                "failures": [
                    {"workload": r["workload"], "params": r["params"],
                     "detail": r["validate_detail"]}
                    for r in failed
                ],
                "records": records,
            }
            text = (
                f"{len(records)} runs appended to {runs_path}"
                + (f"; {len(failed)} VALIDATION FAILURES" if failed else "")
            )
            _emit(args, data, text)
            return 1 if failed else 0

        if args.action == "report":
            records = wh.load_records(runs_path)
            baselines = wh.load_baselines(baselines_path)
            report = wh.compare(
                records, baselines, wall_tolerance=args.wall_tolerance
            )
            lines = [
                f"warehouse  : {runs_path} ({len(records)} records)",
                f"baselines  : {baselines_path} "
                f"({len(baselines.get('entries', {}))} pins, "
                f"rev {baselines.get('git_rev', '?')})",
                f"compared   : {report['compared']}  "
                f"new: {len(report['new'])}  "
                f"missing: {len(report['missing'])}",
            ]
            for reg in report["regressions"]:
                lines.append(
                    f"REGRESSION [{reg['kind']}] {reg['label']}: "
                    f"{reg['observed']:,.6g} vs pinned "
                    f"{reg['pinned']:,.6g} ({reg['ratio']:.3f}x)"
                )
            for imp in report["improvements"]:
                lines.append(
                    f"improved [{imp['kind']}] {imp['label']}: "
                    f"{imp['observed']:,.6g} vs pinned {imp['pinned']:,.6g}"
                )
            lines.append("PASS" if report["passed"] else "FAIL")
            _emit(args, report, "\n".join(lines))
            return 0 if report["passed"] else 1

        if args.action == "pin":
            records = wh.load_records(runs_path)
            doc = wh.pin_baselines(records, baselines_path)
            data = {
                "baselines": baselines_path,
                "entries": len(doc["entries"]),
                "git_rev": doc["git_rev"],
            }
            _emit(
                args, data,
                f"pinned {len(doc['entries'])} baselines -> {baselines_path}",
            )
            return 0

        # action == "import": migrate the legacy BENCH_wallclock.json.
        legacy_path = args.legacy
        if legacy_path is None:
            repo_root = os.path.dirname(os.path.dirname(out_dir))
            legacy_path = os.path.join(repo_root, "BENCH_wallclock.json")
        records = wh.import_legacy(legacy_path)
        wh.append_records(records, runs_path)
        data = {"source": legacy_path, "records": len(records),
                "out": runs_path}
        _emit(
            args, data,
            f"imported {len(records)} legacy records from {legacy_path} "
            f"-> {runs_path}",
        )
        return 0
    except (ConfigError, FileNotFoundError) as exc:
        print(f"bench {args.action}: {exc}", file=sys.stderr)
        return 2


def _cmd_chaos(args: argparse.Namespace) -> int:
    import time as _walltime

    from .faults import chaos

    try:
        sizes = tuple(int(s) for s in args.sizes.split(",") if s.strip())
    except ValueError:
        raise ConfigError(
            f"--sizes must be comma-separated integers, got {args.sizes!r}"
        ) from None
    if not sizes:
        raise ConfigError("--sizes must name at least one matrix size")
    workload_pool = tuple(
        w.strip() for w in args.workloads.split(",") if w.strip()
    )
    if not workload_pool:
        raise ConfigError("--workloads must name at least one workload")
    strategy_pool = tuple(
        s.strip() for s in args.checkpoint_strategy.split(",") if s.strip()
    )
    if not strategy_pool:
        raise ConfigError(
            "--checkpoint-strategy must name at least one strategy"
        )
    progress = None if args.json else print

    t0 = _walltime.perf_counter()
    report = chaos.run_campaign(
        args.schedules,
        master_seed=args.seed,
        n_dims=args.n,
        sizes=sizes,
        workloads=workload_pool,
        shrink=not args.no_shrink,
        artifact_dir=args.artifact_dir,
        progress=progress,
        strategies=strategy_pool,
        checkpoint_schedules=args.checkpoint_schedules,
        checkpoint_every=args.checkpoint_every,
    )
    campaign_wall = _walltime.perf_counter() - t0

    t0 = _walltime.perf_counter()
    straggler = chaos.straggler_experiment(n_dims=args.n)
    straggler_wall = _walltime.perf_counter() - t0

    report["wall_s"] = campaign_wall
    report["straggler"] = straggler

    if args.out:
        out_dir = os.path.dirname(os.path.abspath(args.out))
        os.makedirs(out_dir, exist_ok=True)
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")

    if not args.no_warehouse:
        from .metrics import warehouse as wh

        warehouse_dir = args.warehouse or wh.default_warehouse_dir()
        runs_path = os.path.join(warehouse_dir, wh.RUNS_FILE)
        wh.append_records(
            [
                chaos.campaign_record(report, campaign_wall),
                chaos.straggler_record(straggler, straggler_wall),
            ],
            runs_path,
        )
        report["warehouse"] = runs_path

    gray = report["gray"]
    lines = [
        f"chaos campaign   : {report['schedules']} schedules on "
        f"p={2 ** args.n} (seed {args.seed}, sizes {sizes})",
        f"result           : {report['ok']} ok / {report['failed']} failed "
        f"({report['recoveries']} recoveries, "
        f"{report['promotions']} promotions, "
        f"{report['total_fault_events']} fault events)",
        f"checkpointing    : strategies "
        f"{dict(sorted(report['strategies'].items()))}",
        f"gray faults      : {gray['link_slows']} slow links, "
        f"{gray['node_slows']} slow nodes, {gray['flaky_links']} flaky "
        f"links / {gray['flaky_drops']} drops, "
        f"{gray['hedged_retransmits']} hedged, "
        f"{gray['straggler_detours']} detours, "
        f"{gray['gray_recoveries']} recoveries",
        f"straggler expt   : {straggler['tick_reduction']:.1%} tick "
        f"reduction with avoidance on "
        f"({straggler['ticks_avoidance_off']:,.0f} -> "
        f"{straggler['ticks_avoidance_on']:,.0f} ticks, "
        f"{straggler['straggler_detours']} detours)",
        f"wall time        : {campaign_wall:.1f}s",
    ]
    for failure in report["failures"]:
        sched = failure["schedule"]
        line = (
            f"FAIL #{sched['index']}     : {sched['workload']}/"
            f"{sched['size']} seed={sched['seed']}: "
            f"{failure['outcome']['error']}"
        )
        if "minimized_path" in failure:
            line += f" (minimized: {failure['minimized_path']})"
        lines.append(line)
    if "warehouse" in report:
        lines.append(f"warehouse        : {report['warehouse']}")
    _emit(args, report, "\n".join(lines))
    return 0 if report["failed"] == 0 else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Four Vector-Matrix Primitives (SPAA 1989) reproduction",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    def add_machine_args(p):
        p.add_argument("-n", type=int, default=8,
                       help="cube dimensions (p = 2^n; default 8)")
        p.add_argument("--cost-model", default="cm2",
                       choices=["cm2", "unit", "latency_bound",
                                "bandwidth_bound"])
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--json", action="store_true",
                       help="emit a machine-readable JSON summary")

    def add_obs_args(p):
        p.add_argument(
            "--sanitize", action="store_true",
            help="attach the machine sanitizer (audits accounting "
                 "invariants at every charged operation)")
        p.add_argument(
            "--sample-every", type=int, default=1, metavar="K",
            help="with --sanitize, audit every K-th charged round "
                 "(default 1 = every round)")
        p.add_argument(
            "--profile", action="store_true",
            help="attach the phase profiler and print the host "
                 "wall-clock attribution table")

    def add_fault_args(p):
        p.add_argument(
            "--fault-seed", type=int, default=None,
            help="inject seeded non-fatal faults (link kills + drops)")
        p.add_argument(
            "--fault-rate", type=float, default=1.0,
            help="scale the number of injected faults (default 1.0)")
        p.add_argument(
            "--sdc-rate", type=float, default=0.0,
            help="also inject silent data corruption (bit flips at rest "
                 "+ in flight) scaled by this rate (default 0.0)")
        p.add_argument(
            "--fault-plan", default=None, metavar="FILE",
            help="replay a recorded JSON fault plan instead of a "
                 "seeded random one")
        p.add_argument(
            "--abft", action="store_true",
            help="attach the ABFT checksum layer (detects and corrects "
                 "silent data corruption)")

    p_info = sub.add_parser("info", help="machine summary")
    add_machine_args(p_info)
    p_info.set_defaults(fn=_cmd_info)

    p_demo = sub.add_parser("demo", help="run the four primitives")
    add_machine_args(p_demo)
    add_fault_args(p_demo)
    add_obs_args(p_demo)
    p_demo.add_argument("--rows", type=int, default=96)
    p_demo.add_argument("--cols", type=int, default=64)
    p_demo.set_defaults(fn=_cmd_demo)

    p_solve = sub.add_parser("solve", help="solve a random dense system")
    add_machine_args(p_solve)
    add_fault_args(p_solve)
    add_obs_args(p_solve)
    p_solve.add_argument("--size", type=int, default=64)
    p_solve.add_argument("--pivoting", default="partial",
                         choices=["partial", "implicit", "none"])
    p_solve.set_defaults(fn=_cmd_solve)

    p_trace = sub.add_parser(
        "trace", help="run a workload with tracing and export a Chrome trace"
    )
    add_machine_args(p_trace)
    add_fault_args(p_trace)
    add_obs_args(p_trace)
    p_trace.add_argument("--workload", default="demo",
                         choices=["demo", "solve"])
    p_trace.add_argument("--rows", type=int, default=96)
    p_trace.add_argument("--cols", type=int, default=64)
    p_trace.add_argument("--size", type=int, default=64)
    p_trace.add_argument("--pivoting", default="partial",
                         choices=["partial", "implicit", "none"])
    p_trace.add_argument("--out", default="trace.json",
                         help="Chrome trace-event output path")
    p_trace.add_argument("--jsonl", default=None,
                         help="also write a JSONL structured event log here")
    p_trace.add_argument("--metrics-jsonl", default=None, metavar="FILE",
                         help="attach the metrics registry and write its "
                              "snapshot history (JSONL) here; the Chrome "
                              "trace gains per-subsystem counter tracks")
    p_trace.set_defaults(fn=_cmd_trace)

    p_faults = sub.add_parser(
        "faults",
        help="run a workload under seeded faults and verify recovery",
    )
    add_machine_args(p_faults)
    p_faults.add_argument("--workload", default="gaussian",
                          choices=["gaussian", "simplex", "matvec"])
    p_faults.add_argument("--size", type=int, default=16)
    p_faults.add_argument("--fault-seed", type=int, default=0,
                          help="seed for the random fault plan")
    p_faults.add_argument("--node-kills", type=int, default=1)
    p_faults.add_argument("--link-kills", type=int, default=1)
    p_faults.add_argument("--drops", type=int, default=2)
    p_faults.add_argument("--max-recoveries", type=int, default=2)
    p_faults.add_argument("--at", type=float, default=0.6,
                          help="fault horizon as a fraction of the "
                               "fault-free runtime (default 0.6)")
    p_faults.add_argument("--trace-out", default=None,
                          help="also write a Chrome trace-event file here")
    p_faults.add_argument("--fault-plan", default=None, metavar="FILE",
                          help="replay a recorded JSON fault plan instead "
                               "of a seeded random one")
    p_faults.add_argument("--checkpoint-strategy", default="host",
                          choices=["host", "diskless", "incremental"],
                          help="checkpoint cost model: host gather "
                               "(default), diskless in-cube mirror+parity, "
                               "or incremental dirty-block deltas")
    p_faults.add_argument("--checkpoint-every", type=int, default=4,
                          help="checkpoint cadence in elimination steps "
                               "(gaussian workload only; default 4)")
    p_faults.set_defaults(fn=_cmd_faults)

    p_abft = sub.add_parser(
        "abft",
        help="inject silent data corruption and verify checksum recovery",
    )
    add_machine_args(p_abft)
    p_abft.add_argument("--workload", default="gaussian",
                        choices=["gaussian", "simplex", "matvec"])
    p_abft.add_argument("--size", type=int, default=16)
    p_abft.add_argument("--fault-seed", type=int, default=0,
                        help="seed for the random corruption plan")
    p_abft.add_argument("--bit-flips", type=int, default=2,
                        help="stored-element bit flips to inject (default 2)")
    p_abft.add_argument("--link-corruptions", type=int, default=1,
                        help="in-flight bit flips to inject (default 1)")
    p_abft.add_argument("--scrub-interval", type=int, default=16,
                        help="scrub the registry every N protections "
                             "(0 disables; default 16)")
    p_abft.add_argument("--max-recoveries", type=int, default=2)
    p_abft.add_argument("--at", type=float, default=0.6,
                        help="corruption horizon as a fraction of the "
                             "fault-free runtime (default 0.6)")
    p_abft.add_argument("--fault-plan", default=None, metavar="FILE",
                        help="replay a recorded JSON fault plan instead "
                             "of a seeded random one")
    p_abft.add_argument("--trace-out", default=None,
                        help="also write a Chrome trace-event file here")
    p_abft.set_defaults(fn=_cmd_abft)

    p_graph = sub.add_parser(
        "graph",
        help="run a sparse graph algorithm (semiring SpMV) and verify "
             "against the serial reference",
    )
    add_machine_args(p_graph)
    add_obs_args(p_graph)
    p_graph.add_argument("--algorithm", default="bfs",
                         choices=["bfs", "sssp", "cc"])
    p_graph.add_argument("--nodes", type=int, default=64,
                         help="vertex count of the seeded random graph "
                              "(default 64)")
    p_graph.add_argument("--degree", type=float, default=3.0,
                         help="target average degree (default 3.0)")
    p_graph.add_argument("--source", type=int, default=0,
                         help="source vertex for bfs/sssp (default 0)")
    p_graph.set_defaults(fn=_cmd_graph)

    p_check = sub.add_parser(
        "check",
        help="run the conformance suite (sanitizer / oracle / golden)",
    )
    p_check.add_argument("-n", type=int, default=4,
                         help="cube dimensions for the oracle sweep "
                              "(default 4)")
    p_check.add_argument("--seed", type=int, default=0)
    p_check.add_argument("--json", action="store_true",
                         help="emit the full JSON report on stdout")
    p_check.add_argument("--quick", action="store_true",
                         help="reduced config matrix (2 cells per case)")
    p_check.add_argument("--skip-differential", action="store_true")
    p_check.add_argument("--skip-golden", action="store_true")
    p_check.add_argument("--out", default=None,
                         help="also write the JSON report to this path")
    p_check.add_argument("--update-golden", action="store_true",
                         help="re-capture the golden cost snapshots and exit")
    p_check.set_defaults(fn=_cmd_check)

    p_bench = sub.add_parser(
        "bench",
        help="experiment warehouse: declarative run tables, JSONL "
             "history, baseline pinning and the regression gate",
    )
    p_bench.add_argument(
        "action", nargs="?", default="run",
        choices=["run", "report", "pin", "import"],
        help="run a table (default), compare vs pinned baselines, "
             "pin the latest records, or import BENCH_wallclock.json")
    p_bench.add_argument(
        "--table", default="smoke",
        help="built-in run table (smoke, full) or a JSON run-table file")
    p_bench.add_argument(
        "--out", default=None, metavar="DIR",
        help="warehouse directory (default benchmarks/warehouse)")
    p_bench.add_argument(
        "--reps", type=int, default=None,
        help="override every spec's timed repetitions")
    p_bench.add_argument(
        "--validate", action="store_true",
        help="check every run's result against its NumPy reference")
    p_bench.add_argument(
        "--baselines", default=None, metavar="FILE",
        help="baselines file for report/pin "
             "(default <warehouse>/baselines.json)")
    p_bench.add_argument(
        "--wall-tolerance", type=float, default=None, metavar="FRAC",
        help="also gate wall seconds at +FRAC relative slack (default: "
             "report-only; simulated ticks always gate)")
    p_bench.add_argument(
        "--legacy", default=None, metavar="FILE",
        help="legacy BENCH_wallclock.json for import "
             "(default: repo root)")
    p_bench.add_argument("--json", action="store_true",
                         help="emit a machine-readable JSON summary")
    p_bench.set_defaults(fn=_cmd_bench)

    p_chaos = sub.add_parser(
        "chaos",
        help="randomized fault campaigns: seeded schedules across "
             "workloads, flags and all fault types, checked against "
             "fault-free baselines; failures shrink to minimal "
             "replayable plans",
    )
    p_chaos.add_argument("-n", type=int, default=4,
                         help="cube dimensions (p = 2^n; default 4)")
    p_chaos.add_argument("--seed", type=int, default=0,
                         help="campaign master seed (default 0)")
    p_chaos.add_argument(
        "--schedules", type=int, default=200,
        help="number of independent seeded schedules (default 200)")
    p_chaos.add_argument(
        "--sizes", default="8,12,16", metavar="N,N,...",
        help="comma-separated matrix sizes to draw from (default 8,12,16)")
    p_chaos.add_argument(
        "--workloads", default="gaussian,simplex,matvec,bfs",
        metavar="W,W,...",
        help="comma-separated workload pool to draw from "
             "(default gaussian,simplex,matvec,bfs)")
    p_chaos.add_argument(
        "--artifact-dir", default="chaos-artifacts", metavar="DIR",
        help="directory for minimized failing plans (created up front; "
             "default chaos-artifacts)")
    p_chaos.add_argument(
        "--out", default=None, metavar="FILE",
        help="also write the full campaign report as JSON to FILE")
    p_chaos.add_argument(
        "--no-shrink", action="store_true",
        help="skip delta-debugging minimization of failing plans")
    p_chaos.add_argument(
        "--no-warehouse", action="store_true",
        help="do not append campaign records to the bench warehouse")
    p_chaos.add_argument(
        "--warehouse", default=None, metavar="DIR",
        help="warehouse directory for campaign records "
             "(default benchmarks/warehouse)")
    p_chaos.add_argument(
        "--checkpoint-strategy", default="host,diskless,incremental",
        metavar="S,S,...",
        help="comma-separated checkpoint strategies the schedules draw "
             "from (default host,diskless,incremental)")
    p_chaos.add_argument(
        "--checkpoint-every", type=int, default=None,
        help="fix the checkpoint cadence instead of drawing it per "
             "schedule")
    p_chaos.add_argument(
        "--checkpoint-schedules", type=int, default=0,
        help="append this many adversarial mid-save/mid-restore kill "
             "schedules after the random ones (default 0)")
    p_chaos.add_argument("--json", action="store_true",
                         help="emit a machine-readable JSON summary")
    p_chaos.set_defaults(fn=_cmd_chaos)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ConfigError as exc:
        print(f"{args.command}: {exc}", file=sys.stderr)
        return 2
    except CorruptionError as exc:
        # Multi-element corruption with no checkpoint to replay from:
        # surface it as a clean failure rather than a traceback.
        print(f"uncorrectable silent data corruption: {exc}",
              file=sys.stderr)
        print("(this subcommand has no checkpoint recovery — see "
              "'repro abft' for resilient SDC runs)", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
