"""Timing parameters for the simulated hypercube multiprocessor.

The paper reports Connection Machine (CM-2) timings.  We do not have that
hardware, so every operation executed on the simulated machine is charged
simulated time from a :class:`CostModel`.  The model follows the cost
structure used throughout the hypercube literature the paper builds on
(Johnsson & Ho's dimension-exchange analyses):

* every communication round along one cube dimension pays a fixed start-up
  ``tau`` plus ``t_c`` per element transferred per hop,
* every elementwise arithmetic step pays ``t_a`` per element,
* local data rearrangement (copies, packing) pays ``t_m`` per element.

All times are in abstract "ticks".  The :meth:`CostModel.cm2` preset scales
the parameters so that their *ratios* match published CM-2 characteristics
(router start-up much larger than per-element transfer, transfer a few times
an ALU op); the :meth:`CostModel.unit` preset sets every parameter to one,
which makes simulated time equal to a raw operation count and is convenient
in tests that verify complexity formulas.
"""

from __future__ import annotations

from dataclasses import dataclass
from ..errors import ConfigError


@dataclass(frozen=True)
class CostModel:
    """Charging rates for the simulated machine.

    Attributes
    ----------
    tau:
        Start-up ("latency") cost of one communication round along one cube
        dimension.  Charged once per round regardless of volume.
    t_c:
        Transfer cost per element per hop (link bandwidth reciprocal).
    t_a:
        Arithmetic cost per element for one elementwise operation.
    t_m:
        Local memory-move cost per element (packing, masking, copies).
    """

    tau: float = 1.0
    t_c: float = 1.0
    t_a: float = 1.0
    t_m: float = 1.0

    def __post_init__(self) -> None:
        for name in ("tau", "t_c", "t_a", "t_m"):
            value = getattr(self, name)
            if value < 0:
                raise ConfigError(f"cost parameter {name!r} must be >= 0, got {value}")

    @classmethod
    def unit(cls) -> "CostModel":
        """All parameters equal to one: simulated time == operation count."""
        return cls(tau=1.0, t_c=1.0, t_a=1.0, t_m=1.0)

    @classmethod
    def cm2(cls) -> "CostModel":
        """CM-2-flavoured parameters (ratios, not absolute microseconds).

        The CM-2's router start-up dominated small transfers by two to three
        orders of magnitude over a single-element ALU operation, and a
        per-element single-precision transfer cost a handful of ALU ops.
        These ratios — not absolute wall-clock values — are what determine
        every comparison the paper makes (tree vs. serial collectives,
        primitive vs. naive applications, the ``m > p lg p`` crossover), so
        they are the calibration target.
        """
        return cls(tau=320.0, t_c=4.0, t_a=1.0, t_m=0.5)

    @classmethod
    def latency_bound(cls) -> "CostModel":
        """A network with extreme start-up cost; stresses round counting."""
        return cls(tau=5000.0, t_c=1.0, t_a=1.0, t_m=0.25)

    @classmethod
    def bandwidth_bound(cls) -> "CostModel":
        """A network where volume dominates; stresses transfer counting."""
        return cls(tau=10.0, t_c=50.0, t_a=1.0, t_m=0.5)

    def comm_round(self, elements_per_hop: float, hops: int = 1) -> float:
        """Time of one communication round moving ``elements_per_hop`` each hop."""
        if hops < 0:
            raise ConfigError("hops must be >= 0")
        if hops == 0:
            return 0.0
        return hops * (self.tau + self.t_c * elements_per_hop)

    def arithmetic(self, elements: float) -> float:
        """Time of one elementwise arithmetic pass over ``elements`` items."""
        return self.t_a * elements

    def memory(self, elements: float) -> float:
        """Time of one local move/pack pass over ``elements`` items."""
        return self.t_m * elements
