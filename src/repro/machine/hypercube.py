"""The simulated Boolean-cube (hypercube) SIMD multiprocessor.

This is the stand-in for the Connection Machine of the paper: ``p = 2**n``
processors, each with local memory, connected so that processors whose
binary addresses differ in exactly one bit are neighbours.  The machine is
synchronous and SIMD: one instruction stream drives all processors, and the
simulated time of an instruction is its *per-processor* cost.

Functionally the whole machine is a set of NumPy arrays with the processor
index on axis 0; the single communication primitive — a full exchange along
one cube dimension — is an XOR permutation of that axis.  All collective
operations (``repro.comm``) are built from this primitive, so their charged
costs emerge from the actual sequence of rounds they execute rather than
from closed-form formulas (the closed forms live in ``repro.analysis`` and
are validated *against* the simulator in the tests).
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Sequence, Tuple

import contextlib

import numpy as np

from ..errors import ConfigError, NodeKilledError, ShapeError, UnroutableError
from .cost_model import CostModel
from .counters import Counters, CostSnapshot
from .plans import PlanCache
from .pvar import PVar


class Hypercube:
    """A ``2**n``-processor Boolean cube with cost accounting.

    Parameters
    ----------
    n:
        Number of cube dimensions; the machine has ``p = 2**n`` processors.
    cost_model:
        Charging rates; defaults to :meth:`CostModel.cm2`.
    plan_cache:
        Whether the communication plan cache (``self.plans``) is enabled.
        ``None`` (default) follows the ``REPRO_PLAN_CACHE`` environment
        variable (on unless set false-y).  The cache never changes charged
        costs — see :mod:`repro.machine.plans`.
    counters:
        An existing :class:`Counters` to charge into.  Used by degraded-mode
        recovery (:meth:`repro.core.session.Session.degrade`) so a
        replacement sub-machine keeps accumulating on the same simulated
        clock; a fresh machine gets fresh counters.
    """

    #: Number of batched simulation lanes, or ``None`` for the ordinary
    #: scalar machine.  When set (see :mod:`repro.batch`), every PVar
    #: carries a trailing run axis of this extent and charge volumes are
    #: per-lane; the scalar machine pays one attribute read per site.
    n_runs: Optional[int] = None

    def __init__(
        self,
        n: int,
        cost_model: Optional[CostModel] = None,
        plan_cache: Optional[bool] = None,
        counters: Optional[Counters] = None,
    ) -> None:
        if n < 0:
            raise ConfigError(f"cube dimension must be >= 0, got {n}")
        if n > 24:
            raise ConfigError(f"cube dimension {n} too large to simulate")
        self.n = n
        self.p = 1 << n
        self.cost_model = cost_model if cost_model is not None else CostModel.cm2()
        self.counters = counters if counters is not None else Counters()
        # Observability: ``None`` (the default) is the null tracer — every
        # instrumented site pays exactly one ``is None`` branch and charges
        # nothing, so cost totals are bit-identical traced or not.
        self.tracer = None
        # Conformance checking: ``None`` (the default) is the null
        # sanitizer, same contract as the tracer — one ``is None`` branch
        # per instrumented site, zero charges, bit-identical costs on/off.
        self.sanitizer = None
        # Data integrity: ``None`` (the default) means no checksum layer —
        # the ABFT manager (repro.abft) is attached explicitly and pays its
        # charges openly; a machine without it never imports the module.
        self.abft = None
        # Metrics + profiling (repro.metrics): same null contract — a
        # machine without them pays one ``is None`` branch per phase
        # boundary and never imports the module.
        self.metrics = None
        self.profiler = None
        # Fault state.  ``epoch`` counts topology changes: every permanent
        # fault bumps it, and the plan cache folds it into every key, so a
        # plan derived on one topology can never replay on another.  The
        # health masks stay ``None`` until the first fault so the healthy
        # path allocates and checks nothing.
        self.epoch = 0
        self.faults = None  # attached repro.faults.FaultInjector, if any
        self.node_ok: Optional[np.ndarray] = None  # (p,) bool; None = all up
        self.link_ok: Optional[np.ndarray] = None  # (n, p) bool; None = all up
        self._n_dead_nodes = 0
        self._dead_links_by_dim: dict = {}  # dim -> sorted list of low pids
        # Gray-failure state: degraded-but-alive components.  A slow link
        # or node stretches charged round time without changing element or
        # round counts; both dicts stay empty on healthy machines so the
        # hot paths pay nothing.
        self._slow_links_by_dim: dict = {}  # dim -> {low pid: factor}
        self._slow_nodes: dict = {}  # pid -> factor
        self._node_slow_max = 1.0  # max(self._slow_nodes.values(), 1.0)
        # Per-machine plan cache: a fresh machine (or cost model) gets a
        # fresh empty cache, so plans can never leak across machines.
        self.plans = PlanCache(self, enabled=plan_cache)
        self._pids = np.arange(self.p, dtype=np.int64)
        # Neighbour permutations per dimension, precomputed once.
        self._neighbor = [self._pids ^ (1 << d) for d in range(n)]
        self._detour_memo: dict = {}  # exchange-detour dim per faulted dim
        # Per-volume cost memos.  CostModel is frozen, so each rate is a
        # pure function of the volume; caching returns the *same float* the
        # direct call would, keeping charged time bit-identical.
        self._round_cost: dict = {}
        self._flop_cost: dict = {}
        self._move_cost: dict = {}
        # SIMD activity-context stack (the CM's context flags): masks are
        # per-processor booleans; nested contexts AND together.
        self._context_stack: list = []

    # -- observability ---------------------------------------------------------

    def attach_tracer(self, tracer: Any) -> Any:
        """Attach an :class:`repro.obs.Tracer` (returns it for chaining).

        The tracer observes charges, spans and routing rounds; it never
        charges the machine itself.  Pass ``None`` to detach.
        """
        if tracer is not None:
            tracer.bind(self)
        self.tracer = tracer
        return tracer

    def attach_sanitizer(self, sanitizer: Any) -> Any:
        """Attach a :class:`repro.check.MachineSanitizer` (returns it).

        The sanitizer audits conservation/accounting invariants at every
        charged operation; it never charges the machine itself, so costs
        stay bit-identical sanitized or not.  Pass ``None`` to detach.
        """
        if sanitizer is not None:
            sanitizer.bind(self)
        self.sanitizer = sanitizer
        return sanitizer

    def attach_abft(self, manager: Any) -> Any:
        """Attach a :class:`repro.abft.ABFTManager` (returns it).

        The manager maintains row+column checksum panels for every
        checksum-embedded array, charging maintenance and verification
        honestly on the simulated clock.  With it attached, every full
        exchange also carries one checksum word per block (wire
        protection).  Pass ``None`` to detach.
        """
        if manager is not None:
            manager.bind(self)
        self.abft = manager
        return manager

    def attach_metrics(self, registry: Any) -> Any:
        """Attach a :class:`repro.metrics.MetricsRegistry` (returns it).

        The registry snapshots subsystem counters on phase exits and never
        charges the machine.  Pass ``None`` to detach.
        """
        if registry is not None:
            registry.bind(self)
        self.metrics = registry
        return registry

    def attach_profiler(self, profiler: Any) -> Any:
        """Attach a :class:`repro.metrics.PhaseProfiler` (returns it).

        The profiler attributes host wall-clock time over phase
        boundaries; attach it *after* the sanitizer so audit calls are
        wrapped (see :meth:`PhaseProfiler.bind`).  Pass ``None`` to detach.
        """
        if profiler is not None:
            profiler.bind(self)
        self.profiler = profiler
        return profiler

    # -- fault state -----------------------------------------------------------

    @property
    def faulty(self) -> bool:
        """True once any permanent fault (dead node or link) has landed."""
        return self._n_dead_nodes > 0 or bool(self._dead_links_by_dim)

    @property
    def gray_active(self) -> bool:
        """True while any gray degradation (slow link/node) is in force."""
        return bool(self._slow_links_by_dim) or bool(self._slow_nodes)

    def attach_faults(self, injector: Any) -> Any:
        """Attach a :class:`repro.faults.FaultInjector` (returns it).

        The injector is polled at every charged communication round and
        applies its scheduled fault events against the simulated clock.
        Pass ``None`` to detach.
        """
        if injector is not None:
            injector.bind(self)
        self.faults = injector
        return injector

    def bump_epoch(self) -> None:
        """Advance the topology epoch after a permanent fault.

        Every cached communication plan is keyed by the epoch at lookup
        time (see :class:`PlanCache`), so bumping it atomically invalidates
        all plans derived on the old topology; the explicit ``clear`` just
        frees the dead entries early.
        """
        old_epoch = self.epoch
        self.epoch += 1
        self.plans.clear()
        self._detour_memo.clear()
        sanitizer = self.sanitizer
        if sanitizer is not None:
            sanitizer.on_epoch_bump(self, old_epoch)

    def node_alive(self, pid: int) -> bool:
        return self.node_ok is None or bool(self.node_ok[pid])

    def link_alive(self, dim: int, pid: int) -> bool:
        """Whether ``pid``'s link across ``dim`` is healthy."""
        return self.link_ok is None or bool(self.link_ok[dim, pid])

    def alive_pids(self) -> np.ndarray:
        """Addresses of the processors still alive."""
        if self.node_ok is None:
            return self._pids
        return self._pids[self.node_ok]

    def kill_node(self, pid: int) -> bool:
        """Permanently kill processor ``pid``; returns False if already dead.

        A dead node makes SIMD collectives impossible: every subsequent
        charged communication round raises :class:`NodeKilledError` until
        the workload is remapped onto a healthy subcube (degraded mode).
        """
        if not (0 <= pid < self.p):
            raise ConfigError(f"pid {pid} out of range for p={self.p}")
        if self.node_ok is None:
            self.node_ok = np.ones(self.p, dtype=bool)
        if not self.node_ok[pid]:
            return False
        self.node_ok[pid] = False
        self._n_dead_nodes += 1
        # A dead node supersedes any gray straggler state it carried.
        if pid in self._slow_nodes:
            del self._slow_nodes[pid]
            self._node_slow_max = (
                max(self._slow_nodes.values()) if self._slow_nodes else 1.0
            )
        self.bump_epoch()
        tracer = self.tracer
        if tracer is not None:
            tracer.instant(f"kill_node:{pid}", "fault", pid=pid, epoch=self.epoch)
        return True

    def kill_link(self, dim: int, pid: int) -> bool:
        """Permanently kill the link across ``dim`` at ``pid`` (either end).

        Returns False if that link was already dead.  Structured exchanges
        along ``dim`` still complete — the two endpoints detour through an
        adjacent dimension — but each round pays two extra detour rounds
        (see ``docs/robustness.md`` for the cost model).
        """
        self._check_dim(dim)
        if not (0 <= pid < self.p):
            raise ConfigError(f"pid {pid} out of range for p={self.p}")
        bit = 1 << dim
        lo = min(pid, pid ^ bit)
        if self.link_ok is None:
            self.link_ok = np.ones((self.n, self.p), dtype=bool)
        if not self.link_ok[dim, lo]:
            return False
        self.link_ok[dim, lo] = False
        self.link_ok[dim, lo ^ bit] = False
        links = self._dead_links_by_dim.setdefault(dim, [])
        links.append(lo)
        links.sort()
        # A dead link supersedes any gray slowdown on the same link.
        slow = self._slow_links_by_dim.get(dim)
        if slow is not None:
            slow.pop(lo, None)
            if not slow:
                del self._slow_links_by_dim[dim]
        self.bump_epoch()
        tracer = self.tracer
        if tracer is not None:
            tracer.instant(
                f"kill_link:{dim}@{lo}", "fault", dim=dim, pid=lo, epoch=self.epoch
            )
        return True

    def revive_node(self, pid: int) -> bool:
        """Bring dead processor ``pid`` back (a heal/repair event).

        Returns False when the node is already alive.  Bumps the epoch —
        cached plans may embed routing choices that avoided the dead node.
        """
        if not (0 <= pid < self.p):
            raise ConfigError(f"pid {pid} out of range for p={self.p}")
        if self.node_ok is None or self.node_ok[pid]:
            return False
        self.node_ok[pid] = True
        self._n_dead_nodes -= 1
        self.bump_epoch()
        tracer = self.tracer
        if tracer is not None:
            tracer.instant(
                f"revive_node:{pid}", "fault", pid=pid, epoch=self.epoch
            )
        return True

    def revive_link(self, dim: int, pid: int) -> bool:
        """Bring the dead link across ``dim`` at ``pid`` back to service.

        Returns False when that link is already alive.  Subsequent rounds
        along ``dim`` stop paying the detour surcharge for this link.
        """
        self._check_dim(dim)
        if not (0 <= pid < self.p):
            raise ConfigError(f"pid {pid} out of range for p={self.p}")
        bit = 1 << dim
        lo = min(pid, pid ^ bit)
        if self.link_ok is None or self.link_ok[dim, lo]:
            return False
        self.link_ok[dim, lo] = True
        self.link_ok[dim, lo ^ bit] = True
        links = self._dead_links_by_dim.get(dim)
        if links is not None:
            if lo in links:
                links.remove(lo)
            if not links:
                del self._dead_links_by_dim[dim]
        self.bump_epoch()
        tracer = self.tracer
        if tracer is not None:
            tracer.instant(
                f"revive_link:{dim}@{lo}", "fault",
                dim=dim, pid=lo, epoch=self.epoch,
            )
        return True

    # -- gray (degraded-but-alive) state ---------------------------------------

    def slow_link(self, dim: int, pid: int, factor: float) -> bool:
        """Degrade the link across ``dim`` at ``pid`` by ``factor``.

        Rounds crossing the slow link pay ``factor`` times the healthy
        round latency (elements/rounds counters unchanged).  A repeat call
        overwrites the factor.  Returns False (no-op) when the link is
        already dead.  Bumps the epoch: cached plans may embed routing
        choices the new latency surface invalidates.
        """
        self._check_dim(dim)
        if not (0 <= pid < self.p):
            raise ConfigError(f"pid {pid} out of range for p={self.p}")
        if factor < 1.0:
            raise ConfigError(f"slow factor must be >= 1, got {factor}")
        lo = min(pid, pid ^ (1 << dim))
        if not self.link_alive(dim, lo):
            return False
        self._slow_links_by_dim.setdefault(dim, {})[lo] = float(factor)
        self.bump_epoch()
        tracer = self.tracer
        if tracer is not None:
            tracer.instant(
                f"slow_link:{dim}@{lo}", "fault",
                dim=dim, pid=lo, factor=factor, epoch=self.epoch,
            )
        return True

    def restore_link_speed(self, dim: int, pid: int) -> bool:
        """Recover a slow link to full speed; False if it was not slow."""
        self._check_dim(dim)
        lo = min(pid, pid ^ (1 << dim))
        slow = self._slow_links_by_dim.get(dim)
        if slow is None or lo not in slow:
            return False
        del slow[lo]
        if not slow:
            del self._slow_links_by_dim[dim]
        self.bump_epoch()
        tracer = self.tracer
        if tracer is not None:
            tracer.instant(
                f"restore_link:{dim}@{lo}", "fault",
                dim=dim, pid=lo, epoch=self.epoch,
            )
        return True

    def slow_node(self, pid: int, factor: float) -> bool:
        """Degrade processor ``pid`` into a straggler by ``factor``.

        Lockstep SIMD rounds wait for the slowest participant, so every
        structured round stretches by the worst straggler factor; router
        rounds stretch only where ``pid`` sends or receives.  Returns
        False (no-op) when the node is already dead.
        """
        if not (0 <= pid < self.p):
            raise ConfigError(f"pid {pid} out of range for p={self.p}")
        if factor < 1.0:
            raise ConfigError(f"slow factor must be >= 1, got {factor}")
        if not self.node_alive(pid):
            return False
        self._slow_nodes[pid] = float(factor)
        self._node_slow_max = max(self._slow_nodes.values())
        self.bump_epoch()
        tracer = self.tracer
        if tracer is not None:
            tracer.instant(
                f"slow_node:{pid}", "fault",
                pid=pid, factor=factor, epoch=self.epoch,
            )
        return True

    def restore_node_speed(self, pid: int) -> bool:
        """Recover a straggler node to full speed; False if it was not slow."""
        if pid not in self._slow_nodes:
            return False
        del self._slow_nodes[pid]
        self._node_slow_max = (
            max(self._slow_nodes.values()) if self._slow_nodes else 1.0
        )
        self.bump_epoch()
        tracer = self.tracer
        if tracer is not None:
            tracer.instant(
                f"restore_node:{pid}", "fault", pid=pid, epoch=self.epoch
            )
        return True

    def link_slow_factor(self, dim: int, pid: int) -> float:
        """The latency multiplier on ``pid``'s link across ``dim`` (1.0 = healthy)."""
        slow = self._slow_links_by_dim.get(dim)
        if slow is None:
            return 1.0
        return slow.get(min(pid, pid ^ (1 << dim)), 1.0)

    def node_slow_factor(self, pid: int) -> float:
        """The straggler multiplier of processor ``pid`` (1.0 = healthy)."""
        return self._slow_nodes.get(pid, 1.0)

    def round_stretch(self, dim: Optional[int]) -> float:
        """Lockstep stretch of one structured round (worst participant).

        Every processor participates in a structured SIMD round, so the
        round waits for the slowest node and — when ``dim`` is known — the
        slowest link along that dimension.  Dimensionless rounds stretch
        by node stragglers only (the traversed links are unknown).
        """
        stretch = self._node_slow_max
        if dim is not None:
            slow = self._slow_links_by_dim.get(dim)
            if slow:
                stretch = max(stretch, max(slow.values()))
        return stretch

    def _exchange_detour_dim(self, dim: int) -> int:
        """Detour dimension for structured exchanges across faulted ``dim``.

        Each dead link ``(dim, lo)`` must be bypassable by some adjacent
        dimension ``e``: the 3-hop path ``a -e-> a^e -dim-> b^e -e-> b``
        needs both intermediate nodes and all three substitute links alive.
        Every dead link may use its own ``e``; all detours proceed
        concurrently, so the surcharge is a flat two extra rounds.  Raises
        :class:`UnroutableError` when some dead link has no healthy detour.
        Returns the lowest detour dimension used (tracer attribution only).
        """
        memo_key = (self.epoch, dim)
        found = self._detour_memo.get(memo_key)
        if found is not None:
            return found
        bit = 1 << dim
        chosen = self.n
        for lo in self._dead_links_by_dim.get(dim, ()):
            a, b = lo, lo ^ bit
            for e in range(self.n):
                if e == dim:
                    continue
                ebit = 1 << e
                if (
                    self.node_alive(a ^ ebit)
                    and self.node_alive(b ^ ebit)
                    and self.link_alive(e, a)
                    and self.link_alive(dim, a ^ ebit)
                    and self.link_alive(e, b)
                ):
                    chosen = min(chosen, e)
                    break
            else:
                raise UnroutableError(
                    f"link (dim={dim}, pid={lo}) is dead and no adjacent "
                    f"dimension offers a healthy detour (epoch {self.epoch})"
                )
        self._detour_memo[memo_key] = chosen
        return chosen

    # -- identity ------------------------------------------------------------

    @property
    def dims(self) -> Tuple[int, ...]:
        """All cube dimension indices, lowest first."""
        return tuple(range(self.n))

    def pids(self) -> np.ndarray:
        """The processor addresses ``0 .. p-1`` (host-side view)."""
        return self._pids

    def self_address(self) -> PVar:
        """A PVar holding each processor's own address (free: wired in)."""
        return PVar(self, self._pids.copy())

    # -- PVar constructors -----------------------------------------------------

    def pvar(self, data: np.ndarray) -> PVar:
        """Wrap host data of shape ``(p, ...)`` as a processor variable.

        Loading data from the host is outside the timed computation (the
        paper's timings likewise exclude front-end I/O), so this is free.
        """
        data = np.asarray(data)
        if data.shape[0] != self.p:
            raise ShapeError(
                f"axis 0 must be the processor axis of extent {self.p}, "
                f"got shape {data.shape}"
            )
        return PVar(self, np.array(data))

    def full(self, local_shape: Sequence[int], value: Any, dtype: Any = None) -> PVar:
        shape = (self.p, *local_shape)
        return PVar(self, np.full(shape, value, dtype=dtype))

    def zeros(self, local_shape: Sequence[int] = (), dtype: Any = np.float64) -> PVar:
        return PVar(self, np.zeros((self.p, *local_shape), dtype=dtype))

    def ones(self, local_shape: Sequence[int] = (), dtype: Any = np.float64) -> PVar:
        return PVar(self, np.ones((self.p, *local_shape), dtype=dtype))

    # -- cost charging ---------------------------------------------------------

    def charge_flops(self, local_elements: float) -> None:
        """One SIMD arithmetic pass over ``local_elements`` items per processor."""
        time = self._flop_cost.get(local_elements)
        if time is None:
            time = self._flop_cost[local_elements] = self.cost_model.arithmetic(
                local_elements
            )
        self.counters.charge_flops(local_elements * self.p, time)
        sanitizer = self.sanitizer
        if sanitizer is not None:
            sanitizer.observe_charge(self)

    def charge_local(self, local_elements: float) -> None:
        """One SIMD local move/pack pass."""
        time = self._move_cost.get(local_elements)
        if time is None:
            time = self._move_cost[local_elements] = self.cost_model.memory(
                local_elements
            )
        self.counters.charge_local(local_elements * self.p, time)
        sanitizer = self.sanitizer
        if sanitizer is not None:
            sanitizer.observe_charge(self)

    def charge_comm_round(
        self,
        elements_per_processor: float,
        rounds: int = 1,
        dim: Optional[int] = None,
    ) -> None:
        """``rounds`` synchronous exchange rounds of the given volume each.

        ``dim`` (observability only) names the cube dimension the rounds
        traverse, when the caller knows it; the tracer files dimensionless
        rounds under ``-1``.

        On a healthy machine with no fault injector attached this is the
        single plain charge below — bit-identical to a build without the
        faults subsystem.  With faults, the injector is polled first (its
        scheduled events fire against the simulated clock), and transient
        drops / link detours surcharge honest extra rounds afterwards.
        """
        sanitizer = self.sanitizer
        # The audit wraps the dispatch (not the plain/faulty bodies), so a
        # broken override of either body — or a mis-charging test double —
        # is caught against the specification recomputed from the request.
        before = self.counters.snapshot() if sanitizer is not None else None
        if (
            self.faults is None
            and self.node_ok is None
            and self.link_ok is None
            and not self._slow_links_by_dim
            and not self._slow_nodes
        ):
            self._charge_comm_round_plain(elements_per_processor, rounds, dim)
        else:
            self._charge_comm_round_faulty(elements_per_processor, rounds, dim)
        if sanitizer is not None:
            sanitizer.audit_comm_round(
                self, elements_per_processor, rounds, dim, before
            )

    def _charge_comm_round_plain(
        self,
        elements_per_processor: float,
        rounds: int = 1,
        dim: Optional[int] = None,
    ) -> None:
        time = self._round_cost.get(elements_per_processor)
        if time is None:
            time = self._round_cost[elements_per_processor] = (
                self.cost_model.comm_round(elements_per_processor)
            )
        self.counters.charge_transfer(
            elements_per_processor * self.p * rounds, rounds, rounds * time
        )
        tracer = self.tracer
        if tracer is not None:
            tracer.on_comm_round(dim, elements_per_processor, rounds)

    def _charge_comm_round_faulty(
        self,
        elements_per_processor: float,
        rounds: int,
        dim: Optional[int],
    ) -> None:
        faults = self.faults
        if faults is not None:
            faults.poll()
        if self._n_dead_nodes:
            raise NodeKilledError(
                f"cannot run a SIMD communication round: {self._n_dead_nodes} of "
                f"{self.p} processors are dead (epoch {self.epoch})"
            )
        self._charge_comm_round_plain(elements_per_processor, rounds, dim)
        if self.gray_active:
            # Lockstep: each structured round waits for its slowest
            # participant.  The surcharge is pure simulated latency —
            # element and round counters describe the same traffic.
            stretch = self.round_stretch(dim)
            if stretch > 1.0:
                extra = (
                    (stretch - 1.0)
                    * self._round_cost[elements_per_processor]
                    * rounds
                )
                self.counters.charge_transfer(0.0, 0, extra)
                if faults is not None:
                    faults.on_gray_round(dim, rounds, extra)
        if dim is not None and dim in self._dead_links_by_dim:
            # Every dead link in ``dim`` detours through an adjacent
            # dimension: 3 hops instead of 1, so each original round costs
            # two extra rounds of the same volume (detours run concurrently).
            detour = self._exchange_detour_dim(dim)
            extra = 2 * rounds
            self._charge_comm_round_plain(elements_per_processor, extra, detour)
            if faults is not None:
                faults.stats.detour_rounds += extra
        if faults is not None:
            # Called for unlabelled rounds too: ABFT wire checksums detect
            # armed in-flight corruption on *any* charged round.
            faults.on_round(dim, elements_per_processor, rounds)

    @contextlib.contextmanager
    def phase(self, name: str) -> Iterator[None]:
        tracer = self.tracer
        profiler = self.profiler
        if profiler is not None:
            profiler.push(name)
        try:
            # Mirror the counters' re-entry rule: a nested phase of the same
            # name neither double-counts time nor opens a second span, so span
            # durations per phase sum exactly to ``phase_times``.
            if tracer is not None and name not in self.counters._phase_stack:
                with self.counters.phase(name), tracer.span(name, "phase"):
                    yield
            else:
                with self.counters.phase(name):
                    yield
        finally:
            if profiler is not None:
                profiler.pop()
            metrics = self.metrics
            if metrics is not None:
                metrics.on_phase_exit(name)

    # -- SIMD activity context (the CM's context flags) -----------------------

    @contextlib.contextmanager
    def where(self, mask: "PVar") -> Iterator[None]:
        """Restrict :meth:`PVar.assign` stores to processors where ``mask``.

        Models the Connection Machine's context flags: inside the block,
        every SIMD instruction still *executes* on all processors (charged
        identically — that is what SIMD means), but masked stores commit
        only on active ones.  Contexts nest by conjunction; entering a
        nested context charges one elementwise pass for the AND.
        """
        self._check_owned(mask)
        if mask.dtype != np.bool_:
            raise TypeError(f"context mask must be boolean, got {mask.dtype}")
        flat = mask.data
        if flat.ndim == 1:
            flat = flat[:, None]
        if self._context_stack:
            # broadcast-AND with the enclosing context
            combined = np.logical_and(self._context_stack[-1], flat)
            self.charge_flops(max(mask.local_size, 1))
        else:
            combined = flat
        self._context_stack.append(combined)
        try:
            yield
        finally:
            self._context_stack.pop()

    @property
    def active_mask(self) -> Optional[np.ndarray]:
        """The current activity mask (``None`` when all processors active)."""
        return self._context_stack[-1] if self._context_stack else None

    def snapshot(self) -> CostSnapshot:
        return self.counters.snapshot()

    def elapsed_since(self, start: CostSnapshot) -> CostSnapshot:
        return self.counters.snapshot() - start

    # -- communication primitive -----------------------------------------------

    def exchange(self, pvar: PVar, dim: int) -> PVar:
        """Full exchange along cube dimension ``dim``.

        Every processor sends its entire local block to its neighbour across
        ``dim`` and receives the neighbour's block; one communication round.
        """
        self._check_dim(dim)
        self._check_owned(pvar)
        # Capture the block before charging: the charge may poll the fault
        # injector, and a bit flip landing mid-round must corrupt *future*
        # reads (copy-on-corrupt), not the data already on the wire.
        src = pvar.data
        # With ABFT wire protection each block carries one checksum word.
        volume = pvar.local_size + 1 if self.abft is not None else pvar.local_size
        self.charge_comm_round(volume, dim=dim)
        out = PVar(self, src[self._neighbor[dim]])
        sanitizer = self.sanitizer
        if sanitizer is not None:
            # Audit against the captured block: a flip landing during the
            # charge replaces pvar.data, but what crossed the wire is src.
            sanitizer.audit_exchange(self, PVar(self, src), out, dim)
        faults = self.faults
        if faults is not None:
            # In-flight corruption is applied after the audit: the audit
            # checks the exchange wiring, not the wire's bit-exactness.
            out = faults.deliver(out, dim)
        return out

    def exchange_free(self, pvar: PVar, dim: int) -> PVar:
        """Neighbour view along ``dim`` without charging.

        Only for use inside collectives that charge a *partial* volume
        explicitly (e.g. recursive halving sends half the block per round);
        callers must pair this with an explicit :meth:`charge_comm_round`.
        """
        self._check_dim(dim)
        self._check_owned(pvar)
        return PVar(self, pvar.data[self._neighbor[dim]])

    # -- host access -------------------------------------------------------------

    def to_host(self, pvar: PVar) -> np.ndarray:
        """Read all processor memories into a host array (diagnostic; free).

        The paper's timings exclude front-end output, and all *algorithmic*
        uses of global values in this library go through charged collectives
        (e.g. ``comm.reduce_all`` followed by :meth:`read_scalar`).
        """
        self._check_owned(pvar)
        return pvar.data.copy()

    def read_scalar(self, pvar: PVar, pid: int = 0) -> Any:
        """Read one processor's (scalar) value to the host.

        Charged as a single start-up: the front-end fetches one value over
        the global bus, as when the CM host reads a reduction result.
        """
        self._check_owned(pvar)
        if not (0 <= pid < self.p):
            raise ConfigError(f"pid {pid} out of range for p={self.p}")
        time = self._round_cost.get(1)
        if time is None:
            time = self._round_cost[1] = self.cost_model.comm_round(1)
        self.counters.charge_transfer(1, 1, time)
        value = pvar.data[pid]
        if np.ndim(value) == 0:
            return value[()] if isinstance(value, np.ndarray) else value
        return value.copy()

    # -- validation ---------------------------------------------------------------

    def _check_dim(self, dim: int) -> None:
        if not (0 <= dim < self.n):
            raise ConfigError(f"cube dimension {dim} out of range for n={self.n}")

    def _check_owned(self, pvar: PVar) -> None:
        if pvar.machine is not self:
            raise ConfigError("PVar belongs to a different machine")

    def check_dims(self, dims: Sequence[int]) -> Tuple[int, ...]:
        """Validate a subcube dimension list (distinct, in range)."""
        dims = tuple(dims)
        seen = set()
        for d in dims:
            self._check_dim(d)
            if d in seen:
                raise ConfigError(f"duplicate cube dimension {d}")
            seen.add(d)
        return dims

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Hypercube(n={self.n}, p={self.p}, cost_model={self.cost_model})"
