"""Communication-plan cache: memoized remap/route/collective plans.

The iterative solvers (Gaussian elimination, simplex, Jacobi/CG) apply the
same ``extract`` / ``insert`` / ``remap`` communication patterns to the
*same* embedding pairs on every iteration, yet the simulator used to
re-derive the owner maps, message multisets and e-cube routing rounds from
scratch each time.  This module hoists that pattern computation out of the
inner loop, the way communication-avoiding frameworks do:

* :class:`PlanCache` — a bounded LRU attached to each :class:`~.hypercube.
  Hypercube` (``machine.plans``).  Entries are keyed by *embedding
  signatures* (value identities, not object identities), so two equal
  embeddings constructed in different iterations share one plan.
* :class:`RemapPlan` — the reusable part of one embedding change: the
  pack/unpack volumes plus the precomputed
  :class:`~.router.RouteStats` of the deduplicated message multiset.
* route-stats memoization — :meth:`~.router.Router.simulate` keys a digest
  of ``(src, dst, sizes)`` to its :class:`~.router.RouteStats`, so repeated
  identical h-relations charge in O(1).
* collective plans — ``comm.broadcast`` derives its root-processor map for
  a fixed ``(dims, root_rank)`` once and replays it.

**Hard invariant:** the cache accelerates *wall-clock* simulation only.
Simulated ticks and every :class:`~.counters.Counters` /
:class:`~.counters.CostSnapshot` value are bit-identical with the cache on
or off: cached plans replay exactly the charge sequence (same float
amounts, same order) that the uncached path would execute, and cached
functional results are exact copies of what the uncached data motion
produces.  ``tests/test_plan_cache.py`` pins this equivalence.

The cache is on by default; disable it with the environment variable
``REPRO_PLAN_CACHE=0`` (checked at machine construction) or per machine via
``Hypercube(n, plan_cache=False)`` / ``Session(n, plan_cache=False)``.
Hit/miss/eviction counts live on ``machine.counters`` (outside
:class:`~.counters.CostSnapshot`, which stays a pure cost record).
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Optional, TYPE_CHECKING

import numpy as np

from ..errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .hypercube import Hypercube
    from .router import RouteStats

#: Sentinel distinguishing "not cached" from a cached ``None`` payload.
MISSING = object()

#: Environment variable that disables the cache machine-wide when set to a
#: false-y value (``0``, ``off``, ``false``, ``no``).
ENV_FLAG = "REPRO_PLAN_CACHE"

#: Default bound on cached plans per machine.  Plans are small (index maps
#: and scalars), so the bound exists to keep pathological workloads that
#: sweep thousands of distinct embeddings from growing without limit.
DEFAULT_MAXSIZE = 512


def env_enabled() -> bool:
    """The process-wide default from ``REPRO_PLAN_CACHE`` (default: on)."""
    raw = os.environ.get(ENV_FLAG, "1").strip().lower()
    return raw not in ("0", "off", "false", "no")


def readonly(array: np.ndarray) -> np.ndarray:
    """Mark a cached array immutable so aliasing bugs fail loudly."""
    array = np.asarray(array)
    array.setflags(write=False)
    return array


@dataclass(frozen=True)
class RemapPlan:
    """One embedding change, reduced to its reusable charges.

    ``src_local`` / ``dst_local`` are the pack/unpack pass volumes;
    ``route`` is the precomputed e-cube :class:`~.router.RouteStats` of the
    deduplicated primary-to-primary message multiset (``None`` when no
    element changes processors, e.g. the relabelling transpose).
    """

    src_local: int
    dst_local: int
    route: Optional["RouteStats"]

    def charge(self, machine: "Hypercube") -> None:
        """Replay the uncached path's exact charge sequence."""
        machine.charge_local(self.src_local)
        charge_route(machine, self.route)
        machine.charge_local(self.dst_local)


def charge_route(machine: "Hypercube", stats: Optional["RouteStats"]) -> None:
    """Charge precomputed route stats exactly as ``Router.simulate`` would.

    ``Router.simulate`` ends in one ``charge_transfer(total_hops, rounds,
    total_time)`` call; replaying it with the stored floats is
    bit-identical to re-running the per-dimension routing loop.
    """
    if stats is not None:
        sanitizer = machine.sanitizer
        before = machine.counters.snapshot() if sanitizer is not None else None
        machine.counters.charge_transfer(
            stats.element_hops, stats.rounds, stats.time
        )
        tracer = machine.tracer
        if tracer is not None:
            tracer.on_route_replay(stats)
        if sanitizer is not None:
            sanitizer.audit_charge_route(machine, stats, before)


class PlanCache:
    """A bounded LRU of communication plans, bound to one machine.

    Keys are hashable signatures (embedding value identities, message-set
    digests, dimension tuples).  A new :class:`~.hypercube.Hypercube` gets
    a fresh empty cache, so plans can never leak across machines or cost
    models.  When ``enabled`` is false every lookup misses and every
    ``memo`` recomputes — the uncached code paths run exactly as before.
    """

    def __init__(
        self,
        machine: "Hypercube",
        maxsize: int = DEFAULT_MAXSIZE,
        enabled: Optional[bool] = None,
    ) -> None:
        if maxsize < 1:
            raise ConfigError(f"plan cache maxsize must be >= 1, got {maxsize}")
        self.machine = machine
        self.maxsize = maxsize
        self.enabled = env_enabled() if enabled is None else bool(enabled)
        self._store: "OrderedDict[Hashable, Any]" = OrderedDict()

    # -- bookkeeping ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._store)

    @property
    def hits(self) -> int:
        return self.machine.counters.plan_hits

    @property
    def misses(self) -> int:
        return self.machine.counters.plan_misses

    @property
    def evictions(self) -> int:
        return self.machine.counters.plan_evictions

    def clear(self) -> None:
        self._store.clear()

    # -- core operations ------------------------------------------------------

    def lookup(self, key: Hashable) -> Any:
        """The cached value for ``key``, or :data:`MISSING`.

        Disabled caches always miss (without counting a miss: nothing is
        being cached, so there is no statistic to report).

        Every key is silently namespaced by the machine's topology *epoch*
        (bumped on each permanent fault), so a plan derived on one topology
        can never replay on a machine whose links or nodes have since died.
        """
        if not self.enabled:
            return MISSING
        key = (self.machine.epoch, key)
        try:
            value = self._store[key]
        except KeyError:
            self.machine.counters.plan_misses += 1
            return MISSING
        self._store.move_to_end(key)
        self.machine.counters.plan_hits += 1
        sanitizer = self.machine.sanitizer
        if sanitizer is not None:
            sanitizer.on_plan_hit(self.machine, key, value)
        return value

    def store(self, key: Hashable, value: Any) -> Any:
        """Insert ``value`` under ``key`` (LRU-evicting past ``maxsize``).

        Keys are namespaced by the topology epoch exactly as in
        :meth:`lookup`.
        """
        if not self.enabled:
            return value
        key = (self.machine.epoch, key)
        self._store[key] = value
        self._store.move_to_end(key)
        sanitizer = self.machine.sanitizer
        if sanitizer is not None:
            sanitizer.on_plan_store(self.machine, key, value)
        while len(self._store) > self.maxsize:
            self._store.popitem(last=False)
            self.machine.counters.plan_evictions += 1
        return value

    def memo(self, key: Hashable, build: Callable[[], Any]) -> Any:
        """``build()`` once per key; recompute every call when disabled."""
        value = self.lookup(key)
        if value is MISSING:
            profiler = self.machine.profiler
            if profiler is not None:
                with profiler.section("plan-build", "plans"):
                    value = self.store(key, build())
            else:
                value = self.store(key, build())
        return value

    # -- metrics publication ---------------------------------------------------

    def publish_metrics(self, registry) -> None:
        """Publish cache shape into a metrics registry (hit/miss counts
        live on ``machine.counters`` and publish from there)."""
        registry.publish("plan_cache.entries", len(self._store), kind="gauge")
        registry.publish("plan_cache.enabled", 1.0 if self.enabled else 0.0,
                         kind="gauge")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "on" if self.enabled else "off"
        return (
            f"PlanCache({state}, entries={len(self._store)}/{self.maxsize}, "
            f"hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions})"
        )
