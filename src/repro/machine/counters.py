"""Cycle accounting for the simulated machine.

Every operation on the simulated hypercube charges time and raw operation
counts to a :class:`Counters` instance.  A stack of named *phases* lets
callers attribute costs to logical stages ("reduce", "pivot-search", ...)
so the benchmark harness can report per-primitive breakdowns the way the
paper's tables do.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple
import contextlib
from ..errors import ConfigError


@dataclass
class CostSnapshot:
    """An immutable copy of the counter totals at one instant."""

    time: float = 0.0
    flops: float = 0.0
    elements_transferred: float = 0.0
    comm_rounds: int = 0
    local_moves: float = 0.0

    def __sub__(self, other: "CostSnapshot") -> "CostSnapshot":
        return CostSnapshot(
            time=self.time - other.time,
            flops=self.flops - other.flops,
            elements_transferred=self.elements_transferred - other.elements_transferred,
            comm_rounds=self.comm_rounds - other.comm_rounds,
            local_moves=self.local_moves - other.local_moves,
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "time": self.time,
            "flops": self.flops,
            "elements_transferred": self.elements_transferred,
            "comm_rounds": float(self.comm_rounds),
            "local_moves": self.local_moves,
        }


@dataclass
class Counters:
    """Mutable running totals plus a per-phase time breakdown.

    The ``plan_*`` fields are observability for the communication plan
    cache (``machine.plans``): cache hits, misses and LRU evictions.  They
    are deliberately *not* part of :class:`CostSnapshot` — the plan cache
    must never change the cost model, so snapshots stay bit-identical
    whether the cache is on or off while the plan statistics report what
    the cache did.

    The ``abft_*`` fields follow the same observability-only contract for
    the checksum layer (:mod:`repro.abft`): corruption detections, exact
    single-element corrections, and escalations to checkpoint replay.
    The checksum layer's *costs* (maintain/verify/scrub passes) land in
    the ordinary time/flop/transfer fields like any other charged work.
    """

    time: float = 0.0
    flops: float = 0.0
    elements_transferred: float = 0.0
    comm_rounds: int = 0
    local_moves: float = 0.0
    plan_hits: int = 0
    plan_misses: int = 0
    plan_evictions: int = 0
    abft_detected: int = 0
    abft_corrected: int = 0
    abft_recomputed: int = 0
    phase_times: Dict[str, float] = field(default_factory=dict)
    _phase_stack: List[str] = field(default_factory=list)

    # -- charging -----------------------------------------------------------

    def charge_time(self, amount: float) -> None:
        if amount < 0:
            raise ConfigError(f"cannot charge negative time {amount}")
        self.time += amount
        if self._phase_stack:
            for phase in self._phase_stack:
                self.phase_times[phase] = self.phase_times.get(phase, 0.0) + amount

    def charge_flops(self, count: float, time: float) -> None:
        if count < 0:
            raise ConfigError(f"cannot charge negative flop count {count}")
        self.flops += count
        self.charge_time(time)

    def charge_transfer(self, elements: float, rounds: int, time: float) -> None:
        if elements < 0:
            raise ConfigError(f"cannot charge negative transfer volume {elements}")
        if rounds < 0:
            raise ConfigError(f"cannot charge negative round count {rounds}")
        self.elements_transferred += elements
        self.comm_rounds += rounds
        self.charge_time(time)

    def charge_local(self, elements: float, time: float) -> None:
        if elements < 0:
            raise ConfigError(f"cannot charge negative local-move count {elements}")
        self.local_moves += elements
        self.charge_time(time)

    # -- phases -------------------------------------------------------------

    @contextlib.contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Attribute all time charged inside the block to ``name``.

        Phases nest; time inside an inner phase is also attributed to every
        enclosing phase.  A nested re-entry of the same name is not double
        counted.
        """
        entered = name not in self._phase_stack
        if entered:
            self._phase_stack.append(name)
        try:
            yield
        finally:
            if entered:
                popped = self._phase_stack.pop()
                assert popped == name

    def phase_breakdown(self) -> List[Tuple[str, float]]:
        """Phase times sorted by descending cost."""
        return sorted(self.phase_times.items(), key=lambda kv: -kv[1])

    # -- plan-cache statistics ----------------------------------------------

    def plan_stats(self) -> Dict[str, int]:
        """Plan-cache hit/miss/eviction counts (observability only)."""
        return {
            "hits": self.plan_hits,
            "misses": self.plan_misses,
            "evictions": self.plan_evictions,
        }

    # -- metrics publication -------------------------------------------------

    def publish_metrics(self, registry) -> None:
        """Publish cost totals into a metrics registry (read-only).

        Keeps to plain scalars so this module stays numpy-free;
        :class:`~repro.batch.counters.LaneCounters` overrides with
        vector-aware reductions.
        """
        registry.publish("machine.ticks", self.time, unit="ticks",
                         help="simulated machine time")
        registry.publish("machine.flops", self.flops, unit="flops")
        registry.publish("machine.elements_transferred",
                         self.elements_transferred, unit="elements")
        registry.publish("machine.comm_rounds", self.comm_rounds,
                         unit="rounds")
        registry.publish("machine.local_moves", self.local_moves,
                         unit="elements")
        self._publish_observability(registry)

    def _publish_observability(self, registry) -> None:
        """The observability-only fields (shared with the lane override)."""
        registry.publish("plan_cache.hits", self.plan_hits)
        registry.publish("plan_cache.misses", self.plan_misses)
        registry.publish("plan_cache.evictions", self.plan_evictions)
        registry.publish("abft.detected", self.abft_detected)
        registry.publish("abft.corrected", self.abft_corrected)
        registry.publish("abft.recomputed", self.abft_recomputed)

    # -- snapshots ----------------------------------------------------------

    def snapshot(self) -> CostSnapshot:
        return CostSnapshot(
            time=self.time,
            flops=self.flops,
            elements_transferred=self.elements_transferred,
            comm_rounds=self.comm_rounds,
            local_moves=self.local_moves,
        )

    def reset(self) -> None:
        """Restore every field to its dataclass default.

        Deriving the reset from the field definitions keeps this the single
        source of truth: a counter added to the dataclass is automatically
        cleared here, so snapshot-era tests that reset between measurements
        can never observe a stale field.
        """
        for f in dataclasses.fields(self):
            if f.default is not dataclasses.MISSING:
                setattr(self, f.name, f.default)
            else:
                getattr(self, f.name).clear()
