"""The simulated hypercube multiprocessor (Connection Machine stand-in).

Public surface:

* :class:`CostModel` — charging rates (``cm2``, ``unit`` and stress presets);
* :class:`Counters` / :class:`CostSnapshot` — cycle accounting;
* :class:`Hypercube` — the machine: ``2**n`` SIMD processors, one-dimension
  exchanges, cost charging, phases;
* :class:`PVar` — a per-processor variable (the SIMD register file);
* :class:`Router` / :class:`RouteStats` — e-cube routing of arbitrary
  message sets with congestion accounting.
"""

from .cost_model import CostModel
from .counters import Counters, CostSnapshot
from .hypercube import Hypercube
from .plans import PlanCache, RemapPlan
from .pvar import PVar
from .router import Router, RouteStats

__all__ = [
    "CostModel",
    "Counters",
    "CostSnapshot",
    "Hypercube",
    "PlanCache",
    "PVar",
    "RemapPlan",
    "Router",
    "RouteStats",
]
