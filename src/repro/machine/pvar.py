"""Processor variables: the SIMD register file of the simulated machine.

A :class:`PVar` models one variable that exists in the local memory of every
processor of the hypercube.  Physically it is a single NumPy array whose
axis 0 is the processor index — the whole machine's copies live side by side
so that one vectorised NumPy operation models one SIMD instruction executed
by all processors at once (the idiom recommended by the scientific-python
optimisation guides: keep the hot loop inside NumPy).

Every elementwise operation charges the machine ``t_a`` per *local* element:
all processors operate in lock step, so the machine-level time of a SIMD
instruction is the per-processor local workload, not the global one.  This
matches the CM's virtual-processor model, where a physical processor loops
over the virtual processors assigned to it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Tuple, Union

import numpy as np
from ..errors import ConfigError, ShapeError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .hypercube import Hypercube

Scalar = Union[int, float, bool, np.generic]


def _local_size(shape: Tuple[int, ...]) -> int:
    size = 1
    for extent in shape[1:]:
        size *= extent
    return max(size, 1)


def _machine_local_size(machine: "Hypercube", shape: Tuple[int, ...]) -> int:
    """Local element count of ``shape``, excluding any trailing run axis.

    On a batched machine (``machine.n_runs`` set) every PVar carries a
    trailing run axis; per-lane costs are the per-processor local workload
    of ONE lane, so the run extent never enters a charge volume.
    """
    if machine.n_runs is not None:
        shape = shape[:-1]
    return _local_size(shape)


class LaneValues:
    """Per-lane host immediates for a batched machine.

    Wraps an ``(n_runs,)`` array so that each simulation lane of a
    :class:`~repro.batch.machine.BatchHypercube` sees its own scalar
    immediate.  Arithmetic with a PVar broadcasts the wrapped vector
    against the trailing run axis, exactly as a plain Python scalar
    broadcasts on the scalar path — host immediates are free on both.
    """

    __slots__ = ("data",)

    def __init__(self, values: Any) -> None:
        self.data = np.asarray(values)
        if self.data.ndim != 1:
            raise ShapeError(
                f"LaneValues expects a 1-D per-lane vector, got shape "
                f"{self.data.shape}"
            )


class PVar:
    """A per-processor variable of uniform local shape.

    Parameters
    ----------
    machine:
        The owning :class:`~repro.machine.hypercube.Hypercube`; receives the
        cost charges.
    data:
        Array of shape ``(p, *local_shape)``.  Axis 0 must equal the
        machine's processor count.
    """

    __slots__ = ("machine", "data")

    def __init__(self, machine: "Hypercube", data: np.ndarray) -> None:
        data = np.asarray(data)
        if data.ndim < 1 or data.shape[0] != machine.p:
            raise ShapeError(
                f"PVar data must have shape (p={machine.p}, ...), got {data.shape}"
            )
        n_runs = machine.n_runs
        if n_runs is not None and (data.ndim < 2 or data.shape[-1] != n_runs):
            raise ShapeError(
                f"PVar data on a batched machine must have shape "
                f"(p={machine.p}, ..., n_runs={n_runs}), got {data.shape}"
            )
        self.machine = machine
        self.data = data
        faults = machine.faults
        if faults is not None:
            # Candidate target for silent stored-bit flips (no-ABFT runs;
            # the checksum registry takes over when a manager is attached).
            faults.register_memory(self)

    # -- construction helpers ------------------------------------------------

    @property
    def local_shape(self) -> Tuple[int, ...]:
        if self.machine.n_runs is not None:
            return self.data.shape[1:-1]
        return self.data.shape[1:]

    @property
    def local_size(self) -> int:
        return _machine_local_size(self.machine, self.data.shape)

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def copy(self) -> "PVar":
        """A charged local copy (one memory pass)."""
        self.machine.charge_local(self.local_size)
        return PVar(self.machine, self.data.copy())

    def assign(self, other: "PVarOrScalar") -> "PVar":
        """In-place store honouring the machine's activity context.

        Outside any :meth:`~repro.machine.hypercube.Hypercube.where` block
        this is a plain overwrite; inside, only active processors commit
        the store and the rest keep their old values — the Connection
        Machine's conditional-store semantics.  One local pass either way
        (SIMD executes everywhere).  Returns ``self`` for chaining.
        """
        src = self._coerce(other)
        src = np.broadcast_to(src, self.data.shape)
        mask = self.machine.active_mask
        self.machine.charge_local(self.local_size)
        if mask is None:
            self.data = np.array(src)
        else:
            m = mask
            if m.ndim > self.data.ndim:
                extra = m.shape[self.data.ndim:]
                if all(s == 1 for s in extra):
                    m = m.reshape(m.shape[: self.data.ndim])
                else:
                    raise ShapeError(
                        f"context mask shape {mask.shape} incompatible with "
                        f"target shape {self.data.shape}"
                    )
            if self.machine.n_runs is None:
                while m.ndim < self.data.ndim:
                    m = m[..., None]
            else:
                # Batched machines: every mask carries the trailing run
                # axis, so missing *local* axes are inserted in the middle
                # (right after the processor axis) to keep runs aligned.
                while m.ndim < self.data.ndim:
                    m = np.expand_dims(m, 1)
            try:
                m = np.broadcast_to(m, self.data.shape)
            except ValueError:
                raise ShapeError(
                    f"context mask shape {mask.shape} incompatible with "
                    f"target shape {self.data.shape}"
                ) from None
            self.data = np.where(m, src, self.data)
        return self

    def astype(self, dtype: Any) -> "PVar":
        self.machine.charge_local(self.local_size)
        return PVar(self.machine, self.data.astype(dtype))

    def reshape_local(self, *shape: int) -> "PVar":
        """Reinterpret the local block shape; free (no data motion)."""
        n_runs = self.machine.n_runs
        if n_runs is not None:
            return PVar(
                self.machine, self.data.reshape(self.machine.p, *shape, n_runs)
            )
        return PVar(self.machine, self.data.reshape(self.machine.p, *shape))

    # -- elementwise engine ----------------------------------------------------

    def _coerce(self, other: "PVarOrScalar") -> np.ndarray:
        if isinstance(other, PVar):
            if other.machine is not self.machine:
                raise ConfigError("cannot combine PVars from different machines")
            return other.data
        if isinstance(other, LaneValues):
            n_runs = self.machine.n_runs
            if n_runs is None or other.data.shape != (n_runs,):
                raise ShapeError(
                    f"LaneValues of shape {other.data.shape} requires a "
                    f"batched machine with n_runs={other.data.shape[0]}"
                )
            return other.data  # broadcasts against the trailing run axis
        if isinstance(other, np.ndarray):
            raise TypeError(
                "raw ndarrays cannot mix with PVars; wrap with machine.pvar()"
            )
        return np.asarray(other)

    # Padding slots (see repro.embeddings) routinely hold zeros that user
    # arithmetic divides by; results there are masked at every consumption
    # boundary, so the spurious divide/invalid warnings are silenced here.

    def _binary(self, other: "PVarOrScalar", fn: Callable[..., np.ndarray]) -> "PVar":
        rhs = self._coerce(other)
        with np.errstate(divide="ignore", invalid="ignore"):
            out = fn(self.data, rhs)
        result = PVar(self.machine, out)
        self.machine.charge_flops(
            max(self.local_size, _machine_local_size(self.machine, out.shape))
        )
        return result

    def _rbinary(self, other: "PVarOrScalar", fn: Callable[..., np.ndarray]) -> "PVar":
        rhs = self._coerce(other)
        with np.errstate(divide="ignore", invalid="ignore"):
            out = fn(rhs, self.data)
        result = PVar(self.machine, out)
        self.machine.charge_flops(
            max(self.local_size, _machine_local_size(self.machine, out.shape))
        )
        return result

    def _unary(self, fn: Callable[..., np.ndarray]) -> "PVar":
        self.machine.charge_flops(self.local_size)
        with np.errstate(divide="ignore", invalid="ignore"):
            return PVar(self.machine, fn(self.data))

    # arithmetic
    def __add__(self, other: "PVarOrScalar") -> "PVar":
        return self._binary(other, np.add)

    def __radd__(self, other: "PVarOrScalar") -> "PVar":
        return self._rbinary(other, np.add)

    def __sub__(self, other: "PVarOrScalar") -> "PVar":
        return self._binary(other, np.subtract)

    def __rsub__(self, other: "PVarOrScalar") -> "PVar":
        return self._rbinary(other, np.subtract)

    def __mul__(self, other: "PVarOrScalar") -> "PVar":
        return self._binary(other, np.multiply)

    def __rmul__(self, other: "PVarOrScalar") -> "PVar":
        return self._rbinary(other, np.multiply)

    def __truediv__(self, other: "PVarOrScalar") -> "PVar":
        return self._binary(other, np.divide)

    def __rtruediv__(self, other: "PVarOrScalar") -> "PVar":
        return self._rbinary(other, np.divide)

    def __floordiv__(self, other: "PVarOrScalar") -> "PVar":
        return self._binary(other, np.floor_divide)

    def __mod__(self, other: "PVarOrScalar") -> "PVar":
        return self._binary(other, np.mod)

    def __pow__(self, other: "PVarOrScalar") -> "PVar":
        return self._binary(other, np.power)

    def __neg__(self) -> "PVar":
        return self._unary(np.negative)

    def __abs__(self) -> "PVar":
        return self._unary(np.abs)

    def abs(self) -> "PVar":
        return self.__abs__()

    def sqrt(self) -> "PVar":
        return self._unary(np.sqrt)

    def reciprocal(self) -> "PVar":
        self.machine.charge_flops(self.local_size)
        with np.errstate(divide="ignore", invalid="ignore"):
            return PVar(self.machine, 1.0 / self.data)

    # comparisons (return boolean PVars)
    def __lt__(self, other: "PVarOrScalar") -> "PVar":
        return self._binary(other, np.less)

    def __le__(self, other: "PVarOrScalar") -> "PVar":
        return self._binary(other, np.less_equal)

    def __gt__(self, other: "PVarOrScalar") -> "PVar":
        return self._binary(other, np.greater)

    def __ge__(self, other: "PVarOrScalar") -> "PVar":
        return self._binary(other, np.greater_equal)

    def eq(self, other: "PVarOrScalar") -> "PVar":
        return self._binary(other, np.equal)

    def ne(self, other: "PVarOrScalar") -> "PVar":
        return self._binary(other, np.not_equal)

    # logical (boolean PVars)
    def __and__(self, other: "PVarOrScalar") -> "PVar":
        return self._binary(other, np.logical_and)

    def __or__(self, other: "PVarOrScalar") -> "PVar":
        return self._binary(other, np.logical_or)

    def __xor__(self, other: "PVarOrScalar") -> "PVar":
        return self._binary(other, np.logical_xor)

    def __invert__(self) -> "PVar":
        return self._unary(np.logical_not)

    def minimum(self, other: "PVarOrScalar") -> "PVar":
        return self._binary(other, np.minimum)

    def maximum(self, other: "PVarOrScalar") -> "PVar":
        return self._binary(other, np.maximum)

    def where(self, if_true: "PVarOrScalar", if_false: "PVarOrScalar") -> "PVar":
        """SIMD select: ``self ? if_true : if_false`` (self must be boolean)."""
        lhs = self._coerce(if_true)
        rhs = self._coerce(if_false)
        out = np.where(self.data, lhs, rhs)
        self.machine.charge_flops(_machine_local_size(self.machine, out.shape))
        return PVar(self.machine, out)

    # -- local (intra-processor) reductions -----------------------------------

    def _local_reduce(self, fn: Callable[..., np.ndarray], axis: int) -> "PVar":
        if not self.local_shape:
            raise ShapeError("cannot locally reduce a scalar PVar")
        # A tree reduction over k local elements costs k-1 combining steps
        # executed serially by each (physical) processor.
        self.machine.charge_flops(max(self.local_size - self.local_size // self.local_shape[axis], 0))
        n_runs = self.machine.n_runs
        red = axis + 1
        if n_runs is not None and red == self.data.ndim - 2:
            # The reduced axis is the one the scalar path reduces as its
            # (contiguous) last axis.  NumPy's pairwise summation only
            # engages on contiguous inner reductions, so reduce a
            # contiguous copy with the run axis moved inward — per lane
            # this is the scalar path's accumulation order bit-for-bit.
            moved = np.ascontiguousarray(np.moveaxis(self.data, red, -1))
            return PVar(self.machine, fn(moved, axis=-1))
        return PVar(self.machine, fn(self.data, axis=red))

    def local_sum(self, axis: int = 0) -> "PVar":
        return self._local_reduce(np.sum, axis)

    def local_prod(self, axis: int = 0) -> "PVar":
        return self._local_reduce(np.prod, axis)

    def local_min(self, axis: int = 0) -> "PVar":
        return self._local_reduce(np.min, axis)

    def local_max(self, axis: int = 0) -> "PVar":
        return self._local_reduce(np.max, axis)

    def local_any(self, axis: int = 0) -> "PVar":
        return self._local_reduce(np.any, axis)

    def local_all(self, axis: int = 0) -> "PVar":
        return self._local_reduce(np.all, axis)

    def local_argmax(self, axis: int = 0) -> "PVar":
        return self._local_reduce(np.argmax, axis)

    def local_argmin(self, axis: int = 0) -> "PVar":
        return self._local_reduce(np.argmin, axis)

    # -- misc -----------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PVar(p={self.machine.p}, local_shape={self.local_shape}, "
            f"dtype={self.dtype})"
        )


PVarOrScalar = Union[PVar, Scalar]
