"""General message routing on the simulated cube.

The structured collectives in ``repro.comm`` only ever exchange along one
cube dimension at a time.  Everything else — embedding changes, transposes,
and the point-to-point sends the naive baselines rely on — goes through the
*router*, which models the Connection Machine's packet router with e-cube
(dimension-order) routing:

* a message from ``s`` to ``t`` corrects the differing address bits of
  ``s ^ t`` one dimension at a time, lowest dimension first;
* routing proceeds in synchronous per-dimension rounds; in each round every
  link can carry traffic in both directions, and a round's duration is one
  start-up plus the *most loaded* link's volume (congestion serialises);
* messages that do not need a given dimension sit still for free.

This captures exactly the effects the paper's comparisons depend on: a
congestion-free permutation (e.g. a Gray-code-aligned transpose) costs
``O(n)`` start-ups plus the block volume, while many-to-one traffic (the
naive reductions) serialises on the links near the destination.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .hypercube import Hypercube
from .plans import MISSING
from .pvar import PVar

#: Shared no-op context for unspanned (untraced or uncharged) simulations.
_NULL = contextlib.nullcontext()


@dataclass(frozen=True)
class RouteStats:
    """What one routing operation did, for tests and model validation.

    ``dim_congestion`` records ``(dim, max link volume)`` for every round
    actually executed, in routing order — the per-dimension congestion
    profile the tracer's heatmaps are built from.  It rides along in cached
    plans so a plan replay can still report where the traffic squeezed.
    """

    rounds: int
    element_hops: float
    max_congestion: float
    time: float
    dim_congestion: Tuple[Tuple[int, float], ...] = ()


class Router:
    """E-cube router bound to one machine."""

    def __init__(self, machine: Hypercube) -> None:
        self.machine = machine

    # -- message-set cost engine ------------------------------------------------

    def simulate(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        sizes: np.ndarray,
        charge: bool = True,
    ) -> RouteStats:
        """Route a set of messages and charge their cost.

        Parameters
        ----------
        src, dst:
            Integer arrays of source and destination processor ids, one entry
            per message.
        sizes:
            Element count of each message.
        charge:
            When false, compute the stats without charging the machine
            (used by the analytic models for what-if questions).
        """
        machine = self.machine
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        sizes = np.asarray(sizes, dtype=np.float64)
        if not (src.shape == dst.shape == sizes.shape):
            raise ValueError("src, dst and sizes must have identical shapes")
        if src.size and (src.min() < 0 or src.max() >= machine.p):
            raise ValueError("message source out of processor range")
        if dst.size and (dst.min() < 0 or dst.max() >= machine.p):
            raise ValueError("message destination out of processor range")

        # A charged simulation is an observable event; uncharged what-if
        # queries from the analytic models stay invisible to the tracer.
        tracer = machine.tracer if charge else None
        if tracer is not None:
            span_ctx = tracer.span(
                "route",
                "route",
                messages=int(src.size),
                volume=float(sizes.sum()),
            )
        else:
            span_ctx = None
        with span_ctx if span_ctx is not None else _NULL:
            # Identical h-relations recur every iteration of the solver
            # loops; memoize their stats under a digest of the exact message
            # multiset.  A hit replays the identical single charge_transfer
            # call, so the counters cannot tell the difference.
            plans = machine.plans
            cache_key = None
            if plans.enabled:
                cache_key = (
                    "route", src.tobytes(), dst.tobytes(), sizes.tobytes()
                )
                cached = plans.lookup(cache_key)
                if cached is not MISSING:
                    if charge:
                        machine.counters.charge_transfer(
                            cached.element_hops, cached.rounds, cached.time
                        )
                        if tracer is not None:
                            tracer.on_route_replay(cached)
                    return cached

            cur = src.copy()
            total_time = 0.0
            total_hops = 0.0
            rounds = 0
            worst = 0.0
            round_detail = []
            cm = machine.cost_model
            for d in range(machine.n):
                bit = np.int64(1) << d
                moving = ((cur ^ dst) & bit) != 0
                if not np.any(moving):
                    continue
                loads = np.bincount(
                    cur[moving], weights=sizes[moving], minlength=machine.p
                )
                congestion = float(loads.max())
                total_time += cm.tau + cm.t_c * congestion
                total_hops += float(sizes[moving].sum())
                worst = max(worst, congestion)
                rounds += 1
                round_detail.append((d, congestion))
                if tracer is not None:
                    tracer.on_route_round(d, loads, congestion)
                cur[moving] ^= bit
            stats = RouteStats(
                rounds=rounds,
                element_hops=total_hops,
                max_congestion=worst,
                time=total_time,
                dim_congestion=tuple(round_detail),
            )
            if cache_key is not None:
                plans.store(cache_key, stats)
            if charge:
                machine.counters.charge_transfer(total_hops, rounds, total_time)
            return stats

    # -- whole-machine data movement ------------------------------------------

    def permute(self, pvar: PVar, dest: PVar) -> PVar:
        """Send every processor's block to the processor named in ``dest``.

        ``dest`` must hold a permutation of the processor ids (one incoming
        block per processor); use :meth:`simulate` directly for general
        h-relations where the data motion is managed by the caller.
        """
        machine = self.machine
        machine._check_owned(pvar)
        machine._check_owned(dest)
        d = np.asarray(dest.data, dtype=np.int64)
        if d.shape != (machine.p,):
            raise ValueError(
                f"dest must be a scalar PVar of pids, got local shape {dest.local_shape}"
            )
        order = np.sort(d)
        if not np.array_equal(order, machine.pids()):
            raise ValueError("dest is not a permutation of processor ids")
        sizes = np.full(machine.p, float(pvar.local_size))
        self.simulate(machine.pids(), d, sizes)
        out = np.empty_like(pvar.data)
        out[d] = pvar.data
        return PVar(machine, out)

    def point_to_point(
        self, pvar: PVar, src: int, dst: int, elements: Optional[float] = None
    ) -> Tuple[PVar, RouteStats]:
        """One message from ``src`` to ``dst``; the rest of the machine idles.

        Returns the received block installed at ``dst`` (other processors
        keep their old data) plus the routing stats.  This is the building
        block of the naive baselines' serial gathers and broadcasts.
        """
        machine = self.machine
        machine._check_owned(pvar)
        size = float(pvar.local_size if elements is None else elements)
        stats = self.simulate(
            np.array([src]), np.array([dst]), np.array([size])
        )
        out = pvar.data.copy()
        out[dst] = pvar.data[src]
        machine.charge_local(0.0)  # the copy at dst is part of the transfer
        return PVar(machine, out), stats
