"""General message routing on the simulated cube.

The structured collectives in ``repro.comm`` only ever exchange along one
cube dimension at a time.  Everything else — embedding changes, transposes,
and the point-to-point sends the naive baselines rely on — goes through the
*router*, which models the Connection Machine's packet router with e-cube
(dimension-order) routing:

* a message from ``s`` to ``t`` corrects the differing address bits of
  ``s ^ t`` one dimension at a time, lowest dimension first;
* routing proceeds in synchronous per-dimension rounds; in each round every
  link can carry traffic in both directions, and a round's duration is one
  start-up plus the *most loaded* link's volume (congestion serialises);
* messages that do not need a given dimension sit still for free.

This captures exactly the effects the paper's comparisons depend on: a
congestion-free permutation (e.g. a Gray-code-aligned transpose) costs
``O(n)`` start-ups plus the block volume, while many-to-one traffic (the
naive reductions) serialises on the links near the destination.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..errors import ConfigError, NodeKilledError, ShapeError, UnroutableError
from .hypercube import Hypercube
from .plans import MISSING
from .pvar import PVar

#: Shared no-op context for unspanned (untraced or uncharged) simulations.
_NULL = contextlib.nullcontext()


@dataclass(frozen=True)
class RouteStats:
    """What one routing operation did, for tests and model validation.

    ``dim_congestion`` records ``(dim, max link volume)`` for every round
    actually executed, in routing order — the per-dimension congestion
    profile the tracer's heatmaps are built from.  It rides along in cached
    plans so a plan replay can still report where the traffic squeezed.
    """

    rounds: int
    element_hops: float
    max_congestion: float
    time: float
    dim_congestion: Tuple[Tuple[int, float], ...] = ()


class Router:
    """E-cube router bound to one machine."""

    def __init__(self, machine: Hypercube) -> None:
        self.machine = machine

    # -- message-set cost engine ------------------------------------------------

    def simulate(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        sizes: np.ndarray,
        charge: bool = True,
    ) -> RouteStats:
        """Route a set of messages and charge their cost.

        Parameters
        ----------
        src, dst:
            Integer arrays of source and destination processor ids, one entry
            per message.
        sizes:
            Element count of each message.
        charge:
            When false, compute the stats without charging the machine
            (used by the analytic models for what-if questions).
        """
        machine = self.machine
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        sizes = np.asarray(sizes, dtype=np.float64)
        if not (src.shape == dst.shape == sizes.shape):
            raise ShapeError(
                f"src, dst and sizes must have identical shapes, got "
                f"{src.shape}, {dst.shape}, {sizes.shape}"
            )
        if src.size and (src.min() < 0 or src.max() >= machine.p):
            raise ConfigError("message source out of processor range")
        if dst.size and (dst.min() < 0 or dst.max() >= machine.p):
            raise ConfigError("message destination out of processor range")

        # Fire any fault events due at the current simulated time *before*
        # consulting the plan cache, so a topology change (epoch bump)
        # invalidates stale plans ahead of the lookup.  Non-strict: routed
        # point-to-point traffic is legal on a machine with dead nodes as
        # long as the endpoints themselves are alive.
        faults = machine.faults
        if faults is not None and charge:
            faults.poll(strict=False)

        # A charged simulation is an observable event; uncharged what-if
        # queries from the analytic models stay invisible to the tracer.
        tracer = machine.tracer if charge else None
        if tracer is not None:
            span_ctx = tracer.span(
                "route",
                "route",
                messages=int(src.size),
                volume=float(sizes.sum()),
            )
        else:
            span_ctx = None
        # Gray state (slow links/nodes, or lingering health suspicion that
        # may trigger straggler avoidance) is continuous: it stretches
        # round time and steers routing without a topology epoch to key
        # on, so gray routes bypass the plan cache entirely and resimulate.
        gray = machine.gray_active or (
            faults is not None
            and faults.avoid_stragglers
            and faults.health.tracked > 0
        )
        with span_ctx if span_ctx is not None else _NULL:
            # Identical h-relations recur every iteration of the solver
            # loops; memoize their stats under a digest of the exact message
            # multiset.  A hit replays the identical single charge_transfer
            # call, so the counters cannot tell the difference.
            plans = machine.plans
            cache_key = None
            if plans.enabled and not gray:
                cache_key = (
                    "route", src.tobytes(), dst.tobytes(), sizes.tobytes()
                )
                cached = plans.lookup(cache_key)
                if cached is not MISSING:
                    if charge:
                        sanitizer = machine.sanitizer
                        before = (
                            machine.counters.snapshot()
                            if sanitizer is not None
                            else None
                        )
                        machine.counters.charge_transfer(
                            cached.element_hops, cached.rounds, cached.time
                        )
                        if tracer is not None:
                            tracer.on_route_replay(cached)
                        if sanitizer is not None:
                            sanitizer.audit_route(
                                machine, src, dst, sizes, cached,
                                before, from_cache=True,
                            )
                    return cached

            if machine.faulty or gray:
                stats = self._simulate_faulty(
                    src, dst, sizes, tracer, observe=charge
                )
            else:
                cur = src.copy()
                total_time = 0.0
                total_hops = 0.0
                rounds = 0
                worst = 0.0
                round_detail = []
                cm = machine.cost_model
                for d in range(machine.n):
                    bit = np.int64(1) << d
                    moving = ((cur ^ dst) & bit) != 0
                    if not np.any(moving):
                        continue
                    loads = np.bincount(
                        cur[moving], weights=sizes[moving], minlength=machine.p
                    )
                    congestion = float(loads.max())
                    total_time += cm.tau + cm.t_c * congestion
                    total_hops += float(sizes[moving].sum())
                    worst = max(worst, congestion)
                    rounds += 1
                    round_detail.append((d, congestion))
                    if tracer is not None:
                        tracer.on_route_round(d, loads, congestion)
                    cur[moving] ^= bit
                stats = RouteStats(
                    rounds=rounds,
                    element_hops=total_hops,
                    max_congestion=worst,
                    time=total_time,
                    dim_congestion=tuple(round_detail),
                )
            if cache_key is not None:
                plans.store(cache_key, stats)
            if charge:
                # Charge from the stats record so the faulty branch (whose
                # totals live inside _simulate_faulty) charges too; the
                # healthy branch stored the identical floats, so this is
                # bit-identical to charging the loop's own accumulators.
                sanitizer = machine.sanitizer
                before = (
                    machine.counters.snapshot()
                    if sanitizer is not None
                    else None
                )
                machine.counters.charge_transfer(
                    stats.element_hops, stats.rounds, stats.time
                )
                if sanitizer is not None:
                    sanitizer.audit_route(
                        machine, src, dst, sizes, stats, before,
                        from_cache=False,
                    )
            return stats

    def _detour_dim(self, node: int, d: int) -> Optional[int]:
        """Lowest dimension ``e`` detouring ``node``'s dead link across ``d``.

        The 3-hop substitute path ``node -e-> node^e -d-> node^e^d -e->
        node^d`` needs both intermediate nodes and all three substitute
        links healthy.  Returns ``None`` when no dimension qualifies.
        """
        machine = self.machine
        bit = 1 << d
        for e in range(machine.n):
            if e == d:
                continue
            ebit = 1 << e
            if (
                machine.node_alive(node ^ ebit)
                and machine.node_alive(node ^ ebit ^ bit)
                and machine.link_alive(e, node)
                and machine.link_alive(d, node ^ ebit)
                and machine.link_alive(e, node ^ bit)
            ):
                return e
        return None

    def _fast_detour_dim(self, node: int, d: int, health) -> Optional[int]:
        """Straggler-avoidance: a detour dim worth taking around a slow link.

        Consults the fault injector's learned health scores (not the true
        gray state — the router only knows what the telemetry showed).  A
        direct hop across a link suspected at factor ``f`` costs ``~f``
        rounds-worth of time; the 3-hop sidestep costs the sum of its three
        links' suspected factors (≥3 when healthy), so the detour is taken
        only when the model predicts a win: ``f > 3`` and some healthy
        sidestep beats it.  Returns ``None`` when staying direct is best.
        """
        machine = self.machine
        bit = 1 << d
        f_direct = health.link_factor(d, min(node, node ^ bit))
        if f_direct <= 3.0:
            return None
        best = None
        best_cost = f_direct
        for e in range(machine.n):
            if e == d:
                continue
            ebit = 1 << e
            if not (
                machine.node_alive(node ^ ebit)
                and machine.node_alive(node ^ ebit ^ bit)
                and machine.link_alive(e, node)
                and machine.link_alive(d, node ^ ebit)
                and machine.link_alive(e, node ^ bit)
            ):
                continue
            cost = (
                health.link_factor(e, min(node, node ^ ebit))
                + health.link_factor(d, min(node ^ ebit, node ^ ebit ^ bit))
                + health.link_factor(e, min(node ^ bit, node ^ bit ^ ebit))
            )
            if cost < best_cost:
                best = e
                best_cost = cost
        return best

    def _simulate_faulty(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        sizes: np.ndarray,
        tracer: Optional[object],
        observe: bool = True,
    ) -> "RouteStats":
        """E-cube routing on a machine with dead, slow and/or flaky parts.

        The healthy router corrects dimensions in a single lowest-first
        sweep.  Here each message may additionally:

        * **detour** — its link across the current dimension is dead, so it
          takes the 3-hop path via an adjacent dimension (each hop is a
          charged round; detours through the same dimension share rounds);
        * **defer** — correcting this dimension now would land it on a dead
          node (or no detour exists), so it corrects a later dimension
          first and retries on the next sweep from its new address;
        * **avoid** — the injector's health model suspects the direct link
          of straggling badly enough that the 3-hop sidestep is predicted
          cheaper (see :meth:`_fast_detour_dim`); charged honestly as the
          three detour hops.

        Each round's duration additionally stretches by the worst true
        slowdown among its participants (gray failures are real whether or
        not the health model has noticed).  With ``observe`` (charged
        simulations), every round's timing feeds the injector's health
        tracker — that is where detection comes from.  Sweeps repeat until
        every message arrives; a sweep that moves nothing while messages
        remain raises :class:`UnroutableError`.  Messages whose source or
        destination processor is dead raise :class:`NodeKilledError` up
        front.
        """
        machine = self.machine
        if machine.node_ok is not None:
            for arr, label in ((src, "source"), (dst, "destination")):
                dead = ~machine.node_ok[arr]
                if dead.any():
                    pids = sorted(set(int(x) for x in arr[dead]))
                    raise NodeKilledError(
                        f"message {label} processor(s) {pids} are dead "
                        f"(epoch {machine.epoch})"
                    )

        cm = machine.cost_model
        cur = src.copy()
        total_time = 0.0
        total_hops = 0.0
        rounds = 0
        worst = 0.0
        round_detail = []
        faults = machine.faults
        gray = machine.gray_active
        slow_nodes = machine._slow_nodes
        health = faults.health if faults is not None else None
        avoid = (
            faults is not None
            and faults.avoid_stragglers
            and (gray or faults.health.tracked > 0)
        )

        def charge_round(dim: int, positions: list, volumes: list) -> None:
            nonlocal total_time, total_hops, rounds, worst
            loads = np.bincount(
                np.asarray(positions, dtype=np.int64),
                weights=np.asarray(volumes, dtype=np.float64),
                minlength=machine.p,
            )
            congestion = float(loads.max())
            stretch = 1.0
            involved: dict = {}
            if gray:
                # The round waits for its slowest participant: the worst
                # slow link actually crossed and the worst straggler
                # endpoint.  The stretch is real simulated latency whether
                # or not the health model has caught on yet.
                slow = machine._slow_links_by_dim.get(dim, {})
                bit = 1 << dim
                for pos in positions:
                    lo = min(pos, pos ^ bit)
                    factor = slow.get(lo)
                    if factor is not None:
                        involved[lo] = factor
                        if factor > stretch:
                            stretch = factor
                    if slow_nodes:
                        nf = max(
                            slow_nodes.get(pos, 1.0),
                            slow_nodes.get(pos ^ bit, 1.0),
                        )
                        if nf > stretch:
                            stretch = nf
            total_time += (cm.tau + cm.t_c * congestion) * stretch
            total_hops += float(sum(volumes))
            worst = max(worst, congestion)
            rounds += 1
            round_detail.append((dim, congestion))
            if tracer is not None:
                tracer.on_route_round(dim, loads, congestion)
            if observe and health is not None and (gray or health.tracked):
                # Timing telemetry: each endpoint sees how long its own
                # exchange took, so the stretch is attributable to the
                # links that carried traffic this round.  Links the sweep
                # routed *around* give no evidence and keep their scores.
                bit = 1 << dim
                los = {min(pos, pos ^ bit) for pos in positions}
                health.observe_round(
                    dim, involved, slow_nodes, participating=los
                )

        while np.any(cur != dst):
            progressed = False
            for d in range(machine.n):
                bit = np.int64(1) << d
                moving = np.nonzero(((cur ^ dst) & bit) != 0)[0]
                if moving.size == 0:
                    continue
                direct = []
                detoured: dict = {}  # detour dim e -> list of message indices
                for i in moving:
                    node = int(cur[i])
                    landing = node ^ int(bit)
                    more_dims = bool((int(cur[i]) ^ int(dst[i])) & ~int(bit))
                    if not machine.node_alive(landing):
                        # Landing on a dead node: defer if another dimension
                        # can be corrected first (changing the landing pad).
                        if more_dims:
                            continue
                        raise UnroutableError(
                            f"message {int(src[i])}->{int(dst[i])} must land "
                            f"on dead processor {landing} (epoch "
                            f"{machine.epoch})"
                        )
                    if machine.link_alive(d, node):
                        if avoid:
                            e = self._fast_detour_dim(node, d, health)
                            if e is not None:
                                detoured.setdefault(e, []).append(i)
                                if observe:
                                    faults.stats.straggler_detours += 1
                                continue
                        direct.append(i)
                        continue
                    e = self._detour_dim(node, d)
                    if e is None:
                        if more_dims:
                            continue
                        raise UnroutableError(
                            f"message {int(src[i])}->{int(dst[i])}: link "
                            f"(dim={d}, pid={node}) is dead and no adjacent "
                            f"dimension offers a healthy detour (epoch "
                            f"{machine.epoch})"
                        )
                    detoured.setdefault(e, []).append(i)
                if not direct and not detoured:
                    continue
                progressed = True
                # Hop 1: detoured messages sidestep across their detour dim.
                for e in sorted(detoured):
                    idx = detoured[e]
                    charge_round(
                        e,
                        [int(cur[i]) for i in idx],
                        [float(sizes[i]) for i in idx],
                    )
                # Hop 2: everyone crosses dimension ``d`` in one round —
                # direct messages from their own node, detoured ones from
                # their sidestep position.
                positions = [int(cur[i]) for i in direct]
                volumes = [float(sizes[i]) for i in direct]
                for e, idx in detoured.items():
                    ebit = 1 << e
                    positions.extend(int(cur[i]) ^ ebit for i in idx)
                    volumes.extend(float(sizes[i]) for i in idx)
                charge_round(d, positions, volumes)
                # Hop 3: detoured messages step back to the e-cube track.
                for e in sorted(detoured):
                    idx = detoured[e]
                    ebit = 1 << e
                    charge_round(
                        e,
                        [int(cur[i]) ^ ebit ^ int(bit) for i in idx],
                        [float(sizes[i]) for i in idx],
                    )
                corrected = direct + [i for idx in detoured.values() for i in idx]
                cur[np.asarray(corrected, dtype=np.int64)] ^= bit
            if not progressed:
                stuck = np.nonzero(cur != dst)[0]
                pairs = [
                    (int(src[i]), int(dst[i])) for i in stuck[:8]
                ]
                raise UnroutableError(
                    f"routing made no progress: {stuck.size} message(s) "
                    f"stuck, e.g. {pairs} (epoch {machine.epoch})"
                )
        return RouteStats(
            rounds=rounds,
            element_hops=total_hops,
            max_congestion=worst,
            time=total_time,
            dim_congestion=tuple(round_detail),
        )

    # -- whole-machine data movement ------------------------------------------

    def permute(self, pvar: PVar, dest: PVar) -> PVar:
        """Send every processor's block to the processor named in ``dest``.

        ``dest`` must hold a permutation of the processor ids (one incoming
        block per processor); use :meth:`simulate` directly for general
        h-relations where the data motion is managed by the caller.
        """
        machine = self.machine
        machine._check_owned(pvar)
        machine._check_owned(dest)
        d = np.asarray(dest.data, dtype=np.int64)
        if d.shape != (machine.p,):
            raise ShapeError(
                f"dest must be a scalar PVar of pids, got local shape {dest.local_shape}"
            )
        order = np.sort(d)
        if not np.array_equal(order, machine.pids()):
            raise ConfigError("dest is not a permutation of processor ids")
        sizes = np.full(machine.p, float(pvar.local_size))
        self.simulate(machine.pids(), d, sizes)
        out = np.empty_like(pvar.data)
        out[d] = pvar.data
        return PVar(machine, out)

    def point_to_point(
        self, pvar: PVar, src: int, dst: int, elements: Optional[float] = None
    ) -> Tuple[PVar, RouteStats]:
        """One message from ``src`` to ``dst``; the rest of the machine idles.

        Returns the received block installed at ``dst`` (other processors
        keep their old data) plus the routing stats.  This is the building
        block of the naive baselines' serial gathers and broadcasts.
        """
        machine = self.machine
        machine._check_owned(pvar)
        size = float(pvar.local_size if elements is None else elements)
        stats = self.simulate(
            np.array([src]), np.array([dst]), np.array([size])
        )
        out = pvar.data.copy()
        out[dst] = pvar.data[src]
        machine.charge_local(0.0)  # the copy at dst is part of the transfer
        return PVar(machine, out), stats
