"""Per-block dirty detection via exact byte-sum signatures.

Incremental checkpoints need to know which of a distributed array's ``p``
blocks changed since the last snapshot.  Rather than diffing values
(dtype-dependent, float-hostile), each block gets one ``uint64`` signature:
the sum of its byte image in ``Z/2**64`` — the same exact lattice the ABFT
checksum panels use (:mod:`repro.abft.panels`).  Any single-bit change
perturbs the signature; sums are exact integers, so signature equality is
a deterministic, dtype-agnostic "unchanged" witness (collisions require a
crafted multi-byte cancellation, which honest workload updates don't
produce).

Signatures are computed on the *canonical host image* split into ``p``
equal byte spans — a faithful stand-in for the machine's block partition
for accounting purposes (the fraction of spans touched tracks the
fraction of machine-resident blocks touched).
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError


def block_signatures(host: np.ndarray, blocks: int) -> np.ndarray:
    """``(blocks,)`` uint64 byte-sum signatures of ``host``'s byte image.

    The flat byte image is split into ``blocks`` near-equal spans
    (``np.array_split`` semantics); each span sums to one exact uint64
    word (wrapping mod ``2**64``).  Empty spans (more blocks than bytes)
    sign as zero.
    """
    if blocks < 1:
        raise ConfigError(f"block count must be >= 1, got {blocks}")
    flat = np.ascontiguousarray(host).reshape(-1).view(np.uint8)
    return np.array(
        [span.sum(dtype=np.uint64) for span in np.array_split(flat, blocks)],
        dtype=np.uint64,
    )


__all__ = ["block_signatures"]
