"""The fault injector: applies a :class:`FaultPlan` to a live machine.

Attach with :meth:`Hypercube.attach_faults` (or ``Session(...,
faults=plan)``).  The machine polls the injector at every charged
communication round; events whose scheduled simulated time has arrived are
applied in order:

* :class:`~.plan.NodeKill` / :class:`~.plan.LinkKill` mutate the machine's
  health masks and bump the topology epoch (invalidating cached plans);
* :class:`~.plan.LinkDrop` *arms* transient drops on a dimension — the
  next round along that dimension retries, each retry charged as one extra
  round of the same volume plus capped exponential backoff waiting time;
* :class:`~.plan.BitFlip` flips one stored bit of a registered array
  (copy-on-corrupt: the array's storage is replaced by a corrupted copy,
  so values already read by in-flight operations stay clean — corruption
  affects *future* reads, which is what a memory upset does);
* :class:`~.plan.LinkCorrupt` *arms* in-flight corruption on a dimension —
  with ABFT wire checksums on, the next charged round (whatever its
  dimension: every round carries a checksum word) detects the bad block
  and charges a retransmission along the corrupted link; without them the
  next full-block exchange along that dimension silently delivers the
  corrupted block;
* :class:`~.plan.LinkSlow` / :class:`~.plan.NodeSlow` degrade (not kill) a
  component: charged rounds that cross it stretch on the simulated clock
  (pure latency — traffic counters unchanged), optionally recovering after
  a duration.  The injector's :class:`HealthTracker` learns per-component
  suspicion scores from the observed stretches, which the router's
  straggler-avoidance sweep consults;
* :class:`~.plan.LinkFlaky` arms a seeded probabilistic drop window on a
  dimension — each charged round along it may drop and retry (with
  deterministic jittered backoff, or hedged double-sends: see
  :class:`RetryPolicy`).

All fault accounting lives in :class:`FaultStats` (on the injector, not on
:class:`~repro.machine.counters.Counters` — the counters stay a pure cost
record).
"""

from __future__ import annotations

import bisect
import collections
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

import numpy as np

from ..errors import ConfigError, NodeKilledError
from .plan import (
    BitFlip,
    FaultPlan,
    LinkCorrupt,
    LinkDrop,
    LinkFlaky,
    LinkHeal,
    LinkKill,
    LinkSlow,
    NodeHeal,
    NodeKill,
    NodeSlow,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..machine.hypercube import Hypercube
    from ..machine.pvar import PVar


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff for transient link drops.

    Retry ``k`` (0-based) waits ``tau * min(base * factor**k, cap)`` ticks
    before re-sending (``tau`` is the machine's start-up cost, so backoff
    scales with the cost model).  At most ``max_retries`` retries are
    charged per round; a drop burst longer than that is treated as
    recovered by the final retry (the link is transiently, not permanently,
    faulty).
    """

    max_retries: int = 4
    base: float = 1.0
    factor: float = 2.0
    cap: float = 8.0
    #: Deterministic seeded jitter: retry ``k`` waits ``backoff(k)`` times
    #: a uniform factor in ``[1 - jitter, 1 + jitter]`` drawn from a
    #: counter-based stream keyed by ``(seed, nonce)``.  ``jitter == 0``
    #: (the default) reproduces the unjittered waits bit-exactly.
    jitter: float = 0.0
    seed: int = 0
    #: Hedged retransmission for flaky links: instead of waiting out the
    #: backoff, each retry sends the block along the flaky link *and* a
    #: duplicate along a sibling route simultaneously — double the round
    #: volume, zero backoff time.  Trades bandwidth for tail latency.
    hedge: bool = False

    def __post_init__(self) -> None:
        if not (0.0 <= self.jitter < 1.0):
            raise ConfigError(
                f"retry jitter must be in [0, 1), got {self.jitter}"
            )

    def backoff(self, attempt: int) -> float:
        """Backoff multiplier (in units of ``tau``) for retry ``attempt``."""
        return min(self.base * self.factor ** attempt, self.cap)

    def backoff_jittered(self, attempt: int, nonce: int) -> float:
        """Backoff with deterministic seeded jitter.

        The draw is counter-based — ``default_rng((seed, nonce))`` — so a
        given ``(policy, nonce)`` pair always yields the same wait, and
        two injectors built with the same seed replay identical schedules.
        With ``jitter == 0`` this returns :meth:`backoff` exactly (no RNG
        is constructed), preserving bit-identity with older plans.
        """
        wait = self.backoff(attempt)
        if self.jitter <= 0.0:
            return wait
        u = float(np.random.default_rng((self.seed, nonce)).random())
        return wait * (1.0 + self.jitter * (2.0 * u - 1.0))


@dataclass
class FaultStats:
    """Everything the fault subsystem did, for reports and tests."""

    node_kills: int = 0
    link_kills: int = 0
    drops: int = 0
    retries: int = 0
    detour_rounds: int = 0
    backoff_time: float = 0.0
    recoveries: int = 0
    remapped_arrays: int = 0
    recovery_ticks: float = 0.0
    bit_flips: int = 0
    link_corruptions: int = 0
    sdc_skipped: int = 0  # flips aimed at dead nodes / empty registries
    # Gray-failure accounting (published under ``faults.gray.*``).
    link_slows: int = 0
    node_slows: int = 0
    gray_recoveries: int = 0
    slow_rounds: int = 0
    slow_time: float = 0.0
    flaky_links: int = 0
    flaky_drops: int = 0
    hedged_retransmits: int = 0
    straggler_detours: int = 0
    # Heal / re-expansion accounting (published under ``faults.*``).
    node_heals: int = 0
    link_heals: int = 0
    expansions: int = 0

    #: stat names that publish under the ``faults.gray.`` prefix.
    _GRAY = (
        "link_slows",
        "node_slows",
        "gray_recoveries",
        "slow_rounds",
        "slow_time",
        "flaky_links",
        "flaky_drops",
        "hedged_retransmits",
        "straggler_detours",
    )

    def as_dict(self) -> dict:
        return {
            "node_kills": self.node_kills,
            "link_kills": self.link_kills,
            "drops": self.drops,
            "retries": self.retries,
            "detour_rounds": self.detour_rounds,
            "backoff_time": self.backoff_time,
            "recoveries": self.recoveries,
            "remapped_arrays": self.remapped_arrays,
            "recovery_ticks": self.recovery_ticks,
            "bit_flips": self.bit_flips,
            "link_corruptions": self.link_corruptions,
            "sdc_skipped": self.sdc_skipped,
            "link_slows": self.link_slows,
            "node_slows": self.node_slows,
            "gray_recoveries": self.gray_recoveries,
            "slow_rounds": self.slow_rounds,
            "slow_time": self.slow_time,
            "flaky_links": self.flaky_links,
            "flaky_drops": self.flaky_drops,
            "hedged_retransmits": self.hedged_retransmits,
            "straggler_detours": self.straggler_detours,
            "node_heals": self.node_heals,
            "link_heals": self.link_heals,
            "expansions": self.expansions,
        }

    def publish_metrics(self, registry) -> None:
        """Publish fault totals into a metrics registry (read-only).

        Detour rounds publish as ``router.detours``: they are the router's
        surcharge for dead links, reported beside the other router work.
        Gray-failure totals publish under ``faults.gray.*``.
        """
        for name, value in self.as_dict().items():
            if name == "detour_rounds":
                continue
            if name in self._GRAY:
                registry.publish(f"faults.gray.{name}", value)
            else:
                registry.publish(f"faults.{name}", value)
        registry.publish("router.detours", self.detour_rounds, unit="rounds")


class HealthTracker:
    """Per-link / per-node health scores learned from observed round times.

    The detection side of the gray-failure story: nothing tells the
    router which links are slow — it has to *notice*.  Every charged
    round that crosses a degraded component stretches on the simulated
    clock; each endpoint observes its own exchange timing, so the
    slowdown is attributable to the specific link (or node) involved.
    The tracker keeps an exponentially-weighted estimate of each
    component's latency multiplier (1.0 = healthy) and forgets scores
    when a component is observed healthy again.

    Scores for links the router is actively *avoiding* persist: a
    detoured link produces no fresh timing telemetry, so there is no
    evidence it recovered — exactly the sticky-avoidance behaviour a
    real health-checking mesh exhibits until it probes again.
    """

    #: EWMA weight of a fresh observation.
    alpha = 0.5
    #: per-observation decay toward healthy for components seen fast.
    forget = 0.5

    def __init__(self) -> None:
        self._link: Dict[Tuple[int, int], float] = {}  # (dim, lo) -> est
        self._node: Dict[int, float] = {}  # pid -> est

    @property
    def tracked(self) -> int:
        """Number of components currently under suspicion."""
        return len(self._link) + len(self._node)

    def link_factor(self, dim: int, lo: int) -> float:
        """Estimated latency multiplier of link ``(dim, lo)`` (1.0 = healthy)."""
        return self._link.get((dim, lo), 1.0)

    def node_factor(self, pid: int) -> float:
        """Estimated straggler multiplier of node ``pid`` (1.0 = healthy)."""
        return self._node.get(pid, 1.0)

    def observe_round(
        self,
        dim: Optional[int],
        slow_links: Dict[int, float],
        slow_nodes: Dict[int, float],
        participating: Optional[set] = None,
    ) -> None:
        """Fold one charged round's timing evidence into the scores.

        ``slow_links`` maps low-pid -> true factor for the degraded links
        of ``dim`` this round actually crossed; ``slow_nodes`` the
        machine's straggler map.  ``participating`` (router rounds) is
        the set of low pids whose links carried traffic — links that did
        not participate yield no telemetry, so their scores are left
        untouched; ``None`` (structured rounds) means every link of
        ``dim`` participated.
        """
        if dim is not None:
            for lo, factor in slow_links.items():
                key = (dim, lo)
                est = self._link.get(key, 1.0)
                self._link[key] = est + self.alpha * (factor - est)
            for key in [k for k in self._link if k[0] == dim]:
                lo = key[1]
                if lo in slow_links:
                    continue
                if participating is not None and lo not in participating:
                    continue  # no traffic crossed it: no evidence either way
                est = 1.0 + (self._link[key] - 1.0) * (1.0 - self.forget)
                if est <= 1.0 + 1e-9:
                    del self._link[key]
                else:
                    self._link[key] = est
        for pid, factor in slow_nodes.items():
            est = self._node.get(pid, 1.0)
            self._node[pid] = est + self.alpha * (factor - est)
        for pid in [p for p in self._node if p not in slow_nodes]:
            est = 1.0 + (self._node[pid] - 1.0) * (1.0 - self.forget)
            if est <= 1.0 + 1e-9:
                del self._node[pid]
            else:
                self._node[pid] = est

    def scores(self) -> dict:
        """A JSON-able snapshot of the current suspicion table."""
        return {
            "links": {
                f"{dim}@{lo}": round(est, 4)
                for (dim, lo), est in sorted(self._link.items())
            },
            "nodes": {
                str(pid): round(est, 4)
                for pid, est in sorted(self._node.items())
            },
        }

    def clear(self) -> None:
        self._link.clear()
        self._node.clear()


class _FlakyLink:
    """One armed :class:`~.plan.LinkFlaky` window with its own draw stream."""

    __slots__ = ("drop_p", "until", "rng")

    def __init__(self, drop_p: float, until: float, seed: int) -> None:
        self.drop_p = drop_p
        self.until = until  # simulated time the window closes (inf = open)
        self.rng = np.random.default_rng(seed)


class FaultInjector:
    """Drives a :class:`FaultPlan` against one machine's simulated clock.

    The injector survives degraded-mode recovery: when the session remaps
    onto a healthy subcube, :meth:`translate` renames the remaining
    unfired events into subcube coordinates (events targeting removed
    processors, links or dimensions are dropped) and the new machine
    re-attaches the same injector, so ``stats`` accumulates across the
    whole resilient run.
    """

    def __init__(
        self,
        plan: FaultPlan,
        retry: Optional[RetryPolicy] = None,
        avoid_stragglers: bool = True,
    ) -> None:
        self.plan = plan
        self.retry = retry if retry is not None else RetryPolicy()
        self.stats = FaultStats()
        self.machine: Optional["Hypercube"] = None
        self.log: List[dict] = []  # applied events, in firing order
        self._pending: List = list(plan.events)
        self._next = 0
        self._armed_drops: Dict[int, int] = {}  # dim -> drops awaiting a round
        # dim -> LinkCorrupt events awaiting the next exchange on that dim
        self._armed_corruptions: Dict[int, List[LinkCorrupt]] = {}
        # Gray-failure machinery.  The health tracker feeds the router's
        # straggler-avoidance sweep; ``avoid_stragglers`` gates whether
        # the router may act on it.
        self.health = HealthTracker()
        self.avoid_stragglers = avoid_stragglers
        self._flaky: Dict[int, List[_FlakyLink]] = {}  # dim -> armed windows
        # Scheduled gray recoveries, kept sorted by expiry time:
        # (time, kind, dim_or_None, pid_or_lo, factor).  The factor lets a
        # recovery no-op when a later event re-degraded the component.
        self._gray_expiries: List[tuple] = []
        self._jitter_nonce = 0  # counter for RetryPolicy.backoff_jittered
        # Recently registered machine arrays: the BitFlip target registry
        # when no ABFT manager is attached.  Bounded so the injector never
        # pins unbounded history; PVar uses __slots__ without __weakref__,
        # hence strong references in a small deque.
        self._memory: "collections.deque" = collections.deque(maxlen=16)

    def bind(self, machine: "Hypercube") -> None:
        """Bind to a machine (called by ``Hypercube.attach_faults``)."""
        self.machine = machine

    def publish_metrics(self, registry) -> None:
        """Delegate to the stats record (the registry walks attachments)."""
        self.stats.publish_metrics(registry)

    def now(self) -> float:
        return self.machine.counters.time

    @property
    def exhausted(self) -> bool:
        """True when every scheduled event has fired."""
        return self._next >= len(self._pending)

    # -- event application -----------------------------------------------------

    def poll(self, strict: bool = True) -> None:
        """Fire every event whose simulated time has arrived.

        With ``strict`` (the structured-collective path), raises
        :class:`NodeKilledError` if the machine has dead processors — SIMD
        rounds over a dead node are impossible until recovery remaps.  The
        router polls non-strictly: point-to-point traffic between live
        endpoints is still legal on a machine with dead nodes.
        """
        machine = self.machine
        now = machine.counters.time
        # Gray recoveries fire before new events: an expiry scheduled
        # earlier than a due event must land first on the simulated clock.
        while self._gray_expiries and self._gray_expiries[0][0] <= now:
            self._expire_gray(self._gray_expiries.pop(0))
        while self._next < len(self._pending):
            ev = self._pending[self._next]
            if ev.time > now:
                break
            self._next += 1
            self._apply(ev)
        if strict and machine._n_dead_nodes:
            raise NodeKilledError(
                f"{machine._n_dead_nodes} of {machine.p} processors are dead "
                f"(epoch {machine.epoch}); degraded-mode recovery required"
            )

    def _apply(self, ev) -> None:
        machine = self.machine
        entry = ev.as_dict()
        entry["fired_at"] = machine.counters.time
        if isinstance(ev, NodeKill):
            if machine.kill_node(ev.pid):
                self.stats.node_kills += 1
        elif isinstance(ev, LinkKill):
            if machine.kill_link(ev.dim, ev.pid):
                self.stats.link_kills += 1
        elif isinstance(ev, LinkDrop):
            self._armed_drops[ev.dim] = (
                self._armed_drops.get(ev.dim, 0) + ev.count
            )
            self.stats.drops += ev.count
            tracer = machine.tracer
            if tracer is not None:
                tracer.instant(
                    f"link_drop:dim{ev.dim}", "fault", dim=ev.dim, count=ev.count
                )
        elif isinstance(ev, BitFlip):
            self._apply_bit_flip(ev, entry)
        elif isinstance(ev, LinkCorrupt):
            self._armed_corruptions.setdefault(ev.dim % max(machine.n, 1), []).append(ev)
        elif isinstance(ev, LinkSlow):
            if machine.n < 1:
                entry["skipped"] = True
            else:
                dim = ev.dim % machine.n
                pid = ev.pid % machine.p
                if machine.slow_link(dim, pid, ev.factor):
                    self.stats.link_slows += 1
                    if ev.duration > 0:
                        # The recovery window opens when the degradation
                        # actually lands (poll time), not at the scheduled
                        # time -- a late-firing event still degrades for
                        # its full duration.
                        lo = min(pid, pid ^ (1 << dim))
                        bisect.insort(
                            self._gray_expiries,
                            (machine.counters.time + ev.duration,
                             "link", dim, lo, ev.factor),
                        )
                else:
                    entry["skipped"] = True  # link already dead
        elif isinstance(ev, NodeSlow):
            pid = ev.pid % machine.p
            if machine.slow_node(pid, ev.factor):
                self.stats.node_slows += 1
                if ev.duration > 0:
                    bisect.insort(
                        self._gray_expiries,
                        (machine.counters.time + ev.duration,
                         "node", None, pid, ev.factor),
                    )
            else:
                entry["skipped"] = True  # node already dead
        elif isinstance(ev, NodeHeal):
            if machine.revive_node(ev.pid % machine.p):
                self.stats.node_heals += 1
            else:
                entry["skipped"] = True  # node is alive (or kill never fired)
        elif isinstance(ev, LinkHeal):
            if machine.n < 1:
                entry["skipped"] = True
            elif machine.revive_link(ev.dim % machine.n, ev.pid % machine.p):
                self.stats.link_heals += 1
            else:
                entry["skipped"] = True  # link is alive (or kill never fired)
        elif isinstance(ev, LinkFlaky):
            if machine.n < 1:
                entry["skipped"] = True
            else:
                dim = ev.dim % machine.n
                until = (
                    machine.counters.time + ev.duration
                    if ev.duration > 0
                    else float("inf")
                )
                self._flaky.setdefault(dim, []).append(
                    _FlakyLink(ev.drop_p, until, ev.seed)
                )
                self.stats.flaky_links += 1
                tracer = machine.tracer
                if tracer is not None:
                    tracer.instant(
                        f"link_flaky:dim{dim}", "fault",
                        dim=dim, drop_p=ev.drop_p,
                    )
        else:  # pragma: no cover - future event kinds
            raise TypeError(f"unknown fault event {ev!r}")
        self.log.append(entry)

    def _expire_gray(self, expiry: tuple) -> None:
        """Recover a slow component whose degradation window has closed.

        The recorded factor guards against a later event re-degrading the
        same component: recovery only fires while the machine still holds
        the factor this expiry was scheduled for.
        """
        machine = self.machine
        _, kind, dim, target, factor = expiry
        if kind == "link":
            if machine.link_slow_factor(dim, target) == factor:
                if machine.restore_link_speed(dim, target):
                    self.stats.gray_recoveries += 1
        else:
            if machine.node_slow_factor(target) == factor:
                if machine.restore_node_speed(target):
                    self.stats.gray_recoveries += 1

    # -- silent data corruption ------------------------------------------------

    def register_memory(self, pvar: "PVar") -> "PVar":
        """Register an array as a candidate :class:`BitFlip` target.

        With an ABFT manager attached the manager's protected registry is
        the target set instead, so flips always hit checksum-guarded
        storage; this explicit registry serves no-ABFT runs (where the
        corruption propagates silently — the failure mode ABFT removes).
        """
        self._memory.append(pvar)
        return pvar

    def _sdc_targets(self) -> List["PVar"]:
        machine = self.machine
        abft = getattr(machine, "abft", None) if machine is not None else None
        if abft is not None:
            return abft.protected_pvars()
        return list(self._memory)

    def _apply_bit_flip(self, ev: BitFlip, entry: dict) -> None:
        """Corrupt one stored bit of a registered array (copy-on-corrupt)."""
        machine = self.machine
        targets = self._sdc_targets()
        pid = ev.pid % machine.p
        if not targets or not machine.node_alive(pid):
            self.stats.sdc_skipped += 1
            entry["skipped"] = True
            return
        pv = targets[-1 - (ev.target % len(targets))]
        if pv.data.shape[0] != machine.p:
            # Registered on a machine this injector has since left behind
            # (degraded-mode remap); the old storage is dead.
            self.stats.sdc_skipped += 1
            entry["skipped"] = True
            return
        data = np.array(pv.data)  # copy-on-corrupt: old readers stay clean
        u8 = data.reshape(machine.p, -1).view(np.uint8)
        if u8.shape[1] == 0:  # pragma: no cover - degenerate empty block
            self.stats.sdc_skipped += 1
            entry["skipped"] = True
            return
        slot = ev.slot % u8.shape[1]
        u8[pid, slot] ^= np.uint8(1 << (ev.bit % 8))
        pv.data = data
        self.stats.bit_flips += 1
        entry["pid"] = pid
        entry["byte"] = slot
        tracer = machine.tracer
        if tracer is not None:
            tracer.instant(
                "sdc:bitflip", "fault", pid=pid, byte=slot, bit=ev.bit % 8
            )

    def deliver(self, out: "PVar", dim: int) -> "PVar":
        """Apply armed in-flight corruption to an exchanged block.

        Called by :meth:`Hypercube.exchange` on the received block.  This
        is the no-wire-checksum path: the corrupted block is delivered
        silently, and the bad value propagates into everything computed
        from it — exactly the failure mode the ABFT layer exists to
        remove.  (With ABFT attached, :meth:`on_round` already drained the
        armed corruption during the round's charge and paid the
        retransmission, so this finds nothing.)
        """
        pending = self._armed_corruptions.pop(dim, None)
        if not pending:
            return out
        machine = self.machine
        from ..machine.pvar import PVar

        tracer = machine.tracer
        for ev in pending:
            self.stats.link_corruptions += 1
            data = np.array(out.data)
            u8 = data.reshape(machine.p, -1).view(np.uint8)
            if u8.shape[1] == 0:  # pragma: no cover - degenerate empty block
                continue
            pid = ev.pid % machine.p
            slot = ev.slot % u8.shape[1]
            u8[pid, slot] ^= np.uint8(1 << (ev.bit % 8))
            out = PVar(machine, data)
            if tracer is not None:
                tracer.instant(
                    "sdc:link", "fault", dim=dim, pid=pid, byte=slot,
                    bit=ev.bit % 8,
                )
        return out

    # -- per-round hooks (called from Hypercube.charge_comm_round) -------------

    def on_round(self, dim: Optional[int], volume: float, rounds: int) -> None:
        """Consume armed transient drops on ``dim``: charge the retries.

        Each retry re-sends the full round (one extra charged round of the
        same volume) after a backoff wait; the wait is charged as pure time
        (zero elements, zero rounds) so element/round counters only ever
        reflect traffic that actually moved.

        With ABFT wire checksums attached, *every* armed in-flight
        corruption is consumed here regardless of dimension: every charged
        round carries a checksum word, so the receiver detects the bad
        block wherever it crossed — a structured exchange, a plan-replayed
        collective, or an unlabelled round — and one retransmission of the
        same volume is charged along the corrupted link's dimension.
        Without ABFT the corruption stays armed for the next *real*
        exchange along its dimension (see :meth:`deliver`), where there is
        an actual block to corrupt.
        """
        machine = self.machine
        abft = getattr(machine, "abft", None)
        if abft is not None and self._armed_corruptions:
            armed = self._armed_corruptions
            self._armed_corruptions = {}
            for d in sorted(armed):
                for _ in armed[d]:
                    self.stats.link_corruptions += 1
                    machine._charge_comm_round_plain(volume, 1, d)
                    abft.on_wire_retransmit(d)
        # Health telemetry: every structured round's observed timing feeds
        # the suspicion table (all links of ``dim`` participated).  Guarded
        # so fail-stop-only runs never touch the tracker.
        if machine.gray_active or self.health.tracked:
            self.health.observe_round(
                dim,
                machine._slow_links_by_dim.get(dim, {})
                if dim is not None
                else {},
                machine._slow_nodes,
            )
        if dim is None:
            return
        pending = self._armed_drops.pop(dim, 0)
        if pending:
            retries = min(pending, self.retry.max_retries)
            self._charge_retries(dim, volume, retries)
            tracer = machine.tracer
            if tracer is not None:
                tracer.instant(
                    f"retry:dim{dim}",
                    "fault",
                    dim=dim,
                    dropped=pending,
                    retries=retries,
                )
        flaky = self._flaky.get(dim)
        if flaky:
            now = machine.counters.time
            live = [f for f in flaky if f.until > now]
            expired = len(flaky) - len(live)
            if expired:
                self.stats.gray_recoveries += expired
                if live:
                    self._flaky[dim] = live
                else:
                    del self._flaky[dim]
            drops = sum(1 for f in live if f.rng.random() < f.drop_p)
            if drops:
                self.stats.flaky_drops += drops
                retries = min(drops, self.retry.max_retries)
                self._charge_retries(dim, volume, retries)
                tracer = machine.tracer
                if tracer is not None:
                    tracer.instant(
                        f"flaky:dim{dim}", "fault", dim=dim, dropped=drops
                    )

    def _charge_retries(self, dim: int, volume: float, retries: int) -> None:
        """Charge ``retries`` re-sends of a dropped round along ``dim``.

        The plain path re-sends after a (jittered) backoff wait charged as
        pure time; the hedged path instead sends the block twice at once —
        double the volume per retry, no backoff — trading bandwidth for
        tail latency on flaky links.
        """
        machine = self.machine
        retry = self.retry
        if retry.hedge:
            for _ in range(retries):
                machine._charge_comm_round_plain(2.0 * volume, 1, dim)
            self.stats.hedged_retransmits += retries
        else:
            tau = machine.cost_model.tau
            backoff = 0.0
            for attempt in range(retries):
                backoff += tau * retry.backoff_jittered(
                    attempt, self._jitter_nonce
                )
                self._jitter_nonce += 1
                machine._charge_comm_round_plain(volume, 1, dim)
            machine.counters.charge_transfer(0.0, 0, backoff)
            self.stats.backoff_time += backoff
        self.stats.retries += retries

    def on_gray_round(self, dim: Optional[int], rounds: int, extra: float) -> None:
        """Record a lockstep stretch charged by the machine (pure time)."""
        self.stats.slow_rounds += rounds
        self.stats.slow_time += extra

    # -- degraded-mode translation ---------------------------------------------

    def translate(self, free_dims: Sequence[int], base: int) -> None:
        """Rename remaining events into the coordinates of a subcube.

        ``free_dims`` (parent dimensions the subcube keeps, ascending) and
        ``base`` (the parent address bits fixed by the subcube) come from
        :func:`repro.faults.recovery.largest_healthy_subcube`.  Unfired
        events whose target survives are renamed; events aimed at removed
        processors or collapsed dimensions are dropped (the hardware they
        target no longer exists).  Fired events stay in ``log`` untouched.
        """
        free_dims = list(free_dims)
        dim_map = {d: i for i, d in enumerate(free_dims)}
        keep = sum(1 << d for d in free_dims)

        def in_subcube(pid: int) -> bool:
            return (pid & ~keep) == base

        def compress(pid: int) -> int:
            return sum(((pid >> d) & 1) << i for i, d in enumerate(free_dims))

        remaining = []
        for ev in self._pending[self._next :]:
            if isinstance(ev, NodeKill):
                if in_subcube(ev.pid):
                    remaining.append(NodeKill(ev.time, pid=compress(ev.pid)))
            elif isinstance(ev, LinkKill):
                if ev.dim in dim_map and in_subcube(ev.pid):
                    remaining.append(
                        LinkKill(
                            ev.time, dim=dim_map[ev.dim], pid=compress(ev.pid)
                        )
                    )
            elif isinstance(ev, LinkDrop):
                if ev.dim in dim_map:
                    remaining.append(
                        LinkDrop(ev.time, dim=dim_map[ev.dim], count=ev.count)
                    )
            elif isinstance(ev, BitFlip):
                pid = ev.pid % self.machine.p if self.machine else ev.pid
                if in_subcube(pid):
                    remaining.append(
                        BitFlip(
                            ev.time,
                            pid=compress(pid),
                            slot=ev.slot,
                            bit=ev.bit,
                            target=ev.target,
                        )
                    )
            elif isinstance(ev, LinkCorrupt):
                pid = ev.pid % self.machine.p if self.machine else ev.pid
                if ev.dim in dim_map and in_subcube(pid):
                    remaining.append(
                        LinkCorrupt(
                            ev.time,
                            dim=dim_map[ev.dim],
                            pid=compress(pid),
                            slot=ev.slot,
                            bit=ev.bit,
                        )
                    )
            elif isinstance(ev, LinkSlow):
                pid = ev.pid % self.machine.p if self.machine else ev.pid
                if ev.dim in dim_map and in_subcube(pid):
                    remaining.append(
                        LinkSlow(
                            ev.time,
                            dim=dim_map[ev.dim],
                            pid=compress(pid),
                            factor=ev.factor,
                            duration=ev.duration,
                        )
                    )
            elif isinstance(ev, NodeSlow):
                pid = ev.pid % self.machine.p if self.machine else ev.pid
                if in_subcube(pid):
                    remaining.append(
                        NodeSlow(
                            ev.time,
                            pid=compress(pid),
                            factor=ev.factor,
                            duration=ev.duration,
                        )
                    )
            elif isinstance(ev, LinkFlaky):
                if ev.dim in dim_map:
                    remaining.append(
                        LinkFlaky(
                            ev.time,
                            dim=dim_map[ev.dim],
                            drop_p=ev.drop_p,
                            duration=ev.duration,
                            seed=ev.seed,
                        )
                    )
            elif isinstance(ev, NodeHeal):
                # Normally extracted into the expansion ledger before a
                # degrade (Session.degrade) — a heal surviving to here
                # follows its target like any other node event.
                if in_subcube(ev.pid):
                    remaining.append(NodeHeal(ev.time, pid=compress(ev.pid)))
            elif isinstance(ev, LinkHeal):
                if ev.dim in dim_map and in_subcube(ev.pid):
                    remaining.append(
                        LinkHeal(
                            ev.time, dim=dim_map[ev.dim], pid=compress(ev.pid)
                        )
                    )
        self._pending = remaining
        self._next = 0
        self._armed_drops = {
            dim_map[d]: c for d, c in self._armed_drops.items() if d in dim_map
        }
        self._armed_corruptions = {
            dim_map[d]: evs
            for d, evs in self._armed_corruptions.items()
            if d in dim_map
        }
        # Armed flaky windows follow their dimension into the subcube
        # (draw-stream state intact); windows on collapsed dims vanish
        # with the hardware.  Gray expiries are dropped — the new machine
        # starts with clean gray state (degrade() builds a fresh cube), so
        # there is nothing left to recover.
        self._flaky = {
            dim_map[d]: fs for d, fs in self._flaky.items() if d in dim_map
        }
        self._gray_expiries = []
        self.health.clear()
        # Old-machine arrays are dead after a remap; drop them as targets.
        self._memory.clear()

    def extract_heals(self) -> List:
        """Remove and return the unfired heal events.

        Called by ``Session.degrade`` before :meth:`translate`, which
        would otherwise drop heals with the hardware they target — but a
        heal aimed at removed hardware is exactly the event that makes
        re-expansion possible later, so it moves to the expansion ledger
        instead of vanishing.
        """
        heals: List = []
        rest: List = []
        for ev in self._pending[self._next:]:
            if isinstance(ev, (NodeHeal, LinkHeal)):
                heals.append(ev)
            else:
                rest.append(ev)
        if heals:
            self._pending = self._pending[: self._next] + rest
        return heals

    def untranslate(self, free_dims: Sequence[int], base: int) -> None:
        """Rename remaining events from subcube coordinates back up.

        The inverse of :meth:`translate`, used by re-expansion
        (``Session.promote``): ``free_dims``/``base`` describe how the
        *current* machine embeds in the root cube, and every pending
        event and armed transient is lifted into root coordinates (no
        event is ever dropped going up — the root has strictly more
        hardware).  The caller then points ``machine`` at the root and
        :meth:`translate`\\ s down into the promoted cube.
        """
        free_dims = list(free_dims)
        n_sub = len(free_dims)

        def lift(pid: int) -> int:
            out = base
            for i, d in enumerate(free_dims):
                out |= ((pid >> i) & 1) << d
            return out

        def lift_dim(dim: int) -> int:
            return free_dims[dim % n_sub] if n_sub else dim

        def lifted(ev):
            kwargs = {}
            if isinstance(ev, (NodeKill, NodeSlow, NodeHeal)):
                kwargs["pid"] = lift(ev.pid % (1 << n_sub))
            elif isinstance(ev, (LinkKill, LinkCorrupt, LinkSlow, LinkHeal)):
                kwargs["dim"] = lift_dim(ev.dim)
                kwargs["pid"] = lift(ev.pid % (1 << n_sub))
            elif isinstance(ev, (LinkDrop, LinkFlaky)):
                kwargs["dim"] = lift_dim(ev.dim)
            elif isinstance(ev, BitFlip):
                kwargs["pid"] = lift(ev.pid % (1 << n_sub))
            return replace(ev, **kwargs) if kwargs else ev

        self._pending = [lifted(ev) for ev in self._pending[self._next:]]
        self._next = 0
        self._armed_drops = {
            lift_dim(d): c for d, c in self._armed_drops.items()
        }
        self._armed_corruptions = {
            lift_dim(d): [lifted(e) for e in evs]
            for d, evs in self._armed_corruptions.items()
        }
        self._flaky = {lift_dim(d): fs for d, fs in self._flaky.items()}
        # Gray state and the memory registry are tied to the machine being
        # left behind; the follow-up translate() clears them again anyway.
        self._gray_expiries = []
        self.health.clear()
        self._memory.clear()


__all__ = ["RetryPolicy", "FaultStats", "HealthTracker", "FaultInjector"]
