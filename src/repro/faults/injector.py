"""The fault injector: applies a :class:`FaultPlan` to a live machine.

Attach with :meth:`Hypercube.attach_faults` (or ``Session(...,
faults=plan)``).  The machine polls the injector at every charged
communication round; events whose scheduled simulated time has arrived are
applied in order:

* :class:`~.plan.NodeKill` / :class:`~.plan.LinkKill` mutate the machine's
  health masks and bump the topology epoch (invalidating cached plans);
* :class:`~.plan.LinkDrop` *arms* transient drops on a dimension — the
  next round along that dimension retries, each retry charged as one extra
  round of the same volume plus capped exponential backoff waiting time;
* :class:`~.plan.BitFlip` flips one stored bit of a registered array
  (copy-on-corrupt: the array's storage is replaced by a corrupted copy,
  so values already read by in-flight operations stay clean — corruption
  affects *future* reads, which is what a memory upset does);
* :class:`~.plan.LinkCorrupt` *arms* in-flight corruption on a dimension —
  with ABFT wire checksums on, the next charged round (whatever its
  dimension: every round carries a checksum word) detects the bad block
  and charges a retransmission along the corrupted link; without them the
  next full-block exchange along that dimension silently delivers the
  corrupted block.

All fault accounting lives in :class:`FaultStats` (on the injector, not on
:class:`~repro.machine.counters.Counters` — the counters stay a pure cost
record).
"""

from __future__ import annotations

import collections
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, TYPE_CHECKING

import numpy as np

from ..errors import NodeKilledError
from .plan import BitFlip, FaultPlan, LinkCorrupt, LinkDrop, LinkKill, NodeKill

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..machine.hypercube import Hypercube
    from ..machine.pvar import PVar


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff for transient link drops.

    Retry ``k`` (0-based) waits ``tau * min(base * factor**k, cap)`` ticks
    before re-sending (``tau`` is the machine's start-up cost, so backoff
    scales with the cost model).  At most ``max_retries`` retries are
    charged per round; a drop burst longer than that is treated as
    recovered by the final retry (the link is transiently, not permanently,
    faulty).
    """

    max_retries: int = 4
    base: float = 1.0
    factor: float = 2.0
    cap: float = 8.0

    def backoff(self, attempt: int) -> float:
        """Backoff multiplier (in units of ``tau``) for retry ``attempt``."""
        return min(self.base * self.factor ** attempt, self.cap)


@dataclass
class FaultStats:
    """Everything the fault subsystem did, for reports and tests."""

    node_kills: int = 0
    link_kills: int = 0
    drops: int = 0
    retries: int = 0
    detour_rounds: int = 0
    backoff_time: float = 0.0
    recoveries: int = 0
    remapped_arrays: int = 0
    recovery_ticks: float = 0.0
    bit_flips: int = 0
    link_corruptions: int = 0
    sdc_skipped: int = 0  # flips aimed at dead nodes / empty registries

    def as_dict(self) -> dict:
        return {
            "node_kills": self.node_kills,
            "link_kills": self.link_kills,
            "drops": self.drops,
            "retries": self.retries,
            "detour_rounds": self.detour_rounds,
            "backoff_time": self.backoff_time,
            "recoveries": self.recoveries,
            "remapped_arrays": self.remapped_arrays,
            "recovery_ticks": self.recovery_ticks,
            "bit_flips": self.bit_flips,
            "link_corruptions": self.link_corruptions,
            "sdc_skipped": self.sdc_skipped,
        }

    def publish_metrics(self, registry) -> None:
        """Publish fault totals into a metrics registry (read-only).

        Detour rounds publish as ``router.detours``: they are the router's
        surcharge for dead links, reported beside the other router work.
        """
        for name, value in self.as_dict().items():
            if name == "detour_rounds":
                continue
            registry.publish(f"faults.{name}", value)
        registry.publish("router.detours", self.detour_rounds, unit="rounds")


class FaultInjector:
    """Drives a :class:`FaultPlan` against one machine's simulated clock.

    The injector survives degraded-mode recovery: when the session remaps
    onto a healthy subcube, :meth:`translate` renames the remaining
    unfired events into subcube coordinates (events targeting removed
    processors, links or dimensions are dropped) and the new machine
    re-attaches the same injector, so ``stats`` accumulates across the
    whole resilient run.
    """

    def __init__(
        self, plan: FaultPlan, retry: Optional[RetryPolicy] = None
    ) -> None:
        self.plan = plan
        self.retry = retry if retry is not None else RetryPolicy()
        self.stats = FaultStats()
        self.machine: Optional["Hypercube"] = None
        self.log: List[dict] = []  # applied events, in firing order
        self._pending: List = list(plan.events)
        self._next = 0
        self._armed_drops: Dict[int, int] = {}  # dim -> drops awaiting a round
        # dim -> LinkCorrupt events awaiting the next exchange on that dim
        self._armed_corruptions: Dict[int, List[LinkCorrupt]] = {}
        # Recently registered machine arrays: the BitFlip target registry
        # when no ABFT manager is attached.  Bounded so the injector never
        # pins unbounded history; PVar uses __slots__ without __weakref__,
        # hence strong references in a small deque.
        self._memory: "collections.deque" = collections.deque(maxlen=16)

    def bind(self, machine: "Hypercube") -> None:
        """Bind to a machine (called by ``Hypercube.attach_faults``)."""
        self.machine = machine

    def publish_metrics(self, registry) -> None:
        """Delegate to the stats record (the registry walks attachments)."""
        self.stats.publish_metrics(registry)

    def now(self) -> float:
        return self.machine.counters.time

    @property
    def exhausted(self) -> bool:
        """True when every scheduled event has fired."""
        return self._next >= len(self._pending)

    # -- event application -----------------------------------------------------

    def poll(self, strict: bool = True) -> None:
        """Fire every event whose simulated time has arrived.

        With ``strict`` (the structured-collective path), raises
        :class:`NodeKilledError` if the machine has dead processors — SIMD
        rounds over a dead node are impossible until recovery remaps.  The
        router polls non-strictly: point-to-point traffic between live
        endpoints is still legal on a machine with dead nodes.
        """
        machine = self.machine
        now = machine.counters.time
        while self._next < len(self._pending):
            ev = self._pending[self._next]
            if ev.time > now:
                break
            self._next += 1
            self._apply(ev)
        if strict and machine._n_dead_nodes:
            raise NodeKilledError(
                f"{machine._n_dead_nodes} of {machine.p} processors are dead "
                f"(epoch {machine.epoch}); degraded-mode recovery required"
            )

    def _apply(self, ev) -> None:
        machine = self.machine
        entry = ev.as_dict()
        entry["fired_at"] = machine.counters.time
        if isinstance(ev, NodeKill):
            if machine.kill_node(ev.pid):
                self.stats.node_kills += 1
        elif isinstance(ev, LinkKill):
            if machine.kill_link(ev.dim, ev.pid):
                self.stats.link_kills += 1
        elif isinstance(ev, LinkDrop):
            self._armed_drops[ev.dim] = (
                self._armed_drops.get(ev.dim, 0) + ev.count
            )
            self.stats.drops += ev.count
            tracer = machine.tracer
            if tracer is not None:
                tracer.instant(
                    f"link_drop:dim{ev.dim}", "fault", dim=ev.dim, count=ev.count
                )
        elif isinstance(ev, BitFlip):
            self._apply_bit_flip(ev, entry)
        elif isinstance(ev, LinkCorrupt):
            self._armed_corruptions.setdefault(ev.dim % max(machine.n, 1), []).append(ev)
        else:  # pragma: no cover - future event kinds
            raise TypeError(f"unknown fault event {ev!r}")
        self.log.append(entry)

    # -- silent data corruption ------------------------------------------------

    def register_memory(self, pvar: "PVar") -> "PVar":
        """Register an array as a candidate :class:`BitFlip` target.

        With an ABFT manager attached the manager's protected registry is
        the target set instead, so flips always hit checksum-guarded
        storage; this explicit registry serves no-ABFT runs (where the
        corruption propagates silently — the failure mode ABFT removes).
        """
        self._memory.append(pvar)
        return pvar

    def _sdc_targets(self) -> List["PVar"]:
        machine = self.machine
        abft = getattr(machine, "abft", None) if machine is not None else None
        if abft is not None:
            return abft.protected_pvars()
        return list(self._memory)

    def _apply_bit_flip(self, ev: BitFlip, entry: dict) -> None:
        """Corrupt one stored bit of a registered array (copy-on-corrupt)."""
        machine = self.machine
        targets = self._sdc_targets()
        pid = ev.pid % machine.p
        if not targets or not machine.node_alive(pid):
            self.stats.sdc_skipped += 1
            entry["skipped"] = True
            return
        pv = targets[-1 - (ev.target % len(targets))]
        if pv.data.shape[0] != machine.p:
            # Registered on a machine this injector has since left behind
            # (degraded-mode remap); the old storage is dead.
            self.stats.sdc_skipped += 1
            entry["skipped"] = True
            return
        data = np.array(pv.data)  # copy-on-corrupt: old readers stay clean
        u8 = data.reshape(machine.p, -1).view(np.uint8)
        if u8.shape[1] == 0:  # pragma: no cover - degenerate empty block
            self.stats.sdc_skipped += 1
            entry["skipped"] = True
            return
        slot = ev.slot % u8.shape[1]
        u8[pid, slot] ^= np.uint8(1 << (ev.bit % 8))
        pv.data = data
        self.stats.bit_flips += 1
        entry["pid"] = pid
        entry["byte"] = slot
        tracer = machine.tracer
        if tracer is not None:
            tracer.instant(
                "sdc:bitflip", "fault", pid=pid, byte=slot, bit=ev.bit % 8
            )

    def deliver(self, out: "PVar", dim: int) -> "PVar":
        """Apply armed in-flight corruption to an exchanged block.

        Called by :meth:`Hypercube.exchange` on the received block.  This
        is the no-wire-checksum path: the corrupted block is delivered
        silently, and the bad value propagates into everything computed
        from it — exactly the failure mode the ABFT layer exists to
        remove.  (With ABFT attached, :meth:`on_round` already drained the
        armed corruption during the round's charge and paid the
        retransmission, so this finds nothing.)
        """
        pending = self._armed_corruptions.pop(dim, None)
        if not pending:
            return out
        machine = self.machine
        from ..machine.pvar import PVar

        tracer = machine.tracer
        for ev in pending:
            self.stats.link_corruptions += 1
            data = np.array(out.data)
            u8 = data.reshape(machine.p, -1).view(np.uint8)
            if u8.shape[1] == 0:  # pragma: no cover - degenerate empty block
                continue
            pid = ev.pid % machine.p
            slot = ev.slot % u8.shape[1]
            u8[pid, slot] ^= np.uint8(1 << (ev.bit % 8))
            out = PVar(machine, data)
            if tracer is not None:
                tracer.instant(
                    "sdc:link", "fault", dim=dim, pid=pid, byte=slot,
                    bit=ev.bit % 8,
                )
        return out

    # -- per-round hooks (called from Hypercube.charge_comm_round) -------------

    def on_round(self, dim: Optional[int], volume: float, rounds: int) -> None:
        """Consume armed transient drops on ``dim``: charge the retries.

        Each retry re-sends the full round (one extra charged round of the
        same volume) after a backoff wait; the wait is charged as pure time
        (zero elements, zero rounds) so element/round counters only ever
        reflect traffic that actually moved.

        With ABFT wire checksums attached, *every* armed in-flight
        corruption is consumed here regardless of dimension: every charged
        round carries a checksum word, so the receiver detects the bad
        block wherever it crossed — a structured exchange, a plan-replayed
        collective, or an unlabelled round — and one retransmission of the
        same volume is charged along the corrupted link's dimension.
        Without ABFT the corruption stays armed for the next *real*
        exchange along its dimension (see :meth:`deliver`), where there is
        an actual block to corrupt.
        """
        machine = self.machine
        abft = getattr(machine, "abft", None)
        if abft is not None and self._armed_corruptions:
            armed = self._armed_corruptions
            self._armed_corruptions = {}
            for d in sorted(armed):
                for _ in armed[d]:
                    self.stats.link_corruptions += 1
                    machine._charge_comm_round_plain(volume, 1, d)
                    abft.on_wire_retransmit(d)
        if dim is None:
            return
        pending = self._armed_drops.pop(dim, 0)
        if not pending:
            return
        retries = min(pending, self.retry.max_retries)
        tau = machine.cost_model.tau
        backoff = 0.0
        for attempt in range(retries):
            backoff += tau * self.retry.backoff(attempt)
            machine._charge_comm_round_plain(volume, 1, dim)
        machine.counters.charge_transfer(0.0, 0, backoff)
        self.stats.retries += retries
        self.stats.backoff_time += backoff
        tracer = machine.tracer
        if tracer is not None:
            tracer.instant(
                f"retry:dim{dim}",
                "fault",
                dim=dim,
                dropped=pending,
                retries=retries,
                backoff=backoff,
            )

    # -- degraded-mode translation ---------------------------------------------

    def translate(self, free_dims: Sequence[int], base: int) -> None:
        """Rename remaining events into the coordinates of a subcube.

        ``free_dims`` (parent dimensions the subcube keeps, ascending) and
        ``base`` (the parent address bits fixed by the subcube) come from
        :func:`repro.faults.recovery.largest_healthy_subcube`.  Unfired
        events whose target survives are renamed; events aimed at removed
        processors or collapsed dimensions are dropped (the hardware they
        target no longer exists).  Fired events stay in ``log`` untouched.
        """
        free_dims = list(free_dims)
        dim_map = {d: i for i, d in enumerate(free_dims)}
        keep = sum(1 << d for d in free_dims)

        def in_subcube(pid: int) -> bool:
            return (pid & ~keep) == base

        def compress(pid: int) -> int:
            return sum(((pid >> d) & 1) << i for i, d in enumerate(free_dims))

        remaining = []
        for ev in self._pending[self._next :]:
            if isinstance(ev, NodeKill):
                if in_subcube(ev.pid):
                    remaining.append(NodeKill(ev.time, pid=compress(ev.pid)))
            elif isinstance(ev, LinkKill):
                if ev.dim in dim_map and in_subcube(ev.pid):
                    remaining.append(
                        LinkKill(
                            ev.time, dim=dim_map[ev.dim], pid=compress(ev.pid)
                        )
                    )
            elif isinstance(ev, LinkDrop):
                if ev.dim in dim_map:
                    remaining.append(
                        LinkDrop(ev.time, dim=dim_map[ev.dim], count=ev.count)
                    )
            elif isinstance(ev, BitFlip):
                pid = ev.pid % self.machine.p if self.machine else ev.pid
                if in_subcube(pid):
                    remaining.append(
                        BitFlip(
                            ev.time,
                            pid=compress(pid),
                            slot=ev.slot,
                            bit=ev.bit,
                            target=ev.target,
                        )
                    )
            elif isinstance(ev, LinkCorrupt):
                pid = ev.pid % self.machine.p if self.machine else ev.pid
                if ev.dim in dim_map and in_subcube(pid):
                    remaining.append(
                        LinkCorrupt(
                            ev.time,
                            dim=dim_map[ev.dim],
                            pid=compress(pid),
                            slot=ev.slot,
                            bit=ev.bit,
                        )
                    )
        self._pending = remaining
        self._next = 0
        self._armed_drops = {
            dim_map[d]: c for d, c in self._armed_drops.items() if d in dim_map
        }
        self._armed_corruptions = {
            dim_map[d]: evs
            for d, evs in self._armed_corruptions.items()
            if d in dim_map
        }
        # Old-machine arrays are dead after a remap; drop them as targets.
        self._memory.clear()


__all__ = ["RetryPolicy", "FaultStats", "FaultInjector"]
