"""The fault injector: applies a :class:`FaultPlan` to a live machine.

Attach with :meth:`Hypercube.attach_faults` (or ``Session(...,
faults=plan)``).  The machine polls the injector at every charged
communication round; events whose scheduled simulated time has arrived are
applied in order:

* :class:`~.plan.NodeKill` / :class:`~.plan.LinkKill` mutate the machine's
  health masks and bump the topology epoch (invalidating cached plans);
* :class:`~.plan.LinkDrop` *arms* transient drops on a dimension — the
  next round along that dimension retries, each retry charged as one extra
  round of the same volume plus capped exponential backoff waiting time.

All fault accounting lives in :class:`FaultStats` (on the injector, not on
:class:`~repro.machine.counters.Counters` — the counters stay a pure cost
record).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, TYPE_CHECKING

from ..errors import NodeKilledError
from .plan import FaultPlan, LinkDrop, LinkKill, NodeKill

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..machine.hypercube import Hypercube


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff for transient link drops.

    Retry ``k`` (0-based) waits ``tau * min(base * factor**k, cap)`` ticks
    before re-sending (``tau`` is the machine's start-up cost, so backoff
    scales with the cost model).  At most ``max_retries`` retries are
    charged per round; a drop burst longer than that is treated as
    recovered by the final retry (the link is transiently, not permanently,
    faulty).
    """

    max_retries: int = 4
    base: float = 1.0
    factor: float = 2.0
    cap: float = 8.0

    def backoff(self, attempt: int) -> float:
        """Backoff multiplier (in units of ``tau``) for retry ``attempt``."""
        return min(self.base * self.factor ** attempt, self.cap)


@dataclass
class FaultStats:
    """Everything the fault subsystem did, for reports and tests."""

    node_kills: int = 0
    link_kills: int = 0
    drops: int = 0
    retries: int = 0
    detour_rounds: int = 0
    backoff_time: float = 0.0
    recoveries: int = 0
    remapped_arrays: int = 0
    recovery_ticks: float = 0.0

    def as_dict(self) -> dict:
        return {
            "node_kills": self.node_kills,
            "link_kills": self.link_kills,
            "drops": self.drops,
            "retries": self.retries,
            "detour_rounds": self.detour_rounds,
            "backoff_time": self.backoff_time,
            "recoveries": self.recoveries,
            "remapped_arrays": self.remapped_arrays,
            "recovery_ticks": self.recovery_ticks,
        }


class FaultInjector:
    """Drives a :class:`FaultPlan` against one machine's simulated clock.

    The injector survives degraded-mode recovery: when the session remaps
    onto a healthy subcube, :meth:`translate` renames the remaining
    unfired events into subcube coordinates (events targeting removed
    processors, links or dimensions are dropped) and the new machine
    re-attaches the same injector, so ``stats`` accumulates across the
    whole resilient run.
    """

    def __init__(
        self, plan: FaultPlan, retry: Optional[RetryPolicy] = None
    ) -> None:
        self.plan = plan
        self.retry = retry if retry is not None else RetryPolicy()
        self.stats = FaultStats()
        self.machine: Optional["Hypercube"] = None
        self.log: List[dict] = []  # applied events, in firing order
        self._pending: List = list(plan.events)
        self._next = 0
        self._armed_drops: Dict[int, int] = {}  # dim -> drops awaiting a round

    def bind(self, machine: "Hypercube") -> None:
        """Bind to a machine (called by ``Hypercube.attach_faults``)."""
        self.machine = machine

    def now(self) -> float:
        return self.machine.counters.time

    @property
    def exhausted(self) -> bool:
        """True when every scheduled event has fired."""
        return self._next >= len(self._pending)

    # -- event application -----------------------------------------------------

    def poll(self, strict: bool = True) -> None:
        """Fire every event whose simulated time has arrived.

        With ``strict`` (the structured-collective path), raises
        :class:`NodeKilledError` if the machine has dead processors — SIMD
        rounds over a dead node are impossible until recovery remaps.  The
        router polls non-strictly: point-to-point traffic between live
        endpoints is still legal on a machine with dead nodes.
        """
        machine = self.machine
        now = machine.counters.time
        while self._next < len(self._pending):
            ev = self._pending[self._next]
            if ev.time > now:
                break
            self._next += 1
            self._apply(ev)
        if strict and machine._n_dead_nodes:
            raise NodeKilledError(
                f"{machine._n_dead_nodes} of {machine.p} processors are dead "
                f"(epoch {machine.epoch}); degraded-mode recovery required"
            )

    def _apply(self, ev) -> None:
        machine = self.machine
        entry = ev.as_dict()
        entry["fired_at"] = machine.counters.time
        if isinstance(ev, NodeKill):
            if machine.kill_node(ev.pid):
                self.stats.node_kills += 1
        elif isinstance(ev, LinkKill):
            if machine.kill_link(ev.dim, ev.pid):
                self.stats.link_kills += 1
        elif isinstance(ev, LinkDrop):
            self._armed_drops[ev.dim] = (
                self._armed_drops.get(ev.dim, 0) + ev.count
            )
            self.stats.drops += ev.count
            tracer = machine.tracer
            if tracer is not None:
                tracer.instant(
                    f"link_drop:dim{ev.dim}", "fault", dim=ev.dim, count=ev.count
                )
        else:  # pragma: no cover - future event kinds
            raise TypeError(f"unknown fault event {ev!r}")
        self.log.append(entry)

    # -- per-round hooks (called from Hypercube.charge_comm_round) -------------

    def on_round(self, dim: int, volume: float, rounds: int) -> None:
        """Consume armed transient drops on ``dim``: charge the retries.

        Each retry re-sends the full round (one extra charged round of the
        same volume) after a backoff wait; the wait is charged as pure time
        (zero elements, zero rounds) so element/round counters only ever
        reflect traffic that actually moved.
        """
        pending = self._armed_drops.pop(dim, 0)
        if not pending:
            return
        machine = self.machine
        retries = min(pending, self.retry.max_retries)
        tau = machine.cost_model.tau
        backoff = 0.0
        for attempt in range(retries):
            backoff += tau * self.retry.backoff(attempt)
            machine._charge_comm_round_plain(volume, 1, dim)
        machine.counters.charge_transfer(0.0, 0, backoff)
        self.stats.retries += retries
        self.stats.backoff_time += backoff
        tracer = machine.tracer
        if tracer is not None:
            tracer.instant(
                f"retry:dim{dim}",
                "fault",
                dim=dim,
                dropped=pending,
                retries=retries,
                backoff=backoff,
            )

    # -- degraded-mode translation ---------------------------------------------

    def translate(self, free_dims: Sequence[int], base: int) -> None:
        """Rename remaining events into the coordinates of a subcube.

        ``free_dims`` (parent dimensions the subcube keeps, ascending) and
        ``base`` (the parent address bits fixed by the subcube) come from
        :func:`repro.faults.recovery.largest_healthy_subcube`.  Unfired
        events whose target survives are renamed; events aimed at removed
        processors or collapsed dimensions are dropped (the hardware they
        target no longer exists).  Fired events stay in ``log`` untouched.
        """
        free_dims = list(free_dims)
        dim_map = {d: i for i, d in enumerate(free_dims)}
        keep = sum(1 << d for d in free_dims)

        def in_subcube(pid: int) -> bool:
            return (pid & ~keep) == base

        def compress(pid: int) -> int:
            return sum(((pid >> d) & 1) << i for i, d in enumerate(free_dims))

        remaining = []
        for ev in self._pending[self._next :]:
            if isinstance(ev, NodeKill):
                if in_subcube(ev.pid):
                    remaining.append(NodeKill(ev.time, pid=compress(ev.pid)))
            elif isinstance(ev, LinkKill):
                if ev.dim in dim_map and in_subcube(ev.pid):
                    remaining.append(
                        LinkKill(
                            ev.time, dim=dim_map[ev.dim], pid=compress(ev.pid)
                        )
                    )
            elif isinstance(ev, LinkDrop):
                if ev.dim in dim_map:
                    remaining.append(
                        LinkDrop(ev.time, dim=dim_map[ev.dim], count=ev.count)
                    )
        self._pending = remaining
        self._next = 0
        self._armed_drops = {
            dim_map[d]: c for d, c in self._armed_drops.items() if d in dim_map
        }


__all__ = ["RetryPolicy", "FaultStats", "FaultInjector"]
