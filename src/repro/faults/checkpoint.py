"""Checkpoint/restore of distributed arrays for degraded-mode recovery.

A :class:`Checkpoint` is a host-side snapshot: canonical (row-major) NumPy
copies of distributed arrays plus a small dict of solver state (step
counter, pivot lists, ...).  Host-side is deliberate — the Connection
Machine's front end survives node failures, and a host copy can be
re-scattered onto *any* machine, including the smaller subcube recovery
remaps onto.

The data motion is charged honestly on the simulated clock:

* **save** charges a gather-to-host schedule — for each cube dimension
  ``j`` one round of volume ``local * 2**j`` per array (the classic
  binary-tree gather, total ``local * (p - 1)`` elements per processor
  column) plus one local pack pass;
* **restore** charges the mirror-image scatter (recursive halving) on the
  machine doing the restoring — a degraded machine pays its own, smaller
  schedule.

Checkpoints are taken *before* faults land (periodically, from the
workload's ``on_step`` hook), so a save never races a dead node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from ..errors import CheckpointError


@dataclass
class Checkpoint:
    """One saved snapshot: arrays (host copies) plus solver state."""

    label: str
    step: int
    time: float  # simulated time at save
    arrays: Dict[str, np.ndarray] = field(default_factory=dict)
    state: Dict[str, Any] = field(default_factory=dict)

    def array(self, name: str) -> np.ndarray:
        """The saved array called ``name`` (:class:`CheckpointError` if absent)."""
        try:
            return self.arrays[name]
        except KeyError:
            raise CheckpointError(
                f"checkpoint {self.label!r} (step {self.step}) has no array "
                f"{name!r}; it holds {sorted(self.arrays)}"
            ) from None


class CheckpointStore:
    """Holds the latest checkpoint per label and charges its data motion.

    One store per resilient run; the workload saves periodically and, after
    the session degrades onto a subcube, restores from the latest snapshot
    to resume.  ``saves``/``restores`` count operations for reports.
    """

    def __init__(self, session: Any) -> None:
        self.session = session
        self._latest: Optional[Checkpoint] = None
        self.saves = 0
        self.restores = 0

    @property
    def latest(self) -> Optional[Checkpoint]:
        return self._latest

    # -- charged schedules -----------------------------------------------------

    def _charge_collection(self, local_size: float) -> None:
        """One binary-tree gather (or its mirror scatter) of an array."""
        machine = self.session.machine
        machine.charge_local(local_size)  # pack/unpack pass
        for j in range(machine.n):
            machine.charge_comm_round(local_size * (1 << j), dim=j)

    # -- operations ------------------------------------------------------------

    def save(
        self,
        label: str,
        arrays: Dict[str, Any],
        state: Optional[Dict[str, Any]] = None,
        step: int = 0,
    ) -> Checkpoint:
        """Snapshot distributed arrays (plus host arrays/state) to the host.

        ``arrays`` maps names to distributed arrays (anything with
        ``to_numpy()`` and a ``pvar``) or plain ndarrays (stored as-is,
        uncharged — they already live on the host).
        """
        machine = self.session.machine
        host: Dict[str, np.ndarray] = {}
        for name, arr in arrays.items():
            pvar = getattr(arr, "pvar", None)
            if pvar is not None:
                self._charge_collection(pvar.local_size)
                host[name] = np.array(arr.to_numpy())
            else:
                host[name] = np.array(arr)
        ck = Checkpoint(
            label=label,
            step=step,
            time=machine.counters.time,
            arrays=host,
            state=dict(state or {}),
        )
        self._latest = ck
        self.saves += 1
        tracer = machine.tracer
        if tracer is not None:
            tracer.instant(
                f"checkpoint:{label}",
                "fault",
                step=step,
                arrays=sorted(host),
            )
        return ck

    def restore(self, required: bool = False) -> Optional[Checkpoint]:
        """The latest checkpoint, charging its re-scatter on the *current*
        machine.

        Returns ``None`` when nothing has been saved yet (the workload then
        starts from its inputs), unless ``required`` — then that is a
        :class:`CheckpointError`.  Each distributed-array payload charges
        the scatter schedule for the machine doing the restoring; the
        charged ticks are folded into the injector's ``recovery_ticks``.
        """
        ck = self._latest
        if ck is None:
            if required:
                raise CheckpointError("no checkpoint has been saved")
            return None
        machine = self.session.machine
        start = machine.counters.time
        for host in ck.arrays.values():
            if machine.p == 0:  # pragma: no cover - defensive
                raise CheckpointError("cannot restore onto an empty machine")
            self._charge_collection(float(host.size) / machine.p)
        self.restores += 1
        injector = machine.faults
        if injector is not None:
            injector.stats.remapped_arrays += len(ck.arrays)
            injector.stats.recovery_ticks += machine.counters.time - start
        tracer = machine.tracer
        if tracer is not None:
            tracer.instant(
                f"restore:{ck.label}",
                "fault",
                step=ck.step,
                arrays=sorted(ck.arrays),
                p=machine.p,
            )
        return ck


__all__ = ["Checkpoint", "CheckpointStore"]
