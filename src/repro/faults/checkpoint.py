"""Checkpoint/restore of distributed arrays for degraded-mode recovery.

A :class:`Checkpoint` is a host-side snapshot: canonical (row-major) NumPy
copies of distributed arrays plus a small dict of solver state (step
counter, pivot lists, ...).  Host-side is deliberate — the Connection
Machine's front end survives node failures, and a host copy can be
re-scattered onto *any* machine, including the smaller subcube recovery
remaps onto.

What a save/restore pair *charges* on the simulated clock is pluggable
(:class:`~repro.faults.strategies.CheckpointPolicy`):

* ``host`` (default) charges a full gather-to-host schedule — for each
  cube dimension ``j`` one round of volume ``local * 2**j`` per array
  (the classic binary-tree gather, total ``local * (p - 1)`` elements per
  processor column) plus one local pack pass; restore charges the
  mirror-image scatter on the machine doing the restoring;
* ``diskless`` charges the in-cube mirror + parity-fold schedule
  (O(local) rounds per save) and stashes byte-sum parity panels with the
  checkpoint;
* ``incremental`` is diskless scaled by the dirty-block fraction since
  the previous snapshot, with a periodic full-snapshot fallback.

Plain host arrays in ``arrays`` are stored as-is and charge nothing on
either side — they already live on the host.  Checkpoints are taken
*before* faults land (periodically, from the workload's ``on_step``
hook), so a save never races a dead node; a fault *can* land mid-save or
mid-restore (the charged rounds poll the injector), in which case the
interrupted save never commits and recovery resumes from the previous
snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..errors import CheckpointError
from ..machine.dirty import block_signatures
from .strategies import CheckpointPolicy, PromotionPending, make_strategy


@dataclass
class Checkpoint:
    """One saved snapshot: arrays (host copies) plus solver state.

    ``distributed`` names the arrays that were machine-resident at save
    time (the only ones whose motion is charged on restore); ``meta``
    records the strategy, machine size and mirror/parity dimensions of
    the save; ``panels`` holds per-array byte-sum parity signatures for
    the non-host strategies (verified on restore).
    """

    label: str
    step: int
    time: float  # simulated time at save
    arrays: Dict[str, np.ndarray] = field(default_factory=dict)
    state: Dict[str, Any] = field(default_factory=dict)
    distributed: Tuple[str, ...] = ()
    meta: Dict[str, Any] = field(default_factory=dict)
    panels: Dict[str, np.ndarray] = field(default_factory=dict)

    def array(self, name: str) -> np.ndarray:
        """The saved array called ``name`` (:class:`CheckpointError` if absent)."""
        try:
            return self.arrays[name]
        except KeyError:
            raise CheckpointError(
                f"checkpoint {self.label!r} (step {self.step}) has no array "
                f"{name!r}; it holds {sorted(self.arrays)}"
            ) from None


class CheckpointStore:
    """Holds the latest checkpoint per label and charges its data motion.

    One store per resilient run; the workload saves periodically and, after
    the session degrades onto a subcube, restores from the latest snapshot
    to resume.  ``saves``/``restores`` count operations,
    ``save_ticks``/``restore_ticks`` the simulated time they charged, and
    the ``full_saves``/``delta_saves``/``dirty_blocks``/``total_blocks``
    counters the incremental strategy's delta accounting.

    ``policy`` defaults to the session's ``checkpoint_policy`` (the
    ``Session(checkpoint=...)`` kwarg), then to the host-gather default.
    """

    def __init__(self, session: Any, policy: Any = None) -> None:
        self.session = session
        if policy is None:
            policy = getattr(session, "checkpoint_policy", None)
        self.policy = CheckpointPolicy.coerce(policy)
        self.strategy = make_strategy(self.policy)
        self._latest: Optional[Checkpoint] = None
        self.saves = 0
        self.restores = 0
        self.save_ticks = 0.0
        self.restore_ticks = 0.0
        self.full_saves = 0
        self.delta_saves = 0
        self.dirty_blocks = 0
        self.total_blocks = 0

    @property
    def latest(self) -> Optional[Checkpoint]:
        return self._latest

    def summary(self) -> dict:
        """Checkpoint accounting for reports and warehouse records."""
        data = {
            "strategy": self.policy.strategy,
            "every": self.policy.every,
            "saves": self.saves,
            "restores": self.restores,
            "save_ticks": self.save_ticks,
            "restore_ticks": self.restore_ticks,
        }
        if self.policy.strategy == "incremental":
            data.update(
                full_saves=self.full_saves,
                delta_saves=self.delta_saves,
                dirty_blocks=self.dirty_blocks,
                total_blocks=self.total_blocks,
            )
        return data

    # -- operations ------------------------------------------------------------

    def save(
        self,
        label: str,
        arrays: Dict[str, Any],
        state: Optional[Dict[str, Any]] = None,
        step: int = 0,
    ) -> Checkpoint:
        """Snapshot distributed arrays (plus host arrays/state) to safety.

        ``arrays`` maps names to distributed arrays (anything with
        ``to_numpy()`` and a ``pvar``) or plain ndarrays (stored as-is,
        uncharged — they already live on the host).  Charges the policy's
        save schedule per distributed array; a fault landing inside those
        charged rounds aborts the save uncommitted.  May raise
        :class:`~repro.faults.strategies.PromotionPending` *after* the
        checkpoint commits, when re-expansion is possible (see
        :func:`~repro.faults.recovery.run_resilient`).
        """
        machine = self.session.machine
        start = machine.counters.time
        index = self.saves
        prev = self._latest
        host: Dict[str, np.ndarray] = {}
        distributed = []
        panels: Dict[str, np.ndarray] = {}
        meta: Dict[str, Any] = {
            "strategy": self.strategy.name,
            "p": machine.p,
            "full": True,
            "dirty": 0,
            "blocks": 0,
            "mirror_dim": None,
            "parity_dim": None,
        }
        for name, arr in arrays.items():
            pvar = getattr(arr, "pvar", None)
            if pvar is not None:
                # Host readback is uncharged (front-end visibility); the
                # strategy charges the cube-side data motion.
                host_now = np.array(arr.to_numpy())
                prev_host = prev.arrays.get(name) if prev is not None else None
                info = self.strategy.charge_save(
                    machine, pvar.local_size, index, prev_host, host_now
                )
                host[name] = host_now
                distributed.append(name)
                meta["mirror_dim"] = info["mirror_dim"]
                meta["parity_dim"] = info["parity_dim"]
                meta["full"] = bool(meta["full"] and info["full"])
                meta["dirty"] += info["dirty"]
                meta["blocks"] += info["blocks"]
                if self.policy.verify:
                    panel = self.strategy.signature_panel(
                        host_now, max(machine.p, 1)
                    )
                    if panel is not None:
                        panels[name] = panel
            else:
                host[name] = np.array(arr)
        ck = Checkpoint(
            label=label,
            step=step,
            time=machine.counters.time,
            arrays=host,
            state=dict(state or {}),
            distributed=tuple(distributed),
            meta=meta,
            panels=panels,
        )
        self._latest = ck
        self.saves += 1
        self.save_ticks += machine.counters.time - start
        if meta["full"]:
            self.full_saves += 1
        else:
            self.delta_saves += 1
        self.dirty_blocks += meta["dirty"]
        self.total_blocks += meta["blocks"]
        tracer = machine.tracer
        if tracer is not None:
            tracer.instant(
                f"checkpoint:{label}",
                "fault",
                step=step,
                arrays=sorted(host),
                strategy=self.strategy.name,
            )
        if self.policy.promote:
            ready = getattr(self.session, "promotion_ready", None)
            if ready is not None and ready():
                raise PromotionPending(ck)
        return ck

    def restore(self, required: bool = False) -> Optional[Checkpoint]:
        """The latest checkpoint, charging its redistribution on the
        *current* machine.

        Returns ``None`` when nothing has been saved yet (the workload then
        starts from its inputs), unless ``required`` — then that is a
        :class:`CheckpointError`.  Only the arrays that were distributed at
        save time charge the policy's restore schedule (host-only payloads
        were stored uncharged, so restoring them moves nothing); the
        charged ticks are folded into the injector's ``recovery_ticks``.
        With ``verify`` on, each restored array's byte-sum signature is
        checked against the panel stored at save time.
        """
        ck = self._latest
        if ck is None:
            if required:
                raise CheckpointError("no checkpoint has been saved")
            return None
        machine = self.session.machine
        start = machine.counters.time
        restored = 0
        distributed = set(ck.distributed)
        for name, host in ck.arrays.items():
            if name not in distributed:
                continue
            if machine.p == 0:  # pragma: no cover - defensive
                raise CheckpointError("cannot restore onto an empty machine")
            self.strategy.charge_restore(
                machine, float(host.size) / machine.p, ck.meta
            )
            panel = ck.panels.get(name)
            if panel is not None:
                observed = block_signatures(host, len(panel))
                if not np.array_equal(observed, panel):
                    raise CheckpointError(
                        f"checkpoint {ck.label!r} array {name!r} fails its "
                        f"parity-panel verification "
                        f"({int(np.count_nonzero(observed != panel))} of "
                        f"{len(panel)} block signatures diverge)"
                    )
            restored += 1
        self.restores += 1
        self.restore_ticks += machine.counters.time - start
        injector = machine.faults
        if injector is not None:
            injector.stats.remapped_arrays += restored
            injector.stats.recovery_ticks += machine.counters.time - start
        tracer = machine.tracer
        if tracer is not None:
            tracer.instant(
                f"restore:{ck.label}",
                "fault",
                step=ck.step,
                arrays=sorted(ck.arrays),
                p=machine.p,
                strategy=self.strategy.name,
            )
        return ck


__all__ = ["Checkpoint", "CheckpointStore"]
