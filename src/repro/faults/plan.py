"""Deterministic, seeded fault plans against the simulated clock.

A :class:`FaultPlan` is a time-sorted schedule of fault events.  Each event
carries the simulated time (in ticks of the machine's :class:`~repro.
machine.counters.Counters`) at which it fires; the attached
:class:`~repro.faults.injector.FaultInjector` polls the schedule at every
charged communication round and applies events whose time has come.

Because the simulated clock is itself deterministic, a given
``(workload, FaultPlan)`` pair always produces the same kills, detours,
retries and recovery ticks — the property the robustness tests pin.

Event kinds
-----------
:class:`NodeKill`
    Processor ``pid`` dies permanently.  Structured SIMD communication
    becomes impossible; recovery must remap onto a healthy subcube.
:class:`LinkKill`
    The link across cube dimension ``dim`` at ``pid`` dies permanently.
    Exchanges along ``dim`` survive via a 3-hop detour through an adjacent
    dimension (two extra charged rounds per round).
:class:`LinkDrop`
    Transient: the next communication round along ``dim`` is dropped
    ``count`` times before succeeding; each retry is charged one extra
    round plus capped exponential backoff.
:class:`BitFlip`
    Silent data corruption at rest: one bit of one stored element on one
    node flips.  No exception is raised by the hardware — detection is the
    ABFT layer's job (:mod:`repro.abft`); without it the corrupted value
    silently propagates.
:class:`LinkCorrupt`
    Silent data corruption in flight: one bit of one element crossing the
    link along ``dim`` flips on the wire.  With ABFT wire checksums on,
    the next charged round — whatever its dimension; every round carries
    a checksum word — detects the bad block and charges one
    retransmission along the corrupted link; without them the next
    full-block exchange along ``dim`` delivers the corrupted block as-is.
:class:`LinkSlow`
    Gray failure: the link across ``dim`` at ``pid`` keeps working but
    every charged round crossing it takes ``factor`` times as long on the
    simulated clock.  ``duration > 0`` recovers the link at
    ``time + duration``; ``duration == 0`` degrades it permanently.
:class:`NodeSlow`
    Gray failure: processor ``pid`` straggles — every structured round it
    participates in is stretched by ``factor`` (SIMD lockstep: the whole
    round waits for the slowest participant).  Optional ``duration`` as
    for :class:`LinkSlow`.
:class:`LinkFlaky`
    Gray failure: from ``time`` on, each charged round along ``dim``
    independently drops with probability ``drop_p`` (seeded, so replays
    are exact); each drop is retried like a :class:`LinkDrop` — or hedged,
    see :class:`~repro.faults.injector.RetryPolicy`.  ``duration > 0``
    bounds the flaky window.
:class:`NodeHeal`
    Repair: processor ``pid`` comes back to service.  Fired on a machine
    where ``pid`` is dead it revives the node in place; when the session
    has already degraded past the kill, the pending heal moves to the
    expansion ledger and re-opens the processor for re-expansion
    (``Session.promote``).
:class:`LinkHeal`
    Repair: the link across ``dim`` at ``pid`` comes back to service
    (in-place revival or ledger entry, as for :class:`NodeHeal`).

Plans serialise to/from JSON (:meth:`FaultPlan.as_dict` /
:meth:`FaultPlan.from_dict`, :meth:`to_json` / :meth:`from_json`) so a
recorded fault schedule — including SDC events — can be replayed exactly,
e.g. via the ``--fault-plan FILE`` CLI option.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from typing import Iterable, Iterator, List, Tuple

import numpy as np
from ..errors import ConfigError


@dataclass(frozen=True)
class FaultEvent:
    """Base class: something that happens at one simulated instant."""

    time: float

    def as_dict(self) -> dict:
        data = {"kind": type(self).__name__, "time": self.time}
        for key, value in self.__dict__.items():
            if key != "time":
                data[key] = value
        return data


@dataclass(frozen=True)
class NodeKill(FaultEvent):
    """Processor ``pid`` dies permanently at ``time``."""

    pid: int = 0


@dataclass(frozen=True)
class LinkKill(FaultEvent):
    """The link across ``dim`` at ``pid`` dies permanently at ``time``."""

    dim: int = 0
    pid: int = 0


@dataclass(frozen=True)
class LinkDrop(FaultEvent):
    """The next round along ``dim`` is dropped ``count`` times (transient)."""

    dim: int = 0
    count: int = 1


@dataclass(frozen=True)
class BitFlip(FaultEvent):
    """One stored bit flips silently at ``time``.

    ``target`` selects which machine-resident array is hit (an index into
    the injector's registry of protected/registered arrays, most recent
    first); ``pid``, ``slot`` and ``bit`` pick the processor, the local
    byte slot and the bit within it (each taken modulo the respective
    extent, so any values form a valid flip).  Flips aimed at a dead node
    or an empty registry are counted no-ops.
    """

    pid: int = 0
    slot: int = 0
    bit: int = 0
    target: int = 0


@dataclass(frozen=True)
class LinkCorrupt(FaultEvent):
    """One in-flight bit of the next transfer along ``dim`` flips.

    Armed when fired.  With ABFT wire checksums the next charged round
    (of any dimension) detects it and pays a retransmission along the
    corrupted link; without them the next full-block exchange along
    ``dim`` silently delivers the corrupted block.  ``pid``, ``slot`` and
    ``bit`` address the corrupted element of the received block (modulo
    the extents, as for :class:`BitFlip`).
    """

    dim: int = 0
    pid: int = 0
    slot: int = 0
    bit: int = 0


@dataclass(frozen=True)
class LinkSlow(FaultEvent):
    """The link across ``dim`` at ``pid`` slows by ``factor`` at ``time``.

    Rounds along ``dim`` that cross the slow link pay ``factor`` times the
    healthy round time (the surcharge is pure latency: element and round
    counters are untouched).  ``duration > 0`` schedules recovery at
    ``time + duration``; ``0`` means permanent.
    """

    dim: int = 0
    pid: int = 0
    factor: float = 4.0
    duration: float = 0.0

    def __post_init__(self) -> None:
        if self.factor < 1.0:
            raise ConfigError(
                f"LinkSlow factor must be >= 1, got {self.factor}"
            )
        if self.duration < 0.0:
            raise ConfigError(
                f"LinkSlow duration must be >= 0, got {self.duration}"
            )


@dataclass(frozen=True)
class NodeSlow(FaultEvent):
    """Processor ``pid`` straggles by ``factor`` at ``time``.

    Every structured SIMD round is stretched (lockstep waits for the
    slowest node); router rounds stretch only when ``pid`` sends or
    receives.  ``duration`` as for :class:`LinkSlow`.
    """

    pid: int = 0
    factor: float = 2.0
    duration: float = 0.0

    def __post_init__(self) -> None:
        if self.factor < 1.0:
            raise ConfigError(
                f"NodeSlow factor must be >= 1, got {self.factor}"
            )
        if self.duration < 0.0:
            raise ConfigError(
                f"NodeSlow duration must be >= 0, got {self.duration}"
            )


@dataclass(frozen=True)
class LinkFlaky(FaultEvent):
    """Rounds along ``dim`` drop with probability ``drop_p`` from ``time``.

    Each drop charges a retried round (plus backoff, or a hedged double
    transmission — see :class:`~repro.faults.injector.RetryPolicy`).  The
    draw stream is seeded by ``seed`` so identical plans replay
    identically.  ``duration > 0`` bounds the flaky window.
    """

    dim: int = 0
    drop_p: float = 0.25
    duration: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not (0.0 <= self.drop_p <= 1.0):
            raise ConfigError(
                f"LinkFlaky drop_p must be in [0, 1], got {self.drop_p}"
            )
        if self.duration < 0.0:
            raise ConfigError(
                f"LinkFlaky duration must be >= 0, got {self.duration}"
            )


@dataclass(frozen=True)
class NodeHeal(FaultEvent):
    """Processor ``pid`` comes back to service at ``time``."""

    pid: int = 0


@dataclass(frozen=True)
class LinkHeal(FaultEvent):
    """The link across ``dim`` at ``pid`` comes back to service at ``time``."""

    dim: int = 0
    pid: int = 0


class FaultPlan:
    """An immutable, time-sorted schedule of fault events.

    Build one explicitly from events, or with :meth:`random` for a seeded
    pseudo-random plan.  Equal-time events fire in construction order.
    """

    def __init__(self, events: Iterable[FaultEvent] = ()) -> None:
        indexed = list(events)
        for ev in indexed:
            if not isinstance(ev, FaultEvent):
                raise TypeError(f"not a FaultEvent: {ev!r}")
        # Stable sort: ties keep their construction order, so a plan is a
        # deterministic function of its event list alone.
        self.events: Tuple[FaultEvent, ...] = tuple(
            sorted(indexed, key=lambda ev: ev.time)
        )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kinds = {}
        for ev in self.events:
            name = type(ev).__name__
            kinds[name] = kinds.get(name, 0) + 1
        inner = ", ".join(f"{k}x{v}" for k, v in sorted(kinds.items()))
        return f"FaultPlan({len(self.events)} events: {inner})"

    def as_dict(self) -> dict:
        return {"events": [ev.as_dict() for ev in self.events]}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Rebuild a plan from :meth:`as_dict` output (exact round-trip).

        Malformed input — an entry that is not an object, an unknown
        ``kind``, missing or extra fields, a non-numeric field value —
        raises :class:`~repro.errors.ConfigError` naming the offending
        entry (``events[i]``) rather than leaking a raw ``KeyError`` or
        ``TypeError`` from the dataclass machinery.
        """
        if not isinstance(data, dict):
            raise ConfigError(
                f"fault plan must be a JSON object, got {type(data).__name__}"
            )
        raw_events = data.get("events", [])
        if not isinstance(raw_events, (list, tuple)):
            raise ConfigError(
                f"fault plan 'events' must be a list, "
                f"got {type(raw_events).__name__}"
            )
        events = []
        for index, entry in enumerate(raw_events):
            where = f"events[{index}]"
            if not isinstance(entry, dict):
                raise ConfigError(
                    f"{where}: expected an object, "
                    f"got {type(entry).__name__}"
                )
            entry = dict(entry)
            kind = entry.pop("kind", None)
            if kind is None:
                raise ConfigError(f"{where}: missing 'kind' field")
            event_cls = _EVENT_KINDS.get(kind)
            if event_cls is None:
                known = ", ".join(sorted(_EVENT_KINDS))
                raise ConfigError(
                    f"{where}: unknown fault event kind {kind!r} "
                    f"(known kinds: {known})"
                )
            field_names = {f.name for f in fields(event_cls)}
            unknown = sorted(set(entry) - field_names)
            if unknown:
                raise ConfigError(
                    f"{where}: unknown field(s) {unknown} "
                    f"for fault event {kind!r}"
                )
            if "time" not in entry:
                raise ConfigError(
                    f"{where}: fault event {kind!r} missing 'time' field"
                )
            for name, value in entry.items():
                if isinstance(value, bool) or not isinstance(
                    value, (int, float)
                ):
                    raise ConfigError(
                        f"{where}: field {name!r} of fault event "
                        f"{kind!r} must be a number, got {value!r}"
                    )
            try:
                events.append(event_cls(**entry))
            except ConfigError as exc:
                raise ConfigError(f"{where}: {exc}") from None
            except TypeError as exc:
                raise ConfigError(
                    f"{where}: bad fields for fault event {kind!r}: {exc}"
                ) from None
        return cls(events)

    def to_json(self, path: str) -> None:
        """Write the plan as a JSON document."""
        with open(path, "w") as fh:
            json.dump(self.as_dict(), fh, indent=2)
            fh.write("\n")

    @classmethod
    def from_json(cls, path: str) -> "FaultPlan":
        """Load a plan written by :meth:`to_json`.

        Malformed JSON and schema violations surface as
        :class:`~repro.errors.ConfigError` prefixed with the file path.
        """
        with open(path) as fh:
            try:
                data = json.load(fh)
            except json.JSONDecodeError as exc:
                raise ConfigError(
                    f"{path}: malformed fault-plan JSON: {exc}"
                ) from None
        try:
            return cls.from_dict(data)
        except ConfigError as exc:
            raise ConfigError(f"{path}: {exc}") from None

    @classmethod
    def random(
        cls,
        n: int,
        seed: int,
        horizon: float,
        link_kills: int = 1,
        node_kills: int = 0,
        drops: int = 2,
        max_drop_count: int = 2,
        window: Tuple[float, float] = (0.1, 0.9),
        bit_flips: int = 0,
        link_corruptions: int = 0,
        link_slows: int = 0,
        node_slows: int = 0,
        flaky_links: int = 0,
        slow_factor: Tuple[float, float] = (2.0, 6.0),
        slow_duration: Tuple[float, float] = (0.2, 0.5),
        flaky_drop_p: Tuple[float, float] = (0.1, 0.4),
        node_heals: int = 0,
        link_heals: int = 0,
        heal_window: Tuple[float, float] = (1.0, 1.6),
    ) -> "FaultPlan":
        """A seeded pseudo-random plan for an ``n``-dimensional machine.

        Event times are uniform in ``[window[0], window[1]] * horizon``
        (``horizon`` is typically the fault-free runtime of the workload,
        so events land mid-flight).  Link kills target distinct links; node
        kills target distinct processors.  The same ``(n, seed, horizon,
        ...)`` arguments always produce the identical plan.

        Gray events draw after all fail-stop/SDC events, so plans built
        with the pre-gray parameter set are byte-identical to what older
        versions produced.  ``slow_factor`` bounds the latency multiplier,
        ``slow_duration`` the recovery window as a fraction of ``horizon``
        (a quarter of gray events draw as permanent), ``flaky_drop_p``
        the per-round drop probability.

        Heal events draw after every other family (same stream-stability
        guarantee) and target components this plan actually killed —
        ``node_heals``/``link_heals`` are silently capped by the kills
        drawn.  Heal times land in ``heal_window * horizon``, past the
        nominal completion time, because recovery (restore + replay)
        stretches the faulted run well beyond the fault-free horizon.
        """
        if n < 1 and (link_kills or drops):
            raise ConfigError("link faults need a machine with n >= 1")
        if horizon <= 0:
            raise ConfigError(f"horizon must be positive, got {horizon}")
        lo, hi = window
        if not (0.0 <= lo <= hi <= 1.0):
            raise ConfigError(f"window must satisfy 0 <= lo <= hi <= 1, got {window}")
        rng = np.random.default_rng(seed)
        p = 1 << n
        events: List[FaultEvent] = []

        def when() -> float:
            return float(rng.uniform(lo * horizon, hi * horizon))

        seen_links = set()
        for _ in range(link_kills):
            for _ in range(16):  # distinct-link retry budget
                dim = int(rng.integers(n))
                pid = int(rng.integers(p))
                key = (dim, min(pid, pid ^ (1 << dim)))
                if key not in seen_links:
                    seen_links.add(key)
                    events.append(LinkKill(when(), dim=key[0], pid=key[1]))
                    break
        seen_nodes = set()
        for _ in range(node_kills):
            for _ in range(16):
                pid = int(rng.integers(p))
                if pid not in seen_nodes:
                    seen_nodes.add(pid)
                    events.append(NodeKill(when(), pid=pid))
                    break
        for _ in range(drops):
            events.append(
                LinkDrop(
                    when(),
                    dim=int(rng.integers(n)),
                    count=int(rng.integers(1, max_drop_count + 1)),
                )
            )
        for _ in range(bit_flips):
            events.append(
                BitFlip(
                    when(),
                    pid=int(rng.integers(p)),
                    slot=int(rng.integers(1 << 16)),
                    bit=int(rng.integers(64)),
                    target=int(rng.integers(4)),
                )
            )
        for _ in range(link_corruptions):
            if n < 1:
                raise ConfigError("link corruptions need a machine with n >= 1")
            events.append(
                LinkCorrupt(
                    when(),
                    dim=int(rng.integers(n)),
                    pid=int(rng.integers(p)),
                    slot=int(rng.integers(1 << 16)),
                    bit=int(rng.integers(64)),
                )
            )

        def gray_duration() -> float:
            # A quarter of gray events are permanent degradations.
            if rng.random() < 0.25:
                return 0.0
            return float(rng.uniform(*slow_duration)) * horizon

        if (link_slows or flaky_links) and n < 1:
            raise ConfigError("link faults need a machine with n >= 1")
        for _ in range(link_slows):
            dim = int(rng.integers(n))
            pid = int(rng.integers(p))
            events.append(
                LinkSlow(
                    when(),
                    dim=dim,
                    pid=min(pid, pid ^ (1 << dim)),
                    factor=float(rng.uniform(*slow_factor)),
                    duration=gray_duration(),
                )
            )
        for _ in range(node_slows):
            events.append(
                NodeSlow(
                    when(),
                    pid=int(rng.integers(p)),
                    factor=float(rng.uniform(*slow_factor)),
                    duration=gray_duration(),
                )
            )
        for _ in range(flaky_links):
            events.append(
                LinkFlaky(
                    when(),
                    dim=int(rng.integers(n)),
                    drop_p=float(rng.uniform(*flaky_drop_p)),
                    duration=gray_duration(),
                    seed=int(rng.integers(1 << 31)),
                )
            )

        def heal_when() -> float:
            return float(
                rng.uniform(heal_window[0] * horizon, heal_window[1] * horizon)
            )

        if node_heals and seen_nodes:
            victims = sorted(seen_nodes)
            for _ in range(node_heals):
                pid = int(victims[int(rng.integers(len(victims)))])
                events.append(NodeHeal(heal_when(), pid=pid))
        if link_heals and seen_links:
            link_victims = sorted(seen_links)
            for _ in range(link_heals):
                dim, lo = link_victims[int(rng.integers(len(link_victims)))]
                events.append(LinkHeal(heal_when(), dim=dim, pid=lo))
        return cls(events)


#: kind-name → event class, for :meth:`FaultPlan.from_dict`.
_EVENT_KINDS = {
    cls.__name__: cls
    for cls in (
        NodeKill,
        LinkKill,
        LinkDrop,
        BitFlip,
        LinkCorrupt,
        LinkSlow,
        NodeSlow,
        LinkFlaky,
        NodeHeal,
        LinkHeal,
    )
}


__all__ = [
    "FaultEvent",
    "NodeKill",
    "LinkKill",
    "LinkDrop",
    "BitFlip",
    "LinkCorrupt",
    "LinkSlow",
    "NodeSlow",
    "LinkFlaky",
    "NodeHeal",
    "LinkHeal",
    "FaultPlan",
]
