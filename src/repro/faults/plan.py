"""Deterministic, seeded fault plans against the simulated clock.

A :class:`FaultPlan` is a time-sorted schedule of fault events.  Each event
carries the simulated time (in ticks of the machine's :class:`~repro.
machine.counters.Counters`) at which it fires; the attached
:class:`~repro.faults.injector.FaultInjector` polls the schedule at every
charged communication round and applies events whose time has come.

Because the simulated clock is itself deterministic, a given
``(workload, FaultPlan)`` pair always produces the same kills, detours,
retries and recovery ticks — the property the robustness tests pin.

Event kinds
-----------
:class:`NodeKill`
    Processor ``pid`` dies permanently.  Structured SIMD communication
    becomes impossible; recovery must remap onto a healthy subcube.
:class:`LinkKill`
    The link across cube dimension ``dim`` at ``pid`` dies permanently.
    Exchanges along ``dim`` survive via a 3-hop detour through an adjacent
    dimension (two extra charged rounds per round).
:class:`LinkDrop`
    Transient: the next communication round along ``dim`` is dropped
    ``count`` times before succeeding; each retry is charged one extra
    round plus capped exponential backoff.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Tuple

import numpy as np
from ..errors import ConfigError


@dataclass(frozen=True)
class FaultEvent:
    """Base class: something that happens at one simulated instant."""

    time: float

    def as_dict(self) -> dict:
        data = {"kind": type(self).__name__, "time": self.time}
        for key, value in self.__dict__.items():
            if key != "time":
                data[key] = value
        return data


@dataclass(frozen=True)
class NodeKill(FaultEvent):
    """Processor ``pid`` dies permanently at ``time``."""

    pid: int = 0


@dataclass(frozen=True)
class LinkKill(FaultEvent):
    """The link across ``dim`` at ``pid`` dies permanently at ``time``."""

    dim: int = 0
    pid: int = 0


@dataclass(frozen=True)
class LinkDrop(FaultEvent):
    """The next round along ``dim`` is dropped ``count`` times (transient)."""

    dim: int = 0
    count: int = 1


class FaultPlan:
    """An immutable, time-sorted schedule of fault events.

    Build one explicitly from events, or with :meth:`random` for a seeded
    pseudo-random plan.  Equal-time events fire in construction order.
    """

    def __init__(self, events: Iterable[FaultEvent] = ()) -> None:
        indexed = list(events)
        for ev in indexed:
            if not isinstance(ev, FaultEvent):
                raise TypeError(f"not a FaultEvent: {ev!r}")
        # Stable sort: ties keep their construction order, so a plan is a
        # deterministic function of its event list alone.
        self.events: Tuple[FaultEvent, ...] = tuple(
            sorted(indexed, key=lambda ev: ev.time)
        )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kinds = {}
        for ev in self.events:
            name = type(ev).__name__
            kinds[name] = kinds.get(name, 0) + 1
        inner = ", ".join(f"{k}x{v}" for k, v in sorted(kinds.items()))
        return f"FaultPlan({len(self.events)} events: {inner})"

    def as_dict(self) -> dict:
        return {"events": [ev.as_dict() for ev in self.events]}

    @classmethod
    def random(
        cls,
        n: int,
        seed: int,
        horizon: float,
        link_kills: int = 1,
        node_kills: int = 0,
        drops: int = 2,
        max_drop_count: int = 2,
        window: Tuple[float, float] = (0.1, 0.9),
    ) -> "FaultPlan":
        """A seeded pseudo-random plan for an ``n``-dimensional machine.

        Event times are uniform in ``[window[0], window[1]] * horizon``
        (``horizon`` is typically the fault-free runtime of the workload,
        so events land mid-flight).  Link kills target distinct links; node
        kills target distinct processors.  The same ``(n, seed, horizon,
        ...)`` arguments always produce the identical plan.
        """
        if n < 1 and (link_kills or drops):
            raise ConfigError("link faults need a machine with n >= 1")
        if horizon <= 0:
            raise ConfigError(f"horizon must be positive, got {horizon}")
        lo, hi = window
        if not (0.0 <= lo <= hi <= 1.0):
            raise ConfigError(f"window must satisfy 0 <= lo <= hi <= 1, got {window}")
        rng = np.random.default_rng(seed)
        p = 1 << n
        events: List[FaultEvent] = []

        def when() -> float:
            return float(rng.uniform(lo * horizon, hi * horizon))

        seen_links = set()
        for _ in range(link_kills):
            for _ in range(16):  # distinct-link retry budget
                dim = int(rng.integers(n))
                pid = int(rng.integers(p))
                key = (dim, min(pid, pid ^ (1 << dim)))
                if key not in seen_links:
                    seen_links.add(key)
                    events.append(LinkKill(when(), dim=key[0], pid=key[1]))
                    break
        seen_nodes = set()
        for _ in range(node_kills):
            for _ in range(16):
                pid = int(rng.integers(p))
                if pid not in seen_nodes:
                    seen_nodes.add(pid)
                    events.append(NodeKill(when(), pid=pid))
                    break
        for _ in range(drops):
            events.append(
                LinkDrop(
                    when(),
                    dim=int(rng.integers(n)),
                    count=int(rng.integers(1, max_drop_count + 1)),
                )
            )
        return cls(events)


__all__ = ["FaultEvent", "NodeKill", "LinkKill", "LinkDrop", "FaultPlan"]
