"""Deterministic, seeded fault plans against the simulated clock.

A :class:`FaultPlan` is a time-sorted schedule of fault events.  Each event
carries the simulated time (in ticks of the machine's :class:`~repro.
machine.counters.Counters`) at which it fires; the attached
:class:`~repro.faults.injector.FaultInjector` polls the schedule at every
charged communication round and applies events whose time has come.

Because the simulated clock is itself deterministic, a given
``(workload, FaultPlan)`` pair always produces the same kills, detours,
retries and recovery ticks — the property the robustness tests pin.

Event kinds
-----------
:class:`NodeKill`
    Processor ``pid`` dies permanently.  Structured SIMD communication
    becomes impossible; recovery must remap onto a healthy subcube.
:class:`LinkKill`
    The link across cube dimension ``dim`` at ``pid`` dies permanently.
    Exchanges along ``dim`` survive via a 3-hop detour through an adjacent
    dimension (two extra charged rounds per round).
:class:`LinkDrop`
    Transient: the next communication round along ``dim`` is dropped
    ``count`` times before succeeding; each retry is charged one extra
    round plus capped exponential backoff.
:class:`BitFlip`
    Silent data corruption at rest: one bit of one stored element on one
    node flips.  No exception is raised by the hardware — detection is the
    ABFT layer's job (:mod:`repro.abft`); without it the corrupted value
    silently propagates.
:class:`LinkCorrupt`
    Silent data corruption in flight: one bit of one element crossing the
    link along ``dim`` flips on the wire.  With ABFT wire checksums on,
    the next charged round — whatever its dimension; every round carries
    a checksum word — detects the bad block and charges one
    retransmission along the corrupted link; without them the next
    full-block exchange along ``dim`` delivers the corrupted block as-is.

Plans serialise to/from JSON (:meth:`FaultPlan.as_dict` /
:meth:`FaultPlan.from_dict`, :meth:`to_json` / :meth:`from_json`) so a
recorded fault schedule — including SDC events — can be replayed exactly,
e.g. via the ``--fault-plan FILE`` CLI option.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Tuple

import numpy as np
from ..errors import ConfigError


@dataclass(frozen=True)
class FaultEvent:
    """Base class: something that happens at one simulated instant."""

    time: float

    def as_dict(self) -> dict:
        data = {"kind": type(self).__name__, "time": self.time}
        for key, value in self.__dict__.items():
            if key != "time":
                data[key] = value
        return data


@dataclass(frozen=True)
class NodeKill(FaultEvent):
    """Processor ``pid`` dies permanently at ``time``."""

    pid: int = 0


@dataclass(frozen=True)
class LinkKill(FaultEvent):
    """The link across ``dim`` at ``pid`` dies permanently at ``time``."""

    dim: int = 0
    pid: int = 0


@dataclass(frozen=True)
class LinkDrop(FaultEvent):
    """The next round along ``dim`` is dropped ``count`` times (transient)."""

    dim: int = 0
    count: int = 1


@dataclass(frozen=True)
class BitFlip(FaultEvent):
    """One stored bit flips silently at ``time``.

    ``target`` selects which machine-resident array is hit (an index into
    the injector's registry of protected/registered arrays, most recent
    first); ``pid``, ``slot`` and ``bit`` pick the processor, the local
    byte slot and the bit within it (each taken modulo the respective
    extent, so any values form a valid flip).  Flips aimed at a dead node
    or an empty registry are counted no-ops.
    """

    pid: int = 0
    slot: int = 0
    bit: int = 0
    target: int = 0


@dataclass(frozen=True)
class LinkCorrupt(FaultEvent):
    """One in-flight bit of the next transfer along ``dim`` flips.

    Armed when fired.  With ABFT wire checksums the next charged round
    (of any dimension) detects it and pays a retransmission along the
    corrupted link; without them the next full-block exchange along
    ``dim`` silently delivers the corrupted block.  ``pid``, ``slot`` and
    ``bit`` address the corrupted element of the received block (modulo
    the extents, as for :class:`BitFlip`).
    """

    dim: int = 0
    pid: int = 0
    slot: int = 0
    bit: int = 0


class FaultPlan:
    """An immutable, time-sorted schedule of fault events.

    Build one explicitly from events, or with :meth:`random` for a seeded
    pseudo-random plan.  Equal-time events fire in construction order.
    """

    def __init__(self, events: Iterable[FaultEvent] = ()) -> None:
        indexed = list(events)
        for ev in indexed:
            if not isinstance(ev, FaultEvent):
                raise TypeError(f"not a FaultEvent: {ev!r}")
        # Stable sort: ties keep their construction order, so a plan is a
        # deterministic function of its event list alone.
        self.events: Tuple[FaultEvent, ...] = tuple(
            sorted(indexed, key=lambda ev: ev.time)
        )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kinds = {}
        for ev in self.events:
            name = type(ev).__name__
            kinds[name] = kinds.get(name, 0) + 1
        inner = ", ".join(f"{k}x{v}" for k, v in sorted(kinds.items()))
        return f"FaultPlan({len(self.events)} events: {inner})"

    def as_dict(self) -> dict:
        return {"events": [ev.as_dict() for ev in self.events]}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Rebuild a plan from :meth:`as_dict` output (exact round-trip)."""
        events = []
        for entry in data.get("events", ()):
            entry = dict(entry)
            kind = entry.pop("kind", None)
            event_cls = _EVENT_KINDS.get(kind)
            if event_cls is None:
                raise ConfigError(f"unknown fault event kind {kind!r}")
            try:
                events.append(event_cls(**entry))
            except TypeError as exc:
                raise ConfigError(
                    f"bad fields for fault event {kind!r}: {exc}"
                ) from None
        return cls(events)

    def to_json(self, path: str) -> None:
        """Write the plan as a JSON document."""
        with open(path, "w") as fh:
            json.dump(self.as_dict(), fh, indent=2)
            fh.write("\n")

    @classmethod
    def from_json(cls, path: str) -> "FaultPlan":
        """Load a plan written by :meth:`to_json`."""
        with open(path) as fh:
            return cls.from_dict(json.load(fh))

    @classmethod
    def random(
        cls,
        n: int,
        seed: int,
        horizon: float,
        link_kills: int = 1,
        node_kills: int = 0,
        drops: int = 2,
        max_drop_count: int = 2,
        window: Tuple[float, float] = (0.1, 0.9),
        bit_flips: int = 0,
        link_corruptions: int = 0,
    ) -> "FaultPlan":
        """A seeded pseudo-random plan for an ``n``-dimensional machine.

        Event times are uniform in ``[window[0], window[1]] * horizon``
        (``horizon`` is typically the fault-free runtime of the workload,
        so events land mid-flight).  Link kills target distinct links; node
        kills target distinct processors.  The same ``(n, seed, horizon,
        ...)`` arguments always produce the identical plan.
        """
        if n < 1 and (link_kills or drops):
            raise ConfigError("link faults need a machine with n >= 1")
        if horizon <= 0:
            raise ConfigError(f"horizon must be positive, got {horizon}")
        lo, hi = window
        if not (0.0 <= lo <= hi <= 1.0):
            raise ConfigError(f"window must satisfy 0 <= lo <= hi <= 1, got {window}")
        rng = np.random.default_rng(seed)
        p = 1 << n
        events: List[FaultEvent] = []

        def when() -> float:
            return float(rng.uniform(lo * horizon, hi * horizon))

        seen_links = set()
        for _ in range(link_kills):
            for _ in range(16):  # distinct-link retry budget
                dim = int(rng.integers(n))
                pid = int(rng.integers(p))
                key = (dim, min(pid, pid ^ (1 << dim)))
                if key not in seen_links:
                    seen_links.add(key)
                    events.append(LinkKill(when(), dim=key[0], pid=key[1]))
                    break
        seen_nodes = set()
        for _ in range(node_kills):
            for _ in range(16):
                pid = int(rng.integers(p))
                if pid not in seen_nodes:
                    seen_nodes.add(pid)
                    events.append(NodeKill(when(), pid=pid))
                    break
        for _ in range(drops):
            events.append(
                LinkDrop(
                    when(),
                    dim=int(rng.integers(n)),
                    count=int(rng.integers(1, max_drop_count + 1)),
                )
            )
        for _ in range(bit_flips):
            events.append(
                BitFlip(
                    when(),
                    pid=int(rng.integers(p)),
                    slot=int(rng.integers(1 << 16)),
                    bit=int(rng.integers(64)),
                    target=int(rng.integers(4)),
                )
            )
        for _ in range(link_corruptions):
            if n < 1:
                raise ConfigError("link corruptions need a machine with n >= 1")
            events.append(
                LinkCorrupt(
                    when(),
                    dim=int(rng.integers(n)),
                    pid=int(rng.integers(p)),
                    slot=int(rng.integers(1 << 16)),
                    bit=int(rng.integers(64)),
                )
            )
        return cls(events)


#: kind-name → event class, for :meth:`FaultPlan.from_dict`.
_EVENT_KINDS = {
    cls.__name__: cls
    for cls in (NodeKill, LinkKill, LinkDrop, BitFlip, LinkCorrupt)
}


__all__ = [
    "FaultEvent",
    "NodeKill",
    "LinkKill",
    "LinkDrop",
    "BitFlip",
    "LinkCorrupt",
    "FaultPlan",
]
