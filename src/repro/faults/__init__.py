"""Fault injection, fault-aware routing support, and degraded-mode recovery.

The paper's machine was a real Connection Machine, where link and processor
failures were an operational fact; this package lets the simulator model
them deterministically.  See ``docs/robustness.md`` for the fault model and
cost assumptions, and :mod:`repro.errors` for the exception taxonomy.

Quickstart::

    from repro import Session
    from repro.faults import FaultPlan, run_resilient, gaussian_workload

    plan = FaultPlan.random(n=4, seed=7, horizon=5e5, node_kills=1)
    s = Session(4, faults=plan)
    report = run_resilient(s, gaussian_workload(A, b))
    assert report.recovered
"""

from .plan import (
    BitFlip,
    FaultEvent,
    FaultPlan,
    LinkCorrupt,
    LinkDrop,
    LinkFlaky,
    LinkHeal,
    LinkKill,
    LinkSlow,
    NodeHeal,
    NodeKill,
    NodeSlow,
)
from .injector import FaultInjector, FaultStats, HealthTracker, RetryPolicy
from .strategies import (
    STRATEGIES,
    CheckpointPolicy,
    PromotionPending,
)
from .checkpoint import Checkpoint, CheckpointStore
from .expansion import ExpansionLedger
from .recovery import (
    RecoveryReport,
    gaussian_workload,
    largest_healthy_subcube,
    matvec_workload,
    run_resilient,
    simplex_workload,
    subcube_members,
)

__all__ = [
    "FaultEvent",
    "FaultPlan",
    "LinkDrop",
    "LinkKill",
    "NodeKill",
    "BitFlip",
    "LinkCorrupt",
    "LinkSlow",
    "NodeSlow",
    "LinkFlaky",
    "NodeHeal",
    "LinkHeal",
    "FaultInjector",
    "FaultStats",
    "HealthTracker",
    "RetryPolicy",
    "STRATEGIES",
    "CheckpointPolicy",
    "PromotionPending",
    "Checkpoint",
    "CheckpointStore",
    "ExpansionLedger",
    "RecoveryReport",
    "largest_healthy_subcube",
    "subcube_members",
    "run_resilient",
    "gaussian_workload",
    "simplex_workload",
    "matvec_workload",
]
