"""Pluggable checkpoint strategies: host-gather, diskless, incremental.

A :class:`CheckpointPolicy` selects how :class:`~repro.faults.checkpoint.
CheckpointStore` charges the data motion of a save/restore pair on the
simulated clock.  Three strategies exist:

``host`` (default)
    The original behaviour: every save gathers full canonical copies of
    every distributed array to the front end — one binary-tree gather of
    ``local * (p - 1)`` elements per array — and restore charges the
    mirror-image scatter.  Safest (the host survives anything the cube
    does) and the most expensive.  Kept as the default so existing golden
    pins stay bit-identical.

``diskless``
    In-cube checkpointing: each node mirrors its local block to a
    dimension-rotated partner (one round of ``local`` elements) and folds
    an XOR/byte-sum parity panel along a second cube dimension
    (Huang–Abraham style, the same ``Z/2**64`` byte lattice the ABFT
    panels use — see :mod:`repro.abft.panels`).  A save charges O(local)
    rounds instead of a full gather; a single node kill rebuilds the lost
    blocks from partner + parity.  The mirror/parity dimensions rotate
    with the save index so repeated saves spread wear across the cube.

``incremental``
    Diskless shipping only dirty blocks: per-block byte-sum signatures
    (:func:`repro.machine.dirty.block_signatures`) detect which of the
    ``p`` blocks changed since the previous snapshot, and the mirror +
    parity rounds are scaled by the dirty fraction.  Falls back to a full
    diskless save when there is no previous snapshot, the array changed
    shape, or every ``full_every``-th save (so a corrupted delta chain
    can never outlive one full period).

The charged schedules model data motion honestly but keep the *contents*
host-side (the simulator has no per-node private memories to lose); what
differs between strategies is purely the simulated cost and the parity
metadata carried for verification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..errors import ConfigError
from ..machine.dirty import block_signatures

#: recognised strategy names, in documentation order.
STRATEGIES = ("host", "diskless", "incremental")


class PromotionPending(Exception):
    """A checkpoint just landed and a larger healthy cube is available.

    Raised by :meth:`CheckpointStore.save` (control flow, not an error —
    deliberately *not* a :class:`~repro.errors.ReproError` so campaign
    harnesses that trap fault errors never swallow it) and caught by
    :func:`~repro.faults.recovery.run_resilient`, which promotes the
    session and resumes from the checkpoint that was just saved.
    """

    def __init__(self, checkpoint: Any) -> None:
        super().__init__(
            f"checkpoint {getattr(checkpoint, 'label', '?')!r} saved; "
            "a larger healthy cube is available for re-expansion"
        )
        self.checkpoint = checkpoint


@dataclass(frozen=True)
class CheckpointPolicy:
    """How a resilient run checkpoints: strategy, cadence, promotion.

    ``every`` is the checkpoint cadence in workload steps (consumed by
    workloads that checkpoint mid-run, e.g. ``gaussian_workload``);
    ``full_every`` forces every k-th incremental save to be a full
    snapshot; ``promote`` gates re-expansion (see ``Session.promote``);
    ``verify`` checks the stored parity panels on restore.
    """

    strategy: str = "host"
    every: int = 4
    full_every: int = 8
    promote: bool = True
    verify: bool = True

    def __post_init__(self) -> None:
        if self.strategy not in STRATEGIES:
            raise ConfigError(
                f"unknown checkpoint strategy {self.strategy!r}; "
                f"choose from {STRATEGIES}"
            )
        if self.every < 1:
            raise ConfigError(
                f"checkpoint cadence must be >= 1, got {self.every}"
            )
        if self.full_every < 1:
            raise ConfigError(
                f"full-snapshot period must be >= 1, got {self.full_every}"
            )

    @classmethod
    def coerce(cls, value: Any) -> "CheckpointPolicy":
        """A policy from ``None`` (default), a strategy name, or a policy."""
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls(strategy=value)
        raise ConfigError(
            f"checkpoint policy must be a CheckpointPolicy or a strategy "
            f"name, got {type(value).__name__}"
        )


class CheckpointStrategy:
    """Charges one array's save/restore data motion; see module docstring.

    ``charge_save`` returns an info dict: ``full`` (whether the whole
    block set shipped), ``dirty``/``blocks`` (incremental accounting,
    zero elsewhere) and the mirror/parity dimensions used (``None`` on a
    single-processor machine).
    """

    name = "?"

    def __init__(self, policy: CheckpointPolicy) -> None:
        self.policy = policy

    def charge_save(
        self,
        machine: Any,
        local_size: float,
        index: int,
        prev_host: Optional[np.ndarray],
        host: np.ndarray,
    ) -> Dict[str, Any]:
        raise NotImplementedError

    def charge_restore(
        self, machine: Any, local_size: float, meta: Dict[str, Any]
    ) -> None:
        raise NotImplementedError

    def signature_panel(
        self, host: np.ndarray, blocks: int
    ) -> Optional[np.ndarray]:
        """Parity panel to stash with the checkpoint (``None`` = none)."""
        return None


class HostGatherStrategy(CheckpointStrategy):
    """Full gather-to-host (the historical default, bit-identical)."""

    name = "host"

    def charge_save(self, machine, local_size, index, prev_host, host):
        machine.charge_local(local_size)  # pack/unpack pass
        for j in range(machine.n):
            machine.charge_comm_round(local_size * (1 << j), dim=j)
        return {"full": True, "dirty": 0, "blocks": 0,
                "mirror_dim": None, "parity_dim": None}

    def charge_restore(self, machine, local_size, meta):
        # The mirror-image scatter (recursive halving) on the machine
        # doing the restoring — a degraded machine pays its own, smaller
        # schedule.
        machine.charge_local(local_size)
        for j in range(machine.n):
            machine.charge_comm_round(local_size * (1 << j), dim=j)


class DisklessStrategy(CheckpointStrategy):
    """In-cube mirror + parity fold: O(local) rounds per save."""

    name = "diskless"

    def _dims(self, machine, index: int) -> Tuple[Optional[int], Optional[int]]:
        n = machine.n
        if n < 1:
            return None, None
        return index % n, (index + 1) % n

    def charge_save(self, machine, local_size, index, prev_host, host):
        mirror, parity = self._dims(machine, index)
        machine.charge_local(local_size)  # pack the local block
        if mirror is not None:
            # One round to the dimension-rotated partner, one shift along
            # the parity dimension feeding the XOR fold.
            machine.charge_comm_round(local_size, dim=mirror)
            machine.charge_comm_round(local_size, dim=parity)
        machine.charge_local(local_size)  # byte-sum fold into the panel
        return {"full": True, "dirty": 0, "blocks": 0,
                "mirror_dim": mirror, "parity_dim": parity}

    def charge_restore(self, machine, local_size, meta):
        # Lost blocks rebuild from the partner copy plus the parity panel:
        # one round each, then a local reconstruction pass.  Dimensions
        # are taken modulo the (possibly smaller) restoring machine.
        n = machine.n
        if n >= 1:
            mirror = meta.get("mirror_dim")
            parity = meta.get("parity_dim")
            machine.charge_comm_round(
                local_size, dim=(mirror if mirror is not None else 0) % n
            )
            machine.charge_comm_round(
                local_size, dim=(parity if parity is not None else 1) % n
            )
        machine.charge_local(local_size)

    def signature_panel(self, host, blocks):
        return block_signatures(host, blocks)


class IncrementalStrategy(DisklessStrategy):
    """Diskless deltas: mirror/parity rounds scaled by the dirty fraction."""

    name = "incremental"

    def charge_save(self, machine, local_size, index, prev_host, host):
        mirror, parity = self._dims(machine, index)
        blocks = max(machine.p, 1)
        machine.charge_local(local_size)  # signature scan of the local block
        full = (
            prev_host is None
            or prev_host.shape != host.shape
            or prev_host.dtype != host.dtype
            or index % self.policy.full_every == 0
        )
        if full:
            dirty = blocks
        else:
            dirty = int(np.count_nonzero(
                block_signatures(host, blocks)
                != block_signatures(prev_host, blocks)
            ))
        volume = local_size * (dirty / blocks)
        if volume > 0:
            if mirror is not None:
                machine.charge_comm_round(volume, dim=mirror)
                machine.charge_comm_round(volume, dim=parity)
            machine.charge_local(volume)  # fold the shipped blocks
        return {"full": bool(full), "dirty": dirty, "blocks": blocks,
                "mirror_dim": mirror, "parity_dim": parity}


_STRATEGY_CLASSES = {
    cls.name: cls
    for cls in (HostGatherStrategy, DisklessStrategy, IncrementalStrategy)
}


def make_strategy(policy: CheckpointPolicy) -> CheckpointStrategy:
    """The strategy instance a policy names."""
    return _STRATEGY_CLASSES[policy.strategy](policy)


__all__ = [
    "STRATEGIES",
    "CheckpointPolicy",
    "CheckpointStrategy",
    "HostGatherStrategy",
    "DisklessStrategy",
    "IncrementalStrategy",
    "PromotionPending",
    "make_strategy",
]
