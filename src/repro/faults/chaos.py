"""Chaos campaigns: randomized fault schedules with shrinking.

A *campaign* runs many independent, seeded **schedules**.  Each schedule
draws a workload (gaussian / simplex / matvec on integer data), a feature
flag combination (ABFT, sanitizer, plan cache, straggler avoidance,
hedged retransmission) and a pseudo-random :class:`~repro.faults.plan.
FaultPlan` mixing fail-stop, silent-data-corruption and gray-failure
events.  The faulted run must finish (recovering as needed) with a result
``np.array_equal`` to the fault-free baseline of the same problem; any
sanitizer violation or mismatch is a campaign failure.

On failure the offending schedule's plan is **shrunk** with delta
debugging (:func:`shrink_plan`): the smallest event subset that still
reproduces the failure is written out as a replayable JSON fault plan, so
``python -m repro faults --fault-plan minimized_<i>.json`` replays the
minimal counterexample deterministically.

The module is imported only by the ``repro chaos`` CLI command and by
tests — fault-free production runs never load it (pinned by
``tests/test_gray_faults.py``).
"""

from __future__ import annotations

import json
import os
import time as _time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.session import Session
from ..errors import ConfigError, ReproError
from .checkpoint import CheckpointStore
from .injector import FaultInjector, RetryPolicy
from .plan import FaultPlan, NodeHeal, NodeKill
from .recovery import (
    gaussian_workload,
    matvec_workload,
    run_resilient,
    simplex_workload,
)
from .strategies import STRATEGIES, CheckpointPolicy

WORKLOADS = ("gaussian", "simplex", "matvec", "bfs")

#: flag name -> probability the schedule generator turns it on.
FLAG_PROBS = {
    "abft": 0.33,
    "sanitize": 0.5,
    "plan_cache": 0.8,
    "avoid_stragglers": 0.7,
    "hedge": 0.5,
}


# ---------------------------------------------------------------------------
# workloads + baselines
# ---------------------------------------------------------------------------

def build_workload(
    workload: str, size: int, prob_seed: int, checkpoint_every: int = 4
) -> Callable[[], Callable]:
    """Seeded problem builder mirroring the ``repro faults`` recipes.

    Integer data keeps sum-reductions exact, so faulted results compare
    bit-for-bit against the fault-free baseline even after a subcube
    remap.  Duplicated here (rather than imported from ``__main__``) so
    the CLI's fault path never depends on this module.
    ``checkpoint_every`` only affects the gaussian workload (the others
    restart rather than resume) and never changes the numerical result.
    """
    rng = np.random.default_rng(prob_seed)
    if workload == "gaussian":
        A = rng.integers(-4, 5, size=(size, size)).astype(np.float64)
        A += size * np.eye(size)
        b = rng.integers(-4, 5, size=size).astype(np.float64)
        return lambda: gaussian_workload(A, b, checkpoint_every=checkpoint_every)
    if workload == "simplex":
        from .. import workloads as W

        lp = W.feasible_lp(size, size, seed=prob_seed)
        return lambda: simplex_workload(lp.A, lp.b, lp.c)
    if workload == "matvec":
        A = rng.integers(-3, 4, size=(size, size)).astype(np.float64)
        x = rng.integers(-3, 4, size=size).astype(np.float64)
        return lambda: matvec_workload(A, x)
    if workload == "bfs":
        # size doubles as the vertex count; integer levels make the
        # recovered traversal bit-identical to the fault-free baseline.
        from .. import workloads as W
        from ..algorithms.graph import bfs_workload

        g = W.random_graph(size, 3.0, seed=prob_seed)
        return lambda: bfs_workload(g, 0)
    raise ConfigError(
        f"unknown chaos workload {workload!r}; choose from {WORKLOADS}"
    )


class BaselineCache:
    """Fault-free results, memoized per (workload, size, prob_seed, n)."""

    def __init__(self) -> None:
        self._cache: Dict[Tuple, Tuple[np.ndarray, float]] = {}

    def get(
        self, workload: str, size: int, prob_seed: int, n_dims: int
    ) -> Tuple[np.ndarray, float]:
        """``(result, simulated_time)`` of the fault-free run."""
        key = (workload, size, prob_seed, n_dims)
        hit = self._cache.get(key)
        if hit is None:
            make = build_workload(workload, size, prob_seed)
            dry = Session(n_dims)
            result = make()(dry, CheckpointStore(dry))
            hit = (np.asarray(result), float(dry.time))
            self._cache[key] = hit
        return hit


# ---------------------------------------------------------------------------
# schedules
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ChaosSchedule:
    """One fully-determined chaos run: problem, flags and fault plan."""

    index: int
    seed: int
    workload: str
    size: int
    prob_seed: int
    n_dims: int
    flags: Dict[str, bool] = field(hash=False)
    plan: FaultPlan = field(hash=False)
    strategy: str = "host"
    checkpoint_every: int = 4

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "seed": self.seed,
            "workload": self.workload,
            "size": self.size,
            "prob_seed": self.prob_seed,
            "n_dims": self.n_dims,
            "flags": dict(self.flags),
            "plan": self.plan.as_dict(),
            "strategy": self.strategy,
            "checkpoint_every": self.checkpoint_every,
        }


def generate_schedules(
    count: int,
    master_seed: int = 0,
    n_dims: int = 4,
    sizes: Sequence[int] = (8, 12, 16),
    workloads: Sequence[str] = WORKLOADS,
    baselines: Optional[BaselineCache] = None,
    strategies: Sequence[str] = STRATEGIES,
    checkpoint_every: Optional[int] = None,
) -> List[ChaosSchedule]:
    """Seeded schedule generator: same arguments, same campaign.

    Each schedule gets an independent child seed, so inserting or
    removing one never perturbs the others.  Fault-event times target the
    first 90% of the fault-free runtime of the drawn problem, so events
    land mid-flight rather than after completion.  Each schedule also
    draws a checkpoint strategy from ``strategies`` and (sometimes) heal
    events that re-enable killed hardware late in the run, giving
    re-expansion a chance to fire.
    """
    if count < 1:
        raise ConfigError(f"schedule count must be >= 1, got {count}")
    for w in workloads:
        if w not in WORKLOADS:
            raise ConfigError(
                f"unknown chaos workload {w!r}; choose from {WORKLOADS}"
            )
    for s in strategies:
        if s not in STRATEGIES:
            raise ConfigError(
                f"unknown checkpoint strategy {s!r}; choose from {STRATEGIES}"
            )
    if baselines is None:
        baselines = BaselineCache()
    schedules = []
    for index in range(count):
        rng = np.random.default_rng((master_seed, index))
        seed = int(rng.integers(1 << 31))
        workload = str(rng.choice(list(workloads)))
        size = int(rng.choice(list(sizes)))
        prob_seed = int(rng.integers(4))
        flags = {
            name: bool(rng.random() < prob) for name, prob in FLAG_PROBS.items()
        }
        _, base_time = baselines.get(workload, size, prob_seed, n_dims)
        horizon = 0.9 * max(base_time, 1.0)
        plan = FaultPlan.random(
            n_dims,
            seed=seed,
            horizon=horizon,
            link_kills=int(rng.integers(2)),
            node_kills=int(rng.integers(2)),
            drops=int(rng.integers(3)),
            # SDC without the ABFT layer armed corrupts silently — the
            # mismatch would be by design, not a bug — so bit flips and
            # link corruptions only appear on ABFT-enabled schedules.
            bit_flips=int(rng.integers(2)) if flags["abft"] else 0,
            link_corruptions=int(rng.integers(2)) if flags["abft"] else 0,
            link_slows=int(rng.integers(3)),
            node_slows=int(rng.integers(2)),
            flaky_links=int(rng.integers(2)),
            # Heal draws come last inside FaultPlan.random, so adding
            # them here leaves every earlier event stream byte-identical.
            node_heals=int(rng.integers(2)),
            link_heals=int(rng.integers(2)),
        )
        strategy = str(rng.choice(list(strategies)))
        # Draw even when overridden so the stream stays stable.
        drawn_every = int(rng.choice((2, 4, 6)))
        every = drawn_every if checkpoint_every is None else checkpoint_every
        schedules.append(
            ChaosSchedule(
                index=index,
                seed=seed,
                workload=workload,
                size=size,
                prob_seed=prob_seed,
                n_dims=n_dims,
                flags=flags,
                plan=plan,
                strategy=strategy,
                checkpoint_every=every,
            )
        )
    return schedules


def run_schedule(
    schedule: ChaosSchedule, baselines: Optional[BaselineCache] = None
) -> Dict[str, Any]:
    """Execute one schedule; never raises for fault-induced failures.

    Returns a dict with ``ok`` (recovered *and* result equals the
    fault-free baseline, with no invariant violation), plus the recovery
    report fields needed for the campaign record.
    """
    if baselines is None:
        baselines = BaselineCache()
    base_result, _ = baselines.get(
        schedule.workload, schedule.size, schedule.prob_seed, schedule.n_dims
    )
    make = build_workload(
        schedule.workload,
        schedule.size,
        schedule.prob_seed,
        checkpoint_every=schedule.checkpoint_every,
    )
    flags = schedule.flags
    retry = RetryPolicy(
        jitter=0.25, seed=schedule.seed, hedge=bool(flags.get("hedge"))
    )
    injector = FaultInjector(
        schedule.plan,
        retry=retry,
        avoid_stragglers=bool(flags.get("avoid_stragglers", True)),
    )
    outcome: Dict[str, Any] = {
        "index": schedule.index,
        "ok": False,
        "matches": False,
        "recovered": False,
        "recoveries": 0,
        "promotions": 0,
        "error": None,
        "time": 0.0,
        "final_p": 0,
        "stats": {},
    }
    try:
        session = Session(
            schedule.n_dims,
            plan_cache=bool(flags.get("plan_cache", True)),
            faults=injector,
            sanitize=bool(flags.get("sanitize")),
            abft=bool(flags.get("abft")),
        )
        policy = CheckpointPolicy(
            strategy=schedule.strategy, every=schedule.checkpoint_every
        )
        report = run_resilient(session, make(), max_recoveries=3, policy=policy)
    except ReproError as exc:
        # A sanitizer invariant violation (or any other escaped repro
        # error) is exactly the bug class the campaign hunts.
        outcome["error"] = f"{type(exc).__name__}: {exc}"
        outcome["stats"] = injector.stats.as_dict()
        return outcome
    outcome["recovered"] = bool(report.recovered)
    outcome["recoveries"] = int(report.recoveries)
    outcome["promotions"] = int(report.promotions)
    outcome["final_p"] = int(report.final_p)
    outcome["time"] = float(session.time)
    outcome["stats"] = report.stats.as_dict()
    if report.error is not None:
        outcome["error"] = report.error
    if report.recovered and report.result is not None:
        outcome["matches"] = bool(
            np.array_equal(np.asarray(report.result), base_result)
        )
    outcome["ok"] = bool(outcome["recovered"] and outcome["matches"])
    if not outcome["ok"] and outcome["error"] is None:
        outcome["error"] = "result differs from fault-free baseline"
    return outcome


# ---------------------------------------------------------------------------
# checkpoint-window schedules (mid-save / mid-restore kills)
# ---------------------------------------------------------------------------

def checkpoint_windows(
    workload: str,
    size: int,
    prob_seed: int,
    n_dims: int,
    strategy: str = "host",
    checkpoint_every: int = 4,
) -> List[Tuple[float, float]]:
    """Simulated-time windows spanning each checkpoint save's charged cost.

    Runs the workload fault-free and records ``(t_before, t_after)``
    around every ``store.save``.  Because the simulator is deterministic,
    a faulted run with the same problem and policy follows the identical
    clock trajectory up to its first fault — so an event placed inside a
    window is guaranteed to fire during the save's charged collection.
    """
    make = build_workload(
        workload, size, prob_seed, checkpoint_every=checkpoint_every
    )
    session = Session(n_dims)
    store = CheckpointStore(session, policy=strategy)
    windows: List[Tuple[float, float]] = []
    original_save = store.save

    def recording_save(*args: Any, **kwargs: Any) -> Any:
        t0 = float(session.time)
        ck = original_save(*args, **kwargs)
        windows.append((t0, float(session.time)))
        return ck

    store.save = recording_save  # type: ignore[method-assign]
    make()(session, store)
    return windows


def generate_checkpoint_schedules(
    count: int,
    master_seed: int = 0,
    n_dims: int = 4,
    sizes: Sequence[int] = (8, 12),
    strategies: Sequence[str] = STRATEGIES,
    checkpoint_every: Optional[int] = None,
) -> List[ChaosSchedule]:
    """Adversarial schedules that kill a node mid-save / mid-restore.

    Every schedule targets the gaussian workload (the only one that
    checkpoints mid-run) and places a :class:`NodeKill` at the midpoint
    of a measured save window, so the fault fires *inside* the charged
    checkpoint collection.  Odd-indexed schedules add a second kill a
    hair after the first: it is still pending when the degraded session
    replays and fires during the restore's charged scatter — a
    mid-restore kill.  Every third schedule also heals the first victim
    later on, exercising re-expansion on top of the mid-save kill.
    """
    if count < 1:
        raise ConfigError(f"schedule count must be >= 1, got {count}")
    for s in strategies:
        if s not in STRATEGIES:
            raise ConfigError(
                f"unknown checkpoint strategy {s!r}; choose from {STRATEGIES}"
            )
    window_cache: Dict[Tuple, List[Tuple[float, float]]] = {}
    schedules = []
    for index in range(count):
        # A distinct stream offset keeps these independent of the main
        # generator's (master_seed, index) child seeds.
        rng = np.random.default_rng((master_seed, 104729, index))
        seed = int(rng.integers(1 << 31))
        size = int(rng.choice(list(sizes)))
        prob_seed = int(rng.integers(4))
        strategy = str(rng.choice(list(strategies)))
        drawn_every = int(rng.choice((2, 4)))
        every = drawn_every if checkpoint_every is None else checkpoint_every
        flags = {
            name: bool(rng.random() < prob) for name, prob in FLAG_PROBS.items()
        }
        key = (size, prob_seed, n_dims, strategy, every)
        windows = window_cache.get(key)
        if windows is None:
            windows = checkpoint_windows(
                "gaussian",
                size,
                prob_seed,
                n_dims,
                strategy=strategy,
                checkpoint_every=every,
            )
            window_cache[key] = windows
        # Prefer a later window so a committed checkpoint exists to
        # resume from; the first save starts at elimination step 0.
        wi = int(rng.integers(1, len(windows))) if len(windows) > 1 else 0
        t0, t1 = windows[wi]
        t_kill = 0.5 * (t0 + t1)
        p = 1 << n_dims
        # An odd victim pins the survivor subcube to the even pids
        # (fixed dimension 0, base 0 wins the deterministic tie-break),
        # which makes the follow-up kills below well-defined.
        victim = 1 + 2 * int(rng.integers(p // 2))
        events: List[Any] = [NodeKill(t_kill, pid=victim)]
        if index % 2 == 1:
            # The first kill's poll lands at a round start inside the
            # save window (clock < t1), so this one is still pending when
            # the degraded session replays — and the restore's charged
            # scatter spans well past t1, so it fires mid-restore.
            events.append(NodeKill(t1 + 1e-6, pid=2))
        if index % 3 == 2:
            # Heal the first victim well after the degrade so the next
            # committed checkpoint can promote back to the full cube.
            events.append(
                NodeHeal(t_kill + 2.0 * max(t1 - t0, 1.0), pid=victim)
            )
        plan = FaultPlan(tuple(sorted(events, key=lambda ev: ev.time)))
        schedules.append(
            ChaosSchedule(
                index=index,
                seed=seed,
                workload="gaussian",
                size=size,
                prob_seed=prob_seed,
                n_dims=n_dims,
                flags=flags,
                plan=plan,
                strategy=strategy,
                checkpoint_every=every,
            )
        )
    return schedules


# ---------------------------------------------------------------------------
# delta-debugging shrink
# ---------------------------------------------------------------------------

def shrink_plan(
    plan: FaultPlan,
    failing: Callable[[FaultPlan], bool],
    max_runs: int = 256,
) -> Tuple[FaultPlan, int]:
    """ddmin over the plan's event list.

    ``failing(candidate)`` must return True when the candidate plan still
    reproduces the failure.  Returns ``(minimal_plan, runs_used)`` — a
    1-minimal plan when the budget allows: removing any single remaining
    event makes the failure disappear.  The search re-runs the schedule
    at most ``max_runs`` times; on budget exhaustion the best plan found
    so far is returned (still failing, possibly not minimal).
    """
    events = list(plan.events)
    runs = 0

    def test(subset: List) -> bool:
        nonlocal runs
        runs += 1
        return bool(failing(FaultPlan(tuple(subset))))

    granularity = 2
    while len(events) >= 2 and runs < max_runs:
        chunk = max(1, len(events) // granularity)
        chunks = [events[i: i + chunk] for i in range(0, len(events), chunk)]
        reduced = False
        # Try each complement (drop one chunk) — the classic ddmin step.
        for i in range(len(chunks)):
            if runs >= max_runs:
                break
            candidate = [
                ev for j, c in enumerate(chunks) if j != i for ev in c
            ]
            if candidate and test(candidate):
                events = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(events):
                break
            granularity = min(len(events), granularity * 2)
    return FaultPlan(tuple(events)), runs


# ---------------------------------------------------------------------------
# campaigns
# ---------------------------------------------------------------------------

def run_campaign(
    count: int,
    master_seed: int = 0,
    n_dims: int = 4,
    sizes: Sequence[int] = (8, 12, 16),
    workloads: Sequence[str] = WORKLOADS,
    shrink: bool = True,
    artifact_dir: Optional[str] = None,
    progress: Optional[Callable[[str], None]] = None,
    strategies: Sequence[str] = STRATEGIES,
    checkpoint_schedules: int = 0,
    checkpoint_every: Optional[int] = None,
) -> Dict[str, Any]:
    """Run ``count`` seeded schedules; shrink and archive any failure.

    Returns a campaign report dict.  When ``artifact_dir`` is set the
    directory is created up front (so CI artifact upload always finds
    it) and each failure's minimized plan lands there as
    ``minimized_<index>.json``, replayable with ``repro faults
    --fault-plan``.  ``checkpoint_schedules`` appends that many
    adversarial mid-save / mid-restore kill schedules (see
    :func:`generate_checkpoint_schedules`) after the random ones.
    """
    if artifact_dir:
        os.makedirs(artifact_dir, exist_ok=True)
    baselines = BaselineCache()
    schedules = generate_schedules(
        count,
        master_seed=master_seed,
        n_dims=n_dims,
        sizes=sizes,
        workloads=workloads,
        baselines=baselines,
        strategies=strategies,
        checkpoint_every=checkpoint_every,
    )
    if checkpoint_schedules:
        extra = generate_checkpoint_schedules(
            checkpoint_schedules,
            master_seed=master_seed,
            n_dims=n_dims,
            strategies=strategies,
            checkpoint_every=checkpoint_every,
        )
        # Re-index past the random block so failure artifacts stay unique.
        schedules += [
            replace(s, index=count + i) for i, s in enumerate(extra)
        ]
    total = len(schedules)
    ok = 0
    total_time = 0.0
    total_events = 0
    workload_counts: Dict[str, int] = {}
    flag_counts: Dict[str, int] = {name: 0 for name in FLAG_PROBS}
    gray_totals = {
        "link_slows": 0, "node_slows": 0, "flaky_links": 0,
        "flaky_drops": 0, "straggler_detours": 0, "hedged_retransmits": 0,
        "gray_recoveries": 0,
    }
    recoveries = 0
    promotions = 0
    expansions = 0
    strategy_counts: Dict[str, int] = {}
    failures: List[Dict[str, Any]] = []
    for schedule in schedules:
        outcome = run_schedule(schedule, baselines)
        total_time += outcome["time"]
        total_events += len(schedule.plan)
        workload_counts[schedule.workload] = (
            workload_counts.get(schedule.workload, 0) + 1
        )
        strategy_counts[schedule.strategy] = (
            strategy_counts.get(schedule.strategy, 0) + 1
        )
        for name, on in schedule.flags.items():
            if on:
                flag_counts[name] += 1
        recoveries += outcome["recoveries"]
        promotions += int(outcome.get("promotions", 0))
        expansions += int(outcome["stats"].get("expansions", 0))
        for name in gray_totals:
            gray_totals[name] += int(outcome["stats"].get(name, 0))
        if outcome["ok"]:
            ok += 1
            if progress is not None and (schedule.index + 1) % 25 == 0:
                progress(
                    f"[{schedule.index + 1}/{total}] ok so far: {ok}"
                )
            continue
        failure = {
            "schedule": schedule.as_dict(),
            "outcome": {
                k: v for k, v in outcome.items() if k != "stats"
            },
        }
        if progress is not None:
            progress(
                f"[{schedule.index + 1}/{total}] FAIL "
                f"{schedule.workload}/{schedule.size} seed={schedule.seed}: "
                f"{outcome['error']}"
            )
        if shrink:
            def still_fails(candidate: FaultPlan) -> bool:
                return not run_schedule(
                    replace(schedule, plan=candidate), baselines
                )["ok"]

            minimal, runs = shrink_plan(schedule.plan, still_fails)
            failure["minimized_plan"] = minimal.as_dict()
            failure["shrink_runs"] = runs
            failure["minimized_events"] = len(minimal)
            if progress is not None:
                progress(
                    f"    shrunk {len(schedule.plan)} -> {len(minimal)} "
                    f"events in {runs} runs"
                )
            if artifact_dir:
                path = os.path.join(
                    artifact_dir, f"minimized_{schedule.index}.json"
                )
                with open(path, "w") as fh:
                    json.dump(minimal.as_dict(), fh, indent=2, sort_keys=True)
                    fh.write("\n")
                failure["minimized_path"] = path
        failures.append(failure)
    return {
        "schedules": total,
        "master_seed": master_seed,
        "n_dims": n_dims,
        "ok": ok,
        "failed": total - ok,
        "recoveries": recoveries,
        "promotions": promotions,
        "expansions": expansions,
        "total_fault_events": total_events,
        "total_sim_time": total_time,
        "workloads": workload_counts,
        "strategies": strategy_counts,
        "flags_on": flag_counts,
        "gray": gray_totals,
        "failures": failures,
    }


# ---------------------------------------------------------------------------
# straggler-avoidance experiment
# ---------------------------------------------------------------------------

def straggler_experiment(
    n_dims: int = 4,
    factor: float = 12.0,
    volume: float = 64.0,
    repeats: int = 24,
) -> Dict[str, Any]:
    """Measure the simulated-tick win of health-score straggler avoidance.

    Routes the same point-to-point message across a permanently slowed
    link ``repeats`` times, with avoidance off vs on.  With avoidance on
    the first crossing teaches the health tracker the link's factor and
    every later crossing detours around it, so the on-run finishes in
    fewer simulated ticks.
    """
    from ..machine.router import Router
    from .plan import LinkSlow

    def run(avoid: bool) -> Tuple[float, int]:
        plan = FaultPlan((LinkSlow(0.0, dim=0, pid=0, factor=factor),))
        injector = FaultInjector(plan, avoid_stragglers=avoid)
        session = Session(n_dims, plan_cache=False, faults=injector)
        router = Router(session.machine)
        src = np.array([0], dtype=np.int64)
        dst = np.array([1], dtype=np.int64)
        sizes = np.array([volume], dtype=np.float64)
        for _ in range(repeats):
            router.simulate(src, dst, sizes)
        return float(session.time), int(injector.stats.straggler_detours)

    ticks_off, _ = run(False)
    ticks_on, detours = run(True)
    reduction = (ticks_off - ticks_on) / ticks_off if ticks_off else 0.0
    return {
        "n_dims": n_dims,
        "factor": factor,
        "volume": volume,
        "repeats": repeats,
        "ticks_avoidance_off": ticks_off,
        "ticks_avoidance_on": ticks_on,
        "tick_reduction": reduction,
        "straggler_detours": detours,
    }


# ---------------------------------------------------------------------------
# warehouse records
# ---------------------------------------------------------------------------

def campaign_record(
    report: Dict[str, Any], wall_s: float
) -> Dict[str, Any]:
    """A ``kind="chaos"`` warehouse record summarizing a campaign."""
    from ..metrics import warehouse as wh

    record = {
        "schema": wh.SCHEMA,
        "kind": "chaos",
        "recorded_unix": _time.time(),
        "git_rev": wh.git_rev(),
        "workload": "chaos_campaign",
        "params": {
            "schedules": report["schedules"],
            "master_seed": report["master_seed"],
            "n_dims": report["n_dims"],
        },
        "flags": {},
        "wall_s": {"best": wall_s},
        "sim": {"time": report["total_sim_time"]},
        "metrics": {
            "chaos.schedules": report["schedules"],
            "chaos.ok": report["ok"],
            "chaos.failed": report["failed"],
            "chaos.recoveries": report["recoveries"],
            "chaos.promotions": report.get("promotions", 0),
            "chaos.expansions": report.get("expansions", 0),
            "chaos.fault_events": report["total_fault_events"],
            **{
                f"chaos.gray.{name}": value
                for name, value in report["gray"].items()
            },
        },
    }
    wh.validate_record(record)
    return record


def straggler_record(
    result: Dict[str, Any], wall_s: float
) -> Dict[str, Any]:
    """A ``kind="chaos"`` warehouse record for the straggler experiment."""
    from ..metrics import warehouse as wh

    record = {
        "schema": wh.SCHEMA,
        "kind": "chaos",
        "recorded_unix": _time.time(),
        "git_rev": wh.git_rev(),
        "workload": "chaos_straggler",
        "params": {
            "n_dims": result["n_dims"],
            "factor": result["factor"],
            "repeats": result["repeats"],
        },
        "flags": {},
        "wall_s": {"best": wall_s},
        "sim": {"time": result["ticks_avoidance_on"]},
        "metrics": {
            "chaos.straggler.ticks_off": result["ticks_avoidance_off"],
            "chaos.straggler.ticks_on": result["ticks_avoidance_on"],
            "chaos.straggler.reduction": result["tick_reduction"],
            "chaos.straggler.detours": result["straggler_detours"],
        },
    }
    wh.validate_record(record)
    return record


__all__ = [
    "BaselineCache",
    "ChaosSchedule",
    "build_workload",
    "campaign_record",
    "checkpoint_windows",
    "generate_checkpoint_schedules",
    "generate_schedules",
    "run_campaign",
    "run_schedule",
    "shrink_plan",
    "straggler_experiment",
    "straggler_record",
    "WORKLOADS",
    "FLAG_PROBS",
]
