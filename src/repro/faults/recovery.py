"""Degraded-mode recovery: healthy-subcube search and the resilient runner.

When a :class:`~repro.errors.NodeKilledError` surfaces, the session remaps
onto the **largest healthy subcube** — a subcube of the faulted machine in
which every processor and every internal link is alive.  Subcubes are the
natural recovery unit here because every embedding in this library is
defined on a ``2**m``-processor cube: the checkpointed arrays re-embed on
the survivor with the *same* Gray-code machinery, just one (or more)
dimensions smaller.

:func:`run_resilient` is the driver loop::

    report = run_resilient(session, gaussian_workload(A, b))
    assert report.recovered
    x = report.result

A *workload* is any callable ``workload(session, store)`` that (1) calls
``store.restore()`` first and resumes from the returned checkpoint when
there is one, (2) saves checkpoints periodically via ``store.save``, and
(3) returns its final result.  On :class:`NodeKilledError` the runner
degrades the session (checkpoint → subcube remap → injector translation)
and calls the workload again; determinism of the simulator makes the
recovered numerical result identical to the fault-free one (pinned by
``tests/test_fault_recovery.py``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import (
    ConfigError,
    CorruptionError,
    FaultError,
    NodeKilledError,
    UnroutableError,
)
from .checkpoint import CheckpointStore
from .injector import FaultStats
from .strategies import PromotionPending


def largest_healthy_subcube(machine: Any) -> Tuple[Tuple[int, ...], int]:
    """The largest subcube with all nodes and internal links alive.

    Returns ``(free_dims, base)``: the parent dimensions the subcube keeps
    (ascending) and the fixed parent address bits selecting it.  Ties are
    broken deterministically — fewest fixed dimensions first, then
    lexicographically smallest fixed-dimension set, then smallest ``base``.
    Raises :class:`FaultError` when not even a single processor is healthy.
    """
    n = machine.n
    pids = np.arange(machine.p, dtype=np.int64)
    for n_fixed in range(n + 1):
        for fixed in itertools.combinations(range(n), n_fixed):
            free_dims = tuple(d for d in range(n) if d not in fixed)
            fixed_mask = sum(1 << d for d in fixed)
            for combo in range(1 << n_fixed):
                base = sum(
                    ((combo >> i) & 1) << d for i, d in enumerate(fixed)
                )
                members = pids[(pids & fixed_mask) == base]
                if machine.node_ok is not None and not machine.node_ok[
                    members
                ].all():
                    continue
                if machine.link_ok is not None and any(
                    not machine.link_ok[d, members].all() for d in free_dims
                ):
                    continue
                return free_dims, base
    raise FaultError(
        f"no healthy subcube exists on the {machine.p}-processor machine "
        f"(epoch {machine.epoch})"
    )


def subcube_members(free_dims: Sequence[int], base: int) -> np.ndarray:
    """Parent pids of the subcube, indexed by subcube pid (Gray-free order)."""
    free_dims = list(free_dims)
    size = 1 << len(free_dims)
    members = np.empty(size, dtype=np.int64)
    for j in range(size):
        pid = base
        for i, d in enumerate(free_dims):
            pid |= ((j >> i) & 1) << d
        members[j] = pid
    return members


@dataclass
class RecoveryReport:
    """What one resilient run did."""

    result: Any
    recovered: bool
    recoveries: int
    stats: FaultStats
    final_p: int
    error: Optional[str] = None
    promotions: int = 0
    checkpoint: Optional[dict] = None

    def as_dict(self) -> dict:
        data = {
            "recovered": self.recovered,
            "recoveries": self.recoveries,
            "final_p": self.final_p,
            "stats": self.stats.as_dict(),
            "promotions": self.promotions,
        }
        if self.checkpoint is not None:
            data["checkpoint"] = dict(self.checkpoint)
        if self.error is not None:
            data["error"] = self.error
        return data


def run_resilient(
    session: Any,
    workload: Callable[[Any, CheckpointStore], Any],
    max_recoveries: int = 2,
    store: Optional[CheckpointStore] = None,
    policy: Optional[Any] = None,
    max_promotions: int = 2,
) -> RecoveryReport:
    """Run ``workload`` to completion, degrading past node kills.

    Catches :class:`NodeKilledError` (and :class:`UnroutableError`), remaps
    the session onto the largest healthy subcube and re-runs the workload —
    which resumes from its last checkpoint — at most ``max_recoveries``
    times.  :class:`CorruptionError` (uncorrectable silent data corruption,
    raised by the ABFT layer) also triggers a replay, but on the *same*
    machine: the topology is healthy, only data was lost, so the workload
    re-runs from its last checkpoint with a cleared checksum registry.

    ``policy`` selects the checkpoint strategy (a
    :class:`~repro.faults.strategies.CheckpointPolicy` or a strategy
    name); it defaults to the session's ``checkpoint=`` setting.  When
    healed hardware makes a strictly larger cube available, the store
    raises :class:`~repro.faults.strategies.PromotionPending` right after
    a checkpoint commits and the runner *promotes* the session
    (``Session.promote``), re-running the workload — which re-scatters
    from that checkpoint onto the bigger machine.  Promotions don't count
    against ``max_recoveries``; at most ``max_promotions`` are attempted.
    Never raises for fault-related failures; inspect ``report.recovered``
    / ``report.error``.
    """
    if store is None:
        store = CheckpointStore(session, policy=policy)
    elif policy is not None:
        raise ConfigError(
            "pass the checkpoint policy via the store when store= is given"
        )
    recoveries = 0
    promotions = 0
    error: Optional[str] = None
    while True:
        injector = session.machine.faults
        stats = injector.stats if injector is not None else FaultStats()
        try:
            result = workload(session, store)
            return RecoveryReport(
                result=result,
                recovered=True,
                recoveries=recoveries,
                stats=stats,
                final_p=session.machine.p,
                promotions=promotions,
                checkpoint=store.summary(),
            )
        except PromotionPending:
            # A checkpoint just landed and healed hardware offers a larger
            # cube.  Promotion failure is non-fatal: the checkpoint is
            # already committed, so the run simply continues on the
            # current subcube with further promotion checks disabled.
            if promotions >= max_promotions:
                if session._expansion is not None:
                    session._expansion.enabled = False
                continue
            try:
                session.promote()
            except FaultError:
                if session._expansion is not None:
                    session._expansion.enabled = False
                continue
            promotions += 1
            continue
        except CorruptionError as exc:
            # Uncorrectable corruption: the machine is healthy, so no
            # degrade — clear the stale checksum registry and replay the
            # workload from its last checkpoint.
            error = str(exc)
            if recoveries >= max_recoveries:
                break
            recoveries += 1
            machine = session.machine
            if machine.faults is not None:
                machine.faults.stats.recoveries += 1
            machine.counters.abft_recomputed += 1
            if machine.abft is not None:
                machine.abft.reset()
        except (NodeKilledError, UnroutableError) as exc:
            error = str(exc)
            if recoveries >= max_recoveries:
                break
            try:
                session.degrade()
            except FaultError as degrade_exc:
                error = str(degrade_exc)
                break
            recoveries += 1
            injector = session.machine.faults
            if injector is not None:
                injector.stats.recoveries += 1
    injector = session.machine.faults
    stats = injector.stats if injector is not None else FaultStats()
    return RecoveryReport(
        result=None,
        recovered=False,
        recoveries=recoveries,
        stats=stats,
        final_p=session.machine.p,
        error=error,
        promotions=promotions,
        checkpoint=store.summary(),
    )


# -- ready-made workloads ------------------------------------------------------


def gaussian_workload(
    A: np.ndarray,
    b: np.ndarray,
    pivoting: str = "partial",
    tol: float = 1e-12,
    checkpoint_every: int = 4,
) -> Callable[[Any, CheckpointStore], np.ndarray]:
    """Solve ``A x = b``, checkpointing the tableau every few pivot steps.

    Gaussian elimination carries real mid-solve state (the partially
    eliminated tableau and the pivot history), so recovery resumes from
    the last checkpointed elimination step rather than restarting.
    """
    A = np.asarray(A, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    n = A.shape[0]

    def run(session: Any, store: CheckpointStore) -> np.ndarray:
        from ..algorithms import gaussian

        ck = store.restore()
        if ck is None:
            T = session.matrix(np.hstack([A, b[:, None]]))
            start, pivots, pivot_values = 0, None, None
        else:
            T = session.matrix(ck.array("tableau"))
            start = int(ck.state["step"])
            pivots = list(ck.state["pivots"])
            pivot_values = list(ck.state["pivot_values"])

        def on_step(k, T_cur, pivots_cur, pivot_values_cur):
            if k < n and k % checkpoint_every == 0:
                store.save(
                    "gaussian",
                    {"tableau": T_cur},
                    state={
                        "step": k,
                        "pivots": tuple(pivots_cur),
                        "pivot_values": tuple(pivot_values_cur),
                    },
                    step=k,
                )

        machine = session.machine
        with machine.phase("gaussian"):
            elim = gaussian.eliminate(
                T,
                pivoting=pivoting,
                tol=tol,
                start=start,
                pivots=pivots,
                pivot_values=pivot_values,
                on_step=on_step,
            )
            return gaussian.back_substitute(elim, tol=tol)

    return run


def simplex_workload(
    A: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    rule: str = "dantzig",
    tol: float = 1e-9,
) -> Callable[[Any, CheckpointStore], np.ndarray]:
    """Solve the LP ``max c·x, A x <= b, x >= 0``; recovery restarts.

    The simplex tableau is cheap to rebuild and the solve deterministic,
    so the workload checkpoints only its inputs and re-runs from scratch
    on the survivor subcube — the result is bit-identical either way.
    """
    A = np.asarray(A, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    c = np.asarray(c, dtype=np.float64)

    def run(session: Any, store: CheckpointStore) -> np.ndarray:
        from ..algorithms import simplex

        store.restore()
        result = simplex.solve(session.machine, A, b, c, rule=rule, tol=tol)
        return result.x

    return run


def matvec_workload(
    A: np.ndarray, x: np.ndarray, reps: int = 4
) -> Callable[[Any, CheckpointStore], np.ndarray]:
    """Repeated ``y = A x`` (an iterative-solver stand-in); restarts."""
    A = np.asarray(A, dtype=np.float64)
    x = np.asarray(x, dtype=np.float64)

    def run(session: Any, store: CheckpointStore) -> np.ndarray:
        store.restore()
        dA = session.matrix(A)
        y = x
        for _ in range(reps):
            vec = session.row_vector(y, dA)
            y = dA.matvec(vec).to_numpy()
        return y

    return run


__all__ = [
    "largest_healthy_subcube",
    "subcube_members",
    "RecoveryReport",
    "run_resilient",
    "gaussian_workload",
    "simplex_workload",
    "matvec_workload",
]
