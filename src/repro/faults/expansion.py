"""Re-expansion bookkeeping: the root-coordinate health ledger.

``Session.degrade()`` abandons the faulted machine and rebuilds on a
subcube; the abandoned machine object — ultimately the *root* cube the
session started on — becomes the natural ledger for whole-fleet health.
An :class:`ExpansionLedger` keeps that root machine, the composed
embedding of the current (possibly repeatedly degraded) machine inside
it, and the heal events extracted from the fault injector before each
degrade (a translate() would have dropped them with the hardware they
target).

When heals come due, the ledger revives the root-level hardware; when the
root then contains a healthy subcube strictly larger than the current
machine, ``Session.promotion_ready()`` reports promotion is possible and
``Session.promote()`` rebuilds on it — the mirror image of ``degrade()``.
Promotion is gated on the injector's :class:`~repro.faults.injector.
HealthTracker` being quiet, so flapping (still-suspect) components never
thrash the session back and forth.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

import numpy as np


class ExpansionLedger:
    """Root-cube health history + composed embedding of the current machine.

    ``embed_dims[i]`` is the root dimension that current-machine dimension
    ``i`` maps to; ``embed_base`` the root address bits the embedding
    fixes.  ``record_degrade`` composes a further shrink into the
    embedding; ``record_promote`` resets it to the promoted cube.
    ``enabled`` is cleared by the resilient runner when promotion is
    exhausted or failed, turning all further checks into no-ops.
    """

    def __init__(self, root: Any) -> None:
        self.root = root
        self.embed_dims: Tuple[int, ...] = tuple(range(root.n))
        self.embed_base: int = 0
        #: pending repairs in root coordinates: (kind, time, dim, pid),
        #: kind in {"node", "link"} (dim is None for nodes).
        self.heals: List[Tuple[str, float, Optional[int], int]] = []
        self.enabled = True
        #: True once a heal has landed that no promotion consumed yet.
        #: Promotion is *heal-driven*: a root cube can hold a subcube
        #: larger than the current machine merely because degrade picks
        #: subcubes greedily, and re-expanding on that alone would change
        #: the long-standing degrade-only semantics of default runs.
        self.heal_applied = False

    # -- coordinate lifting ----------------------------------------------------

    def to_root_pid(self, pid: int) -> int:
        out = self.embed_base
        for i, d in enumerate(self.embed_dims):
            out |= ((pid >> i) & 1) << d
        return out

    def to_root_dim(self, dim: int) -> int:
        return self.embed_dims[dim]

    # -- root-mask maintenance -------------------------------------------------
    # Mutating the abandoned root machine directly (no kill_node/revive_node
    # calls) keeps the shared tracer free of ghost instants from a machine
    # that is no longer running anything.

    def _kill_root_node(self, pid: int) -> None:
        m = self.root
        if m.node_ok is None:
            m.node_ok = np.ones(m.p, dtype=bool)
        if m.node_ok[pid]:
            m.node_ok[pid] = False
            m._n_dead_nodes += 1

    def _revive_root_node(self, pid: int) -> bool:
        m = self.root
        if m.node_ok is None or m.node_ok[pid]:
            return False
        m.node_ok[pid] = True
        m._n_dead_nodes -= 1
        return True

    def _kill_root_link(self, dim: int, lo: int) -> None:
        m = self.root
        if m.link_ok is None:
            m.link_ok = np.ones((m.n, m.p), dtype=bool)
        if m.link_ok[dim, lo]:
            m.link_ok[dim, lo] = False
            m.link_ok[dim, lo ^ (1 << dim)] = False
            links = m._dead_links_by_dim.setdefault(dim, [])
            links.append(lo)
            links.sort()

    def _revive_root_link(self, dim: int, lo: int) -> bool:
        m = self.root
        lo = min(lo, lo ^ (1 << dim))
        if m.link_ok is None or m.link_ok[dim, lo]:
            return False
        m.link_ok[dim, lo] = True
        m.link_ok[dim, lo ^ (1 << dim)] = True
        links = m._dead_links_by_dim.get(dim)
        if links is not None:
            if lo in links:
                links.remove(lo)
            if not links:
                del m._dead_links_by_dim[dim]
        return True

    # -- bookkeeping entry points ----------------------------------------------

    def sync_kills(self, machine: Any) -> None:
        """Mirror the current machine's dead hardware into root coordinates.

        Called before each degrade and before each promotion check, so
        kills that landed *after* earlier degrades are never forgotten
        when the session re-expands past them.  Idempotent; a no-op when
        ``machine`` is the root itself (shared masks).
        """
        if machine is self.root:
            return
        if machine.node_ok is not None:
            for pid in np.flatnonzero(~machine.node_ok):
                self._kill_root_node(self.to_root_pid(int(pid)))
        if machine.link_ok is not None:
            for dim in range(machine.n):
                for lo in np.flatnonzero(~machine.link_ok[dim]):
                    root_dim = self.to_root_dim(dim)
                    root_lo = self.to_root_pid(int(lo))
                    self._kill_root_link(
                        root_dim, min(root_lo, root_lo ^ (1 << root_dim))
                    )

    def add_heal_events(self, events: Sequence[Any]) -> None:
        """File heal events (current-machine coordinates) in root terms.

        Must be called *before* ``record_degrade`` updates the embedding —
        the events were scheduled against the machine being abandoned.
        """
        for ev in events:
            dim = getattr(ev, "dim", None)
            if dim is None:
                self.heals.append(
                    ("node", ev.time, None, self.to_root_pid(ev.pid))
                )
            else:
                root_dim = self.to_root_dim(dim % max(len(self.embed_dims), 1))
                root_pid = self.to_root_pid(ev.pid)
                self.heals.append(
                    ("link", ev.time, root_dim,
                     min(root_pid, root_pid ^ (1 << root_dim)))
                )

    def apply_due_heals(self, now: float) -> List[Tuple[str, Optional[int], int]]:
        """Revive root hardware whose heal time has arrived.

        Returns the repairs that actually changed state, as ``(kind, dim,
        pid)`` tuples (dim ``None`` for nodes).
        """
        applied: List[Tuple[str, Optional[int], int]] = []
        still_pending = []
        for kind, time, dim, pid in self.heals:
            if time > now:
                still_pending.append((kind, time, dim, pid))
                continue
            if kind == "node":
                if self._revive_root_node(pid):
                    applied.append(("node", None, pid))
            else:
                if self._revive_root_link(dim, pid):
                    applied.append(("link", dim, pid))
        self.heals = still_pending
        if applied:
            self.heal_applied = True
        return applied

    def promotion_target(
        self, current_p: int
    ) -> Optional[Tuple[Tuple[int, ...], int]]:
        """Root-coordinate ``(free_dims, base)`` of a strictly larger
        healthy cube, or ``None``."""
        if not self.enabled:
            return None
        from .recovery import largest_healthy_subcube

        try:
            free_dims, base = largest_healthy_subcube(self.root)
        except Exception:  # pragma: no cover - root wholly dead
            return None
        if (1 << len(free_dims)) > current_p:
            return free_dims, base
        return None

    def record_degrade(self, free_dims: Sequence[int], base: int) -> None:
        """Compose a shrink (``free_dims``/``base`` in *current* coords)."""
        new_dims = tuple(self.embed_dims[d] for d in free_dims)
        kept = set(free_dims)
        extra = 0
        for d in range(len(self.embed_dims)):
            if d not in kept:
                extra |= ((base >> d) & 1) << self.embed_dims[d]
        self.embed_base |= extra
        self.embed_dims = new_dims

    def record_promote(self, free_dims: Sequence[int], base: int) -> None:
        """Reset the embedding to a promoted cube (*root* coords)."""
        self.embed_dims = tuple(free_dims)
        self.embed_base = base


__all__ = ["ExpansionLedger"]
