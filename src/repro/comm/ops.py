"""Combining operators for reductions and scans.

A :class:`CombineOp` bundles a binary associative NumPy ufunc with the
identity element the collectives need for padding and for exclusive scans.
The identity may depend on the dtype (``MAX`` uses ``-inf`` for floats and
the integer minimum for ints), so it is exposed as a function of dtype.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict

import numpy as np
from ..errors import ConfigError


@dataclass(frozen=True)
class CombineOp:
    """A binary associative (and here always commutative) combiner."""

    name: str
    ufunc: Callable[[np.ndarray, np.ndarray], np.ndarray]
    _identity: Callable[[np.dtype], Any]

    def identity(self, dtype: Any) -> Any:
        """The identity element of the operator for the given dtype."""
        return self._identity(np.dtype(dtype))

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self.ufunc(a, b)

    def __repr__(self) -> str:
        return f"CombineOp({self.name})"


def _zero(dtype: np.dtype) -> Any:
    return dtype.type(0)


def _one(dtype: np.dtype) -> Any:
    return dtype.type(1)


def _min_identity(dtype: np.dtype) -> Any:
    # identity of MAX: the smallest representable value
    if dtype.kind == "f":
        return dtype.type(-np.inf)
    if dtype.kind in "iu":
        return np.iinfo(dtype).min
    if dtype.kind == "b":
        return False
    raise TypeError(f"MAX has no identity for dtype {dtype}")


def _max_identity(dtype: np.dtype) -> Any:
    # identity of MIN: the largest representable value
    if dtype.kind == "f":
        return dtype.type(np.inf)
    if dtype.kind in "iu":
        return np.iinfo(dtype).max
    if dtype.kind == "b":
        return True
    raise TypeError(f"MIN has no identity for dtype {dtype}")


SUM = CombineOp("sum", np.add, _zero)
PROD = CombineOp("prod", np.multiply, _one)
MAX = CombineOp("max", np.maximum, _min_identity)
MIN = CombineOp("min", np.minimum, _max_identity)
ANY = CombineOp("any", np.logical_or, lambda dt: False)
ALL = CombineOp("all", np.logical_and, lambda dt: True)

_REGISTRY: Dict[str, CombineOp] = {
    op.name: op for op in (SUM, PROD, MAX, MIN, ANY, ALL)
}


def get_op(op: "CombineOp | str") -> CombineOp:
    """Resolve an operator given either a CombineOp or its name."""
    if isinstance(op, CombineOp):
        return op
    try:
        return _REGISTRY[op]
    except KeyError:
        raise ConfigError(
            f"unknown combine op {op!r}; known: {sorted(_REGISTRY)}"
        ) from None
