"""Dimension-exchange collectives on (sub)cubes.

Every collective here operates over an arbitrary *subset* of cube
dimensions, so the same code runs over the whole machine or over the row /
column subcubes of a two-dimensional processor grid — which is exactly how
the paper's primitives use them (a row-reduce is an all-reduce over the
column dimensions of the grid, etc.).

All collectives execute real per-dimension exchange rounds on the simulated
machine, so their charged cost is a consequence of what they actually do:

============================  =====================================================
collective                    cost over a 2**k subcube, local block of L elements
============================  =====================================================
``broadcast``                 k rounds × (tau + L·t_c)
``reduce_all`` / ``reduce``   k rounds × (tau + L·t_c) + k·L arithmetic
``reduce_all_loc``            as reduce_all with paired (value, index) payload
``scan``                      k rounds × (tau + L·t_c) + 2k·L arithmetic
``allgather``/``gather``      k rounds, round j moves L·2**j  (total (2**k −1)·L)
``scatter``                   k rounds, round j moves L·2**k/2**(j+1)
============================  =====================================================

These are the standard Boolean-cube algorithms of Johnsson & Ho that the
paper's implementation section builds on.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigError, ShapeError
from ..machine.hypercube import Hypercube
from ..machine.plans import readonly
from ..machine.pvar import PVar
from ..obs.tracer import maybe_span
from .ops import CombineOp, get_op


def _dims_tuple(machine: Hypercube, dims: Optional[Sequence[int]]) -> Tuple[int, ...]:
    if dims is None:
        return machine.dims
    return machine.check_dims(dims)


def subcube_rank(machine: Hypercube, dims: Sequence[int]) -> np.ndarray:
    """Each processor's rank within its subcube spanned by ``dims``.

    ``dims[0]`` is the least-significant rank bit.  Host-side array (free):
    every processor can compute its own rank from its wired-in address.
    Memoized per ``dims`` on the machine's plan cache (read-only array).
    """
    dims = _dims_tuple(machine, dims)

    def build() -> np.ndarray:
        pids = machine.pids()
        rank = np.zeros(machine.p, dtype=np.int64)
        for k, d in enumerate(dims):
            rank |= ((pids >> d) & 1) << k
        return readonly(rank)

    return machine.plans.memo(("subcube-rank", dims), build)


def subcube_base(machine: Hypercube, dims: Sequence[int]) -> np.ndarray:
    """The pid of the rank-0 member of each processor's subcube."""
    dims = _dims_tuple(machine, dims)

    def build() -> np.ndarray:
        mask = 0
        for d in dims:
            mask |= 1 << d
        return readonly(machine.pids() & ~mask)

    return machine.plans.memo(("subcube-base", dims), build)


def _root_pid_map(
    machine: Hypercube, dims: Tuple[int, ...], root_rank: int
) -> np.ndarray:
    """Per-pid address of the rank-``root_rank`` member of its subcube.

    This is the whole "plan" of a broadcast over a fixed ``(dims,
    root_rank)`` pair: every processor's result is the root's block, so
    knowing each processor's root suffices to replay the collective.
    """

    def build() -> np.ndarray:
        root_pid = subcube_base(machine, dims).copy()
        for j, d in enumerate(dims):
            if (root_rank >> j) & 1:
                root_pid |= 1 << d
        return readonly(root_pid)

    return machine.plans.memo(("root-pid", dims, root_rank), build)


def _subcube_members(
    machine: Hypercube, dims: Tuple[int, ...]
) -> Tuple[np.ndarray, np.ndarray]:
    """``(sub_of_pid, members)``: the subcube membership structure.

    ``members[s]`` lists the ``2**k`` pids of subcube ``s`` and
    ``sub_of_pid[pid]`` names each processor's subcube, so an
    order-independent combine over every subcube is one gather / reduce /
    scatter.  Memoized per ``dims``.
    """

    def build() -> Tuple[np.ndarray, np.ndarray]:
        base = subcube_base(machine, dims)
        uniq, sub_of_pid = np.unique(base, return_inverse=True)
        j = np.arange(1 << len(dims), dtype=np.int64)
        spread = np.zeros_like(j)
        for t, d in enumerate(dims):
            spread |= ((j >> t) & 1) << d
        return readonly(sub_of_pid), readonly(uniq[:, None] | spread[None, :])

    return machine.plans.memo(("subcube-members", dims), build)


def broadcast(
    machine: Hypercube,
    pvar: PVar,
    dims: Optional[Sequence[int]] = None,
    root_rank: int = 0,
) -> PVar:
    """Binomial-tree broadcast within every subcube spanned by ``dims``.

    The subcube member with rank ``root_rank`` is the source; afterwards all
    members of each subcube hold the source's block.
    """
    dims = _dims_tuple(machine, dims)
    if not dims:
        return pvar
    if not (0 <= root_rank < (1 << len(dims))):
        raise ConfigError(f"root_rank {root_rank} out of range for {len(dims)} dims")
    with maybe_span(
        machine, "broadcast", "collective",
        dims=list(dims), volume=pvar.local_size,
    ):
        sanitizer = machine.sanitizer
        if machine.plans.enabled:
            # Plan replay: the binomial tree's charge schedule is one
            # full-block round per dimension, and its functional result is
            # the root's block everywhere — both replayed exactly from the
            # cached root map, so ticks and data are bit-identical to the
            # exchange loop below.
            machine._check_owned(pvar)
            root_pid = _root_pid_map(machine, dims, root_rank)
            for d in dims:
                machine.charge_comm_round(pvar.local_size, dim=d)
            out = PVar(machine, pvar.data[root_pid])
            if sanitizer is not None:
                sanitizer.audit_broadcast(machine, dims, root_rank, pvar, out)
            return out
        rank = subcube_rank(machine, dims)
        has = rank == root_rank
        data = pvar
        for d in dims:
            recv = machine.exchange(data, d)
            recv_has = has[machine.pids() ^ (1 << d)]
            take = recv_has & ~has
            if np.any(take):
                out = data.data.copy()
                out[take] = recv.data[take]
                data = PVar(machine, out)
            has = has | recv_has
        assert bool(np.all(has))
        if sanitizer is not None:
            sanitizer.audit_broadcast(machine, dims, root_rank, pvar, data)
        return data


def reduce_all(
    machine: Hypercube,
    pvar: PVar,
    op: "CombineOp | str",
    dims: Optional[Sequence[int]] = None,
) -> PVar:
    """All-reduce: every subcube member ends with the op-combination.

    The classic lg(p) dimension-exchange: combine with the neighbour's block
    along each dimension in turn.
    """
    op = get_op(op)
    dims = _dims_tuple(machine, dims)
    with maybe_span(
        machine, "reduce_all", "collective",
        dims=list(dims), volume=pvar.local_size, op=op.name,
    ):
        data = pvar
        for d in dims:
            recv = machine.exchange(data, d)
            combined = op(data.data, recv.data)
            machine.charge_flops(data.local_size)
            data = PVar(machine, combined)
        sanitizer = machine.sanitizer
        if sanitizer is not None:
            sanitizer.audit_replicated(machine, data, dims, "reduce_all")
        return data


def reduce(
    machine: Hypercube,
    pvar: PVar,
    op: "CombineOp | str",
    dims: Optional[Sequence[int]] = None,
    root_rank: int = 0,
) -> PVar:
    """Reduce-to-root.

    On a Boolean cube the all-reduce has the same round and volume structure
    as the optimal reduce-to-root (k rounds of the full block), so we run the
    all-reduce; only the rank-``root_rank`` value is guaranteed meaningful to
    callers that treat this as a rooted reduce.
    """
    del root_rank  # every member ends up with the result
    return reduce_all(machine, pvar, op, dims)


def reduce_all_loc(
    machine: Hypercube,
    value: PVar,
    index: PVar,
    dims: Optional[Sequence[int]] = None,
    mode: str = "max",
) -> Tuple[PVar, PVar]:
    """All-reduce of (value, index) pairs: arg-max / arg-min across a subcube.

    Ties break toward the smaller index, which makes the result independent
    of the combining order (needed both for determinism and for Bland-rule
    pivoting in the simplex application).
    """
    if mode not in ("max", "min"):
        raise ConfigError(f"mode must be 'max' or 'min', got {mode!r}")
    dims = _dims_tuple(machine, dims)
    if value.local_shape != index.local_shape:
        raise ShapeError(
            f"value and index must have identical local shapes, got "
            f"{value.local_shape} and {index.local_shape}"
        )
    with maybe_span(
        machine, "reduce_all_loc", "collective",
        dims=list(dims), volume=value.local_size, mode=mode,
    ):
        return _reduce_all_loc_impl(machine, value, index, dims, mode)


def _reduce_all_loc_impl(
    machine: Hypercube,
    value: PVar,
    index: PVar,
    dims: Tuple[int, ...],
    mode: str,
) -> Tuple[PVar, PVar]:
    val = value
    idx = index
    if (
        machine.plans.enabled
        and dims
        and index.dtype.kind in "iu"
        and not (value.dtype.kind == "f" and np.isnan(value.data).any())
    ):
        # Vectorized replay: the pair-combine (larger value, ties to the
        # smaller index) is an exact, commutative, associative semilattice
        # on finite values, so the dimension-exchange loop below computes
        # precisely the per-subcube (extreme value, smallest winning index)
        # — computable in one pass.  The loop's charge schedule (two
        # full-block exchanges plus one 3-op compare pass per dimension) is
        # data-independent and replayed verbatim.  NaNs break the
        # order-independence argument, so they take the loop.
        machine._check_owned(value)
        machine._check_owned(index)
        sub_of_pid, members = _subcube_members(machine, dims)
        mv = value.data[members]  # (S, 2**k, *local)
        mi = index.data[members]
        if mode == "max":
            best = mv.max(axis=1)
        else:
            best = mv.min(axis=1)
        is_best = mv == np.expand_dims(best, 1)
        sentinel = np.iinfo(mi.dtype).max
        win_idx = np.where(is_best, mi, sentinel).min(axis=1)
        ls = val.local_size
        for d in dims:
            machine.charge_comm_round(ls, dim=d)
            machine.charge_comm_round(ls, dim=d)
            machine.charge_flops(3 * ls)
        return (
            PVar(machine, best[sub_of_pid]),
            PVar(machine, win_idx[sub_of_pid]),
        )
    for d in dims:
        rv = machine.exchange(val, d)
        ri = machine.exchange(idx, d)
        if mode == "max":
            better = rv.data > val.data
        else:
            better = rv.data < val.data
        tie = (rv.data == val.data) & (ri.data < idx.data)
        take = better | tie
        new_val = np.where(take, rv.data, val.data)
        new_idx = np.where(take, ri.data, idx.data)
        machine.charge_flops(3 * val.local_size)  # compare, tie-break, select
        val = PVar(machine, new_val)
        idx = PVar(machine, new_idx)
    return val, idx


def scan(
    machine: Hypercube,
    pvar: PVar,
    op: "CombineOp | str",
    dims: Optional[Sequence[int]] = None,
    inclusive: bool = False,
    rank: Optional[np.ndarray] = None,
) -> PVar:
    """Parallel prefix over subcube ranks (``dims[0]`` least significant).

    The standard Boolean-cube scan: carry an (exclusive-prefix, segment
    total) pair up the dimensions.  Exclusive by default; rank 0 receives
    the identity.

    ``rank`` optionally relabels the scan order: a ``(p,)`` array giving
    each processor's position within its subcube.  It must be *bitwise
    compatible* with ``dims`` — flipping cube dimension ``dims[k]`` must
    flip bit ``k`` of the rank (and possibly lower bits only), which holds
    for both plain binary ranks (the default) and binary-reflected Gray
    ranks.  This is how scans run in *grid order* over Gray-coded grids:
    because the combining operators are commutative, block totals are
    order-free and only the "am I the higher half" test needs the rank.
    """
    op = get_op(op)
    dims = _dims_tuple(machine, dims)
    with maybe_span(
        machine, "scan", "collective",
        dims=list(dims), volume=pvar.local_size, op=op.name,
    ):
        ident = op.identity(pvar.dtype)
        prefix = np.full_like(pvar.data, ident)
        total = pvar.data.copy()
        machine.charge_local(2 * pvar.local_size)
        if rank is None:
            rank = subcube_rank(machine, dims)
        else:
            rank = np.asarray(rank)
            if rank.shape != (machine.p,):
                raise ShapeError(
                    f"rank must have shape ({machine.p},), got {rank.shape}"
                )
        for k, d in enumerate(dims):
            total_pv = PVar(machine, total)
            recv_total = machine.exchange(total_pv, d).data
            high = ((rank >> k) & 1) == 1
            shape = (machine.p,) + (1,) * (pvar.data.ndim - 1)
            high_b = high.reshape(shape)
            # Processors in the rank-upper half have every lower-half member
            # before them in rank order: fold the other half's total in.
            prefix = np.where(high_b, op(recv_total, prefix), prefix)
            total = op(total, recv_total)
            machine.charge_flops(2 * pvar.local_size)
        if inclusive:
            prefix = op(prefix, pvar.data)
            machine.charge_flops(pvar.local_size)
        return PVar(machine, prefix)


def allgather(
    machine: Hypercube,
    pvar: PVar,
    dims: Optional[Sequence[int]] = None,
) -> PVar:
    """Concatenate all subcube members' blocks on every member.

    Recursive doubling: after round j every processor holds ``2**(j+1)``
    blocks; the result's leading local axis indexes blocks by subcube rank.
    Scalar blocks are promoted to length-1 vectors.
    """
    dims = _dims_tuple(machine, dims)
    with maybe_span(
        machine, "allgather", "collective",
        dims=list(dims), volume=pvar.local_size,
    ):
        data = pvar.data
        n_runs = machine.n_runs
        if n_runs is None:
            if data.ndim == 1:
                data = data[:, None]
        elif data.ndim == 2:
            # Batched scalar blocks are (p, n_runs); the length-1 block
            # axis goes between the processor and run axes.
            data = data[:, None, :]
        pids = machine.pids()
        blocks = data[:, None, ...]  # (p, nblocks=1, *local)
        for d in dims:
            cur = PVar(machine, blocks)
            recv = machine.exchange(cur, d).data
            low = ((pids >> d) & 1) == 0
            first = np.where(
                low.reshape((-1,) + (1,) * (blocks.ndim - 1)), blocks, recv
            )
            second = np.where(
                low.reshape((-1,) + (1,) * (blocks.ndim - 1)), recv, blocks
            )
            blocks = np.concatenate([first, second], axis=1)
            grown = first[0].size + second[0].size
            if n_runs is not None:
                grown //= n_runs  # charge volumes are per lane
            machine.charge_local(grown)
        return PVar(machine, blocks)


def gather(
    machine: Hypercube,
    pvar: PVar,
    dims: Optional[Sequence[int]] = None,
) -> PVar:
    """Gather all subcube blocks (rank order) — result valid on rank 0.

    Implemented via :func:`allgather`; on a Boolean cube the rooted gather
    along a binomial tree has the same (2**k − 1)·L transfer volume and k
    start-ups as recursive doubling, so the charge is faithful.
    """
    return allgather(machine, pvar, dims)


def scatter(
    machine: Hypercube,
    pvar: PVar,
    dims: Optional[Sequence[int]] = None,
    root_rank: int = 0,
) -> PVar:
    """Distribute rank-``root_rank``'s blocks across its subcube.

    Input local shape is ``(2**k, *block)``: one block per subcube rank.
    Output local shape is ``block``: each member keeps the block matching
    its own rank.  Charged per the recursive-halving schedule (round j sends
    half of what remains), executed functionally.
    """
    dims = _dims_tuple(machine, dims)
    k = len(dims)
    nblocks = 1 << k
    if not pvar.local_shape or pvar.local_shape[0] != nblocks:
        raise ShapeError(
            f"scatter input must have leading local axis {nblocks}, "
            f"got local shape {pvar.local_shape}"
        )
    block_size = pvar.local_size // nblocks
    with maybe_span(
        machine, "scatter", "collective",
        dims=list(dims), volume=block_size,
    ):
        # Charge the recursive-halving schedule: k rounds, round j moves
        # nblocks/2**(j+1) blocks.
        remaining = nblocks
        for d in dims:
            remaining //= 2
            machine.charge_comm_round(remaining * block_size, dim=d)
        rank = subcube_rank(machine, dims)
        root_pid = _root_pid_map(machine, dims, root_rank)
        out = pvar.data[root_pid, rank]
        machine.charge_local(block_size)
        return PVar(machine, out)


def alltoall(
    machine: Hypercube,
    pvar: PVar,
    dims: Optional[Sequence[int]] = None,
) -> PVar:
    """All-to-all personalized communication (total exchange).

    Input local shape ``(2**k, *block)``: block ``j`` is destined for the
    subcube member of rank ``j``.  Output has the same shape with block
    ``i`` holding what rank-``i`` sent to this processor — the matrix
    transpose of the block array across each subcube.

    The classic recursive-exchange algorithm: along each dimension every
    processor sends the half of its blocks whose destination lies across
    that dimension — ``k`` rounds of ``2**(k-1)`` blocks each, the optimal
    single-port schedule (Johnsson & Ho's all-to-all personalized
    communication).
    """
    dims = _dims_tuple(machine, dims)
    k = len(dims)
    nblocks = 1 << k
    if not pvar.local_shape or pvar.local_shape[0] != nblocks:
        raise ShapeError(
            f"alltoall input must have leading local axis {nblocks}, "
            f"got local shape {pvar.local_shape}"
        )
    if k == 0:
        return pvar
    rank = subcube_rank(machine, dims)
    block_size = pvar.local_size // nblocks

    with maybe_span(
        machine, "alltoall", "collective",
        dims=list(dims), volume=pvar.local_size,
    ):
        # Re-index blocks by the XOR offset x = rank(src) ^ rank(dst), which
        # is invariant along a message's whole route: slot x of processor q
        # then always holds the in-flight message whose source-to-destination
        # offset is x and whose current holder is q.
        x_of = rank[:, None] ^ np.arange(nblocks)[None, :]
        data = np.take_along_axis(
            pvar.data,
            x_of.reshape((machine.p, nblocks) + (1,) * (pvar.data.ndim - 2)),
            axis=1,
        )
        machine.charge_local(pvar.local_size)

        for bit, d in enumerate(dims):
            # all messages whose offset has this bit set cross this dimension
            recv = machine.exchange_free(PVar(machine, data), d).data
            machine.charge_comm_round((nblocks // 2) * block_size, dim=d)
            crossing = ((np.arange(nblocks) >> bit) & 1) == 1
            shape = (1, nblocks) + (1,) * (data.ndim - 2)
            data = np.where(crossing.reshape(shape), recv, data)
            machine.charge_local((nblocks // 2) * block_size)

        # Slot x now holds the message from the rank-(rank(q)^x) member;
        # undo the re-indexing so block i holds rank-i's message.
        out = np.take_along_axis(
            data, x_of.reshape((machine.p, nblocks) + (1,) * (data.ndim - 2)),
            axis=1,
        )
        machine.charge_local(pvar.local_size)
        return PVar(machine, out)


def broadcast_pipelined(
    machine: Hypercube,
    pvar: PVar,
    dims: Optional[Sequence[int]] = None,
    root_rank: int = 0,
) -> PVar:
    """Large-message broadcast: split the block into ``k`` pieces and
    pipeline them down the spanning tree.

    The plain binomial broadcast moves the *whole* block in each of its
    ``k`` rounds (``k·(tau + L·t_c)``); the pipelined schedule (Johnsson &
    Ho's multiple-spanning-tree family) streams ``k`` pieces of ``L/k``
    elements through ``2k - 1`` rounds:

        T = (2k - 1) · (tau + ceil(L/k) · t_c)

    — asymptotically ``2L·t_c`` instead of ``k·L·t_c``, at twice the
    start-ups.  Use it when ``L·t_c >> tau``; :func:`broadcast_crossover`
    gives the break-even volume.  Functionally identical to
    :func:`broadcast`.
    """
    dims = _dims_tuple(machine, dims)
    k = len(dims)
    if k <= 1:
        return broadcast(machine, pvar, dims, root_rank)
    with maybe_span(
        machine, "broadcast_pipelined", "collective",
        dims=list(dims), volume=pvar.local_size,
    ):
        piece = -(-pvar.local_size // k)
        # pipelined rounds traverse the whole spanning-tree family; no
        # single cube dimension owns a round, so the tracer files them
        # under dim -1.
        machine.charge_comm_round(piece, rounds=2 * k - 1)
        # functional result: everyone gets the root's block
        root_pid = _root_pid_map(machine, dims, root_rank)
        out = PVar(machine, pvar.data[root_pid])
        sanitizer = machine.sanitizer
        if sanitizer is not None:
            sanitizer.audit_broadcast(machine, dims, root_rank, pvar, out)
        return out


def reduce_all_pipelined(
    machine: Hypercube,
    pvar: PVar,
    op: "CombineOp | str",
    dims: Optional[Sequence[int]] = None,
) -> PVar:
    """Large-message all-reduce: reduce-scatter + all-gather.

    The classic bandwidth-optimal schedule: recursive halving combines
    pieces (k rounds, volumes L/2, L/4, …), then recursive doubling
    redistributes the combined pieces (k rounds, volumes …, L/4, L/2) —
    total volume ``~2L`` against the plain dimension-exchange's ``k·L``,
    at twice the start-ups.  Functionally identical to :func:`reduce_all`.
    """
    op = get_op(op)
    dims = _dims_tuple(machine, dims)
    k = len(dims)
    if k <= 1:
        return reduce_all(machine, pvar, op, dims)
    with maybe_span(
        machine, "reduce_all_pipelined", "collective",
        dims=list(dims), volume=pvar.local_size, op=op.name,
    ):
        # charge the halving/doubling volume schedule; round j of each
        # sweep traverses dims[j]
        vol = pvar.local_size
        for d in dims:
            vol = -(-vol // 2)
            machine.charge_comm_round(vol, dim=d)   # reduce-scatter round
            machine.charge_flops(vol)               # combine received piece
        vol = -(-pvar.local_size // (1 << k))
        for d in reversed(dims):
            machine.charge_comm_round(vol, dim=d)   # all-gather round
            vol = min(vol * 2, pvar.local_size)
        # functional result via the (uncharged) exchange loop
        data = pvar.data
        for d in dims:
            recv = machine.exchange_free(PVar(machine, data), d).data
            data = op(data, recv)
        out = PVar(machine, data)
        sanitizer = machine.sanitizer
        if sanitizer is not None:
            sanitizer.audit_replicated(
                machine, out, dims, "reduce_all_pipelined"
            )
        return out


def broadcast_crossover(cost, k: int) -> float:
    """Block volume above which the pipelined broadcast wins.

    Solves ``k(tau + L t_c) = (2k-1)(tau + L t_c / k)`` for ``L``; returns
    ``inf`` when the pipelined form can never win (k <= 1 or t_c == 0).
    """
    if k <= 1 or cost.t_c <= 0:
        return float("inf")
    denom = cost.t_c * (k - (2 * k - 1) / k)
    if denom <= 0:
        return float("inf")
    return (k - 1) * cost.tau / denom
