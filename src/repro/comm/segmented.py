"""Segmented plus-scan across a subcube.

The segmented scan is the signature primitive of the Scan-Vector Model
(Blelloch) that the paper's APL-like operations grew out of: a parallel
prefix sum that restarts at segment boundaries.  The cross-processor part
works on the standard (value, flag) pair monoid

    (v1, f1) ⊕ (v2, f2) = (v2 if f2 else v1 + v2,  f1 or f2)

which is associative, so the usual Boolean-cube scan structure applies:
carry an (exclusive-prefix, segment-total) pair up the dimensions, at twice
the exchange volume of a plain scan (the flag rides along with the value).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..machine.hypercube import Hypercube
from ..machine.pvar import PVar
from .collectives import _dims_tuple, subcube_rank
from ..errors import ShapeError


def segmented_scan_pairs(
    machine: Hypercube,
    value: PVar,
    flag: PVar,
    dims: Optional[Sequence[int]] = None,
    rank: Optional[np.ndarray] = None,
) -> Tuple[PVar, PVar]:
    """Exclusive pair-scan of per-processor (value, flag) summaries.

    Each processor contributes one (value, flag) pair per local slot;
    returns, per slot, the pair-combine of all *lower-ranked* subcube
    members' pairs: the carry a segmented scan must add to elements before
    its first local segment start.  The returned flag says whether any
    lower-ranked member contained a segment start.
    """
    dims = _dims_tuple(machine, dims)
    if value.local_shape != flag.local_shape:
        raise ShapeError("value and flag must share the local shape")
    if rank is None:
        rank = subcube_rank(machine, dims)
    else:
        rank = np.asarray(rank)
        if rank.shape != (machine.p,):
            raise ShapeError(f"rank must have shape ({machine.p},)")
    shape = (machine.p,) + (1,) * (value.data.ndim - 1)

    prefix_v = np.zeros_like(value.data)
    prefix_f = np.zeros_like(flag.data, dtype=bool)
    total_v = value.data.copy()
    total_f = flag.data.astype(bool).copy()
    machine.charge_local(2 * value.local_size)

    for k, d in enumerate(dims):
        rv = machine.exchange(PVar(machine, total_v), d).data
        rf = machine.exchange_free(PVar(machine, total_f), d).data
        machine.charge_comm_round(flag.local_size)  # the flag payload
        high = ((((rank >> k) & 1) == 1)).reshape(shape)
        # high nodes fold the lower half's total into their prefix:
        # prefix' = other_total ⊕ prefix
        new_prefix_v = np.where(prefix_f, prefix_v, rv + prefix_v)
        prefix_v = np.where(high, new_prefix_v, prefix_v)
        prefix_f = np.where(high, rf | prefix_f, prefix_f)
        # total' = (rank-lower half) ⊕ (rank-higher half)
        lo_v = np.where(high, rv, total_v)
        lo_f = np.where(high, rf, total_f)
        hi_v = np.where(high, total_v, rv)
        hi_f = np.where(high, total_f, rf)
        total_v = np.where(hi_f, hi_v, lo_v + hi_v)
        total_f = lo_f | hi_f
        machine.charge_flops(4 * value.local_size)
    return PVar(machine, prefix_v), PVar(machine, prefix_f)


def local_segmented_cumsum(
    values: np.ndarray, flags: np.ndarray, axis: int = -1
) -> np.ndarray:
    """Vectorised *exclusive* segmented cumulative sum along ``axis``.

    ``flags[i] = True`` marks element ``i`` as the start of a new segment;
    the output at a start (and at position 0) is 0, elsewhere the sum of
    its segment's earlier elements.  Pure NumPy helper (callers charge the
    machine); used for the intra-processor half of the segmented scan.
    """
    values = np.asarray(values, dtype=np.float64)
    flags = np.asarray(flags, dtype=bool)
    if values.shape != flags.shape:
        raise ShapeError("values and flags must have identical shapes")
    values = np.moveaxis(values, axis, -1)
    flags = np.moveaxis(flags, axis, -1)

    csum = np.cumsum(values, axis=-1)
    n = values.shape[-1]
    positions = np.arange(n)
    # index of the most recent segment start at or before each position
    start_idx = np.where(flags, positions, -1)
    start_idx = np.maximum.accumulate(start_idx, axis=-1)
    # cumulative sum just before the segment start (0 for the first run)
    shifted = np.concatenate(
        [np.zeros_like(csum[..., :1]), csum[..., :-1]], axis=-1
    )
    base = np.where(
        start_idx >= 0,
        np.take_along_axis(shifted, np.maximum(start_idx, 0), axis=-1),
        0.0,
    )
    exclusive = shifted - base
    # positions that *are* starts restart at zero
    exclusive = np.where(flags, 0.0, exclusive)
    # before the first start (start_idx < 0) the run begins at position 0
    exclusive = np.where(start_idx < 0, shifted, exclusive)
    return np.moveaxis(exclusive, -1, axis)
