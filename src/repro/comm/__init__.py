"""Boolean-cube collective communication.

Subcube-aware dimension-exchange collectives (broadcast, reduce, arg-reduce,
scan, gather/allgather, scatter) plus the combining-operator registry.
"""

from .collectives import (
    allgather,
    alltoall,
    broadcast,
    broadcast_crossover,
    broadcast_pipelined,
    gather,
    reduce,
    reduce_all,
    reduce_all_pipelined,
    reduce_all_loc,
    scan,
    scatter,
    subcube_base,
    subcube_rank,
)
from .ops import ALL, ANY, MAX, MIN, PROD, SUM, CombineOp, get_op
from .segmented import local_segmented_cumsum, segmented_scan_pairs

__all__ = [
    "allgather",
    "alltoall",
    "broadcast",
    "broadcast_pipelined",
    "broadcast_crossover",
    "gather",
    "reduce",
    "reduce_all",
    "reduce_all_pipelined",
    "reduce_all_loc",
    "scan",
    "scatter",
    "subcube_base",
    "subcube_rank",
    "CombineOp",
    "get_op",
    "SUM",
    "PROD",
    "MAX",
    "MIN",
    "ANY",
    "ALL",
    "segmented_scan_pairs",
    "local_segmented_cumsum",
]
